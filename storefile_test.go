package sdtw

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeAndFlat exports data into a segment store under t.TempDir, opens
// it, and returns the store-backed index beside the in-RAM index it
// must answer identically to.
func storeAndFlat(t *testing.T, backend string, data []Series, opts Options) (*Index, *Index, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	var flat, cold *Index
	var err error
	switch backend {
	case "engine":
		flat, err = NewIndex(data, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := flat.SaveStore(dir); err != nil {
			t.Fatal(err)
		}
		cold, err = OpenIndex(dir, opts)
	case "windowed":
		flat, err = NewWindowedIndex(data, 12)
		if err != nil {
			t.Fatal(err)
		}
		if err := flat.SaveStore(dir); err != nil {
			t.Fatal(err)
		}
		cold, err = OpenWindowedIndex(dir)
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cold.CloseStore() })
	return flat, cold, dir
}

func requireSameNeighbors(t *testing.T, label string, want, got []Neighbor) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d neighbours, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i].Pos != got[i].Pos {
			t.Fatalf("%s: rank %d at position %d, want %d", label, i, got[i].Pos, want[i].Pos)
		}
		if math.Float64bits(want[i].Distance) != math.Float64bits(got[i].Distance) {
			t.Fatalf("%s: rank %d distance %v (bits %x), want %v (bits %x)", label, i,
				got[i].Distance, math.Float64bits(got[i].Distance),
				want[i].Distance, math.Float64bits(want[i].Distance))
		}
	}
}

// TestStoreBackedSearchExactness is the storage layer's headline
// property: a store-backed index — hot sketches and envelopes, cold raw
// values — answers bit-identically to the in-RAM index it was exported
// from, on both backends, across band strategies, k and threshold
// modes, and with the stage-0 sketch filter both on and off.
func TestStoreBackedSearchExactness(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 71, SeriesPerClass: 8})
	engineOpts := []Options{
		{Strategy: AdaptiveCoreAdaptiveWidth},
		{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10},
		{Strategy: ItakuraBand},
	}
	ctx := context.Background()
	queries := []Series{d.Series[0], d.Series[7], d.Series[11]}
	modes := []struct {
		label string
		opts  []SearchOption
	}{
		{"k1", nil},
		{"k5", []SearchOption{WithK(5)}},
		{"threshold", []SearchOption{WithThreshold(4.0)}},
		{"k3+threshold", []SearchOption{WithK(3), WithThreshold(6.0)}},
		{"k5+nosketch", []SearchOption{WithK(5), WithoutSketch()}},
	}
	run := func(t *testing.T, flat, cold *Index) {
		for qi, q := range queries {
			for _, mode := range modes {
				want, _, err := flat.Search(ctx, q, mode.opts...)
				if err != nil {
					t.Fatal(err)
				}
				got, stats, err := cold.Search(ctx, q, mode.opts...)
				if err != nil {
					t.Fatal(err)
				}
				requireSameNeighbors(t, fmt.Sprintf("query %d %s", qi, mode.label), want, got)
				if strings.Contains(mode.label, "nosketch") && stats.PrunedSketch != 0 {
					t.Fatalf("query %d %s: sketch stage ran despite WithoutSketch: %+v", qi, mode.label, stats)
				}
			}
		}
	}
	for i, opts := range engineOpts {
		t.Run(fmt.Sprintf("engine-%d", i), func(t *testing.T) {
			flat, cold, _ := storeAndFlat(t, "engine", d.Series, opts)
			run(t, flat, cold)
		})
	}
	t.Run("windowed", func(t *testing.T) {
		flat, cold, _ := storeAndFlat(t, "windowed", d.Series, Options{})
		run(t, flat, cold)
	})
}

// TestStoreBackedSketchPrunes: the stage-0 filter actually fires on a
// store-backed index (equal-length collection, default width).
func TestStoreBackedSketchPrunes(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 73, SeriesPerClass: 10})
	_, cold, _ := storeAndFlat(t, "engine", d.Series, Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10})
	total := 0
	for q := 0; q < 6; q++ {
		_, stats, err := cold.Search(context.Background(), d.Series[q], WithK(1))
		if err != nil {
			t.Fatal(err)
		}
		total += stats.PrunedSketch
	}
	if total == 0 {
		t.Fatal("stage-0 sketch filter never pruned a candidate on Gun")
	}
}

// TestStoreBackedMutationExactness: Add, Remove and Compact on a
// store-backed index keep it bit-identical to an in-RAM index over the
// same mutated collection — including after closing and reopening the
// store, which replays the mutations from segments and tombstones.
func TestStoreBackedMutationExactness(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 79, SeriesPerClass: 8})
	for _, backend := range []string{"engine", "windowed"} {
		t.Run(backend, func(t *testing.T) {
			opts := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}
			seed := d.Series[:12]
			_, cold, dir := storeAndFlat(t, backend, seed, opts)

			// Mutate: drop two, add four of the held-out series.
			mutated := append([]Series(nil), seed...)
			for _, id := range []string{seed[3].ID, seed[9].ID} {
				if err := cold.Remove(id); err != nil {
					t.Fatal(err)
				}
				for i, s := range mutated {
					if s.ID == id {
						mutated = append(mutated[:i], mutated[i+1:]...)
						break
					}
				}
			}
			for _, s := range d.Series[12:16] {
				if err := cold.Add(s); err != nil {
					t.Fatal(err)
				}
				mutated = append(mutated, s)
			}

			var flat *Index
			var err error
			if backend == "engine" {
				flat, err = NewIndex(mutated, opts)
			} else {
				flat, err = NewWindowedIndex(mutated, 12)
			}
			if err != nil {
				t.Fatal(err)
			}

			ctx := context.Background()
			check := func(label string, ix *Index) {
				t.Helper()
				for q := 0; q < 4; q++ {
					want, _, err := flat.Search(ctx, d.Series[q], WithK(5))
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := ix.Search(ctx, d.Series[q], WithK(5))
					if err != nil {
						t.Fatal(err)
					}
					requireSameNeighbors(t, fmt.Sprintf("%s query %d", label, q), want, got)
				}
			}
			check("mutated", cold)

			// Compaction drops the tombstoned records but changes no
			// answer.
			if err := cold.Compact(); err != nil {
				t.Fatal(err)
			}
			st, err := cold.StoreStats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Tombstones != 0 {
				t.Fatalf("tombstones survived compaction: %+v", st)
			}
			if st.LiveRecords != len(mutated) {
				t.Fatalf("store has %d live records, want %d", st.LiveRecords, len(mutated))
			}
			check("compacted", cold)

			// Reopen from disk: the replayed store answers identically.
			if err := cold.CloseStore(); err != nil {
				t.Fatal(err)
			}
			var back *Index
			if backend == "engine" {
				back, err = OpenIndex(dir, opts)
			} else {
				back, err = OpenWindowedIndex(dir)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer back.CloseStore()
			if back.Len() != len(mutated) {
				t.Fatalf("reopened %d series, want %d", back.Len(), len(mutated))
			}
			check("reopened", back)
		})
	}
}

// TestShardedStoreBackedExactness: a sharded store root serves
// bit-identically to a flat in-RAM index over the same collection,
// through mutations, compaction and reopen.
func TestShardedStoreBackedExactness(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 83, SeriesPerClass: 5})
	opts := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}
	for _, backend := range []string{"engine", "windowed"} {
		t.Run(backend, func(t *testing.T) {
			seed := d.Series[:16]
			var si *ShardedIndex
			var err error
			if backend == "engine" {
				si, err = NewShardedIndex(seed, 3, opts)
			} else {
				si, err = NewShardedWindowedIndex(seed, 3, 12)
			}
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(t.TempDir(), "sharded")
			if err := si.SaveStore(dir); err != nil {
				t.Fatal(err)
			}
			var cold *ShardedIndex
			if backend == "engine" {
				cold, err = OpenShardedIndex(dir, opts)
			} else {
				cold, err = OpenShardedWindowedIndex(dir)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer cold.CloseStore()
			if !cold.StoreBacked() {
				t.Fatal("opened sharded index does not report store backing")
			}

			mutated := append([]Series(nil), seed...)
			for _, id := range []string{seed[2].ID, seed[8].ID, seed[13].ID} {
				if err := cold.Remove(id); err != nil {
					t.Fatal(err)
				}
				for i, s := range mutated {
					if s.ID == id {
						mutated = append(mutated[:i], mutated[i+1:]...)
						break
					}
				}
			}
			for _, s := range d.Series[16:19] {
				if err := cold.Add(s); err != nil {
					t.Fatal(err)
				}
				mutated = append(mutated, s)
			}

			var flat *Index
			if backend == "engine" {
				flat, err = NewIndex(mutated, opts)
			} else {
				flat, err = NewWindowedIndex(mutated, 12)
			}
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			check := func(label string, si *ShardedIndex) {
				t.Helper()
				for q := 0; q < 4; q++ {
					nbrs, _, err := flat.Search(ctx, d.Series[q], WithK(6))
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := si.Search(ctx, d.Series[q], WithK(6))
					if err != nil {
						t.Fatal(err)
					}
					requireSameHits(t, fmt.Sprintf("%s query %d", label, q), flatHits(flat, nbrs), got)
				}
			}
			check("mutated", cold)
			if err := cold.Compact(); err != nil {
				t.Fatal(err)
			}
			check("compacted", cold)
			st, err := cold.StoreStats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Tombstones != 0 || st.LiveRecords != len(mutated) {
				t.Fatalf("unexpected post-compaction store stats: %+v", st)
			}

			if err := cold.CloseStore(); err != nil {
				t.Fatal(err)
			}
			var back *ShardedIndex
			if backend == "engine" {
				back, err = OpenShardedIndex(dir, opts)
			} else {
				back, err = OpenShardedWindowedIndex(dir)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer back.CloseStore()
			check("reopened", back)
		})
	}
}

// TestOpenIndexValidation: wrong options, wrong kind, and gob Save on a
// store-backed index all refuse with the right sentinels.
func TestOpenIndexValidation(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 89, SeriesPerClass: 4})
	opts := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}
	_, cold, dir := storeAndFlat(t, "engine", d.Series, opts)

	if _, err := OpenIndex(dir, Options{Strategy: ItakuraBand}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("mismatched options: %v, want ErrConfigMismatch", err)
	}
	if _, err := OpenWindowedIndex(dir); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("kind mismatch: %v, want ErrConfigMismatch", err)
	}
	if err := cold.Save(&bytes.Buffer{}); !errors.Is(err, ErrStoreBacked) {
		t.Fatalf("gob Save of a store-backed index: %v, want ErrStoreBacked", err)
	}
	if err := cold.SaveStore(filepath.Join(dir, "again")); !errors.Is(err, ErrStoreBacked) {
		t.Fatalf("SaveStore of a store-backed index: %v, want ErrStoreBacked", err)
	}
	if err := cold.Add(Series{Label: 1, Values: []float64{1, 2, 3}}); !errors.Is(err, ErrNoID) {
		t.Fatalf("store-backed Add without ID: %v, want ErrNoID", err)
	}

	flat, err := NewIndex(d.Series, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Compact(); !errors.Is(err, ErrNotStoreBacked) {
		t.Fatalf("Compact on in-RAM index: %v, want ErrNotStoreBacked", err)
	}
	if _, err := flat.StoreStats(); !errors.Is(err, ErrNotStoreBacked) {
		t.Fatalf("StoreStats on in-RAM index: %v, want ErrNotStoreBacked", err)
	}
	if err := flat.SaveStore(dir); !errors.Is(err, ErrStoreExists) {
		t.Fatalf("SaveStore into an existing store: %v, want ErrStoreExists", err)
	}
	custom, err := NewIndex(d.Series, Options{PointDistance: func(a, b float64) float64 { return math.Abs(a - b) }})
	if err != nil {
		t.Fatal(err)
	}
	if err := custom.SaveStore(filepath.Join(t.TempDir(), "custom")); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("SaveStore under a custom PointDistance: %v, want ErrConfigMismatch", err)
	}
}

// TestOpenShardedAtomicFailure: opening a sharded store root where one
// shard is missing or corrupt must fail as a whole — never serve a
// cluster over a subset of its shards.
func TestOpenShardedAtomicFailure(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 97, SeriesPerClass: 6})
	// Small segments so every shard holds sealed segments: corruption in
	// a sealed segment is never repaired silently (the active segment's
	// tail is, by design — torn-tail recovery).
	opts := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10, StoreSegmentRecords: 2}
	si, err := NewShardedIndex(d.Series, 3, opts)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("missing-shard", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "s")
		if err := si.SaveStore(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.RemoveAll(filepath.Join(dir, shardDirName(2))); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenShardedIndex(dir, opts); !errors.Is(err, ErrCorruptManifest) {
			t.Fatalf("open with a missing shard: %v, want ErrCorruptManifest", err)
		}
	})
	t.Run("corrupt-shard", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "s")
		if err := si.SaveStore(dir); err != nil {
			t.Fatal(err)
		}
		// Flip one byte in shard 1's first sealed hot segment.
		matches, err := filepath.Glob(filepath.Join(dir, shardDirName(1), "seg-*.hot"))
		if err != nil || len(matches) == 0 {
			t.Fatalf("no hot segments found: %v", err)
		}
		data, err := os.ReadFile(matches[0])
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-5] ^= 0xff
		if err := os.WriteFile(matches[0], data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenShardedIndex(dir, opts); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("open with a corrupt shard: %v, want ErrCorruptSegment", err)
		}
	})
}

// TestOpenShardedDegraded: under AllowQuarantine a corrupt sealed
// segment in one shard degrades the open — the damaged shard serves its
// surviving records, the other shards serve everything, and per-shard
// health reports exactly where the damage is — while a plain open of
// the now-quarantined root keeps refusing (the operator must keep
// opting into degraded serving).
func TestOpenShardedDegraded(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 107, SeriesPerClass: 6})
	opts := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10, StoreSegmentRecords: 2}
	si, err := NewShardedIndex(d.Series, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "s")
	if err := si.SaveStore(dir); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, shardDirName(1), "seg-*.hot"))
	if err != nil || len(matches) < 2 {
		t.Fatalf("want sealed segments in shard 1, got %v (%v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	deg, err := OpenShardedIndex(dir, opts, AllowQuarantine())
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	defer deg.CloseStore()
	stats, err := deg.StoreStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Health.Quarantined != 1 || stats.Health.QuarantinedRecords == 0 {
		t.Fatalf("aggregate health = %+v, want one quarantined segment with records", stats.Health)
	}
	if !stats.Health.Degraded() {
		t.Fatal("aggregate health not degraded")
	}
	if len(stats.ShardHealth) != 3 {
		t.Fatalf("ShardHealth has %d entries, want 3", len(stats.ShardHealth))
	}
	for i, h := range stats.ShardHealth {
		want := 0
		if i == 1 {
			want = 1
		}
		if h.Quarantined != want {
			t.Fatalf("shard %d health = %+v, want Quarantined %d", i, h, want)
		}
	}
	if got := stats.LiveRecords + stats.Health.QuarantinedRecords; got != len(d.Series) {
		t.Fatalf("live %d + quarantined %d = %d records, want %d",
			stats.LiveRecords, stats.Health.QuarantinedRecords, got, len(d.Series))
	}
	if q, err := filepath.Glob(filepath.Join(dir, shardDirName(1), "seg-*.quarantine")); err != nil || len(q) != 2 {
		t.Fatalf("quarantine files = %v (%v), want the segment's hot and val pair", q, err)
	}

	// Every surviving series is still retrievable as its own nearest
	// neighbour; the quarantined ones are gone from the result surface.
	live := make(map[string]bool)
	for _, st := range deg.stores {
		for _, rec := range st.Live() {
			live[rec.ID] = true
		}
	}
	if len(live) != stats.LiveRecords {
		t.Fatalf("stores serve %d series, stats say %d live", len(live), stats.LiveRecords)
	}
	ctx := context.Background()
	for _, s := range d.Series {
		if !live[s.ID] {
			continue
		}
		hits, _, err := deg.Search(ctx, Series{Values: s.Values}, WithK(1))
		if err != nil {
			t.Fatalf("search %q: %v", s.ID, err)
		}
		if len(hits) != 1 || hits[0].ID != s.ID {
			t.Fatalf("search %q: got %v, want itself", s.ID, hits)
		}
	}

	// The quarantine is sticky: a plain reopen refuses until the
	// operator resolves it.
	if _, err := OpenShardedIndex(dir, opts); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("plain reopen of a quarantined root: %v, want ErrQuarantined", err)
	}
}

// TestOpenShardedMixedConfig: a shard directory spliced in from a store
// written under different options must refuse with ErrConfigMismatch —
// per-shard fingerprints are checked against each other, not just
// shard 0's against the caller.
func TestOpenShardedMixedConfig(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 101, SeriesPerClass: 6})
	optsA := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}
	optsB := Options{Strategy: ItakuraBand}
	siA, err := NewShardedIndex(d.Series, 3, optsA)
	if err != nil {
		t.Fatal(err)
	}
	siB, err := NewShardedIndex(d.Series, 3, optsB)
	if err != nil {
		t.Fatal(err)
	}
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	if err := siA.SaveStore(dirA); err != nil {
		t.Fatal(err)
	}
	if err := siB.SaveStore(dirB); err != nil {
		t.Fatal(err)
	}
	// Splice shard 1 of B into A: shard 0 still matches the caller's
	// options, so only the cross-shard check can catch it.
	if err := os.RemoveAll(filepath.Join(dirA, shardDirName(1))); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dirB, shardDirName(1)), filepath.Join(dirA, shardDirName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardedIndex(dirA, optsA); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("open over mixed-config shards: %v, want ErrConfigMismatch", err)
	}
}

// TestLoadShardedIndexRejectsGarbage: the legacy gob loader fails
// cleanly (no partial cluster) on corrupt input.
func TestLoadShardedIndexRejectsGarbage(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 103, SeriesPerClass: 4})
	opts := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}
	si, err := NewShardedIndex(d.Series, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := si.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncated snapshot.
	if _, err := LoadShardedIndex(bytes.NewReader(buf.Bytes()[:buf.Len()/2]), opts); err == nil {
		t.Fatal("truncated sharded snapshot loaded")
	}
	// Not a gob stream at all.
	if _, err := LoadShardedIndex(strings.NewReader("not a gob snapshot"), opts); err == nil {
		t.Fatal("garbage input loaded as a sharded snapshot")
	}
	// A flat snapshot fed to the sharded loader (kind mismatch).
	flat, err := NewIndex(d.Series, opts)
	if err != nil {
		t.Fatal(err)
	}
	var fbuf bytes.Buffer
	if err := flat.Save(&fbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardedIndex(&fbuf, opts); err == nil {
		t.Fatal("flat snapshot loaded as a sharded snapshot")
	}
}

// TestMigrateStoreRoundTrip: gob snapshots (the legacy format, readable
// for one more release) convert into segment stores that answer
// bit-identically.
func TestMigrateStoreRoundTrip(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 107, SeriesPerClass: 6})
	opts := Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}
	ctx := context.Background()

	t.Run("flat", func(t *testing.T) {
		flat, err := NewIndex(d.Series, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := flat.Save(&buf); err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "migrated")
		if err := MigrateStore(&buf, dir, 0); err != nil {
			t.Fatal(err)
		}
		cold, err := OpenIndex(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cold.CloseStore()
		want, _, err := flat.Search(ctx, d.Series[0], WithK(5))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := cold.Search(ctx, d.Series[0], WithK(5))
		if err != nil {
			t.Fatal(err)
		}
		requireSameNeighbors(t, "migrated", want, got)
	})
	t.Run("sharded", func(t *testing.T) {
		si, err := NewShardedIndex(d.Series, 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := si.Save(&buf); err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "migrated")
		if err := MigrateShardedStore(&buf, dir, 0); err != nil {
			t.Fatal(err)
		}
		cold, err := OpenShardedIndex(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cold.CloseStore()
		want, _, err := si.Search(ctx, d.Series[0], WithK(5))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := cold.Search(ctx, d.Series[0], WithK(5))
		if err != nil {
			t.Fatal(err)
		}
		requireSameHits(t, "migrated", want, got)
	})
}
