// Command sdtwd serves sDTW similarity search over HTTP: an N-way
// sharded index behind JSON endpoints, with bounded-admission
// backpressure and graceful drain on SIGTERM.
//
//	sdtwd -addr :8080 -shards 4                 # empty engine-backed index
//	sdtwd -load idx.gob                         # serve a saved sharded index
//	sdtwd -load widx.gob -backend windowed      # saved windowed sharded index
//	sdtwd -store idx.store                      # serve a segment store (sdtw migrate)
//	sdtwd -store idx.store -allow-quarantine    # serve around quarantined segments
//
// Endpoints:
//
//	POST /v1/search   body {"values":[...], "k":5}           → top-k hits + cascade stats
//	POST /v1/add      body {"id":"s-1","label":0,"values":[...]}
//	POST /v1/remove   body {"id":"s-1"}
//	GET  /v1/stats    collection, shard balance, admission counters, store health
//	GET  /healthz     200 (degraded:true when serving around quarantine), 503 once draining
//
// On SIGTERM or SIGINT the listener closes, /healthz flips to 503, and
// in-flight searches run to completion; after -drain-timeout any still
// running are cancelled through the DP's cancellation checks.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdtw"
	"sdtw/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		shards       = flag.Int("shards", 4, "shard count for a fresh index (ignored with -load)")
		workers      = flag.Int("workers", 0, "DP worker budget per search (0 = GOMAXPROCS)")
		backend      = flag.String("backend", "engine", "index backend: engine | windowed")
		load         = flag.String("load", "", "serve a sharded index snapshot (legacy ShardedIndex.Save gob format)")
		storeDir     = flag.String("store", "", "serve a sharded segment store directory (ShardedIndex.SaveStore / sdtw migrate format)")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrent searches (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "max searches queued for a slot before 429 (0 = 4x max-inflight)")
		defaultK     = flag.Int("default-k", 1, "k when a search request sets neither k nor threshold")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight searches")
		quarantine   = flag.Bool("allow-quarantine", false,
			"serve degraded around corrupt sealed segments (quarantined, reported via /v1/stats and /healthz) instead of refusing to start")
	)
	flag.Parse()

	ix, err := buildIndex(*backend, *load, *storeDir, *shards, *workers, *quarantine)
	if err != nil {
		log.Fatalf("sdtwd: %v", err)
	}
	if ix.StoreBacked() {
		if stats, err := ix.StoreStats(); err == nil && stats.Health.Degraded() {
			log.Printf("sdtwd: DEGRADED: %d quarantined segments hold %d records back from serving (run `sdtw fsck` to inspect)",
				stats.Health.Quarantined, stats.Health.QuarantinedRecords)
		}
		defer func() {
			if err := ix.CloseStore(); err != nil {
				log.Printf("sdtwd: closing store: %v", err)
			}
		}()
	}
	srv := serve.New(ix, serve.Config{
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		DefaultK:    *defaultK,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, *addr, *drainTimeout, ready) }()
	log.Printf("sdtwd: serving %d series across %d shards on %s (backend=%s)",
		ix.Len(), ix.Shards(), <-ready, *backend)

	<-ctx.Done()
	stop() // a second signal now kills the process the default way
	log.Printf("sdtwd: draining (timeout %s)", *drainTimeout)
	if err := <-done; err != nil {
		log.Fatalf("sdtwd: drain incomplete: %v", err)
	}
	log.Printf("sdtwd: drained cleanly")
}

func buildIndex(backend, load, storeDir string, shards, workers int, quarantine bool) (*sdtw.ShardedIndex, error) {
	opts := sdtw.DefaultOptions()
	opts.Workers = workers
	if load != "" && storeDir != "" {
		return nil, fmt.Errorf("-load and -store are mutually exclusive")
	}
	if storeDir != "" {
		var open []sdtw.OpenOption
		if quarantine {
			open = append(open, sdtw.AllowQuarantine())
		}
		switch backend {
		case "engine":
			return sdtw.OpenShardedIndex(storeDir, opts, open...)
		case "windowed":
			return sdtw.OpenShardedWindowedIndex(storeDir, open...)
		default:
			return nil, fmt.Errorf("unknown -backend %q (want engine or windowed)", backend)
		}
	}
	if load == "" {
		if backend == "windowed" {
			return nil, fmt.Errorf("-backend windowed needs -load: the series length fixes the window geometry")
		}
		if backend != "engine" {
			return nil, fmt.Errorf("unknown -backend %q (want engine or windowed)", backend)
		}
		return sdtw.NewShardedIndex(nil, shards, opts)
	}
	f, err := os.Open(load)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch backend {
	case "engine":
		return sdtw.LoadShardedIndex(f, opts)
	case "windowed":
		return sdtw.LoadShardedWindowedIndex(f)
	default:
		return nil, fmt.Errorf("unknown -backend %q (want engine or windowed)", backend)
	}
}
