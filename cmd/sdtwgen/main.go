// Command sdtwgen emits the synthetic reproduction workloads (Gun, Trace,
// 50Words) in the UCR text format so they can be inspected, plotted, or
// fed back through cmd/sdtw.
//
// Usage:
//
//	sdtwgen -dataset Gun                    # paper-sized Gun to stdout
//	sdtwgen -dataset Trace -out trace.txt   # write to a file
//	sdtwgen -dataset 50Words -per-class 3   # reduced workload
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sdtw"
)

func main() {
	var (
		dataset  = flag.String("dataset", "Gun", "data set to generate: Gun, Trace, 50Words")
		out      = flag.String("out", "", "output path (default stdout)")
		seed     = flag.Int64("seed", 42, "generator seed")
		perClass = flag.Int("per-class", 0, "series per class (0 = paper size)")
		length   = flag.Int("length", 0, "series length (0 = paper size)")
		noise    = flag.Float64("noise", 0, "observation noise sigma (0 = generator default)")
		warp     = flag.Float64("warp", 0, "time-warp strength in [0,1) (0 = generator default)")
	)
	flag.Parse()

	d, err := sdtw.DatasetByName(*dataset, sdtw.DatasetConfig{
		Seed:           *seed,
		SeriesPerClass: *perClass,
		Length:         *length,
		NoiseSigma:     *noise,
		WarpStrength:   *warp,
	})
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := sdtw.WriteUCR(w, d); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sdtwgen: wrote %s: %d series of length %d in %d classes\n",
		d.Name, d.Len(), d.Length, d.NumClasses)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtwgen:", err)
	os.Exit(1)
}
