package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdtw/internal/experiments"
)

func TestRunHubStream(t *testing.T) {
	out, entries, err := runHubStream(experiments.Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hub", "monitors", "speedup", "skip%", "p99 lat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet report missing %q:\n%s", want, out)
		}
	}
	grid, points := hubGrid(experiments.Small)
	if len(entries) != 2*len(grid) {
		t.Fatalf("got %d entries, want hub+monitors per grid point (%d)", len(entries), 2*len(grid))
	}
	byKey := map[[3]int]map[string]streamEntry{}
	for _, e := range entries {
		if e.Dataset != "fleet" || e.Points != points || e.QueryLen != hubQueryLen {
			t.Fatalf("malformed fleet entry: %+v", e)
		}
		if e.PointsPerSec <= 0 || e.WallMS <= 0 {
			t.Fatalf("implausible throughput: %+v", e)
		}
		k := [3]int{e.Streams, e.Queries, e.Points}
		if byKey[k] == nil {
			byKey[k] = map[string]streamEntry{}
		}
		byKey[k][e.Mode] = e
	}
	for _, g := range grid {
		pair := byKey[[3]int{g.streams, g.queries, points}]
		hub, mon := pair["hub"], pair["monitors"]
		if hub.Mode == "" || mon.Mode == "" {
			t.Fatalf("grid point %dx%d missing a mode: %+v", g.streams, g.queries, pair)
		}
		// The hub and the per-stream monitors watch the same fleet for the
		// same queries: the match counts must agree exactly (the prefilter
		// is exactness-preserving, pooling only changes where state lives).
		if hub.Matches != mon.Matches {
			t.Fatalf("%dx%d: hub found %d matches, monitors %d", g.streams, g.queries, hub.Matches, mon.Matches)
		}
		if hub.Matches == 0 {
			t.Fatalf("%dx%d: workload planted no measurable matches", g.streams, g.queries)
		}
		// The workload is dominated by far excursions, so the prefilter
		// must actually bite; monitors have no prefilter at all.
		if hub.SkipRate < 0.3 {
			t.Fatalf("%dx%d: hub skip rate %.2f implausibly low", g.streams, g.queries, hub.SkipRate)
		}
		if mon.SkipRate != 0 {
			t.Fatalf("%dx%d: monitors report a skip rate: %+v", g.streams, g.queries, mon)
		}
		if hub.P99LatencyPoints < hub.P50LatencyPoints || hub.P50LatencyPoints < 0 {
			t.Fatalf("%dx%d: malformed latency percentiles: %+v", g.streams, g.queries, hub)
		}
	}
}

func TestCheckStreamBaseline(t *testing.T) {
	entry := streamEntry{Dataset: "fleet", Mode: "hub", Streams: 16, Queries: 4, QueryLen: hubQueryLen,
		Points: 500, PointsPerSec: 1e6, SkipRate: 0.60, P50LatencyPoints: 200, P99LatencyPoints: 480}
	entries := []streamEntry{entry}
	dir := t.TempDir()
	write := func(name string, baseline []streamEntry) string {
		t.Helper()
		path := filepath.Join(dir, name)
		data, err := json.Marshal(baseline)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := entry
	base.PointsPerSec = 1.2e6
	base.SkipRate = 0.65
	base.P99LatencyPoints = 400
	ok := write("ok.json", []streamEntry{base})
	if err := checkStreamBaseline(entries, ok, 1.5); err != nil {
		t.Fatalf("passing baseline failed: %v", err)
	}
	fast := base
	fast.PointsPerSec = 1e7
	if err := checkStreamBaseline(entries, write("fast.json", []streamEntry{fast}), 1.5); err == nil {
		t.Fatal("throughput regression not caught")
	}
	skippy := base
	skippy.SkipRate = 0.90
	if err := checkStreamBaseline(entries, write("skippy.json", []streamEntry{skippy}), 1.5); err == nil {
		t.Fatal("skip-rate regression not caught")
	}
	// Latency gating absorbs two batches of grace, so the regression must
	// be bigger than hubLatencyGracePoints to trip.
	slow := entry
	slow.P99LatencyPoints = base.P99LatencyPoints*1.5 + hubLatencyGracePoints + 1
	if err := checkStreamBaseline([]streamEntry{slow}, ok, 1.5); err == nil {
		t.Fatal("latency regression not caught")
	}
	// Unmatched baseline entries are skipped; a baseline matching nothing
	// is an error (it means the workload and baseline diverged entirely).
	other := base
	other.Streams = 64
	if err := checkStreamBaseline(entries, write("other.json", []streamEntry{other}), 1.5); err == nil {
		t.Fatal("baseline with no matching entries accepted")
	}
	if err := checkStreamBaseline(entries, ok, 0); err != nil {
		t.Fatalf("disabled gate errored: %v", err)
	}
	if err := checkStreamBaseline(entries, filepath.Join(dir, "missing.json"), 1.5); err == nil {
		t.Fatal("missing baseline file accepted")
	}
}
