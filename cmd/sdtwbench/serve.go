package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdtw"
	"sdtw/internal/experiments"
	"sdtw/internal/serve"
)

// serveEntry is one row of the machine-readable serving results: per
// collection size and client concurrency, the end-to-end HTTP search
// latency distribution and throughput of the sharded service — the
// numbers the bench-serve CI lane gates against a committed baseline.
type serveEntry struct {
	Dataset     string  `json:"dataset"`
	Series      int     `json:"series"`
	Length      int     `json:"length"`
	Shards      int     `json:"shards"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Rejected    int64   `json:"rejected"`
	QPS         float64 `json:"qps"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// writeServeJSON persists the serving entries for machines (the CI
// regression gate) next to the human-readable table on stdout.
func writeServeJSON(path string, entries []serveEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding serve results: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing serve results: %w", err)
	}
	return nil
}

// serveRequests is the per-combination request budget per workload scale.
func serveRequests(sc experiments.Scale) int {
	switch sc {
	case experiments.Small:
		return 400
	case experiments.Medium:
		return 600
	default:
		return 2400
	}
}

// runServe benchmarks the sdtwd serving path end to end: a sharded index
// behind the real HTTP handler stack (serve.Server in an in-process
// httptest server), swept across collection sizes and client
// concurrency. Every request is a k=5 search over real HTTP with JSON in
// both directions, so the numbers include routing, admission and
// serialisation — what a client of cmd/sdtwd actually observes.
func runServe(name string, sc experiments.Scale, seed int64, shards int) (string, []serveEntry, error) {
	d, err := experiments.LoadDataset(name, sc, seed)
	if err != nil {
		return "", nil, err
	}
	requests := serveRequests(sc)
	sizes := []int{d.Len(), 4 * d.Len()}
	concurrencies := []int{1, 4, 16}

	var sb strings.Builder
	var entries []serveEntry
	fmt.Fprintf(&sb, "%s: sharded HTTP search service, %d shards, k=5, %d requests per point\n",
		d.Name, shards, requests)
	fmt.Fprintf(&sb, "%-8s %8s %13s %10s %10s %10s %10s\n",
		"series", "clients", "requests", "qps", "p50", "p99", "rejected")

	for _, size := range sizes {
		// Replicate the dataset up to the target collection size; copies
		// get fresh IDs so hash routing spreads them across shards.
		collection := make([]sdtw.Series, 0, size)
		for i := 0; len(collection) < size; i++ {
			s := d.Series[i%d.Len()]
			if i >= d.Len() {
				s = sdtw.NewSeries(fmt.Sprintf("%s#rep%d", s.ID, i/d.Len()), s.Label, s.Values)
			}
			collection = append(collection, s)
		}
		ix, err := sdtw.NewShardedIndex(collection, shards, sdtw.Options{
			Strategy:  sdtw.FixedCoreFixedWidth,
			WidthFrac: 0.10,
		})
		if err != nil {
			return "", nil, fmt.Errorf("sharding %d series of %s: %w", size, d.Name, err)
		}
		srv := serve.New(ix, serve.Config{MaxQueue: 64})
		ts := httptest.NewServer(srv.Handler())

		for _, conc := range concurrencies {
			// Best of three trials: the minimum p99 estimates the service's
			// own tail, shedding scheduler and GC stalls of the harness
			// host that would otherwise flake the CI gate.
			var e serveEntry
			for trial := 0; trial < 3; trial++ {
				lat, rejected, wall, err := sweepServe(ts, d, requests, conc)
				if err != nil {
					ts.Close()
					return "", nil, fmt.Errorf("sweeping %s at %d series, %d clients: %w", d.Name, size, conc, err)
				}
				t := serveEntry{
					Dataset:     d.Name,
					Series:      size,
					Length:      d.Length,
					Shards:      shards,
					Concurrency: conc,
					Requests:    requests,
					Rejected:    rejected,
					QPS:         float64(len(lat)) / wall.Seconds(),
					P50MS:       percentileMS(lat, 0.50),
					P99MS:       percentileMS(lat, 0.99),
				}
				if trial == 0 || t.P99MS < e.P99MS {
					e = t
				}
			}
			entries = append(entries, e)
			fmt.Fprintf(&sb, "%-8d %8d %13d %10.0f %9.2fms %9.2fms %10d\n",
				size, conc, requests, e.QPS, e.P50MS, e.P99MS, e.Rejected)
		}
		ts.Close()
	}
	return sb.String(), entries, nil
}

// sweepServe fires the request budget at the test server from conc
// client goroutines, each with one outstanding k=5 search, and returns
// the per-request latencies, the 429 count, and the elapsed wall time.
func sweepServe(ts *httptest.Server, d *sdtw.Dataset, requests, conc int) ([]time.Duration, int64, time.Duration, error) {
	bodies := make([][]byte, d.Len())
	for i, s := range d.Series {
		b, err := json.Marshal(serve.SearchRequest{ID: s.ID, Values: s.Values, K: 5})
		if err != nil {
			return nil, 0, 0, err
		}
		bodies[i] = b
	}
	// Warm up connections, caches and the scheduler outside the measured
	// window: cold-start outliers otherwise dominate the p99 at small
	// request budgets.
	client := ts.Client()
	for i := 0; i < 2*conc+10; i++ {
		resp, err := client.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			return nil, 0, 0, err
		}
		_ = resp.Body.Close()
	}
	var next atomic.Int64
	var rejected atomic.Int64
	lats := make([][]time.Duration, conc)
	errs := make([]error, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					errs[w] = err
					return
				}
				_ = resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					lats[w] = append(lats[w], time.Since(t0))
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					errs[w] = fmt.Errorf("search returned status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, 0, 0, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return nil, 0, 0, fmt.Errorf("every request was rejected")
	}
	return all, rejected.Load(), wall, nil
}

// percentileMS returns the q-quantile of lats in milliseconds (nearest
// rank).
func percentileMS(lats []time.Duration, q float64) float64 {
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Microseconds()) / 1000
}

// serveP99GraceMS is the absolute slack added on top of the relative
// regression budget. Host scheduling stalls are a few milliseconds
// regardless of the workload, so the smallest sweep points (p99 of a few
// ms) would flake on a pure ratio; a real regression still trips the
// gate at the larger points, whose p99 is tens of milliseconds.
const serveP99GraceMS = 5.0

// checkServeBaseline compares the run against a committed baseline:
// entries are matched by (dataset, series, shards, concurrency) and the
// check fails if any p99 exceeds baseline*maxFactor + serveP99GraceMS
// (maxFactor 1.2 = a 20% regression budget). Unmatched entries are
// skipped, so workload evolution does not break the gate; maxFactor 0
// disables it.
func checkServeBaseline(entries []serveEntry, baselinePath string, maxFactor float64) error {
	if baselinePath == "" || maxFactor <= 0 {
		return nil
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading serve baseline: %w", err)
	}
	var baseline []serveEntry
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("decoding serve baseline %s: %w", baselinePath, err)
	}
	type key struct {
		dataset              string
		series, shards, conc int
	}
	base := make(map[key]serveEntry, len(baseline))
	for _, b := range baseline {
		base[key{b.Dataset, b.Series, b.Shards, b.Concurrency}] = b
	}
	matched := 0
	for _, e := range entries {
		b, ok := base[key{e.Dataset, e.Series, e.Shards, e.Concurrency}]
		if !ok {
			continue
		}
		matched++
		if allowed := b.P99MS*maxFactor + serveP99GraceMS; e.P99MS > allowed {
			return fmt.Errorf("serve p99 regression: %s %d series, %d clients: %.2fms > %.2fms (baseline %.2fms x %.2f + %.0fms grace)",
				e.Dataset, e.Series, e.Concurrency, e.P99MS, allowed, b.P99MS, maxFactor, serveP99GraceMS)
		}
	}
	if matched == 0 {
		return fmt.Errorf("serve baseline %s matched no entries of this run", baselinePath)
	}
	fmt.Printf("serve p99 within %.0f%% of baseline on %d matched points\n\n", 100*(maxFactor-1), matched)
	return nil
}
