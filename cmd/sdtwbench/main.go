// Command sdtwbench regenerates the tables and figures of the sDTW paper
// (Candan et al., VLDB 2012) on the synthetic reproduction workloads.
//
// Usage:
//
//	sdtwbench -exp all                 # every table and figure, full scale
//	sdtwbench -exp fig13 -scale small  # one experiment, reduced workload
//	sdtwbench -exp fig18 -dataset Gun  # restrict figures to one data set
//	sdtwbench -exp bands               # ASCII rendering of the band shapes
//
// Experiments: table1, table2, fig13, fig14, fig15, fig16, fig17, fig18,
// bands, all. Scales: full (paper sizes), medium, small.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdtw"
	"sdtw/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: table1, table2, fig13, fig14, fig15, fig16, fig17, fig18, noise, invariance, baseline, extras, retrieval, bands, all")
		scale   = flag.String("scale", "full", "workload scale: full, medium, small")
		dataset = flag.String("dataset", "", "restrict per-dataset figures to one data set (Gun, Trace, 50Words)")
		seed    = flag.Int64("seed", 42, "workload generator seed")
	)
	flag.Parse()

	sc, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}
	names := []string{"Gun", "Trace", "50Words"}
	if *dataset != "" {
		names = []string{*dataset}
	}

	run := func(name string, fn func() error) {
		fmt.Printf("=== %s ===\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := false

	if want("table1") {
		ran = true
		run("Table 1: data set overview", func() error {
			rows, err := experiments.Table1(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable1(rows))
			return nil
		})
	}
	if want("table2") {
		ran = true
		run("Table 2: salient points per scale", func() error {
			rows, err := experiments.Table2(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable2(rows))
			return nil
		})
	}
	if want("fig13") || want("fig14") {
		ran = true
		for _, name := range names {
			name := name
			run("Fig 13/14: retrieval accuracy & distance error on "+name, func() error {
				results, err := experiments.Fig13(name, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFig13(results))
				fmt.Println()
				fmt.Print(experiments.RenderFig14(results))
				return nil
			})
		}
	}
	if want("fig15") {
		ran = true
		run("Fig 15: intra-class distance errors (Trace)", func() error {
			results, err := experiments.Fig15(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig15(results))
			return nil
		})
	}
	if want("fig16") {
		ran = true
		run("Fig 16: classification accuracy (50Words)", func() error {
			results, err := experiments.Fig16(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig16(results))
			return nil
		})
	}
	if want("fig17") {
		ran = true
		for _, name := range names {
			name := name
			run("Fig 17: matching vs DP time breakdown on "+name, func() error {
				results, err := experiments.Fig17(name, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFig17(results))
				return nil
			})
		}
	}
	if want("fig18") {
		ran = true
		for _, name := range names {
			name := name
			run("Fig 18: descriptor length sweep on "+name, func() error {
				points, err := experiments.Fig18(name, sc, *seed, nil)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFig18(points))
				return nil
			})
		}
	}
	if want("baseline") {
		ran = true
		run("Learned (R-K) vs structural constraints (§1)", func() error {
			rows, err := experiments.LearnedBaseline(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderBaseline(rows))
			return nil
		})
	}
	if want("noise") {
		ran = true
		run("Noise robustness of salient features (§3.1.2)", func() error {
			rows, err := experiments.NoiseRobustness(*seed, nil)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderNoise(rows))
			return nil
		})
	}
	if want("invariance") {
		ran = true
		run("Amplitude-invariance ablation (§3.1.2)", func() error {
			rows, err := experiments.Invariance(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderInvariance(rows))
			return nil
		})
	}
	if want("extras") {
		ran = true
		for _, name := range names {
			name := name
			run("Extras: Itakura, symmetric, FastDTW, combination on "+name, func() error {
				rows, err := experiments.Extras(name, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderExtras(name, rows))
				return nil
			})
		}
	}
	if want("retrieval") {
		ran = true
		for _, name := range names {
			name := name
			run("Cascaded k-NN retrieval (LB_Kim -> LB_Keogh -> sDTW) on "+name, func() error {
				out, err := runRetrieval(name, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Print(out)
				return nil
			})
		}
	}
	if want("bands") {
		ran = true
		run("Band shapes (Fig 2/10)", func() error {
			out, err := experiments.RenderBandShapes(*seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

// runRetrieval exercises the Index's lower-bound-cascaded batch retrieval
// on one workload: every series queried against the collection, per band
// strategy, reporting how many candidates each cascade stage discarded
// and the DP work that remained.
func runRetrieval(name string, sc experiments.Scale, seed int64) (string, error) {
	d, err := experiments.LoadDataset(name, sc, seed)
	if err != nil {
		return "", err
	}
	configs := []struct {
		label string
		opts  sdtw.Options
	}{
		{"fc,fw 10%", sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.10}},
		{"fc,fw 20%", sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.20}},
		{"itakura", sdtw.Options{Strategy: sdtw.ItakuraBand}},
		{"ac,aw", sdtw.DefaultOptions()},
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d series x len %d, k=5, all-series batch queries\n",
		d.Name, d.Len(), d.Length)
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %10s %9s %9s %12s\n",
		"algorithm", "candidates", "lb_kim", "lb_keogh", "evaluated", "prune", "cellsgain", "wall")
	for _, cfg := range configs {
		ix, err := sdtw.NewIndex(d.Series, cfg.opts)
		if err != nil {
			return "", fmt.Errorf("indexing %s under %s: %w", d.Name, cfg.label, err)
		}
		_, stats, err := ix.TopKBatch(d.Series, 5)
		if err != nil {
			return "", fmt.Errorf("batch retrieval on %s under %s: %w", d.Name, cfg.label, err)
		}
		fmt.Fprintf(&sb, "%-10s %10d %10d %10d %10d %8.1f%% %8.1f%% %12v\n",
			cfg.label, stats.Candidates, stats.PrunedKim, stats.PrunedKeogh, stats.Evaluated,
			100*stats.PruneRate(), 100*stats.CellsGain(), stats.WallTime.Round(time.Millisecond))
	}
	return sb.String(), nil
}

func parseScale(s string) (experiments.Scale, error) {
	switch strings.ToLower(s) {
	case "full":
		return experiments.Full, nil
	case "medium":
		return experiments.Medium, nil
	case "small":
		return experiments.Small, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want full, medium or small)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtwbench:", err)
	os.Exit(1)
}
