// Command sdtwbench regenerates the tables and figures of the sDTW paper
// (Candan et al., VLDB 2012) on the synthetic reproduction workloads.
//
// Usage:
//
//	sdtwbench -exp all                 # every table and figure, full scale
//	sdtwbench -exp fig13 -scale small  # one experiment, reduced workload
//	sdtwbench -exp fig18 -dataset Gun  # restrict figures to one data set
//	sdtwbench -exp stream -scale small # streaming subsequence monitor throughput
//	sdtwbench -exp kernel -short       # specialized-vs-generic kernel A/B smoke
//	sdtwbench -exp serve -short        # sharded HTTP search service latency/QPS
//	sdtwbench -exp bands               # ASCII rendering of the band shapes
//
// Experiments: table1, table2, fig13, fig14, fig15, fig16, fig17, fig18,
// noise, invariance, baseline, extras, retrieval, stream, kernel, serve,
// bands, all. Scales: full (paper sizes), medium, small; -short forces the small
// scale and trims measurement budgets for CI smoke lanes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdtw"
	"sdtw/internal/experiments"
)

func main() {
	var (
		exp            = flag.String("exp", "all", "experiment to run: table1, table2, fig13, fig14, fig15, fig16, fig17, fig18, noise, invariance, baseline, extras, retrieval, stream, kernel, serve, scale, bands, all")
		scale          = flag.String("scale", "full", "workload scale: full, medium, small")
		short          = flag.Bool("short", false, "CI smoke mode: force the small scale and trim measurement budgets")
		dataset        = flag.String("dataset", "", "restrict per-dataset figures to one data set (Gun, Trace, 50Words)")
		seed           = flag.Int64("seed", 42, "workload generator seed")
		jsonOut        = flag.String("json", "BENCH_retrieval.json", "path for the machine-readable retrieval results (empty disables)")
		streamOut      = flag.String("streamjson", "BENCH_stream.json", "path for the machine-readable streaming-monitor results (empty disables)")
		streamBaseline = flag.String("streambaseline", "", "committed BENCH_stream.json to gate fleet throughput, prefilter skip rate and match-latency p99 against (empty disables)")
		streamRegress  = flag.Float64("streammaxregress", 0, "fail if fleet throughput drops below baseline divided by this factor (or p99 latency exceeds baseline times it), e.g. 1.5 (0 disables)")
		kernelOut      = flag.String("kerneljson", "BENCH_kernel.json", "path for the machine-readable kernel A/B results (empty disables)")
		kernelMin      = flag.Float64("kernelmin", 0, "fail if any specialized/generic kernel throughput ratio drops below this floor (0 disables)")

		serveOut      = flag.String("servejson", "BENCH_serve.json", "path for the machine-readable serving results (empty disables)")
		serveShards   = flag.Int("serveshards", 4, "shard count for the serving benchmark")
		serveBaseline = flag.String("servebaseline", "", "committed BENCH_serve.json to gate p99 latency against (empty disables)")
		serveRegress  = flag.Float64("servemaxregress", 0, "fail if any p99 exceeds its baseline by more than this factor, e.g. 1.2 (0 disables)")

		scaleOut      = flag.String("scalejson", "BENCH_scale.json", "path for the machine-readable storage scaling results (empty disables)")
		scaleBaseline = flag.String("scalebaseline", "", "committed BENCH_scale.json to gate store-open time and stage-0 prune rate against (empty disables)")
		scaleRegress  = flag.Float64("scalemaxregress", 0, "fail if any store-open time exceeds its baseline by more than this factor, e.g. 1.5 (0 disables)")
	)
	flag.Parse()

	if *short {
		*scale = "small"
	}
	sc, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}
	names := []string{"Gun", "Trace", "50Words"}
	if *dataset != "" {
		names = []string{*dataset}
	}

	run := func(name string, fn func() error) {
		fmt.Printf("=== %s ===\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := false

	if want("table1") {
		ran = true
		run("Table 1: data set overview", func() error {
			rows, err := experiments.Table1(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable1(rows))
			return nil
		})
	}
	if want("table2") {
		ran = true
		run("Table 2: salient points per scale", func() error {
			rows, err := experiments.Table2(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable2(rows))
			return nil
		})
	}
	if want("fig13") || want("fig14") {
		ran = true
		for _, name := range names {
			name := name
			run("Fig 13/14: retrieval accuracy & distance error on "+name, func() error {
				results, err := experiments.Fig13(name, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFig13(results))
				fmt.Println()
				fmt.Print(experiments.RenderFig14(results))
				return nil
			})
		}
	}
	if want("fig15") {
		ran = true
		run("Fig 15: intra-class distance errors (Trace)", func() error {
			results, err := experiments.Fig15(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig15(results))
			return nil
		})
	}
	if want("fig16") {
		ran = true
		run("Fig 16: classification accuracy (50Words)", func() error {
			results, err := experiments.Fig16(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig16(results))
			return nil
		})
	}
	if want("fig17") {
		ran = true
		for _, name := range names {
			name := name
			run("Fig 17: matching vs DP time breakdown on "+name, func() error {
				results, err := experiments.Fig17(name, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFig17(results))
				return nil
			})
		}
	}
	if want("fig18") {
		ran = true
		for _, name := range names {
			name := name
			run("Fig 18: descriptor length sweep on "+name, func() error {
				points, err := experiments.Fig18(name, sc, *seed, nil)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFig18(points))
				return nil
			})
		}
	}
	if want("baseline") {
		ran = true
		run("Learned (R-K) vs structural constraints (§1)", func() error {
			rows, err := experiments.LearnedBaseline(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderBaseline(rows))
			return nil
		})
	}
	if want("noise") {
		ran = true
		run("Noise robustness of salient features (§3.1.2)", func() error {
			rows, err := experiments.NoiseRobustness(*seed, nil)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderNoise(rows))
			return nil
		})
	}
	if want("invariance") {
		ran = true
		run("Amplitude-invariance ablation (§3.1.2)", func() error {
			rows, err := experiments.Invariance(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderInvariance(rows))
			return nil
		})
	}
	if want("extras") {
		ran = true
		for _, name := range names {
			name := name
			run("Extras: Itakura, symmetric, FastDTW, combination on "+name, func() error {
				rows, err := experiments.Extras(name, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderExtras(name, rows))
				return nil
			})
		}
	}
	if want("retrieval") {
		ran = true
		var entries []retrievalEntry
		for _, name := range names {
			name := name
			run("Cascaded k-NN retrieval (LB_Kim -> LB_Keogh -> abandoning sDTW) on "+name, func() error {
				out, rows, err := runRetrieval(name, sc, *seed)
				if err != nil {
					return err
				}
				entries = append(entries, rows...)
				fmt.Print(out)
				return nil
			})
		}
		if *jsonOut != "" {
			if err := writeRetrievalJSON(*jsonOut, entries); err != nil {
				fatal(err)
			}
			fmt.Printf("machine-readable results written to %s\n\n", *jsonOut)
		}
	}
	if want("stream") {
		ran = true
		var entries []streamEntry
		for _, name := range names {
			name := name
			run("Streaming subsequence monitor (SPRING) on "+name, func() error {
				out, rows, err := runStream(name, sc, *seed)
				if err != nil {
					return err
				}
				entries = append(entries, rows...)
				fmt.Print(out)
				return nil
			})
		}
		run("Fleet streaming: Hub vs one-Monitor-per-stream grid", func() error {
			out, rows, err := runHubStream(sc, *seed)
			if err != nil {
				return err
			}
			entries = append(entries, rows...)
			fmt.Print(out)
			return nil
		})
		if *streamOut != "" {
			if err := writeStreamJSON(*streamOut, entries); err != nil {
				fatal(err)
			}
			fmt.Printf("machine-readable results written to %s\n\n", *streamOut)
		}
		if err := checkStreamBaseline(entries, *streamBaseline, *streamRegress); err != nil {
			fatal(err)
		}
	}
	if want("kernel") {
		ran = true
		budget := 300 * time.Millisecond
		if *short {
			budget = 60 * time.Millisecond
		}
		kernelNames := []string{"Gun", "Trace"}
		if *dataset != "" {
			kernelNames = []string{*dataset}
		}
		var entries []kernelEntry
		for _, name := range kernelNames {
			name := name
			run("Kernel A/B: monomorphized vs generic hot loops on "+name, func() error {
				out, rows, err := runKernel(name, sc, *seed, budget)
				if err != nil {
					return err
				}
				entries = append(entries, rows...)
				fmt.Print(out)
				return nil
			})
		}
		if *kernelOut != "" {
			if err := writeKernelJSON(*kernelOut, entries); err != nil {
				fatal(err)
			}
			fmt.Printf("machine-readable results written to %s\n\n", *kernelOut)
		}
		if err := checkKernelFloor(entries, *kernelMin); err != nil {
			fatal(err)
		}
	}
	if want("serve") {
		ran = true
		serveNames := []string{"Trace"}
		if *dataset != "" {
			serveNames = []string{*dataset}
		}
		var entries []serveEntry
		for _, name := range serveNames {
			name := name
			run("Sharded HTTP search service (sdtwd path) on "+name, func() error {
				out, rows, err := runServe(name, sc, *seed, *serveShards)
				if err != nil {
					return err
				}
				entries = append(entries, rows...)
				fmt.Print(out)
				return nil
			})
		}
		if *serveOut != "" {
			if err := writeServeJSON(*serveOut, entries); err != nil {
				fatal(err)
			}
			fmt.Printf("machine-readable results written to %s\n\n", *serveOut)
		}
		if err := checkServeBaseline(entries, *serveBaseline, *serveRegress); err != nil {
			fatal(err)
		}
	}
	if want("scale") {
		ran = true
		scaleNames := []string{"Gun", "Trace"}
		if *dataset != "" {
			scaleNames = []string{*dataset}
		}
		var entries []scaleEntry
		for _, name := range scaleNames {
			name := name
			run("Storage scaling: segment store vs gob snapshot on "+name, func() error {
				out, rows, err := runScale(name, sc, *seed)
				if err != nil {
					return err
				}
				entries = append(entries, rows...)
				fmt.Print(out)
				return nil
			})
		}
		if *scaleOut != "" {
			if err := writeScaleJSON(*scaleOut, entries); err != nil {
				fatal(err)
			}
			fmt.Printf("machine-readable results written to %s\n\n", *scaleOut)
		}
		if err := checkScaleBaseline(entries, *scaleBaseline, *scaleRegress); err != nil {
			fatal(err)
		}
	}
	if want("bands") {
		ran = true
		run("Band shapes (Fig 2/10)", func() error {
			out, err := experiments.RenderBandShapes(*seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

// retrievalEntry is one row of the machine-readable retrieval results:
// per dataset and band strategy, the cascade's stage counts, the saving
// rates, and the wall time — the numbers CI tracks across PRs.
type retrievalEntry struct {
	Dataset      string  `json:"dataset"`
	Algorithm    string  `json:"algorithm"`
	SeriesCount  int     `json:"series"`
	Length       int     `json:"length"`
	Candidates   int     `json:"candidates"`
	PrunedSketch int     `json:"pruned_sketch"`
	PrunedKim    int     `json:"pruned_kim"`
	PrunedKeogh  int     `json:"pruned_keogh"`
	Evaluated    int     `json:"evaluated"`
	AbandonedDTW int     `json:"abandoned_dtw"`
	CellsSaved   int     `json:"cells_saved"`
	PruneRate    float64 `json:"prune_rate"`
	CellsGain    float64 `json:"cells_gain"`
	AbandonRate  float64 `json:"abandon_rate"`
	WallMS       float64 `json:"wall_ms"`
}

// writeRetrievalJSON persists the retrieval entries for machines (CI
// trend lines) next to the human-readable tables on stdout.
func writeRetrievalJSON(path string, entries []retrievalEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding retrieval results: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing retrieval results: %w", err)
	}
	return nil
}

// runRetrieval exercises the Index's lower-bound-cascaded batch retrieval
// on one workload: every series queried against the collection, per band
// strategy, reporting how many candidates each cascade stage discarded,
// how many dynamic programs abandoned early, and the DP work that
// remained.
func runRetrieval(name string, sc experiments.Scale, seed int64) (string, []retrievalEntry, error) {
	d, err := experiments.LoadDataset(name, sc, seed)
	if err != nil {
		return "", nil, err
	}
	configs := []struct {
		label string
		opts  sdtw.Options
	}{
		{"fc,fw 10%", sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.10}},
		{"fc,fw 20%", sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.20}},
		{"itakura", sdtw.Options{Strategy: sdtw.ItakuraBand}},
		{"ac,aw", sdtw.DefaultOptions()},
	}
	var sb strings.Builder
	var entries []retrievalEntry
	fmt.Fprintf(&sb, "%s: %d series x len %d, k=5, all-series batch queries\n",
		d.Name, d.Len(), d.Length)
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %10s %10s %10s %9s %9s %9s %12s\n",
		"algorithm", "candidates", "lb_paa", "lb_kim", "lb_keogh", "evaluated", "abandoned", "prune", "cellsgain", "abandon", "wall")
	for _, cfg := range configs {
		ix, err := sdtw.NewIndex(d.Series, cfg.opts)
		if err != nil {
			return "", nil, fmt.Errorf("indexing %s under %s: %w", d.Name, cfg.label, err)
		}
		_, stats, err := ix.SearchBatch(context.Background(), d.Series, sdtw.WithK(5))
		if err != nil {
			return "", nil, fmt.Errorf("batch retrieval on %s under %s: %w", d.Name, cfg.label, err)
		}
		fmt.Fprintf(&sb, "%-10s %10d %10d %10d %10d %10d %10d %8.1f%% %8.1f%% %8.1f%% %12v\n",
			cfg.label, stats.Candidates, stats.PrunedSketch, stats.PrunedKim, stats.PrunedKeogh, stats.Evaluated,
			stats.AbandonedDTW, 100*stats.PruneRate(), 100*stats.CellsGain(),
			100*stats.AbandonRate(), stats.WallTime.Round(time.Millisecond))
		entries = append(entries, retrievalEntry{
			Dataset:      d.Name,
			Algorithm:    cfg.label,
			SeriesCount:  d.Len(),
			Length:       d.Length,
			Candidates:   stats.Candidates,
			PrunedSketch: stats.PrunedSketch,
			PrunedKim:    stats.PrunedKim,
			PrunedKeogh:  stats.PrunedKeogh,
			Evaluated:    stats.Evaluated,
			AbandonedDTW: stats.AbandonedDTW,
			CellsSaved:   stats.CellsSaved,
			PruneRate:    stats.PruneRate(),
			CellsGain:    stats.CellsGain(),
			AbandonRate:  stats.AbandonRate(),
			WallMS:       float64(stats.WallTime.Microseconds()) / 1000,
		})
	}
	return sb.String(), entries, nil
}

// streamEntry is one row of the machine-readable streaming results: per
// dataset and monitor mode, the stream throughput, the DP work per point
// and the match emission latency — the numbers CI tracks across PRs.
type streamEntry struct {
	Dataset       string  `json:"dataset"`
	Mode          string  `json:"mode"`
	Queries       int     `json:"queries"`
	QueryLen      int     `json:"query_len"`
	Points        int     `json:"points"`
	Matches       int64   `json:"matches"`
	WallMS        float64 `json:"wall_ms"`
	PointsPerSec  float64 `json:"points_per_sec"`
	CellsPerPoint float64 `json:"cells_per_point"`
	// AvgLatencyPoints is the mean number of stream points between a
	// match's end and the point whose arrival confirmed it (SPRING's
	// report delay); -1 when the mode emits only at Flush.
	AvgLatencyPoints float64 `json:"avg_match_latency_points"`

	// The remaining fields are set only by the fleet experiment (dataset
	// "fleet", modes "hub" and "monitors"): the stream count of the grid
	// point, the fraction of SPRING column advances the hub's time-domain
	// prefilter elided, and the batch-granular match-latency percentiles
	// in stream points (-1 when the run emitted no matches).
	Streams          int     `json:"streams,omitempty"`
	SkipRate         float64 `json:"prefilter_skip_rate,omitempty"`
	P50LatencyPoints float64 `json:"p50_match_latency_points,omitempty"`
	P99LatencyPoints float64 `json:"p99_match_latency_points,omitempty"`
}

// writeStreamJSON persists the streaming entries for machines (CI trend
// lines) next to the human-readable table on stdout.
func writeStreamJSON(path string, entries []streamEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding stream results: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing stream results: %w", err)
	}
	return nil
}

// streamPoints is the stream length per workload scale.
func streamPoints(sc experiments.Scale) int {
	switch sc {
	case experiments.Small:
		return 10_000
	case experiments.Medium:
		return 50_000
	default:
		return 200_000
	}
}

// runStream exercises the streaming Monitor on one workload: a stream
// concatenated from the data set's series, watched (a) for one query in
// best-only mode pushed point-by-point, (b) for one query with a
// calibrated emission threshold (match latency is measurable there), and
// (c) for four queries fanned out across the worker pool in one batch.
func runStream(name string, sc experiments.Scale, seed int64) (string, []streamEntry, error) {
	d, err := experiments.LoadDataset(name, sc, seed)
	if err != nil {
		return "", nil, err
	}
	points := streamPoints(sc)
	query := d.Series[0]
	stream := make([]float64, 0, points)
	for i := 1; len(stream) < points; i = i%(d.Len()-1) + 1 {
		stream = append(stream, d.Series[i].Values...)
	}
	stream = stream[:points]
	ctx := context.Background()

	var sb strings.Builder
	var entries []streamEntry
	fmt.Fprintf(&sb, "%s: %d-point stream, query length %d\n", d.Name, points, query.Len())
	fmt.Fprintf(&sb, "%-12s %8s %9s %8s %13s %12s %9s %12s\n",
		"mode", "queries", "points", "matches", "points/sec", "cells/point", "latency", "wall")

	record := func(mode string, queries int, matches int64, wall time.Duration, st sdtw.MonitorStats, latency float64) {
		e := streamEntry{
			Dataset:          d.Name,
			Mode:             mode,
			Queries:          queries,
			QueryLen:         query.Len(),
			Points:           points,
			Matches:          matches,
			WallMS:           float64(wall.Microseconds()) / 1000,
			PointsPerSec:     float64(points) / wall.Seconds(),
			CellsPerPoint:    float64(st.Cells) / float64(st.Points),
			AvgLatencyPoints: latency,
		}
		entries = append(entries, e)
		lat := "-"
		if latency >= 0 {
			lat = fmt.Sprintf("%.1f", latency)
		}
		fmt.Fprintf(&sb, "%-12s %8d %9d %8d %13.0f %12.1f %9s %12v\n",
			mode, queries, points, matches, e.PointsPerSec, e.CellsPerPoint, lat, wall.Round(time.Millisecond))
	}

	// (a) Best-only, point-by-point: the pure per-point hot path.
	mon, err := sdtw.NewMonitor([]sdtw.Series{query}, sdtw.Options{})
	if err != nil {
		return "", nil, err
	}
	start := time.Now()
	for _, v := range stream {
		if _, err := mon.Push(ctx, v); err != nil {
			return "", nil, err
		}
	}
	best, err := mon.Flush()
	if err != nil {
		return "", nil, err
	}
	record("best-only", 1, int64(len(best)), time.Since(start), mon.Stats(), -1)
	if len(best) != 1 {
		return "", nil, fmt.Errorf("best-only monitor on %s reported %d matches, want 1", d.Name, len(best))
	}

	// (b) Thresholded emission at 2x the best distance, point-by-point so
	// the report delay is measured exactly.
	mon, err = sdtw.NewMonitor([]sdtw.Series{query}, sdtw.Options{},
		sdtw.WithMatchThreshold(2*best[0].Distance), sdtw.WithMinGap(query.Len()/2))
	if err != nil {
		return "", nil, err
	}
	var matches int64
	var latencySum float64
	start = time.Now()
	for t, v := range stream {
		out, err := mon.Push(ctx, v)
		if err != nil {
			return "", nil, err
		}
		for _, m := range out {
			matches++
			latencySum += float64(t - m.End)
		}
	}
	final, err := mon.Flush()
	if err != nil {
		return "", nil, err
	}
	matches += int64(len(final)) // end-of-stream confirmations have no delay
	latency := -1.0
	if matches > 0 {
		latency = latencySum / float64(matches)
	}
	record("threshold", 1, matches, time.Since(start), mon.Stats(), latency)

	// (c) Multi-query fan-out, batched.
	nq := 4
	if nq > d.Len() {
		nq = d.Len()
	}
	mon, err = sdtw.NewMonitor(d.Series[:nq], sdtw.Options{})
	if err != nil {
		return "", nil, err
	}
	start = time.Now()
	const batch = 4096
	for off := 0; off < len(stream); off += batch {
		end := off + batch
		if end > len(stream) {
			end = len(stream)
		}
		if _, err := mon.PushBatch(ctx, stream[off:end]); err != nil {
			return "", nil, err
		}
	}
	multi, err := mon.Flush()
	if err != nil {
		return "", nil, err
	}
	record("multi-query", nq, int64(len(multi)), time.Since(start), mon.Stats(), -1)

	return sb.String(), entries, nil
}

func parseScale(s string) (experiments.Scale, error) {
	switch strings.ToLower(s) {
	case "full":
		return experiments.Full, nil
	case "medium":
		return experiments.Medium, nil
	case "small":
		return experiments.Small, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want full, medium or small)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtwbench:", err)
	os.Exit(1)
}
