// Command sdtwbench regenerates the tables and figures of the sDTW paper
// (Candan et al., VLDB 2012) on the synthetic reproduction workloads.
//
// Usage:
//
//	sdtwbench -exp all                 # every table and figure, full scale
//	sdtwbench -exp fig13 -scale small  # one experiment, reduced workload
//	sdtwbench -exp fig18 -dataset Gun  # restrict figures to one data set
//	sdtwbench -exp bands               # ASCII rendering of the band shapes
//
// Experiments: table1, table2, fig13, fig14, fig15, fig16, fig17, fig18,
// bands, all. Scales: full (paper sizes), medium, small.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdtw"
	"sdtw/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: table1, table2, fig13, fig14, fig15, fig16, fig17, fig18, noise, invariance, baseline, extras, retrieval, bands, all")
		scale   = flag.String("scale", "full", "workload scale: full, medium, small")
		dataset = flag.String("dataset", "", "restrict per-dataset figures to one data set (Gun, Trace, 50Words)")
		seed    = flag.Int64("seed", 42, "workload generator seed")
		jsonOut = flag.String("json", "BENCH_retrieval.json", "path for the machine-readable retrieval results (empty disables)")
	)
	flag.Parse()

	sc, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}
	names := []string{"Gun", "Trace", "50Words"}
	if *dataset != "" {
		names = []string{*dataset}
	}

	run := func(name string, fn func() error) {
		fmt.Printf("=== %s ===\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := false

	if want("table1") {
		ran = true
		run("Table 1: data set overview", func() error {
			rows, err := experiments.Table1(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable1(rows))
			return nil
		})
	}
	if want("table2") {
		ran = true
		run("Table 2: salient points per scale", func() error {
			rows, err := experiments.Table2(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable2(rows))
			return nil
		})
	}
	if want("fig13") || want("fig14") {
		ran = true
		for _, name := range names {
			name := name
			run("Fig 13/14: retrieval accuracy & distance error on "+name, func() error {
				results, err := experiments.Fig13(name, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFig13(results))
				fmt.Println()
				fmt.Print(experiments.RenderFig14(results))
				return nil
			})
		}
	}
	if want("fig15") {
		ran = true
		run("Fig 15: intra-class distance errors (Trace)", func() error {
			results, err := experiments.Fig15(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig15(results))
			return nil
		})
	}
	if want("fig16") {
		ran = true
		run("Fig 16: classification accuracy (50Words)", func() error {
			results, err := experiments.Fig16(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig16(results))
			return nil
		})
	}
	if want("fig17") {
		ran = true
		for _, name := range names {
			name := name
			run("Fig 17: matching vs DP time breakdown on "+name, func() error {
				results, err := experiments.Fig17(name, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFig17(results))
				return nil
			})
		}
	}
	if want("fig18") {
		ran = true
		for _, name := range names {
			name := name
			run("Fig 18: descriptor length sweep on "+name, func() error {
				points, err := experiments.Fig18(name, sc, *seed, nil)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderFig18(points))
				return nil
			})
		}
	}
	if want("baseline") {
		ran = true
		run("Learned (R-K) vs structural constraints (§1)", func() error {
			rows, err := experiments.LearnedBaseline(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderBaseline(rows))
			return nil
		})
	}
	if want("noise") {
		ran = true
		run("Noise robustness of salient features (§3.1.2)", func() error {
			rows, err := experiments.NoiseRobustness(*seed, nil)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderNoise(rows))
			return nil
		})
	}
	if want("invariance") {
		ran = true
		run("Amplitude-invariance ablation (§3.1.2)", func() error {
			rows, err := experiments.Invariance(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderInvariance(rows))
			return nil
		})
	}
	if want("extras") {
		ran = true
		for _, name := range names {
			name := name
			run("Extras: Itakura, symmetric, FastDTW, combination on "+name, func() error {
				rows, err := experiments.Extras(name, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Print(experiments.RenderExtras(name, rows))
				return nil
			})
		}
	}
	if want("retrieval") {
		ran = true
		var entries []retrievalEntry
		for _, name := range names {
			name := name
			run("Cascaded k-NN retrieval (LB_Kim -> LB_Keogh -> abandoning sDTW) on "+name, func() error {
				out, rows, err := runRetrieval(name, sc, *seed)
				if err != nil {
					return err
				}
				entries = append(entries, rows...)
				fmt.Print(out)
				return nil
			})
		}
		if *jsonOut != "" {
			if err := writeRetrievalJSON(*jsonOut, entries); err != nil {
				fatal(err)
			}
			fmt.Printf("machine-readable results written to %s\n\n", *jsonOut)
		}
	}
	if want("bands") {
		ran = true
		run("Band shapes (Fig 2/10)", func() error {
			out, err := experiments.RenderBandShapes(*seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

// retrievalEntry is one row of the machine-readable retrieval results:
// per dataset and band strategy, the cascade's stage counts, the saving
// rates, and the wall time — the numbers CI tracks across PRs.
type retrievalEntry struct {
	Dataset      string  `json:"dataset"`
	Algorithm    string  `json:"algorithm"`
	SeriesCount  int     `json:"series"`
	Length       int     `json:"length"`
	Candidates   int     `json:"candidates"`
	PrunedKim    int     `json:"pruned_kim"`
	PrunedKeogh  int     `json:"pruned_keogh"`
	Evaluated    int     `json:"evaluated"`
	AbandonedDTW int     `json:"abandoned_dtw"`
	CellsSaved   int     `json:"cells_saved"`
	PruneRate    float64 `json:"prune_rate"`
	CellsGain    float64 `json:"cells_gain"`
	AbandonRate  float64 `json:"abandon_rate"`
	WallMS       float64 `json:"wall_ms"`
}

// writeRetrievalJSON persists the retrieval entries for machines (CI
// trend lines) next to the human-readable tables on stdout.
func writeRetrievalJSON(path string, entries []retrievalEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding retrieval results: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing retrieval results: %w", err)
	}
	return nil
}

// runRetrieval exercises the Index's lower-bound-cascaded batch retrieval
// on one workload: every series queried against the collection, per band
// strategy, reporting how many candidates each cascade stage discarded,
// how many dynamic programs abandoned early, and the DP work that
// remained.
func runRetrieval(name string, sc experiments.Scale, seed int64) (string, []retrievalEntry, error) {
	d, err := experiments.LoadDataset(name, sc, seed)
	if err != nil {
		return "", nil, err
	}
	configs := []struct {
		label string
		opts  sdtw.Options
	}{
		{"fc,fw 10%", sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.10}},
		{"fc,fw 20%", sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.20}},
		{"itakura", sdtw.Options{Strategy: sdtw.ItakuraBand}},
		{"ac,aw", sdtw.DefaultOptions()},
	}
	var sb strings.Builder
	var entries []retrievalEntry
	fmt.Fprintf(&sb, "%s: %d series x len %d, k=5, all-series batch queries\n",
		d.Name, d.Len(), d.Length)
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %10s %10s %9s %9s %9s %12s\n",
		"algorithm", "candidates", "lb_kim", "lb_keogh", "evaluated", "abandoned", "prune", "cellsgain", "abandon", "wall")
	for _, cfg := range configs {
		ix, err := sdtw.NewIndex(d.Series, cfg.opts)
		if err != nil {
			return "", nil, fmt.Errorf("indexing %s under %s: %w", d.Name, cfg.label, err)
		}
		_, stats, err := ix.SearchBatch(context.Background(), d.Series, sdtw.WithK(5))
		if err != nil {
			return "", nil, fmt.Errorf("batch retrieval on %s under %s: %w", d.Name, cfg.label, err)
		}
		fmt.Fprintf(&sb, "%-10s %10d %10d %10d %10d %10d %8.1f%% %8.1f%% %8.1f%% %12v\n",
			cfg.label, stats.Candidates, stats.PrunedKim, stats.PrunedKeogh, stats.Evaluated,
			stats.AbandonedDTW, 100*stats.PruneRate(), 100*stats.CellsGain(),
			100*stats.AbandonRate(), stats.WallTime.Round(time.Millisecond))
		entries = append(entries, retrievalEntry{
			Dataset:      d.Name,
			Algorithm:    cfg.label,
			SeriesCount:  d.Len(),
			Length:       d.Length,
			Candidates:   stats.Candidates,
			PrunedKim:    stats.PrunedKim,
			PrunedKeogh:  stats.PrunedKeogh,
			Evaluated:    stats.Evaluated,
			AbandonedDTW: stats.AbandonedDTW,
			CellsSaved:   stats.CellsSaved,
			PruneRate:    stats.PruneRate(),
			CellsGain:    stats.CellsGain(),
			AbandonRate:  stats.AbandonRate(),
			WallMS:       float64(stats.WallTime.Microseconds()) / 1000,
		})
	}
	return sb.String(), entries, nil
}

func parseScale(s string) (experiments.Scale, error) {
	switch strings.ToLower(s) {
	case "full":
		return experiments.Full, nil
	case "medium":
		return experiments.Medium, nil
	case "small":
		return experiments.Small, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want full, medium or small)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtwbench:", err)
	os.Exit(1)
}
