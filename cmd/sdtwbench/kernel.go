package main

// The kernel experiment A/B-measures the monomorphized squared-cost
// kernels (internal/dtw/kernel.go, internal/lower/kernel.go) against the
// generic PointDistance paths they replace, emitting BENCH_kernel.json so
// the perf trajectory of every hot loop is machine-readable across PRs.
//
// The pure-kernel components (dp, keogh, spring) compare a nil cost
// (dispatches to the specialized kernel) against a local wrapper with the
// identical body but a different code pointer (forces the generic
// indirect-call path — exactly the code that ran before specialization
// existed). The composite components (engine, search) instead flip the
// repository-wide series.SetKernelDispatch switch, because a custom cost
// would also disable the lower-bound cascade and make the comparison
// unfair.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"sdtw"
	"sdtw/internal/core"
	"sdtw/internal/dtw"
	"sdtw/internal/experiments"
	"sdtw/internal/lower"
	"sdtw/internal/series"
)

// kernelEntry is one row of the machine-readable kernel results: per
// dataset and component, the generic and specialized throughput in the
// component's unit and their ratio — the number the bench-kernel CI lane
// gates on.
type kernelEntry struct {
	Dataset     string  `json:"dataset"`
	Component   string  `json:"component"` // dp, keogh, spring, engine, search
	Unit        string  `json:"unit"`
	Generic     float64 `json:"generic"`
	Specialized float64 `json:"specialized"`
	Speedup     float64 `json:"speedup"`
}

// kernelGated reports whether the entry is one -kernelmin gates CI on:
// the pure-kernel cells-per-second comparisons (dp, spring), whose
// specialized/generic margin is wide enough for a hard floor. The keogh
// leg is recorded but not gated — most query elements fall inside the
// envelope, so its generic loop makes few indirect calls and the ratio
// runs thin enough (~1.1-1.3x) that shared-runner noise would flake a
// 1.0 floor — and the composite end-to-end components are noisier still.
func (e kernelEntry) kernelGated() bool {
	return e.Unit == "cells/sec"
}

// sqGenericBench mirrors series.SquaredDistance with a distinct code
// pointer so the kernel dispatch cannot recognise it: per-cell cost and
// call overhead are exactly the pre-specialization generic path's.
func sqGenericBench(a, b float64) float64 { d := a - b; return d * d }

// measureRate runs fn repeatedly for at least budget and returns
// work*iterations/second, where work is the per-call work in the
// component's unit.
func measureRate(budget time.Duration, work float64, fn func()) float64 {
	fn() // warm-up, outside the timed window
	iters := 0
	start := time.Now()
	var elapsed time.Duration
	for {
		fn()
		iters++
		if elapsed = time.Since(start); elapsed >= budget {
			break
		}
	}
	return work * float64(iters) / elapsed.Seconds()
}

// runKernel A/B-measures every kernel on one workload.
func runKernel(name string, sc experiments.Scale, seed int64, budget time.Duration) (string, []kernelEntry, error) {
	d, err := experiments.LoadDataset(name, sc, seed)
	if err != nil {
		return "", nil, err
	}
	x, y := d.Series[0], d.Series[1]
	var entries []kernelEntry
	add := func(component, unit string, generic, specialized float64) {
		entries = append(entries, kernelEntry{
			Dataset:     d.Name,
			Component:   component,
			Unit:        unit,
			Generic:     generic,
			Specialized: specialized,
			Speedup:     specialized / generic,
		})
	}

	// DP: the banded dynamic program on a 10% Sakoe-Chiba band, the shape
	// BenchmarkBandedSakoeChiba10 tracks.
	bd := dtw.SakoeChiba(x.Len(), y.Len(), 0.10)
	var ws dtw.Workspace
	cells := float64(bd.Cells())
	gen := measureRate(budget, cells, func() {
		if _, _, err := dtw.BandedWS(x.Values, y.Values, bd, sqGenericBench, &ws); err != nil {
			panic(err)
		}
	})
	spec := measureRate(budget, cells, func() {
		if _, _, err := dtw.BandedWS(x.Values, y.Values, bd, nil, &ws); err != nil {
			panic(err)
		}
	})
	add("dp", "cells/sec", gen, spec)

	// LB_Keogh over a precomputed envelope, the cascade's second stage.
	radius := y.Len() / 10
	env := lower.NewEnvelope(y.Values, radius)
	elems := float64(x.Len())
	gen = measureRate(budget, elems, func() {
		if _, err := lower.Keogh(x.Values, env, sqGenericBench); err != nil {
			panic(err)
		}
	})
	spec = measureRate(budget, elems, func() {
		if _, err := lower.Keogh(x.Values, env, nil); err != nil {
			panic(err)
		}
	})
	add("keogh", "elems/sec", gen, spec)

	// SPRING per-point update, the Monitor's hot path.
	stream := make([]float64, 0, 8192)
	for i := 1; len(stream) < 8192; i = i%(d.Len()-1) + 1 {
		stream = append(stream, d.Series[i].Values...)
	}
	stream = stream[:8192]
	springCells := float64(len(stream) * x.Len())
	gen = measureRate(budget, springCells, func() {
		sp, err := dtw.NewSpring(x.Values, dtw.SpringConfig{Dist: sqGenericBench})
		if err != nil {
			panic(err)
		}
		for _, v := range stream {
			sp.Append(v)
		}
	})
	spec = measureRate(budget, springCells, func() {
		sp, err := dtw.NewSpring(x.Values, dtw.SpringConfig{})
		if err != nil {
			panic(err)
		}
		for _, v := range stream {
			sp.Append(v)
		}
	})
	add("spring", "cells/sec", gen, spec)

	// Composite legs flip the repository-wide dispatch switch so the
	// cascade structure stays identical and only the kernels differ.
	generically := func(fn func()) {
		series.SetKernelDispatch(false)
		defer series.SetKernelDispatch(true)
		fn()
	}

	// Engine.Distance under the paper's headline (ac,aw) strategy.
	engine := core.NewEngine(core.DefaultOptions())
	if _, err := engine.Warm([]sdtw.Series{x, y}); err != nil {
		return "", nil, err
	}
	pair := func() {
		if _, err := engine.Distance(x, y); err != nil {
			panic(err)
		}
	}
	generically(func() { gen = measureRate(budget, 1, pair) })
	spec = measureRate(budget, 1, pair)
	add("engine", "pairs/sec", gen, spec)

	// End-to-end Search through the full cascade (LB_Kim ordering,
	// abandoning LB_Keogh, early-abandoning DP) on the whole collection.
	ix, err := sdtw.NewIndex(d.Series, sdtw.DefaultOptions())
	if err != nil {
		return "", nil, err
	}
	searchAll := func() {
		if _, _, err := ix.SearchBatch(context.Background(), d.Series, sdtw.WithK(5)); err != nil {
			panic(err)
		}
	}
	generically(func() { gen = measureRate(budget, float64(d.Len()), searchAll) })
	spec = measureRate(budget, float64(d.Len()), searchAll)
	add("search", "queries/sec", gen, spec)

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d series x len %d (budget %v per leg)\n", d.Name, d.Len(), d.Length, budget)
	fmt.Fprintf(&sb, "%-8s %14s %14s %14s %9s\n", "kernel", "unit", "generic", "specialized", "speedup")
	for _, e := range entries {
		fmt.Fprintf(&sb, "%-8s %14s %14.3g %14.3g %8.2fx\n",
			e.Component, e.Unit, e.Generic, e.Specialized, e.Speedup)
	}
	return sb.String(), entries, nil
}

// writeKernelJSON persists the kernel entries for machines (the
// bench-kernel CI lane) next to the human-readable table on stdout.
func writeKernelJSON(path string, entries []kernelEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding kernel results: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing kernel results: %w", err)
	}
	return nil
}

// checkKernelFloor fails the run when any pure-kernel speedup drops under
// the floor — the regression gate of the bench-kernel CI lane. A floor of
// 0 (the default) disables the gate.
func checkKernelFloor(entries []kernelEntry, floor float64) error {
	if floor <= 0 {
		return nil
	}
	for _, e := range entries {
		if e.kernelGated() && e.Speedup < floor {
			return fmt.Errorf("kernel %s on %s: specialized/generic ratio %.3f below floor %.3f",
				e.Component, e.Dataset, e.Speedup, floor)
		}
	}
	return nil
}
