package main

// Fleet-streaming experiment: the multi-stream Hub against the naive
// baseline of one Monitor per stream, swept over a streams x queries
// grid. Both sides consume the same synthetic fleet workload (near-zero
// in-band noise, provably matchless far excursions, planted warped
// query occurrences) with the same worker parallelism, so the measured
// gap is the Hub's pooled state plus the time-domain prefilter, not a
// scheduling artifact.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdtw"
	"sdtw/internal/experiments"
)

// Fleet workload shape. The query values stay inside [0, ~2] while the
// excursions sit at +40, so a single dead point admissibly rules out
// every standing query at once — the regime the prefilter is built for.
const (
	hubQueryLen    = 16
	hubThreshold   = 0.25
	hubBatchPoints = 512
	hubDeadLevel   = 40.0
)

// hubGridPoint is one sweep point of the fleet experiment.
type hubGridPoint struct {
	streams, queries int
}

// hubGrid returns the streams x queries sweep and the per-stream length
// for one workload scale. The full scale ends at the headline
// 1000 streams x 100 standing queries configuration.
func hubGrid(sc experiments.Scale) ([]hubGridPoint, int) {
	switch sc {
	case experiments.Small:
		return []hubGridPoint{{16, 4}, {64, 8}}, 500
	case experiments.Medium:
		return []hubGridPoint{{100, 10}, {250, 25}}, 1000
	default:
		return []hubGridPoint{{100, 10}, {1000, 100}}, 2000
	}
}

// hubWorkload is one generated fleet: the standing queries and the full
// point sequence of every stream.
type hubWorkload struct {
	queries []sdtw.Series
	streams [][]float64
}

// makeHubWorkload synthesizes the fleet deterministically from the seed.
// Streams are built chunk-wise: mostly dead far excursions (prefilter
// food), some in-band noise, and occasional slightly-warped plants of a
// random standing query so matches (and their latency) are measurable.
func makeHubWorkload(streams, points, queries int, seed int64) hubWorkload {
	w := hubWorkload{
		queries: make([]sdtw.Series, queries),
		streams: make([][]float64, streams),
	}
	rng := rand.New(rand.NewSource(seed))
	for q := range w.queries {
		amp := 0.5 + 3.0*rng.Float64()
		phase := rng.Float64() * math.Pi
		vals := make([]float64, hubQueryLen)
		for j := range vals {
			vals[j] = amp * math.Abs(math.Sin(phase+math.Pi*float64(j)/float64(hubQueryLen-1)))
		}
		w.queries[q] = sdtw.NewSeries(fmt.Sprintf("q%03d", q), 0, vals)
	}
	for s := range w.streams {
		srng := rand.New(rand.NewSource(seed + 1 + int64(s)))
		data := make([]float64, 0, points)
		for len(data) < points {
			switch srng.Intn(16) {
			case 0: // plant a warped occurrence of one standing query
				for _, v := range w.queries[srng.Intn(queries)].Values {
					data = append(data, v+0.01*srng.NormFloat64())
					if srng.Intn(8) == 0 {
						data = append(data, v) // warp: repeat a point
					}
				}
			case 1, 2: // in-band noise: no match, but no skip either
				for i := srng.Intn(48); i >= 0; i-- {
					data = append(data, 0.05*srng.NormFloat64())
				}
			default: // far excursion: provably matchless for every query
				for i := srng.Intn(48); i >= 0; i-- {
					data = append(data, hubDeadLevel+srng.Float64())
				}
			}
		}
		w.streams[s] = data[:points]
	}
	return w
}

// hubLatencies summarizes batch-granular match latencies (stream points
// between a match's end and the ingest position when it was observed).
type hubLatencies struct {
	sum      float64
	p50, p99 float64
	n        int
}

func summarizeLatencies(samples []float64) hubLatencies {
	if len(samples) == 0 {
		return hubLatencies{p50: -1, p99: -1}
	}
	sort.Float64s(samples)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return hubLatencies{sum: sum, p50: pick(0.50), p99: pick(0.99), n: len(samples)}
}

// runHubMode pushes the whole fleet through one sdtw.Hub and returns
// wall time, match count, latency samples and the final stats. Match
// latency is measured at the consumer against a per-stream counter of
// points already accepted, so it is batch-granular and includes the
// hub's queueing delay — the figure a fleet operator actually sees.
func runHubMode(w hubWorkload, prefilter bool) (time.Duration, int64, hubLatencies, sdtw.HubStats, error) {
	var hopts []sdtw.HubOption
	if !prefilter {
		hopts = append(hopts, sdtw.WithoutPrefilter())
	}
	hub := sdtw.NewHub(sdtw.Options{}, hopts...)
	for _, q := range w.queries {
		if err := hub.AddQuery(q.ID, q,
			sdtw.WithMatchThreshold(hubThreshold), sdtw.WithMinGap(hubQueryLen)); err != nil {
			return 0, 0, hubLatencies{}, sdtw.HubStats{}, err
		}
	}
	ids := make([]string, len(w.streams))
	index := make(map[string]int, len(w.streams))
	pushed := make([]atomic.Int64, len(w.streams))
	for s := range w.streams {
		ids[s] = fmt.Sprintf("s%04d", s)
		index[ids[s]] = s
		if err := hub.AddStream(ids[s]); err != nil {
			return 0, 0, hubLatencies{}, sdtw.HubStats{}, err
		}
	}

	runErr := make(chan error, 1)
	go func() { runErr <- hub.Run(context.Background()) }()

	var samples []float64
	var matches int64
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for m := range hub.Matches() {
			matches++
			samples = append(samples, float64(pushed[index[m.Stream]].Load()-int64(m.End)))
		}
	}()

	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	var wg sync.WaitGroup
	var pushErr atomic.Pointer[error]
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for s := p; s < len(w.streams); s += workers {
				data := w.streams[s]
				for off := 0; off < len(data); off += hubBatchPoints {
					end := off + hubBatchPoints
					if end > len(data) {
						end = len(data)
					}
					for {
						err := hub.PushBatch(ids[s], data[off:end])
						if err == nil {
							break
						}
						if !errors.Is(err, sdtw.ErrHubBackpressure) {
							pushErr.CompareAndSwap(nil, &err)
							return
						}
						time.Sleep(50 * time.Microsecond)
					}
					pushed[s].Store(int64(end))
				}
			}
		}(p)
	}
	wg.Wait()
	if errp := pushErr.Load(); errp != nil {
		return 0, 0, hubLatencies{}, sdtw.HubStats{}, *errp
	}
	if err := hub.Flush(context.Background()); err != nil {
		return 0, 0, hubLatencies{}, sdtw.HubStats{}, err
	}
	<-consumed
	if err := <-runErr; err != nil {
		return 0, 0, hubLatencies{}, sdtw.HubStats{}, err
	}
	wall := time.Since(start)
	return wall, matches, summarizeLatencies(samples), hub.Stats(), nil
}

// runMonitorsMode is the naive fleet: one Monitor per stream holding all
// standing queries, streams spread over the same number of workers the
// hub uses. Latencies are batch-granular here too (a match confirmed
// inside a batch is observed when PushBatch returns).
func runMonitorsMode(w hubWorkload) (time.Duration, int64, hubLatencies, int64, error) {
	mons := make([]*sdtw.Monitor, len(w.streams))
	for s := range mons {
		m, err := sdtw.NewMonitor(w.queries, sdtw.Options{},
			sdtw.WithMatchThreshold(hubThreshold), sdtw.WithMinGap(hubQueryLen))
		if err != nil {
			return 0, 0, hubLatencies{}, 0, err
		}
		mons[s] = m
	}

	workers := runtime.GOMAXPROCS(0)
	type shard struct {
		matches int64
		cells   int64
		samples []float64
		err     error
	}
	shards := make([]shard, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sh := &shards[p]
			ctx := context.Background()
			for s := p; s < len(w.streams); s += workers {
				data := w.streams[s]
				for off := 0; off < len(data); off += hubBatchPoints {
					end := off + hubBatchPoints
					if end > len(data) {
						end = len(data)
					}
					out, err := mons[s].PushBatch(ctx, data[off:end])
					if err != nil {
						sh.err = err
						return
					}
					for _, m := range out {
						sh.matches++
						sh.samples = append(sh.samples, float64(end-m.End))
					}
				}
				out, err := mons[s].Flush()
				if err != nil {
					sh.err = err
					return
				}
				sh.matches += int64(len(out))
				sh.cells += mons[s].Stats().Cells
			}
		}(p)
	}
	wg.Wait()
	wall := time.Since(start)
	var matches, cells int64
	var samples []float64
	for i := range shards {
		if shards[i].err != nil {
			return 0, 0, hubLatencies{}, 0, shards[i].err
		}
		matches += shards[i].matches
		cells += shards[i].cells
		samples = append(samples, shards[i].samples...)
	}
	return wall, matches, summarizeLatencies(samples), cells, nil
}

// runHubStream runs the full fleet sweep for one scale and renders the
// human table plus the machine-readable entries (dataset "fleet", modes
// "hub" and "monitors") that extend BENCH_stream.json.
func runHubStream(sc experiments.Scale, seed int64) (string, []streamEntry, error) {
	grid, points := hubGrid(sc)
	var sb strings.Builder
	var entries []streamEntry
	fmt.Fprintf(&sb, "fleet: %d points per stream, query length %d, threshold %.2f, %d workers\n",
		points, hubQueryLen, hubThreshold, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %13s %7s %9s %9s %12s\n",
		"mode", "streams", "queries", "matches", "points/sec", "skip%", "p50 lat", "p99 lat", "wall")

	record := func(mode string, g hubGridPoint, matches int64, wall time.Duration,
		lat hubLatencies, skipRate, cellsPerPoint float64) streamEntry {
		total := g.streams * points
		avg := -1.0
		if lat.n > 0 {
			avg = lat.sum / float64(lat.n)
		}
		e := streamEntry{
			Dataset:          "fleet",
			Mode:             mode,
			Streams:          g.streams,
			Queries:          g.queries,
			QueryLen:         hubQueryLen,
			Points:           points,
			Matches:          matches,
			WallMS:           float64(wall.Microseconds()) / 1000,
			PointsPerSec:     float64(total) / wall.Seconds(),
			CellsPerPoint:    cellsPerPoint,
			AvgLatencyPoints: avg,
			SkipRate:         skipRate,
			P50LatencyPoints: lat.p50,
			P99LatencyPoints: lat.p99,
		}
		entries = append(entries, e)
		fmt.Fprintf(&sb, "%-10s %8d %8d %8d %13.0f %7.1f %9.0f %9.0f %12v\n",
			mode, g.streams, g.queries, matches, e.PointsPerSec, 100*skipRate,
			lat.p50, lat.p99, wall.Round(time.Millisecond))
		return e
	}

	for _, g := range grid {
		w := makeHubWorkload(g.streams, points, g.queries, seed)
		total := int64(g.streams) * int64(points)

		wall, matches, lat, st, err := runHubMode(w, true)
		if err != nil {
			return "", nil, fmt.Errorf("hub %dx%d: %w", g.streams, g.queries, err)
		}
		advances := st.Appends + st.Skipped
		skipRate := 0.0
		if advances > 0 {
			skipRate = float64(st.Skipped) / float64(advances)
		}
		hubEntry := record("hub", g, matches, wall, lat, skipRate,
			float64(st.Appends)*hubQueryLen/float64(total))
		if st.Processed != total || st.Rejected != 0 {
			return "", nil, fmt.Errorf("hub %dx%d: processed %d of %d points (%d rejected)",
				g.streams, g.queries, st.Processed, total, st.Rejected)
		}

		wall, matches, lat, cells, err := runMonitorsMode(w)
		if err != nil {
			return "", nil, fmt.Errorf("monitors %dx%d: %w", g.streams, g.queries, err)
		}
		monEntry := record("monitors", g, matches, wall, lat, 0,
			float64(cells)/float64(total))
		fmt.Fprintf(&sb, "%-10s %8s %8s hub speedup %.2fx, matches %+d\n", "", "", "",
			hubEntry.PointsPerSec/monEntry.PointsPerSec, hubEntry.Matches-monEntry.Matches)
	}
	return sb.String(), entries, nil
}

// hubLatencyGracePoints absorbs batch-granularity jitter when gating
// p99 match latency: latency is observed per pushed batch, so two
// batches of slack is measurement noise, not a regression.
const hubLatencyGracePoints = 2 * hubBatchPoints

// checkStreamBaseline gates this run against a committed
// BENCH_stream.json: entries are matched by (dataset, mode, streams,
// queries, points) and the check fails when aggregate throughput drops
// below baseline/maxFactor, a hub prefilter skip rate falls more than
// ten points, or a p99 match latency exceeds baseline*maxFactor plus
// two batches of grace. Unmatched entries are skipped so the workload
// can evolve; maxFactor 0 disables the gate.
func checkStreamBaseline(entries []streamEntry, baselinePath string, maxFactor float64) error {
	if baselinePath == "" || maxFactor <= 0 {
		return nil
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading stream baseline: %w", err)
	}
	var baseline []streamEntry
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("decoding stream baseline %s: %w", baselinePath, err)
	}
	type key struct {
		dataset, mode            string
		streams, queries, points int
	}
	base := make(map[key]streamEntry, len(baseline))
	for _, b := range baseline {
		base[key{b.Dataset, b.Mode, b.Streams, b.Queries, b.Points}] = b
	}
	matched := 0
	for _, e := range entries {
		b, ok := base[key{e.Dataset, e.Mode, e.Streams, e.Queries, e.Points}]
		if !ok {
			continue
		}
		matched++
		if floor := b.PointsPerSec / maxFactor; e.PointsPerSec < floor {
			return fmt.Errorf("stream throughput regression: %s/%s %dx%d: %.0f points/sec < %.0f (baseline %.0f / %.2f)",
				e.Dataset, e.Mode, e.Streams, e.Queries, e.PointsPerSec, floor, b.PointsPerSec, maxFactor)
		}
		if b.SkipRate > 0 && e.SkipRate < b.SkipRate-0.10 {
			return fmt.Errorf("prefilter skip-rate regression: %s/%s %dx%d: %.1f%% < baseline %.1f%% - 10pt",
				e.Dataset, e.Mode, e.Streams, e.Queries, 100*e.SkipRate, 100*b.SkipRate)
		}
		if b.P99LatencyPoints >= 0 && e.P99LatencyPoints >= 0 {
			if allowed := b.P99LatencyPoints*maxFactor + hubLatencyGracePoints; e.P99LatencyPoints > allowed {
				return fmt.Errorf("match-latency regression: %s/%s %dx%d: p99 %.0f points > %.0f (baseline %.0f x %.2f + %d grace)",
					e.Dataset, e.Mode, e.Streams, e.Queries, e.P99LatencyPoints, allowed, b.P99LatencyPoints, maxFactor, hubLatencyGracePoints)
			}
		}
	}
	if matched == 0 {
		return fmt.Errorf("stream baseline %s matched no entries of this run", baselinePath)
	}
	fmt.Printf("stream throughput/skip-rate/latency within budget of baseline on %d matched points\n\n", matched)
	return nil
}
