package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sdtw"
	"sdtw/internal/experiments"
)

// scaleEntry is one row of the machine-readable scaling results: per
// collection size, how fast the index comes up from the legacy gob
// snapshot versus the segment store, what the store costs on disk, and
// how hard the stage-0 sketch filter prunes once it is up — the numbers
// the bench-scale CI lane gates against a committed baseline.
type scaleEntry struct {
	Dataset         string  `json:"dataset"`
	Series          int     `json:"series"`
	Length          int     `json:"length"`
	GobBytes        int     `json:"gob_bytes"`
	GobLoadMS       float64 `json:"gob_load_ms"`
	StoreOpenMS     float64 `json:"store_open_ms"`
	OpenSpeedup     float64 `json:"open_speedup"`
	OpenUSPerSeries float64 `json:"open_us_per_series"`
	QPS             float64 `json:"qps"`
	SketchPruneRate float64 `json:"sketch_prune_rate"`
	PruneRate       float64 `json:"prune_rate"`
}

// writeScaleJSON persists the scaling entries for machines (the CI
// regression gate) next to the human-readable table on stdout.
func writeScaleJSON(path string, entries []scaleEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding scale results: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing scale results: %w", err)
	}
	return nil
}

// scaleSizes is the collection-size sweep (as multiples of the base
// dataset) per workload scale.
func scaleSizes(sc experiments.Scale) []int {
	switch sc {
	case experiments.Small:
		return []int{1, 2}
	case experiments.Medium:
		return []int{1, 4}
	default:
		return []int{1, 4, 16}
	}
}

// runScale benchmarks the storage layer end to end: per collection size,
// it snapshots one index both ways (legacy gob and segment store), times
// a cold come-up from each, then drives k=5 searches through the
// store-backed index to measure throughput and the stage-0 sketch
// filter's prune rate. Gob load decodes every raw value and feature
// vector into RAM up front; the store open reads only the hot sections
// (envelopes and sketches) and leaves raw values cold, so the open-time
// gap is the point of the experiment.
func runScale(name string, sc experiments.Scale, seed int64) (string, []scaleEntry, error) {
	d, err := experiments.LoadDataset(name, sc, seed)
	if err != nil {
		return "", nil, err
	}
	opts := sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.10}
	queries := d.Len()
	if queries > 40 {
		queries = 40
	}

	var sb strings.Builder
	var entries []scaleEntry
	fmt.Fprintf(&sb, "%s: segment store vs gob snapshot, k=5, %d queries per point\n", d.Name, queries)
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s %8s %12s %10s %8s %8s\n",
		"series", "gob_kb", "gob_load", "open", "speedup", "us/series", "qps", "lb_paa", "pruned")

	for _, mult := range scaleSizes(sc) {
		size := mult * d.Len()
		collection := make([]sdtw.Series, 0, size)
		for i := 0; len(collection) < size; i++ {
			s := d.Series[i%d.Len()]
			if i >= d.Len() {
				s = sdtw.NewSeries(fmt.Sprintf("%s#rep%d", s.ID, i/d.Len()), s.Label, s.Values)
			}
			collection = append(collection, s)
		}
		ix, err := sdtw.NewIndex(collection, opts)
		if err != nil {
			return "", nil, fmt.Errorf("indexing %d series of %s: %w", size, d.Name, err)
		}

		// Legacy path: snapshot to gob, time a full in-RAM load.
		var gob bytes.Buffer
		if err := ix.Save(&gob); err != nil {
			return "", nil, fmt.Errorf("gob snapshot: %w", err)
		}
		t0 := time.Now()
		if _, err := sdtw.LoadIndex(bytes.NewReader(gob.Bytes()), opts); err != nil {
			return "", nil, fmt.Errorf("gob load: %w", err)
		}
		gobLoad := time.Since(t0)

		// Store path: export segments, time a cold open.
		tmp, err := os.MkdirTemp("", "sdtw-scale-")
		if err != nil {
			return "", nil, err
		}
		dir := filepath.Join(tmp, "store")
		if err := ix.SaveStore(dir); err != nil {
			os.RemoveAll(tmp)
			return "", nil, fmt.Errorf("store export: %w", err)
		}
		t0 = time.Now()
		cold, err := sdtw.OpenIndex(dir, opts)
		if err != nil {
			os.RemoveAll(tmp)
			return "", nil, fmt.Errorf("store open: %w", err)
		}
		storeOpen := time.Since(t0)

		// Serve from the store-backed index: throughput and prune rates.
		ctx := context.Background()
		var candidates, sketch, pruned int
		t0 = time.Now()
		for q := 0; q < queries; q++ {
			_, stats, err := cold.Search(ctx, d.Series[q%d.Len()], sdtw.WithK(5))
			if err != nil {
				cold.CloseStore()
				os.RemoveAll(tmp)
				return "", nil, fmt.Errorf("store-backed search: %w", err)
			}
			candidates += stats.Candidates
			sketch += stats.PrunedSketch
			pruned += stats.PrunedSketch + stats.PrunedKim + stats.PrunedKeogh
		}
		wall := time.Since(t0)
		cold.CloseStore()
		os.RemoveAll(tmp)

		e := scaleEntry{
			Dataset:         d.Name,
			Series:          size,
			Length:          d.Length,
			GobBytes:        gob.Len(),
			GobLoadMS:       float64(gobLoad.Microseconds()) / 1000,
			StoreOpenMS:     float64(storeOpen.Microseconds()) / 1000,
			OpenSpeedup:     float64(gobLoad) / float64(storeOpen),
			OpenUSPerSeries: float64(storeOpen.Microseconds()) / float64(size),
			QPS:             float64(queries) / wall.Seconds(),
		}
		if candidates > 0 {
			e.SketchPruneRate = float64(sketch) / float64(candidates)
			e.PruneRate = float64(pruned) / float64(candidates)
		}
		entries = append(entries, e)
		fmt.Fprintf(&sb, "%-8d %10d %9.2fms %9.2fms %7.1fx %12.2f %10.0f %7.1f%% %7.1f%%\n",
			size, gob.Len()/1024, e.GobLoadMS, e.StoreOpenMS, e.OpenSpeedup,
			e.OpenUSPerSeries, e.QPS, 100*e.SketchPruneRate, 100*e.PruneRate)
	}
	return sb.String(), entries, nil
}

// scaleOpenGraceMS is the absolute slack added on top of the relative
// open-time regression budget, for the same reason as serveP99GraceMS:
// the smallest points open in a few milliseconds, where host scheduling
// noise would flake a pure ratio.
const scaleOpenGraceMS = 5.0

// scalePruneSlack is how far (absolute) the stage-0 sketch prune rate
// may fall below its committed baseline. The rate is deterministic given
// the workload seed, so the slack only absorbs workload evolution, not
// noise.
const scalePruneSlack = 0.10

// checkScaleBaseline compares the run against a committed baseline:
// entries are matched by (dataset, series) and the check fails if any
// store-open time exceeds baseline*maxFactor + scaleOpenGraceMS, or any
// stage-0 prune rate drops more than scalePruneSlack below its baseline.
// Unmatched entries are skipped so workload evolution does not break the
// gate; maxFactor 0 disables it.
func checkScaleBaseline(entries []scaleEntry, baselinePath string, maxFactor float64) error {
	if baselinePath == "" || maxFactor <= 0 {
		return nil
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading scale baseline: %w", err)
	}
	var baseline []scaleEntry
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("decoding scale baseline %s: %w", baselinePath, err)
	}
	type key struct {
		dataset string
		series  int
	}
	base := make(map[key]scaleEntry, len(baseline))
	for _, b := range baseline {
		base[key{b.Dataset, b.Series}] = b
	}
	matched := 0
	for _, e := range entries {
		b, ok := base[key{e.Dataset, e.Series}]
		if !ok {
			continue
		}
		matched++
		if allowed := b.StoreOpenMS*maxFactor + scaleOpenGraceMS; e.StoreOpenMS > allowed {
			return fmt.Errorf("store open regression: %s %d series: %.2fms > %.2fms (baseline %.2fms x %.2f + %.0fms grace)",
				e.Dataset, e.Series, e.StoreOpenMS, allowed, b.StoreOpenMS, maxFactor, scaleOpenGraceMS)
		}
		if floor := b.SketchPruneRate - scalePruneSlack; e.SketchPruneRate < floor {
			return fmt.Errorf("stage-0 prune regression: %s %d series: sketch prune rate %.1f%% < %.1f%% (baseline %.1f%% - %.0f%% slack)",
				e.Dataset, e.Series, 100*e.SketchPruneRate, 100*floor, 100*b.SketchPruneRate, 100*scalePruneSlack)
		}
	}
	if matched == 0 {
		return fmt.Errorf("scale baseline %s matched no entries of this run", baselinePath)
	}
	fmt.Printf("store open within %.0f%% of baseline and stage-0 prune rate holding on %d matched points\n\n", 100*(maxFactor-1), matched)
	return nil
}
