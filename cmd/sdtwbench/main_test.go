package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdtw/internal/experiments"
)

func TestRunRetrieval(t *testing.T) {
	out, entries, err := runRetrieval("Gun", experiments.Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lb_kim", "lb_keogh", "evaluated", "abandoned", "ac,aw", "fc,fw 10%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("retrieval report missing %q:\n%s", want, out)
		}
	}
	if len(entries) != 4 {
		t.Fatalf("got %d machine-readable entries, want one per config", len(entries))
	}
	for _, e := range entries {
		if e.Dataset != "Gun" || e.Algorithm == "" || e.Candidates == 0 {
			t.Fatalf("malformed entry: %+v", e)
		}
		if e.PrunedSketch+e.PrunedKim+e.PrunedKeogh+e.Evaluated != e.Candidates {
			t.Fatalf("entry stages do not partition candidates: %+v", e)
		}
	}
	if _, _, err := runRetrieval("bogus", experiments.Small, 42); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunStream(t *testing.T) {
	out, entries, err := runStream("Gun", experiments.Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"best-only", "threshold", "multi-query", "points/sec", "cells/point"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stream report missing %q:\n%s", want, out)
		}
	}
	if len(entries) != 3 {
		t.Fatalf("got %d machine-readable entries, want one per mode", len(entries))
	}
	for _, e := range entries {
		if e.Dataset != "Gun" || e.Mode == "" || e.Points != streamPoints(experiments.Small) {
			t.Fatalf("malformed entry: %+v", e)
		}
		if e.PointsPerSec <= 0 || e.CellsPerPoint < float64(e.QueryLen) {
			t.Fatalf("implausible throughput accounting: %+v", e)
		}
	}
	// The thresholded mode must actually emit matches (the threshold is
	// calibrated off the best distance) and report a finite latency.
	var thresholded *streamEntry
	for i := range entries {
		if entries[i].Mode == "threshold" {
			thresholded = &entries[i]
		}
	}
	if thresholded == nil || thresholded.Matches == 0 || thresholded.AvgLatencyPoints < 0 {
		t.Fatalf("thresholded mode emitted nothing measurable: %+v", thresholded)
	}
	if _, _, err := runStream("bogus", experiments.Small, 42); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// TestRunStreamFullScale runs the long streaming experiment (200k points
// per dataset); like the retrieval reproduction suite it is skipped
// under -short.
func TestRunStreamFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale stream experiment skipped in -short mode")
	}
	for _, name := range []string{"Gun", "Trace"} {
		_, entries, err := runStream(name, experiments.Full, 42)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Points != streamPoints(experiments.Full) || e.PointsPerSec <= 0 {
				t.Fatalf("%s: malformed full-scale entry: %+v", name, e)
			}
		}
	}
}

func TestRunKernel(t *testing.T) {
	out, entries, err := runKernel("Gun", experiments.Small, 42, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dp", "keogh", "spring", "engine", "search", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("kernel report missing %q:\n%s", want, out)
		}
	}
	components := map[string]bool{}
	for _, e := range entries {
		if e.Dataset != "Gun" || e.Unit == "" {
			t.Fatalf("malformed entry: %+v", e)
		}
		if e.Generic <= 0 || e.Specialized <= 0 {
			t.Fatalf("non-positive throughput: %+v", e)
		}
		if got := e.Specialized / e.Generic; got != e.Speedup {
			t.Fatalf("speedup %v inconsistent with throughputs: %+v", got, e)
		}
		components[e.Component] = true
	}
	for _, want := range []string{"dp", "keogh", "spring", "engine", "search"} {
		if !components[want] {
			t.Fatalf("kernel entries missing component %q: %+v", want, entries)
		}
	}
	if _, _, err := runKernel("bogus", experiments.Small, 42, time.Millisecond); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestCheckKernelFloor(t *testing.T) {
	entries := []kernelEntry{
		{Component: "dp", Unit: "cells/sec", Dataset: "Gun", Speedup: 2.0},
		{Component: "keogh", Unit: "elems/sec", Dataset: "Gun", Speedup: 0.9},    // thin margin: not gated
		{Component: "search", Unit: "queries/sec", Dataset: "Gun", Speedup: 0.5}, // composite: not gated
	}
	if err := checkKernelFloor(entries, 1.0); err != nil {
		t.Fatalf("only cells/sec kernel components may be gated: %v", err)
	}
	entries[0].Speedup = 0.9
	if err := checkKernelFloor(entries, 1.0); err == nil {
		t.Fatal("a pure-kernel ratio below the floor must fail")
	}
	if err := checkKernelFloor(entries, 0); err != nil {
		t.Fatalf("floor 0 must disable the gate: %v", err)
	}
}

func TestWriteKernelJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	entries := []kernelEntry{{Dataset: "Gun", Component: "dp", Unit: "cells/sec",
		Generic: 1e8, Specialized: 3e8, Speedup: 3}}
	if err := writeKernelJSON(path, entries); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []kernelEntry
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != entries[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWriteStreamJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_stream.json")
	entries := []streamEntry{{Dataset: "Gun", Mode: "threshold", Queries: 1, QueryLen: 150,
		Points: 10000, Matches: 3, WallMS: 12.5, PointsPerSec: 8e5, CellsPerPoint: 150, AvgLatencyPoints: 40}}
	if err := writeStreamJSON(path, entries); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []streamEntry
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != entries[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWriteRetrievalJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_retrieval.json")
	entries := []retrievalEntry{{Dataset: "Trace", Algorithm: "ac,aw", Candidates: 10, Evaluated: 4, AbandonedDTW: 2}}
	if err := writeRetrievalJSON(path, entries); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []retrievalEntry
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != entries[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestParseScale(t *testing.T) {
	tests := []struct {
		in   string
		want experiments.Scale
	}{
		{"full", experiments.Full},
		{"FULL", experiments.Full},
		{"medium", experiments.Medium},
		{"small", experiments.Small},
	}
	for _, tc := range tests {
		got, err := parseScale(tc.in)
		if err != nil {
			t.Fatalf("parseScale(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("parseScale(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := parseScale("tiny"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunScale(t *testing.T) {
	out, entries, err := runScale("Gun", experiments.Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gob_load", "open", "speedup", "lb_paa"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scale report missing %q:\n%s", want, out)
		}
	}
	if len(entries) != len(scaleSizes(experiments.Small)) {
		t.Fatalf("got %d machine-readable entries, want one per size", len(entries))
	}
	for _, e := range entries {
		if e.Dataset != "Gun" || e.Series == 0 || e.GobBytes == 0 || e.StoreOpenMS <= 0 {
			t.Fatalf("malformed entry: %+v", e)
		}
		if e.SketchPruneRate <= 0 {
			t.Fatalf("stage-0 sketch filter never pruned: %+v", e)
		}
	}
}

func TestCheckScaleBaseline(t *testing.T) {
	entries := []scaleEntry{{Dataset: "Gun", Series: 24, StoreOpenMS: 2.0, SketchPruneRate: 0.40}}
	dir := t.TempDir()
	write := func(name string, baseline []scaleEntry) string {
		t.Helper()
		path := filepath.Join(dir, name)
		data, err := json.Marshal(baseline)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	ok := write("ok.json", []scaleEntry{{Dataset: "Gun", Series: 24, StoreOpenMS: 1.8, SketchPruneRate: 0.42}})
	if err := checkScaleBaseline(entries, ok, 1.5); err != nil {
		t.Fatalf("passing baseline failed: %v", err)
	}
	slow := write("slow.json", []scaleEntry{{Dataset: "Gun", Series: 24, StoreOpenMS: 0.001, SketchPruneRate: 0.42}})
	// 0.001*1.5 + 5ms grace = ~5ms > 2ms, still passes; shrink the grace
	// case instead with a huge measured time.
	fast := []scaleEntry{{Dataset: "Gun", Series: 24, StoreOpenMS: 50.0, SketchPruneRate: 0.40}}
	if err := checkScaleBaseline(fast, slow, 1.5); err == nil {
		t.Fatal("open-time regression not caught")
	}
	dull := write("dull.json", []scaleEntry{{Dataset: "Gun", Series: 24, StoreOpenMS: 1.8, SketchPruneRate: 0.90}})
	if err := checkScaleBaseline(entries, dull, 1.5); err == nil {
		t.Fatal("prune-rate regression not caught")
	}
	if err := checkScaleBaseline(entries, write("none.json", nil), 1.5); err == nil {
		t.Fatal("empty baseline accepted")
	}
	if err := checkScaleBaseline(entries, ok, 0); err != nil {
		t.Fatalf("disabled gate errored: %v", err)
	}
}
