package main

import (
	"strings"
	"testing"

	"sdtw/internal/experiments"
)

func TestRunRetrieval(t *testing.T) {
	out, err := runRetrieval("Gun", experiments.Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lb_kim", "lb_keogh", "evaluated", "ac,aw", "fc,fw 10%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("retrieval report missing %q:\n%s", want, out)
		}
	}
	if _, err := runRetrieval("bogus", experiments.Small, 42); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestParseScale(t *testing.T) {
	tests := []struct {
		in   string
		want experiments.Scale
	}{
		{"full", experiments.Full},
		{"FULL", experiments.Full},
		{"medium", experiments.Medium},
		{"small", experiments.Small},
	}
	for _, tc := range tests {
		got, err := parseScale(tc.in)
		if err != nil {
			t.Fatalf("parseScale(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("parseScale(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := parseScale("tiny"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}
