package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdtw/internal/experiments"
)

func TestRunRetrieval(t *testing.T) {
	out, entries, err := runRetrieval("Gun", experiments.Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lb_kim", "lb_keogh", "evaluated", "abandoned", "ac,aw", "fc,fw 10%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("retrieval report missing %q:\n%s", want, out)
		}
	}
	if len(entries) != 4 {
		t.Fatalf("got %d machine-readable entries, want one per config", len(entries))
	}
	for _, e := range entries {
		if e.Dataset != "Gun" || e.Algorithm == "" || e.Candidates == 0 {
			t.Fatalf("malformed entry: %+v", e)
		}
		if e.PrunedKim+e.PrunedKeogh+e.Evaluated != e.Candidates {
			t.Fatalf("entry stages do not partition candidates: %+v", e)
		}
	}
	if _, _, err := runRetrieval("bogus", experiments.Small, 42); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestWriteRetrievalJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_retrieval.json")
	entries := []retrievalEntry{{Dataset: "Trace", Algorithm: "ac,aw", Candidates: 10, Evaluated: 4, AbandonedDTW: 2}}
	if err := writeRetrievalJSON(path, entries); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []retrievalEntry
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != entries[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestParseScale(t *testing.T) {
	tests := []struct {
		in   string
		want experiments.Scale
	}{
		{"full", experiments.Full},
		{"FULL", experiments.Full},
		{"medium", experiments.Medium},
		{"small", experiments.Small},
	}
	for _, tc := range tests {
		got, err := parseScale(tc.in)
		if err != nil {
			t.Fatalf("parseScale(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("parseScale(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := parseScale("tiny"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}
