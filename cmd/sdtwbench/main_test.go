package main

import (
	"testing"

	"sdtw/internal/experiments"
)

func TestParseScale(t *testing.T) {
	tests := []struct {
		in   string
		want experiments.Scale
	}{
		{"full", experiments.Full},
		{"FULL", experiments.Full},
		{"medium", experiments.Medium},
		{"small", experiments.Small},
	}
	for _, tc := range tests {
		got, err := parseScale(tc.in)
		if err != nil {
			t.Fatalf("parseScale(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("parseScale(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := parseScale("tiny"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}
