package main

import (
	"bytes"
	"testing"

	"sdtw"
)

func TestOptionsFor(t *testing.T) {
	tests := []struct {
		in   string
		want sdtw.Strategy
	}{
		{"dtw", sdtw.FullGrid},
		{"full", sdtw.FullGrid},
		{"fc,fw", sdtw.FixedCoreFixedWidth},
		{"sakoe", sdtw.FixedCoreFixedWidth},
		{"FC,AW", sdtw.FixedCoreAdaptiveWidth},
		{"ac,fw", sdtw.AdaptiveCoreFixedWidth},
		{"ac,aw", sdtw.AdaptiveCoreAdaptiveWidth},
		{"ac2,aw", sdtw.AdaptiveCoreAdaptiveWidthAvg},
		{"itakura", sdtw.ItakuraBand},
	}
	for _, tc := range tests {
		opts, err := optionsFor(tc.in, 0.1, false)
		if err != nil {
			t.Fatalf("optionsFor(%q): %v", tc.in, err)
		}
		if opts.Strategy != tc.want {
			t.Fatalf("optionsFor(%q) = %v, want %v", tc.in, opts.Strategy, tc.want)
		}
	}
	if _, err := optionsFor("nope", 0.1, false); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestCheckIndex(t *testing.T) {
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 1, SeriesPerClass: 1})
	if err := checkIndex(d, 0); err != nil {
		t.Fatal(err)
	}
	if err := checkIndex(d, -1); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := checkIndex(d, d.Len()); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestRunPairAndQueryEndToEnd(t *testing.T) {
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 1, SeriesPerClass: 2})
	opts, err := optionsFor("ac,aw", 0.1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := runPair(d, 0, 1, opts); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(d, 0, 2, opts); err != nil {
		t.Fatal(err)
	}
	if err := printFeatures(d, 0, opts); err != nil {
		t.Fatal(err)
	}
	if err := runPair(d, 0, 99, opts); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestUCRRoundTripThroughCommandHelpers(t *testing.T) {
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 2, SeriesPerClass: 1})
	var buf bytes.Buffer
	if err := sdtw.WriteUCR(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := sdtw.ReadUCR(&buf, "tmp")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip lost series")
	}
}
