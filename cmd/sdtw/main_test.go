package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdtw"
)

func TestOptionsFor(t *testing.T) {
	tests := []struct {
		in   string
		want sdtw.Strategy
	}{
		{"dtw", sdtw.FullGrid},
		{"full", sdtw.FullGrid},
		{"fc,fw", sdtw.FixedCoreFixedWidth},
		{"sakoe", sdtw.FixedCoreFixedWidth},
		{"FC,AW", sdtw.FixedCoreAdaptiveWidth},
		{"ac,fw", sdtw.AdaptiveCoreFixedWidth},
		{"ac,aw", sdtw.AdaptiveCoreAdaptiveWidth},
		{"ac2,aw", sdtw.AdaptiveCoreAdaptiveWidthAvg},
		{"itakura", sdtw.ItakuraBand},
	}
	for _, tc := range tests {
		opts, err := optionsFor(tc.in, 0.1, false)
		if err != nil {
			t.Fatalf("optionsFor(%q): %v", tc.in, err)
		}
		if opts.Strategy != tc.want {
			t.Fatalf("optionsFor(%q) = %v, want %v", tc.in, opts.Strategy, tc.want)
		}
	}
	if _, err := optionsFor("nope", 0.1, false); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestCheckIndex(t *testing.T) {
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 1, SeriesPerClass: 1})
	if err := checkIndex(d, 0); err != nil {
		t.Fatal(err)
	}
	if err := checkIndex(d, -1); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := checkIndex(d, d.Len()); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestRunPairAndQueryEndToEnd(t *testing.T) {
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 1, SeriesPerClass: 2})
	opts, err := optionsFor("ac,aw", 0.1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := runPair(d, 0, 1, opts); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(d, 0, 2, opts); err != nil {
		t.Fatal(err)
	}
	if err := printFeatures(d, 0, opts); err != nil {
		t.Fatal(err)
	}
	if err := runPair(d, 0, 99, opts); err == nil {
		t.Fatal("bad index accepted")
	}
}

// TestRunMonitorEndToEnd drives the monitor subcommand over a stream
// with a planted occurrence of the query, from both a stream file and
// stdin, in thresholded and best-only modes.
func TestRunMonitorEndToEnd(t *testing.T) {
	dir := t.TempDir()
	queryFile := filepath.Join(dir, "queries.txt")
	// One query row in UCR format: label first, then values.
	if err := os.WriteFile(queryFile, []byte("0,0,2,0\n1,5,5,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Plant [0 2 0] at positions 3..5 of a hostile stream.
	streamFile := filepath.Join(dir, "stream.txt")
	if err := os.WriteFile(streamFile, []byte("9 9 9 0 2 0 9 9 9 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := runMonitor([]string{
		"-queries", queryFile, "-rows", "0", "-stream", streamFile,
		"-threshold", "0.5", "-batch", "3",
	}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[3,5] distance=0", "stream done: 10 points, 1 matches"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("thresholded output missing %q:\n%s", want, out.String())
		}
	}

	// Best-only mode over stdin, monitoring both rows at once.
	out.Reset()
	stdin := strings.NewReader("9 9 9 0 2 0 9 9 9 9")
	err = runMonitor([]string{"-queries", queryFile, "-rows", "0,1", "-workers", "2"}, stdin, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "best matches at end-of-stream:") ||
		!strings.Contains(out.String(), "[3,5] distance=0") {
		t.Fatalf("best-only output missing the planted match:\n%s", out.String())
	}

	// Validation failures surface as errors, not panics.
	for _, args := range [][]string{
		{},
		{"-queries", queryFile, "-rows", "99", "-stream", streamFile},
		{"-queries", queryFile, "-rows", "zero", "-stream", streamFile},
		{"-queries", queryFile, "-stream", filepath.Join(dir, "missing.txt")},
		{"-queries", queryFile, "-batch", "0", "-stream", streamFile},
	} {
		if err := runMonitor(args, strings.NewReader(""), &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}

	// Bad stream values are reported with the offending token.
	if err := runMonitor([]string{"-queries", queryFile, "-stream", "-"},
		strings.NewReader("1 2 banana"), &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "banana") {
		t.Fatalf("bad stream value: got %v", err)
	}
}

func TestUCRRoundTripThroughCommandHelpers(t *testing.T) {
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 2, SeriesPerClass: 1})
	var buf bytes.Buffer
	if err := sdtw.WriteUCR(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := sdtw.ReadUCR(&buf, "tmp")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip lost series")
	}
}
