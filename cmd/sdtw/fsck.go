// The fsck subcommand: offline integrity checking and repair for
// segment stores (and sharded store roots), built on store.Verify and
// store.Repair.
//
//	sdtw fsck idx.store            # verify, list every problem found
//	sdtw fsck -repair idx.store    # apply open-time recovery and report it
//
// Verify is read-only and exhaustive: it checks the manifest, every
// sealed segment's checksum and record count, every value block (the
// lazy-loading bargain means serving only reads them on demand — fsck
// reads them all), the active segment's crash state, the tombstone log,
// and unreferenced files. Repair applies exactly what a degraded open
// would — truncate torn tails, sweep orphans, quarantine corrupt sealed
// segments — and never touches acknowledged-durable data.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sdtw/internal/store"
)

func runFsck(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fsck", flag.ContinueOnError)
	repair := fs.Bool("repair", false,
		"repair the store: truncate torn tails, sweep orphans, quarantine corrupt sealed segments")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("fsck: want exactly one store directory, got %d arguments", fs.NArg())
	}
	root := fs.Arg(0)

	dirs, err := fsckTargets(root)
	if err != nil {
		return err
	}
	bad := 0
	for _, dir := range dirs {
		if *repair {
			if err := fsckRepair(dir, stdout); err != nil {
				return err
			}
		}
		remaining, err := fsckVerify(dir, stdout)
		if err != nil {
			return err
		}
		bad += remaining
	}
	if bad > 0 {
		if *repair {
			return fmt.Errorf("fsck: %d issues remain after repair (restore the named segments from a replica, or remove their records)", bad)
		}
		return fmt.Errorf("fsck: %d issues found (rerun with -repair to apply recovery)", bad)
	}
	return nil
}

// fsckTargets resolves a store directory, or every per-shard store of a
// sharded root (detected by its shard-0000 child).
func fsckTargets(root string) ([]string, error) {
	if _, err := os.Stat(filepath.Join(root, "shard-0000")); err == nil {
		var dirs []string
		for i := 0; ; i++ {
			dir := filepath.Join(root, fmt.Sprintf("shard-%04d", i))
			if _, err := os.Stat(dir); err != nil {
				break
			}
			dirs = append(dirs, dir)
		}
		return dirs, nil
	}
	if _, err := os.Stat(root); err != nil {
		return nil, fmt.Errorf("fsck: %w", err)
	}
	return []string{root}, nil
}

// fsckVerify reports a store's problems and returns how many remain
// that fsck cannot fix (quarantined segments are counted as resolved:
// the damage is contained and reported, not fixable).
func fsckVerify(dir string, stdout io.Writer) (int, error) {
	rep, err := store.Verify(dir, nil)
	if err != nil {
		return 0, fmt.Errorf("fsck: %s: %w", dir, err)
	}
	if rep.Clean() {
		fmt.Fprintf(stdout, "%s: clean (%d records in %d segments)\n", dir, rep.Records, rep.Segments)
		return 0, nil
	}
	fmt.Fprintf(stdout, "%s: %d records in %d segments, %d issues:\n", dir, rep.Records, rep.Segments, len(rep.Issues))
	bad := 0
	for _, is := range rep.Issues {
		switch {
		case errors.Is(is.Err, store.ErrQuarantined):
			fmt.Fprintf(stdout, "  %s: %v\n", is.Path, is.Err)
		case is.Repairable:
			bad++
			fmt.Fprintf(stdout, "  %s: %v  [repairable]\n", is.Path, is.Err)
		default:
			bad++
			fmt.Fprintf(stdout, "  %s: %v  [NOT repairable]\n", is.Path, is.Err)
		}
	}
	return bad, nil
}

// fsckRepair applies open-time recovery to a store and reports what
// changed.
func fsckRepair(dir string, stdout io.Writer) error {
	h, err := store.Repair(dir, nil)
	if err != nil {
		return fmt.Errorf("fsck: repairing %s: %w", dir, err)
	}
	if h == (store.Health{}) {
		return nil
	}
	fmt.Fprintf(stdout, "%s: repaired:", dir)
	if h.Quarantined > 0 {
		fmt.Fprintf(stdout, " quarantined %d segments (%d records)", h.Quarantined, h.QuarantinedRecords)
	}
	if h.TruncatedBytes > 0 {
		fmt.Fprintf(stdout, " truncated %d torn bytes (%d records salvaged)", h.TruncatedBytes, h.RecoveredRecords)
	}
	if h.OrphansSwept > 0 {
		fmt.Fprintf(stdout, " swept %d orphaned files", h.OrphansSwept)
	}
	fmt.Fprintln(stdout)
	return nil
}
