package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdtw"
)

// TestRunFsckEndToEnd walks the full operator workflow: a clean store
// passes, a damaged one fails verify with the problems named, -repair
// quarantines the corrupt segment and sweeps the orphan, and the store
// then serves its survivors.
func TestRunFsckEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx.store")
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 9, SeriesPerClass: 3})
	opts := sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.10, StoreSegmentRecords: 2}
	ix, err := sdtw.NewIndex(d.Series, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveStore(dir); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runFsck([]string{dir}, &out); err != nil {
		t.Fatalf("fsck of a clean store: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Fatalf("clean store not reported clean:\n%s", out.String())
	}

	// Damage: flip a byte in the first sealed hot segment and leave an
	// unreferenced segment file behind.
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.hot"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("globbing segments: %v (%d matches)", err, len(matches))
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "seg-00000099.val")
	if err := os.WriteFile(orphan, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := runFsck([]string{dir}, &out); err == nil {
		t.Fatalf("damaged store passed fsck:\n%s", out.String())
	}
	for _, want := range []string{"[repairable]", "seg-00000099.val", "unreferenced"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("verify output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := runFsck([]string{"-repair", dir}, &out); err != nil {
		t.Fatalf("fsck -repair: %v\n%s", err, out.String())
	}
	for _, want := range []string{"quarantined 1 segments", "swept"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("repair output missing %q:\n%s", want, out.String())
		}
	}

	// A later plain fsck still reports the quarantine for the operator
	// but exits clean: the damage is contained.
	out.Reset()
	if err := runFsck([]string{dir}, &out); err != nil {
		t.Fatalf("fsck after repair: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "quarantined") {
		t.Fatalf("post-repair output hides the quarantine:\n%s", out.String())
	}

	// The repaired store serves its survivors.
	deg, err := sdtw.OpenIndex(dir, opts, sdtw.AllowQuarantine())
	if err != nil {
		t.Fatalf("opening repaired store: %v", err)
	}
	defer deg.CloseStore()
	stats, err := deg.StoreStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Health.Quarantined != 1 || !stats.Health.Degraded() {
		t.Fatalf("repaired store health = %+v, want 1 quarantined segment", stats.Health)
	}
	if deg.Len()+int(stats.Health.QuarantinedRecords) != len(d.Series) {
		t.Fatalf("live %d + quarantined %d records, want %d total",
			deg.Len(), stats.Health.QuarantinedRecords, len(d.Series))
	}
}

// TestRunFsckSharded: a sharded store root is detected and every shard
// checked.
func TestRunFsckSharded(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cluster.store")
	d := sdtw.GunDataset(sdtw.DatasetConfig{Seed: 11, SeriesPerClass: 2})
	opts := sdtw.Options{Strategy: sdtw.FixedCoreFixedWidth, WidthFrac: 0.10, StoreSegmentRecords: 2}
	si, err := sdtw.NewShardedIndex(d.Series, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := si.SaveStore(dir); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runFsck([]string{dir}, &out); err != nil {
		t.Fatalf("fsck of a clean sharded store: %v\n%s", err, out.String())
	}
	for _, want := range []string{"shard-0000", "shard-0001"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("sharded fsck skipped %s:\n%s", want, out.String())
		}
	}
}

func TestRunFsckValidation(t *testing.T) {
	if err := runFsck(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("fsck with no directory accepted")
	}
	if err := runFsck([]string{"a", "b"}, &bytes.Buffer{}); err == nil {
		t.Fatal("fsck with two directories accepted")
	}
	if err := runFsck([]string{filepath.Join(t.TempDir(), "missing")}, &bytes.Buffer{}); err == nil {
		t.Fatal("fsck of a missing directory accepted")
	}
}
