// Command sdtw computes DTW and sDTW distances between time series read
// from UCR-format text files (label first, comma- or space-separated
// values, one series per line).
//
// Usage:
//
//	sdtw -file data.txt -i 0 -j 1                 # exact DTW between rows 0 and 1
//	sdtw -file data.txt -i 0 -j 1 -strategy ac,aw # sDTW with adaptive constraints
//	sdtw -file data.txt -query 0 -k 5             # top-5 retrieval for row 0
//	sdtw -file data.txt -features 0               # salient features of row 0
//
// Strategies: dtw (full grid), fc,fw; fc,aw; ac,fw; ac,aw; ac2,aw; itakura.
//
// The monitor subcommand streams whitespace-separated values from a file
// or stdin through the Monitor API and reports subsequence matches of the
// query rows as they are confirmed:
//
//	sdtw monitor -queries data.txt -rows 0,1 -threshold 12.5 < stream.txt
//	sdtwgen ... | sdtw monitor -queries data.txt -stream -
//	sdtw monitor -queries data.txt -stream stream.txt   # best match only
//
// The migrate subcommand converts a legacy gob snapshot (Index.Save or
// ShardedIndex.Save) into a segment store directory that OpenIndex /
// OpenShardedIndex (and sdtwd -store) serve without loading raw values
// into RAM:
//
//	sdtw migrate -in idx.gob -out idx.store
//	sdtw migrate -in cluster.gob -out cluster.store -sharded
//
// The fsck subcommand verifies (and with -repair, repairs) a segment
// store or sharded store root after a crash or suspected corruption:
//
//	sdtw fsck idx.store
//	sdtw fsck -repair cluster.store
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"sdtw"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "monitor" {
		if err := runMonitor(os.Args[2:], os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "migrate" {
		if err := runMigrate(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fsck" {
		if err := runFsck(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	runClassic()
}

func runClassic() {
	var (
		file      = flag.String("file", "", "UCR-format input file (required)")
		i         = flag.Int("i", 0, "index of the first series")
		j         = flag.Int("j", 1, "index of the second series")
		strategy  = flag.String("strategy", "dtw", "constraint strategy: dtw, fc,fw, fc,aw, ac,fw, ac,aw, ac2,aw, itakura")
		width     = flag.Float64("width", 0.10, "band width fraction for fixed-width strategies")
		query     = flag.Int("query", -1, "run top-k retrieval for this series index instead of a pairwise distance")
		k         = flag.Int("k", 5, "number of neighbours for -query")
		features  = flag.Int("features", -1, "print the salient features of this series index and exit")
		symmetric = flag.Bool("symmetric", false, "use the symmetric band union (order-independent distance)")
	)
	flag.Parse()

	if *file == "" {
		fatal(fmt.Errorf("-file is required"))
	}
	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	data, err := sdtw.ReadUCR(f, *file)
	if err != nil {
		fatal(err)
	}

	opts, err := optionsFor(*strategy, *width, *symmetric)
	if err != nil {
		fatal(err)
	}

	switch {
	case *features >= 0:
		if err := printFeatures(data, *features, opts); err != nil {
			fatal(err)
		}
	case *query >= 0:
		if err := runQuery(data, *query, *k, opts); err != nil {
			fatal(err)
		}
	default:
		if err := runPair(data, *i, *j, opts); err != nil {
			fatal(err)
		}
	}
}

func optionsFor(strategy string, width float64, symmetric bool) (sdtw.Options, error) {
	opts := sdtw.Options{WidthFrac: width, Symmetric: symmetric}
	switch strings.ToLower(strategy) {
	case "dtw", "full":
		opts.Strategy = sdtw.FullGrid
	case "fc,fw", "sakoe", "sakoe-chiba":
		opts.Strategy = sdtw.FixedCoreFixedWidth
	case "fc,aw":
		opts.Strategy = sdtw.FixedCoreAdaptiveWidth
	case "ac,fw":
		opts.Strategy = sdtw.AdaptiveCoreFixedWidth
	case "ac,aw":
		opts.Strategy = sdtw.AdaptiveCoreAdaptiveWidth
	case "ac2,aw":
		opts.Strategy = sdtw.AdaptiveCoreAdaptiveWidthAvg
	case "itakura":
		opts.Strategy = sdtw.ItakuraBand
	default:
		return opts, fmt.Errorf("unknown strategy %q", strategy)
	}
	return opts, nil
}

func checkIndex(data *sdtw.Dataset, idx int) error {
	if idx < 0 || idx >= data.Len() {
		return fmt.Errorf("series index %d outside [0,%d)", idx, data.Len())
	}
	return nil
}

func runPair(data *sdtw.Dataset, i, j int, opts sdtw.Options) error {
	if err := checkIndex(data, i); err != nil {
		return err
	}
	if err := checkIndex(data, j); err != nil {
		return err
	}
	eng := sdtw.NewEngine(opts)
	res, err := eng.DistanceSeries(data.Series[i], data.Series[j])
	if err != nil {
		return err
	}
	fmt.Printf("distance(%s, %s) = %g\n", data.Series[i].ID, data.Series[j].ID, res.Distance)
	fmt.Printf("strategy=%v cells=%d/%d (gain %.3f) pairs=%d\n",
		opts.Strategy, res.CellsFilled, res.GridCells, res.CellsGain(), res.Pairs)
	if opts.Strategy != sdtw.FullGrid {
		exact, err := sdtw.DTW(data.Series[i].Values, data.Series[j].Values)
		if err != nil {
			return err
		}
		rel := 0.0
		if exact > 0 {
			rel = (res.Distance - exact) / exact
		}
		fmt.Printf("exact DTW = %g (over-estimation %.3f%%)\n", exact, 100*rel)
	}
	return nil
}

func runQuery(data *sdtw.Dataset, q, k int, opts sdtw.Options) error {
	if err := checkIndex(data, q); err != nil {
		return err
	}
	idx, err := sdtw.NewIndex(data.Series, opts)
	if err != nil {
		return err
	}
	nbrs, _, err := idx.Search(context.Background(), data.Series[q], sdtw.WithK(k))
	if err != nil {
		return err
	}
	fmt.Printf("top-%d neighbours of %s (label %d):\n", k, data.Series[q].ID, data.Series[q].Label)
	for rank, nb := range nbrs {
		s := data.Series[nb.Pos]
		fmt.Printf("%3d. %-20s label=%-3d distance=%g\n", rank+1, s.ID, s.Label, nb.Distance)
	}
	labels, err := idx.Labels(context.Background(), data.Series[q], sdtw.WithK(k))
	if err != nil {
		return err
	}
	fmt.Printf("kNN label set: %v\n", labels)
	return nil
}

func printFeatures(data *sdtw.Dataset, idx int, opts sdtw.Options) error {
	if err := checkIndex(data, idx); err != nil {
		return err
	}
	feats, err := sdtw.ExtractFeatures(data.Series[idx].Values, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%d salient features on %s:\n", len(feats), data.Series[idx].ID)
	fmt.Printf("%6s %8s %7s %8s %10s %10s\n", "pos", "sigma", "octave", "scope", "response", "amplitude")
	for _, f := range feats {
		fmt.Printf("%6d %8.2f %7d %8.1f %+10.4f %10.4f\n", f.X, f.Sigma, f.Octave, f.Scope, f.Response, f.Amplitude)
	}
	return nil
}

// runMonitor is the monitor subcommand: it builds a streaming Monitor
// over the selected query rows and pushes the stream through it in
// batches, printing matches as they are confirmed and a work summary at
// end-of-stream.
func runMonitor(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("monitor", flag.ContinueOnError)
	var (
		queryFile = fs.String("queries", "", "UCR-format file holding the query patterns (required)")
		rows      = fs.String("rows", "0", "comma-separated row indices of the queries to monitor")
		stream    = fs.String("stream", "-", "stream source: a file of whitespace-separated values, or - for stdin")
		threshold = fs.Float64("threshold", 0, "emit every non-overlapping match at distance <= threshold (0 means report only the best match at end-of-stream)")
		gap       = fs.Int("gap", 0, "minimum stream points between an emitted match's end and the next match's start")
		workers   = fs.Int("workers", 0, "worker pool width for multi-query fan-out (0 = GOMAXPROCS)")
		batch     = fs.Int("batch", 256, "points per PushBatch call")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryFile == "" {
		return fmt.Errorf("monitor: -queries is required")
	}
	if *batch < 1 {
		return fmt.Errorf("monitor: -batch must be >= 1, got %d", *batch)
	}
	f, err := os.Open(*queryFile)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := sdtw.ReadUCR(f, *queryFile)
	if err != nil {
		return err
	}
	var queries []sdtw.Series
	for _, field := range strings.Split(*rows, ",") {
		idx, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("monitor: bad -rows entry %q: %w", field, err)
		}
		if err := checkIndex(data, idx); err != nil {
			return err
		}
		queries = append(queries, data.Series[idx])
	}

	mopts := []sdtw.MonitorOption{sdtw.WithMonitorWorkers(*workers), sdtw.WithMinGap(*gap)}
	if *threshold > 0 {
		mopts = append(mopts, sdtw.WithMatchThreshold(*threshold))
	}
	mon, err := sdtw.NewMonitor(queries, sdtw.Options{}, mopts...)
	if err != nil {
		return err
	}

	var src io.Reader = stdin
	if *stream != "-" {
		sf, err := os.Open(*stream)
		if err != nil {
			return err
		}
		defer sf.Close()
		src = sf
	}

	ctx := context.Background()
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	sc.Split(bufio.ScanWords)
	buf := make([]float64, 0, *batch)
	push := func() error {
		if len(buf) == 0 {
			return nil
		}
		matches, err := mon.PushBatch(ctx, buf)
		if err != nil {
			return err
		}
		printMatches(stdout, matches)
		buf = buf[:0]
		return nil
	}
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			return fmt.Errorf("monitor: bad stream value %q: %w", sc.Text(), err)
		}
		if buf = append(buf, v); len(buf) == *batch {
			if err := push(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("monitor: reading stream: %w", err)
	}
	if err := push(); err != nil {
		return err
	}
	final, err := mon.Flush()
	if err != nil {
		return err
	}
	if *threshold <= 0 && len(final) > 0 {
		fmt.Fprintln(stdout, "best matches at end-of-stream:")
	}
	printMatches(stdout, final)

	st := mon.Stats()
	cellsPerPoint := 0.0
	if st.Points > 0 {
		cellsPerPoint = float64(st.Cells) / float64(st.Points)
	}
	fmt.Fprintf(stdout, "stream done: %d points, %d matches, %.0f DP cells/point, %v in Push\n",
		st.Points, st.Matches, cellsPerPoint, st.PushTime.Round(time.Microsecond))
	for _, q := range st.PerQuery {
		fmt.Fprintf(stdout, "  query %-16s matches=%d cells=%d time=%v\n",
			label(q.QueryID), q.Matches, q.Cells, q.Time.Round(time.Microsecond))
	}
	return nil
}

// runMigrate is the migrate subcommand: it converts a legacy gob
// snapshot into a segment store directory, preserving the snapshot's
// engine fingerprint (and, for sharded snapshots, the shard layout and
// sequence numbers) so searches over the opened store are bit-identical
// to searches over the gob-loaded index.
func runMigrate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("migrate", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "gob snapshot to convert (required)")
		out     = fs.String("out", "", "segment store directory to create (required, must not already hold a store)")
		sharded = fs.Bool("sharded", false, "the snapshot is a ShardedIndex.Save snapshot")
		sketch  = fs.Int("sketch", 0, "stage-0 sketch width in segments (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("migrate: -in and -out are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	if *sharded {
		err = sdtw.MigrateShardedStore(f, *out, *sketch)
	} else {
		err = sdtw.MigrateStore(f, *out, *sketch)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "migrated %s -> %s\n", *in, *out)
	return nil
}

// printMatches renders emitted matches one per line, in stream order.
func printMatches(w io.Writer, matches []sdtw.Match) {
	for _, m := range matches {
		fmt.Fprintf(w, "match query=%s [%d,%d] distance=%g\n", label(m.QueryID), m.Start, m.End, m.Distance)
	}
}

// label makes empty query IDs visible in output.
func label(id string) string {
	if id == "" {
		return "(unnamed)"
	}
	return id
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtw:", err)
	os.Exit(1)
}
