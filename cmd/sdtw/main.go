// Command sdtw computes DTW and sDTW distances between time series read
// from UCR-format text files (label first, comma- or space-separated
// values, one series per line).
//
// Usage:
//
//	sdtw -file data.txt -i 0 -j 1                 # exact DTW between rows 0 and 1
//	sdtw -file data.txt -i 0 -j 1 -strategy ac,aw # sDTW with adaptive constraints
//	sdtw -file data.txt -query 0 -k 5             # top-5 retrieval for row 0
//	sdtw -file data.txt -features 0               # salient features of row 0
//
// Strategies: dtw (full grid), fc,fw; fc,aw; ac,fw; ac,aw; ac2,aw; itakura.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"sdtw"
)

func main() {
	var (
		file      = flag.String("file", "", "UCR-format input file (required)")
		i         = flag.Int("i", 0, "index of the first series")
		j         = flag.Int("j", 1, "index of the second series")
		strategy  = flag.String("strategy", "dtw", "constraint strategy: dtw, fc,fw, fc,aw, ac,fw, ac,aw, ac2,aw, itakura")
		width     = flag.Float64("width", 0.10, "band width fraction for fixed-width strategies")
		query     = flag.Int("query", -1, "run top-k retrieval for this series index instead of a pairwise distance")
		k         = flag.Int("k", 5, "number of neighbours for -query")
		features  = flag.Int("features", -1, "print the salient features of this series index and exit")
		symmetric = flag.Bool("symmetric", false, "use the symmetric band union (order-independent distance)")
	)
	flag.Parse()

	if *file == "" {
		fatal(fmt.Errorf("-file is required"))
	}
	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	data, err := sdtw.ReadUCR(f, *file)
	if err != nil {
		fatal(err)
	}

	opts, err := optionsFor(*strategy, *width, *symmetric)
	if err != nil {
		fatal(err)
	}

	switch {
	case *features >= 0:
		if err := printFeatures(data, *features, opts); err != nil {
			fatal(err)
		}
	case *query >= 0:
		if err := runQuery(data, *query, *k, opts); err != nil {
			fatal(err)
		}
	default:
		if err := runPair(data, *i, *j, opts); err != nil {
			fatal(err)
		}
	}
}

func optionsFor(strategy string, width float64, symmetric bool) (sdtw.Options, error) {
	opts := sdtw.Options{WidthFrac: width, Symmetric: symmetric}
	switch strings.ToLower(strategy) {
	case "dtw", "full":
		opts.Strategy = sdtw.FullGrid
	case "fc,fw", "sakoe", "sakoe-chiba":
		opts.Strategy = sdtw.FixedCoreFixedWidth
	case "fc,aw":
		opts.Strategy = sdtw.FixedCoreAdaptiveWidth
	case "ac,fw":
		opts.Strategy = sdtw.AdaptiveCoreFixedWidth
	case "ac,aw":
		opts.Strategy = sdtw.AdaptiveCoreAdaptiveWidth
	case "ac2,aw":
		opts.Strategy = sdtw.AdaptiveCoreAdaptiveWidthAvg
	case "itakura":
		opts.Strategy = sdtw.ItakuraBand
	default:
		return opts, fmt.Errorf("unknown strategy %q", strategy)
	}
	return opts, nil
}

func checkIndex(data *sdtw.Dataset, idx int) error {
	if idx < 0 || idx >= data.Len() {
		return fmt.Errorf("series index %d outside [0,%d)", idx, data.Len())
	}
	return nil
}

func runPair(data *sdtw.Dataset, i, j int, opts sdtw.Options) error {
	if err := checkIndex(data, i); err != nil {
		return err
	}
	if err := checkIndex(data, j); err != nil {
		return err
	}
	eng := sdtw.NewEngine(opts)
	res, err := eng.DistanceSeries(data.Series[i], data.Series[j])
	if err != nil {
		return err
	}
	fmt.Printf("distance(%s, %s) = %g\n", data.Series[i].ID, data.Series[j].ID, res.Distance)
	fmt.Printf("strategy=%v cells=%d/%d (gain %.3f) pairs=%d\n",
		opts.Strategy, res.CellsFilled, res.GridCells, res.CellsGain(), res.Pairs)
	if opts.Strategy != sdtw.FullGrid {
		exact, err := sdtw.DTW(data.Series[i].Values, data.Series[j].Values)
		if err != nil {
			return err
		}
		rel := 0.0
		if exact > 0 {
			rel = (res.Distance - exact) / exact
		}
		fmt.Printf("exact DTW = %g (over-estimation %.3f%%)\n", exact, 100*rel)
	}
	return nil
}

func runQuery(data *sdtw.Dataset, q, k int, opts sdtw.Options) error {
	if err := checkIndex(data, q); err != nil {
		return err
	}
	idx, err := sdtw.NewIndex(data.Series, opts)
	if err != nil {
		return err
	}
	nbrs, _, err := idx.Search(context.Background(), data.Series[q], sdtw.WithK(k))
	if err != nil {
		return err
	}
	fmt.Printf("top-%d neighbours of %s (label %d):\n", k, data.Series[q].ID, data.Series[q].Label)
	for rank, nb := range nbrs {
		s := data.Series[nb.Pos]
		fmt.Printf("%3d. %-20s label=%-3d distance=%g\n", rank+1, s.ID, s.Label, nb.Distance)
	}
	labels, err := idx.Labels(context.Background(), data.Series[q], sdtw.WithK(k))
	if err != nil {
		return err
	}
	fmt.Printf("kNN label set: %v\n", labels)
	return nil
}

func printFeatures(data *sdtw.Dataset, idx int, opts sdtw.Options) error {
	if err := checkIndex(data, idx); err != nil {
		return err
	}
	feats, err := sdtw.ExtractFeatures(data.Series[idx].Values, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%d salient features on %s:\n", len(feats), data.Series[idx].ID)
	fmt.Printf("%6s %8s %7s %8s %10s %10s\n", "pos", "sigma", "octave", "scope", "response", "amplitude")
	for _, f := range feats {
		fmt.Printf("%6d %8.2f %7d %8.1f %+10.4f %10.4f\n", f.X, f.Sigma, f.Octave, f.Scope, f.Response, f.Amplitude)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtw:", err)
	os.Exit(1)
}
