package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the sdtwlint binary once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sdtwlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sdtwlint: %v\n%s", err, out)
	}
	return bin
}

// repoRoot returns the module root (two levels up from cmd/sdtwlint).
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestStandaloneCleanOnRepo is the smoke test the issue asks for: the
// standalone driver must build and run clean over ./... — the tree has
// no outstanding violations.
func TestStandaloneCleanOnRepo(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sdtwlint ./... reported findings or failed: %v\n%s", err, out)
	}
	if len(bytes.TrimSpace(out)) != 0 {
		t.Fatalf("sdtwlint ./... not silent:\n%s", out)
	}
}

// TestVettoolProtocol exercises the cmd/go unitchecker handshake: -V=full
// identity, -flags inventory, and a full `go vet -vettool` run over the
// module (which also covers _test.go files via test-variant packages).
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("full go vet sweep is not short")
	}
	bin := buildLint(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" {
		t.Fatalf("-V=full output %q does not satisfy the cmd/go contract (need ≥3 fields, second == version)", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	for _, name := range []string{"fmaround", "nilctx", "paramlit", "errlint", "hotalloc", "lockheld"} {
		if !bytes.Contains(out, []byte(`"`+name+`"`)) {
			t.Errorf("-flags output missing analyzer %q:\n%s", name, out)
		}
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = repoRoot(t)
	vet.Env = os.Environ()
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=sdtwlint ./... failed: %v\n%s", err, out)
	}
}
