package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"sdtw/internal/analyzers"
)

// vetConfig is the JSON configuration the go command writes to
// $WORK/.../vet.cfg and passes as the tool's sole positional argument
// (the cmd/go ↔ unitchecker protocol).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single package described by a vet.cfg.
func runUnitchecker(cfgPath string, selections map[string]bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The suite exports no cross-package facts, so the .vetx output is an
	// empty placeholder; in VetxOnly mode (dependency passes run only for
	// facts) there is nothing to do beyond writing it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, err := analyzers.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
		return 2
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	if compiler != "gc" {
		fmt.Fprintf(os.Stderr, "sdtwlint: unsupported compiler %q\n", compiler)
		return 2
	}
	imp := analyzers.GCImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, info, err := analyzers.CheckFiles(fset, cfg.ImportPath, cfg.GoVersion, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: type-checking: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, errs := analyzers.RunAnalyzers(enabledAnalyzers(selections), fset, files, pkg, info)
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
