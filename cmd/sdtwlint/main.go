// Command sdtwlint runs the internal/analyzers suite over Go packages.
//
// It supports two modes:
//
//	sdtwlint [packages]              standalone: analyze the named package
//	                                 patterns (default ./...) using
//	                                 `go list -export` for dependencies
//	go vet -vettool=sdtwlint ./...   vettool: speak the cmd/go unitchecker
//	                                 protocol (-V=full, -flags, *.cfg)
//
// Both modes exit non-zero when any analyzer reports a diagnostic.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"sdtw/internal/analyzers"
)

func main() {
	args := os.Args[1:]

	// The go command probes the tool before use: -V=full must print a
	// stable identity line (used as a build-cache key), -flags the JSON
	// list of supported flags.
	for _, arg := range args {
		if arg == "-V=full" || arg == "--V=full" {
			fmt.Println(versionLine())
			return
		}
	}
	if len(args) > 0 && (args[0] == "-flags" || args[0] == "--flags") {
		printFlags()
		return
	}

	// Separate per-analyzer -name[=bool] selections (forwarded by go vet)
	// from positional arguments.
	known := make(map[string]bool)
	for _, a := range analyzers.All() {
		known[a.Name] = true
	}
	selections := make(map[string]bool)
	var rest []string
	for _, arg := range args {
		if strings.HasPrefix(arg, "-") {
			name := strings.TrimLeft(arg, "-")
			val := "true"
			if i := strings.IndexByte(name, '='); i >= 0 {
				name, val = name[:i], name[i+1:]
			}
			if known[name] {
				selections[name] = val == "true" || val == "1"
				continue
			}
			fmt.Fprintf(os.Stderr, "sdtwlint: unknown flag %q\n", arg)
			os.Exit(2)
		}
		rest = append(rest, arg)
	}

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(runUnitchecker(rest[0], selections))
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runStandalone(patterns))
}

// versionLine returns the -V=full identity. The go command uses the
// whole line as the vettool's cache key, so it embeds a content hash of
// the executable: rebuilding sdtwlint invalidates cached vet results.
func versionLine() string {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	return fmt.Sprintf("sdtwlint version v0.1.0-%s", id)
}

// printFlags emits the JSON flag inventory the go command requests via
// -flags before forwarding user vet flags.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range analyzers.All() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analyzer (default true): " + a.Doc})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// enabledAnalyzers applies -<name>=false style selections from vet
// flags; with no selection every analyzer runs.
func enabledAnalyzers(selections map[string]bool) []*analyzers.Analyzer {
	all := analyzers.All()
	if len(selections) == 0 {
		return all
	}
	// If any analyzer is explicitly enabled, run only those; otherwise
	// run all minus the explicitly disabled (the vet convention).
	anyEnabled := false
	for _, on := range selections {
		if on {
			anyEnabled = true
		}
	}
	var out []*analyzers.Analyzer
	for _, a := range all {
		on, mentioned := selections[a.Name]
		switch {
		case anyEnabled && mentioned && on:
			out = append(out, a)
		case !anyEnabled && !mentioned:
			out = append(out, a)
		}
	}
	return out
}
