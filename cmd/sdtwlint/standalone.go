package main

import (
	"fmt"
	"go/token"
	"os"
	"runtime"
	"strings"

	"sdtw/internal/analyzers"
)

// runStandalone analyzes the packages matched by patterns in the current
// directory's module. Dependencies (std and module-local) are resolved
// through `go list -deps -export -json`, which works fully offline via
// the build cache; the target packages themselves are re-type-checked
// from source so the analyzers see syntax.
func runStandalone(patterns []string) int {
	pkgs, err := analyzers.GoList(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	exports := analyzers.ExportMap(pkgs)

	goVersion := "go" + strings.TrimPrefix(runtime.Version(), "go")
	found := 0
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + strings.TrimPrefix(p.Module.GoVersion, "go")
		}
		fset := token.NewFileSet()
		files, err := analyzers.ParseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.ImportPath, err)
			return 2
		}
		imp := analyzers.GCImporter(fset, nil, exports)
		pkg, info, err := analyzers.CheckFiles(fset, p.ImportPath, goVersion, files, imp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: type-checking: %v\n", p.ImportPath, err)
			return 2
		}
		diags, errs := analyzers.RunAnalyzers(analyzers.All(), fset, files, pkg, info)
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.ImportPath, err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
			found++
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}
