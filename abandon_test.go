package sdtw

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"sdtw/internal/dtw"
	"sdtw/internal/lower"
)

// TestTopKAbandonInvariance is the tentpole property: early abandonment
// must never change retrieval results, only skip grid work. Across every
// band strategy and both equal- and unequal-length collections, Search
// and LabelsAll with abandonment enabled are bit-identical to the same
// queries with abandonment disabled.
func TestTopKAbandonInvariance(t *testing.T) {
	collections := map[string][]Series{
		"equal-length":   randomWalkSeries(rand.New(rand.NewSource(21)), 16, 64, 0),
		"unequal-length": randomWalkSeries(rand.New(rand.NewSource(22)), 12, 60, 6),
	}
	for collName, data := range collections {
		for _, opts := range cascadeConfigs() {
			name := fmt.Sprintf("%s/%v", collName, opts.Strategy)
			if opts.Symmetric {
				name += "+sym"
			}
			if opts.MaxWidthFrac > 0 {
				name += "+maxw"
			}
			if opts.Strategy == FixedCoreFixedWidth {
				name += fmt.Sprintf("+w=%g", opts.WidthFrac)
			}
			if opts.Slope != 0 {
				name += fmt.Sprintf("+slope=%g", opts.Slope)
			}
			opts := opts
			data := data
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				on, err := NewIndex(data, opts)
				if err != nil {
					t.Fatal(err)
				}
				offOpts := opts
				offOpts.DisableAbandon = true
				off, err := NewIndex(data, offOpts)
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				for _, k := range []int{1, 3, 100} {
					for _, q := range []Series{data[0], data[len(data)-1]} {
						got, gotStats, err := on.Search(ctx, q, WithK(k))
						if err != nil {
							t.Fatal(err)
						}
						want, wantStats, err := off.Search(ctx, q, WithK(k))
						if err != nil {
							t.Fatal(err)
						}
						if len(got) != len(want) {
							t.Fatalf("k=%d: %d neighbours with abandonment, %d without", k, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("k=%d rank %d: %+v with abandonment, %+v without (on=%v off=%v)",
									k, i, got[i], want[i], gotStats, wantStats)
							}
						}
						if wantStats.AbandonedDTW != 0 || wantStats.CellsSaved != 0 {
							t.Fatalf("disabled index reported abandonment: %v", wantStats)
						}
						if gotStats.AbandonedDTW > gotStats.Evaluated {
							t.Fatalf("abandoned exceeds evaluated: %v", gotStats)
						}
						if total := gotStats.PrunedSketch + gotStats.PrunedKim + gotStats.PrunedKeogh + gotStats.Evaluated; total != gotStats.Candidates {
							t.Fatalf("stats do not partition candidates: %v", gotStats)
						}
					}
				}
				onLabels, _, err := on.LabelsAll(ctx, WithK(3))
				if err != nil {
					t.Fatal(err)
				}
				offLabels, _, err := off.LabelsAll(ctx, WithK(3))
				if err != nil {
					t.Fatal(err)
				}
				for i := range onLabels {
					if len(onLabels[i]) != len(offLabels[i]) {
						t.Fatalf("series %d: ClassifyAll %v with abandonment, %v without", i, onLabels[i], offLabels[i])
					}
					for j := range onLabels[i] {
						if onLabels[i][j] != offLabels[i][j] {
							t.Fatalf("series %d: ClassifyAll %v with abandonment, %v without", i, onLabels[i], offLabels[i])
						}
					}
				}
			})
		}
	}
}

// TestAbandonPartialIsLowerBound asserts the property abandonment's
// exactness rests on, at the engine level on realistic workload pairs:
// the partial cost of an abandoned computation never exceeds the true
// banded distance and always exceeds the budget it was abandoned against.
func TestAbandonPartialIsLowerBound(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 17, SeriesPerClass: 4})
	for _, opts := range cascadeConfigs() {
		engine := NewEngine(opts)
		for trial := 0; trial < 12; trial++ {
			x := d.Series[trial%d.Len()]
			y := d.Series[(trial*7+3)%d.Len()]
			full, err := engine.DistanceSeries(x, y)
			if err != nil {
				t.Fatal(err)
			}
			budget := full.Distance * 0.2
			res, err := engine.DistanceUnderSeries(x, y, budget)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Abandoned {
				if res.Distance != full.Distance {
					t.Fatalf("%v: non-abandoned run diverged: %v vs %v", opts.Strategy, res.Distance, full.Distance)
				}
				continue
			}
			if res.Distance <= budget {
				t.Fatalf("%v: abandoned at %v, not above budget %v", opts.Strategy, res.Distance, budget)
			}
			if err := lower.ValidateBound(res.Distance, full.Distance); err != nil {
				t.Fatalf("%v: abandoned partial cost not a lower bound: %v", opts.Strategy, err)
			}
		}
	}
}

// TestAbandonSavesWorkOnTrace pins the acceptance bar: on the Trace
// retrieval workload, early abandonment fires and measurably reduces the
// cells filled relative to the same queries without it.
func TestAbandonSavesWorkOnTrace(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 42, SeriesPerClass: 12})
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"sakoe-chiba-10", Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}},
		{"ac,aw", DefaultOptions()},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			on, err := NewIndex(d.Series, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			offOpts := cfg.opts
			offOpts.DisableAbandon = true
			off, err := NewIndex(d.Series, offOpts)
			if err != nil {
				t.Fatal(err)
			}
			_, onStats, err := on.SearchBatch(context.Background(), d.Series, WithK(5))
			if err != nil {
				t.Fatal(err)
			}
			_, offStats, err := off.SearchBatch(context.Background(), d.Series, WithK(5), WithoutAbandon())
			if err != nil {
				t.Fatal(err)
			}
			if onStats.AbandonedDTW == 0 {
				t.Fatalf("abandonment never fired: %v", onStats)
			}
			if onStats.CellsSaved == 0 {
				t.Fatalf("no cells saved: %v", onStats)
			}
			if onStats.Cells >= offStats.Cells {
				t.Fatalf("abandonment filled %d cells, disabled filled %d", onStats.Cells, offStats.Cells)
			}
			if onStats.AbandonRate() <= 0 {
				t.Fatalf("abandon rate %v", onStats.AbandonRate())
			}
		})
	}
}

// TestWindowedIndexAbandonInvariance mirrors the invariance property for
// the windowed exact index: abandonment on and off (per search, via
// WithoutAbandon) return identical neighbours, and on a structured
// workload abandonment actually fires.
func TestWindowedIndexAbandonInvariance(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 33, SeriesPerClass: 8})
	ctx := context.Background()
	for _, radius := range []int{-1, 10, 25} {
		ix, err := NewWindowedIndex(d.Series, radius)
		if err != nil {
			t.Fatal(err)
		}
		totalAbandoned := 0
		for q := 0; q < d.Len(); q += 3 {
			for _, k := range []int{1, 4} {
				got, gotStats, err := ix.Search(ctx, d.Series[q], WithK(k))
				if err != nil {
					t.Fatal(err)
				}
				want, wantStats, err := ix.Search(ctx, d.Series[q], WithK(k), WithoutAbandon())
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("radius=%d q=%d k=%d: %d vs %d neighbours", radius, q, k, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("radius=%d q=%d k=%d rank %d: %+v with abandonment, %+v without",
							radius, q, k, i, got[i], want[i])
					}
				}
				if wantStats.AbandonedDTW != 0 {
					t.Fatalf("WithoutAbandon search abandoned: %+v", wantStats)
				}
				totalAbandoned += gotStats.AbandonedDTW
				if gotStats.Evaluated+gotStats.PrunedSketch+gotStats.PrunedKim+gotStats.PrunedKeogh != gotStats.Candidates {
					t.Fatalf("stats do not partition candidates: %+v", gotStats)
				}
			}
		}
		if totalAbandoned == 0 {
			t.Fatalf("radius=%d: abandonment never fired across the workload", radius)
		}
	}
}

// TestBoundedIndexRadiusRegression reproduces the envelope-radius
// off-by-one the fixed BoundedIndex no longer has. The old index built
// its DP band via SakoeChiba(len, len, (2r+1)/len), whose ceil rounding
// yields band radius r+1, while the LB_Keogh envelopes were built at
// radius r — and LB_Keogh at radius r does not lower-bound windowed DTW
// at radius r+1, so a top-k search could falsely dismiss the true nearest
// neighbour. The crafted workload: the query's spike aligns a candidate's
// spike two samples away — reachable at band radius 2, invisible to
// radius-1 envelopes — so the old pipeline prunes the true neighbour on
// an inadmissible bound and returns a strictly worse series.
func TestBoundedIndexRadiusRegression(t *testing.T) {
	const length, radius = 9, 1
	mk := func(id string, spikeAt int, height float64) Series {
		v := make([]float64, length)
		v[spikeAt] = height
		return NewSeries(id, 0, v)
	}
	trueNeighbor := mk("true", 5, 2) // pos 0: spike 2 right of the query's
	decoy := mk("decoy", 3, 1.9)     // pos 1: nearly matching spike in place
	data := []Series{trueNeighbor, decoy}
	query := mk("q", 3, 2)

	// --- The old pipeline, reproduced: envelopes at radius 1, DP band
	// derived via the width fraction (radius 2), candidates ordered by
	// ascending LB_Keogh and pruned against the best-so-far.
	oldBand := dtw.SakoeChiba(length, length, float64(2*radius+1)/float64(length))
	if oldBand.Hi[0] != radius+1 {
		t.Fatalf("old band radius = %d, want %d (the off-by-one under test)", oldBand.Hi[0], radius+1)
	}
	type cand struct {
		pos   int
		bound float64
	}
	var cands []cand
	for i, s := range data {
		b, err := lower.Keogh(query.Values, lower.NewEnvelope(s.Values, radius), nil)
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, cand{pos: i, bound: b})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].bound < cands[b].bound })
	oldBest, oldKth := -1, math.Inf(1)
	pruned := 0
	for _, c := range cands {
		if c.bound > oldKth {
			pruned++
			continue
		}
		dist, _, err := dtw.Banded(query.Values, data[c.pos].Values, oldBand, nil)
		if err != nil {
			t.Fatal(err)
		}
		if dist < oldKth {
			oldBest, oldKth = c.pos, dist
		}
	}
	// Under the old pipeline's own distance (band radius 2), the true
	// nearest neighbour is pos 0 at distance 0 — the spikes align inside
	// the radius-2 band.
	d0, _, err := dtw.Banded(query.Values, trueNeighbor.Values, oldBand, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1, _, err := dtw.Banded(query.Values, decoy.Values, oldBand, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(d0 < d1) {
		t.Fatalf("workload does not exercise the mismatch: d(true)=%v, d(decoy)=%v", d0, d1)
	}
	if pruned == 0 || oldBest != 1 {
		t.Fatalf("old pipeline returned pos %d (pruned=%d); the off-by-one no longer reproduces — did the envelope radius change?",
			oldBest, pruned)
	}

	// --- The fixed index: band built directly at the envelope radius.
	// Search must agree with a brute-force scan under the index's own
	// band, which sits at exactly the envelope radius.
	ix, err := NewWindowedIndex(data, radius)
	if err != nil {
		t.Fatal(err)
	}
	fixedBand := dtw.SakoeChibaRadius(length, length, ix.Radius())
	if fixedBand.Hi[0] != radius {
		t.Fatalf("fixed band radius = %d, want %d", fixedBand.Hi[0], radius)
	}
	for _, k := range []int{1, 2} {
		got, _, err := ix.Search(context.Background(), query, WithK(k))
		if err != nil {
			t.Fatal(err)
		}
		var brute []Neighbor
		for i, s := range data {
			dist, _, err := dtw.Banded(query.Values, s.Values, fixedBand, nil)
			if err != nil {
				t.Fatal(err)
			}
			brute = append(brute, Neighbor{Pos: i, Distance: dist})
		}
		sort.Slice(brute, func(a, b int) bool {
			if brute[a].Distance != brute[b].Distance {
				return brute[a].Distance < brute[b].Distance
			}
			return brute[a].Pos < brute[b].Pos
		})
		if k > len(brute) {
			k = len(brute)
		}
		if len(got) != k {
			t.Fatalf("k=%d: got %d neighbours", k, len(got))
		}
		for i := 0; i < k; i++ {
			if got[i] != brute[i] {
				t.Fatalf("k=%d rank %d: Search %+v, brute force %+v", k, i, got[i], brute[i])
			}
		}
	}
}
