package sdtw

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"sdtw/internal/lower"
	"sdtw/internal/retrieve"
	"sdtw/internal/shard"
	"sdtw/internal/sketch"
	"sdtw/internal/store"
	"sdtw/internal/vfs"
)

// This file is the segment-store face of the index: SaveStore exports a
// warm index into an on-disk segment store, OpenIndex (and friends)
// serve straight from one with only the hot sections — IDs, endpoints,
// sketches, envelopes — resident, and Add/Remove on an opened index
// write through to the store, so the collection scales past what the
// raw values would occupy in RAM. Gob snapshots (Save/LoadIndex) remain
// readable for one release; migrate converts them.

// Manifest metadata keys the index layer stores alongside the segment
// format's own fields.
const (
	storeMetaKind    = "kind"
	storeMetaLength  = "length"
	storeMetaRadius  = "radius"
	storeMetaShards  = "shards"
	storeMetaShard   = "shard"
	storeMetaNextSeq = "next_seq"
)

// shardDirName names the per-shard store directory under a sharded
// store root.
func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// StoreStats summarises a store-backed index's segment store(s):
// sharded indexes aggregate across their per-shard stores.
type StoreStats struct {
	// Segments counts sealed segments plus the active one(s).
	Segments int
	// LiveRecords and Tombstones partition the stored records.
	LiveRecords, Tombstones int
	// SketchWidth is the stage-0 sketch coefficient count every record
	// carries.
	SketchWidth int
	// Health reports what opening the store(s) recovered, swept or
	// quarantined — aggregated across shards for a sharded index.
	// Health.Degraded() means quarantined records are unavailable.
	Health StoreHealth
	// ShardHealth breaks Health down per shard for a sharded index
	// (nil for an unsharded one).
	ShardHealth []StoreHealth
}

// StoreHealth reports the damage a segment store is carrying: what its
// open recovered, swept, or sidelined. The zero value is a fully intact
// store; Degraded() reports whether quarantined segments are holding
// records back from serving.
type StoreHealth = store.Health

// OpenOption adjusts how the Open* entry points open their segment
// store(s).
type OpenOption struct{ apply func(*store.OpenOptions) }

// AllowQuarantine opts the open into degraded serving: a corrupt sealed
// segment is sidelined (renamed to seg-*.quarantine and recorded in the
// manifest) and the survivors are served, instead of the whole open
// failing with ErrCorruptSegment. The quarantine is sticky — once a
// store holds quarantined segments, reopening it requires this option
// until the operator resolves them (see `sdtw fsck`). Quarantined and
// recovered counts surface through StoreStats.Health. An unsharded
// store whose every record is quarantined still fails the open
// (ErrEmptyCollection); a sharded root serves the surviving shards.
func AllowQuarantine() OpenOption {
	return OpenOption{func(o *store.OpenOptions) { o.AllowQuarantine = true }}
}

// withStoreFS points the open at an alternate filesystem; crash tests
// inject a vfs.FaultFS here.
func withStoreFS(fsys vfs.FS) OpenOption {
	return OpenOption{func(o *store.OpenOptions) { o.FS = fsys }}
}

// storeOpenOptions folds the public options onto the store layer's.
func storeOpenOptions(open []OpenOption) store.OpenOptions {
	var o store.OpenOptions
	for _, op := range open {
		op.apply(&o)
	}
	return o
}

// SaveStore exports the index into a segment store rooted at dir
// (created if missing; refused with ErrStoreExists if dir already holds
// a store). Every series needs a non-empty ID — the store keys removals
// on (ID, insertion sequence). The store persists everything the
// cascade's pre-DP stages need hot (sketches, envelopes, endpoints) and
// the raw values cold, so OpenIndex serves from it without loading
// values into RAM. Like Save, export during a quiet period for a
// point-in-time snapshot.
func (ix *Index) SaveStore(dir string) error {
	if ix.core.Cold() {
		return fmt.Errorf("sdtw: SaveStore: the index already serves from a segment store: %w", ErrStoreBacked)
	}
	if !ix.core.Cascade() {
		return fmt.Errorf("sdtw: SaveStore: a custom PointDistance has no admissible envelopes or sketches to persist: %w", ErrConfigMismatch)
	}
	w := ix.core.SketchWidth()
	if w <= 0 {
		w = DefaultSketchWidth
	}
	data, envs := ix.core.Snapshot(nil)
	meta := map[string]string{storeMetaNextSeq: strconv.Itoa(len(data))}
	if ix.engine != nil {
		meta[storeMetaKind] = snapshotKindEngine
	} else {
		meta[storeMetaKind] = snapshotKindWindowed
		meta[storeMetaLength] = strconv.Itoa(data[0].Len())
		meta[storeMetaRadius] = strconv.Itoa(ix.radius)
	}
	created := dirMissing(dir)
	st, err := store.Create(dir, store.Config{
		Fingerprint:    ix.core.Fingerprint(),
		SketchWidth:    w,
		SegmentRecords: ix.segRecords,
		Meta:           meta,
	})
	if err != nil {
		return fmt.Errorf("sdtw: SaveStore: %w", err)
	}
	if err := writeStoreRecords(st, data, envs, nil, w); err != nil {
		st.Close()
		cleanupStoreDir(dir, created)
		return fmt.Errorf("sdtw: SaveStore: %w", err)
	}
	if err := st.Close(); err != nil {
		cleanupStoreDir(dir, created)
		return fmt.Errorf("sdtw: SaveStore: %w", err)
	}
	return nil
}

// SaveStore exports the sharded index into a store root at dir: one
// segment store per shard under shard-0000, shard-0001, …, each
// carrying the shard count, its own shard number, and the cluster's
// next insertion sequence, so OpenShardedIndex rebuilds the cluster —
// including the cross-shard tie-break order — exactly.
func (si *ShardedIndex) SaveStore(dir string) error {
	if si.cluster.Cold() {
		return fmt.Errorf("sdtw: SaveStore: the index already serves from segment stores: %w", ErrStoreBacked)
	}
	w := si.cluster.SketchWidth()
	if w <= 0 {
		w = DefaultSketchWidth
	}
	kind := snapshotKindWindowed
	if si.engines != nil {
		kind = snapshotKindEngine
	}
	parts := make([][]Series, si.shards)
	envs := make([][]lower.Envelope, si.shards)
	seqs := make([][]uint64, si.shards)
	length := 0
	for i := 0; i < si.shards; i++ {
		parts[i], envs[i], seqs[i] = si.cluster.ShardSnapshot(i, nil)
		if kind == snapshotKindWindowed && length == 0 && len(parts[i]) > 0 {
			length = parts[i][0].Len()
		}
		if len(parts[i]) > 0 && len(envs[i]) != len(parts[i]) {
			return fmt.Errorf("sdtw: SaveStore: a custom PointDistance has no admissible envelopes or sketches to persist: %w", ErrConfigMismatch)
		}
	}
	nextSeq := si.cluster.NextSeq()
	created := dirMissing(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sdtw: SaveStore: %w", err)
	}
	stores := make([]*store.Store, 0, si.shards)
	fail := func(err error) error {
		for _, st := range stores {
			st.Close()
		}
		cleanupStoreDir(dir, created)
		return fmt.Errorf("sdtw: SaveStore: %w", err)
	}
	for i := 0; i < si.shards; i++ {
		meta := map[string]string{
			storeMetaKind:    kind,
			storeMetaShards:  strconv.Itoa(si.shards),
			storeMetaShard:   strconv.Itoa(i),
			storeMetaNextSeq: strconv.FormatUint(nextSeq, 10),
		}
		if kind == snapshotKindWindowed {
			meta[storeMetaLength] = strconv.Itoa(length)
			meta[storeMetaRadius] = strconv.Itoa(si.radius)
		}
		st, err := store.Create(filepath.Join(dir, shardDirName(i)), store.Config{
			Fingerprint:    si.cluster.Fingerprint(),
			SketchWidth:    w,
			SegmentRecords: si.segRecords,
			Meta:           meta,
		})
		if err != nil {
			return fail(err)
		}
		stores = append(stores, st)
		if err := writeStoreRecords(st, parts[i], envs[i], seqs[i], w); err != nil {
			return fail(err)
		}
	}
	for _, st := range stores {
		if err := st.Close(); err != nil {
			cleanupStoreDir(dir, created)
			return fmt.Errorf("sdtw: SaveStore: %w", err)
		}
	}
	return nil
}

// writeStoreRecords appends data into st, pairing each series with its
// envelope and a sketch derived from it. seqs supplies the insertion
// sequences (nil means positions).
func writeStoreRecords(st *store.Store, data []Series, envs []lower.Envelope, seqs []uint64, w int) error {
	for i, s := range data {
		if s.ID == "" {
			return fmt.Errorf("series %d: %w", i, ErrNoID)
		}
		sk, err := sketch.FromEnvelope(envs[i], w)
		if err != nil {
			return fmt.Errorf("series %q: %w", s.ID, err)
		}
		seq := uint64(i)
		if seqs != nil {
			seq = seqs[i]
		}
		rec := store.Record{
			ID:       s.ID,
			Label:    s.Label,
			Seq:      seq,
			N:        len(s.Values),
			First:    s.Values[0],
			Last:     s.Values[len(s.Values)-1],
			Sketch:   sk,
			Envelope: envs[i],
			Values:   s.Values,
		}
		if err := st.Append(rec); err != nil {
			return err
		}
	}
	return nil
}

// dirMissing reports whether dir does not exist yet (so a failed export
// may remove what it created without touching a pre-existing
// directory).
func dirMissing(dir string) bool {
	_, err := os.Stat(dir)
	return os.IsNotExist(err)
}

// cleanupStoreDir best-effort removes a partially written store root,
// but only if the export created the directory itself.
func cleanupStoreDir(dir string, created bool) {
	if created {
		os.RemoveAll(dir)
	}
}

// OpenIndex opens a segment store written by SaveStore (or migrate) for
// an engine-backed index and serves from it: sketches, envelopes and
// endpoints load eagerly, raw values stay on disk until a candidate
// survives the lower-bound cascade. opts must describe the same engine
// configuration the store was written under (ErrConfigMismatch
// otherwise). Add and Remove write through to the store. Crash residue
// (a torn active-segment tail, orphaned segment files) is repaired on
// the way in; AllowQuarantine additionally opts into serving around
// corrupt sealed segments.
func OpenIndex(dir string, opts Options, open ...OpenOption) (*Index, error) {
	st, err := store.OpenWith(dir, storeOpenOptions(open))
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	if kind := st.Meta()[storeMetaKind]; kind != snapshotKindEngine {
		st.Close()
		return nil, fmt.Errorf("sdtw: store holds a %q index, want %s (use OpenWindowedIndex): %w",
			kind, snapshotKindEngine, ErrConfigMismatch)
	}
	if fp := engineFingerprint(opts); fp != st.Fingerprint() {
		st.Close()
		return nil, fmt.Errorf("sdtw: store written under %q, opening under %q: %w",
			st.Fingerprint(), fp, ErrConfigMismatch)
	}
	engine := NewEngine(opts)
	backend := retrieve.NewEngineBackend(engine.inner, engineFingerprint(opts), opts.PointDistance != nil)
	ix, err := indexFromStore(st, backend, indexWorkers(opts.Workers), !opts.DisableAbandon)
	if err != nil {
		st.Close()
		return nil, err
	}
	ix.engine = engine
	ix.radius = -1
	return ix, nil
}

// OpenWindowedIndex opens a segment store written by SaveStore for a
// windowed index; its configuration (length and radius) travels inside
// the store's manifest, so no Options are needed.
func OpenWindowedIndex(dir string, open ...OpenOption) (*Index, error) {
	st, err := store.OpenWith(dir, storeOpenOptions(open))
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	if kind := st.Meta()[storeMetaKind]; kind != snapshotKindWindowed {
		st.Close()
		return nil, fmt.Errorf("sdtw: store holds a %q index, want %s (use OpenIndex): %w",
			kind, snapshotKindWindowed, ErrConfigMismatch)
	}
	length, radius, err := windowedStoreGeometry(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	backend, eff, err := retrieve.NewWindowedBackend(length, radius)
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	if fp := backend.Fingerprint(); fp != st.Fingerprint() {
		st.Close()
		return nil, fmt.Errorf("sdtw: store written under %q, rebuilt backend is %q: %w",
			st.Fingerprint(), fp, ErrConfigMismatch)
	}
	ix, err := indexFromStore(st, backend, indexWorkers(0), true)
	if err != nil {
		st.Close()
		return nil, err
	}
	ix.radius = eff
	return ix, nil
}

// windowedStoreGeometry parses a windowed store's length and radius
// metadata.
func windowedStoreGeometry(st *store.Store) (length, radius int, err error) {
	length, err = strconv.Atoi(st.Meta()[storeMetaLength])
	if err != nil || length <= 0 {
		return 0, 0, fmt.Errorf("sdtw: store has windowed length %q: %w", st.Meta()[storeMetaLength], ErrCorruptManifest)
	}
	radius, err = strconv.Atoi(st.Meta()[storeMetaRadius])
	if err != nil {
		return 0, 0, fmt.Errorf("sdtw: store has windowed radius %q: %w", st.Meta()[storeMetaRadius], ErrCorruptManifest)
	}
	return length, radius, nil
}

// indexFromStore builds the store-backed Index: cold series from the
// store's live records, write-through bookkeeping from their sequences.
func indexFromStore(st *store.Store, backend retrieve.Backend, workers int, abandon bool) (*Index, error) {
	cold, seqs := coldRecords(st.Live())
	core, err := retrieve.RestoreCold(backend, cold, st.SketchWidth(), workers, abandon)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	return &Index{core: core, store: st, seqs: seqs, nextSeq: storeNextSeq(st)}, nil
}

// coldRecords lowers live store records onto the cascade's cold-series
// form, pairing each ID with its insertion sequence.
func coldRecords(live []*store.Record) ([]retrieve.ColdSeries, map[string]uint64) {
	cold := make([]retrieve.ColdSeries, len(live))
	seqs := make(map[string]uint64, len(live))
	for i, rec := range live {
		cold[i] = retrieve.ColdSeries{
			ID:       rec.ID,
			Label:    rec.Label,
			N:        rec.N,
			First:    rec.First,
			Last:     rec.Last,
			Envelope: rec.Envelope,
			Sketch:   rec.Sketch,
			Load:     rec.LoadValues,
		}
		seqs[rec.ID] = rec.Seq
	}
	return cold, seqs
}

// storeNextSeq resolves the next insertion sequence for a reopened
// store: the larger of the manifest's recorded counter and one past the
// highest stored sequence (appends after the manifest was written).
func storeNextSeq(st *store.Store) uint64 {
	next := st.NextSeq()
	if v, err := strconv.ParseUint(st.Meta()[storeMetaNextSeq], 10, 64); err == nil && v > next {
		next = v
	}
	return next
}

// addStore is the write-through Add of a store-backed Index.
func (ix *Index) addStore(s Series) error {
	if s.ID == "" {
		return fmt.Errorf("sdtw: Add: a store-backed index needs non-empty series IDs: %w", ErrNoID)
	}
	ix.storeMu.Lock()
	defer ix.storeMu.Unlock()
	if err := ix.core.Add(s); err != nil {
		return fmt.Errorf("sdtw: Add: %w", err)
	}
	env := ix.core.Envelope(ix.core.Len() - 1)
	err := func() error {
		sk, err := sketch.FromEnvelope(env, ix.store.SketchWidth())
		if err != nil {
			return err
		}
		return ix.store.Append(store.Record{
			ID:       s.ID,
			Label:    s.Label,
			Seq:      ix.nextSeq,
			N:        len(s.Values),
			First:    s.Values[0],
			Last:     s.Values[len(s.Values)-1],
			Sketch:   sk,
			Envelope: env,
			Values:   s.Values,
		})
	}()
	if err != nil {
		// Keep RAM and disk agreeing: undo the admission (the series was
		// just added on top of a non-empty collection, so this cannot hit
		// the last-series refusal).
		ix.core.Remove(s.ID)
		return fmt.Errorf("sdtw: Add: %w", err)
	}
	ix.seqs[s.ID] = ix.nextSeq
	ix.nextSeq++
	return nil
}

// removeStore is the write-through Remove of a store-backed Index.
func (ix *Index) removeStore(id string) error {
	ix.storeMu.Lock()
	defer ix.storeMu.Unlock()
	if err := ix.core.Remove(id); err != nil {
		return fmt.Errorf("sdtw: Remove: %w", err)
	}
	seq := ix.seqs[id]
	if err := ix.store.Tombstone(id, seq); err != nil {
		return fmt.Errorf("sdtw: Remove: %w", err)
	}
	delete(ix.seqs, id)
	return nil
}

// StoreBacked reports whether the index serves from a segment store.
func (ix *Index) StoreBacked() bool { return ix.store != nil }

// Compact rewrites the store's live records into fresh segments,
// dropping tombstoned space. Searches keep serving throughout.
func (ix *Index) Compact() error {
	if ix.store == nil {
		return fmt.Errorf("sdtw: Compact: %w", ErrNotStoreBacked)
	}
	ix.storeMu.Lock()
	defer ix.storeMu.Unlock()
	if err := ix.store.Compact(); err != nil {
		return fmt.Errorf("sdtw: Compact: %w", err)
	}
	return nil
}

// StoreStats returns the segment store's counters, including the
// health its open reported (recovered, swept, quarantined).
func (ix *Index) StoreStats() (StoreStats, error) {
	if ix.store == nil {
		return StoreStats{}, fmt.Errorf("sdtw: StoreStats: %w", ErrNotStoreBacked)
	}
	s := ix.store.Stats()
	return StoreStats{
		Segments: s.Segments, LiveRecords: s.LiveRecords, Tombstones: s.Tombstones,
		SketchWidth: s.SketchWidth, Health: ix.store.Health(),
	}, nil
}

// SyncStore flushes the store's active segment to stable storage: once
// it returns, every Append acknowledged before the call survives a
// power cut. Remove needs no barrier — tombstones are synced as they
// are appended.
func (ix *Index) SyncStore() error {
	if ix.store == nil {
		return fmt.Errorf("sdtw: SyncStore: %w", ErrNotStoreBacked)
	}
	ix.storeMu.Lock()
	defer ix.storeMu.Unlock()
	if err := ix.store.Sync(); err != nil {
		return fmt.Errorf("sdtw: SyncStore: %w", err)
	}
	return nil
}

// CloseStore releases the store's file handles. Searches may keep
// running against already-materialised values, but candidates whose
// values were never loaded will fail; close after draining.
func (ix *Index) CloseStore() error {
	if ix.store == nil {
		return fmt.Errorf("sdtw: CloseStore: %w", ErrNotStoreBacked)
	}
	ix.storeMu.Lock()
	defer ix.storeMu.Unlock()
	if err := ix.store.Close(); err != nil {
		return fmt.Errorf("sdtw: CloseStore: %w", err)
	}
	return nil
}

// openShardStores opens every per-shard store under dir, atomically:
// any missing, corrupt or inconsistent shard closes the ones already
// opened and fails the whole open — a cluster must never come up over a
// subset of its shards. Under so.AllowQuarantine a shard with corrupt
// sealed segments opens degraded (its survivors serve, possibly none)
// instead of failing the whole open; structural failures (a missing
// shard, a corrupt manifest, mixed configurations) still fail
// atomically — quarantine bounds the damage, it never papers over a
// store that cannot describe itself.
func openShardStores(dir string, so store.OpenOptions) ([]*store.Store, string, uint64, error) {
	st0, err := store.OpenWith(filepath.Join(dir, shardDirName(0)), so)
	if err != nil {
		return nil, "", 0, fmt.Errorf("sdtw: shard 0: %w", err)
	}
	stores := []*store.Store{st0}
	fail := func(err error) ([]*store.Store, string, uint64, error) {
		for _, st := range stores {
			st.Close()
		}
		return nil, "", 0, err
	}
	shards, err := strconv.Atoi(st0.Meta()[storeMetaShards])
	if err != nil || shards < 1 {
		return fail(fmt.Errorf("sdtw: shard 0 has shard count %q: %w", st0.Meta()[storeMetaShards], ErrCorruptManifest))
	}
	for i := 1; i < shards; i++ {
		st, err := store.OpenWith(filepath.Join(dir, shardDirName(i)), so)
		if err != nil {
			return fail(fmt.Errorf("sdtw: shard %d: %w", i, err))
		}
		stores = append(stores, st)
	}
	kind := st0.Meta()[storeMetaKind]
	nextSeq := uint64(0)
	for i, st := range stores {
		// Every shard store must agree on the cluster configuration: a
		// mixed-config directory (shards written by different indexes, or
		// a shard swapped in from elsewhere) must refuse to open rather
		// than serve merged results two configurations disagree on.
		if st.Fingerprint() != st0.Fingerprint() {
			return fail(fmt.Errorf("sdtw: shard %d written under %q, shard 0 under %q: %w",
				i, st.Fingerprint(), st0.Fingerprint(), ErrConfigMismatch))
		}
		if got := st.Meta()[storeMetaKind]; got != kind {
			return fail(fmt.Errorf("sdtw: shard %d holds a %q index, shard 0 a %q: %w", i, got, kind, ErrConfigMismatch))
		}
		if got := st.Meta()[storeMetaShards]; got != st0.Meta()[storeMetaShards] {
			return fail(fmt.Errorf("sdtw: shard %d expects %q shards, shard 0 %q: %w",
				i, got, st0.Meta()[storeMetaShards], ErrConfigMismatch))
		}
		if got := st.Meta()[storeMetaShard]; got != strconv.Itoa(i) {
			return fail(fmt.Errorf("sdtw: directory %s holds shard %q: %w", shardDirName(i), got, ErrConfigMismatch))
		}
		if st.SketchWidth() != st0.SketchWidth() {
			return fail(fmt.Errorf("sdtw: shard %d has sketch width %d, shard 0 %d: %w",
				i, st.SketchWidth(), st0.SketchWidth(), ErrConfigMismatch))
		}
		if next := storeNextSeq(st); next > nextSeq {
			nextSeq = next
		}
	}
	return stores, kind, nextSeq, nil
}

// OpenShardedIndex opens a sharded store root written by
// ShardedIndex.SaveStore for an engine-backed cluster and serves from
// it. opts must describe the same engine configuration the stores were
// written under. The open is atomic across shards: one bad shard store
// fails the whole open — except under AllowQuarantine, where a shard
// with corrupt sealed segments serves its survivors (per-shard damage
// surfaces in StoreStats.ShardHealth).
func OpenShardedIndex(dir string, opts Options, open ...OpenOption) (*ShardedIndex, error) {
	stores, kind, nextSeq, err := openShardStores(dir, storeOpenOptions(open))
	if err != nil {
		return nil, err
	}
	closeAll := func() {
		for _, st := range stores {
			st.Close()
		}
	}
	if kind != snapshotKindEngine {
		closeAll()
		return nil, fmt.Errorf("sdtw: store holds a %q sharded index, want %s (use OpenShardedWindowedIndex): %w",
			kind, snapshotKindEngine, ErrConfigMismatch)
	}
	fp := engineFingerprint(opts)
	if fp != stores[0].Fingerprint() {
		closeAll()
		return nil, fmt.Errorf("sdtw: store written under %q, opening under %q: %w",
			stores[0].Fingerprint(), fp, ErrConfigMismatch)
	}
	engines := make([]*Engine, len(stores))
	cfg := shard.Config{
		Shards: len(stores),
		NewBackend: func(i int) (retrieve.Backend, error) {
			engines[i] = NewEngine(opts)
			return retrieve.NewEngineBackend(engines[i].inner, fp, opts.PointDistance != nil), nil
		},
		Workers:     indexWorkers(opts.Workers),
		Abandon:     !opts.DisableAbandon,
		SketchWidth: stores[0].SketchWidth(),
	}
	si, err := shardedFromStores(cfg, stores, nextSeq)
	if err != nil {
		closeAll()
		return nil, err
	}
	si.engines = engines
	si.radius = -1
	return si, nil
}

// OpenShardedWindowedIndex opens a sharded store root written by
// ShardedIndex.SaveStore for a windowed cluster; length and radius
// travel inside the manifests.
func OpenShardedWindowedIndex(dir string, open ...OpenOption) (*ShardedIndex, error) {
	stores, kind, nextSeq, err := openShardStores(dir, storeOpenOptions(open))
	if err != nil {
		return nil, err
	}
	closeAll := func() {
		for _, st := range stores {
			st.Close()
		}
	}
	if kind != snapshotKindWindowed {
		closeAll()
		return nil, fmt.Errorf("sdtw: store holds a %q sharded index, want %s (use OpenShardedIndex): %w",
			kind, snapshotKindWindowed, ErrConfigMismatch)
	}
	length, radius, err := windowedStoreGeometry(stores[0])
	if err != nil {
		closeAll()
		return nil, err
	}
	eff := -1
	var fpErr error
	cfg := shard.Config{
		Shards: len(stores),
		NewBackend: func(i int) (retrieve.Backend, error) {
			b, e, err := retrieve.NewWindowedBackend(length, radius)
			if err != nil {
				return nil, err
			}
			eff = e
			if fp := b.Fingerprint(); fp != stores[0].Fingerprint() && fpErr == nil {
				fpErr = fmt.Errorf("sdtw: store written under %q, rebuilt backend is %q: %w",
					stores[0].Fingerprint(), fp, ErrConfigMismatch)
			}
			return b, nil
		},
		Workers:     indexWorkers(0),
		Abandon:     true,
		SketchWidth: stores[0].SketchWidth(),
	}
	si, err := shardedFromStores(cfg, stores, nextSeq)
	if err != nil {
		closeAll()
		return nil, err
	}
	if fpErr != nil {
		si.CloseStore()
		return nil, fpErr
	}
	si.radius = eff
	return si, nil
}

// shardedFromStores rebuilds the cluster from the per-shard stores'
// live records.
func shardedFromStores(cfg shard.Config, stores []*store.Store, nextSeq uint64) (*ShardedIndex, error) {
	parts := make([][]retrieve.ColdSeries, len(stores))
	seqs := make([][]uint64, len(stores))
	for i, st := range stores {
		live := st.Live()
		cold, _ := coldRecords(live)
		parts[i] = cold
		seqs[i] = make([]uint64, len(live))
		for j, rec := range live {
			seqs[i][j] = rec.Seq
		}
	}
	cluster, err := shard.RestoreCold(cfg, parts, seqs, nextSeq)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	return &ShardedIndex{cluster: cluster, shards: len(stores), stores: stores}, nil
}

// addStore is the write-through Add of a store-backed ShardedIndex.
func (si *ShardedIndex) addStore(s Series) error {
	if s.ID == "" {
		return fmt.Errorf("sdtw: Add: %w", ErrNoID)
	}
	sh := shard.Route(s.ID, si.shards)
	st := si.stores[sh]
	// Recompute the envelope exactly as the shard core will: same
	// values, same backend radius, same deterministic construction. The
	// O(n) envelope and sketch work runs before the store lock.
	if len(s.Values) == 0 {
		return fmt.Errorf("sdtw: Add: series %q: %w", s.ID, ErrEmptySeries)
	}
	env := lower.NewEnvelope(s.Values, si.cluster.Backend(sh).EnvelopeRadius(len(s.Values)))
	sk, err := sketch.FromEnvelope(env, st.SketchWidth())
	if err != nil {
		return fmt.Errorf("sdtw: Add: %w", err)
	}
	si.storeMu.Lock()
	defer si.storeMu.Unlock()
	seq, err := si.cluster.Add(s)
	if err != nil {
		return fmt.Errorf("sdtw: Add: %w", err)
	}
	if err := st.Append(store.Record{
		ID:       s.ID,
		Label:    s.Label,
		Seq:      seq,
		N:        len(s.Values),
		First:    s.Values[0],
		Last:     s.Values[len(s.Values)-1],
		Sketch:   sk,
		Envelope: env,
		Values:   s.Values,
	}); err != nil {
		si.cluster.Remove(s.ID) // keep RAM and disk agreeing
		return fmt.Errorf("sdtw: Add: %w", err)
	}
	return nil
}

// removeStore is the write-through Remove of a store-backed
// ShardedIndex.
func (si *ShardedIndex) removeStore(id string) error {
	si.storeMu.Lock()
	defer si.storeMu.Unlock()
	seq, err := si.cluster.Remove(id)
	if err != nil {
		return fmt.Errorf("sdtw: Remove: %w", err)
	}
	if err := si.stores[shard.Route(id, si.shards)].Tombstone(id, seq); err != nil {
		return fmt.Errorf("sdtw: Remove: %w", err)
	}
	return nil
}

// StoreBacked reports whether the index serves from segment stores.
func (si *ShardedIndex) StoreBacked() bool { return si.stores != nil }

// Compact rewrites every shard store's live records into fresh
// segments, dropping tombstoned space. Searches keep serving
// throughout.
func (si *ShardedIndex) Compact() error {
	if si.stores == nil {
		return fmt.Errorf("sdtw: Compact: %w", ErrNotStoreBacked)
	}
	si.storeMu.Lock()
	defer si.storeMu.Unlock()
	for i, st := range si.stores {
		if err := st.Compact(); err != nil {
			return fmt.Errorf("sdtw: Compact: shard %d: %w", i, err)
		}
	}
	return nil
}

// StoreStats aggregates the per-shard stores' counters and health;
// ShardHealth carries the per-shard breakdown.
func (si *ShardedIndex) StoreStats() (StoreStats, error) {
	if si.stores == nil {
		return StoreStats{}, fmt.Errorf("sdtw: StoreStats: %w", ErrNotStoreBacked)
	}
	out := StoreStats{ShardHealth: make([]StoreHealth, len(si.stores))}
	for i, st := range si.stores {
		s := st.Stats()
		out.Segments += s.Segments
		out.LiveRecords += s.LiveRecords
		out.Tombstones += s.Tombstones
		out.SketchWidth = s.SketchWidth
		h := st.Health()
		out.ShardHealth[i] = h
		out.Health.Quarantined += h.Quarantined
		out.Health.QuarantinedRecords += h.QuarantinedRecords
		out.Health.RecoveredRecords += h.RecoveredRecords
		out.Health.TruncatedBytes += h.TruncatedBytes
		out.Health.OrphansSwept += h.OrphansSwept
	}
	return out, nil
}

// SyncStore flushes every shard store's active segment to stable
// storage: once it returns, every Append acknowledged before the call
// survives a power cut.
func (si *ShardedIndex) SyncStore() error {
	if si.stores == nil {
		return fmt.Errorf("sdtw: SyncStore: %w", ErrNotStoreBacked)
	}
	si.storeMu.Lock()
	defer si.storeMu.Unlock()
	for i, st := range si.stores {
		if err := st.Sync(); err != nil {
			return fmt.Errorf("sdtw: SyncStore: shard %d: %w", i, err)
		}
	}
	return nil
}

// CloseStore releases every shard store's file handles; close after
// draining searches.
func (si *ShardedIndex) CloseStore() error {
	if si.stores == nil {
		return fmt.Errorf("sdtw: CloseStore: %w", ErrNotStoreBacked)
	}
	si.storeMu.Lock()
	defer si.storeMu.Unlock()
	var first error
	for i, st := range si.stores {
		if err := st.Close(); err != nil && first == nil {
			first = fmt.Errorf("sdtw: CloseStore: shard %d: %w", i, err)
		}
	}
	return first
}

// MigrateStore converts a gob snapshot written by Index.Save into a
// segment store at dir. The snapshot's fingerprint is copied verbatim
// and its envelopes are trusted, so no Options are needed — the store
// opens under exactly the options the snapshot was written under.
// sketchWidth <= 0 selects DefaultSketchWidth. Cached salient features
// are dropped: the store keeps only what the cascade needs hot, and the
// engine's feature cache refills read-through on first evaluation.
func MigrateStore(r io.Reader, dir string, sketchWidth int) error {
	snap, err := decodeSnapshot(r)
	if err != nil {
		return err
	}
	if len(snap.Envelopes) != len(snap.Series) {
		return fmt.Errorf("sdtw: migrate: snapshot has %d envelopes for %d series (a custom PointDistance cannot be store-backed): %w",
			len(snap.Envelopes), len(snap.Series), ErrConfigMismatch)
	}
	w := sketchWidth
	if w <= 0 {
		w = DefaultSketchWidth
	}
	meta := map[string]string{
		storeMetaKind:    snap.Kind,
		storeMetaNextSeq: strconv.Itoa(len(snap.Series)),
	}
	if snap.Kind == snapshotKindWindowed {
		meta[storeMetaLength] = strconv.Itoa(snap.Length)
		meta[storeMetaRadius] = strconv.Itoa(snap.Radius)
	}
	created := dirMissing(dir)
	st, err := store.Create(dir, store.Config{
		Fingerprint: snap.Fingerprint,
		SketchWidth: w,
		Meta:        meta,
	})
	if err != nil {
		return fmt.Errorf("sdtw: migrate: %w", err)
	}
	if err := writeStoreRecords(st, snap.Series, snap.Envelopes, nil, w); err != nil {
		st.Close()
		cleanupStoreDir(dir, created)
		return fmt.Errorf("sdtw: migrate: %w", err)
	}
	if err := st.Close(); err != nil {
		cleanupStoreDir(dir, created)
		return fmt.Errorf("sdtw: migrate: %w", err)
	}
	return nil
}

// MigrateShardedStore converts a gob snapshot written by
// ShardedIndex.Save into a sharded store root at dir (one per-shard
// store, preserving insertion sequences). sketchWidth <= 0 selects
// DefaultSketchWidth.
func MigrateShardedStore(r io.Reader, dir string, sketchWidth int) error {
	snap, err := decodeShardedSnapshot(r)
	if err != nil {
		return err
	}
	w := sketchWidth
	if w <= 0 {
		w = DefaultSketchWidth
	}
	created := dirMissing(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sdtw: migrate: %w", err)
	}
	var stores []*store.Store
	fail := func(err error) error {
		for _, st := range stores {
			st.Close()
		}
		cleanupStoreDir(dir, created)
		return fmt.Errorf("sdtw: migrate: %w", err)
	}
	for i := 0; i < snap.Shards; i++ {
		if len(snap.ShardEnvelopes[i]) != len(snap.ShardSeries[i]) {
			return fail(fmt.Errorf("shard %d has %d envelopes for %d series (a custom PointDistance cannot be store-backed): %w",
				i, len(snap.ShardEnvelopes[i]), len(snap.ShardSeries[i]), ErrConfigMismatch))
		}
		meta := map[string]string{
			storeMetaKind:    snap.Kind,
			storeMetaShards:  strconv.Itoa(snap.Shards),
			storeMetaShard:   strconv.Itoa(i),
			storeMetaNextSeq: strconv.FormatUint(snap.NextSeq, 10),
		}
		if snap.Kind == snapshotKindWindowed {
			meta[storeMetaLength] = strconv.Itoa(snap.Length)
			meta[storeMetaRadius] = strconv.Itoa(snap.Radius)
		}
		st, err := store.Create(filepath.Join(dir, shardDirName(i)), store.Config{
			Fingerprint: snap.Fingerprint,
			SketchWidth: w,
			Meta:        meta,
		})
		if err != nil {
			return fail(err)
		}
		stores = append(stores, st)
		if err := writeStoreRecords(st, snap.ShardSeries[i], snap.ShardEnvelopes[i], snap.ShardSeqs[i], w); err != nil {
			return fail(err)
		}
	}
	for _, st := range stores {
		if err := st.Close(); err != nil {
			cleanupStoreDir(dir, created)
			return fmt.Errorf("sdtw: migrate: %w", err)
		}
	}
	return nil
}
