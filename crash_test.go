package sdtw

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"sdtw/internal/lower"
	"sdtw/internal/retrieve"
	"sdtw/internal/sketch"
	"sdtw/internal/store"
	"sdtw/internal/vfs"
)

// The crash-consistency property test: simulate a power cut at every
// filesystem operation of a fixed Append/Tombstone/Compact/Save script,
// recover, and assert the three durability promises the store makes —
// the store always reopens, every acknowledged write survives
// bit-exactly, and a store-backed search over the survivors answers
// identically to an in-RAM index built over the same surviving set.
//
// An append is acknowledged by the first successful Sync (or Compact)
// after it; a tombstone is acknowledged when Tombstone returns. Writes
// in flight at the cut may land or vanish — either is correct — but
// nothing else may change, and the store must describe whatever
// happened.

const (
	crashSeriesLen   = 32
	crashRadius      = 4
	crashSketchWidth = 8
	crashSeriesCount = 10
)

// crashSeriesValues generates the i'th deterministic series of the
// script.
func crashSeriesValues(i int) []float64 {
	rng := rand.New(rand.NewSource(int64(i)*7919 + 11))
	vals := make([]float64, crashSeriesLen)
	for j := range vals {
		vals[j] = rng.NormFloat64() * 3
	}
	return vals
}

func crashSeriesID(i int) string { return "r" + strconv.Itoa(i) }

// crashAcks tracks what the script has acknowledged so far. IDs move
// from appended (returned, volatile) to synced (covered by a successful
// Sync or Compact, must survive); tombstones are acknowledged on return
// and merely attempted once the call is issued.
type crashAcks struct {
	created bool
	// appendTried holds every Append issued (a call cut mid-write may
	// still land a complete record — per-record CRCs only guarantee
	// torn records never serve); appended holds the ones that returned.
	appendTried map[string]bool
	appended    map[string]bool
	synced      map[string]bool
	tombAcked   map[string]bool
	tombTried   map[string]bool
}

func newCrashAcks() *crashAcks {
	return &crashAcks{
		appendTried: make(map[string]bool),
		appended:    make(map[string]bool),
		synced:      make(map[string]bool),
		tombAcked:   make(map[string]bool),
		tombTried:   make(map[string]bool),
	}
}

// ackSync moves every returned append into the durable set.
func (a *crashAcks) ackSync() {
	for id := range a.appended {
		a.synced[id] = true
	}
}

// mustLive returns the IDs that have to be served after any crash:
// synced appends minus every tombstone that might have landed.
func (a *crashAcks) mustLive() map[string]bool {
	out := make(map[string]bool)
	for id := range a.synced {
		if !a.tombTried[id] {
			out[id] = true
		}
	}
	return out
}

// mayLive returns the IDs allowed to be served: every append issued
// minus acknowledged tombstones.
func (a *crashAcks) mayLive() map[string]bool {
	out := make(map[string]bool)
	for id := range a.appendTried {
		if !a.tombAcked[id] {
			out[id] = true
		}
	}
	return out
}

// crashBackendFingerprint returns the windowed fingerprint the script's
// store is written under.
func crashBackendFingerprint(t *testing.T) (string, int) {
	t.Helper()
	backend, _, err := retrieve.NewWindowedBackend(crashSeriesLen, crashRadius)
	if err != nil {
		t.Fatal(err)
	}
	return backend.Fingerprint(), backend.EnvelopeRadius(crashSeriesLen)
}

// crashAppend appends series i to the store, acknowledging nothing (the
// next Sync does).
func crashAppend(st *store.Store, i, envRadius int) error {
	vals := crashSeriesValues(i)
	env := lower.NewEnvelope(vals, envRadius)
	sk, err := sketch.FromEnvelope(env, crashSketchWidth)
	if err != nil {
		return err
	}
	return st.Append(store.Record{
		ID:       crashSeriesID(i),
		Seq:      uint64(i),
		N:        len(vals),
		First:    vals[0],
		Last:     vals[len(vals)-1],
		Sketch:   sk,
		Envelope: env,
		Values:   vals,
	})
}

// runCrashScript drives the scripted sequence against fs until it
// completes or the injected power cut fires. Acks are applied only for
// calls that returned success; a nil return with the crash already
// fired still acknowledges (the operation's durable commit completed —
// only best-effort cleanup was cut short).
func runCrashScript(t *testing.T, dir string, fs *vfs.FaultFS, acks *crashAcks) {
	t.Helper()
	fp, envRadius := crashBackendFingerprint(t)
	st, err := store.Create(dir, store.Config{
		Fingerprint:    fp,
		SketchWidth:    crashSketchWidth,
		SegmentRecords: 3,
		Meta: map[string]string{
			storeMetaKind:    snapshotKindWindowed,
			storeMetaLength:  strconv.Itoa(crashSeriesLen),
			storeMetaRadius:  strconv.Itoa(crashRadius),
			storeMetaNextSeq: strconv.Itoa(crashSeriesCount),
		},
		FS: fs,
	})
	if fs.Crashed() {
		return
	}
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	acks.created = true
	defer st.Close()

	step := func(name string, call func() error, ack func()) bool {
		err := call()
		if err == nil && ack != nil {
			ack()
		}
		if fs.Crashed() {
			return false
		}
		if err != nil {
			t.Fatalf("%s failed without a crash: %v", name, err)
		}
		return true
	}
	appendStep := func(i int) bool {
		acks.appendTried[crashSeriesID(i)] = true
		return step("append", func() error { return crashAppend(st, i, envRadius) },
			func() { acks.appended[crashSeriesID(i)] = true })
	}
	syncStep := func() bool {
		return step("sync", st.Sync, acks.ackSync)
	}
	tombStep := func(i int) bool {
		id := crashSeriesID(i)
		acks.tombTried[id] = true
		return step("tombstone", func() error { return st.Tombstone(id, uint64(i)) },
			func() { acks.tombAcked[id] = true })
	}

	// Append/Tombstone/Compact/Save in one script: two segment seals
	// (SegmentRecords 3), explicit sync barriers, removes before and
	// after a compaction, and unsynced appends left in flight at close.
	for i := 0; i < 6; i++ {
		if !appendStep(i) {
			return
		}
	}
	if !syncStep() {
		return
	}
	if !tombStep(1) {
		return
	}
	for i := 6; i < 8; i++ {
		if !appendStep(i) {
			return
		}
	}
	if !syncStep() {
		return
	}
	// Compact's manifest commit is its point of durability: on success
	// every live record has been rewritten and synced.
	if !step("compact", st.Compact, acks.ackSync) {
		return
	}
	if !appendStep(8) {
		return
	}
	if !tombStep(4) {
		return
	}
	if !appendStep(9) {
		return
	}
	if !syncStep() {
		return
	}
}

// verifyCrashOutcome reopens the store on the recovered filesystem and
// checks every durability promise against the acks.
func verifyCrashOutcome(t *testing.T, dir string, fs *vfs.FaultFS, acks *crashAcks) {
	t.Helper()
	st, err := store.OpenWith(dir, store.OpenOptions{FS: fs})
	if err != nil {
		if !acks.created {
			// The cut landed inside Create: the store may not exist yet,
			// but it must fail crisply, not serve garbage.
			if !errors.Is(err, store.ErrCorruptManifest) {
				t.Fatalf("open of a half-created store: %v, want ErrCorruptManifest", err)
			}
			return
		}
		t.Fatalf("store failed to reopen after crash: %v", err)
	}
	must, may := acks.mustLive(), acks.mayLive()
	live := make(map[string]bool)
	order := []string{}
	for _, rec := range st.Live() {
		live[rec.ID] = true
		order = append(order, rec.ID)
		if !may[rec.ID] {
			t.Fatalf("store serves %q which was never appended or was removed with acknowledgement", rec.ID)
		}
		i, err := strconv.Atoi(rec.ID[1:])
		if err != nil {
			t.Fatalf("unexpected ID %q", rec.ID)
		}
		vals, err := rec.LoadValues()
		if err != nil {
			t.Fatalf("loading %q after recovery: %v", rec.ID, err)
		}
		want := crashSeriesValues(i)
		for j := range want {
			if math.Float64bits(vals[j]) != math.Float64bits(want[j]) {
				t.Fatalf("%q value %d = %v after recovery, want %v", rec.ID, j, vals[j], want[j])
			}
		}
	}
	for id := range must {
		if !live[id] {
			t.Fatalf("acknowledged write %q lost (live: %v)", id, order)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Search bit-identity: the store-backed index over the survivors
	// must answer exactly like an in-RAM windowed index over the same
	// set, same order.
	cold, err := OpenWindowedIndex(dir, withStoreFS(fs))
	if err != nil {
		if len(order) == 0 && errors.Is(err, ErrEmptyCollection) {
			return
		}
		t.Fatalf("opening recovered store as an index: %v", err)
	}
	defer cold.CloseStore()
	series := make([]Series, len(order))
	for i, id := range order {
		n, _ := strconv.Atoi(id[1:])
		series[i] = Series{ID: id, Values: crashSeriesValues(n)}
	}
	flat, err := NewWindowedIndex(series, crashRadius)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for q := 0; q < crashSeriesCount; q += 3 {
		query := Series{Values: crashSeriesValues(q)}
		want, _, err := flat.Search(ctx, query, WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := cold.Search(ctx, query, WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits from the store, %d in RAM", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Pos != want[i].Pos ||
				math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
				t.Fatalf("query %d hit %d: store-backed %+v, in-RAM %+v", q, i, got[i], want[i])
			}
		}
	}
}

// TestCrashConsistency sweeps the power cut across every filesystem
// operation of the script. SDTW_CRASH_SEEDS widens the sweep to that
// many independent tear/survival seeds (CI's crash-consistency lane
// sets it; the default single seed keeps the test fast for tier-1).
func TestCrashConsistency(t *testing.T) {
	seeds := 1
	if s := os.Getenv("SDTW_CRASH_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("SDTW_CRASH_SEEDS=%q: want a positive integer", s)
		}
		seeds = n
	}
	for seed := 0; seed < seeds; seed++ {
		completed := false
		for n := 1; n < 1000; n++ {
			fs := vfs.NewFaultFS(int64(seed)*100_000 + int64(n))
			dir := filepath.Join("crash", "store")
			fs.CrashAt(n)
			acks := newCrashAcks()
			runCrashScript(t, dir, fs, acks)
			if !fs.Crashed() {
				// The script ran past the injection point: every op has
				// been crash-tested for this seed.
				completed = true
				break
			}
			fs.Recover()
			verifyCrashOutcome(t, dir, fs, acks)
		}
		if !completed {
			t.Fatalf("seed %d: script never completed within the sweep", seed)
		}
	}
}
