package sdtw

import (
	"context"
	"fmt"
	"sync"

	"sdtw/internal/retrieve"
	"sdtw/internal/shard"
	"sdtw/internal/store"
)

// ShardedIndex is the horizontally partitioned form of Index, built for
// serving: series are hash-routed by ID across N independent shards,
// searches fan out across the shards concurrently and merge their top-k
// through one shared best-so-far threshold (pruning compounds across
// shards exactly as it does across the workers inside one search), and
// every shard serves reads from copy-on-write snapshots — Add and Remove
// publish a new shard state with one atomic store, so searches never
// block behind mutations, and a mutation never blocks behind a slow
// search.
//
// Sharded search is exact: for any shard count, Search returns hits
// bit-identical (IDs and distances) to a single Index.Search over the
// same collection, including distance-tie ordering. Unlike Index, a
// ShardedIndex may be empty — a serving collection starts empty and
// fills through Add — and results carry series IDs instead of positions,
// since sharding makes positions meaningless.
type ShardedIndex struct {
	cluster *shard.Cluster
	engines []*Engine // per-shard engines; nil for the windowed backend
	radius  int       // effective windowed radius; -1 for the engine backend
	shards  int

	// Store-backed state (non-nil stores only for indexes opened with
	// OpenShardedIndex / OpenShardedWindowedIndex): one segment store per
	// shard; mutations write through, serialised by storeMu.
	stores  []*store.Store
	storeMu sync.Mutex

	// segRecords is Options.StoreSegmentRecords, kept for SaveStore
	// (zero means the store default).
	segRecords int
}

// Hit is one sharded retrieval result, identified by series ID.
type Hit = shard.Hit

// ErrNoID reports a series without an ID reaching a sharded surface:
// hash routing (and Remove) key on non-empty IDs.
var ErrNoID = shard.ErrNoID

// NewShardedIndex builds a sharded index over data (which may be nil or
// empty) using the sDTW engine configured by opts, partitioned across
// shards. Every series needs a non-empty, unique ID. Each shard owns its
// own engine, so feature caches never contend across shards.
func NewShardedIndex(data []Series, shards int, opts Options) (*ShardedIndex, error) {
	engines := make([]*Engine, shards)
	fp := engineFingerprint(opts)
	cfg := shard.Config{
		Shards: shards,
		NewBackend: func(i int) (retrieve.Backend, error) {
			engines[i] = NewEngine(opts)
			return retrieve.NewEngineBackend(engines[i].inner, fp, opts.PointDistance != nil), nil
		},
		Workers:     indexWorkers(opts.Workers),
		Abandon:     !opts.DisableAbandon,
		SketchWidth: resolveSketchWidth(opts.SketchWidth),
	}
	cluster, err := shard.New(cfg, data)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	return &ShardedIndex{cluster: cluster, engines: engines, radius: -1, shards: shards, segRecords: opts.StoreSegmentRecords}, nil
}

// NewShardedWindowedIndex builds a sharded index answering exact
// (optionally Sakoe-Chiba-windowed) DTW queries over an equal-length
// collection. Unlike the engine variant it needs at least one series:
// the windowed backend's geometry is fixed by the series length.
func NewShardedWindowedIndex(data []Series, shards, radius int) (*ShardedIndex, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sdtw: a windowed sharded index needs at least one series (its length fixes the window geometry): %w", ErrEmptyCollection)
	}
	length := data[0].Len()
	if length == 0 {
		return nil, fmt.Errorf("sdtw: series 0: %w", ErrEmptySeries)
	}
	eff := -1
	cfg := shard.Config{
		Shards: shards,
		NewBackend: func(i int) (retrieve.Backend, error) {
			b, e, err := retrieve.NewWindowedBackend(length, radius)
			eff = e
			return b, err
		},
		Workers:     indexWorkers(0),
		Abandon:     true,
		SketchWidth: DefaultSketchWidth,
	}
	cluster, err := shard.New(cfg, data)
	if err != nil {
		return nil, fmt.Errorf("sdtw: %w", err)
	}
	return &ShardedIndex{cluster: cluster, radius: eff, shards: shards}, nil
}

// Search fans the query out across every non-empty shard and merges the
// per-shard results into the exact cluster top-k, ordered by (distance,
// insertion order). It accepts the same options as Index.Search except
// WithExclude, whose positions are meaningless across shards (rely on
// the ID-based self-exclusion instead). An empty index returns no hits
// and no error.
func (si *ShardedIndex) Search(ctx context.Context, query Series, opts ...SearchOption) ([]Hit, SearchStats, error) {
	p, err := resolveSearch(opts)
	if err != nil {
		return nil, SearchStats{}, err
	}
	if p.Exclude != -1 {
		return nil, SearchStats{}, fmt.Errorf("sdtw: WithExclude is positional and does not apply across shards; remove series by ID instead")
	}
	hits, stats, err := si.cluster.Search(ctx, query, p)
	if err != nil {
		return nil, stats, fmt.Errorf("sdtw: %w", err)
	}
	return hits, stats, nil
}

// Add routes s to its shard and publishes a copy-on-write snapshot with
// it admitted, paying its one-time costs (feature extraction, LB_Keogh
// envelope) outside any search's path. The series needs a non-empty ID,
// unique across the cluster.
func (si *ShardedIndex) Add(s Series) error {
	if si.stores != nil {
		return si.addStore(s)
	}
	if _, err := si.cluster.Add(s); err != nil {
		return fmt.Errorf("sdtw: Add: %w", err)
	}
	return nil
}

// Remove deletes the series with the given non-empty ID. Shards may
// drain to empty; so may the whole index.
func (si *ShardedIndex) Remove(id string) error {
	if si.stores != nil {
		return si.removeStore(id)
	}
	if _, err := si.cluster.Remove(id); err != nil {
		return fmt.Errorf("sdtw: Remove: %w", err)
	}
	return nil
}

// Len returns the total number of indexed series across all shards.
func (si *ShardedIndex) Len() int { return si.cluster.Len() }

// Shards returns the shard count.
func (si *ShardedIndex) Shards() int { return si.shards }

// ShardSizes returns the per-shard series counts (hash-routing balance).
func (si *ShardedIndex) ShardSizes() []int { return si.cluster.Sizes() }

// Radius returns the effective Sakoe-Chiba warping window in samples for
// windowed sharded indexes, and -1 for engine-backed ones.
func (si *ShardedIndex) Radius() int { return si.radius }
