package sdtw

import (
	"context"
	"math"
	"testing"

	"sdtw/internal/dtw"
)

func boundedWorkload(t *testing.T) *Dataset {
	t.Helper()
	return TraceDataset(DatasetConfig{Seed: 31, SeriesPerClass: 6})
}

func TestWindowedIndexExactAgainstBruteForce(t *testing.T) {
	d := boundedWorkload(t)
	ix, err := NewWindowedIndex(d.Series, -1) // unconstrained DTW
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	for _, q := range []int{0, 7, 13} {
		got, stats, err := ix.Search(context.Background(), d.Series[q], WithK(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("got %d neighbours", len(got))
		}
		// Brute force for comparison.
		type nb struct {
			pos int
			d   float64
		}
		var all []nb
		for i := range d.Series {
			if i == q {
				continue
			}
			dist, err := DTW(d.Series[q].Values, d.Series[i].Values)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, nb{i, dist})
		}
		for rank := 0; rank < k; rank++ {
			best := 0
			for i := 1; i < len(all); i++ {
				if all[i].d < all[best].d || (all[i].d == all[best].d && all[i].pos < all[best].pos) {
					best = i
				}
			}
			if math.Abs(all[best].d-got[rank].Distance) > 1e-9 {
				t.Fatalf("query %d rank %d: windowed %v (pos %d) vs brute %v (pos %d)",
					q, rank, got[rank].Distance, got[rank].Pos, all[best].d, all[best].pos)
			}
			all[best] = all[len(all)-1]
			all = all[:len(all)-1]
		}
		if stats.Evaluated+stats.PrunedSketch+stats.PrunedKim+stats.PrunedKeogh != stats.Candidates {
			t.Fatalf("stats do not add up: %+v", stats)
		}
	}
}

func TestWindowedIndexWindowedExact(t *testing.T) {
	d := boundedWorkload(t)
	radius := 20
	ix, err := NewWindowedIndex(d.Series, radius)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Radius() != radius {
		t.Fatalf("radius = %d", ix.Radius())
	}
	if ix.Engine() != nil {
		t.Fatal("windowed index reports an sDTW engine")
	}
	got, _, err := ix.Search(context.Background(), d.Series[2], WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	// Windowed distances must match a direct computation on the band at
	// exactly the envelope radius (not the widthFrac-derived band, whose
	// ceil rounding widens the radius by one).
	want, _, err := dtw.Banded(d.Series[2].Values, d.Series[got[0].Pos].Values,
		dtw.SakoeChibaRadius(d.Length, d.Length, radius), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0].Distance-want) > 1e-9 {
		t.Fatalf("windowed distance %v != direct %v", got[0].Distance, want)
	}
}

// TestWindowedIndexTies: duplicate series produce duplicate distances;
// ties must resolve by ascending collection position, deterministically.
func TestWindowedIndexTies(t *testing.T) {
	base := []float64{0, 1, 3, 2, 1, 0, 1, 2}
	far := []float64{9, 9, 9, 9, 9, 9, 9, 9}
	data := []Series{
		NewSeries("", 0, base), // pos 0: distance 0 to the query
		NewSeries("", 1, far),  // pos 1: far away
		NewSeries("", 2, base), // pos 2: distance 0 again
		NewSeries("", 3, base), // pos 3: distance 0 again
	}
	ix, err := NewWindowedIndex(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	query := NewSeries("q", 0, base)
	got, _, err := ix.Search(context.Background(), query, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	wantPos := []int{0, 2, 3}
	if len(got) != len(wantPos) {
		t.Fatalf("got %d neighbours, want %d", len(got), len(wantPos))
	}
	for i, nb := range got {
		if nb.Pos != wantPos[i] || nb.Distance != 0 {
			t.Fatalf("rank %d: %+v, want pos %d at distance 0", i, nb, wantPos[i])
		}
	}
	// With k=2 only the two lowest positions among the tied trio survive.
	got, _, err = ix.Search(context.Background(), query, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Pos != 0 || got[1].Pos != 2 {
		t.Fatalf("k=2 tie-break by position failed: %+v", got)
	}
}

// TestWindowedIndexKExceedsCollection: k beyond the candidate count
// returns every candidate, ranked, rather than erroring or padding.
func TestWindowedIndexKExceedsCollection(t *testing.T) {
	d := TraceDataset(DatasetConfig{Seed: 61, SeriesPerClass: 2})
	ix, err := NewWindowedIndex(d.Series, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ix.Search(context.Background(), d.Series[0], WithK(d.Len()+50))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != d.Len()-1 {
		t.Fatalf("got %d neighbours, want every other candidate (%d)", len(got), d.Len()-1)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Distance < got[i-1].Distance {
			t.Fatalf("neighbours not ascending at rank %d: %+v", i, got)
		}
	}
	if stats.Evaluated+stats.PrunedSketch+stats.PrunedKim+stats.PrunedKeogh != stats.Candidates {
		t.Fatalf("stats do not partition candidates: %+v", stats)
	}
	// The heap never fills, so the threshold stays +Inf and nothing may
	// be pruned or abandoned away.
	if stats.PrunedSketch+stats.PrunedKim+stats.PrunedKeogh+stats.AbandonedDTW != 0 {
		t.Fatalf("work was skipped although every candidate is a result: %+v", stats)
	}
}

// TestWindowedIndexSelfExclusionByID mirrors cascade_test.go's harness:
// a query sharing an indexed series' non-empty ID is excluded from its
// own candidate set, so leave-one-out never reports a 0-distance self
// match; empty IDs are never treated as equal.
func TestWindowedIndexSelfExclusionByID(t *testing.T) {
	d := boundedWorkload(t)
	ix, err := NewWindowedIndex(d.Series, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{0, 5, d.Len() - 1} {
		got, stats, err := ix.Search(context.Background(), d.Series[q], WithK(d.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates != d.Len()-1 {
			t.Fatalf("query %d: %d candidates, want %d after self-exclusion", q, stats.Candidates, d.Len()-1)
		}
		for _, nb := range got {
			if nb.Pos == q {
				t.Fatalf("query %d returned itself: %+v", q, nb)
			}
		}
	}
	// Empty IDs must not match each other: two anonymous series are
	// candidates for one another.
	anon := []Series{
		NewSeries("", 0, []float64{0, 1, 2, 1, 0, 1, 2, 1}),
		NewSeries("", 1, []float64{2, 1, 0, 1, 2, 1, 0, 1}),
	}
	ixa, err := NewWindowedIndex(anon, -1)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ixa.Search(context.Background(), anon[0], WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Candidates != 2 {
		t.Fatalf("anonymous series excluded by empty ID: %d candidates, want 2", stats.Candidates)
	}
	if len(got) != 1 || got[0].Pos != 0 || got[0].Distance != 0 {
		t.Fatalf("anonymous self-query top-1 = %+v, want pos 0 at distance 0", got)
	}
}

func TestWindowedIndexPrunes(t *testing.T) {
	// On a structured workload with tight warping windows, the cascade
	// must discard a meaningful share of candidates without DTW work.
	d := TraceDataset(DatasetConfig{Seed: 41, SeriesPerClass: 12})
	ix, err := NewWindowedIndex(d.Series, 15)
	if err != nil {
		t.Fatal(err)
	}
	totalPruned, totalCands := 0, 0
	for q := 0; q < 8; q++ {
		_, stats, err := ix.Search(context.Background(), d.Series[q], WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		totalPruned += stats.PrunedSketch + stats.PrunedKim + stats.PrunedKeogh
		totalCands += stats.Candidates
	}
	rate := float64(totalPruned) / float64(totalCands)
	if rate < 0.2 {
		t.Fatalf("cascade pruned only %.2f of candidates", rate)
	}
}

func TestWindowedIndexValidation(t *testing.T) {
	if _, err := NewWindowedIndex(nil, 5); err == nil {
		t.Fatal("empty collection accepted")
	}
	uneven := []Series{
		NewSeries("a", 0, make([]float64, 10)),
		NewSeries("b", 0, make([]float64, 12)),
	}
	if _, err := NewWindowedIndex(uneven, 5); !IsErr(err, ErrLengthMismatch) {
		t.Fatalf("unequal lengths: got %v, want ErrLengthMismatch", err)
	}
	d := boundedWorkload(t)
	ix, err := NewWindowedIndex(d.Series, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Search(context.Background(), d.Series[0], WithK(0)); !IsErr(err, ErrBadK) {
		t.Fatalf("k=0: got %v, want ErrBadK", err)
	}
	if _, _, err := ix.Search(context.Background(), NewSeries("q", 0, make([]float64, 7)), WithK(3)); !IsErr(err, ErrLengthMismatch) {
		t.Fatalf("wrong-length query: got %v, want ErrLengthMismatch", err)
	}
	if ix.Len() != d.Len() {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestSearchStatsPruneRate(t *testing.T) {
	s := SearchStats{Candidates: 10, PrunedKim: 2, PrunedKeogh: 3, Evaluated: 5}
	if got := s.PruneRate(); got != 0.5 {
		t.Fatalf("prune rate = %v", got)
	}
	if (SearchStats{}).PruneRate() != 0 {
		t.Fatal("empty stats prune rate not zero")
	}
}

func TestFastDTWPublicAPI(t *testing.T) {
	d := boundedWorkload(t)
	x := d.Series[0].Values
	y := d.Series[1].Values
	exact, err := DTW(x, y)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FastDTW(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < exact-1e-9 {
		t.Fatalf("FastDTW underestimates: %v < %v", res.Distance, exact)
	}
	if err := res.Path.Validate(len(x), len(y)); err != nil {
		t.Fatal(err)
	}
	if res.Cells >= len(x)*len(y) {
		t.Fatalf("FastDTW did not prune: %d cells", res.Cells)
	}
	if res.Levels < 2 {
		t.Fatalf("FastDTW did not recurse: %d levels", res.Levels)
	}
	if _, err := FastDTW(nil, y, 1); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCombinedDistancePublicAPI(t *testing.T) {
	d := boundedWorkload(t)
	x := d.Series[0].Values
	y := d.Series[1].Values
	exact, err := DTW(x, y)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CombinedDistance(x, y, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < exact-1e-9 {
		t.Fatalf("combined underestimates: %v < %v", res.Distance, exact)
	}
	// The combined band must not exceed the sDTW band alone.
	eng := NewEngine(Options{Strategy: AdaptiveCoreAdaptiveWidth, KeepBand: true})
	solo, err := eng.DistanceSeries(d.Series[0], d.Series[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.BandCells > solo.Band.Cells() {
		t.Fatalf("combined band %d cells > sDTW band %d", res.BandCells, solo.Band.Cells())
	}
	if _, err := CombinedDistance(nil, y, 1, DefaultOptions()); !IsErr(err, ErrEmptySeries) {
		t.Fatalf("empty input: got %v, want ErrEmptySeries", err)
	}
}

func TestPAAPublicAPI(t *testing.T) {
	v := []float64{1, 3, 5, 7}
	r := PAA(v, 2)
	if len(r) != 2 || r[0] != 2 || r[1] != 6 {
		t.Fatalf("PAA = %v", r)
	}
}

func TestClusterPublicAPI(t *testing.T) {
	d := GunDataset(DatasetConfig{Seed: 51, SeriesPerClass: 8})
	c, err := Cluster(d.Series, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Medoids) != 2 || len(c.Assign) != d.Len() {
		t.Fatalf("clustering malformed: %+v", c)
	}
	purity, err := ClusterPurity(c, d.Series)
	if err != nil {
		t.Fatal(err)
	}
	if purity < 0.7 {
		t.Fatalf("sDTW clustering purity = %v on a 2-class workload", purity)
	}
	if c.Silhouette <= 0 {
		t.Fatalf("silhouette = %v", c.Silhouette)
	}
	// Exact-DTW clustering also works through the same entry point.
	cExact, err := Cluster(d.Series, 2, Options{Strategy: FullGrid})
	if err != nil {
		t.Fatal(err)
	}
	pExact, err := ClusterPurity(cExact, d.Series)
	if err != nil {
		t.Fatal(err)
	}
	if pExact < 0.7 {
		t.Fatalf("exact clustering purity = %v", pExact)
	}
	if _, err := Cluster(nil, 2, DefaultOptions()); !IsErr(err, ErrEmptyCollection) {
		t.Fatalf("empty collection: got %v, want ErrEmptyCollection", err)
	}
	if _, err := ClusterPurity(nil, d.Series); err == nil {
		t.Fatal("nil clustering accepted")
	}
}
