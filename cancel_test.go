package sdtw

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// cancelWorkload builds a collection large and long enough that an
// uncancelled batch search takes meaningfully long, so prompt-return
// assertions have teeth.
func cancelWorkload(tb testing.TB) []Series {
	tb.Helper()
	rng := rand.New(rand.NewSource(91))
	const n, length = 48, 600
	out := make([]Series, n)
	for i := range out {
		v := make([]float64, length)
		x := rng.NormFloat64()
		for t := range v {
			x += rng.NormFloat64() * 0.3
			v[t] = x
		}
		out[i] = NewSeries(fmt.Sprintf("cw-%d", i), i%4, v)
	}
	return out
}

// TestSearchPreCancelled: a context cancelled before the call returns
// immediately with context.Canceled and does no candidate work.
func TestSearchPreCancelled(t *testing.T) {
	data := cancelWorkload(t)
	ix, err := NewWindowedIndex(data, -1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err := ix.Search(ctx, data[0], WithK(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if stats.Evaluated != 0 {
		t.Fatalf("pre-cancelled search evaluated %d candidates", stats.Evaluated)
	}
}

// TestSearchCancellation is the cancellation property (run under -race by
// the CI race lane): cancelling a context mid-Search on a large synthetic
// collection returns promptly, propagates context.Canceled through the
// worker pool and the abandoning DP, and leaks no goroutines.
func TestSearchCancellation(t *testing.T) {
	data := cancelWorkload(t)
	// Unconstrained windowed DTW: each candidate costs a full 600x600
	// grid, so the batch runs long enough to be cancelled mid-flight.
	ix, err := NewWindowedIndex(data, -1)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		// WithoutAbandon keeps every DP filling its whole band, so the
		// cancellation poll inside the DP — not abandonment — is what has
		// to stop the work.
		_, _, err := ix.SearchBatch(ctx, data, WithK(5), WithoutAbandon())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case err = <-done:
		// The search must report the cancellation itself.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled search did not return within 5s")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled search took %v to return", elapsed)
	}

	// All worker goroutines must drain. NumGoroutine is noisy (runtime
	// helpers come and go), so retry briefly before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The index stays fully usable after a cancelled search.
	nbrs, _, err := ix.Search(context.Background(), data[0], WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 3 {
		t.Fatalf("post-cancel search returned %d neighbours", len(nbrs))
	}
}

// TestSearchDeadline: context.DeadlineExceeded propagates the same way.
func TestSearchDeadline(t *testing.T) {
	data := cancelWorkload(t)
	ix, err := NewWindowedIndex(data, -1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, _, err = ix.SearchBatch(ctx, data, WithK(5), WithoutAbandon())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}
