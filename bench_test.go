// Benchmark suite regenerating the paper's evaluation (one benchmark per
// table and figure, reporting the paper's measures via b.ReportMetric),
// plus micro-benchmarks for the pipeline stages and ablations for the
// design choices called out in DESIGN.md.
//
// Figure-level benchmarks run the Small workload scale so the whole suite
// finishes in minutes; cmd/sdtwbench reproduces the same experiments at
// full scale. Custom metrics use the papers' units: accuracy and gains in
// [0,1], distance errors as relative over-estimation.
package sdtw

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sdtw/internal/band"
	"sdtw/internal/core"
	"sdtw/internal/datasets"
	"sdtw/internal/dtw"
	"sdtw/internal/experiments"
	"sdtw/internal/match"
	"sdtw/internal/sift"
)

const benchSeed = 42

// --- Micro-benchmarks: pipeline stages -------------------------------

func benchPair(b *testing.B, name string) (Series, Series) {
	b.Helper()
	d, err := datasets.ByName(name, datasets.Config{Seed: benchSeed, SeriesPerClass: 2})
	if err != nil {
		b.Fatal(err)
	}
	return d.Series[0], d.Series[1]
}

func BenchmarkDTWFullGun150(b *testing.B) {
	x, y := benchPair(b, "Gun")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dtw.Distance(x.Values, y.Values, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTWFullTrace275(b *testing.B) {
	x, y := benchPair(b, "Trace")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dtw.Distance(x.Values, y.Values, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTWFullLong1000(b *testing.B) {
	d, err := datasets.ByName("Trace", datasets.Config{Seed: benchSeed, SeriesPerClass: 1, Length: 1000})
	if err != nil {
		b.Fatal(err)
	}
	x := d.Series[0].Values
	y := d.Series[1].Values
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dtw.Distance(x, y, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTWPathRecovery(b *testing.B) {
	x, y := benchPair(b, "Trace")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dtw.DistanceWithPath(x.Values, y.Values, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandedSakoeChiba10(b *testing.B) {
	x, y := benchPair(b, "Trace")
	bd := dtw.SakoeChiba(x.Len(), y.Len(), 0.10)
	var ws dtw.Workspace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := dtw.BandedWS(x.Values, y.Values, bd, nil, &ws); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1-float64(bd.Cells())/float64(x.Len()*y.Len()), "cellsgain")
}

func BenchmarkFeatureExtraction(b *testing.B) {
	for _, name := range []string{"Gun", "Trace", "50Words"} {
		b.Run(name, func(b *testing.B) {
			x, _ := benchPair(b, name)
			cfg := sift.DefaultConfig()
			b.ReportAllocs()
			count := 0
			for i := 0; i < b.N; i++ {
				feats, err := sift.Extract(x.Values, cfg)
				if err != nil {
					b.Fatal(err)
				}
				count = len(feats)
			}
			b.ReportMetric(float64(count), "features")
		})
	}
}

func BenchmarkMatching(b *testing.B) {
	for _, name := range []string{"Gun", "Trace", "50Words"} {
		b.Run(name, func(b *testing.B) {
			x, y := benchPair(b, name)
			fx, err := sift.Extract(x.Values, sift.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			fy, err := sift.Extract(y.Values, sift.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			pairs := 0
			for i := 0; i < b.N; i++ {
				al, err := match.Match(fx, fy, x.Len(), y.Len(), match.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				pairs = len(al.Pairs)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

func BenchmarkBandConstruction(b *testing.B) {
	x, y := benchPair(b, "Trace")
	fx, _ := sift.Extract(x.Values, sift.DefaultConfig())
	fy, _ := sift.Extract(y.Values, sift.DefaultConfig())
	al, err := match.Match(fx, fy, x.Len(), y.Len(), match.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var bu band.Builder
	cfg := band.Config{Strategy: band.AdaptiveCoreAdaptiveWidth}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bu.Build(al, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineDistance(b *testing.B) {
	strategies := []band.Strategy{
		band.FixedCoreFixedWidth, band.FixedCoreAdaptiveWidth,
		band.AdaptiveCoreFixedWidth, band.AdaptiveCoreAdaptiveWidth,
		band.AdaptiveCoreAdaptiveWidthAvg,
	}
	for _, s := range strategies {
		b.Run(s.String(), func(b *testing.B) {
			x, y := benchPair(b, "Trace")
			opts := core.DefaultOptions()
			opts.Band.Strategy = s
			opts.Band.WidthFrac = 0.10
			engine := core.NewEngine(opts)
			if _, err := engine.Warm([]Series{x, y}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			gain := 0.0
			for i := 0; i < b.N; i++ {
				res, err := engine.Distance(x, y)
				if err != nil {
					b.Fatal(err)
				}
				gain = res.CellsGain()
			}
			b.ReportMetric(gain, "cellsgain")
		})
	}
}

// --- Table benchmarks -------------------------------------------------

// BenchmarkTable1DatasetGeneration regenerates the three workloads at
// paper scale (Table 1).
func BenchmarkTable1DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Full, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkTable2SalientFeatureExtraction reproduces Table 2: average
// salient point counts per scale class, at full workload scale.
func BenchmarkTable2SalientFeatureExtraction(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(experiments.Full, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Total, "feat/series:"+r.Dataset)
	}
}

// --- Figure benchmarks ------------------------------------------------

// reportAlgoMetrics publishes a result row's paper measures. Metric units
// must not contain whitespace, so algorithm labels like "fc,fw 10%" are
// compacted.
func reportAlgoMetrics(b *testing.B, r experiments.AlgoResult, fields ...string) {
	name := strings.ReplaceAll(r.Algorithm, " ", "")
	for _, f := range fields {
		switch f {
		case "top5":
			b.ReportMetric(r.Top5Acc, "top5:"+name)
		case "top10":
			b.ReportMetric(r.Top10Acc, "top10:"+name)
		case "disterr":
			b.ReportMetric(r.DistErr, "disterr:"+name)
		case "intra":
			b.ReportMetric(r.IntraClassErr, "intraerr:"+name)
		case "cls5":
			b.ReportMetric(r.Cls5Acc, "cls5:"+name)
		case "timegain":
			b.ReportMetric(r.TimeGain, "timegain:"+name)
		case "cellsgain":
			b.ReportMetric(r.CellsGain, "cellsgain:"+name)
		case "matchshare":
			b.ReportMetric(r.MatchShare, "matchshare:"+name)
		}
	}
}

// keyAlgorithms picks the rows most indicative of the paper's findings,
// keeping benchmark output readable.
func keyAlgorithms(results []experiments.AlgoResult) []experiments.AlgoResult {
	want := map[string]bool{"fc,fw 10%": true, "fc,aw": true, "ac,fw 10%": true, "ac,aw": true, "ac2,aw": true}
	var out []experiments.AlgoResult
	for _, r := range results {
		if want[r.Algorithm] {
			out = append(out, r)
		}
	}
	return out
}

// BenchmarkFig13RetrievalAccuracy reproduces Fig 13: top-5/top-10
// retrieval accuracy and time gain per algorithm per data set.
func BenchmarkFig13RetrievalAccuracy(b *testing.B) {
	for _, name := range []string{"Gun", "Trace", "50Words"} {
		b.Run(name, func(b *testing.B) {
			var results []experiments.AlgoResult
			for i := 0; i < b.N; i++ {
				var err error
				results, err = experiments.Fig13(name, experiments.Small, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range keyAlgorithms(results) {
				reportAlgoMetrics(b, r, "top5", "timegain")
			}
		})
	}
}

// BenchmarkFig14DistanceError reproduces Fig 14: distance error versus
// time gain per algorithm per data set.
func BenchmarkFig14DistanceError(b *testing.B) {
	for _, name := range []string{"Gun", "Trace", "50Words"} {
		b.Run(name, func(b *testing.B) {
			var results []experiments.AlgoResult
			for i := 0; i < b.N; i++ {
				var err error
				results, err = experiments.Fig14(name, experiments.Small, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range keyAlgorithms(results) {
				reportAlgoMetrics(b, r, "disterr", "cellsgain")
			}
		})
	}
}

// BenchmarkFig15IntraClassError reproduces Fig 15: intra-class distance
// errors on the 4-class Trace workload.
func BenchmarkFig15IntraClassError(b *testing.B) {
	var results []experiments.AlgoResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.Fig15(experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range keyAlgorithms(results) {
		reportAlgoMetrics(b, r, "intra")
	}
}

// BenchmarkFig16Classification reproduces Fig 16: kNN classification
// agreement on the 50-class 50Words workload.
func BenchmarkFig16Classification(b *testing.B) {
	var results []experiments.AlgoResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.Fig16(experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range keyAlgorithms(results) {
		reportAlgoMetrics(b, r, "cls5", "timegain")
	}
}

// BenchmarkFig17TimeBreakdown reproduces Fig 17: the matching versus
// dynamic-programming share of per-pair work for adaptive algorithms.
func BenchmarkFig17TimeBreakdown(b *testing.B) {
	var results []experiments.AlgoResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.Fig17("Trace", experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		reportAlgoMetrics(b, r, "matchshare")
	}
}

// BenchmarkFig18DescriptorLength reproduces Fig 18: the impact of the
// descriptor length on error, accuracy and speedup (reduced to two sweep
// points per run; cmd/sdtwbench sweeps the paper's full 4–128 range).
func BenchmarkFig18DescriptorLength(b *testing.B) {
	for _, bins := range []int{8, 64} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			var points []experiments.Fig18Point
			for i := 0; i < b.N; i++ {
				var err error
				points, err = experiments.Fig18("Gun", experiments.Small, benchSeed, []int{bins})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range points {
				reportAlgoMetrics(b, p.Result, "disterr", "top10")
			}
		})
	}
}

// BenchmarkSubsequenceSearch measures open-begin/open-end subsequence
// DTW over a long stream.
func BenchmarkSubsequenceSearch(b *testing.B) {
	d, err := datasets.ByName("Gun", datasets.Config{Seed: benchSeed, SeriesPerClass: 1})
	if err != nil {
		b.Fatal(err)
	}
	query := d.Series[0].Values
	stream := make([]float64, 0, 4096)
	for len(stream) < 4096 {
		stream = append(stream, d.Series[1].Values...)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Subsequence(query, stream[:4096]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorPush measures the streaming monitor's per-point cost —
// the acceptance gate is zero allocations per pushed point after warm-up
// (O(|q|) state, no per-point growth).
func BenchmarkMonitorPush(b *testing.B) {
	query, stream := streamWorkload(b, "Gun", 4, 10_000)
	m, err := NewMonitor([]Series{NewSeries("q", 0, query)}, Options{}) // 150-point query
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, v := range stream[:512] { // warm-up before measuring
		if _, err := m.Push(ctx, v); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Push(ctx, stream[i%len(stream)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := m.Stats()
	b.ReportMetric(float64(st.Cells)/float64(st.Points), "cells/point")
}

// BenchmarkMonitorPushBatch measures the batched streaming path with
// multi-query fan-out across the worker pool.
func BenchmarkMonitorPushBatch(b *testing.B) {
	d, err := datasets.ByName("Trace", datasets.Config{Seed: benchSeed, SeriesPerClass: 2})
	if err != nil {
		b.Fatal(err)
	}
	_, stream := streamWorkload(b, "Trace", 2, 1<<15)
	m, err := NewMonitor(d.Series[:4], Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off := (i * 4096) % (len(stream) - 4096)
		if _, err := m.PushBatch(ctx, stream[off:off+4096]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLearnedBaseline trains the R-K style learned band and
// classifies a holdout, the §1 training-dependent alternative.
func BenchmarkLearnedBaseline(b *testing.B) {
	var rows []experiments.BaselineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.LearnedBaseline(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.HoldoutAccuracy, "holdout:"+strings.ReplaceAll(r.Method, " ", ""))
	}
}

// BenchmarkNoiseRobustness measures the §3.1.2 noise-robustness sweep.
func BenchmarkNoiseRobustness(b *testing.B) {
	var rows []experiments.NoiseRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.NoiseRobustness(benchSeed, []float64{0.01, 0.05})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PairSurvival, fmt.Sprintf("pairsurvival:sigma=%g", r.Sigma))
	}
}

// BenchmarkExtrasComparison runs the extension comparison (Itakura,
// symmetric union, FastDTW, multi-resolution ∩ sDTW) on the small Gun
// workload.
func BenchmarkExtrasComparison(b *testing.B) {
	var rows []experiments.ExtraRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Extras("Gun", experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.DistErr, "disterr:"+strings.ReplaceAll(r.Method, " ", ""))
	}
}

// --- Ablation benchmarks ----------------------------------------------

// --- Extension benchmarks: reduced representations, bounds, clustering ---

// BenchmarkFastDTW measures the multi-resolution approximation (the
// §2.1.4 reduced-representation family) against the exact grid.
func BenchmarkFastDTW(b *testing.B) {
	d, err := datasets.ByName("Trace", datasets.Config{Seed: benchSeed, SeriesPerClass: 1, Length: 1024})
	if err != nil {
		b.Fatal(err)
	}
	x := d.Series[0].Values
	y := d.Series[1].Values
	for _, radius := range []int{1, 4} {
		b.Run(fmt.Sprintf("radius=%d", radius), func(b *testing.B) {
			b.ReportAllocs()
			cells := 0
			for i := 0; i < b.N; i++ {
				res, err := FastDTW(x, y, radius)
				if err != nil {
					b.Fatal(err)
				}
				cells = res.Cells
			}
			b.ReportMetric(1-float64(cells)/float64(len(x)*len(y)), "cellsgain")
		})
	}
}

// BenchmarkCombinedMultiresSDTW measures the paper-suggested combination
// of multi-resolution projection with the salient-feature band.
func BenchmarkCombinedMultiresSDTW(b *testing.B) {
	d, err := datasets.ByName("Trace", datasets.Config{Seed: benchSeed, SeriesPerClass: 1, Length: 1024})
	if err != nil {
		b.Fatal(err)
	}
	x := d.Series[0].Values
	y := d.Series[1].Values
	b.ReportAllocs()
	cells := 0
	for i := 0; i < b.N; i++ {
		res, err := CombinedDistance(x, y, 1, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		cells = res.Cells
	}
	b.ReportMetric(1-float64(cells)/float64(len(x)*len(y)), "cellsgain")
}

// BenchmarkIndexTopKCascade measures the Index's cascaded parallel top-k
// retrieval on a Table-1-style Trace workload: candidates ordered by
// LB_Kim, pruned by LB_Kim then envelope LB_Keogh against the shared
// best-so-far threshold, survivors fanned out over the worker pool. The
// prunerate metric is the fraction of candidates whose DP work the
// cascade skipped entirely; cellsgain additionally counts the sDTW band's
// savings on the survivors.
func BenchmarkIndexTopKCascade(b *testing.B) {
	d, err := datasets.ByName("Trace", datasets.Config{Seed: benchSeed, SeriesPerClass: 15})
	if err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name string
		opts Options
	}{
		{"sakoe-chiba-10", Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10}},
		{"itakura", Options{Strategy: ItakuraBand}},
		{"ac-aw", DefaultOptions()},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			ix, err := NewIndex(d.Series, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			// Aggregate over every iteration so the reported metrics do
			// not depend on which query b.N happens to end on.
			var stats SearchStats
			for i := 0; i < b.N; i++ {
				_, s, err := ix.Search(context.Background(), d.Series[i%d.Len()], WithK(5))
				if err != nil {
					b.Fatal(err)
				}
				stats.Merge(s)
			}
			b.ReportMetric(stats.PruneRate(), "prunerate")
			b.ReportMetric(stats.CellsGain(), "cellsgain")
			b.ReportMetric(stats.AbandonRate(), "abandonrate")
		})
	}
}

// BenchmarkIndexTopKBatch measures the whole-dataset batch entry point:
// every indexed series queried against the collection in one call.
func BenchmarkIndexTopKBatch(b *testing.B) {
	d, err := datasets.ByName("Trace", datasets.Config{Seed: benchSeed, SeriesPerClass: 10})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := NewIndex(d.Series, Options{Strategy: FixedCoreFixedWidth, WidthFrac: 0.10})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var stats SearchStats
	for i := 0; i < b.N; i++ {
		_, s, err := ix.SearchBatch(context.Background(), d.Series, WithK(5))
		if err != nil {
			b.Fatal(err)
		}
		stats = s
	}
	b.ReportMetric(stats.PruneRate(), "prunerate")
	b.ReportMetric(stats.CellsGain(), "cellsgain")
	b.ReportMetric(stats.AbandonRate(), "abandonrate")
}

// BenchmarkIndexClassifyAll measures leave-one-out kNN classification of
// the whole collection through the cascaded batch path.
func BenchmarkIndexClassifyAll(b *testing.B) {
	d, err := datasets.ByName("Gun", datasets.Config{Seed: benchSeed, SeriesPerClass: 10})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := NewIndex(d.Series, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	correct := 0
	for i := 0; i < b.N; i++ {
		labels, _, err := ix.LabelsAll(context.Background(), WithK(3))
		if err != nil {
			b.Fatal(err)
		}
		correct = 0
		for j, ls := range labels {
			for _, l := range ls {
				if l == d.Series[j].Label {
					correct++
					break
				}
			}
		}
	}
	b.ReportMetric(float64(correct)/float64(d.Len()), "accuracy")
}

// BenchmarkBoundedTopK measures exact windowed-DTW retrieval with the
// LB_Kim/LB_Keogh cascade (Keogh's exact-indexing pipeline, paper ref [7]).
func BenchmarkBoundedTopK(b *testing.B) {
	d, err := datasets.ByName("Trace", datasets.Config{Seed: benchSeed, SeriesPerClass: 10})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := NewWindowedIndex(d.Series, 15)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var stats SearchStats
	for i := 0; i < b.N; i++ {
		_, s, err := ix.Search(context.Background(), d.Series[i%d.Len()], WithK(5))
		if err != nil {
			b.Fatal(err)
		}
		stats = s
	}
	b.ReportMetric(stats.PruneRate(), "prunerate")
	b.ReportMetric(stats.AbandonRate(), "abandonrate")
}

// BenchmarkClusteringKMedoids measures k-medoids over sDTW distances on
// the Gun workload.
func BenchmarkClusteringKMedoids(b *testing.B) {
	d, err := datasets.ByName("Gun", datasets.Config{Seed: benchSeed, SeriesPerClass: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	purity := 0.0
	for i := 0; i < b.N; i++ {
		c, err := Cluster(d.Series, 2, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		p, err := ClusterPurity(c, d.Series)
		if err != nil {
			b.Fatal(err)
		}
		purity = p
	}
	b.ReportMetric(purity, "purity")
}

// BenchmarkAblationNeighborRadius varies the ac2 width-averaging radius,
// the design choice behind the paper's (ac2,aw) variant.
func BenchmarkAblationNeighborRadius(b *testing.B) {
	x, y := benchPair(b, "Trace")
	full, err := dtw.Distance(x.Values, y.Values, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Band.Strategy = band.AdaptiveCoreAdaptiveWidthAvg
			opts.Band.NeighborRadius = r
			engine := core.NewEngine(opts)
			if _, err := engine.Warm([]Series{x, y}); err != nil {
				b.Fatal(err)
			}
			var res core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = engine.Distance(x, y)
				if err != nil {
					b.Fatal(err)
				}
			}
			if full > 0 {
				b.ReportMetric((res.Distance-full)/full, "disterr")
			}
			b.ReportMetric(res.CellsGain(), "cellsgain")
		})
	}
}

// BenchmarkAblationSymmetricBand measures the cost of the §3.3.3
// symmetric band union against the default asymmetric band.
func BenchmarkAblationSymmetricBand(b *testing.B) {
	for _, sym := range []bool{false, true} {
		b.Run(fmt.Sprintf("symmetric=%v", sym), func(b *testing.B) {
			x, y := benchPair(b, "Trace")
			opts := core.DefaultOptions()
			opts.Band.Symmetric = sym
			engine := core.NewEngine(opts)
			if _, err := engine.Warm([]Series{x, y}); err != nil {
				b.Fatal(err)
			}
			var res core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = engine.Distance(x, y)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CellsGain(), "cellsgain")
		})
	}
}

// BenchmarkAblationFeatureCap varies the per-series feature cap, the
// knob that keeps matching cheap relative to the grid fill (§3.4).
func BenchmarkAblationFeatureCap(b *testing.B) {
	for _, cap := range []int{16, 48, 128} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			x, y := benchPair(b, "50Words")
			opts := core.DefaultOptions()
			opts.Features.MaxFeatures = cap
			engine := core.NewEngine(opts)
			if _, err := engine.Warm([]Series{x, y}); err != nil {
				b.Fatal(err)
			}
			var res core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = engine.Distance(x, y)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Pairs), "pairs")
			b.ReportMetric(res.CellsGain(), "cellsgain")
		})
	}
}

// BenchmarkAblationEpsilon varies the relaxed-extremum slack ε, the
// detector's sensitivity knob (§3.1.2; see the calibration note in
// internal/sift).
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, eps := range []float64{0.0096, 0.10, 0.30} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			x, _ := benchPair(b, "Gun")
			cfg := sift.DefaultConfig()
			cfg.Epsilon = eps
			cfg.MaxFeatures = -1
			count := 0
			for i := 0; i < b.N; i++ {
				feats, err := sift.Extract(x.Values, cfg)
				if err != nil {
					b.Fatal(err)
				}
				count = len(feats)
			}
			b.ReportMetric(float64(count), "features")
		})
	}
}
