// Package shard implements the N-way sharded retrieval layer behind the
// sdtwd search service: series are hash-routed by ID across independent
// retrieve.Core shards, searches fan out across the shards concurrently
// and merge their top-k through one shared best-so-far threshold (so
// pruning compounds across shards exactly as it does across the workers
// inside one search), and each shard serves reads from copy-on-write
// snapshots — an Add or Remove builds a new core beside the old one and
// publishes it with a single atomic store, so searches never block
// behind mutations.
//
// Sharded search is exact: for any shard count, the merged top-k is
// bit-identical (IDs and distances) to a single-core search over the
// same collection. Per-shard results are merged by (distance, insertion
// sequence); within a shard, local positions preserve insertion order,
// so the shard-local tie-breaks agree with the global ones.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdtw/internal/lower"
	"sdtw/internal/retrieve"
	"sdtw/internal/series"
)

// ErrNoID reports a series without an ID reaching the sharded layer:
// hash routing (and Remove) key on non-empty IDs.
var ErrNoID = errors.New("sharded collections need non-empty series IDs")

// Config assembles a Cluster.
type Config struct {
	// Shards is the shard count (>= 1).
	Shards int
	// NewBackend builds the distance backend for one shard. Each shard
	// owns its backend so per-series caches (feature extraction) never
	// contend across shards.
	NewBackend func(shard int) (retrieve.Backend, error)
	// Workers is the total search worker budget, divided across the
	// non-empty shards per search (<= 0 is clamped to the shard count).
	Workers int
	// Abandon enables threshold-aware early abandonment inside the DP
	// when the backend admits it.
	Abandon bool
	// SketchWidth enables the stage-0 LB_PAA filter at that width on
	// every shard core (0 disables it).
	SketchWidth int
}

// Hit is one merged retrieval result. Sharding renumbers positions per
// shard, so results are identified by series ID rather than position.
type Hit struct {
	// ID is the matched series' ID.
	ID string
	// Label is the matched series' class label.
	Label int
	// Distance is the backend distance to the query.
	Distance float64
}

// snapshot is one shard's immutable published state. Readers load it
// atomically and use it for a whole search; writers clone it, mutate the
// clone, and publish the result.
type snapshot struct {
	// core is nil while the shard holds no series.
	core *retrieve.Core
	// seqs[i] is the cluster-wide insertion sequence of the series at
	// local position i — the global tie-break order merged results use.
	seqs []uint64
}

// slot is one shard: the published snapshot plus the writer lock that
// serialises its copy-on-write mutations.
type slot struct {
	mu   sync.Mutex
	snap atomic.Pointer[snapshot]
}

// Cluster is the sharded collection. It is safe for concurrent use:
// searches are lock-free against mutations (they run on published
// snapshots), mutations serialise per shard.
type Cluster struct {
	backends []retrieve.Backend
	workers  int
	abandon  bool
	sketchW  int
	slots    []slot
	nextSeq  atomic.Uint64
}

// Route maps a series ID to its shard: FNV-1a over the ID, modulo the
// shard count. Exported so tools (and tests) can predict placement.
func Route(id string, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(shards))
}

// New builds a cluster over data (which may be empty — a serving cluster
// typically starts empty and fills through Add). Every series needs a
// non-empty, unique ID. The initial insertion sequence is the position
// in data, so a search over the freshly built cluster breaks distance
// ties exactly like an unsharded index over the same slice.
func New(cfg Config, data []series.Series) (*Cluster, error) {
	parts, seqs, err := partition(cfg, data)
	if err != nil {
		return nil, err
	}
	return assemble(cfg, parts, nil, seqs, uint64(len(data)))
}

// Restore rebuilds a cluster from persisted per-shard state: the series,
// their LB_Keogh envelopes (trusted, not recomputed), the insertion
// sequences, and the next sequence number. parts, envs and seqs are
// indexed by shard and must all have cfg.Shards entries; empty shards
// are empty slices.
func Restore(cfg Config, parts [][]series.Series, envs [][]lower.Envelope, seqs [][]uint64, nextSeq uint64) (*Cluster, error) {
	if len(parts) != cfg.Shards || len(envs) != cfg.Shards || len(seqs) != cfg.Shards {
		return nil, fmt.Errorf("snapshot has %d/%d/%d shard entries, want %d: %w",
			len(parts), len(envs), len(seqs), cfg.Shards, retrieve.ErrConfigMismatch)
	}
	for i, part := range parts {
		if len(seqs[i]) != len(part) {
			return nil, fmt.Errorf("shard %d has %d sequence numbers for %d series: %w",
				i, len(seqs[i]), len(part), retrieve.ErrConfigMismatch)
		}
	}
	return assemble(cfg, parts, envs, seqs, nextSeq)
}

// partition validates data and splits it (order-preserving) across the
// shards, pairing every series with its global insertion sequence.
func partition(cfg Config, data []series.Series) ([][]series.Series, [][]uint64, error) {
	parts := make([][]series.Series, cfg.Shards)
	seqs := make([][]uint64, cfg.Shards)
	seen := make(map[string]bool, len(data))
	for i, s := range data {
		if s.ID == "" {
			return nil, nil, fmt.Errorf("series %d: %w", i, ErrNoID)
		}
		if seen[s.ID] {
			return nil, nil, fmt.Errorf("%w: %q", retrieve.ErrDuplicateID, s.ID)
		}
		seen[s.ID] = true
		sh := Route(s.ID, cfg.Shards)
		parts[sh] = append(parts[sh], s)
		seqs[sh] = append(seqs[sh], uint64(i))
	}
	return parts, seqs, nil
}

func assemble(cfg Config, parts [][]series.Series, envs [][]lower.Envelope, seqs [][]uint64, nextSeq uint64) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster needs at least one shard, got %d", cfg.Shards)
	}
	if cfg.NewBackend == nil {
		return nil, fmt.Errorf("cluster needs a backend constructor")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = cfg.Shards
	}
	c := &Cluster{
		backends: make([]retrieve.Backend, cfg.Shards),
		workers:  workers,
		abandon:  cfg.Abandon,
		sketchW:  cfg.SketchWidth,
		slots:    make([]slot, cfg.Shards),
	}
	c.nextSeq.Store(nextSeq)
	for i := range c.slots {
		b, err := cfg.NewBackend(i)
		if err != nil {
			return nil, fmt.Errorf("shard %d backend: %w", i, err)
		}
		c.backends[i] = b
		snap := &snapshot{}
		if len(parts[i]) > 0 {
			var core *retrieve.Core
			if envs == nil {
				core, err = retrieve.New(b, parts[i], workers, cfg.Abandon)
			} else {
				core, err = retrieve.Restore(b, parts[i], envs[i], workers, cfg.Abandon)
			}
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			if c.sketchW > 0 {
				if err := core.EnableSketches(c.sketchW); err != nil {
					return nil, fmt.Errorf("shard %d: %w", i, err)
				}
			}
			snap.core = core
			snap.seqs = append([]uint64(nil), seqs[i]...)
		}
		c.slots[i].snap.Store(snap)
	}
	return c, nil
}

// RestoreCold rebuilds a cluster from per-shard store-backed cold series
// (envelopes and sketches resident, raw values lazy). parts and seqs are
// indexed by shard; empty shards are empty slices. cfg.SketchWidth must
// match the width of the stored sketches.
func RestoreCold(cfg Config, parts [][]retrieve.ColdSeries, seqs [][]uint64, nextSeq uint64) (*Cluster, error) {
	if len(parts) != cfg.Shards || len(seqs) != cfg.Shards {
		return nil, fmt.Errorf("store has %d/%d shard entries, want %d: %w",
			len(parts), len(seqs), cfg.Shards, retrieve.ErrConfigMismatch)
	}
	for i, part := range parts {
		if len(seqs[i]) != len(part) {
			return nil, fmt.Errorf("shard %d has %d sequence numbers for %d series: %w",
				i, len(seqs[i]), len(part), retrieve.ErrConfigMismatch)
		}
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster needs at least one shard, got %d", cfg.Shards)
	}
	if cfg.NewBackend == nil {
		return nil, fmt.Errorf("cluster needs a backend constructor")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = cfg.Shards
	}
	c := &Cluster{
		backends: make([]retrieve.Backend, cfg.Shards),
		workers:  workers,
		abandon:  cfg.Abandon,
		sketchW:  cfg.SketchWidth,
		slots:    make([]slot, cfg.Shards),
	}
	c.nextSeq.Store(nextSeq)
	for i := range c.slots {
		b, err := cfg.NewBackend(i)
		if err != nil {
			return nil, fmt.Errorf("shard %d backend: %w", i, err)
		}
		c.backends[i] = b
		snap := &snapshot{}
		if len(parts[i]) > 0 {
			core, err := retrieve.RestoreCold(b, parts[i], cfg.SketchWidth, workers, cfg.Abandon)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			snap.core = core
			snap.seqs = append([]uint64(nil), seqs[i]...)
		}
		c.slots[i].snap.Store(snap)
	}
	return c, nil
}

// Backend exposes shard i's distance backend (the storage layer derives
// envelope radii from it when writing through to a segment store).
func (c *Cluster) Backend(i int) retrieve.Backend { return c.backends[i] }

// SketchWidth returns the cluster's stage-0 sketch width (0 when the
// sketch filter is disabled).
func (c *Cluster) SketchWidth() int { return c.sketchW }

// Cold reports whether any shard core is store-backed (raw values on
// disk). Gob persistence refuses such clusters.
func (c *Cluster) Cold() bool {
	for i := range c.slots {
		if snap := c.slots[i].snap.Load(); snap.core != nil && snap.core.Cold() {
			return true
		}
	}
	return false
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.slots) }

// Len returns the total number of indexed series across all shards.
func (c *Cluster) Len() int {
	n := 0
	for i := range c.slots {
		if snap := c.slots[i].snap.Load(); snap.core != nil {
			n += snap.core.Len()
		}
	}
	return n
}

// Sizes returns the per-shard series counts.
func (c *Cluster) Sizes() []int {
	sizes := make([]int, len(c.slots))
	for i := range c.slots {
		if snap := c.slots[i].snap.Load(); snap.core != nil {
			sizes[i] = snap.core.Len()
		}
	}
	return sizes
}

// Add routes s to its shard and publishes a copy-on-write snapshot with
// it admitted, returning the cluster-wide insertion sequence assigned to
// the series (the storage layer keys tombstones on it). The series needs
// a non-empty ID, unique across the cluster (equal IDs route to the same
// shard, so the shard-local duplicate check is the cluster-wide one).
// Searches already running keep their pre-Add snapshot; searches
// starting after the store see s.
func (c *Cluster) Add(s series.Series) (uint64, error) {
	if s.ID == "" {
		return 0, ErrNoID
	}
	sh := Route(s.ID, len(c.slots))
	sl := &c.slots[sh]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	cur := sl.snap.Load()
	next := &snapshot{}
	if cur.core == nil {
		core, err := retrieve.New(c.backends[sh], []series.Series{s}, c.workers, c.abandon)
		if err != nil {
			return 0, err
		}
		if c.sketchW > 0 {
			if err := core.EnableSketches(c.sketchW); err != nil {
				return 0, err
			}
		}
		next.core = core
	} else {
		core, err := cur.core.CloneAdd(s)
		if err != nil {
			return 0, err
		}
		next.core = core
	}
	seq := c.nextSeq.Add(1) - 1
	next.seqs = append(append(make([]uint64, 0, len(cur.seqs)+1), cur.seqs...), seq)
	sl.snap.Store(next)
	return seq, nil
}

// Remove deletes the series with the given non-empty ID from its shard
// via a copy-on-write snapshot, returning the insertion sequence the
// series held (the storage layer keys tombstones on it). Unlike a single
// Core — which refuses to drop its last series — a shard may drain to
// empty: the cluster as a whole is allowed to be empty.
func (c *Cluster) Remove(id string) (uint64, error) {
	if id == "" {
		return 0, fmt.Errorf("Remove needs a non-empty ID: %w", ErrNoID)
	}
	sh := Route(id, len(c.slots))
	sl := &c.slots[sh]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	cur := sl.snap.Load()
	if cur.core == nil {
		return 0, fmt.Errorf("%w: %q", retrieve.ErrUnknownID, id)
	}
	if cur.core.Len() == 1 {
		only := cur.core.Series(0)
		if only.ID != id {
			return 0, fmt.Errorf("%w: %q", retrieve.ErrUnknownID, id)
		}
		c.backends[sh].Forget(only)
		seq := cur.seqs[0]
		sl.snap.Store(&snapshot{})
		return seq, nil
	}
	core, pos, err := cur.core.CloneRemove(id)
	if err != nil {
		return 0, err
	}
	seq := cur.seqs[pos]
	seqs := make([]uint64, 0, len(cur.seqs)-1)
	seqs = append(seqs, cur.seqs[:pos]...)
	seqs = append(seqs, cur.seqs[pos+1:]...)
	sl.snap.Store(&snapshot{core: core, seqs: seqs})
	return seq, nil
}

// hit is a merged result before the sequence tie-break is dropped.
type hit struct {
	Hit
	seq uint64
}

// Search fans the query out across every non-empty shard concurrently
// and merges the per-shard top-k into the cluster top-k. All shard
// searches read and tighten one shared best-so-far threshold
// (Params.Shared), so a tight k-th best found on one shard prunes
// candidates on every other — the atomic-threshold idiom of the
// in-search worker pool lifted one level up. The merge orders by
// (distance, insertion sequence), which reproduces an unsharded index's
// (distance, position) order bit-for-bit.
//
// p.Exclude is positional and therefore meaningless across shards; use
// retrieve.DefaultParams (Exclude −1) and rely on the ID-based
// self-exclusion. A cancelled ctx stops every shard search promptly.
func (c *Cluster) Search(ctx context.Context, query series.Series, p retrieve.Params) ([]Hit, retrieve.Stats, error) {
	start := time.Now()
	snaps := make([]*snapshot, 0, len(c.slots))
	for i := range c.slots {
		if snap := c.slots[i].snap.Load(); snap.core != nil {
			snaps = append(snaps, snap)
		}
	}
	var stats retrieve.Stats
	if len(snaps) == 0 {
		// An empty cluster answers with no neighbours — a serving
		// collection legitimately starts empty.
		if len(query.Values) == 0 {
			return nil, stats, fmt.Errorf("query: %w", retrieve.ErrEmptySeries)
		}
		stats.WallTime = time.Since(start)
		return nil, stats, nil
	}

	rp := p
	rp.Shared = retrieve.NewSharedThreshold(p.EffectiveThreshold())
	workers := rp.Workers
	if workers <= 0 {
		workers = c.workers
	}
	// Ceiling-divide the worker budget across shards (the batch idiom):
	// every shard keeps at least one worker, small clusters keep full
	// in-shard parallelism.
	rp.Workers = (workers + len(snaps) - 1) / len(snaps)
	if rp.Workers < 1 {
		rp.Workers = 1
	}

	type shardOut struct {
		hits []hit
		st   retrieve.Stats
		err  error
	}
	outs := make([]shardOut, len(snaps))
	var wg sync.WaitGroup
	for i, snap := range snaps {
		wg.Add(1)
		go func(i int, snap *snapshot) {
			defer wg.Done()
			nbrs, st, err := snap.core.Search(ctx, query, rp)
			out := shardOut{st: st, err: err}
			if err == nil && len(nbrs) > 0 {
				out.hits = make([]hit, len(nbrs))
				for j, nb := range nbrs {
					s := snap.core.Series(nb.Pos)
					out.hits[j] = hit{
						Hit: Hit{ID: s.ID, Label: s.Label, Distance: nb.Distance},
						seq: snap.seqs[nb.Pos],
					}
				}
			}
			outs[i] = out
		}(i, snap)
	}
	wg.Wait()

	merged := make([]hit, 0, len(snaps)*max(1, rp.K))
	for _, out := range outs {
		stats.Merge(out.st)
		if out.err != nil {
			stats.WallTime = time.Since(start)
			return nil, stats, out.err
		}
		merged = append(merged, out.hits...)
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Distance != merged[b].Distance {
			return merged[a].Distance < merged[b].Distance
		}
		return merged[a].seq < merged[b].seq
	})
	if rp.K > 0 && len(merged) > rp.K {
		merged = merged[:rp.K]
	}
	hits := make([]Hit, len(merged))
	for i, h := range merged {
		hits[i] = h.Hit
	}
	stats.WallTime = time.Since(start)
	return hits, stats, nil
}

// ShardSnapshot captures shard i's published state for persistence: the
// series, their envelopes, and their insertion sequences (nil slices for
// an empty shard). A non-nil capture runs while the shard core's read
// lock is held — the same consistency seam retrieve.Core.Snapshot gives
// single-core persistence.
func (c *Cluster) ShardSnapshot(i int, capture func()) ([]series.Series, []lower.Envelope, []uint64) {
	snap := c.slots[i].snap.Load()
	if snap.core == nil {
		if capture != nil {
			capture()
		}
		return nil, nil, nil
	}
	data, envs := snap.core.Snapshot(capture)
	seqs := append([]uint64(nil), snap.seqs...)
	return data, envs, seqs
}

// NextSeq exposes the cluster's next insertion sequence for persistence.
func (c *Cluster) NextSeq() uint64 { return c.nextSeq.Load() }

// Fingerprint returns shard 0's backend fingerprint; all shards share
// one configuration, so one fingerprint describes the cluster.
func (c *Cluster) Fingerprint() string { return c.backends[0].Fingerprint() }
