package sketch

import (
	"math"
	"math/rand"
	"testing"

	"sdtw/internal/dtw"
	"sdtw/internal/lower"
)

func randomValues(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 3
	}
	return v
}

// lbpaa computes the bound through the public pieces for a query/series
// pair: envelope at radius r, sketch at width w, query means at width w.
func lbpaa(t *testing.T, q, c []float64, r, w int) (float64, float64) {
	t.Helper()
	env := lower.NewEnvelope(c, r)
	sk, err := FromEnvelope(env, w)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := Means(q, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	keogh, err := lower.Keogh(q, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	return LBPAA(qm, sk, len(c)), keogh
}

// TestLBPAAAdmissible is the property test for the stage-0 bound chain:
// LB_PAA <= LB_Keogh <= banded DTW, across lengths, radii and sketch
// widths. (lower's own suite pins LB_Keogh <= DTW for every band
// strategy; the end-to-end strategy coverage of the full cascade lives
// in the public store/flat equivalence tests.)
func TestLBPAAAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		n := rng.Intn(150) + 1
		r := rng.Intn(12)
		w := []int{1, 4, 16, 32}[rng.Intn(4)]
		q := randomValues(rng, n)
		c := randomValues(rng, n)
		paa, keogh := lbpaa(t, q, c, r, w)
		if err := lower.ValidateBound(paa, keogh); err != nil {
			t.Fatalf("LB_PAA exceeds LB_Keogh (n=%d r=%d w=%d): %v", n, r, w, err)
		}
		band := dtw.SakoeChibaRadius(n, n, r)
		exact, _, err := dtw.Banded(q, c, band, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := lower.ValidateBound(paa, exact); err != nil {
			t.Fatalf("LB_PAA not admissible (n=%d r=%d w=%d): %v", n, r, w, err)
		}
	}
}

// TestLBPAAWideSketchMatchesKeogh pins the degenerate geometry: with
// width >= series length every non-empty segment is a single position,
// so the sketch is the envelope and LB_PAA must equal LB_Keogh bit for
// bit (each term is 1·d² in the same order).
func TestLBPAAWideSketchMatchesKeogh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 16, 31} {
		for _, w := range []int{n, n + 1, 2 * n, 64} {
			q := randomValues(rng, n)
			c := randomValues(rng, n)
			paa, keogh := lbpaa(t, q, c, 3, w)
			if math.Float64bits(paa) != math.Float64bits(keogh) {
				t.Fatalf("n=%d w=%d: LB_PAA %v != LB_Keogh %v", n, w, paa, keogh)
			}
		}
	}
}

// TestLBPAAPrunesSomething is the sanity check that the bound is not
// vacuously zero: distant series at a coarse width must produce a
// positive bound, or stage 0 would never prune anything.
func TestLBPAAPrunesSomething(t *testing.T) {
	n := 128
	q := make([]float64, n)
	c := make([]float64, n)
	for i := range c {
		c[i] = 10 + math.Sin(float64(i)/7)
	}
	paa, _ := lbpaa(t, q, c, 5, 16)
	if paa <= 0 {
		t.Fatalf("LB_PAA = %v for well-separated series, want > 0", paa)
	}
}

func TestFromEnvelopeValidates(t *testing.T) {
	if _, err := FromEnvelope(lower.NewEnvelope([]float64{1, 2}, 1), 0); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := FromEnvelope(lower.Envelope{}, 8); err == nil {
		t.Fatal("empty envelope accepted")
	}
	if _, err := Means(nil, 8, nil); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := Means([]float64{1}, 0, nil); err == nil {
		t.Fatal("width 0 accepted")
	}
}

// TestMeansReusesScratch pins the zero-allocation contract of the
// query-side summary when the caller supplies scratch with capacity.
func TestMeansReusesScratch(t *testing.T) {
	q := make([]float64, 200)
	for i := range q {
		q[i] = float64(i % 17)
	}
	scratch := make([]float64, 32)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := Means(q, 32, scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = out
	})
	if allocs != 0 {
		t.Fatalf("Means with scratch allocates %v times per run, want 0", allocs)
	}
}

// TestLBPAAZeroAlloc pins the hot per-candidate bound at zero
// allocations, matching the lower.Kim pattern.
func TestLBPAAZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomValues(rng, 128)
	q := randomValues(rng, 128)
	sk, err := FromEnvelope(lower.NewEnvelope(c, 4), 16)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := Means(q, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += LBPAA(qm, sk, len(c))
	})
	if allocs != 0 {
		t.Fatalf("LBPAA allocates %v times per run, want 0", allocs)
	}
	_ = sink
}

// FuzzLBPAAAdmissible fuzzes the stage-0 contract differentially, like
// the existing bound fuzzers: LB_PAA must never exceed LB_Keogh at the
// same radius, nor the Sakoe-Chiba DTW distance the envelope assumes.
func FuzzLBPAAAdmissible(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(2), uint8(16))
	f.Add(int64(9), uint8(1), uint8(0), uint8(1))
	f.Add(int64(23), uint8(60), uint8(7), uint8(32))
	f.Fuzz(func(t *testing.T, seed int64, n8, r8, w8 uint8) {
		n := int(n8)%96 + 1
		r := int(r8) % 10
		w := int(w8)%48 + 1
		rng := rand.New(rand.NewSource(seed))
		q := randomValues(rng, n)
		c := randomValues(rng, n)
		paa, keogh := lbpaa(t, q, c, r, w)
		if err := lower.ValidateBound(paa, keogh); err != nil {
			t.Errorf("LB_PAA exceeds LB_Keogh (n=%d r=%d w=%d): %v", n, r, w, err)
		}
		band := dtw.SakoeChibaRadius(n, n, r)
		exact, _, err := dtw.Banded(q, c, band, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := lower.ValidateBound(paa, exact); err != nil {
			t.Errorf("LB_PAA not admissible (n=%d r=%d w=%d): %v", n, r, w, err)
		}
	})
}
