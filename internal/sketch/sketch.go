// Package sketch implements the fixed-width PAA stage-0 filter of the
// retrieval cascade: every indexed series is summarised by a sketch of W
// coefficients — the per-segment max of its LB_Keogh upper envelope and
// min of its lower envelope — and a query is summarised once by its W
// per-segment means. The resulting LB_PAA bound (the UCR-suite idiom of
// "Searching and mining trillions of time series subsequences under
// dynamic time warping", Rakthanmanon et al., KDD 2012) costs O(W) per
// candidate instead of O(n), and touches neither the candidate's raw
// values nor its full envelope — which is what lets a segment-store
// index keep raw values cold on disk until a candidate survives stage 0.
//
// Admissibility: segment k covers positions [k·n/W, (k+1)·n/W). Within
// it, [Lower[i], Upper[i]] ⊆ [L̂_k, Û_k] where Û_k = max Upper[i] and
// L̂_k = min Lower[i], so each point's deviation from the widened flat
// interval never exceeds its LB_Keogh deviation; and the squared
// distance to an interval is convex in the point, so by Jensen's
// inequality the segment's summed deviation is at least len_k times the
// deviation of the segment mean. Hence
//
//	LB_PAA(q̄, sketch) <= LB_Keogh(q, env) <= DTW(q, c)
//
// for every band in this repository (the same chain LB_Keogh itself
// rides; see package lower). The bound is only meaningful for the
// default squared point cost, exactly like LB_Kim and LB_Keogh — the
// cascade already disables all three for custom costs.
package sketch

import (
	"fmt"

	"sdtw/internal/lower"
)

// Sketch is the W-coefficient stage-0 summary of one indexed series:
// per-segment extrema of its LB_Keogh envelope. Upper and Lower have
// equal length (the sketch width). A sketch is built once per series
// (from the envelope the index computes anyway) and is immutable.
type Sketch struct {
	Upper, Lower []float64
}

// Width returns the coefficient count.
func (s Sketch) Width() int { return len(s.Upper) }

// FromEnvelope summarises an envelope into a width-w sketch: segment k
// of a length-n series covers positions [k·n/w, (k+1)·n/w), and the
// sketch keeps the max upper / min lower envelope value over each
// segment. Segments left empty when n < w stay 0 — their length is
// zero, so LBPAA skips them and they never contribute to the bound.
// One allocation backs both coefficient slices.
func FromEnvelope(env lower.Envelope, w int) (Sketch, error) {
	n := len(env.Upper)
	if w < 1 {
		return Sketch{}, fmt.Errorf("sketch: width must be >= 1, got %d", w)
	}
	if n == 0 {
		return Sketch{}, fmt.Errorf("sketch: empty envelope")
	}
	out := make([]float64, 2*w)
	sk := Sketch{Upper: out[:w:w], Lower: out[w:]}
	for k := 0; k < w; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		if hi <= lo {
			continue // empty segment (n < w); LBPAA skips it too
		}
		u, l := env.Upper[lo], env.Lower[lo]
		for i := lo + 1; i < hi; i++ {
			if env.Upper[i] > u {
				u = env.Upper[i]
			}
			if env.Lower[i] < l {
				l = env.Lower[i]
			}
		}
		sk.Upper[k], sk.Lower[k] = u, l
	}
	return sk, nil
}

// Means computes the query-side PAA summary: the mean of q over each of
// the w segments of its length. out is reused when it has capacity w
// (append-style), so a search can hold one scratch slice and pay zero
// allocations per query after the first. Empty segments (len(q) < w)
// are left 0; LBPAA never reads them.
func Means(q []float64, w int, out []float64) ([]float64, error) {
	n := len(q)
	if w < 1 {
		return nil, fmt.Errorf("sketch: width must be >= 1, got %d", w)
	}
	if n == 0 {
		return nil, fmt.Errorf("sketch: empty query")
	}
	if cap(out) < w {
		out = make([]float64, w)
	}
	out = out[:w]
	for k := 0; k < w; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		if hi <= lo {
			out[k] = 0
			continue
		}
		sum := 0.0
		for _, v := range q[lo:hi] {
			sum += v
		}
		out[k] = sum / float64(hi-lo)
	}
	return out, nil
}

// LBPAA returns the stage-0 lower bound between a query summarised by
// qmean (its Means at the sketch's width) and a candidate of length n
// summarised by sk: for each segment, the squared deviation of the
// query's segment mean from the sketch's flat interval, scaled by the
// segment length. The caller guarantees len(qmean) == sk.Width() and
// that the query length equals n (the same equal-length contract
// LB_Keogh has; unequal lengths skip stage 0 exactly as they skip the
// Keogh stage). Squared deviations round through an explicit float64
// conversion like the Keogh kernel's, so fused multiply-add cannot
// inflate the bound past its generic evaluation.
//
//sdtw:hotpath
func LBPAA(qmean []float64, sk Sketch, n int) float64 {
	w := len(sk.Upper)
	up := sk.Upper[:w:w]
	lo := sk.Lower[:w:w]
	qm := qmean[:w:w]
	sum := 0.0
	for k := 0; k < w; k++ {
		segLo, segHi := k*n/w, (k+1)*n/w
		if segHi <= segLo {
			continue
		}
		m := qm[k]
		var d float64
		if u := up[k]; m > u {
			d = m - u
		} else if l := lo[k]; m < l {
			d = m - l
		} else {
			continue
		}
		sum += float64(segHi-segLo) * float64(d*d)
	}
	return sum
}
