// Package retrieve implements the shared lower-bound-cascaded k-NN
// retrieval core behind the public sdtw.Index: one cascade — LB_Kim
// candidate ordering, LB_Keogh envelope pruning against a shared
// best-so-far threshold, and threshold-aware early-abandoning DTW fanned
// out across a bounded worker pool — parameterised by a small Backend
// interface supplying the actual distance family (the sDTW banded engine
// or the Sakoe-Chiba windowed exact-DTW pipeline).
//
// The cascade is exact for any backend whose Cascade method reports the
// bounds admissible: LB_Kim and LB_Keogh (at the backend's envelope
// radius) never exceed the backend distance, and an abandoned
// computation's partial cost is itself a lower bound above the threshold,
// so a search returns precisely the neighbours a brute-force scan would.
//
// A Core is safe for concurrent use; searches run under a read lock and
// the Add/Remove mutators take the write lock, so a mutating index keeps
// serving queries between mutations.
package retrieve

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdtw/internal/lower"
	"sdtw/internal/series"
)

// Neighbor is one retrieval result.
type Neighbor struct {
	// Pos is the position of the neighbour in the indexed collection (as
	// of the search; Add/Remove renumber positions).
	Pos int
	// Distance is the backend distance to the query.
	Distance float64
}

// Params carries the resolved knobs of one search. The public layer
// translates its functional options into this struct.
//
// The zero value is usable but two fields have surprising zeroes —
// Exclude: 0 names collection position 0, and Threshold: 0 is a real
// range limit only when ThresholdSet says so. Start from DefaultParams
// instead of a struct literal.
type Params struct {
	// K is the neighbour count; K <= 0 means every candidate (used by
	// threshold-only range searches). K larger than the candidate count
	// is truncated.
	K int
	// Workers overrides the core's worker-pool width when positive.
	Workers int
	// Exclude drops the candidate at that collection position (for
	// leave-one-out workloads whose series may lack IDs); -1 excludes
	// none. Candidates sharing the query's non-empty ID are always
	// excluded.
	Exclude int
	// Threshold, when finite, restricts results to neighbours at distance
	// <= Threshold and seeds the pruning threshold, so hopeless
	// candidates are discarded even before the k-heap fills.
	//
	// Threshold == 0 is honoured as a real limit only when ThresholdSet
	// is true; otherwise it means "no limit", so a zero-value Params does
	// not silently return empty results.
	Threshold float64
	// ThresholdSet marks Threshold as deliberately chosen, letting an
	// explicit 0 (exact-match range search) survive the zero-value guard.
	ThresholdSet bool
	// NoAbandon disables threshold-aware early abandonment inside the
	// dynamic program for this search (A/B measurement; never changes
	// results).
	NoAbandon bool
	// Shared, when non-nil, replaces the search's private best-so-far
	// threshold, so pruning compounds across concurrent searches over
	// disjoint collection shards: each shard's k-th best tightens the
	// others' budgets exactly as workers tighten each other's inside one
	// search. Admissible because any k fully-evaluated distances bound
	// the global k-th best from above.
	Shared *SharedThreshold
}

// DefaultParams returns the safe starting point for a Params value:
// single nearest neighbour, no positional exclusion (Exclude −1), no
// range limit (Threshold +Inf). The public option layer and the serving
// layer both start here, so the zero-value traps (Exclude: 0 excluding
// position 0, Threshold: 0 emptying results) cannot arise by omission.
func DefaultParams() Params {
	return Params{K: 1, Exclude: -1, Threshold: math.Inf(1)}
}

// EffectiveThreshold resolves the range limit a search runs under: the
// Threshold when deliberately set (ThresholdSet) or — for callers that
// predate ThresholdSet — any non-zero, non-NaN value; +Inf otherwise.
func (p Params) EffectiveThreshold() float64 {
	if p.ThresholdSet {
		if math.IsNaN(p.Threshold) {
			return math.Inf(1)
		}
		return p.Threshold
	}
	if p.Threshold != 0 && !math.IsNaN(p.Threshold) {
		return p.Threshold
	}
	return math.Inf(1)
}

// Core is the shared cascade over one collection and one backend.
type Core struct {
	backend Backend
	workers int

	// cascade reports whether lower-bound pruning is active; abandon
	// whether the DP early-abandons against the best-so-far threshold.
	// Both are off when the backend's cost assumptions don't hold.
	cascade bool
	abandon atomic.Bool

	mu   sync.RWMutex
	data []series.Series
	// envelopes[i] is the LB_Keogh envelope of data[i] at the backend's
	// admissible radius; nil when the cascade is disabled.
	envelopes []lower.Envelope
	// ids maps non-empty series IDs to their position, for duplicate
	// detection and Remove.
	ids map[string]int
}

// New builds a core over data, validating every series and warming the
// backend's caches. workers bounds the query worker pool (<= 0 means the
// caller should have defaulted it; it is clamped to 1). abandon enables
// early abandonment when the backend admits it.
func New(backend Backend, data []series.Series, workers int, abandon bool) (*Core, error) {
	return build(backend, data, nil, workers, abandon)
}

// Restore is New for persisted indexes: envelopes are trusted from the
// snapshot instead of recomputed. len(envelopes) must match len(data)
// when the backend's cascade is active.
func Restore(backend Backend, data []series.Series, envelopes []lower.Envelope, workers int, abandon bool) (*Core, error) {
	if backend.Cascade() && len(envelopes) != len(data) {
		return nil, fmt.Errorf("snapshot has %d envelopes for %d series: %w", len(envelopes), len(data), ErrConfigMismatch)
	}
	return build(backend, data, envelopes, workers, abandon)
}

func build(backend Backend, data []series.Series, envelopes []lower.Envelope, workers int, abandon bool) (*Core, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("cannot index: %w", ErrEmptyCollection)
	}
	// Validate the whole collection before paying any one-time costs, so
	// structural errors (emptiness, duplicate IDs) surface first.
	seen := make(map[string]bool, len(data))
	for i, s := range data {
		if len(s.Values) == 0 {
			return nil, fmt.Errorf("series %d (%q): %w", i, s.ID, ErrEmptySeries)
		}
		if s.ID != "" {
			if seen[s.ID] {
				return nil, fmt.Errorf("%w: %q", ErrDuplicateID, s.ID)
			}
			seen[s.ID] = true
		}
	}
	if workers <= 0 {
		workers = 1
	}
	c := &Core{
		backend: backend,
		workers: workers,
		cascade: backend.Cascade(),
		data:    make([]series.Series, 0, len(data)),
		ids:     make(map[string]int, len(data)),
	}
	c.abandon.Store(abandon && backend.Abandonable())
	if c.cascade {
		c.envelopes = make([]lower.Envelope, 0, len(data))
	}
	for i, s := range data {
		var env *lower.Envelope
		if envelopes != nil {
			env = &envelopes[i]
		}
		if err := c.admitLocked(s, env, false); err != nil {
			return nil, fmt.Errorf("series %d: %w", i, err)
		}
	}
	return c, nil
}

// admitLocked validates s, warms the backend, and appends it with its
// envelope. env non-nil short-circuits envelope computation (persistence
// restore path). fresh drops any backend cache state already held under
// the series' ID before warming: construction starts from a clean (or
// snapshot-restored, trusted) backend, but by Add time a search query
// sharing the ID may have planted its own features in the read-through
// cache, and admitting through that stale entry would permanently serve
// another series' features. Callers hold the write lock (or are
// constructing).
func (c *Core) admitLocked(s series.Series, env *lower.Envelope, fresh bool) error {
	if len(s.Values) == 0 {
		return fmt.Errorf("series %q: %w", s.ID, ErrEmptySeries)
	}
	if s.ID != "" {
		if _, dup := c.ids[s.ID]; dup {
			return fmt.Errorf("%w: %q", ErrDuplicateID, s.ID)
		}
	}
	if fresh {
		c.backend.Forget(s)
	}
	if err := c.backend.Admit(s); err != nil {
		return err
	}
	if s.ID != "" {
		c.ids[s.ID] = len(c.data)
	}
	c.data = append(c.data, s)
	if c.cascade {
		if env != nil {
			c.envelopes = append(c.envelopes, *env)
		} else {
			c.envelopes = append(c.envelopes, lower.NewEnvelope(s.Values, c.backend.EnvelopeRadius(len(s.Values))))
		}
	}
	return nil
}

// Add appends a series to the collection: backend caches are warmed and
// the LB_Keogh envelope computed incrementally, under the write lock, so
// concurrent searches see either the old or the new collection.
func (c *Core) Add(s series.Series) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitLocked(s, nil, true)
}

// Remove deletes the series with the given non-empty ID, dropping its
// envelope and any backend cache entries. Later series shift down one
// position. Removing the last series fails: an index is never empty.
func (c *Core) Remove(id string) error {
	if id == "" {
		return fmt.Errorf("Remove needs a non-empty ID")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pos, ok := c.ids[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownID, id)
	}
	if len(c.data) == 1 {
		return fmt.Errorf("cannot remove the last series %q: %w", id, ErrEmptyCollection)
	}
	c.backend.Forget(c.data[pos])
	c.data = append(c.data[:pos], c.data[pos+1:]...)
	if c.cascade {
		c.envelopes = append(c.envelopes[:pos], c.envelopes[pos+1:]...)
	}
	delete(c.ids, id)
	for sid, p := range c.ids {
		if p > pos {
			c.ids[sid] = p - 1
		}
	}
	return nil
}

// copyLocked returns a new Core over the same backend with the
// collection state duplicated. Slices are copied at exact length so a
// subsequent append reallocates instead of scribbling on the receiver's
// backing arrays. Callers hold (at least) the read lock.
func (c *Core) copyLocked() *Core {
	nc := &Core{
		backend: c.backend,
		workers: c.workers,
		cascade: c.cascade,
		data:    make([]series.Series, len(c.data)),
		ids:     make(map[string]int, len(c.ids)+1),
	}
	nc.abandon.Store(c.abandon.Load())
	copy(nc.data, c.data)
	if c.cascade {
		nc.envelopes = make([]lower.Envelope, len(c.envelopes))
		copy(nc.envelopes, c.envelopes)
	}
	for id, pos := range c.ids {
		nc.ids[id] = pos
	}
	return nc
}

// CloneAdd returns a copy of the core with s admitted; the receiver is
// unchanged and keeps serving. This is the copy-on-write seam the
// sharded serving layer builds its snapshots from: readers holding the
// old core never contend with the write, they simply keep seeing the old
// collection. The backend is shared, so its per-series caches carry
// over; the new series' one-time costs (feature extraction, envelope)
// are paid here.
func (c *Core) CloneAdd(s series.Series) (*Core, error) {
	c.mu.RLock()
	nc := c.copyLocked()
	c.mu.RUnlock()
	// nc is unpublished: no lock needed, but admitLocked's contract holds
	// (no concurrent access).
	if err := nc.admitLocked(s, nil, true); err != nil {
		return nil, err
	}
	return nc, nil
}

// CloneRemove returns a copy of the core with the series of the given
// non-empty ID removed, along with the position it occupied (so callers
// maintaining position-parallel state can renumber the same way). The
// receiver is unchanged; like Remove, removing the last series fails.
// The shared backend forgets the series' cached state — in-flight
// searches on the old core may re-derive it on demand, which costs work,
// never correctness.
func (c *Core) CloneRemove(id string) (*Core, int, error) {
	if id == "" {
		return nil, -1, fmt.Errorf("Remove needs a non-empty ID")
	}
	c.mu.RLock()
	pos, ok := c.ids[id]
	if !ok {
		c.mu.RUnlock()
		return nil, -1, fmt.Errorf("%w: %q", ErrUnknownID, id)
	}
	if len(c.data) == 1 {
		c.mu.RUnlock()
		return nil, -1, fmt.Errorf("cannot remove the last series %q: %w", id, ErrEmptyCollection)
	}
	nc := c.copyLocked()
	c.mu.RUnlock()
	nc.backend.Forget(nc.data[pos])
	nc.data = append(nc.data[:pos], nc.data[pos+1:]...)
	if nc.cascade {
		nc.envelopes = append(nc.envelopes[:pos], nc.envelopes[pos+1:]...)
	}
	delete(nc.ids, id)
	for sid, p := range nc.ids {
		if p > pos {
			nc.ids[sid] = p - 1
		}
	}
	return nc, pos, nil
}

// Len returns the number of indexed series.
func (c *Core) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.data)
}

// Series returns the indexed series at position i.
func (c *Core) Series(i int) series.Series {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.data[i]
}

// Fingerprint exposes the backend's configuration fingerprint for
// persistence.
func (c *Core) Fingerprint() string { return c.backend.Fingerprint() }

// Snapshot returns copies of the collection and envelope slices for
// persistence. The Series values and envelope arrays are shared (they are
// immutable once indexed). A non-nil capture runs while the read lock is
// held, so callers can snapshot backend-adjacent state (the engine's
// feature cache) consistent with the collection — no Add or Remove can
// interleave between the two captures.
func (c *Core) Snapshot(capture func()) ([]series.Series, []lower.Envelope) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	data := make([]series.Series, len(c.data))
	copy(data, c.data)
	envs := make([]lower.Envelope, len(c.envelopes))
	copy(envs, c.envelopes)
	if capture != nil {
		capture()
	}
	return data, envs
}

// candidate is one cascade work item: a collection position and its
// LB_Kim bound.
type candidate struct {
	pos int
	kim float64
}

// bestK is the best-so-far heap: a max-heap on (distance, position)
// holding at most k neighbours, so the root is the current k-th best and
// the pruning threshold.
type bestK []Neighbor

func (h bestK) Len() int { return len(h) }
func (h bestK) Less(a, b int) bool {
	if h[a].Distance != h[b].Distance {
		return h[a].Distance > h[b].Distance
	}
	return h[a].Pos > h[b].Pos
}
func (h bestK) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *bestK) Push(x any)   { *h = append(*h, x.(Neighbor)) }
func (h *bestK) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h bestK) worseThan(nb Neighbor) bool {
	w := h[0]
	return nb.Distance < w.Distance || (nb.Distance == w.Distance && nb.Pos < w.Pos)
}

// parallelFor fans fn out over [0, n) across at most workers goroutines,
// stopping early (best effort) once stop is set or ctx is cancelled. fn
// must be safe for concurrent calls on distinct indices. It always waits
// for in-flight calls before returning, so no goroutines outlive it.
func parallelFor(ctx context.Context, workers, n int, stop *atomic.Bool, fn func(i int)) {
	cancelled := func() bool {
		return stop.Load() || (ctx != nil && ctx.Err() != nil)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n && !cancelled(); i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cancelled() {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SharedThreshold shares a best-so-far pruning threshold across workers —
// and, through Params.Shared, across concurrent searches over disjoint
// shards of one collection. It is monotone: Tighten only ever lowers it,
// so a stale read yields a looser threshold, which costs a bound
// evaluation but never correctness.
type SharedThreshold struct{ bits atomic.Uint64 }

// NewSharedThreshold returns a threshold seeded at limit (+Inf for an
// unbounded top-k).
func NewSharedThreshold(limit float64) *SharedThreshold {
	t := &SharedThreshold{}
	t.bits.Store(math.Float64bits(limit))
	return t
}

// Load returns the current threshold.
func (t *SharedThreshold) Load() float64 { return math.Float64frombits(t.bits.Load()) }

// Tighten lowers the threshold to v if v is smaller; larger values are
// ignored, keeping the threshold monotone under concurrent updates.
func (t *SharedThreshold) Tighten(v float64) {
	nb := math.Float64bits(v)
	for {
		ob := t.bits.Load()
		// Positive float64s order like their bit patterns; both v and the
		// stored value are non-negative distances (or +Inf).
		if math.Float64frombits(ob) <= v {
			return
		}
		if t.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// kimCheckEvery is how often the sequential LB_Kim stage polls the
// context on very large collections.
const kimCheckEvery = 1024

// Search runs the cascaded top-k search. Query validation (emptiness,
// backend length constraints) happens here, uniformly for both backends;
// K is validated by the public layer, which owns the option surface.
func (c *Core) Search(ctx context.Context, query series.Series, p Params) ([]Neighbor, Stats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.search(ctx, query, p)
}

// SearchWithLabels is Search returning, alongside each neighbour, the
// class label of its series — resolved under the same read lock as the
// search itself, so concurrent Add/Remove cannot renumber positions
// between retrieval and label lookup.
func (c *Core) SearchWithLabels(ctx context.Context, query series.Series, p Params) ([]Neighbor, []int, Stats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	nbrs, stats, err := c.search(ctx, query, p)
	if err != nil {
		return nil, nil, stats, err
	}
	return nbrs, c.labelsLocked(nbrs), stats, nil
}

// SearchAllWithLabels is SearchAll with per-neighbour labels, resolved
// under the batch's read lock (see SearchWithLabels).
func (c *Core) SearchAllWithLabels(ctx context.Context, p Params) ([][]Neighbor, [][]int, Stats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	nbrs, stats, err := c.batch(ctx, c.data, p, true)
	if err != nil {
		return nil, nil, stats, err
	}
	labels := make([][]int, len(nbrs))
	for i, nb := range nbrs {
		labels[i] = c.labelsLocked(nb)
	}
	return nbrs, labels, stats, nil
}

// labelsLocked maps a neighbour list to its series' class labels. Callers
// hold (at least) the read lock.
func (c *Core) labelsLocked(nbrs []Neighbor) []int {
	labels := make([]int, len(nbrs))
	for i, nb := range nbrs {
		labels[i] = c.data[nb.Pos].Label
	}
	return labels
}

// search is Search under a held read lock (batch calls it directly so a
// whole batch sees one consistent collection).
func (c *Core) search(ctx context.Context, query series.Series, p Params) ([]Neighbor, Stats, error) {
	var stats Stats
	start := time.Now()
	if len(query.Values) == 0 {
		return nil, stats, fmt.Errorf("query: %w", ErrEmptySeries)
	}
	if err := c.backend.CheckQuery(query); err != nil {
		return nil, stats, fmt.Errorf("query: %w", err)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}
	limit := p.EffectiveThreshold()

	// Stage 0: LB_Kim for every candidate, cheapest first. O(1) per
	// candidate, so this stays sequential; it also fixes the processing
	// order that lets the k-heap threshold tighten fast.
	boundStart := time.Now()
	cands := make([]candidate, 0, len(c.data))
	for i, s := range c.data {
		if i%kimCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, stats, err
			}
		}
		// Skip self-matches when the query is an indexed series.
		if i == p.Exclude || (s.ID != "" && s.ID == query.ID) {
			continue
		}
		stats.GridCells += len(query.Values) * len(s.Values)
		cd := candidate{pos: i}
		if c.cascade {
			kim, err := lower.Kim(query.Values, s.Values, nil)
			if err != nil {
				return nil, stats, fmt.Errorf("LB_Kim to %q: %w", s.ID, err)
			}
			cd.kim = kim
		}
		cands = append(cands, cd)
	}
	stats.Candidates = len(cands)
	stats.BoundTime += time.Since(boundStart)
	if c.cascade {
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].kim != cands[b].kim {
				return cands[a].kim < cands[b].kim
			}
			return cands[a].pos < cands[b].pos
		})
	}
	k := p.K
	if k <= 0 || k > len(cands) {
		k = len(cands)
	}
	if k == 0 {
		stats.WallTime = time.Since(start)
		return nil, stats, nil
	}
	// tightenAt is the heap occupancy at which the k-th best becomes an
	// admissible pruning threshold. Private search: the (possibly
	// truncated) heap capacity — by the time the heap is that full, its
	// root bounds everything still wanted. Shared search: strictly the
	// requested K — this shard may hold fewer than K candidates, and
	// tightening the siblings' shared budget with fewer than K real
	// distances would prune their true neighbours (and K <= 0 — a range
	// search — must never tighten past the caller's limit at all).
	tightenAt := k
	if p.Shared != nil {
		tightenAt = p.K // <= 0 or > len(cands): never reached
	}

	// Stages 1-3, fanned out: LB_Kim check, LB_Keogh check, full DTW.
	// Per-candidate accounting uses atomic counters so the fast prune
	// path never touches the heap mutex. The pruning threshold is the
	// tighter of the k-th best distance and the caller's range limit.
	best := make(bestK, 0, k+1)
	var mu sync.Mutex // guards best and firstErr
	var firstErr error
	var stop atomic.Bool
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	// The pruning threshold is private to this search unless the caller
	// supplied a shared one (sharded serving), in which case every
	// concurrent shard search reads and tightens the same value.
	threshold := p.Shared
	if threshold == nil {
		threshold = NewSharedThreshold(limit)
	} else {
		threshold.Tighten(limit)
	}
	abandon := c.abandon.Load() && !p.NoAbandon
	var prunedKim, prunedKeogh, evaluated, abandoned, cells, cellsSaved atomic.Int64
	var boundNS, matchNS, dpNS atomic.Int64
	workers := c.workers
	if p.Workers > 0 {
		workers = p.Workers
	}
	parallelFor(ctx, workers, len(cands), &stop, func(n int) {
		cd := cands[n]
		s := c.data[cd.pos]
		if c.cascade {
			if cd.kim > threshold.Load() {
				prunedKim.Add(1)
				return
			}
			if env := c.envelopes[cd.pos]; len(env.Upper) == len(query.Values) {
				// The active threshold rides into the bound itself: the
				// partial Keogh sum is a valid lower bound, so summation
				// abandons the moment it proves the candidate prunable.
				// Abandonment implies the partial sum exceeded a threshold
				// no looser than the current one (it only tightens), so
				// the skip decision matches the full evaluation's. The
				// A/B switch that disables DP abandonment disables this
				// too, so the baseline leg measures full bound evaluation.
				kgBudget := math.Inf(1)
				if abandon {
					kgBudget = threshold.Load()
				}
				kgStart := time.Now()
				kg, kgAbandoned, err := lower.KeoghUnder(query.Values, env, kgBudget, nil)
				boundNS.Add(int64(time.Since(kgStart)))
				if err != nil {
					fail(fmt.Errorf("LB_Keogh to %q: %w", s.ID, err))
					return
				}
				if kgAbandoned || kg > threshold.Load() {
					prunedKeogh.Add(1)
					return
				}
			}
		}
		// Stage 3: the dynamic program itself, early-abandoning against
		// the shared threshold. The threshold only ever decreases, so a
		// stale read yields a looser budget — extra rows filled, never a
		// wrong result. Abandonment is strict (> budget), so a candidate
		// tying the k-th distance is always evaluated fully.
		budget := math.Inf(1)
		if abandon {
			budget = threshold.Load()
		}
		res, err := c.backend.Distance(ctx, query, s, budget)
		if err != nil {
			fail(fmt.Errorf("distance to %q: %w", s.ID, err))
			return
		}
		evaluated.Add(1)
		cells.Add(int64(res.CellsFilled))
		matchNS.Add(int64(res.MatchTime))
		dpNS.Add(int64(res.DPTime))
		if res.Abandoned {
			// The partial cost already exceeds the pruning threshold (and
			// the threshold can only have tightened since), so the
			// candidate cannot enter the heap.
			abandoned.Add(1)
			cellsSaved.Add(int64(res.BandCells - res.CellsFilled))
			return
		}
		if res.Distance > limit {
			// Outside the caller's range limit; not a result.
			return
		}

		nb := Neighbor{Pos: cd.pos, Distance: res.Distance}
		mu.Lock()
		if len(best) < k {
			heap.Push(&best, nb)
		} else if best.worseThan(nb) {
			best[0] = nb
			heap.Fix(&best, 0)
		}
		if tightenAt > 0 && len(best) == tightenAt {
			// tightenAt fully-evaluated distances bound the k-th best from
			// above — for this collection, and (when tightenAt is the full
			// requested K) for any union of shards, so a shared threshold
			// tightens admissibly across shards too.
			threshold.Tighten(best[0].Distance)
		}
		mu.Unlock()
	})
	stats.PrunedKim = int(prunedKim.Load())
	stats.PrunedKeogh = int(prunedKeogh.Load())
	stats.Evaluated = int(evaluated.Load())
	stats.AbandonedDTW = int(abandoned.Load())
	stats.CellsSaved = int(cellsSaved.Load())
	stats.Cells = int(cells.Load())
	stats.BoundTime += time.Duration(boundNS.Load())
	stats.MatchTime = time.Duration(matchNS.Load())
	stats.DPTime = time.Duration(dpNS.Load())
	stats.WallTime = time.Since(start)
	// A cancelled context outranks the per-candidate errors it provoked:
	// the caller asked the search to stop, and that is the answer.
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}
	if firstErr != nil {
		return nil, stats, firstErr
	}

	out := []Neighbor(best)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Distance != out[b].Distance {
			return out[a].Distance < out[b].Distance
		}
		return out[a].Pos < out[b].Pos
	})
	stats.WallTime = time.Since(start)
	return out, stats, nil
}

// SearchBatch answers one search per entry of queries, parallelising
// across queries and dividing the remaining worker budget inside each
// query's cascade, so the pool stays bounded at the core's worker count.
// With excludeSelf set, queries must be the indexed collection itself and
// query n additionally excludes position n — leave-one-out even when
// series lack the IDs the usual self-match skip keys on. The returned
// stats aggregate every query; WallTime is the batch's elapsed time.
func (c *Core) SearchBatch(ctx context.Context, queries []series.Series, p Params, excludeSelf bool) ([][]Neighbor, Stats, error) {
	if len(queries) == 0 {
		return nil, Stats{}, fmt.Errorf("batch needs at least one query: %w", ErrEmptyCollection)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.batch(ctx, queries, p, excludeSelf)
}

// batch is SearchBatch under a held read lock. With excludeSelf set the
// queries are the collection itself and query n additionally excludes
// position n — the leave-one-out self-batch — under one read lock so the
// whole workload sees a single consistent collection state.
func (c *Core) batch(ctx context.Context, queries []series.Series, p Params, excludeSelf bool) ([][]Neighbor, Stats, error) {
	var stats Stats
	start := time.Now()
	out := make([][]Neighbor, len(queries))
	// Divide the pool across queries: small batches still use every
	// worker inside each query, large batches parallelise across queries
	// with sequential cascades. Ceiling division may oversubscribe by a
	// few goroutines but never leaves workers idle on mid-size batches.
	workers := c.workers
	if p.Workers > 0 {
		workers = p.Workers
	}
	perQuery := perQueryWorkers(workers, len(queries))
	var mu sync.Mutex // guards stats and firstErr; out slots are disjoint
	var firstErr error
	var stop atomic.Bool
	parallelFor(ctx, workers, len(queries), &stop, func(n int) {
		qp := p
		qp.Workers = perQuery
		// A caller-supplied exclusion applies to every query of the
		// batch; the leave-one-out self-batch overrides it per query.
		if excludeSelf {
			qp.Exclude = n
		}
		nbrs, qs, err := c.search(ctx, queries[n], qp)
		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("query %d (%q): %w", n, queries[n].ID, err)
		}
		out[n] = nbrs
		stats.Merge(qs)
		mu.Unlock()
		if err != nil {
			stop.Store(true)
		}
	})
	stats.WallTime = time.Since(start)
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}
	if firstErr != nil {
		return nil, stats, firstErr
	}
	return out, stats, nil
}

// perQueryWorkers divides a worker budget across queries by ceiling
// division, clamped to at least 1: small batches still use every worker
// inside each query, large batches parallelise across queries with
// sequential cascades.
func perQueryWorkers(workers, queries int) int {
	if queries <= 0 {
		return 1
	}
	per := (workers + queries - 1) / queries
	if per < 1 {
		per = 1
	}
	return per
}

// ctxErr is ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
