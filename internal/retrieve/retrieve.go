// Package retrieve implements the shared lower-bound-cascaded k-NN
// retrieval core behind the public sdtw.Index: one cascade — LB_Kim
// candidate ordering, LB_Keogh envelope pruning against a shared
// best-so-far threshold, and threshold-aware early-abandoning DTW fanned
// out across a bounded worker pool — parameterised by a small Backend
// interface supplying the actual distance family (the sDTW banded engine
// or the Sakoe-Chiba windowed exact-DTW pipeline).
//
// The cascade is exact for any backend whose Cascade method reports the
// bounds admissible: LB_Kim and LB_Keogh (at the backend's envelope
// radius) never exceed the backend distance, and an abandoned
// computation's partial cost is itself a lower bound above the threshold,
// so a search returns precisely the neighbours a brute-force scan would.
//
// A Core is safe for concurrent use; searches run under a read lock and
// the Add/Remove mutators take the write lock, so a mutating index keeps
// serving queries between mutations.
package retrieve

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdtw/internal/lower"
	"sdtw/internal/series"
	"sdtw/internal/sketch"
)

// Neighbor is one retrieval result.
type Neighbor struct {
	// Pos is the position of the neighbour in the indexed collection (as
	// of the search; Add/Remove renumber positions).
	Pos int
	// Distance is the backend distance to the query.
	Distance float64
}

// Params carries the resolved knobs of one search. The public layer
// translates its functional options into this struct.
//
// The zero value is usable but two fields have surprising zeroes —
// Exclude: 0 names collection position 0, and Threshold: 0 is a real
// range limit only when ThresholdSet says so. Start from DefaultParams
// instead of a struct literal.
type Params struct {
	// K is the neighbour count; K <= 0 means every candidate (used by
	// threshold-only range searches). K larger than the candidate count
	// is truncated.
	K int
	// Workers overrides the core's worker-pool width when positive.
	Workers int
	// Exclude drops the candidate at that collection position (for
	// leave-one-out workloads whose series may lack IDs); -1 excludes
	// none. Candidates sharing the query's non-empty ID are always
	// excluded.
	Exclude int
	// Threshold, when finite, restricts results to neighbours at distance
	// <= Threshold and seeds the pruning threshold, so hopeless
	// candidates are discarded even before the k-heap fills.
	//
	// Threshold == 0 is honoured as a real limit only when ThresholdSet
	// is true; otherwise it means "no limit", so a zero-value Params does
	// not silently return empty results.
	Threshold float64
	// ThresholdSet marks Threshold as deliberately chosen, letting an
	// explicit 0 (exact-match range search) survive the zero-value guard.
	ThresholdSet bool
	// NoAbandon disables threshold-aware early abandonment inside the
	// dynamic program for this search (A/B measurement; never changes
	// results).
	NoAbandon bool
	// NoSketch disables the stage-0 LB_PAA sketch filter for this search
	// (A/B measurement and the exactness property tests; never changes
	// results — the bound is admissible, it only avoids work).
	NoSketch bool
	// Shared, when non-nil, replaces the search's private best-so-far
	// threshold, so pruning compounds across concurrent searches over
	// disjoint collection shards: each shard's k-th best tightens the
	// others' budgets exactly as workers tighten each other's inside one
	// search. Admissible because any k fully-evaluated distances bound
	// the global k-th best from above.
	Shared *SharedThreshold
}

// DefaultParams returns the safe starting point for a Params value:
// single nearest neighbour, no positional exclusion (Exclude −1), no
// range limit (Threshold +Inf). The public option layer and the serving
// layer both start here, so the zero-value traps (Exclude: 0 excluding
// position 0, Threshold: 0 emptying results) cannot arise by omission.
func DefaultParams() Params {
	return Params{K: 1, Exclude: -1, Threshold: math.Inf(1)}
}

// EffectiveThreshold resolves the range limit a search runs under: the
// Threshold when deliberately set (ThresholdSet) or — for callers that
// predate ThresholdSet — any non-zero, non-NaN value; +Inf otherwise.
func (p Params) EffectiveThreshold() float64 {
	if p.ThresholdSet {
		if math.IsNaN(p.Threshold) {
			return math.Inf(1)
		}
		return p.Threshold
	}
	if p.Threshold != 0 && !math.IsNaN(p.Threshold) {
		return p.Threshold
	}
	return math.Inf(1)
}

// Core is the shared cascade over one collection and one backend.
type Core struct {
	backend Backend
	workers int

	// cascade reports whether lower-bound pruning is active; abandon
	// whether the DP early-abandons against the best-so-far threshold.
	// Both are off when the backend's cost assumptions don't hold.
	cascade bool
	abandon atomic.Bool

	// sketchW is the stage-0 PAA sketch width; 0 disables stage 0.
	sketchW int

	mu   sync.RWMutex
	data []series.Series
	// envelopes[i] is the LB_Keogh envelope of data[i] at the backend's
	// admissible radius; nil when the cascade is disabled.
	envelopes []lower.Envelope
	// sketches[i] is the stage-0 PAA sketch of envelopes[i]; nil unless
	// sketchW > 0 and the cascade is active.
	sketches []sketch.Sketch
	// meta[i] is the hot per-series metadata (length, raw endpoints) the
	// pre-DP stages read, so they never touch data[i].Values — which is
	// nil for store-backed collections until a candidate survives the
	// bounds.
	meta []seriesMeta
	// cold[i] materialises data[i]'s raw values on demand; nil (or a nil
	// slot) when the values are resident in data[i].Values.
	cold []*coldSlot
	// ids maps non-empty series IDs to their position, for duplicate
	// detection and Remove.
	ids map[string]int
}

// seriesMeta is the always-hot summary of one indexed series: what
// LB_Kim and the grid accounting need without loading raw values.
type seriesMeta struct {
	n           int
	first, last float64
}

// coldSlot materialises one cold series' raw values at most once, no
// matter how many concurrent searches reach its DP stage.
type coldSlot struct {
	once sync.Once
	load func() ([]float64, error)
	vals []float64
	err  error
}

func (cs *coldSlot) get() ([]float64, error) {
	cs.once.Do(func() {
		cs.vals, cs.err = cs.load()
		cs.load = nil
	})
	return cs.vals, cs.err
}

// New builds a core over data, validating every series and warming the
// backend's caches. workers bounds the query worker pool (<= 0 means the
// caller should have defaulted it; it is clamped to 1). abandon enables
// early abandonment when the backend admits it.
func New(backend Backend, data []series.Series, workers int, abandon bool) (*Core, error) {
	return build(backend, data, nil, workers, abandon)
}

// Restore is New for persisted indexes: envelopes are trusted from the
// snapshot instead of recomputed. len(envelopes) must match len(data)
// when the backend's cascade is active.
func Restore(backend Backend, data []series.Series, envelopes []lower.Envelope, workers int, abandon bool) (*Core, error) {
	if backend.Cascade() && len(envelopes) != len(data) {
		return nil, fmt.Errorf("snapshot has %d envelopes for %d series: %w", len(envelopes), len(data), ErrConfigMismatch)
	}
	return build(backend, data, envelopes, workers, abandon)
}

// ColdSeries is one series restored from a segment store: everything the
// pre-DP cascade stages need is resident (length, endpoints, envelope,
// sketch), while the raw values stay on disk behind Load until a
// candidate survives the bounds.
type ColdSeries struct {
	ID          string
	Label       int
	N           int
	First, Last float64
	Envelope    lower.Envelope
	Sketch      sketch.Sketch
	// Load reads the raw values (called at most once per series per
	// core; the core caches the result).
	Load func() ([]float64, error)
}

// ColdAdmitter is implemented by backends that can validate a series
// joining the collection from its metadata alone (the windowed backend's
// length check). Backends without it admit cold series unchecked —
// their caches warm lazily on first Distance.
type ColdAdmitter interface {
	AdmitCold(id string, n int) error
}

// RestoreCold builds a core over store-backed series: envelopes and
// sketches are trusted from the store, raw values load lazily. sketchW
// enables stage 0 at that width (0 disables; ignored when the backend's
// cascade is inactive). Backend caches are not warmed — the engine's
// feature cache fills read-through on first evaluation, which computes
// the same features Admit would have.
func RestoreCold(backend Backend, cold []ColdSeries, sketchW, workers int, abandon bool) (*Core, error) {
	if len(cold) == 0 {
		return nil, fmt.Errorf("cannot index: %w", ErrEmptyCollection)
	}
	if workers <= 0 {
		workers = 1
	}
	c := &Core{
		backend: backend,
		workers: workers,
		cascade: backend.Cascade(),
		data:    make([]series.Series, 0, len(cold)),
		meta:    make([]seriesMeta, 0, len(cold)),
		cold:    make([]*coldSlot, 0, len(cold)),
		ids:     make(map[string]int, len(cold)),
	}
	c.abandon.Store(abandon && backend.Abandonable())
	if c.cascade {
		c.envelopes = make([]lower.Envelope, 0, len(cold))
		if sketchW > 0 {
			c.sketchW = sketchW
			c.sketches = make([]sketch.Sketch, 0, len(cold))
		}
	}
	admitter, _ := backend.(ColdAdmitter)
	for i, cs := range cold {
		if cs.N <= 0 {
			return nil, fmt.Errorf("series %d (%q): %w", i, cs.ID, ErrEmptySeries)
		}
		if cs.Load == nil {
			return nil, fmt.Errorf("series %d (%q) has no value loader", i, cs.ID)
		}
		if cs.ID != "" {
			if _, dup := c.ids[cs.ID]; dup {
				return nil, fmt.Errorf("%w: %q", ErrDuplicateID, cs.ID)
			}
			c.ids[cs.ID] = i
		}
		if admitter != nil {
			if err := admitter.AdmitCold(cs.ID, cs.N); err != nil {
				return nil, fmt.Errorf("series %d: %w", i, err)
			}
		}
		c.data = append(c.data, series.Series{ID: cs.ID, Label: cs.Label})
		c.meta = append(c.meta, seriesMeta{n: cs.N, first: cs.First, last: cs.Last})
		c.cold = append(c.cold, &coldSlot{load: cs.Load})
		if c.cascade {
			if len(cs.Envelope.Upper) != cs.N {
				return nil, fmt.Errorf("series %d (%q) has envelope length %d for %d values: %w",
					i, cs.ID, len(cs.Envelope.Upper), cs.N, ErrConfigMismatch)
			}
			c.envelopes = append(c.envelopes, cs.Envelope)
			if c.sketchW > 0 {
				if cs.Sketch.Width() != c.sketchW {
					return nil, fmt.Errorf("series %d (%q) has sketch width %d, want %d: %w",
						i, cs.ID, cs.Sketch.Width(), c.sketchW, ErrConfigMismatch)
				}
				c.sketches = append(c.sketches, cs.Sketch)
			}
		}
	}
	return c, nil
}

func build(backend Backend, data []series.Series, envelopes []lower.Envelope, workers int, abandon bool) (*Core, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("cannot index: %w", ErrEmptyCollection)
	}
	// Validate the whole collection before paying any one-time costs, so
	// structural errors (emptiness, duplicate IDs) surface first.
	seen := make(map[string]bool, len(data))
	for i, s := range data {
		if len(s.Values) == 0 {
			return nil, fmt.Errorf("series %d (%q): %w", i, s.ID, ErrEmptySeries)
		}
		if s.ID != "" {
			if seen[s.ID] {
				return nil, fmt.Errorf("%w: %q", ErrDuplicateID, s.ID)
			}
			seen[s.ID] = true
		}
	}
	if workers <= 0 {
		workers = 1
	}
	c := &Core{
		backend: backend,
		workers: workers,
		cascade: backend.Cascade(),
		data:    make([]series.Series, 0, len(data)),
		ids:     make(map[string]int, len(data)),
	}
	c.abandon.Store(abandon && backend.Abandonable())
	if c.cascade {
		c.envelopes = make([]lower.Envelope, 0, len(data))
	}
	for i, s := range data {
		var env *lower.Envelope
		if envelopes != nil {
			env = &envelopes[i]
		}
		if err := c.admitLocked(s, env, false); err != nil {
			return nil, fmt.Errorf("series %d: %w", i, err)
		}
	}
	return c, nil
}

// admitLocked validates s, warms the backend, and appends it with its
// envelope. env non-nil short-circuits envelope computation (persistence
// restore path). fresh drops any backend cache state already held under
// the series' ID before warming: construction starts from a clean (or
// snapshot-restored, trusted) backend, but by Add time a search query
// sharing the ID may have planted its own features in the read-through
// cache, and admitting through that stale entry would permanently serve
// another series' features. Callers hold the write lock (or are
// constructing).
func (c *Core) admitLocked(s series.Series, env *lower.Envelope, fresh bool) error {
	if len(s.Values) == 0 {
		return fmt.Errorf("series %q: %w", s.ID, ErrEmptySeries)
	}
	if s.ID != "" {
		if _, dup := c.ids[s.ID]; dup {
			return fmt.Errorf("%w: %q", ErrDuplicateID, s.ID)
		}
	}
	if fresh {
		c.backend.Forget(s)
	}
	if err := c.backend.Admit(s); err != nil {
		return err
	}
	if s.ID != "" {
		c.ids[s.ID] = len(c.data)
	}
	c.data = append(c.data, s)
	n := len(s.Values)
	c.meta = append(c.meta, seriesMeta{n: n, first: s.Values[0], last: s.Values[n-1]})
	if c.cold != nil {
		c.cold = append(c.cold, nil) // values are resident
	}
	if c.cascade {
		env2 := env
		if env2 == nil {
			e := lower.NewEnvelope(s.Values, c.backend.EnvelopeRadius(n))
			env2 = &e
		}
		c.envelopes = append(c.envelopes, *env2)
		if c.sketchW > 0 {
			sk, err := sketch.FromEnvelope(*env2, c.sketchW)
			if err != nil {
				return fmt.Errorf("series %q: %w", s.ID, err)
			}
			c.sketches = append(c.sketches, sk)
		}
	}
	return nil
}

// EnableSketches switches the stage-0 LB_PAA filter on, computing a
// width-w sketch for every indexed series from its existing envelope.
// It is a no-op when the backend's cascade is inactive (the bound would
// not be admissible) or when sketches at that width are already on.
// Callers use it right after construction; it takes the write lock, so
// it is safe (if wasteful) later too.
func (c *Core) EnableSketches(w int) error {
	if w <= 0 {
		return fmt.Errorf("sketch width must be >= 1, got %d", w)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.cascade || c.sketchW == w {
		return nil
	}
	sketches := make([]sketch.Sketch, len(c.envelopes))
	for i, env := range c.envelopes {
		sk, err := sketch.FromEnvelope(env, w)
		if err != nil {
			return fmt.Errorf("series %q: %w", c.data[i].ID, err)
		}
		sketches[i] = sk
	}
	c.sketchW = w
	c.sketches = sketches
	return nil
}

// SketchWidth returns the active stage-0 sketch width (0 when disabled).
func (c *Core) SketchWidth() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sketchW
}

// Sketch returns the stage-0 sketch of the series at position i (only
// meaningful when SketchWidth > 0).
func (c *Core) Sketch(i int) sketch.Sketch {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sketches[i]
}

// Envelope returns the LB_Keogh envelope of the series at position i
// (only meaningful when the cascade is active).
func (c *Core) Envelope(i int) lower.Envelope {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.envelopes[i]
}

// Cascade reports whether the lower-bound cascade (and with it the
// envelopes and sketches) is active — false under a custom point
// distance, whose bounds are inadmissible.
func (c *Core) Cascade() bool { return c.cascade }

// Cold reports whether any indexed series keeps its raw values on disk
// (a store-backed core). Gob persistence refuses such cores: their
// Series snapshots would hold nil values.
func (c *Core) Cold() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.cold != nil
}

// Values returns the raw values of the series at position i,
// materialising them from the store if cold.
func (c *Core) Values(i int) ([]float64, error) {
	c.mu.RLock()
	s := c.data[i]
	var slot *coldSlot
	if c.cold != nil {
		slot = c.cold[i]
	}
	c.mu.RUnlock()
	if slot == nil {
		return s.Values, nil
	}
	return slot.get()
}

// Add appends a series to the collection: backend caches are warmed and
// the LB_Keogh envelope computed incrementally, under the write lock, so
// concurrent searches see either the old or the new collection.
func (c *Core) Add(s series.Series) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitLocked(s, nil, true)
}

// Remove deletes the series with the given non-empty ID, dropping its
// envelope and any backend cache entries. Later series shift down one
// position. Removing the last series fails: an index is never empty.
func (c *Core) Remove(id string) error {
	if id == "" {
		return fmt.Errorf("Remove needs a non-empty ID")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pos, ok := c.ids[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownID, id)
	}
	if len(c.data) == 1 {
		return fmt.Errorf("cannot remove the last series %q: %w", id, ErrEmptyCollection)
	}
	c.backend.Forget(c.data[pos])
	c.spliceLocked(pos)
	delete(c.ids, id)
	for sid, p := range c.ids {
		if p > pos {
			c.ids[sid] = p - 1
		}
	}
	return nil
}

// spliceLocked drops position pos from every position-parallel slice.
// Callers hold the write lock (or own an unpublished copy).
func (c *Core) spliceLocked(pos int) {
	c.data = append(c.data[:pos], c.data[pos+1:]...)
	c.meta = append(c.meta[:pos], c.meta[pos+1:]...)
	if c.cold != nil {
		c.cold = append(c.cold[:pos], c.cold[pos+1:]...)
	}
	if c.cascade {
		c.envelopes = append(c.envelopes[:pos], c.envelopes[pos+1:]...)
		if c.sketchW > 0 {
			c.sketches = append(c.sketches[:pos], c.sketches[pos+1:]...)
		}
	}
}

// copyLocked returns a new Core over the same backend with the
// collection state duplicated. Slices are copied at exact length so a
// subsequent append reallocates instead of scribbling on the receiver's
// backing arrays. Callers hold (at least) the read lock.
func (c *Core) copyLocked() *Core {
	nc := &Core{
		backend: c.backend,
		workers: c.workers,
		cascade: c.cascade,
		sketchW: c.sketchW,
		data:    make([]series.Series, len(c.data)),
		meta:    make([]seriesMeta, len(c.meta)),
		ids:     make(map[string]int, len(c.ids)+1),
	}
	nc.abandon.Store(c.abandon.Load())
	copy(nc.data, c.data)
	copy(nc.meta, c.meta)
	if c.cold != nil {
		// Slots are shared, not copied: a materialisation on either core
		// serves both (the values are immutable).
		nc.cold = make([]*coldSlot, len(c.cold))
		copy(nc.cold, c.cold)
	}
	if c.cascade {
		nc.envelopes = make([]lower.Envelope, len(c.envelopes))
		copy(nc.envelopes, c.envelopes)
		if c.sketchW > 0 {
			nc.sketches = make([]sketch.Sketch, len(c.sketches))
			copy(nc.sketches, c.sketches)
		}
	}
	for id, pos := range c.ids {
		nc.ids[id] = pos
	}
	return nc
}

// CloneAdd returns a copy of the core with s admitted; the receiver is
// unchanged and keeps serving. This is the copy-on-write seam the
// sharded serving layer builds its snapshots from: readers holding the
// old core never contend with the write, they simply keep seeing the old
// collection. The backend is shared, so its per-series caches carry
// over; the new series' one-time costs (feature extraction, envelope)
// are paid here.
func (c *Core) CloneAdd(s series.Series) (*Core, error) {
	c.mu.RLock()
	nc := c.copyLocked()
	c.mu.RUnlock()
	// nc is unpublished: no lock needed, but admitLocked's contract holds
	// (no concurrent access).
	if err := nc.admitLocked(s, nil, true); err != nil {
		return nil, err
	}
	return nc, nil
}

// CloneRemove returns a copy of the core with the series of the given
// non-empty ID removed, along with the position it occupied (so callers
// maintaining position-parallel state can renumber the same way). The
// receiver is unchanged; like Remove, removing the last series fails.
// The shared backend forgets the series' cached state — in-flight
// searches on the old core may re-derive it on demand, which costs work,
// never correctness.
func (c *Core) CloneRemove(id string) (*Core, int, error) {
	if id == "" {
		return nil, -1, fmt.Errorf("Remove needs a non-empty ID")
	}
	c.mu.RLock()
	pos, ok := c.ids[id]
	if !ok {
		c.mu.RUnlock()
		return nil, -1, fmt.Errorf("%w: %q", ErrUnknownID, id)
	}
	if len(c.data) == 1 {
		c.mu.RUnlock()
		return nil, -1, fmt.Errorf("cannot remove the last series %q: %w", id, ErrEmptyCollection)
	}
	nc := c.copyLocked()
	c.mu.RUnlock()
	nc.backend.Forget(nc.data[pos])
	nc.spliceLocked(pos)
	delete(nc.ids, id)
	for sid, p := range nc.ids {
		if p > pos {
			nc.ids[sid] = p - 1
		}
	}
	return nc, pos, nil
}

// Len returns the number of indexed series.
func (c *Core) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.data)
}

// Series returns the indexed series at position i.
func (c *Core) Series(i int) series.Series {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.data[i]
}

// Fingerprint exposes the backend's configuration fingerprint for
// persistence.
func (c *Core) Fingerprint() string { return c.backend.Fingerprint() }

// Snapshot returns copies of the collection and envelope slices for
// persistence. The Series values and envelope arrays are shared (they are
// immutable once indexed). A non-nil capture runs while the read lock is
// held, so callers can snapshot backend-adjacent state (the engine's
// feature cache) consistent with the collection — no Add or Remove can
// interleave between the two captures.
func (c *Core) Snapshot(capture func()) ([]series.Series, []lower.Envelope) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	data := make([]series.Series, len(c.data))
	copy(data, c.data)
	envs := make([]lower.Envelope, len(c.envelopes))
	copy(envs, c.envelopes)
	if capture != nil {
		capture()
	}
	return data, envs
}

// candidate is one cascade work item: a collection position, its
// ordering bound, and its LB_Kim bound. bound is the stage-0 LB_PAA
// sketch bound when paa is set (an equal-length candidate of a
// sketch-enabled search); otherwise it equals kim.
type candidate struct {
	pos   int
	bound float64
	kim   float64
	paa   bool
}

// bestK is the best-so-far heap: a max-heap on (distance, position)
// holding at most k neighbours, so the root is the current k-th best and
// the pruning threshold.
type bestK []Neighbor

func (h bestK) Len() int { return len(h) }
func (h bestK) Less(a, b int) bool {
	if h[a].Distance != h[b].Distance {
		return h[a].Distance > h[b].Distance
	}
	return h[a].Pos > h[b].Pos
}
func (h bestK) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *bestK) Push(x any)   { *h = append(*h, x.(Neighbor)) }
func (h *bestK) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h bestK) worseThan(nb Neighbor) bool {
	w := h[0]
	return nb.Distance < w.Distance || (nb.Distance == w.Distance && nb.Pos < w.Pos)
}

// parallelFor fans fn out over [0, n) across at most workers goroutines,
// stopping early (best effort) once stop is set or ctx is cancelled. fn
// must be safe for concurrent calls on distinct indices. It always waits
// for in-flight calls before returning, so no goroutines outlive it.
func parallelFor(ctx context.Context, workers, n int, stop *atomic.Bool, fn func(i int)) {
	cancelled := func() bool {
		return stop.Load() || (ctx != nil && ctx.Err() != nil)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n && !cancelled(); i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cancelled() {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SharedThreshold shares a best-so-far pruning threshold across workers —
// and, through Params.Shared, across concurrent searches over disjoint
// shards of one collection. It is monotone: Tighten only ever lowers it,
// so a stale read yields a looser threshold, which costs a bound
// evaluation but never correctness.
type SharedThreshold struct{ bits atomic.Uint64 }

// NewSharedThreshold returns a threshold seeded at limit (+Inf for an
// unbounded top-k).
func NewSharedThreshold(limit float64) *SharedThreshold {
	t := &SharedThreshold{}
	t.bits.Store(math.Float64bits(limit))
	return t
}

// Load returns the current threshold.
func (t *SharedThreshold) Load() float64 { return math.Float64frombits(t.bits.Load()) }

// Tighten lowers the threshold to v if v is smaller; larger values are
// ignored, keeping the threshold monotone under concurrent updates.
func (t *SharedThreshold) Tighten(v float64) {
	nb := math.Float64bits(v)
	for {
		ob := t.bits.Load()
		// Positive float64s order like their bit patterns; both v and the
		// stored value are non-negative distances (or +Inf).
		if math.Float64frombits(ob) <= v {
			return
		}
		if t.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// kimCheckEvery is how often the sequential LB_Kim stage polls the
// context on very large collections.
const kimCheckEvery = 1024

// Search runs the cascaded top-k search. Query validation (emptiness,
// backend length constraints) happens here, uniformly for both backends;
// K is validated by the public layer, which owns the option surface.
func (c *Core) Search(ctx context.Context, query series.Series, p Params) ([]Neighbor, Stats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.search(ctx, query, p)
}

// SearchWithLabels is Search returning, alongside each neighbour, the
// class label of its series — resolved under the same read lock as the
// search itself, so concurrent Add/Remove cannot renumber positions
// between retrieval and label lookup.
func (c *Core) SearchWithLabels(ctx context.Context, query series.Series, p Params) ([]Neighbor, []int, Stats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	nbrs, stats, err := c.search(ctx, query, p)
	if err != nil {
		return nil, nil, stats, err
	}
	return nbrs, c.labelsLocked(nbrs), stats, nil
}

// SearchAllWithLabels is SearchAll with per-neighbour labels, resolved
// under the batch's read lock (see SearchWithLabels).
func (c *Core) SearchAllWithLabels(ctx context.Context, p Params) ([][]Neighbor, [][]int, Stats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	nbrs, stats, err := c.batch(ctx, c.data, p, true)
	if err != nil {
		return nil, nil, stats, err
	}
	labels := make([][]int, len(nbrs))
	for i, nb := range nbrs {
		labels[i] = c.labelsLocked(nb)
	}
	return nbrs, labels, stats, nil
}

// labelsLocked maps a neighbour list to its series' class labels. Callers
// hold (at least) the read lock.
func (c *Core) labelsLocked(nbrs []Neighbor) []int {
	labels := make([]int, len(nbrs))
	for i, nb := range nbrs {
		labels[i] = c.data[nb.Pos].Label
	}
	return labels
}

// search is Search under a held read lock (batch calls it directly so a
// whole batch sees one consistent collection).
func (c *Core) search(ctx context.Context, query series.Series, p Params) ([]Neighbor, Stats, error) {
	var stats Stats
	start := time.Now()
	if len(query.Values) == 0 {
		return nil, stats, fmt.Errorf("query: %w", ErrEmptySeries)
	}
	if err := c.backend.CheckQuery(query); err != nil {
		return nil, stats, fmt.Errorf("query: %w", err)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}
	limit := p.EffectiveThreshold()

	// Ordering pass: a cheap bound for every candidate, cheapest first.
	// O(1) per candidate for LB_Kim, O(W) for the stage-0 sketch bound —
	// both read only hot metadata (endpoints, sketches), never the
	// possibly-cold raw values — so this stays sequential; it also fixes
	// the processing order that lets the k-heap threshold tighten fast.
	boundStart := time.Now()
	useSketch := c.cascade && c.sketchW > 0 && !p.NoSketch
	var qmean []float64
	if useSketch {
		var err error
		qmean, err = sketch.Means(query.Values, c.sketchW, nil)
		if err != nil {
			return nil, stats, fmt.Errorf("query sketch: %w", err)
		}
	}
	cands := make([]candidate, 0, len(c.data))
	var kimVals [2]float64
	for i, s := range c.data {
		if i%kimCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, stats, err
			}
		}
		// Skip self-matches when the query is an indexed series.
		if i == p.Exclude || (s.ID != "" && s.ID == query.ID) {
			continue
		}
		m := c.meta[i]
		stats.GridCells += len(query.Values) * m.n
		cd := candidate{pos: i}
		if c.cascade {
			// LB_Kim sees only the first/last endpoints, so the hot
			// two-point stand-in reproduces lower.Kim over the full
			// values bit for bit (one point when the series has one).
			kimVals[0], kimVals[1] = m.first, m.last
			endpoints := kimVals[:2]
			if m.n == 1 {
				endpoints = kimVals[:1]
			}
			kim, err := lower.Kim(query.Values, endpoints, nil)
			if err != nil {
				return nil, stats, fmt.Errorf("LB_Kim to %q: %w", s.ID, err)
			}
			cd.kim = kim
			cd.bound = kim
			// Stage 0 applies under the same equal-length contract as the
			// Keogh stage; other candidates keep their Kim ordering.
			if useSketch && m.n == len(query.Values) {
				cd.bound = sketch.LBPAA(qmean, c.sketches[i], m.n)
				cd.paa = true
			}
		}
		cands = append(cands, cd)
	}
	stats.Candidates = len(cands)
	stats.BoundTime += time.Since(boundStart)
	if c.cascade {
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].bound != cands[b].bound {
				return cands[a].bound < cands[b].bound
			}
			return cands[a].pos < cands[b].pos
		})
	}
	k := p.K
	if k <= 0 || k > len(cands) {
		k = len(cands)
	}
	if k == 0 {
		stats.WallTime = time.Since(start)
		return nil, stats, nil
	}
	// tightenAt is the heap occupancy at which the k-th best becomes an
	// admissible pruning threshold. Private search: the (possibly
	// truncated) heap capacity — by the time the heap is that full, its
	// root bounds everything still wanted. Shared search: strictly the
	// requested K — this shard may hold fewer than K candidates, and
	// tightening the siblings' shared budget with fewer than K real
	// distances would prune their true neighbours (and K <= 0 — a range
	// search — must never tighten past the caller's limit at all).
	tightenAt := k
	if p.Shared != nil {
		tightenAt = p.K // <= 0 or > len(cands): never reached
	}

	// Stages 1-3, fanned out: LB_Kim check, LB_Keogh check, full DTW.
	// Per-candidate accounting uses atomic counters so the fast prune
	// path never touches the heap mutex. The pruning threshold is the
	// tighter of the k-th best distance and the caller's range limit.
	best := make(bestK, 0, k+1)
	var mu sync.Mutex // guards best and firstErr
	var firstErr error
	var stop atomic.Bool
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	// The pruning threshold is private to this search unless the caller
	// supplied a shared one (sharded serving), in which case every
	// concurrent shard search reads and tightens the same value.
	threshold := p.Shared
	if threshold == nil {
		threshold = NewSharedThreshold(limit)
	} else {
		threshold.Tighten(limit)
	}
	abandon := c.abandon.Load() && !p.NoAbandon
	var prunedSketch, prunedKim, prunedKeogh, evaluated, abandoned, cells, cellsSaved atomic.Int64
	var boundNS, matchNS, dpNS atomic.Int64
	workers := c.workers
	if p.Workers > 0 {
		workers = p.Workers
	}
	parallelFor(ctx, workers, len(cands), &stop, func(n int) {
		cd := cands[n]
		s := c.data[cd.pos]
		if c.cascade {
			if cd.paa {
				// Stage 0: the precomputed LB_PAA sketch bound, checked
				// before LB_Kim. Pruning here costs O(1) and touches
				// neither the raw values nor the full envelope.
				if cd.bound > threshold.Load() {
					prunedSketch.Add(1)
					return
				}
			}
			if cd.kim > threshold.Load() {
				prunedKim.Add(1)
				return
			}
			if env := c.envelopes[cd.pos]; len(env.Upper) == len(query.Values) {
				// The active threshold rides into the bound itself: the
				// partial Keogh sum is a valid lower bound, so summation
				// abandons the moment it proves the candidate prunable.
				// Abandonment implies the partial sum exceeded a threshold
				// no looser than the current one (it only tightens), so
				// the skip decision matches the full evaluation's. The
				// A/B switch that disables DP abandonment disables this
				// too, so the baseline leg measures full bound evaluation.
				kgBudget := math.Inf(1)
				if abandon {
					kgBudget = threshold.Load()
				}
				kgStart := time.Now()
				kg, kgAbandoned, err := lower.KeoghUnder(query.Values, env, kgBudget, nil)
				boundNS.Add(int64(time.Since(kgStart)))
				if err != nil {
					fail(fmt.Errorf("LB_Keogh to %q: %w", s.ID, err))
					return
				}
				if kgAbandoned || kg > threshold.Load() {
					prunedKeogh.Add(1)
					return
				}
			}
		}
		// The candidate survived every bound: materialise its raw values
		// if they are still cold. The slot caches, so each series pays
		// the disk read at most once per core lifetime.
		if c.cold != nil {
			if slot := c.cold[cd.pos]; slot != nil {
				vals, err := slot.get()
				if err != nil {
					fail(fmt.Errorf("loading values of %q: %w", s.ID, err))
					return
				}
				s.Values = vals
			}
		}
		// Stage 3: the dynamic program itself, early-abandoning against
		// the shared threshold. The threshold only ever decreases, so a
		// stale read yields a looser budget — extra rows filled, never a
		// wrong result. Abandonment is strict (> budget), so a candidate
		// tying the k-th distance is always evaluated fully.
		budget := math.Inf(1)
		if abandon {
			budget = threshold.Load()
		}
		res, err := c.backend.Distance(ctx, query, s, budget)
		if err != nil {
			fail(fmt.Errorf("distance to %q: %w", s.ID, err))
			return
		}
		evaluated.Add(1)
		cells.Add(int64(res.CellsFilled))
		matchNS.Add(int64(res.MatchTime))
		dpNS.Add(int64(res.DPTime))
		if res.Abandoned {
			// The partial cost already exceeds the pruning threshold (and
			// the threshold can only have tightened since), so the
			// candidate cannot enter the heap.
			abandoned.Add(1)
			cellsSaved.Add(int64(res.BandCells - res.CellsFilled))
			return
		}
		if res.Distance > limit {
			// Outside the caller's range limit; not a result.
			return
		}

		nb := Neighbor{Pos: cd.pos, Distance: res.Distance}
		mu.Lock()
		if len(best) < k {
			heap.Push(&best, nb)
		} else if best.worseThan(nb) {
			best[0] = nb
			heap.Fix(&best, 0)
		}
		if tightenAt > 0 && len(best) == tightenAt {
			// tightenAt fully-evaluated distances bound the k-th best from
			// above — for this collection, and (when tightenAt is the full
			// requested K) for any union of shards, so a shared threshold
			// tightens admissibly across shards too.
			threshold.Tighten(best[0].Distance)
		}
		mu.Unlock()
	})
	stats.PrunedSketch = int(prunedSketch.Load())
	stats.PrunedKim = int(prunedKim.Load())
	stats.PrunedKeogh = int(prunedKeogh.Load())
	stats.Evaluated = int(evaluated.Load())
	stats.AbandonedDTW = int(abandoned.Load())
	stats.CellsSaved = int(cellsSaved.Load())
	stats.Cells = int(cells.Load())
	stats.BoundTime += time.Duration(boundNS.Load())
	stats.MatchTime = time.Duration(matchNS.Load())
	stats.DPTime = time.Duration(dpNS.Load())
	stats.WallTime = time.Since(start)
	// A cancelled context outranks the per-candidate errors it provoked:
	// the caller asked the search to stop, and that is the answer.
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}
	if firstErr != nil {
		return nil, stats, firstErr
	}

	out := []Neighbor(best)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Distance != out[b].Distance {
			return out[a].Distance < out[b].Distance
		}
		return out[a].Pos < out[b].Pos
	})
	stats.WallTime = time.Since(start)
	return out, stats, nil
}

// SearchBatch answers one search per entry of queries, parallelising
// across queries and dividing the remaining worker budget inside each
// query's cascade, so the pool stays bounded at the core's worker count.
// With excludeSelf set, queries must be the indexed collection itself and
// query n additionally excludes position n — leave-one-out even when
// series lack the IDs the usual self-match skip keys on. The returned
// stats aggregate every query; WallTime is the batch's elapsed time.
func (c *Core) SearchBatch(ctx context.Context, queries []series.Series, p Params, excludeSelf bool) ([][]Neighbor, Stats, error) {
	if len(queries) == 0 {
		return nil, Stats{}, fmt.Errorf("batch needs at least one query: %w", ErrEmptyCollection)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.batch(ctx, queries, p, excludeSelf)
}

// batch is SearchBatch under a held read lock. With excludeSelf set the
// queries are the collection itself and query n additionally excludes
// position n — the leave-one-out self-batch — under one read lock so the
// whole workload sees a single consistent collection state.
func (c *Core) batch(ctx context.Context, queries []series.Series, p Params, excludeSelf bool) ([][]Neighbor, Stats, error) {
	var stats Stats
	start := time.Now()
	out := make([][]Neighbor, len(queries))
	// Divide the pool across queries: small batches still use every
	// worker inside each query, large batches parallelise across queries
	// with sequential cascades. Ceiling division may oversubscribe by a
	// few goroutines but never leaves workers idle on mid-size batches.
	workers := c.workers
	if p.Workers > 0 {
		workers = p.Workers
	}
	perQuery := perQueryWorkers(workers, len(queries))
	var mu sync.Mutex // guards stats and firstErr; out slots are disjoint
	var firstErr error
	var stop atomic.Bool
	parallelFor(ctx, workers, len(queries), &stop, func(n int) {
		qp := p
		qp.Workers = perQuery
		// A caller-supplied exclusion applies to every query of the
		// batch; the leave-one-out self-batch overrides it per query.
		q := queries[n]
		if excludeSelf {
			qp.Exclude = n
			// The self-batch queries are the collection itself, whose
			// values may be cold: materialise this query's before use.
			if c.cold != nil {
				if slot := c.cold[n]; slot != nil {
					vals, err := slot.get()
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("query %d (%q): %w", n, q.ID, err)
						}
						mu.Unlock()
						stop.Store(true)
						return
					}
					q.Values = vals
				}
			}
		}
		nbrs, qs, err := c.search(ctx, q, qp)
		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("query %d (%q): %w", n, queries[n].ID, err)
		}
		out[n] = nbrs
		stats.Merge(qs)
		mu.Unlock()
		if err != nil {
			stop.Store(true)
		}
	})
	stats.WallTime = time.Since(start)
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}
	if firstErr != nil {
		return nil, stats, firstErr
	}
	return out, stats, nil
}

// perQueryWorkers divides a worker budget across queries by ceiling
// division, clamped to at least 1: small batches still use every worker
// inside each query, large batches parallelise across queries with
// sequential cascades.
func perQueryWorkers(workers, queries int) int {
	if queries <= 0 {
		return 1
	}
	per := (workers + queries - 1) / queries
	if per < 1 {
		per = 1
	}
	return per
}

// ctxErr is ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
