package retrieve

import (
	"fmt"
	"time"
)

// Stats accounts for the work one search (or a batch of searches) did
// and, more importantly, avoided: how far each candidate got through the
// lower-bound cascade, how many DTW grid cells were filled, and where the
// time went. It is the superset of the per-backend stats the pre-unified
// indexes reported and is shared by both backends, so dashboards compare
// sDTW and windowed retrieval on the same axes.
type Stats struct {
	// Candidates is the collection size examined (after self-exclusion).
	Candidates int
	// PrunedSketch counts candidates discarded by the stage-0 LB_PAA
	// sketch bound — before LB_Kim, without touching the candidate's raw
	// values or its full envelope.
	PrunedSketch int
	// PrunedKim and PrunedKeogh count candidates discarded by each bound
	// before any DTW grid work.
	PrunedKim, PrunedKeogh int
	// Evaluated counts candidates that required a DTW computation
	// (including ones abandoned partway through).
	Evaluated int
	// AbandonedDTW counts evaluated candidates whose DTW computation was
	// abandoned early once its partial cost — itself a valid lower bound —
	// exceeded the best-so-far threshold. Abandoned candidates are
	// included in Evaluated.
	AbandonedDTW int
	// CellsSaved counts the band cells early abandonment skipped on
	// abandoned candidates.
	CellsSaved int
	// Cells is the number of DTW grid cells actually filled.
	Cells int
	// GridCells is the total N·M over every candidate — the grids a
	// brute-force scan would confront — so CellsGain reflects the combined
	// effect of the cascade and the band.
	GridCells int
	// BoundTime is the time spent computing LB_Kim and LB_Keogh bounds.
	BoundTime time.Duration
	// MatchTime and DPTime are the summed backend stage durations of the
	// evaluated candidates (the paper's tasks b and c).
	MatchTime, DPTime time.Duration
	// WallTime is the elapsed time of the whole search.
	WallTime time.Duration
}

// PruneRate is the fraction of candidates discarded without DTW work.
func (s Stats) PruneRate() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.PrunedSketch+s.PrunedKim+s.PrunedKeogh) / float64(s.Candidates)
}

// AbandonRate is the fraction of evaluated candidates whose DTW
// computation was abandoned before filling the whole band.
func (s Stats) AbandonRate() float64 {
	if s.Evaluated == 0 {
		return 0
	}
	return float64(s.AbandonedDTW) / float64(s.Evaluated)
}

// CellsGain is the machine-independent pruning gain 1 − Cells/GridCells.
func (s Stats) CellsGain() float64 {
	if s.GridCells == 0 {
		return 0
	}
	return 1 - float64(s.Cells)/float64(s.GridCells)
}

// Merge folds another stats record into s (batch aggregation). WallTime
// is deliberately not summed: batches report their own elapsed time.
func (s *Stats) Merge(o Stats) {
	s.Candidates += o.Candidates
	s.PrunedSketch += o.PrunedSketch
	s.PrunedKim += o.PrunedKim
	s.PrunedKeogh += o.PrunedKeogh
	s.Evaluated += o.Evaluated
	s.AbandonedDTW += o.AbandonedDTW
	s.CellsSaved += o.CellsSaved
	s.Cells += o.Cells
	s.GridCells += o.GridCells
	s.BoundTime += o.BoundTime
	s.MatchTime += o.MatchTime
	s.DPTime += o.DPTime
}

// String implements fmt.Stringer for terse logs.
func (s Stats) String() string {
	return fmt.Sprintf("candidates=%d sketch=%d kim=%d keogh=%d evaluated=%d abandoned=%d prune=%.2f cellsgain=%.2f cellssaved=%d",
		s.Candidates, s.PrunedSketch, s.PrunedKim, s.PrunedKeogh, s.Evaluated, s.AbandonedDTW, s.PruneRate(), s.CellsGain(), s.CellsSaved)
}
