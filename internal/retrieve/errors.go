package retrieve

import (
	"errors"

	"sdtw/internal/series"
)

// Sentinel errors of the retrieval surface. The public sdtw package
// re-exports them; every validation failure across the query surface
// wraps one of these so callers can branch with errors.Is instead of
// matching message strings. ErrEmptySeries and ErrLengthMismatch are the
// shared identities from internal/series, so the dynamic-programming
// kernels report the very same sentinels.
var (
	// ErrEmptyCollection reports an attempt to build an index (or run a
	// batch) over zero series or zero queries.
	ErrEmptyCollection = errors.New("empty collection")
	// ErrEmptySeries reports a series or query with no observations.
	ErrEmptySeries = series.ErrEmptySeries
	// ErrBadK reports a non-positive neighbour count.
	ErrBadK = errors.New("k must be >= 1")
	// ErrLengthMismatch reports a series whose length violates a
	// backend's equal-length requirement.
	ErrLengthMismatch = series.ErrLengthMismatch
	// ErrConfigMismatch reports an index snapshot whose configuration
	// fingerprint does not match the options it is being loaded under.
	ErrConfigMismatch = errors.New("index config mismatch")
	// ErrDuplicateID reports two collection series sharing one non-empty
	// ID (IDs key the feature cache and Remove).
	ErrDuplicateID = errors.New("duplicate series ID")
	// ErrUnknownID reports a Remove of an ID not in the collection.
	ErrUnknownID = errors.New("unknown series ID")
)
