package retrieve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdtw/internal/series"
)

// testCore builds a windowed-backend core over n equal-length series with
// IDs s-0..s-(n-1). The windowed backend is the natural in-package test
// backend: it needs no engine configuration and exercises the full
// cascade.
func testCore(t *testing.T, n, length int) *Core {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	data := make([]series.Series, n)
	for i := range data {
		vals := make([]float64, length)
		for j := range vals {
			vals[j] = rng.NormFloat64()
		}
		data[i] = series.Series{ID: "s-" + string(rune('0'+i/10)) + string(rune('0'+i%10)), Label: i % 3, Values: vals}
	}
	backend, _, err := NewWindowedBackend(length, 5)
	if err != nil {
		t.Fatalf("NewWindowedBackend: %v", err)
	}
	c, err := New(backend, data, 2, true)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// checkIDsConsistent verifies the ids map and the data slice agree: every
// ID maps to the position actually holding it, with no extra entries.
func checkIDsConsistent(t *testing.T, c *Core) {
	t.Helper()
	if len(c.ids) != len(c.data) {
		t.Fatalf("ids has %d entries, data has %d series", len(c.ids), len(c.data))
	}
	for id, pos := range c.ids {
		if pos < 0 || pos >= len(c.data) {
			t.Fatalf("id %q maps to out-of-range position %d", id, pos)
		}
		if c.data[pos].ID != id {
			t.Fatalf("id %q maps to position %d which holds %q", id, pos, c.data[pos].ID)
		}
	}
}

func TestRemoveRenumbersIDs(t *testing.T) {
	c := testCore(t, 6, 40)

	// Remove from the middle: everything after shifts down one.
	if err := c.Remove("s-02"); err != nil {
		t.Fatalf("Remove middle: %v", err)
	}
	if c.Len() != 5 {
		t.Fatalf("Len after remove = %d, want 5", c.Len())
	}
	checkIDsConsistent(t, c)

	// Remove the new head and the tail; the map must track both shapes.
	if err := c.Remove("s-00"); err != nil {
		t.Fatalf("Remove head: %v", err)
	}
	if err := c.Remove("s-05"); err != nil {
		t.Fatalf("Remove tail: %v", err)
	}
	checkIDsConsistent(t, c)

	// Unknown and already-removed IDs report ErrUnknownID.
	if err := c.Remove("s-02"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double remove: got %v, want ErrUnknownID", err)
	}
	if err := c.Remove(""); err == nil {
		t.Fatal("empty-ID remove succeeded")
	}

	// The collection never drains to empty through Remove.
	if err := c.Remove("s-01"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := c.Remove("s-03"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := c.Remove("s-04"); !errors.Is(err, ErrEmptyCollection) {
		t.Fatalf("removing the last series: got %v, want ErrEmptyCollection", err)
	}

	// Search still works against the surviving series and renumbered map.
	q := c.Series(0)
	nbs, _, err := c.Search(context.Background(), q, DefaultParams())
	if err != nil {
		t.Fatalf("Search after removals: %v", err)
	}
	if len(nbs) != 0 {
		// q shares the survivor's ID, so self-exclusion leaves nothing.
		t.Fatalf("self-search over singleton returned %d neighbours, want 0", len(nbs))
	}
}

func TestPerQueryWorkers(t *testing.T) {
	cases := []struct {
		workers, queries, want int
	}{
		{8, 1, 8},  // one query gets the whole budget
		{8, 3, 3},  // ceil(8/3)
		{8, 8, 1},  // exactly one each
		{8, 9, 1},  // more queries than workers: sequential cascades
		{9, 2, 5},  // ceil(9/2)
		{1, 4, 1},  // floor at 1
		{0, 4, 1},  // no budget still runs
		{4, 0, 1},  // degenerate query counts clamp
		{4, -1, 1}, // .
	}
	for _, tc := range cases {
		if got := perQueryWorkers(tc.workers, tc.queries); got != tc.want {
			t.Errorf("perQueryWorkers(%d, %d) = %d, want %d", tc.workers, tc.queries, got, tc.want)
		}
	}
}

func TestParallelForVisitsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		var stop atomic.Bool
		visited := make([]atomic.Int32, 100)
		parallelFor(context.Background(), workers, len(visited), &stop, func(i int) {
			visited[i].Add(1)
		})
		for i := range visited {
			if n := visited[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want exactly once", workers, i, n)
			}
		}
	}
}

func TestParallelForEarlyStop(t *testing.T) {
	// A pre-set stop flag runs nothing.
	var stop atomic.Bool
	stop.Store(true)
	calls := atomic.Int32{}
	parallelFor(context.Background(), 4, 100, &stop, func(i int) { calls.Add(1) })
	if n := calls.Load(); n != 0 {
		t.Fatalf("pre-stopped parallelFor made %d calls, want 0", n)
	}

	// Setting stop mid-run ends the sweep early (best effort): with the
	// flag raised on the first call, at most one call per worker follows.
	stop.Store(false)
	calls.Store(0)
	parallelFor(context.Background(), 4, 10_000, &stop, func(i int) {
		calls.Add(1)
		stop.Store(true)
	})
	if n := calls.Load(); n > 8 {
		t.Fatalf("stopped parallelFor made %d calls, want a handful", n)
	}

	// A cancelled context stops it the same way.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stop2 atomic.Bool
	calls.Store(0)
	parallelFor(ctx, 4, 10_000, &stop2, func(i int) { calls.Add(1) })
	if n := calls.Load(); n > 8 {
		t.Fatalf("cancelled parallelFor made %d calls, want a handful", n)
	}

	// A nil context is tolerated (the retrieval surfaces accept one).
	var stop3 atomic.Bool
	calls.Store(0)
	parallelFor(nil, 2, 50, &stop3, func(i int) { calls.Add(1) })
	if n := calls.Load(); n != 50 {
		t.Fatalf("nil-ctx parallelFor made %d calls, want 50", n)
	}
}

// TestParallelForWaitsForInflight pins the no-leak contract: parallelFor
// returns only after every in-flight fn call finishes, even when stop is
// raised while calls are still running.
func TestParallelForWaitsForInflight(t *testing.T) {
	var stop atomic.Bool
	var inflight, peak atomic.Int32
	var running sync.WaitGroup
	running.Add(1)
	started := make(chan struct{}, 16)
	go func() {
		defer running.Done()
		parallelFor(context.Background(), 4, 100, &stop, func(i int) {
			started <- struct{}{}
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inflight.Add(-1)
		})
	}()
	<-started // at least one call is in flight
	stop.Store(true)
	running.Wait() // parallelFor returned...
	if n := inflight.Load(); n != 0 {
		t.Fatalf("parallelFor returned with %d calls still in flight", n)
	}
	if peak.Load() == 0 {
		t.Fatal("no call observed in flight")
	}
}

func TestSharedThresholdMonotone(t *testing.T) {
	th := NewSharedThreshold(math.Inf(1))
	if !math.IsInf(th.Load(), 1) {
		t.Fatalf("fresh threshold = %v, want +Inf", th.Load())
	}
	th.Tighten(5)
	if th.Load() != 5 {
		t.Fatalf("after Tighten(5): %v", th.Load())
	}
	th.Tighten(9) // looser: ignored
	if th.Load() != 5 {
		t.Fatalf("Tighten(9) loosened the threshold to %v", th.Load())
	}
	th.Tighten(5) // equal: no-op
	if th.Load() != 5 {
		t.Fatalf("Tighten(5) changed the threshold to %v", th.Load())
	}

	// Concurrent tightening converges to the minimum.
	th = NewSharedThreshold(math.Inf(1))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 1000; i++ {
				th.Tighten(1 + rng.Float64()*100)
			}
			th.Tighten(float64(w) + 0.5)
		}(w)
	}
	wg.Wait()
	if th.Load() != 0.5 {
		t.Fatalf("concurrent Tighten converged to %v, want 0.5", th.Load())
	}
}

func TestCloneAddRemoveIsolation(t *testing.T) {
	c := testCore(t, 4, 40)
	ctx := context.Background()
	q := series.Series{ID: "q", Values: c.Series(0).Values}
	before, _, err := c.Search(ctx, q, Params{K: 4, Exclude: -1, Threshold: math.Inf(1)})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}

	// CloneAdd: the clone gains the series, the receiver is untouched.
	extra := series.Series{ID: "extra", Label: 7, Values: c.Series(1).Values}
	nc, err := c.CloneAdd(extra)
	if err != nil {
		t.Fatalf("CloneAdd: %v", err)
	}
	if c.Len() != 4 || nc.Len() != 5 {
		t.Fatalf("lengths after CloneAdd: receiver %d (want 4), clone %d (want 5)", c.Len(), nc.Len())
	}
	if _, ok := c.ids["extra"]; ok {
		t.Fatal("CloneAdd mutated the receiver's ids map")
	}
	checkIDsConsistent(t, nc)
	if _, err := nc.CloneAdd(extra); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate CloneAdd: got %v, want ErrDuplicateID", err)
	}

	// CloneRemove: reports the vacated position; the receiver keeps it.
	nc2, pos, err := c.CloneRemove("s-01")
	if err != nil {
		t.Fatalf("CloneRemove: %v", err)
	}
	if pos != 1 {
		t.Fatalf("CloneRemove position = %d, want 1", pos)
	}
	if c.Len() != 4 || nc2.Len() != 3 {
		t.Fatalf("lengths after CloneRemove: receiver %d (want 4), clone %d (want 3)", c.Len(), nc2.Len())
	}
	checkIDsConsistent(t, c)
	checkIDsConsistent(t, nc2)
	if _, _, err := c.CloneRemove("nope"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown CloneRemove: got %v, want ErrUnknownID", err)
	}

	// The receiver's search results are unchanged by either clone.
	after, _, err := c.Search(ctx, q, Params{K: 4, Exclude: -1, Threshold: math.Inf(1)})
	if err != nil {
		t.Fatalf("Search after clones: %v", err)
	}
	if len(before) != len(after) {
		t.Fatalf("receiver results changed: %d -> %d neighbours", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("receiver result %d changed: %+v -> %+v", i, before[i], after[i])
		}
	}
}

// TestParamsZeroValueGuards regression-pins the two zero-value traps a
// Params struct literal used to spring: Threshold 0 silently emptying
// results, and Exclude 0 silently dropping position 0.
func TestParamsZeroValueGuards(t *testing.T) {
	dp := DefaultParams()
	if dp.K != 1 || dp.Exclude != -1 || !math.IsInf(dp.Threshold, 1) || dp.ThresholdSet {
		t.Fatalf("DefaultParams = %+v", dp)
	}

	cases := []struct {
		name string
		p    Params
		want float64
	}{
		{"zero value", Params{}, math.Inf(1)},
		{"explicit zero", Params{Threshold: 0, ThresholdSet: true}, 0},
		{"legacy nonzero, unset", Params{Threshold: 2.5}, 2.5},
		{"set nonzero", Params{Threshold: 2.5, ThresholdSet: true}, 2.5},
		{"NaN unset", Params{Threshold: math.NaN()}, math.Inf(1)},
		{"NaN set", Params{Threshold: math.NaN(), ThresholdSet: true}, math.Inf(1)},
	}
	for _, tc := range cases {
		if got := tc.p.EffectiveThreshold(); got != tc.want {
			t.Errorf("%s: EffectiveThreshold = %v, want %v", tc.name, got, tc.want)
		}
	}

	// End to end: a zero-value-ish Params (K set, rest defaulted by
	// omission) must neither empty the results nor exclude position 0.
	c := testCore(t, 5, 40)
	q := series.Series{ID: "q", Values: c.Series(0).Values}
	nbs, _, err := c.Search(context.Background(), q, Params{K: 2, Exclude: -1})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(nbs) != 2 {
		t.Fatalf("Threshold-0-unset search returned %d neighbours, want 2", len(nbs))
	}
	if nbs[0].Pos != 0 || nbs[0].Distance != 0 {
		t.Fatalf("nearest = %+v, want position 0 at distance 0", nbs[0])
	}

	// And an explicit zero threshold really means exact matches only.
	nbs, _, err = c.Search(context.Background(), q, Params{Threshold: 0, ThresholdSet: true, Exclude: -1})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(nbs) != 1 || nbs[0].Pos != 0 || nbs[0].Distance != 0 {
		t.Fatalf("explicit-0 range search = %+v, want exactly position 0 at distance 0", nbs)
	}
}

// TestSearchNilContext pins nil-context tolerance at the core layer.
func TestSearchNilContext(t *testing.T) {
	c := testCore(t, 4, 40)
	q := series.Series{ID: "q", Values: c.Series(2).Values}
	nbs, _, err := c.Search(nil, q, DefaultParams()) //nolint:staticcheck // nil ctx tolerance is the contract under test
	if err != nil {
		t.Fatalf("nil-ctx Search: %v", err)
	}
	if len(nbs) != 1 || nbs[0].Pos != 2 {
		t.Fatalf("nil-ctx Search = %+v, want position 2", nbs)
	}
}
