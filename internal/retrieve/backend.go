package retrieve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sdtw/internal/band"
	"sdtw/internal/core"
	"sdtw/internal/dtw"
	"sdtw/internal/series"
)

// Result is the outcome of one backend distance computation, the
// per-candidate accounting the cascade folds into Stats.
type Result struct {
	// Distance is the backend's distance — or, when Abandoned, a valid
	// lower bound on it.
	Distance float64
	// Abandoned reports the computation stopped early because every
	// continuation already exceeded the caller's budget.
	Abandoned bool
	// CellsFilled is the number of DTW grid cells evaluated; BandCells is
	// the constraint band's total, so BandCells − CellsFilled is the work
	// abandonment skipped.
	CellsFilled, BandCells int
	// MatchTime and DPTime are the backend's per-stage durations.
	MatchTime, DPTime time.Duration
}

// Backend is the distance family behind an index: it owns the constraint
// geometry (and any per-series caches) while the shared cascade in Core
// owns candidate ordering, lower-bound pruning, the best-so-far
// threshold, and the worker pool. Implementations must be safe for
// concurrent Distance calls; Admit and Forget are only called under the
// Core's write lock.
//
// The two in-tree implementations are the sDTW engine (salient-feature
// banded DTW) and the Sakoe-Chiba windowed exact-DTW pipeline; the
// interface is deliberately small so further distance/constraint families
// (amerced DTW penalties, GPU-batched sDTW) can slot in without touching
// the cascade.
type Backend interface {
	// Fingerprint identifies the backend configuration for persistence:
	// two backends with equal fingerprints produce identical distances
	// over identical data.
	Fingerprint() string
	// Admit validates a series joining the collection and warms any
	// per-series caches (feature extraction, for the sDTW engine).
	Admit(s series.Series) error
	// Forget drops cached state held for a series leaving the collection.
	Forget(s series.Series)
	// CheckQuery validates a query against backend constraints (the
	// windowed backend requires the indexed length).
	CheckQuery(q series.Series) error
	// Cascade reports whether the LB_Kim/LB_Keogh bounds are admissible
	// lower bounds for this backend's distance. When false the Core
	// degrades to an exact parallel scan.
	Cascade() bool
	// Abandonable reports whether threshold-aware early abandonment
	// inside the dynamic program is admissible (it assumes a non-negative
	// point cost).
	Abandonable() bool
	// EnvelopeRadius returns the warping radius at which an LB_Keogh
	// envelope over a series of length m lower-bounds this backend's
	// distance.
	EnvelopeRadius(m int) int
	// Distance computes the backend distance between query and candidate
	// with threshold-aware early abandonment against budget (+Inf never
	// abandons). A cancelled ctx stops the computation mid-band with
	// ctx.Err().
	Distance(ctx context.Context, q, c series.Series, budget float64) (Result, error)
}

// engineBackend serves sDTW banded distances through a shared core.Engine
// (salient-feature caching, scratch pooling, symmetric canonicalisation).
type engineBackend struct {
	engine      *core.Engine
	bandCfg     band.Config
	fingerprint string
	customDist  bool
}

// NewEngineBackend wraps an sDTW engine as a cascade backend. fingerprint
// must deterministically encode every engine option that affects
// distances (the public layer derives it from its Options). customDist
// marks a caller-supplied point distance, which voids the admissibility
// proofs of the lower bounds and of early abandonment.
func NewEngineBackend(engine *core.Engine, fingerprint string, customDist bool) Backend {
	return &engineBackend{
		engine:      engine,
		bandCfg:     engine.Options().Band,
		fingerprint: fingerprint,
		customDist:  customDist,
	}
}

func (b *engineBackend) Fingerprint() string { return b.fingerprint }

func (b *engineBackend) Admit(s series.Series) error {
	// Pay the paper's one-time indexing cost (§3.4) up front: extract and
	// cache the series' salient features so no query pays it.
	_, err := b.engine.Features(s)
	return err
}

func (b *engineBackend) Forget(s series.Series) { b.engine.Evict(s.ID) }

func (b *engineBackend) CheckQuery(q series.Series) error { return nil }

func (b *engineBackend) Cascade() bool     { return !b.customDist }
func (b *engineBackend) Abandonable() bool { return !b.customDist }

func (b *engineBackend) EnvelopeRadius(m int) int { return band.EnvelopeRadius(b.bandCfg, m) }

func (b *engineBackend) Distance(ctx context.Context, q, c series.Series, budget float64) (Result, error) {
	res, err := b.engine.DistanceUnderCtx(ctx, q, c, budget)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Distance:    res.Distance,
		Abandoned:   res.Abandoned,
		CellsFilled: res.CellsFilled,
		BandCells:   res.BandCells,
		MatchTime:   res.MatchTime,
		DPTime:      res.DPTime,
	}, nil
}

// windowedBackend serves exact (optionally Sakoe-Chiba-windowed) DTW over
// an equal-length collection: the classical pipeline of Keogh's exact
// indexing (the paper's reference [7]). The band is built once at exactly
// the envelope radius, which is what keeps LB_Keogh admissible for the
// windowed distance.
type windowedBackend struct {
	length    int
	radius    int // effective: length when unconstrained
	band      dtw.Band
	bandCells int
	scratch   sync.Pool // *dtw.Workspace, one per concurrent Distance
}

// NewWindowedBackend builds the windowed exact-DTW backend for series of
// the given length. radius is the Sakoe-Chiba warping window in samples;
// radius < 0 (or >= length) selects unconstrained DTW with full-width
// envelopes. The effective radius is returned alongside the backend.
func NewWindowedBackend(length, radius int) (Backend, int, error) {
	if length <= 0 {
		return nil, 0, fmt.Errorf("windowed backend needs a positive series length, got %d: %w", length, ErrEmptySeries)
	}
	if radius < 0 || radius >= length {
		radius = length // unconstrained
	}
	b := &windowedBackend{length: length, radius: radius}
	if radius < length {
		// The band must sit at exactly the envelope radius: LB_Keogh at
		// radius r does not lower-bound windowed DTW at radius r+1, and
		// deriving the band from a width fraction (whose ceil rounding
		// yields radius r+1) silently drops true nearest neighbours.
		b.band = dtw.SakoeChibaRadius(length, length, radius)
	} else {
		b.band = dtw.FullBand(length, length)
	}
	b.bandCells = b.band.Cells()
	b.scratch.New = func() any { return new(dtw.Workspace) }
	return b, radius, nil
}

func (b *windowedBackend) Fingerprint() string {
	return fmt.Sprintf("windowed/v1|len=%d|radius=%d", b.length, b.radius)
}

func (b *windowedBackend) Admit(s series.Series) error {
	if s.Len() != b.length {
		return fmt.Errorf("series %q has length %d, want %d (windowed search needs equal lengths): %w",
			s.ID, s.Len(), b.length, ErrLengthMismatch)
	}
	return nil
}

// AdmitCold is the length check for store-restored series: the metadata
// alone decides admissibility, so cold values stay on disk.
func (b *windowedBackend) AdmitCold(id string, n int) error {
	if n != b.length {
		return fmt.Errorf("series %q has length %d, want %d (windowed search needs equal lengths): %w",
			id, n, b.length, ErrLengthMismatch)
	}
	return nil
}

func (b *windowedBackend) Forget(series.Series) {}

func (b *windowedBackend) CheckQuery(q series.Series) error {
	if q.Len() != b.length {
		return fmt.Errorf("query length %d != indexed length %d: %w", q.Len(), b.length, ErrLengthMismatch)
	}
	return nil
}

func (b *windowedBackend) Cascade() bool     { return true }
func (b *windowedBackend) Abandonable() bool { return true }

func (b *windowedBackend) EnvelopeRadius(int) int { return b.radius }

func (b *windowedBackend) Distance(ctx context.Context, q, c series.Series, budget float64) (Result, error) {
	ws := b.scratch.Get().(*dtw.Workspace)
	defer b.scratch.Put(ws)
	dpStart := time.Now()
	d, cells, abandoned, err := dtw.BandedAbandonCtx(ctx, q.Values, c.Values, b.band, nil, budget, ws)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Distance:    d,
		Abandoned:   abandoned,
		CellsFilled: cells,
		BandCells:   b.bandCells,
		DPTime:      time.Since(dpStart),
	}, nil
}
