package vfs

import (
	"errors"
	"testing"
)

func writeString(t *testing.T, f File, s string) {
	t.Helper()
	if _, err := f.Write([]byte(s)); err != nil {
		t.Fatalf("write %q: %v", s, err)
	}
}

func readAll(t *testing.T, fs FS, name string) string {
	t.Helper()
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(data)
}

func TestFaultFSSyncedContentSurvivesCrash(t *testing.T) {
	fs := NewFaultFS(1)
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "hello")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	writeString(t, f, " world")

	fs.Crash()
	if _, err := fs.ReadFile("d/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read while crashed: %v, want ErrCrashed", err)
	}
	fs.Recover()

	got := readAll(t, fs, "d/a")
	if len(got) < len("hello") || got[:5] != "hello" {
		t.Fatalf("synced prefix lost: %q", got)
	}
	if len(got) > len("hello world") {
		t.Fatalf("content grew: %q", got)
	}
}

func TestFaultFSUnsyncedNameVanishes(t *testing.T) {
	fs := NewFaultFS(2)
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "data")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// No SyncDir: the name binding is not durable.
	fs.Crash()
	fs.Recover()
	if fs.Exists("d/a") {
		t.Fatal("unsynced file name survived the crash")
	}
}

func TestFaultFSRenameDurability(t *testing.T) {
	fs := NewFaultFS(3)
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	// Durable original target.
	f, err := fs.Create("d/target")
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "old")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	// Replace via temp + rename, but crash before SyncDir.
	tmp, err := fs.Create("d/tmp")
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, tmp, "new")
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("d/tmp", "d/target"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Recover()
	if got := readAll(t, fs, "d/target"); got != "old" {
		t.Fatalf("target before SyncDir = %q, want old content", got)
	}

	// Same again, with SyncDir: the rename sticks.
	tmp, err = fs.Create("d/tmp")
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, tmp, "new")
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("d/tmp", "d/target"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Recover()
	if got := readAll(t, fs, "d/target"); got != "new" {
		t.Fatalf("target after SyncDir = %q, want new content", got)
	}
	if fs.Exists("d/tmp") {
		t.Fatal("renamed-away temp still exists")
	}
}

func TestFaultFSRemoveDurability(t *testing.T) {
	fs := NewFaultFS(4)
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "data")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("d/a"); err != nil {
		t.Fatal(err)
	}
	// Crash before SyncDir: the unlink is not durable.
	fs.Crash()
	fs.Recover()
	if !fs.Exists("d/a") {
		t.Fatal("durable file vanished after unsynced remove")
	}
	if err := fs.Remove("d/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Recover()
	if fs.Exists("d/a") {
		t.Fatal("removed file survived synced unlink")
	}
}

func TestFaultFSCrashAtTearsWrite(t *testing.T) {
	// Sweep the crash point over a two-write sequence; the surviving
	// contents must always be a prefix of what was written, and anything
	// synced must survive intact.
	for n := 1; n <= 6; n++ {
		fs := NewFaultFS(int64(n))
		if err := fs.MkdirAll("d"); err != nil {
			t.Fatal(err)
		}
		fs.CrashAt(n)
		crashed := func(err error) bool { return errors.Is(err, ErrCrashed) }
		run := func() error {
			f, err := fs.Create("d/a") // op 1
			if err != nil {
				return err
			}
			if _, err := f.Write([]byte("aaaa")); err != nil { // op 2
				return err
			}
			if err := f.Sync(); err != nil { // op 3
				return err
			}
			if err := fs.SyncDir("d"); err != nil { // op 4
				return err
			}
			if _, err := f.Write([]byte("bbbb")); err != nil { // op 5
				return err
			}
			return f.Sync() // op 6
		}
		err := run()
		if n <= 6 && err == nil {
			t.Fatalf("crashAt(%d): sequence completed", n)
		}
		if !crashed(err) {
			t.Fatalf("crashAt(%d): err = %v, want ErrCrashed", n, err)
		}
		fs.Recover()
		if n <= 4 && fs.Exists("d/a") == (n < 4) {
			// Name is durable only once op 4 (SyncDir) completed, i.e. n > 4.
			if n < 4 && fs.Exists("d/a") {
				t.Fatalf("crashAt(%d): name durable too early", n)
			}
		}
		if !fs.Exists("d/a") {
			continue
		}
		got := readAll(t, fs, "d/a")
		want := "aaaabbbb"
		if len(got) > len(want) || want[:len(got)] != got {
			t.Fatalf("crashAt(%d): content %q not a prefix of %q", n, got, want)
		}
		if n >= 5 && len(got) < 4 {
			t.Fatalf("crashAt(%d): synced prefix truncated to %q", n, got)
		}
	}
}

func TestFaultFSFailAt(t *testing.T) {
	fs := NewFaultFS(5)
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	fs.FailAt(1, boom)
	if _, err := fs.Create("d/a"); !errors.Is(err, boom) {
		t.Fatalf("injected op: %v, want boom", err)
	}
	// One-shot: the next attempt succeeds.
	if _, err := fs.Create("d/a"); err != nil {
		t.Fatalf("after injection: %v", err)
	}
}

func TestFaultFSHandleSurvivesRemove(t *testing.T) {
	fs := NewFaultFS(6)
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "payload")
	r, err := fs.Open("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("d/a"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after unlink: %v", err)
	}
	if string(buf) != "payload" {
		t.Fatalf("read %q after unlink", buf)
	}
}

func TestFaultFSTruncateRevertsWithoutSync(t *testing.T) {
	fs := NewFaultFS(7)
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "0123456789")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("d/a", 4); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Recover()
	// The truncate diverged from the synced snapshot without a sync, so
	// the snapshot wins.
	if got := readAll(t, fs, "d/a"); got != "0123456789" {
		t.Fatalf("unsynced truncate persisted: %q", got)
	}
}

func TestOsFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS()
	if err := fs.MkdirAll(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	name := dir + "/sub/file"
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "content")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, fs, name); got != "content" {
		t.Fatalf("round trip: %q", got)
	}
	af, size, err := fs.OpenAppend(name)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len("content")) {
		t.Fatalf("append offset %d", size)
	}
	writeString(t, af, "+more")
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(dir + "/sub")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "file" {
		t.Fatalf("readdir: %v", names)
	}
	if err := fs.Rename(name, dir+"/sub/file2"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists(name) || !fs.Exists(dir+"/sub/file2") {
		t.Fatal("rename not visible")
	}
	if err := fs.Truncate(dir+"/sub/file2", 7); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, fs, dir+"/sub/file2"); got != "content" {
		t.Fatalf("after truncate: %q", got)
	}
	if err := fs.Remove(dir + "/sub/file2"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists(dir + "/sub/file2") {
		t.Fatal("remove not visible")
	}
}
