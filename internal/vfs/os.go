package vfs

import (
	"errors"
	"os"
	"syscall"
)

// OsFS is the production FS: a passthrough to the os package. SyncDir
// opens the directory and fsyncs it, which is how POSIX makes directory
// entries durable.
type OsFS struct{}

// OS returns the passthrough filesystem.
func OS() FS { return OsFS{} }

// Create implements FS.
func (OsFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}

// Open implements FS.
func (OsFS) Open(name string) (File, error) { return os.Open(name) }

// OpenAppend implements FS.
func (OsFS) OpenAppend(name string) (File, int64, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// ReadFile implements FS.
func (OsFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS.
func (OsFS) WriteFile(name string, data []byte) error {
	return os.WriteFile(name, data, 0o644)
}

// Rename implements FS.
func (OsFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OsFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll implements FS.
func (OsFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Exists implements FS.
func (OsFS) Exists(name string) bool {
	_, err := os.Stat(name)
	return err == nil
}

// Size implements FS.
func (OsFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ReadDir implements FS.
func (OsFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

// SyncDir implements FS: fsync on the directory itself.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		// Some filesystems refuse fsync on directories (EINVAL); that is
		// not an I/O failure, so the commit proceeds — the same stance
		// journaled stores take.
		if errors.Is(syncErr, syscall.EINVAL) {
			return nil
		}
		return syncErr
	}
	return closeErr
}
