package vfs

import (
	"errors"
	"fmt"
	"hash/fnv"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCrashed reports an operation on a FaultFS after its simulated
// power cut: the machine is off until Recover.
var ErrCrashed = errors.New("vfs: simulated power cut")

// FaultFS is an in-memory filesystem for crash-consistency testing. It
// tracks, for every file, both the volatile contents the process sees
// and the durable contents a power cut would preserve:
//
//   - File.Sync snapshots the file's current contents as durable.
//   - SyncDir makes the directory's current entries (creations,
//     renames, removals) durable.
//   - CrashAt(n) cuts power during the nth mutating operation: the
//     in-flight write is torn (a prefix survives), everything not
//     synced is dropped, and every later operation fails with
//     ErrCrashed until Recover rebuilds the durable view.
//   - FailAt(n, err) injects err at the nth mutating operation without
//     crashing, for exercising error-return paths.
//
// Mutating operations (Create, OpenAppend, Write, WriteFile, Rename,
// Remove, Truncate, MkdirAll, Sync, SyncDir) are counted; reads are
// not — a crash "during a read" is indistinguishable from a crash at
// the next mutation. Directories are durable on creation: the store
// creates its directory once, and losing it would only re-test the
// trivial nothing-survives case.
//
// The surviving contents of an unsynced suffix are chosen
// deterministically from the FaultFS seed, the file name and the
// suffix length, so a crash sweep is reproducible run to run.
type FaultFS struct {
	mu   sync.Mutex
	seed uint64

	files map[string]*memNode
	dirs  map[string]bool
	// durBind is the durable namespace: which node each name resolves
	// to after a crash. Updated only by SyncDir (and MkdirAll for
	// directories, per the policy above).
	durBind map[string]*memNode

	ops     int
	crashAt int
	failAt  int
	failErr error
	crashed bool
}

type memNode struct {
	data   []byte
	synced []byte // snapshot at last Sync; nil if never synced
}

// NewFaultFS returns an empty FaultFS. The seed fixes which prefix of
// each unsynced suffix survives a crash.
func NewFaultFS(seed int64) *FaultFS {
	return &FaultFS{
		seed:    uint64(seed),
		files:   make(map[string]*memNode),
		dirs:    map[string]bool{".": true, "/": true},
		durBind: make(map[string]*memNode),
	}
}

// CrashAt arms a power cut during the nth mutating operation from now
// (1-based). n <= 0 disarms.
func (f *FaultFS) CrashAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.crashAt = 0
		return
	}
	f.crashAt = f.ops + n
}

// FailAt injects err at the nth mutating operation from now (1-based,
// one-shot): the operation is not applied, err is returned, and later
// operations proceed normally.
func (f *FaultFS) FailAt(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = f.ops + n
	f.failErr = err
}

// Crash cuts power now.
func (f *FaultFS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// Crashed reports whether the power is (still) cut.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops returns the number of mutating operations performed so far.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Recover turns the machine back on: the volatile namespace is rebuilt
// from the durable one, each surviving file holds its synced contents
// plus a deterministic prefix of whatever unsynced suffix the page
// cache happened to reach, and operations work again. Open handles
// from before the crash keep their stale nodes — reopen everything,
// as a restarted process would.
func (f *FaultFS) Recover() {
	f.mu.Lock()
	defer f.mu.Unlock()
	files := make(map[string]*memNode, len(f.durBind))
	for name, node := range f.durBind {
		content := f.survived(name, node)
		files[name] = &memNode{data: content, synced: clone(content)}
	}
	f.files = files
	durBind := make(map[string]*memNode, len(files))
	for name, node := range files {
		durBind[name] = node
	}
	f.durBind = durBind
	f.crashed = false
	f.crashAt = 0
}

// survived resolves a node's post-crash contents: the synced snapshot,
// plus — when the volatile contents extend it — a deterministic prefix
// of the unsynced suffix (torn tail). Contents that diverged from the
// snapshot (an unsynced truncate or rewrite) revert to the snapshot.
func (f *FaultFS) survived(name string, node *memNode) []byte {
	synced := node.synced
	if len(node.data) >= len(synced) && string(node.data[:len(synced)]) == string(synced) {
		tail := node.data[len(synced):]
		keep := 0
		if len(tail) > 0 {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d|%s|%d", f.seed, name, len(tail))
			keep = int(h.Sum64() % uint64(len(tail)+1))
		}
		out := make([]byte, 0, len(synced)+keep)
		out = append(out, synced...)
		return append(out, tail[:keep]...)
	}
	return clone(synced)
}

func clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// op gates one mutating operation: it counts it, fires an armed fault
// or crash, and reports whether the operation should proceed. Callers
// hold f.mu. tear receives the torn prefix length for the crashing
// write (-1 for a full write).
func (f *FaultFS) op(name string) (tear int, err error) {
	if f.crashed {
		return -1, ErrCrashed
	}
	f.ops++
	if f.failAt > 0 && f.ops == f.failAt {
		f.failAt = 0
		return -1, f.failErr
	}
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.crashed = true
		h := fnv.New64a()
		fmt.Fprintf(h, "tear|%d|%s|%d", f.seed, name, f.ops)
		return int(h.Sum64()), ErrCrashed
	}
	return -1, nil
}

// readable gates one read operation (not counted, but dead after a
// crash).
func (f *FaultFS) readable() error {
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func notExist(name string) error {
	return fmt.Errorf("vfs: %s: %w", name, iofs.ErrNotExist)
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if _, err := f.op(name); err != nil {
		return nil, err
	}
	if _, ok := f.files[name]; ok {
		return nil, fmt.Errorf("vfs: %s already exists", name)
	}
	node := &memNode{}
	f.files[name] = node
	return &faultFile{fs: f, name: name, node: node}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if err := f.readable(); err != nil {
		return nil, err
	}
	node, ok := f.files[name]
	if !ok {
		return nil, notExist(name)
	}
	return &faultFile{fs: f, name: name, node: node, readOnly: true}, nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(name string) (File, int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if _, err := f.op(name); err != nil {
		return nil, 0, err
	}
	node, ok := f.files[name]
	if !ok {
		node = &memNode{}
		f.files[name] = node
	}
	return &faultFile{fs: f, name: name, node: node}, int64(len(node.data)), nil
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if err := f.readable(); err != nil {
		return nil, err
	}
	node, ok := f.files[name]
	if !ok {
		return nil, notExist(name)
	}
	return clone(node.data), nil
}

// WriteFile implements FS. Like os.WriteFile it leaves the new
// contents unsynced: a crash may drop or tear them.
func (f *FaultFS) WriteFile(name string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	tear, err := f.op(name)
	if err != nil {
		if errors.Is(err, ErrCrashed) && tear >= 0 {
			// The torn write reaches a fresh or truncated file.
			node, ok := f.files[name]
			if !ok {
				node = &memNode{}
				f.files[name] = node
			}
			node.data = clone(data[:tear%(len(data)+1)])
		}
		return err
	}
	node, ok := f.files[name]
	if !ok {
		node = &memNode{}
		f.files[name] = node
	}
	node.data = clone(data)
	return nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	if _, err := f.op(newname); err != nil {
		return err
	}
	node, ok := f.files[oldname]
	if !ok {
		return notExist(oldname)
	}
	delete(f.files, oldname)
	f.files[newname] = node
	return nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if _, err := f.op(name); err != nil {
		return err
	}
	if _, ok := f.files[name]; !ok {
		return notExist(name)
	}
	delete(f.files, name)
	return nil
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if _, err := f.op(name); err != nil {
		return err
	}
	node, ok := f.files[name]
	if !ok {
		return notExist(name)
	}
	if size < 0 {
		return fmt.Errorf("vfs: truncate %s to %d", name, size)
	}
	for int64(len(node.data)) < size {
		node.data = append(node.data, 0)
	}
	node.data = clone(node.data[:size])
	return nil
}

// MkdirAll implements FS. Directories are durable on creation.
func (f *FaultFS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = filepath.Clean(dir)
	if _, err := f.op(dir); err != nil {
		return err
	}
	for d := dir; ; d = filepath.Dir(d) {
		f.dirs[d] = true
		if d == filepath.Dir(d) {
			break
		}
	}
	return nil
}

// Exists implements FS.
func (f *FaultFS) Exists(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if f.crashed {
		return false
	}
	if _, ok := f.files[name]; ok {
		return true
	}
	return f.dirs[name]
}

// Size implements FS.
func (f *FaultFS) Size(name string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if err := f.readable(); err != nil {
		return 0, err
	}
	node, ok := f.files[name]
	if !ok {
		return 0, notExist(name)
	}
	return int64(len(node.data)), nil
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = filepath.Clean(dir)
	if err := f.readable(); err != nil {
		return nil, err
	}
	if !f.dirs[dir] {
		return nil, notExist(dir)
	}
	var names []string
	for name := range f.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	for d := range f.dirs {
		if d != dir && filepath.Dir(d) == dir {
			names = append(names, filepath.Base(d))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: the directory's current entries become the
// durable ones.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = filepath.Clean(dir)
	if _, err := f.op(dir); err != nil {
		return err
	}
	if !f.dirs[dir] {
		return notExist(dir)
	}
	for name := range f.durBind {
		if filepath.Dir(name) != dir {
			continue
		}
		if _, ok := f.files[name]; !ok {
			delete(f.durBind, name)
		}
	}
	for name, node := range f.files {
		if filepath.Dir(name) == dir {
			f.durBind[name] = node
		}
	}
	return nil
}

// DurableNames lists the names that would survive a crash right now
// (test introspection).
func (f *FaultFS) DurableNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.durBind))
	for name := range f.durBind {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// faultFile is an open FaultFS handle. Reads and writes see the
// volatile node; handles survive Remove/Rename like POSIX descriptors.
type faultFile struct {
	fs       *FaultFS
	name     string
	node     *memNode
	readOnly bool
	closed   bool
}

func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("vfs: %s: write on closed file", h.name)
	}
	if h.readOnly {
		return 0, fmt.Errorf("vfs: %s: write on read-only file", h.name)
	}
	tear, err := h.fs.op(h.name)
	if err != nil {
		if errors.Is(err, ErrCrashed) && tear >= 0 {
			h.node.data = append(h.node.data, p[:tear%(len(p)+1)]...)
		}
		return 0, err
	}
	h.node.data = append(h.node.data, p...)
	return len(p), nil
}

func (h *faultFile) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("vfs: %s: read on closed file", h.name)
	}
	if err := h.fs.readable(); err != nil {
		return 0, err
	}
	if off < 0 || off > int64(len(h.node.data)) {
		return 0, fmt.Errorf("vfs: %s: read at %d beyond %d bytes", h.name, off, len(h.node.data))
	}
	n := copy(p, h.node.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("vfs: %s: short read at %d: %w", h.name, off, errShortRead)
	}
	return n, nil
}

var errShortRead = errors.New("short read")

func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("vfs: %s: sync on closed file", h.name)
	}
	if _, err := h.fs.op(h.name); err != nil {
		return err
	}
	h.node.synced = clone(h.node.data)
	return nil
}

func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
