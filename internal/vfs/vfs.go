// Package vfs is the filesystem seam under the segment store: a small
// interface covering exactly the operations the storage layer performs,
// with two implementations. OsFS passes through to the os package and
// serves production traffic. FaultFS is an in-memory filesystem that
// injects errors at the Nth operation, tears writes mid-record, and
// simulates power cuts by dropping everything not explicitly synced —
// so every crash-recovery path in the store is drivable from a test.
//
// The interface makes durability explicit where POSIX leaves it
// implicit: File.Sync persists a file's contents, and SyncDir persists
// a directory's entries (creations, renames, removals). Code that skips
// either barrier is exactly as fragile under FaultFS power cuts as it
// would be on a real disk.
package vfs

import "io"

// File is an open file handle. Writers append (the store never seeks a
// write handle); readers use ReadAt and may keep reading after the file
// is removed or renamed away, matching POSIX unlink semantics.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync persists every write made through this handle (fsync). Until
	// it returns, a power cut may drop or tear the unsynced suffix.
	Sync() error
}

// FS is the set of filesystem operations the storage layer performs.
// Paths are plain strings; implementations do not interpret them beyond
// directory separators.
type FS interface {
	// Create opens a fresh file for writing; it fails if the file
	// already exists (O_CREATE|O_EXCL|O_WRONLY).
	Create(name string) (File, error)
	// Open opens an existing file for reading (ReadAt).
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent, and
	// reports its current size (the append offset).
	OpenAppend(name string) (File, int64, error)
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// WriteFile replaces name's contents. Like os.WriteFile it does NOT
	// sync: a power cut after WriteFile may leave the file empty or
	// torn. Callers needing durability write through Create + Sync.
	WriteFile(name string, data []byte) error
	// Rename atomically replaces newname with oldname. The rename is
	// durable only after SyncDir on the containing directory.
	Rename(oldname, newname string) error
	// Remove unlinks name. Open handles keep reading.
	Remove(name string) error
	// Truncate cuts name to size bytes. Durable only after a Sync on an
	// open handle (or SyncDir, for implementations that journal it).
	Truncate(name string, size int64) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Exists reports whether name exists (file or directory).
	Exists(name string) bool
	// Size reports the file's current length in bytes.
	Size(name string) (int64, error)
	// ReadDir lists the names (not paths) of dir's entries.
	ReadDir(dir string) ([]string, error)
	// SyncDir persists dir's entries: files created, renamed or removed
	// in dir before the call survive a power cut after it.
	SyncDir(dir string) error
}
