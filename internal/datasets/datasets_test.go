package datasets

import (
	"math"
	"testing"

	"sdtw/internal/sift"
)

func TestGunMatchesTable1(t *testing.T) {
	d := Gun(Config{Seed: 1})
	if d.Length != 150 || d.Len() != 50 || d.NumClasses != 2 {
		t.Fatalf("Gun shape = (%d,%d,%d), want (150,50,2)", d.Length, d.Len(), d.NumClasses)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceMatchesTable1(t *testing.T) {
	d := Trace(Config{Seed: 1})
	if d.Length != 275 || d.Len() != 100 || d.NumClasses != 4 {
		t.Fatalf("Trace shape = (%d,%d,%d), want (275,100,4)", d.Length, d.Len(), d.NumClasses)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFiftyWordsMatchesTable1(t *testing.T) {
	d := FiftyWords(Config{Seed: 1})
	if d.Length != 270 || d.Len() != 450 || d.NumClasses != 50 {
		t.Fatalf("50Words shape = (%d,%d,%d), want (270,450,50)", d.Length, d.Len(), d.NumClasses)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, gen := range []func(Config) *Dataset{Gun, Trace, FiftyWords} {
		a := gen(Config{Seed: 42, SeriesPerClass: 2})
		b := gen(Config{Seed: 42, SeriesPerClass: 2})
		if a.Len() != b.Len() {
			t.Fatal("sizes differ for equal seeds")
		}
		for i := range a.Series {
			for j := range a.Series[i].Values {
				if a.Series[i].Values[j] != b.Series[i].Values[j] {
					t.Fatalf("%s: seed 42 not deterministic at series %d sample %d", a.Name, i, j)
				}
			}
		}
		c := gen(Config{Seed: 43, SeriesPerClass: 2})
		same := true
		for j := range a.Series[0].Values {
			if a.Series[0].Values[j] != c.Series[0].Values[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical data", a.Name)
		}
	}
}

func TestConfigOverrides(t *testing.T) {
	d := Gun(Config{Seed: 1, SeriesPerClass: 3, Length: 99})
	if d.Length != 99 || d.Len() != 6 {
		t.Fatalf("overridden Gun shape = (%d,%d), want (99,6)", d.Length, d.Len())
	}
}

func TestClassBalance(t *testing.T) {
	d := Trace(Config{Seed: 5})
	groups := d.ByClass()
	if len(groups) != 4 {
		t.Fatalf("Trace has %d classes, want 4", len(groups))
	}
	for label, idxs := range groups {
		if len(idxs) != 25 {
			t.Fatalf("class %d has %d series, want 25", label, len(idxs))
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	for _, d := range All(Config{Seed: 7, SeriesPerClass: 3}) {
		seen := make(map[string]bool)
		for _, s := range d.Series {
			if s.ID == "" {
				t.Fatalf("%s has an unkeyed series", d.Name)
			}
			if seen[s.ID] {
				t.Fatalf("%s has duplicate ID %q", d.Name, s.ID)
			}
			seen[s.ID] = true
		}
	}
}

func TestValuesAndLabelsAccessors(t *testing.T) {
	d := Gun(Config{Seed: 1, SeriesPerClass: 2})
	if len(d.Values()) != 4 || len(d.Labels()) != 4 {
		t.Fatal("accessor lengths wrong")
	}
	if d.Labels()[0] != 0 || d.Labels()[3] != 1 {
		t.Fatalf("labels = %v", d.Labels())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := Gun(Config{Seed: 1, SeriesPerClass: 2})
	d.Series[0].Values[10] = math.NaN()
	if err := d.Validate(); err == nil {
		t.Fatal("NaN not caught")
	}
	d = Gun(Config{Seed: 1, SeriesPerClass: 2})
	d.Series[1].Label = 99
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range label not caught")
	}
	d = Gun(Config{Seed: 1, SeriesPerClass: 2})
	d.Series[2].Values = d.Series[2].Values[:10]
	if err := d.Validate(); err == nil {
		t.Fatal("length mismatch not caught")
	}
	empty := &Dataset{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty data set not caught")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Gun", "gun", "Trace", "trace", "50Words", "50words", "words"} {
		d, err := ByName(name, Config{Seed: 1, SeriesPerClass: 1})
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d.Len() == 0 {
			t.Fatalf("ByName(%q) empty", name)
		}
	}
	if _, err := ByName("nope", Config{}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestAllUsesDistinctSeeds(t *testing.T) {
	ds := All(Config{Seed: 9, SeriesPerClass: 1})
	if len(ds) != 3 {
		t.Fatalf("All returned %d data sets", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
	}
	if !names["Gun"] || !names["Trace"] || !names["50Words"] {
		t.Fatalf("All names = %v", names)
	}
}

// TestTable2ScaleProfile checks the reproduction target derived from the
// paper's Table 2: the Gun workload is proportionally richest in
// large-scale (rough) features and 50Words is proportionally poorest.
func TestTable2ScaleProfile(t *testing.T) {
	roughShare := func(d *Dataset) float64 {
		rough, total := 0, 0
		for _, s := range d.Series {
			feats, err := sift.Extract(s.Values, sift.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			c := sift.CountByClass(feats)
			rough += c[sift.Rough]
			total += len(feats)
		}
		if total == 0 {
			t.Fatalf("%s produced no features", d.Name)
		}
		return float64(rough) / float64(total)
	}
	gun := roughShare(Gun(Config{Seed: 3, SeriesPerClass: 5}))
	words := roughShare(FiftyWords(Config{Seed: 3, SeriesPerClass: 1}))
	if gun <= words {
		t.Fatalf("rough-share ordering violated: Gun %.3f <= 50Words %.3f", gun, words)
	}
}

func TestIntraClassSimilarity(t *testing.T) {
	// Same-class series must be closer (on average, in Euclidean terms)
	// than cross-class series, otherwise classification experiments are
	// meaningless.
	d := Trace(Config{Seed: 11, SeriesPerClass: 4})
	dist := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			diff := a[i] - b[i]
			s += diff * diff
		}
		return s
	}
	intra, cross := 0.0, 0.0
	ni, nc := 0, 0
	for i := range d.Series {
		for j := i + 1; j < len(d.Series); j++ {
			dd := dist(d.Series[i].Values, d.Series[j].Values)
			if d.Series[i].Label == d.Series[j].Label {
				intra += dd
				ni++
			} else {
				cross += dd
				nc++
			}
		}
	}
	if intra/float64(ni) >= cross/float64(nc) {
		t.Fatalf("intra-class distance %.3f not below cross-class %.3f", intra/float64(ni), cross/float64(nc))
	}
}
