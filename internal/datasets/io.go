package datasets

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sdtw/internal/series"
)

// WriteUCR writes the data set in the UCR text format: one series per
// line, the integer class label first, then the values, all
// comma-separated.
func WriteUCR(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, s := range d.Series {
		if _, err := fmt.Fprintf(bw, "%d", s.Label); err != nil {
			return fmt.Errorf("datasets: writing %s: %w", d.Name, err)
		}
		for _, v := range s.Values {
			if _, err := fmt.Fprintf(bw, ",%g", v); err != nil {
				return fmt.Errorf("datasets: writing %s: %w", d.Name, err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("datasets: writing %s: %w", d.Name, err)
		}
	}
	return bw.Flush()
}

// ReadUCR parses a data set in the UCR text format (comma- or
// whitespace-separated; label first). Labels are remapped onto a dense
// [0, NumClasses) range preserving their sorted order. All series must
// share one length.
func ReadUCR(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var rawLabels []int
	var rows [][]float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := splitUCRFields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("datasets: %s line %d: need a label and at least one value", name, lineNo)
		}
		labelF, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("datasets: %s line %d: bad label %q: %w", name, lineNo, fields[0], err)
		}
		vals := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: %s line %d field %d: %w", name, lineNo, i+2, err)
			}
			vals[i] = v
		}
		rawLabels = append(rawLabels, int(labelF))
		rows = append(rows, vals)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("datasets: reading %s: %w", name, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("datasets: %s: no series", name)
	}
	length := len(rows[0])
	for i, row := range rows {
		if len(row) != length {
			return nil, fmt.Errorf("datasets: %s series %d has length %d, want %d", name, i, len(row), length)
		}
	}
	dense := denseLabels(rawLabels)
	numClasses := 0
	for _, l := range dense {
		if l+1 > numClasses {
			numClasses = l + 1
		}
	}
	d := &Dataset{Name: name, NumClasses: numClasses, Length: length}
	for i, row := range rows {
		id := fmt.Sprintf("%s-%04d", strings.ToLower(name), i)
		d.Series = append(d.Series, series.New(id, dense[i], row))
	}
	return d, nil
}

func splitUCRFields(line string) []string {
	if strings.ContainsRune(line, ',') {
		parts := strings.Split(line, ",")
		out := parts[:0]
		for _, p := range parts {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	return strings.Fields(line)
}

// denseLabels maps arbitrary integer labels onto [0, k) preserving sorted
// label order.
func denseLabels(raw []int) []int {
	seen := make(map[int]bool, len(raw))
	var uniq []int
	for _, l := range raw {
		if !seen[l] {
			seen[l] = true
			uniq = append(uniq, l)
		}
	}
	// Insertion sort: label sets are tiny.
	for i := 1; i < len(uniq); i++ {
		for j := i; j > 0 && uniq[j] < uniq[j-1]; j-- {
			uniq[j], uniq[j-1] = uniq[j-1], uniq[j]
		}
	}
	remap := make(map[int]int, len(uniq))
	for i, l := range uniq {
		remap[l] = i
	}
	out := make([]int, len(raw))
	for i, l := range raw {
		out[i] = remap[l]
	}
	return out
}
