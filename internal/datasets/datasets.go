// Package datasets synthesises the three evaluation workloads of the paper
// (Table 1): Gun (length 150, 50 series, 2 classes), Trace (length 275,
// 100 series, 4 classes) and 50Words (length 270, 450 series, 50 classes).
//
// The original UCR archives are not redistributable and are unavailable in
// this offline build, so each generator produces class-structured series
// with the same lengths, cardinalities and class counts, and with
// feature-scale profiles qualitatively matching the paper's Table 2: Gun
// is dominated by a large plateau feature, Trace by transient steps and
// oscillations, and 50Words by many fine features with few coarse ones.
// Instances within a class differ by the deformations DTW is designed to
// absorb — monotone time warps, shifts, amplitude jitter and additive
// noise — which is exactly the regime the sDTW constraints target.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"sdtw/internal/series"
)

// Dataset is a labeled collection of equal-length time series.
type Dataset struct {
	// Name identifies the workload ("Gun", "Trace", "50Words", ...).
	Name string
	// Series holds the instances; Series[i].Label in [0, NumClasses).
	Series []series.Series
	// NumClasses is the number of distinct class labels.
	NumClasses int
	// Length is the common series length.
	Length int
}

// Len returns the number of series.
func (d *Dataset) Len() int { return len(d.Series) }

// Values returns the raw value slices, in order.
func (d *Dataset) Values() [][]float64 {
	out := make([][]float64, len(d.Series))
	for i, s := range d.Series {
		out[i] = s.Values
	}
	return out
}

// Labels returns the class labels, in order.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Series))
	for i, s := range d.Series {
		out[i] = s.Label
	}
	return out
}

// ByClass groups series indices by class label.
func (d *Dataset) ByClass() map[int][]int {
	groups := make(map[int][]int, d.NumClasses)
	for i, s := range d.Series {
		groups[s.Label] = append(groups[s.Label], i)
	}
	return groups
}

// Validate checks the structural invariants of the data set.
func (d *Dataset) Validate() error {
	if len(d.Series) == 0 {
		return fmt.Errorf("datasets: %s is empty", d.Name)
	}
	for i, s := range d.Series {
		if s.Len() != d.Length {
			return fmt.Errorf("datasets: %s series %d has length %d, want %d", d.Name, i, s.Len(), d.Length)
		}
		if s.Label < 0 || s.Label >= d.NumClasses {
			return fmt.Errorf("datasets: %s series %d has label %d outside [0,%d)", d.Name, i, s.Label, d.NumClasses)
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("datasets: %s series %d: %w", d.Name, i, err)
		}
	}
	return nil
}

// Config scales a generator's output, letting benchmarks run on smaller
// slices of a workload without changing its character.
type Config struct {
	// Seed makes generation deterministic. The same seed always yields
	// the same data set.
	Seed int64
	// SeriesPerClass overrides the paper's per-class count when positive.
	SeriesPerClass int
	// Length overrides the paper's series length when positive.
	Length int
	// NoiseSigma overrides the generator's default observation noise when
	// non-negative. Negative means the generator default.
	NoiseSigma float64
	// WarpStrength overrides the default time-warp severity in [0,1).
	// Negative means the generator default.
	WarpStrength float64
}

func (c Config) noise(def float64) float64 {
	if c.NoiseSigma < 0 {
		return def
	}
	if c.NoiseSigma == 0 {
		return def
	}
	return c.NoiseSigma
}

func (c Config) warp(def float64) float64 {
	if c.WarpStrength < 0 || c.WarpStrength == 0 {
		return def
	}
	return c.WarpStrength
}

// Gun generates the 2-class gun/point workload: length 150, 25 series per
// class (50 total). Both classes share a rise–plateau–fall profile (the
// actor raising and lowering an arm); the Gun class adds a draw overshoot
// at the start of the plateau and a re-holster dip after it, the classic
// discriminating artefacts of the UCR original.
func Gun(cfg Config) *Dataset {
	length := cfg.Length
	if length <= 0 {
		length = 150
	}
	perClass := cfg.SeriesPerClass
	if perClass <= 0 {
		perClass = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	noise := cfg.noise(0.01)
	warpStrength := cfg.warp(0.35)

	d := &Dataset{Name: "Gun", NumClasses: 2, Length: length}
	for class := 0; class < 2; class++ {
		for k := 0; k < perClass; k++ {
			proto := gunPrototype(rng, length, class == 0)
			warped := series.ApplyWarp(proto, series.RandomWarp(rng, 4, warpStrength), length)
			vals := series.AddNoise(rng, warped, noise)
			id := fmt.Sprintf("gun-%d-%02d", class, k)
			d.Series = append(d.Series, series.New(id, class, vals))
		}
	}
	return d
}

func gunPrototype(rng *rand.Rand, length int, isGun bool) []float64 {
	n := float64(length)
	// Wide onset/offset jitter creates the global shifts the paper's
	// adaptive-core constraints are designed to track (§3.3.3: fixed
	// cores assume global alignment; Gun and Trace violate it).
	rise := n * (0.15 + 0.15*rng.Float64())
	fall := n * (0.65 + 0.15*rng.Float64())
	edge := n * (0.05 + 0.02*rng.Float64())
	plateau := 0.9 + 0.1*rng.Float64()
	out := make([]float64, length)
	for i := range out {
		x := float64(i)
		v := plateau * (series.Sigmoid(x, rise, edge) - series.Sigmoid(x, fall, edge))
		if isGun {
			// Draw overshoot just after the rise and re-holster dip after
			// the fall: medium-scale features unique to the Gun class.
			v += series.GaussianBump(x, rise+edge, n*0.03, 0.18+0.05*rng.Float64())
			v -= series.GaussianBump(x, fall+edge*1.5, n*0.035, 0.22+0.05*rng.Float64())
		}
		out[i] = v
	}
	return out
}

// Trace generates the 4-class transient workload: length 275, 25 series
// per class (100 total). The classes model instrument transients: a plain
// step, a step preceded by an oscillation, a ramp collapsing in a step
// down, and a smooth bump followed by a step — step onset and deformation
// timing jittered per instance.
func Trace(cfg Config) *Dataset {
	length := cfg.Length
	if length <= 0 {
		length = 275
	}
	perClass := cfg.SeriesPerClass
	if perClass <= 0 {
		perClass = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	noise := cfg.noise(0.008)
	warpStrength := cfg.warp(0.3)

	d := &Dataset{Name: "Trace", NumClasses: 4, Length: length}
	for class := 0; class < 4; class++ {
		for k := 0; k < perClass; k++ {
			proto := tracePrototype(rng, length, class)
			warped := series.ApplyWarp(proto, series.RandomWarp(rng, 5, warpStrength), length)
			vals := series.AddNoise(rng, warped, noise)
			id := fmt.Sprintf("trace-%d-%02d", class, k)
			d.Series = append(d.Series, series.New(id, class, vals))
		}
	}
	return d
}

func tracePrototype(rng *rand.Rand, length, class int) []float64 {
	n := float64(length)
	onset := n * (0.35 + 0.20*rng.Float64())
	edge := n * (0.02 + 0.01*rng.Float64())
	out := make([]float64, length)
	for i := range out {
		x := float64(i)
		var v float64
		switch class {
		case 0: // plain step up
			v = series.Sigmoid(x, onset, edge)
		case 1: // oscillation before the step
			v = series.Sigmoid(x, onset, edge)
			if x < onset {
				decay := math.Exp(-(onset - x) / (n * 0.12))
				v += 0.25 * decay * math.Sin(2*math.Pi*(onset-x)/(n*0.08))
			}
		case 2: // ramp up then step down
			ramp := x / n
			v = ramp * (1 - series.Sigmoid(x, onset, edge))
		default: // smooth bump then step
			v = series.GaussianBump(x, onset*0.55, n*0.07, 0.8) + 0.9*series.Sigmoid(x, onset*1.25, edge)
		}
		out[i] = v
	}
	return out
}

// FiftyWords generates the 50-class word-profile workload: length 270, 9
// series per class (450 total). Each class prototype is a band-limited
// random curve — a sum of random sinusoids biased towards high frequencies
// — giving many fine salient features and few coarse ones, the profile
// Table 2 reports for 50Words. Instances are warped, amplitude-jittered
// and noisy copies of their prototype.
func FiftyWords(cfg Config) *Dataset {
	length := cfg.Length
	if length <= 0 {
		length = 270
	}
	perClass := cfg.SeriesPerClass
	if perClass <= 0 {
		perClass = 9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	noise := cfg.noise(0.012)
	warpStrength := cfg.warp(0.2)

	d := &Dataset{Name: "50Words", NumClasses: 50, Length: length}
	for class := 0; class < 50; class++ {
		proto := wordPrototype(rng, length)
		for k := 0; k < perClass; k++ {
			warped := series.ApplyWarp(proto, series.RandomWarp(rng, 6, warpStrength), length)
			amp := 0.9 + 0.2*rng.Float64()
			for i := range warped {
				warped[i] *= amp
			}
			vals := series.AddNoise(rng, warped, noise)
			id := fmt.Sprintf("words-%02d-%d", class, k)
			d.Series = append(d.Series, series.New(id, class, vals))
		}
	}
	return d
}

func wordPrototype(rng *rand.Rand, length int) []float64 {
	n := float64(length)
	type comp struct{ freq, amp, phase float64 }
	comps := make([]comp, 0, 16)
	// A single weak low-frequency carrier: Table 2 reports 50Words has
	// very few large-scale features, so coarse structure is minimal...
	comps = append(comps, comp{
		freq:  1 + 1.5*rng.Float64(),
		amp:   0.10 + 0.05*rng.Float64(),
		phase: 2 * math.Pi * rng.Float64(),
	})
	// ...and many higher-frequency components: the fine features.
	for c := 0; c < 13; c++ {
		comps = append(comps, comp{
			freq:  5 + 15*rng.Float64(),
			amp:   0.08 + 0.12*rng.Float64(),
			phase: 2 * math.Pi * rng.Float64(),
		})
	}
	out := make([]float64, length)
	for i := range out {
		t := float64(i) / n
		v := 0.0
		for _, c := range comps {
			v += c.amp * math.Sin(2*math.Pi*c.freq*t+c.phase)
		}
		out[i] = v
	}
	return series.Normalize01(out)
}

// All generates the three paper data sets with per-workload seeds derived
// from cfg.Seed.
func All(cfg Config) []*Dataset {
	gun := cfg
	gun.Seed = cfg.Seed*3 + 1
	trace := cfg
	trace.Seed = cfg.Seed*3 + 2
	words := cfg
	words.Seed = cfg.Seed*3 + 3
	return []*Dataset{Gun(gun), Trace(trace), FiftyWords(words)}
}

// ByName generates a paper data set by its (case-sensitive) name.
func ByName(name string, cfg Config) (*Dataset, error) {
	switch name {
	case "Gun", "gun":
		return Gun(cfg), nil
	case "Trace", "trace":
		return Trace(cfg), nil
	case "50Words", "50words", "words":
		return FiftyWords(cfg), nil
	default:
		return nil, fmt.Errorf("datasets: unknown data set %q (want Gun, Trace or 50Words)", name)
	}
}
