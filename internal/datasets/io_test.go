package datasets

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := Gun(Config{Seed: 1, SeriesPerClass: 3})
	var buf bytes.Buffer
	if err := WriteUCR(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUCR(&buf, "Gun")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Length != d.Length || back.NumClasses != d.NumClasses {
		t.Fatalf("round trip shape (%d,%d,%d), want (%d,%d,%d)",
			back.Len(), back.Length, back.NumClasses, d.Len(), d.Length, d.NumClasses)
	}
	for i := range d.Series {
		if back.Series[i].Label != d.Series[i].Label {
			t.Fatalf("series %d label %d, want %d", i, back.Series[i].Label, d.Series[i].Label)
		}
		for j := range d.Series[i].Values {
			if diff := back.Series[i].Values[j] - d.Series[i].Values[j]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("series %d sample %d: %v vs %v", i, j, back.Series[i].Values[j], d.Series[i].Values[j])
			}
		}
	}
}

func TestReadUCRWhitespaceSeparated(t *testing.T) {
	in := "1 0.5 0.6 0.7\n2 1.5 1.6 1.7\n"
	d, err := ReadUCR(strings.NewReader(in), "ws")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Length != 3 || d.NumClasses != 2 {
		t.Fatalf("shape (%d,%d,%d)", d.Len(), d.Length, d.NumClasses)
	}
}

func TestReadUCRLabelRemapping(t *testing.T) {
	// UCR labels are arbitrary integers (often 1-based or negative);
	// they must densify to [0,k) preserving sorted order.
	in := "5,1,2\n-1,3,4\n5,5,6\n10,7,8\n"
	d, err := ReadUCR(strings.NewReader(in), "remap")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 1, 2} // -1 -> 0, 5 -> 1, 10 -> 2
	for i, s := range d.Series {
		if s.Label != want[i] {
			t.Fatalf("labels = %v, want %v", d.Labels(), want)
		}
	}
	if d.NumClasses != 3 {
		t.Fatalf("NumClasses = %d, want 3", d.NumClasses)
	}
}

func TestReadUCRSkipsBlankLines(t *testing.T) {
	in := "\n1,1,2\n\n2,3,4\n\n"
	d, err := ReadUCR(strings.NewReader(in), "blank")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("read %d series, want 2", d.Len())
	}
}

func TestReadUCRErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"label only", "1\n"},
		{"bad label", "x,1,2\n"},
		{"bad value", "1,1,zzz\n"},
		{"ragged", "1,1,2\n2,1,2,3\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadUCR(strings.NewReader(tc.in), tc.name); err == nil {
				t.Fatalf("input %q accepted", tc.in)
			}
		})
	}
}

func TestReadUCRFloatLabels(t *testing.T) {
	// Some UCR files carry float-formatted labels ("1.0000000e+00").
	in := "1.0,1,2\n2.0,3,4\n"
	d, err := ReadUCR(strings.NewReader(in), "float-labels")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClasses != 2 {
		t.Fatalf("NumClasses = %d, want 2", d.NumClasses)
	}
}
