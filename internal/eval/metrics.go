// Package eval implements the paper's evaluation harness (§4.2): top-k
// retrieval accuracy, distance-estimation error, kNN classification
// agreement, and time/cells gains, plus the concurrent pairwise distance
// machinery the experiments are built on.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// TopKOverlap returns |topRef ∩ topEst| / k for the first k entries of the
// two rankings, the accret(k) measure. Rankings shorter than k are an
// error at the call site; the function uses what it is given.
func TopKOverlap(topRef, topEst []int, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(topRef) {
		k = len(topRef)
	}
	ke := k
	if ke > len(topEst) {
		ke = len(topEst)
	}
	ref := make(map[int]bool, k)
	for _, id := range topRef[:k] {
		ref[id] = true
	}
	hits := 0
	for _, id := range topEst[:ke] {
		if ref[id] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// DistanceError returns the relative over-estimation (est − ref)/ref, the
// errdist contribution of one pair. Constrained DTW never underestimates,
// so the value is non-negative up to floating-point noise. A zero
// reference with a non-zero estimate yields +Inf; both zero yields 0.
func DistanceError(ref, est float64) float64 {
	if ref == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (est - ref) / ref
}

// JaccardLabels returns |a ∩ b| / |a ∪ b| over two label sets, the
// acccls(k) contribution of one object. Two empty sets count as agreement.
func JaccardLabels(a, b map[int]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter, union := 0, 0
	for l := range a {
		if b[l] {
			inter++
		}
	}
	union = len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TimeGain returns (ref − est)/ref: the fraction of the reference cost
// avoided. Non-positive references yield 0.
func TimeGain(ref, est float64) float64 {
	if ref <= 0 {
		return 0
	}
	return (ref - est) / ref
}

// Mean returns the arithmetic mean, ignoring NaN and Inf entries (which
// arise from zero-reference distance errors); it returns 0 for no finite
// entries.
func Mean(v []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Ranking sorts object indices by ascending distance, breaking ties by
// index for determinism. dists[i] is the distance of object i to the
// query; entries set to NaN (e.g. the query itself) are excluded.
func Ranking(dists []float64) []int {
	idx := make([]int, 0, len(dists))
	for i, d := range dists {
		if math.IsNaN(d) {
			continue
		}
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := dists[idx[a]], dists[idx[b]]
		if da != db {
			return da < db
		}
		return idx[a] < idx[b]
	})
	return idx
}

// KNNLabels returns the label set a k-nearest-neighbour classifier
// attaches to a query given the ranked neighbour indices and their labels:
// every label achieving the maximum count among the k nearest is included
// (§4.2: ties can attach more than one label).
func KNNLabels(ranked []int, labels []int, k int) map[int]bool {
	if k > len(ranked) {
		k = len(ranked)
	}
	counts := make(map[int]int)
	maxCount := 0
	for _, id := range ranked[:k] {
		l := labels[id]
		counts[l]++
		if counts[l] > maxCount {
			maxCount = counts[l]
		}
	}
	out := make(map[int]bool)
	for l, c := range counts {
		if c == maxCount && maxCount > 0 {
			out[l] = true
		}
	}
	return out
}

// Summary aggregates a slice of per-object or per-pair measurements.
type Summary struct {
	Mean, Min, Max float64
	N              int
}

// Summarize computes a Summary over finite entries of v.
func Summarize(v []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		sum += x
		s.N++
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	if s.N == 0 {
		return Summary{}
	}
	s.Mean = sum / float64(s.N)
	return s
}

// String implements fmt.Stringer for terse experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.4f min=%.4f max=%.4f n=%d", s.Mean, s.Min, s.Max, s.N)
}
