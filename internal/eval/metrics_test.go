package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTopKOverlap(t *testing.T) {
	tests := []struct {
		name     string
		ref, est []int
		k        int
		want     float64
	}{
		{"identical", []int{1, 2, 3}, []int{1, 2, 3}, 3, 1},
		{"reordered", []int{1, 2, 3}, []int{3, 1, 2}, 3, 1},
		{"disjoint", []int{1, 2, 3}, []int{4, 5, 6}, 3, 0},
		{"half", []int{1, 2, 3, 4}, []int{1, 2, 8, 9}, 4, 0.5},
		{"k beyond ranking", []int{1, 2}, []int{1, 2}, 10, 1},
		{"k zero", []int{1}, []int{1}, 0, 0},
		{"est shorter", []int{1, 2, 3}, []int{1}, 3, 1.0 / 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := TopKOverlap(tc.ref, tc.est, tc.k); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("TopKOverlap = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDistanceError(t *testing.T) {
	if e := DistanceError(10, 12); math.Abs(e-0.2) > 1e-12 {
		t.Errorf("DistanceError(10,12) = %v, want 0.2", e)
	}
	if e := DistanceError(10, 10); e != 0 {
		t.Errorf("exact estimate error = %v", e)
	}
	if e := DistanceError(0, 0); e != 0 {
		t.Errorf("zero/zero error = %v, want 0", e)
	}
	if e := DistanceError(0, 1); !math.IsInf(e, 1) {
		t.Errorf("zero-reference error = %v, want +Inf", e)
	}
}

func TestJaccardLabels(t *testing.T) {
	set := func(labels ...int) map[int]bool {
		m := map[int]bool{}
		for _, l := range labels {
			m[l] = true
		}
		return m
	}
	tests := []struct {
		name string
		a, b map[int]bool
		want float64
	}{
		{"equal", set(1, 2), set(1, 2), 1},
		{"disjoint", set(1), set(2), 0},
		{"partial", set(1, 2), set(2, 3), 1.0 / 3},
		{"both empty", set(), set(), 1},
		{"one empty", set(1), set(), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := JaccardLabels(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Jaccard = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestTimeGain(t *testing.T) {
	if g := TimeGain(10, 2); math.Abs(g-0.8) > 1e-12 {
		t.Errorf("TimeGain(10,2) = %v", g)
	}
	if g := TimeGain(10, 15); math.Abs(g+0.5) > 1e-12 {
		t.Errorf("TimeGain(10,15) = %v, want -0.5", g)
	}
	if g := TimeGain(0, 5); g != 0 {
		t.Errorf("TimeGain(0,·) = %v, want 0", g)
	}
}

func TestMeanIgnoresNonFinite(t *testing.T) {
	if m := Mean([]float64{1, 2, math.Inf(1), math.NaN(), 3}); m != 2 {
		t.Fatalf("Mean = %v, want 2", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
	if m := Mean([]float64{math.NaN()}); m != 0 {
		t.Fatalf("Mean(NaN) = %v", m)
	}
}

func TestRanking(t *testing.T) {
	dists := []float64{3, math.NaN(), 1, 2}
	r := Ranking(dists)
	want := []int{2, 3, 0}
	if len(r) != len(want) {
		t.Fatalf("Ranking = %v, want %v", r, want)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranking = %v, want %v", r, want)
		}
	}
}

func TestRankingTieBreaksByIndex(t *testing.T) {
	r := Ranking([]float64{5, 5, 5})
	for i, id := range []int{0, 1, 2} {
		if r[i] != id {
			t.Fatalf("tie ranking = %v", r)
		}
	}
}

func TestRankingSortedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		for i := range raw {
			if math.IsNaN(raw[i]) {
				raw[i] = 0
			}
		}
		r := Ranking(raw)
		for i := 1; i < len(r); i++ {
			if raw[r[i-1]] > raw[r[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNLabels(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2}
	ranked := []int{0, 1, 2, 3, 4}
	// k=2: two votes for class 0.
	got := KNNLabels(ranked, labels, 2)
	if len(got) != 1 || !got[0] {
		t.Fatalf("kNN(2) = %v, want {0}", got)
	}
	// k=4: tie between classes 0 and 1 — both attached (§4.2).
	got = KNNLabels(ranked, labels, 4)
	if len(got) != 2 || !got[0] || !got[1] {
		t.Fatalf("kNN(4) = %v, want {0,1}", got)
	}
	// k beyond ranking length clamps.
	got = KNNLabels(ranked, labels, 50)
	if len(got) != 2 {
		t.Fatalf("kNN(50) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 5, 3, math.NaN(), math.Inf(1)})
	if s.N != 3 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if got := s.String(); got == "" {
		t.Fatal("empty summary string")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}
