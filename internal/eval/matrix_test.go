package eval

import (
	"math"
	"testing"

	"sdtw/internal/core"
	"sdtw/internal/datasets"
	"sdtw/internal/dtw"
	"sdtw/internal/series"
)

func smallDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	d := datasets.Gun(datasets.Config{Seed: 17, SeriesPerClass: 4})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFullDTWMatrixProperties(t *testing.T) {
	d := smallDataset(t)
	m, err := FullDTWMatrix(d.Series, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := d.Len()
	if len(m.D) != n {
		t.Fatalf("matrix size %d, want %d", len(m.D), n)
	}
	for i := 0; i < n; i++ {
		if !math.IsNaN(m.D[i][i]) {
			t.Fatalf("diagonal (%d,%d) = %v, want NaN", i, i, m.D[i][i])
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if m.D[i][j] != m.D[j][i] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
			// Spot-check against a direct computation.
			if i < 2 && j < 3 {
				want, err := dtw.Distance(d.Series[i].Values, d.Series[j].Values, nil)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(m.D[i][j]-want) > 1e-9 {
					t.Fatalf("matrix (%d,%d) = %v, direct = %v", i, j, m.D[i][j], want)
				}
			}
		}
	}
	if m.Stats.Pairs != n*(n-1)/2 {
		t.Fatalf("pairs = %d, want %d", m.Stats.Pairs, n*(n-1)/2)
	}
	if m.Stats.CellsGain() != 0 {
		t.Fatalf("full matrix cells gain = %v", m.Stats.CellsGain())
	}
}

func TestEngineMatrixDominatesReference(t *testing.T) {
	d := smallDataset(t)
	ref, err := FullDTWMatrix(d.Series, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine := core.NewEngine(core.DefaultOptions())
	if _, err := engine.Warm(d.Series); err != nil {
		t.Fatal(err)
	}
	est, err := EngineMatrix(engine, d.Series)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.D {
		for j := range ref.D {
			if i == j {
				continue
			}
			if est.D[i][j] < ref.D[i][j]-1e-9 {
				t.Fatalf("constrained estimate underestimates at (%d,%d)", i, j)
			}
		}
	}
	if est.Stats.CellsGain() <= 0 {
		t.Fatalf("engine matrix pruned nothing: gain %v", est.Stats.CellsGain())
	}
}

func TestMatrixMetricsPerfectEstimator(t *testing.T) {
	d := smallDataset(t)
	ref, err := FullDTWMatrix(d.Series, nil)
	if err != nil {
		t.Fatal(err)
	}
	labels := d.Labels()
	if acc := MeanRetrievalAccuracy(ref, ref, 5); acc != 1 {
		t.Errorf("self retrieval accuracy = %v", acc)
	}
	if e := MeanDistanceError(ref, ref); e != 0 {
		t.Errorf("self distance error = %v", e)
	}
	if e := MeanIntraClassDistanceError(ref, ref, labels); e != 0 {
		t.Errorf("self intra-class error = %v", e)
	}
	if acc := MeanClassificationAccuracy(ref, ref, labels, 5); acc != 1 {
		t.Errorf("self classification accuracy = %v", acc)
	}
}

func TestMatrixMetricsDegradeWithNarrowBand(t *testing.T) {
	d := smallDataset(t)
	ref, err := FullDTWMatrix(d.Series, nil)
	if err != nil {
		t.Fatal(err)
	}
	mkEst := func(widthFrac float64) *Matrix {
		opts := core.DefaultOptions()
		opts.Band.Strategy = 1 // FixedCoreFixedWidth
		opts.Band.WidthFrac = widthFrac
		est, err := EngineMatrix(core.NewEngine(opts), d.Series)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	narrow := mkEst(0.04)
	wide := mkEst(0.5)
	if MeanDistanceError(ref, narrow) <= MeanDistanceError(ref, wide) {
		t.Fatalf("narrow band error %v not above wide %v",
			MeanDistanceError(ref, narrow), MeanDistanceError(ref, wide))
	}
	if MeanRetrievalAccuracy(ref, narrow, 5) > MeanRetrievalAccuracy(ref, wide, 5) {
		t.Fatalf("narrow band retrieval above wide band")
	}
}

func TestEmptyDataRejected(t *testing.T) {
	if _, err := FullDTWMatrix(nil, nil); err == nil {
		t.Fatal("empty data accepted by FullDTWMatrix")
	}
	if _, err := EngineMatrix(core.NewEngine(core.DefaultOptions()), nil); err == nil {
		t.Fatal("empty data accepted by EngineMatrix")
	}
}

func TestTimePairs(t *testing.T) {
	d := smallDataset(t)
	engine := core.NewEngine(core.DefaultOptions())
	if _, err := engine.Warm(d.Series); err != nil {
		t.Fatal(err)
	}
	timing, err := TimePairs(engine, d.Series, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if timing.Pairs == 0 || timing.Pairs > 10+4 {
		t.Fatalf("timed %d pairs, want ≈10", timing.Pairs)
	}
	if timing.RefTime <= 0 || timing.EstTime <= 0 {
		t.Fatalf("timing durations not positive: %+v", timing)
	}
	if g := timing.Gain(); g <= -1 || g >= 1 {
		t.Fatalf("gain %v out of plausible range", g)
	}
	if s := timing.MatchShare(); s < 0 || s > 1 {
		t.Fatalf("match share %v out of range", s)
	}
}

func TestTimePairsTooFewSeries(t *testing.T) {
	engine := core.NewEngine(core.DefaultOptions())
	if _, err := TimePairs(engine, []series.Series{{Values: []float64{1}}}, nil, 5); err == nil {
		t.Fatal("single series accepted")
	}
}

func TestTimingZeroValues(t *testing.T) {
	var tm Timing
	if tm.Gain() != 0 {
		t.Errorf("zero timing gain = %v", tm.Gain())
	}
	if tm.MatchShare() != 0 {
		t.Errorf("zero timing match share = %v", tm.MatchShare())
	}
}
