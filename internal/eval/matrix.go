package eval

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"sdtw/internal/core"
	"sdtw/internal/dtw"
	"sdtw/internal/series"
)

// PairStats aggregates the per-pair accounting of a distance matrix
// computation.
type PairStats struct {
	// Pairs is the number of (ordered) pairs evaluated.
	Pairs int
	// Cells is the total number of DTW grid cells filled.
	Cells int
	// GridCells is the total N·M over all pairs.
	GridCells int
	// MatchTime and DPTime are summed stage durations (paper tasks b, c).
	MatchTime, DPTime time.Duration
	// WallTime is the total wall-clock time across workers (sum of
	// per-pair durations, comparable with a sequential baseline).
	WallTime time.Duration
}

// CellsGain is the machine-independent pruning gain 1 − Cells/GridCells.
func (ps PairStats) CellsGain() float64 {
	if ps.GridCells == 0 {
		return 0
	}
	return 1 - float64(ps.Cells)/float64(ps.GridCells)
}

// Matrix is a full pairwise distance matrix over a data set. The diagonal
// is NaN so Ranking excludes self-matches.
type Matrix struct {
	D     [][]float64
	Stats PairStats
}

// FullDTWMatrix computes exact pairwise DTW distances over data using the
// full grid, parallelised across pairs. It is the reference (∆DTW) of all
// accuracy measures.
func FullDTWMatrix(data []series.Series, dist series.PointDistance) (*Matrix, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("eval: empty data set")
	}
	m := newMatrix(n)
	type job struct{ i, j int }
	jobs := make(chan job, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				start := time.Now()
				d, err := dtw.Distance(data[jb.i].Values, data[jb.j].Values, dist)
				elapsed := time.Since(start)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("eval: full DTW (%d,%d): %w", jb.i, jb.j, err)
				}
				m.D[jb.i][jb.j] = d
				m.D[jb.j][jb.i] = d
				nm := len(data[jb.i].Values) * len(data[jb.j].Values)
				m.Stats.Pairs++
				m.Stats.Cells += nm
				m.Stats.GridCells += nm
				m.Stats.DPTime += elapsed
				m.Stats.WallTime += elapsed
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			jobs <- job{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// EngineMatrix computes pairwise constrained distances with the given
// engine, parallelised across pairs. Feature extraction should be warmed
// beforehand (engine.Warm) so per-pair times reflect tasks (b) and (c)
// only, matching the paper's timing protocol. When the engine's band is
// asymmetric the matrix stores the X-driven value in both triangles (the
// paper's experiments likewise evaluate one direction per pair).
func EngineMatrix(engine *core.Engine, data []series.Series) (*Matrix, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("eval: empty data set")
	}
	m := newMatrix(n)
	type job struct{ i, j int }
	jobs := make(chan job, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				start := time.Now()
				res, err := engine.Distance(data[jb.i], data[jb.j])
				elapsed := time.Since(start)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("eval: engine distance (%d,%d): %w", jb.i, jb.j, err)
				}
				m.D[jb.i][jb.j] = res.Distance
				m.D[jb.j][jb.i] = res.Distance
				m.Stats.Pairs++
				m.Stats.Cells += res.CellsFilled
				m.Stats.GridCells += res.GridCells
				m.Stats.MatchTime += res.MatchTime
				m.Stats.DPTime += res.DPTime
				m.Stats.WallTime += elapsed
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			jobs <- job{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// Timing is the outcome of a sequential timing pass: per-pair wall times
// of the full-grid reference and the constrained engine over the same
// deterministic pair sample. Sequential measurement mirrors the paper's
// single-threaded protocol and avoids the scheduler and memory-bandwidth
// noise that parallel matrix computation injects into per-pair times.
type Timing struct {
	// RefTime and EstTime are summed per-pair durations.
	RefTime, EstTime time.Duration
	// MatchTime and DPTime split EstTime into the paper's tasks (b), (c).
	MatchTime, DPTime time.Duration
	// Pairs is the number of pairs timed.
	Pairs int
}

// Gain returns the paper's timegain = (t_dtw − t_*)/t_dtw.
func (t Timing) Gain() float64 {
	return TimeGain(t.RefTime.Seconds(), t.EstTime.Seconds())
}

// MatchShare returns MatchTime/(MatchTime+DPTime), Fig 17's breakdown.
func (t Timing) MatchShare() float64 {
	total := t.MatchTime + t.DPTime
	if total == 0 {
		return 0
	}
	return float64(t.MatchTime) / float64(total)
}

// TimePairs sequentially times full DTW against the engine's constrained
// distance over at most maxPairs deterministically sampled pairs. The
// engine's feature cache should be warm so per-pair times cover only the
// paper's tasks (b) matching and (c) constrained DP.
func TimePairs(engine *core.Engine, data []series.Series, dist series.PointDistance, maxPairs int) (Timing, error) {
	n := len(data)
	if n < 2 {
		return Timing{}, fmt.Errorf("eval: timing needs at least 2 series, got %d", n)
	}
	if maxPairs <= 0 {
		maxPairs = 200
	}
	total := n * (n - 1) / 2
	stride := total/maxPairs + 1
	var t Timing
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if k++; (k-1)%stride != 0 {
				continue
			}
			start := time.Now()
			if _, err := dtw.Distance(data[i].Values, data[j].Values, dist); err != nil {
				return t, fmt.Errorf("eval: timing full DTW (%d,%d): %w", i, j, err)
			}
			t.RefTime += time.Since(start)
			start = time.Now()
			res, err := engine.Distance(data[i], data[j])
			if err != nil {
				return t, fmt.Errorf("eval: timing engine (%d,%d): %w", i, j, err)
			}
			t.EstTime += time.Since(start)
			t.MatchTime += res.MatchTime
			t.DPTime += res.DPTime
			t.Pairs++
		}
	}
	return t, nil
}

func newMatrix(n int) *Matrix {
	m := &Matrix{D: make([][]float64, n)}
	for i := range m.D {
		m.D[i] = make([]float64, n)
		m.D[i][i] = math.NaN()
	}
	return m
}

// Row returns row i of the matrix (distances from object i to all others,
// NaN at i itself).
func (m *Matrix) Row(i int) []float64 { return m.D[i] }

// MeanRetrievalAccuracy averages accret(k) over every object used as a
// query: the overlap between the reference and estimated top-k rankings.
func MeanRetrievalAccuracy(ref, est *Matrix, k int) float64 {
	n := len(ref.D)
	accs := make([]float64, 0, n)
	for q := 0; q < n; q++ {
		topRef := Ranking(ref.Row(q))
		topEst := Ranking(est.Row(q))
		accs = append(accs, TopKOverlap(topRef, topEst, k))
	}
	return Mean(accs)
}

// MeanDistanceError averages errdist over all ordered pairs (i≠j).
func MeanDistanceError(ref, est *Matrix) float64 {
	n := len(ref.D)
	errs := make([]float64, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			errs = append(errs, DistanceError(ref.D[i][j], est.D[i][j]))
		}
	}
	return Mean(errs)
}

// MeanIntraClassDistanceError averages errdist over same-class pairs only,
// the harder setting of the paper's Fig 15.
func MeanIntraClassDistanceError(ref, est *Matrix, labels []int) float64 {
	n := len(ref.D)
	errs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || labels[i] != labels[j] {
				continue
			}
			errs = append(errs, DistanceError(ref.D[i][j], est.D[i][j]))
		}
	}
	return Mean(errs)
}

// MeanClassificationAccuracy averages the Jaccard agreement between the
// kNN label sets derived from the reference and estimated matrices
// (acccls(k), §4.2).
func MeanClassificationAccuracy(ref, est *Matrix, labels []int, k int) float64 {
	n := len(ref.D)
	accs := make([]float64, 0, n)
	for q := 0; q < n; q++ {
		lref := KNNLabels(Ranking(ref.Row(q)), labels, k)
		lest := KNNLabels(Ranking(est.Row(q)), labels, k)
		accs = append(accs, JaccardLabels(lref, lest))
	}
	return Mean(accs)
}
