// Package store implements the append-friendly segment persistence
// format behind store-backed indexes, replacing whole-index gob: a
// directory holds a JSON manifest, immutable sealed segments, one
// active (appendable) segment, and a tombstone log.
//
// Each segment is a pair of files. The hot file (seg-NNNNNNNN.hot)
// carries everything a search needs before a candidate survives the
// bound cascade — IDs, labels, insertion sequences, lengths, raw
// endpoints (for LB_Kim), stage-0 PAA sketches and LB_Keogh envelopes —
// as length-prefixed, CRC-protected records that an Open slurps eagerly;
// its cost is O(live series · envelope), independent of the raw values.
// The value file (seg-NNNNNNNN.val) carries the raw observations as
// length-prefixed CRC-protected blocks read lazily through io.ReaderAt
// only when a candidate reaches the dynamic program, so the raw
// collection never has to fit in RAM (the layout is offset-addressed
// and mmap-friendly: fixed-layout block headers at recorded offsets).
//
// Add appends a record to the active segment (sealing it into an
// immutable segment once it reaches the configured record count);
// Remove appends to the tombstone log; Compact rewrites the live
// records into fresh segments and truncates the log. Records loaded
// before a compaction keep reading values through their original (now
// unlinked) file handles, so copy-on-write readers are never invalidated.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sdtw/internal/lower"
	"sdtw/internal/sketch"
)

// Sentinel errors of the segment store. Every corruption found at Open
// or value-load time wraps one of these, so callers branch with
// errors.Is instead of matching message strings.
var (
	// ErrCorruptManifest reports an unreadable, unparsable or
	// version-incompatible store manifest (or a directory that is not a
	// store at all).
	ErrCorruptManifest = errors.New("corrupt store manifest")
	// ErrCorruptSegment reports a segment file whose contents do not
	// match its recorded layout or checksums.
	ErrCorruptSegment = errors.New("corrupt store segment")
	// ErrStoreExists reports a Create into a directory already holding a
	// store.
	ErrStoreExists = errors.New("store already exists")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store closed")
)

const (
	manifestName   = "MANIFEST.json"
	tombstonesName = "tombstones.log"
	hotMagic       = "SDTWHOT1"
	valMagic       = "SDTWVAL1"
	formatVersion  = 1

	// DefaultSegmentRecords is the seal threshold when Config leaves it
	// zero: segments stay small enough that compaction rewrites in
	// bounded chunks, large enough that a million-series store holds a
	// few hundred segments, not millions of files.
	DefaultSegmentRecords = 4096
)

// Config parameterises Create.
type Config struct {
	// Fingerprint is the index configuration fingerprint the store's
	// envelopes and sketches were computed under. Open returns it
	// verbatim; the index layer refuses fingerprints it did not expect.
	Fingerprint string
	// SketchWidth is the stage-0 sketch coefficient count every record
	// carries (>= 1).
	SketchWidth int
	// SegmentRecords is the record count at which the active segment is
	// sealed; <= 0 means DefaultSegmentRecords.
	SegmentRecords int
	// Meta carries small caller-owned configuration (index kind, series
	// length, shard membership) verbatim through the manifest.
	Meta map[string]string
}

// Record is one persisted series: the hot metadata loaded eagerly at
// Open, plus lazy access to the raw values.
type Record struct {
	ID    string
	Label int
	// Seq is the caller's insertion sequence; Live returns records in
	// ascending Seq order and tombstones name the (ID, Seq) pair, so a
	// re-added ID never resurrects its predecessor's tombstone.
	Seq uint64
	// N is the raw value count; First and Last are the raw endpoint
	// values, kept hot so LB_Kim needs no value load.
	N           int
	First, Last float64
	Sketch      sketch.Sketch
	Envelope    lower.Envelope
	// Values carries the raw observations on Append; Open leaves it nil
	// (use LoadValues).
	Values []float64

	src *valSource
	off int64
}

// LoadValues reads, checksums and returns the record's raw values from
// the value file. Safe for concurrent use; each call reads from disk
// (callers cache — the index layer materialises at most once per
// series).
func (r *Record) LoadValues() ([]float64, error) {
	if r.Values != nil {
		out := make([]float64, len(r.Values))
		copy(out, r.Values)
		return out, nil
	}
	if r.src == nil {
		return nil, fmt.Errorf("store: record %q has no value source: %w", r.ID, ErrCorruptSegment)
	}
	f, err := r.src.file()
	if err != nil {
		return nil, fmt.Errorf("store: opening values of %q: %w", r.ID, err)
	}
	var hdr [4]byte
	if _, err := f.ReadAt(hdr[:], r.off); err != nil {
		return nil, fmt.Errorf("store: reading value block of %q: %v: %w", r.ID, err, ErrCorruptSegment)
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n != r.N {
		return nil, fmt.Errorf("store: value block of %q holds %d values, hot record says %d: %w", r.ID, n, r.N, ErrCorruptSegment)
	}
	buf := make([]byte, 8*n+4)
	if _, err := f.ReadAt(buf, r.off+4); err != nil {
		return nil, fmt.Errorf("store: reading value block of %q: %v: %w", r.ID, err, ErrCorruptSegment)
	}
	body, sum := buf[:8*n], binary.LittleEndian.Uint32(buf[8*n:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("store: value block of %q fails its checksum: %w", r.ID, ErrCorruptSegment)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return vals, nil
}

// valSource is one segment's lazily opened value file. It outlives
// compaction: the handle stays open (and readable) after the file is
// unlinked, so records captured by copy-on-write readers keep loading.
type valSource struct {
	path string
	once sync.Once
	f    *os.File
	err  error
}

func (v *valSource) file() (*os.File, error) {
	v.once.Do(func() {
		f, err := os.Open(v.path)
		if err != nil {
			v.err = err
			return
		}
		v.f = f
	})
	return v.f, v.err
}

func (v *valSource) close() {
	v.once.Do(func() { v.err = os.ErrClosed })
	if v.f != nil {
		v.f.Close()
	}
}

// manifest is the store's committed state; it is rewritten atomically
// (temp file + rename) on create, seal and compact.
type manifest struct {
	Version        int               `json:"version"`
	Fingerprint    string            `json:"fingerprint"`
	SketchWidth    int               `json:"sketch_width"`
	SegmentRecords int               `json:"segment_records"`
	Meta           map[string]string `json:"meta,omitempty"`
	// NextSegment numbers segments monotonically across seals and
	// compactions, so new files never collide with retired ones.
	NextSegment int             `json:"next_segment"`
	Sealed      []sealedSegment `json:"sealed"`
	// Active is the appendable segment's number (always present).
	Active int `json:"active"`
}

type sealedSegment struct {
	Seg     int    `json:"seg"`
	Records int    `json:"records"`
	HotCRC  uint32 `json:"hot_crc"`
}

// tombstone is one line of tombstones.log.
type tombstone struct {
	ID  string `json:"id"`
	Seq uint64 `json:"seq"`
}

// Store is an open segment store. Append, Tombstone, Compact and Close
// serialise on an internal lock; Record.LoadValues is lock-free and may
// run concurrently with all of them.
type Store struct {
	dir string

	mu      sync.Mutex
	man     manifest
	records []*Record
	dead    map[uint64]bool
	active  *segWriter
	sources map[int]*valSource
	retired []*valSource
	tomb    *os.File
	closed  bool
}

// segWriter is the active segment's append state.
type segWriter struct {
	seg      int
	hot, val *os.File
	hotCRC   uint32 // running CRC over the whole hot file
	records  int
	valOff   int64
}

func segName(seg int, ext string) string { return fmt.Sprintf("seg-%08d.%s", seg, ext) }

// Create initialises a new store in dir (created if absent; must not
// already hold a store) and returns it open for appends.
func Create(dir string, cfg Config) (*Store, error) {
	if cfg.SketchWidth < 1 {
		return nil, fmt.Errorf("store: sketch width must be >= 1, got %d", cfg.SketchWidth)
	}
	if cfg.SegmentRecords <= 0 {
		cfg.SegmentRecords = DefaultSegmentRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("store: %s: %w", dir, ErrStoreExists)
	}
	st := &Store{
		dir: dir,
		man: manifest{
			Version:        formatVersion,
			Fingerprint:    cfg.Fingerprint,
			SketchWidth:    cfg.SketchWidth,
			SegmentRecords: cfg.SegmentRecords,
			Meta:           cfg.Meta,
			NextSegment:    2,
			Active:         1,
		},
		dead:    make(map[uint64]bool),
		sources: make(map[int]*valSource),
	}
	tomb, err := os.OpenFile(filepath.Join(dir, tombstonesName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating tombstone log: %w", err)
	}
	st.tomb = tomb
	if st.active, err = st.newSegment(1); err != nil {
		tomb.Close()
		return nil, err
	}
	if err := st.writeManifest(); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

// newSegment opens a fresh active segment and writes its headers.
func (st *Store) newSegment(seg int) (*segWriter, error) {
	hotPath := filepath.Join(st.dir, segName(seg, "hot"))
	valPath := filepath.Join(st.dir, segName(seg, "val"))
	hot, err := os.OpenFile(hotPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating segment %d: %w", seg, err)
	}
	val, err := os.OpenFile(valPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		hot.Close()
		return nil, fmt.Errorf("store: creating segment %d: %w", seg, err)
	}
	w := &segWriter{seg: seg, hot: hot, val: val}
	hotHdr := st.hotHeader()
	if _, err := hot.Write(hotHdr); err != nil {
		w.closeFiles()
		return nil, fmt.Errorf("store: writing segment %d header: %w", seg, err)
	}
	w.hotCRC = crc32.ChecksumIEEE(hotHdr)
	if _, err := val.Write([]byte(valMagic)); err != nil {
		w.closeFiles()
		return nil, fmt.Errorf("store: writing segment %d header: %w", seg, err)
	}
	w.valOff = int64(len(valMagic))
	st.sources[seg] = &valSource{path: valPath}
	return w, nil
}

func (w *segWriter) closeFiles() {
	if w.hot != nil {
		w.hot.Close()
	}
	if w.val != nil {
		w.val.Close()
	}
}

// hotHeader encodes the per-segment config header: magic, version, and
// the config fingerprint (so a segment file found on its own still
// names the configuration it was written under).
func (st *Store) hotHeader() []byte {
	fp := []byte(st.man.Fingerprint)
	buf := make([]byte, 0, len(hotMagic)+8+len(fp)+4)
	buf = append(buf, hotMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.man.SketchWidth))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fp)))
	buf = append(buf, fp...)
	return buf
}

// writeManifest commits the manifest atomically (temp file + rename).
func (st *Store) writeManifest() error {
	data, err := json.MarshalIndent(st.man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	tmp := filepath.Join(st.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, manifestName)); err != nil {
		return fmt.Errorf("store: committing manifest: %w", err)
	}
	return nil
}

// Open opens an existing store, eagerly loading every segment's hot
// records (IDs, endpoints, sketches, envelopes) and the tombstone log.
// Raw values stay on disk until Record.LoadValues. Corruption anywhere —
// manifest, sealed segment checksum, torn record — fails the whole open
// with a wrapped sentinel.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: %s: %v: %w", dir, err, ErrCorruptManifest)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("store: %s: %v: %w", dir, err, ErrCorruptManifest)
	}
	if man.Version != formatVersion {
		return nil, fmt.Errorf("store: %s: manifest version %d, want %d: %w", dir, man.Version, formatVersion, ErrCorruptManifest)
	}
	if man.SketchWidth < 1 || man.Active < 1 || man.SegmentRecords < 1 {
		return nil, fmt.Errorf("store: %s: manifest fields out of range: %w", dir, ErrCorruptManifest)
	}
	st := &Store{
		dir:     dir,
		man:     man,
		dead:    make(map[uint64]bool),
		sources: make(map[int]*valSource),
	}
	ok := false
	defer func() {
		if !ok {
			st.Close()
		}
	}()
	for _, sealed := range man.Sealed {
		if err := st.loadSegment(sealed.Seg, &sealed); err != nil {
			return nil, err
		}
	}
	// The active segment has no committed CRC or record count; its
	// per-record checks still apply, and its parsed state seeds the
	// append writer.
	activeRecords, activeCRC, err := st.loadActive(man.Active)
	if err != nil {
		return nil, err
	}
	if err := st.loadTombstones(); err != nil {
		return nil, err
	}
	tomb, err := os.OpenFile(filepath.Join(dir, tombstonesName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening tombstone log: %w", err)
	}
	st.tomb = tomb
	hot, err := os.OpenFile(filepath.Join(dir, segName(man.Active, "hot")), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: reopening active segment: %w", err)
	}
	val, err := os.OpenFile(filepath.Join(dir, segName(man.Active, "val")), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		hot.Close()
		return nil, fmt.Errorf("store: reopening active segment: %w", err)
	}
	valEnd, err := val.Seek(0, io.SeekEnd)
	if err != nil {
		hot.Close()
		val.Close()
		return nil, fmt.Errorf("store: reopening active segment: %w", err)
	}
	st.active = &segWriter{seg: man.Active, hot: hot, val: val, hotCRC: activeCRC, records: activeRecords, valOff: valEnd}
	ok = true
	return st, nil
}

// loadSegment reads one segment's hot file, verifying the whole-file
// CRC and record count for sealed segments (sealed == nil for the
// active segment, which checks per-record CRCs only). It returns the
// record count and the whole-file CRC.
func (st *Store) loadSegment(seg int, sealed *sealedSegment) error {
	_, _, err := st.parseHot(seg, sealed)
	return err
}

func (st *Store) loadActive(seg int) (int, uint32, error) {
	return st.parseHot(seg, nil)
}

func (st *Store) parseHot(seg int, sealed *sealedSegment) (int, uint32, error) {
	path := filepath.Join(st.dir, segName(seg, "hot"))
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("store: segment %d: %v: %w", seg, err, ErrCorruptSegment)
	}
	fileCRC := crc32.ChecksumIEEE(data)
	if sealed != nil && fileCRC != sealed.HotCRC {
		return 0, 0, fmt.Errorf("store: segment %d fails its checksum: %w", seg, ErrCorruptSegment)
	}
	want := st.hotHeader()
	if len(data) < len(want) || string(data[:len(want)]) != string(want) {
		return 0, 0, fmt.Errorf("store: segment %d header does not match the manifest configuration: %w", seg, ErrCorruptSegment)
	}
	src, ok := st.sources[seg]
	if !ok {
		src = &valSource{path: filepath.Join(st.dir, segName(seg, "val"))}
		st.sources[seg] = src
	}
	rest := data[len(want):]
	count := 0
	for len(rest) > 0 {
		if len(rest) < 4 {
			return 0, 0, fmt.Errorf("store: segment %d: torn record length: %w", seg, ErrCorruptSegment)
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		if plen < 0 || len(rest) < 4+plen+4 {
			return 0, 0, fmt.Errorf("store: segment %d: torn record: %w", seg, ErrCorruptSegment)
		}
		payload := rest[4 : 4+plen]
		sum := binary.LittleEndian.Uint32(rest[4+plen:])
		if crc32.ChecksumIEEE(payload) != sum {
			return 0, 0, fmt.Errorf("store: segment %d record %d fails its checksum: %w", seg, count, ErrCorruptSegment)
		}
		rec, err := decodeRecord(payload, st.man.SketchWidth)
		if err != nil {
			return 0, 0, fmt.Errorf("store: segment %d record %d: %v: %w", seg, count, err, ErrCorruptSegment)
		}
		rec.src = src
		st.records = append(st.records, rec)
		rest = rest[4+plen+4:]
		count++
	}
	if sealed != nil && count != sealed.Records {
		return 0, 0, fmt.Errorf("store: segment %d holds %d records, manifest says %d: %w", seg, count, sealed.Records, ErrCorruptSegment)
	}
	return count, fileCRC, nil
}

func (st *Store) loadTombstones() error {
	data, err := os.ReadFile(filepath.Join(st.dir, tombstonesName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: reading tombstone log: %w", err)
	}
	dec := json.NewDecoder(bytesReader(data))
	for dec.More() {
		var tb tombstone
		if err := dec.Decode(&tb); err != nil {
			return fmt.Errorf("store: tombstone log: %v: %w", err, ErrCorruptManifest)
		}
		st.dead[tb.Seq] = true
	}
	return nil
}

// bytesReader avoids importing bytes for one call site.
func bytesReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// encodeRecord serialises the hot payload of rec (values live in the
// val file at valOff).
func encodeRecord(rec *Record, valOff int64) []byte {
	id := []byte(rec.ID)
	w := len(rec.Sketch.Upper)
	n := len(rec.Envelope.Upper)
	buf := make([]byte, 0, 4+len(id)+8+8+4+16+16*w+4+16*n+8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(id)))
	buf = append(buf, id...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(rec.Label)))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.N))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.First))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Last))
	for _, v := range rec.Sketch.Upper {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range rec.Sketch.Lower {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Envelope.Radius))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for _, v := range rec.Envelope.Upper {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range rec.Envelope.Lower {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(valOff))
	return buf
}

// decodeRecord parses a hot payload. sketchW is the store-wide sketch
// width every record must carry.
func decodeRecord(p []byte, sketchW int) (*Record, error) {
	rec := &Record{}
	u32 := func() (uint32, error) {
		if len(p) < 4 {
			return 0, errors.New("short payload")
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, nil
	}
	u64 := func() (uint64, error) {
		if len(p) < 8 {
			return 0, errors.New("short payload")
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, nil
	}
	f64s := func(n int) ([]float64, error) {
		if len(p) < 8*n {
			return nil, errors.New("short payload")
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
		p = p[8*n:]
		return out, nil
	}
	idLen, err := u32()
	if err != nil {
		return nil, err
	}
	if int(idLen) > len(p) {
		return nil, errors.New("short payload")
	}
	rec.ID = string(p[:idLen])
	p = p[idLen:]
	label, err := u64()
	if err != nil {
		return nil, err
	}
	rec.Label = int(int64(label))
	if rec.Seq, err = u64(); err != nil {
		return nil, err
	}
	n32, err := u32()
	if err != nil {
		return nil, err
	}
	rec.N = int(n32)
	first, err := u64()
	if err != nil {
		return nil, err
	}
	last, err := u64()
	if err != nil {
		return nil, err
	}
	rec.First, rec.Last = math.Float64frombits(first), math.Float64frombits(last)
	if rec.Sketch.Upper, err = f64s(sketchW); err != nil {
		return nil, err
	}
	if rec.Sketch.Lower, err = f64s(sketchW); err != nil {
		return nil, err
	}
	radius, err := u32()
	if err != nil {
		return nil, err
	}
	envN, err := u32()
	if err != nil {
		return nil, err
	}
	if int(envN) != rec.N {
		return nil, fmt.Errorf("envelope length %d != series length %d", envN, rec.N)
	}
	rec.Envelope.Radius = int(int32(radius))
	if rec.Envelope.Upper, err = f64s(rec.N); err != nil {
		return nil, err
	}
	if rec.Envelope.Lower, err = f64s(rec.N); err != nil {
		return nil, err
	}
	off, err := u64()
	if err != nil {
		return nil, err
	}
	rec.off = int64(off)
	if len(p) != 0 {
		return nil, errors.New("trailing bytes in record payload")
	}
	return rec, nil
}

// Append persists rec (which must carry Values, a Sketch at the store's
// width, and its Envelope) to the active segment: the value block first,
// then the hot record pointing at it. The active segment seals once it
// reaches the configured record count.
func (st *Store) Append(rec Record) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	return st.appendLocked(rec)
}

// appendLocked is Append's body; Compact re-appends live records
// through it under its own critical section.
func (st *Store) appendLocked(rec Record) error {
	if len(rec.Values) == 0 || rec.N != len(rec.Values) {
		return fmt.Errorf("store: record %q needs Values (N=%d, len=%d)", rec.ID, rec.N, len(rec.Values))
	}
	if rec.Sketch.Width() != st.man.SketchWidth {
		return fmt.Errorf("store: record %q has sketch width %d, store uses %d", rec.ID, rec.Sketch.Width(), st.man.SketchWidth)
	}
	if len(rec.Envelope.Upper) != rec.N {
		return fmt.Errorf("store: record %q has envelope length %d for %d values", rec.ID, len(rec.Envelope.Upper), rec.N)
	}
	w := st.active

	vbuf := make([]byte, 0, 4+8*rec.N+4)
	vbuf = binary.LittleEndian.AppendUint32(vbuf, uint32(rec.N))
	for _, v := range rec.Values {
		vbuf = binary.LittleEndian.AppendUint64(vbuf, math.Float64bits(v))
	}
	vbuf = binary.LittleEndian.AppendUint32(vbuf, crc32.ChecksumIEEE(vbuf[4:4+8*rec.N]))
	if _, err := w.val.Write(vbuf); err != nil {
		return fmt.Errorf("store: appending values of %q: %w", rec.ID, err)
	}
	valOff := w.valOff
	w.valOff += int64(len(vbuf))

	payload := encodeRecord(&rec, valOff)
	hbuf := make([]byte, 0, 4+len(payload)+4)
	hbuf = binary.LittleEndian.AppendUint32(hbuf, uint32(len(payload)))
	hbuf = append(hbuf, payload...)
	hbuf = binary.LittleEndian.AppendUint32(hbuf, crc32.ChecksumIEEE(payload))
	if _, err := w.hot.Write(hbuf); err != nil {
		return fmt.Errorf("store: appending record %q: %w", rec.ID, err)
	}
	w.hotCRC = crc32.Update(w.hotCRC, crc32.IEEETable, hbuf)
	w.records++

	stored := rec
	stored.Values = nil
	stored.src = st.sources[w.seg]
	stored.off = valOff
	st.records = append(st.records, &stored)

	if w.records >= st.man.SegmentRecords {
		return st.sealLocked()
	}
	return nil
}

// sealLocked turns the active segment immutable and opens a fresh one,
// committing both through the manifest.
func (st *Store) sealLocked() error {
	w := st.active
	if err := w.hot.Sync(); err != nil {
		return fmt.Errorf("store: sealing segment %d: %w", w.seg, err)
	}
	if err := w.val.Sync(); err != nil {
		return fmt.Errorf("store: sealing segment %d: %w", w.seg, err)
	}
	w.closeFiles()
	seg := st.man.NextSegment
	st.man.NextSegment++
	st.man.Sealed = append(st.man.Sealed, sealedSegment{Seg: w.seg, Records: w.records, HotCRC: w.hotCRC})
	st.man.Active = seg
	next, err := st.newSegment(seg)
	if err != nil {
		return err
	}
	st.active = next
	return st.writeManifest()
}

// Tombstone marks the record with the given insertion sequence dead (by
// appending to the tombstone log). The ID is recorded for auditability;
// liveness keys on Seq alone, so re-adding an ID later is safe.
func (st *Store) Tombstone(id string, seq uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	line, err := json.Marshal(tombstone{ID: id, Seq: seq})
	if err != nil {
		return fmt.Errorf("store: encoding tombstone: %w", err)
	}
	if _, err := st.tomb.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: appending tombstone for %q: %w", id, err)
	}
	st.dead[seq] = true
	return nil
}

// Live returns the live (non-tombstoned) records in ascending insertion
// sequence order. The returned slice is fresh; the records are shared.
func (st *Store) Live() []*Record {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.liveLocked()
}

func (st *Store) liveLocked() []*Record {
	out := make([]*Record, 0, len(st.records))
	for _, rec := range st.records {
		if !st.dead[rec.Seq] {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Compact rewrites the live records into fresh segments, truncates the
// tombstone log, and unlinks the old segment files. Records loaded
// before the compaction keep reading through their original handles.
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	live := st.liveLocked()
	// Old sources must be open before their files are unlinked, or a
	// copy-on-write reader materialising later would find nothing.
	for _, src := range st.sources {
		if _, err := src.file(); err != nil {
			return fmt.Errorf("store: compact: pinning old segment: %w", err)
		}
	}
	oldSegs := make([]int, 0, len(st.man.Sealed)+1)
	for _, s := range st.man.Sealed {
		oldSegs = append(oldSegs, s.Seg)
	}
	oldSegs = append(oldSegs, st.active.seg)
	oldSources := st.sources

	st.active.closeFiles()
	st.sources = make(map[int]*valSource)
	st.man.Sealed = nil
	st.records = nil
	st.dead = make(map[uint64]bool)
	seg := st.man.NextSegment
	st.man.NextSegment++
	st.man.Active = seg
	w, err := st.newSegment(seg)
	if err != nil {
		return err
	}
	st.active = w
	for _, rec := range live {
		vals, err := rec.LoadValues()
		if err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		nr := *rec
		nr.Values = vals
		nr.src, nr.off = nil, 0
		if err := st.appendLocked(nr); err != nil {
			return err
		}
	}
	if err := st.writeManifest(); err != nil {
		return err
	}
	if err := os.Truncate(filepath.Join(st.dir, tombstonesName), 0); err != nil {
		return fmt.Errorf("store: truncating tombstone log: %w", err)
	}
	for _, old := range oldSegs {
		os.Remove(filepath.Join(st.dir, segName(old, "hot")))
		os.Remove(filepath.Join(st.dir, segName(old, "val")))
	}
	for _, src := range oldSources {
		st.retired = append(st.retired, src)
	}
	return nil
}

// NextSeq returns one past the highest insertion sequence the store has
// seen (0 for an empty store), so a reopened index resumes its counter.
func (st *Store) NextSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var next uint64
	for _, rec := range st.records {
		if rec.Seq+1 > next {
			next = rec.Seq + 1
		}
	}
	return next
}

// Fingerprint returns the configuration fingerprint the store was
// created under.
func (st *Store) Fingerprint() string { return st.man.Fingerprint }

// SketchWidth returns the stage-0 sketch width every record carries.
func (st *Store) SketchWidth() int { return st.man.SketchWidth }

// Meta returns the caller-owned manifest metadata (shared map; treat as
// read-only).
func (st *Store) Meta() map[string]string { return st.man.Meta }

// Stats summarises the store for observability surfaces.
type Stats struct {
	// Segments counts sealed segments plus the active one.
	Segments int
	// LiveRecords and Tombstones partition the stored records.
	LiveRecords, Tombstones int
	// SketchWidth is the stage-0 sketch coefficient count.
	SketchWidth int
}

// Stats returns the store's current counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	dead := 0
	for _, rec := range st.records {
		if st.dead[rec.Seq] {
			dead++
		}
	}
	return Stats{
		Segments:    len(st.man.Sealed) + 1,
		LiveRecords: len(st.records) - dead,
		Tombstones:  dead,
		SketchWidth: st.man.SketchWidth,
	}
}

// Close releases every file handle, including the retired handles kept
// alive for pre-compaction readers. Records loaded from this store must
// not LoadValues afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if st.active != nil {
		st.active.closeFiles()
	}
	if st.tomb != nil {
		st.tomb.Close()
	}
	for _, src := range st.sources {
		src.close()
	}
	for _, src := range st.retired {
		src.close()
	}
	return nil
}
