// Package store implements the append-friendly segment persistence
// format behind store-backed indexes, replacing whole-index gob: a
// directory holds a JSON manifest, immutable sealed segments, one
// active (appendable) segment, and a tombstone log.
//
// Each segment is a pair of files. The hot file (seg-NNNNNNNN.hot)
// carries everything a search needs before a candidate survives the
// bound cascade — IDs, labels, insertion sequences, lengths, raw
// endpoints (for LB_Kim), stage-0 PAA sketches and LB_Keogh envelopes —
// as length-prefixed, CRC-protected records that an Open slurps eagerly;
// its cost is O(live series · envelope), independent of the raw values.
// The value file (seg-NNNNNNNN.val) carries the raw observations as
// length-prefixed CRC-protected blocks read lazily through io.ReaderAt
// only when a candidate reaches the dynamic program, so the raw
// collection never has to fit in RAM (the layout is offset-addressed
// and mmap-friendly: fixed-layout block headers at recorded offsets).
//
// Add appends a record to the active segment (sealing it into an
// immutable segment once it reaches the configured record count);
// Remove appends to the tombstone log; Compact rewrites the live
// records into fresh segments and truncates the log. Records loaded
// before a compaction keep reading values through their original (now
// unlinked) file handles, so copy-on-write readers are never invalidated.
//
// # Durability
//
// All filesystem access goes through the vfs seam, so every crash path
// is drivable from a test (vfs.FaultFS). The durability contract:
//
//   - Manifest commits (create, seal, compact, quarantine) fsync the
//     temp file before the rename and the directory after it.
//   - Tombstone appends fsync the log before returning: a returned
//     Tombstone survives any crash.
//   - Appends are acknowledged by Sync (or a seal/compact, which sync
//     internally): records appended since the last sync may be lost to
//     a power cut, never corrupted past recovery.
//   - Open truncates a torn tail on the active segment (per-record and
//     per-block CRCs make this safe), truncates a torn trailing
//     tombstone entry, and sweeps segment files no manifest references
//     (a compact that crashed between its commit and its cleanup).
//   - A corrupt sealed segment fails the open with ErrCorruptSegment —
//     or, under AllowQuarantine, is renamed aside and recorded in the
//     manifest so the survivors keep serving; Health reports the
//     damage.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	iofs "io/fs"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sdtw/internal/lower"
	"sdtw/internal/sketch"
	"sdtw/internal/vfs"
)

// Sentinel errors of the segment store. Every corruption found at Open
// or value-load time wraps one of these, so callers branch with
// errors.Is instead of matching message strings.
var (
	// ErrCorruptManifest reports an unreadable, unparsable or
	// version-incompatible store manifest (or a directory that is not a
	// store at all).
	ErrCorruptManifest = errors.New("corrupt store manifest")
	// ErrCorruptSegment reports a segment file whose contents do not
	// match its recorded layout or checksums.
	ErrCorruptSegment = errors.New("corrupt store segment")
	// ErrStoreExists reports a Create into a directory already holding a
	// store.
	ErrStoreExists = errors.New("store already exists")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store closed")
	// ErrTornTail reports an unsynced suffix torn off by a crash: a
	// Verify finding on the active segment or the tombstone log (Open
	// and Repair truncate it instead).
	ErrTornTail = errors.New("torn segment tail")
	// ErrQuarantined reports quarantined segments: Open without
	// AllowQuarantine refuses a store that holds any, and Compact
	// refuses to rewrite around them.
	ErrQuarantined = errors.New("store has quarantined segments")
)

const (
	manifestName   = "MANIFEST.json"
	tombstonesName = "tombstones.log"
	hotMagic       = "SDTWHOT1"
	valMagic       = "SDTWVAL1"
	formatVersion  = 1

	// quarantineExt is appended to a corrupt sealed segment's file names
	// when it is sidelined, preserving the bytes for forensics.
	quarantineExt = ".quarantine"

	// DefaultSegmentRecords is the seal threshold when Config leaves it
	// zero: segments stay small enough that compaction rewrites in
	// bounded chunks, large enough that a million-series store holds a
	// few hundred segments, not millions of files.
	DefaultSegmentRecords = 4096
)

// Config parameterises Create.
type Config struct {
	// Fingerprint is the index configuration fingerprint the store's
	// envelopes and sketches were computed under. Open returns it
	// verbatim; the index layer refuses fingerprints it did not expect.
	Fingerprint string
	// SketchWidth is the stage-0 sketch coefficient count every record
	// carries (>= 1).
	SketchWidth int
	// SegmentRecords is the record count at which the active segment is
	// sealed; <= 0 means DefaultSegmentRecords.
	SegmentRecords int
	// Meta carries small caller-owned configuration (index kind, series
	// length, shard membership) verbatim through the manifest.
	Meta map[string]string
	// FS is the filesystem the store lives on; nil means the real one.
	// Tests inject vfs.FaultFS here.
	FS vfs.FS
}

// OpenOptions parameterises OpenWith.
type OpenOptions struct {
	// FS is the filesystem the store lives on; nil means the real one.
	FS vfs.FS
	// AllowQuarantine lets Open sideline a corrupt sealed segment
	// (rename to seg-*.quarantine, record it in the manifest) and serve
	// the survivors, instead of failing with ErrCorruptSegment. Once a
	// store holds quarantined segments, reopening it requires this
	// option until Repair or manual intervention clears them.
	AllowQuarantine bool
}

// Health reports the damage a store is carrying: what Open recovered,
// swept, or sidelined. A zero Health is a fully intact store.
type Health struct {
	// Quarantined counts sealed segments sidelined as corrupt;
	// QuarantinedRecords counts the records unavailable with them.
	Quarantined        int
	QuarantinedRecords int
	// RecoveredRecords counts the complete records salvaged from the
	// active segment after a torn tail was truncated (0 when no
	// recovery was needed).
	RecoveredRecords int
	// TruncatedBytes counts bytes cut from the active segment and the
	// tombstone log during torn-tail recovery.
	TruncatedBytes int64
	// OrphansSwept counts segment files no manifest referenced that
	// Open removed (the residue of a crashed compact).
	OrphansSwept int
}

// Degraded reports whether the store is serving without quarantined
// records.
func (h Health) Degraded() bool { return h.Quarantined > 0 }

// Record is one persisted series: the hot metadata loaded eagerly at
// Open, plus lazy access to the raw values.
type Record struct {
	ID    string
	Label int
	// Seq is the caller's insertion sequence; Live returns records in
	// ascending Seq order and tombstones name the (ID, Seq) pair, so a
	// re-added ID never resurrects its predecessor's tombstone.
	Seq uint64
	// N is the raw value count; First and Last are the raw endpoint
	// values, kept hot so LB_Kim needs no value load.
	N           int
	First, Last float64
	Sketch      sketch.Sketch
	Envelope    lower.Envelope
	// Values carries the raw observations on Append; Open leaves it nil
	// (use LoadValues).
	Values []float64

	src *valSource
	off int64
}

// LoadValues reads, checksums and returns the record's raw values from
// the value file. Safe for concurrent use; each call reads from disk
// (callers cache — the index layer materialises at most once per
// series).
func (r *Record) LoadValues() ([]float64, error) {
	if r.Values != nil {
		out := make([]float64, len(r.Values))
		copy(out, r.Values)
		return out, nil
	}
	if r.src == nil {
		return nil, fmt.Errorf("store: record %q has no value source: %w", r.ID, ErrCorruptSegment)
	}
	f, err := r.src.file()
	if err != nil {
		return nil, fmt.Errorf("store: opening values of %q: %w", r.ID, err)
	}
	var hdr [4]byte
	if _, err := f.ReadAt(hdr[:], r.off); err != nil {
		return nil, fmt.Errorf("store: reading value block of %q: %v: %w", r.ID, err, ErrCorruptSegment)
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n != r.N {
		return nil, fmt.Errorf("store: value block of %q holds %d values, hot record says %d: %w", r.ID, n, r.N, ErrCorruptSegment)
	}
	buf := make([]byte, 8*n+4)
	if _, err := f.ReadAt(buf, r.off+4); err != nil {
		return nil, fmt.Errorf("store: reading value block of %q: %v: %w", r.ID, err, ErrCorruptSegment)
	}
	body, sum := buf[:8*n], binary.LittleEndian.Uint32(buf[8*n:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("store: value block of %q fails its checksum: %w", r.ID, ErrCorruptSegment)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return vals, nil
}

// valSource is one segment's lazily opened value file. It outlives
// compaction: the handle stays open (and readable) after the file is
// unlinked, so records captured by copy-on-write readers keep loading.
type valSource struct {
	fs   vfs.FS
	path string
	once sync.Once
	f    vfs.File
	err  error
}

func (v *valSource) file() (vfs.File, error) {
	v.once.Do(func() {
		f, err := v.fs.Open(v.path)
		if err != nil {
			v.err = err
			return
		}
		v.f = f
	})
	return v.f, v.err
}

func (v *valSource) close() {
	v.once.Do(func() { v.err = iofs.ErrClosed })
	if v.f != nil {
		v.f.Close()
	}
}

// manifest is the store's committed state; it is rewritten atomically
// (synced temp file + rename + directory sync) on create, seal,
// compact and quarantine.
type manifest struct {
	Version        int               `json:"version"`
	Fingerprint    string            `json:"fingerprint"`
	SketchWidth    int               `json:"sketch_width"`
	SegmentRecords int               `json:"segment_records"`
	Meta           map[string]string `json:"meta,omitempty"`
	// NextSegment numbers segments monotonically across seals and
	// compactions, so new files never collide with retired ones.
	NextSegment int             `json:"next_segment"`
	Sealed      []sealedSegment `json:"sealed"`
	// Active is the appendable segment's number (always present).
	Active int `json:"active"`
	// Quarantined lists sealed segments sidelined as corrupt, in the
	// order they were quarantined.
	Quarantined []quarantinedSegment `json:"quarantined,omitempty"`
}

type sealedSegment struct {
	Seg     int    `json:"seg"`
	Records int    `json:"records"`
	HotCRC  uint32 `json:"hot_crc"`
}

// quarantinedSegment records a sealed segment sidelined as corrupt: its
// files live on under seg-*.quarantine names for forensics, its records
// are unavailable, and Reason preserves what the open found.
type quarantinedSegment struct {
	Seg     int    `json:"seg"`
	Records int    `json:"records"`
	Reason  string `json:"reason,omitempty"`
}

// tombstone is one line of tombstones.log.
type tombstone struct {
	ID  string `json:"id"`
	Seq uint64 `json:"seq"`
}

// Store is an open segment store. Append, Tombstone, Compact and Close
// serialise on an internal lock; Record.LoadValues is lock-free and may
// run concurrently with all of them.
type Store struct {
	dir string
	fs  vfs.FS

	mu      sync.Mutex
	man     manifest
	records []*Record
	dead    map[uint64]bool
	active  *segWriter
	sources map[int]*valSource
	retired []*valSource
	tomb    vfs.File
	health  Health
	// deferManifest suppresses the manifest commit a mid-compact seal
	// would otherwise write: with the orphan sweep, an intermediate
	// manifest that already dropped the old segments would turn a crash
	// mid-compact into data loss.
	deferManifest bool
	closed        bool
}

// segWriter is the active segment's append state.
type segWriter struct {
	seg      int
	hot, val vfs.File
	hotCRC   uint32 // running CRC over the whole hot file
	records  int
	valOff   int64
}

func segName(seg int, ext string) string { return fmt.Sprintf("seg-%08d.%s", seg, ext) }

func (st *Store) segPath(seg int, ext string) string {
	return filepath.Join(st.dir, segName(seg, ext))
}

// Create initialises a new store in dir (created if absent; must not
// already hold a store) and returns it open for appends.
func Create(dir string, cfg Config) (*Store, error) {
	if cfg.SketchWidth < 1 {
		return nil, fmt.Errorf("store: sketch width must be >= 1, got %d", cfg.SketchWidth)
	}
	if cfg.SegmentRecords <= 0 {
		cfg.SegmentRecords = DefaultSegmentRecords
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	if fsys.Exists(filepath.Join(dir, manifestName)) {
		return nil, fmt.Errorf("store: %s: %w", dir, ErrStoreExists)
	}
	st := &Store{
		dir: dir,
		fs:  fsys,
		man: manifest{
			Version:        formatVersion,
			Fingerprint:    cfg.Fingerprint,
			SketchWidth:    cfg.SketchWidth,
			SegmentRecords: cfg.SegmentRecords,
			Meta:           cfg.Meta,
			NextSegment:    2,
			Active:         1,
		},
		dead:    make(map[uint64]bool),
		sources: make(map[int]*valSource),
	}
	tomb, _, err := fsys.OpenAppend(filepath.Join(dir, tombstonesName))
	if err != nil {
		return nil, fmt.Errorf("store: creating tombstone log: %w", err)
	}
	st.tomb = tomb
	if st.active, err = st.newSegment(1); err != nil {
		tomb.Close()
		return nil, err
	}
	// The manifest commit's directory sync also makes the segment and
	// tombstone file names durable.
	if err := st.writeManifest(); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

// newSegment opens a fresh active segment and writes (and syncs) its
// headers.
func (st *Store) newSegment(seg int) (*segWriter, error) {
	hotPath := st.segPath(seg, "hot")
	valPath := st.segPath(seg, "val")
	hot, err := st.fs.Create(hotPath)
	if err != nil {
		return nil, fmt.Errorf("store: creating segment %d: %w", seg, err)
	}
	val, err := st.fs.Create(valPath)
	if err != nil {
		hot.Close()
		return nil, fmt.Errorf("store: creating segment %d: %w", seg, err)
	}
	w := &segWriter{seg: seg, hot: hot, val: val}
	hotHdr := st.hotHeader()
	if _, err := hot.Write(hotHdr); err != nil {
		w.closeFiles()
		return nil, fmt.Errorf("store: writing segment %d header: %w", seg, err)
	}
	w.hotCRC = crc32.ChecksumIEEE(hotHdr)
	if _, err := val.Write([]byte(valMagic)); err != nil {
		w.closeFiles()
		return nil, fmt.Errorf("store: writing segment %d header: %w", seg, err)
	}
	w.valOff = int64(len(valMagic))
	if err := hot.Sync(); err != nil {
		w.closeFiles()
		return nil, fmt.Errorf("store: syncing segment %d header: %w", seg, err)
	}
	if err := val.Sync(); err != nil {
		w.closeFiles()
		return nil, fmt.Errorf("store: syncing segment %d header: %w", seg, err)
	}
	st.sources[seg] = &valSource{fs: st.fs, path: valPath}
	return w, nil
}

func (w *segWriter) closeFiles() {
	if w.hot != nil {
		w.hot.Close()
	}
	if w.val != nil {
		w.val.Close()
	}
}

// hotHeader encodes the per-segment config header: magic, version, and
// the config fingerprint (so a segment file found on its own still
// names the configuration it was written under).
func (st *Store) hotHeader() []byte {
	fp := []byte(st.man.Fingerprint)
	buf := make([]byte, 0, len(hotMagic)+8+len(fp)+4)
	buf = append(buf, hotMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.man.SketchWidth))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fp)))
	buf = append(buf, fp...)
	return buf
}

// writeManifest commits the manifest durably: synced temp file, rename
// over the old manifest, directory sync. A power cut leaves either the
// old manifest or the new one, never a torn mix, and the rename cannot
// be silently undone.
func (st *Store) writeManifest() error {
	data, err := json.MarshalIndent(st.man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	tmp := filepath.Join(st.dir, manifestName+".tmp")
	if st.fs.Exists(tmp) {
		if err := st.fs.Remove(tmp); err != nil {
			return fmt.Errorf("store: clearing stale manifest temp: %w", err)
		}
	}
	f, err := st.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if err := st.fs.Rename(tmp, filepath.Join(st.dir, manifestName)); err != nil {
		return fmt.Errorf("store: committing manifest: %w", err)
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		return fmt.Errorf("store: committing manifest: %w", err)
	}
	return nil
}

// Open opens an existing store on the real filesystem with default
// options; see OpenWith.
func Open(dir string) (*Store, error) { return OpenWith(dir, OpenOptions{}) }

// OpenWith opens an existing store, eagerly loading every segment's hot
// records (IDs, endpoints, sketches, envelopes) and the tombstone log;
// raw values stay on disk until Record.LoadValues. Crash residue is
// repaired on the way in: orphaned segment files are swept, a torn tail
// on the active segment or the tombstone log is truncated (counted in
// Health). Corruption in a sealed segment fails the open with
// ErrCorruptSegment — or quarantines the segment under
// OpenOptions.AllowQuarantine.
func OpenWith(dir string, opts OpenOptions) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: %s: %v: %w", dir, err, ErrCorruptManifest)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("store: %s: %v: %w", dir, err, ErrCorruptManifest)
	}
	if man.Version != formatVersion {
		return nil, fmt.Errorf("store: %s: manifest version %d, want %d: %w", dir, man.Version, formatVersion, ErrCorruptManifest)
	}
	if man.SketchWidth < 1 || man.Active < 1 || man.SegmentRecords < 1 {
		return nil, fmt.Errorf("store: %s: manifest fields out of range: %w", dir, ErrCorruptManifest)
	}
	if len(man.Quarantined) > 0 && !opts.AllowQuarantine {
		return nil, fmt.Errorf("store: %s: %d quarantined segments (reopen with AllowQuarantine, or repair): %w", dir, len(man.Quarantined), ErrQuarantined)
	}
	st := &Store{
		dir:     dir,
		fs:      fsys,
		man:     man,
		dead:    make(map[uint64]bool),
		sources: make(map[int]*valSource),
	}
	ok := false
	defer func() {
		if !ok {
			st.Close()
		}
	}()
	if err := st.sweepOrphans(); err != nil {
		return nil, err
	}
	manifestDirty := false
	for i := 0; i < len(st.man.Sealed); {
		sealed := st.man.Sealed[i]
		mark := len(st.records)
		err := st.loadSealed(sealed)
		if err == nil {
			i++
			continue
		}
		if !opts.AllowQuarantine || !errors.Is(err, ErrCorruptSegment) {
			return nil, err
		}
		st.records = st.records[:mark]
		st.quarantineSealed(i, err)
		manifestDirty = true
	}
	if st.active, err = st.openActive(st.man.Active); err != nil {
		return nil, err
	}
	if err := st.loadTombstones(); err != nil {
		return nil, err
	}
	if manifestDirty {
		if err := st.writeManifest(); err != nil {
			return nil, err
		}
	}
	st.health.Quarantined = len(st.man.Quarantined)
	st.health.QuarantinedRecords = 0
	for _, q := range st.man.Quarantined {
		st.health.QuarantinedRecords += q.Records
	}
	ok = true
	return st, nil
}

// sweepOrphans removes segment files the manifest does not reference —
// the residue of a compact that crashed between its manifest commit and
// its cleanup — plus any stale manifest temp file. Quarantined files
// are never swept.
func (st *Store) sweepOrphans() error {
	names, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("store: listing %s: %w", st.dir, err)
	}
	keep := map[string]bool{manifestName: true, tombstonesName: true}
	mark := func(seg int) {
		keep[segName(seg, "hot")] = true
		keep[segName(seg, "val")] = true
	}
	for _, s := range st.man.Sealed {
		mark(s.Seg)
	}
	mark(st.man.Active)
	dirty := false
	for _, name := range names {
		if keep[name] {
			continue
		}
		segFile := strings.HasPrefix(name, "seg-") &&
			(strings.HasSuffix(name, ".hot") || strings.HasSuffix(name, ".val"))
		if !segFile && name != manifestName+".tmp" {
			continue
		}
		if err := st.fs.Remove(filepath.Join(st.dir, name)); err != nil {
			return fmt.Errorf("store: sweeping orphan %s: %w", name, err)
		}
		dirty = true
		if segFile {
			st.health.OrphansSwept++
		}
	}
	if dirty {
		if err := st.fs.SyncDir(st.dir); err != nil {
			return fmt.Errorf("store: sweeping orphans: %w", err)
		}
	}
	return nil
}

// quarantineSealed sidelines manifest entry i of Sealed: both segment
// files are renamed aside (preserving the bytes for forensics) and the
// entry moves to Quarantined with the corruption recorded. The caller
// commits the manifest once loading finishes.
func (st *Store) quarantineSealed(i int, cause error) {
	s := st.man.Sealed[i]
	delete(st.sources, s.Seg)
	for _, ext := range []string{"hot", "val"} {
		from := st.segPath(s.Seg, ext)
		if st.fs.Exists(from) {
			// Best effort: a failed rename leaves an orphan for the next
			// sweep, not a failed open.
			_ = st.fs.Rename(from, from+quarantineExt)
		}
	}
	st.man.Sealed = append(st.man.Sealed[:i], st.man.Sealed[i+1:]...)
	st.man.Quarantined = append(st.man.Quarantined, quarantinedSegment{
		Seg:     s.Seg,
		Records: s.Records,
		Reason:  cause.Error(),
	})
}

// loadSealed reads one sealed segment's hot file strictly: whole-file
// CRC, header, every record, and the committed record count must all
// check out.
func (st *Store) loadSealed(sealed sealedSegment) error {
	seg := sealed.Seg
	data, err := st.fs.ReadFile(st.segPath(seg, "hot"))
	if err != nil {
		return fmt.Errorf("store: segment %d: %v: %w", seg, err, ErrCorruptSegment)
	}
	if crc32.ChecksumIEEE(data) != sealed.HotCRC {
		return fmt.Errorf("store: segment %d fails its checksum: %w", seg, ErrCorruptSegment)
	}
	header := st.hotHeader()
	if len(data) < len(header) || string(data[:len(header)]) != string(header) {
		return fmt.Errorf("store: segment %d header does not match the manifest configuration: %w", seg, ErrCorruptSegment)
	}
	src, ok := st.sources[seg]
	if !ok {
		src = &valSource{fs: st.fs, path: st.segPath(seg, "val")}
		st.sources[seg] = src
	}
	rest := data[len(header):]
	count := 0
	for len(rest) > 0 {
		if len(rest) < 4 {
			return fmt.Errorf("store: segment %d: torn record length: %w", seg, ErrCorruptSegment)
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		if plen < 0 || len(rest) < 4+plen+4 {
			return fmt.Errorf("store: segment %d: torn record: %w", seg, ErrCorruptSegment)
		}
		payload := rest[4 : 4+plen]
		sum := binary.LittleEndian.Uint32(rest[4+plen:])
		if crc32.ChecksumIEEE(payload) != sum {
			return fmt.Errorf("store: segment %d record %d fails its checksum: %w", seg, count, ErrCorruptSegment)
		}
		rec, err := decodeRecord(payload, st.man.SketchWidth)
		if err != nil {
			return fmt.Errorf("store: segment %d record %d: %v: %w", seg, count, err, ErrCorruptSegment)
		}
		rec.src = src
		st.records = append(st.records, rec)
		rest = rest[4+plen+4:]
		count++
	}
	if count != sealed.Records {
		return fmt.Errorf("store: segment %d holds %d records, manifest says %d: %w", seg, count, sealed.Records, ErrCorruptSegment)
	}
	return nil
}

// activeScan is the read-only analysis of an active segment: how much
// of it survived the last crash and where the intact prefix ends in
// each file. Verify reports it; openActive applies it.
type activeScan struct {
	// headerTorn marks a segment whose durable prefix never reached a
	// full header (or whose hot file is missing): recreate it empty.
	headerTorn bool
	// tornBytes is the hot prefix length when headerTorn (counted as
	// truncated once the segment is recreated).
	tornBytes int64
	recs      []*Record
	keep      int // recs[:keep] have intact value blocks
	hotSize   int64
	hotEnd    int64 // hot-file offset just past recs[keep-1]
	hotCRC    uint32
	valSize   int64
	valEnd    int64 // val-file offset just past recs[keep-1]'s block
	magicOK   bool  // val file present with an intact magic
}

func (s *activeScan) intact() bool {
	return !s.headerTorn && s.magicOK && s.keep == len(s.recs) &&
		s.hotEnd == s.hotSize && s.valEnd == s.valSize
}

// scanActive analyses the active segment without touching it. The
// active segment has no committed CRC or record count; its per-record
// and per-value-block checksums decide how much of it survived the last
// crash. Only real corruption — a full-length header that does not
// match the manifest configuration — is an error; every crash shape is
// a scan result.
func (st *Store) scanActive(seg int) (*activeScan, error) {
	hotPath := st.segPath(seg, "hot")
	valPath := st.segPath(seg, "val")
	header := st.hotHeader()
	data, err := st.fs.ReadFile(hotPath)
	if err != nil {
		if !errors.Is(err, iofs.ErrNotExist) {
			return nil, fmt.Errorf("store: segment %d: %v: %w", seg, err, ErrCorruptSegment)
		}
		data = nil
	}
	if len(data) < len(header) {
		if string(data) != string(header[:len(data)]) {
			return nil, fmt.Errorf("store: segment %d header does not match the manifest configuration: %w", seg, ErrCorruptSegment)
		}
		return &activeScan{headerTorn: true, tornBytes: int64(len(data))}, nil
	}
	if string(data[:len(header)]) != string(header) {
		return nil, fmt.Errorf("store: segment %d header does not match the manifest configuration: %w", seg, ErrCorruptSegment)
	}
	scan := &activeScan{hotSize: int64(len(data))}

	// Pass 1: parse hot records up to the first tear or checksum
	// failure.
	var ends []int
	off := len(header)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 4 {
			break
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		if plen < 0 || len(rest) < 4+plen+4 {
			break
		}
		payload := rest[4 : 4+plen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4+plen:]) {
			break
		}
		rec, err := decodeRecord(payload, st.man.SketchWidth)
		if err != nil {
			break
		}
		scan.recs = append(scan.recs, rec)
		off += 4 + plen + 4
		ends = append(ends, off)
	}

	// Pass 2: hot and val are synced independently, so a durable hot
	// record may reference a dropped or torn value block — verify each
	// block and keep only the prefix whose values are intact.
	if vr, err := st.fs.Open(valPath); err == nil {
		var magic [len(valMagic)]byte
		if _, err := vr.ReadAt(magic[:], 0); err == nil && string(magic[:]) == valMagic {
			scan.magicOK = true
			scan.keep = len(scan.recs)
			for i, rec := range scan.recs {
				if !valBlockOK(vr, rec) {
					scan.keep = i
					break
				}
			}
		}
		vr.Close()
		if scan.valSize, err = st.fs.Size(valPath); err != nil {
			return nil, fmt.Errorf("store: segment %d values: %v: %w", seg, err, ErrCorruptSegment)
		}
	} else if !errors.Is(err, iofs.ErrNotExist) {
		return nil, fmt.Errorf("store: segment %d values: %v: %w", seg, err, ErrCorruptSegment)
	}

	scan.hotEnd = int64(len(header))
	scan.valEnd = int64(len(valMagic))
	if scan.keep > 0 {
		scan.hotEnd = int64(ends[scan.keep-1])
		last := scan.recs[scan.keep-1]
		scan.valEnd = last.off + 4 + 8*int64(last.N) + 4
	}
	scan.hotCRC = crc32.ChecksumIEEE(data[:scan.hotEnd])
	return scan, nil
}

// openActive loads the active segment leniently and returns its append
// writer: everything past the first damage the scan found — an
// unsynced, therefore unacknowledged, suffix — is truncated away. A
// missing or header-torn active segment is recreated empty.
func (st *Store) openActive(seg int) (*segWriter, error) {
	hotPath := st.segPath(seg, "hot")
	valPath := st.segPath(seg, "val")
	scan, err := st.scanActive(seg)
	if err != nil {
		return nil, err
	}
	if scan.headerTorn {
		return st.recreateActive(seg, hotPath, valPath, scan.tornBytes)
	}
	src, ok := st.sources[seg]
	if !ok {
		src = &valSource{fs: st.fs, path: valPath}
		st.sources[seg] = src
	}
	recs, keep := scan.recs, scan.keep
	for _, rec := range recs[:keep] {
		rec.src = src
	}
	hotEnd, valEnd := scan.hotEnd, scan.valEnd
	truncated := false
	if hotEnd < scan.hotSize {
		if err := st.fs.Truncate(hotPath, hotEnd); err != nil {
			return nil, fmt.Errorf("store: recovering segment %d: %w", seg, err)
		}
		st.health.TruncatedBytes += scan.hotSize - hotEnd
		truncated = true
	}
	if !scan.magicOK {
		// The value file is missing or lost even its magic; keep == 0,
		// so no hot record references it — start it over.
		if st.fs.Exists(valPath) {
			if err := st.fs.Remove(valPath); err != nil {
				return nil, fmt.Errorf("store: recovering segment %d: %w", seg, err)
			}
		}
		vw, err := st.fs.Create(valPath)
		if err != nil {
			return nil, fmt.Errorf("store: recovering segment %d: %w", seg, err)
		}
		if _, err := vw.Write([]byte(valMagic)); err != nil {
			vw.Close()
			return nil, fmt.Errorf("store: recovering segment %d: %w", seg, err)
		}
		if err := vw.Sync(); err != nil {
			vw.Close()
			return nil, fmt.Errorf("store: recovering segment %d: %w", seg, err)
		}
		vw.Close()
		truncated = true
	}

	hot, hotSize, err := st.fs.OpenAppend(hotPath)
	if err != nil {
		return nil, fmt.Errorf("store: reopening active segment: %w", err)
	}
	val, valSize, err := st.fs.OpenAppend(valPath)
	if err != nil {
		hot.Close()
		return nil, fmt.Errorf("store: reopening active segment: %w", err)
	}
	w := &segWriter{seg: seg, hot: hot, val: val, hotCRC: scan.hotCRC, records: keep, valOff: valEnd}
	if valSize > valEnd {
		if err := st.fs.Truncate(valPath, valEnd); err != nil {
			w.closeFiles()
			return nil, fmt.Errorf("store: recovering segment %d: %w", seg, err)
		}
		st.health.TruncatedBytes += valSize - valEnd
		truncated = true
	} else if valSize < valEnd || hotSize != hotEnd {
		w.closeFiles()
		return nil, fmt.Errorf("store: segment %d changed underfoot during recovery: %w", seg, ErrCorruptSegment)
	}
	if truncated {
		// Make the repaired shape durable so the cut tail cannot
		// resurface after a later crash.
		if err := w.hot.Sync(); err != nil {
			w.closeFiles()
			return nil, fmt.Errorf("store: recovering segment %d: %w", seg, err)
		}
		if err := w.val.Sync(); err != nil {
			w.closeFiles()
			return nil, fmt.Errorf("store: recovering segment %d: %w", seg, err)
		}
		st.health.RecoveredRecords = keep
	}
	st.records = append(st.records, recs[:keep]...)
	return w, nil
}

// recreateActive replaces an active segment whose durable prefix never
// reached a full header (or whose files are missing entirely) with a
// fresh empty one.
func (st *Store) recreateActive(seg int, hotPath, valPath string, tornBytes int64) (*segWriter, error) {
	for _, p := range []string{hotPath, valPath} {
		if st.fs.Exists(p) {
			if err := st.fs.Remove(p); err != nil {
				return nil, fmt.Errorf("store: recovering segment %d: %w", seg, err)
			}
		}
	}
	delete(st.sources, seg)
	w, err := st.newSegment(seg)
	if err != nil {
		return nil, err
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		w.closeFiles()
		return nil, fmt.Errorf("store: recovering segment %d: %w", seg, err)
	}
	if tornBytes > 0 {
		st.health.TruncatedBytes += tornBytes
	}
	return w, nil
}

// valBlockOK verifies one value block (length prefix, count match and
// CRC) through an open read handle.
func valBlockOK(f vfs.File, rec *Record) bool {
	var hdr [4]byte
	if _, err := f.ReadAt(hdr[:], rec.off); err != nil {
		return false
	}
	if int(binary.LittleEndian.Uint32(hdr[:])) != rec.N {
		return false
	}
	buf := make([]byte, 8*rec.N+4)
	if _, err := f.ReadAt(buf, rec.off+4); err != nil {
		return false
	}
	return crc32.ChecksumIEEE(buf[:8*rec.N]) == binary.LittleEndian.Uint32(buf[8*rec.N:])
}

// loadTombstones reads the tombstone log, opens it for appending, and
// truncates a torn final entry (the residue of a crash mid-Tombstone,
// necessarily unacknowledged — complete entries all survive).
func (st *Store) loadTombstones() error {
	path := filepath.Join(st.dir, tombstonesName)
	data, err := st.fs.ReadFile(path)
	if err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return fmt.Errorf("store: reading tombstone log: %w", err)
	}
	tornAt := int64(-1)
	off := 0
	for off < len(data) {
		nl := indexByte(data[off:], '\n')
		if nl < 0 {
			// No terminating newline: the final append was torn.
			tornAt = int64(off)
			break
		}
		var tb tombstone
		if err := json.Unmarshal(data[off:off+nl], &tb); err != nil {
			if off+nl+1 == len(data) {
				// A complete-looking final line that does not parse is
				// still crash residue (the newline survived, bytes
				// before it did not); anything earlier is real
				// corruption.
				tornAt = int64(off)
				break
			}
			return fmt.Errorf("store: tombstone log: %v: %w", err, ErrCorruptManifest)
		}
		st.dead[tb.Seq] = true
		off += nl + 1
	}
	if tornAt >= 0 {
		if err := st.fs.Truncate(path, tornAt); err != nil {
			return fmt.Errorf("store: truncating torn tombstone log: %w", err)
		}
		st.health.TruncatedBytes += int64(len(data)) - tornAt
	}
	tomb, _, err := st.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("store: opening tombstone log: %w", err)
	}
	if tornAt >= 0 {
		if err := tomb.Sync(); err != nil {
			tomb.Close()
			return fmt.Errorf("store: truncating torn tombstone log: %w", err)
		}
	}
	st.tomb = tomb
	return nil
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

// encodeRecord serialises the hot payload of rec (values live in the
// val file at valOff).
func encodeRecord(rec *Record, valOff int64) []byte {
	id := []byte(rec.ID)
	w := len(rec.Sketch.Upper)
	n := len(rec.Envelope.Upper)
	buf := make([]byte, 0, 4+len(id)+8+8+4+16+16*w+4+16*n+8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(id)))
	buf = append(buf, id...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(rec.Label)))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.N))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.First))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Last))
	for _, v := range rec.Sketch.Upper {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range rec.Sketch.Lower {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Envelope.Radius))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for _, v := range rec.Envelope.Upper {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range rec.Envelope.Lower {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(valOff))
	return buf
}

// decodeRecord parses a hot payload. sketchW is the store-wide sketch
// width every record must carry.
func decodeRecord(p []byte, sketchW int) (*Record, error) {
	rec := &Record{}
	u32 := func() (uint32, error) {
		if len(p) < 4 {
			return 0, errors.New("short payload")
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, nil
	}
	u64 := func() (uint64, error) {
		if len(p) < 8 {
			return 0, errors.New("short payload")
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, nil
	}
	f64s := func(n int) ([]float64, error) {
		if len(p) < 8*n {
			return nil, errors.New("short payload")
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
		p = p[8*n:]
		return out, nil
	}
	idLen, err := u32()
	if err != nil {
		return nil, err
	}
	if int(idLen) > len(p) {
		return nil, errors.New("short payload")
	}
	rec.ID = string(p[:idLen])
	p = p[idLen:]
	label, err := u64()
	if err != nil {
		return nil, err
	}
	rec.Label = int(int64(label))
	if rec.Seq, err = u64(); err != nil {
		return nil, err
	}
	n32, err := u32()
	if err != nil {
		return nil, err
	}
	rec.N = int(n32)
	first, err := u64()
	if err != nil {
		return nil, err
	}
	last, err := u64()
	if err != nil {
		return nil, err
	}
	rec.First, rec.Last = math.Float64frombits(first), math.Float64frombits(last)
	if rec.Sketch.Upper, err = f64s(sketchW); err != nil {
		return nil, err
	}
	if rec.Sketch.Lower, err = f64s(sketchW); err != nil {
		return nil, err
	}
	radius, err := u32()
	if err != nil {
		return nil, err
	}
	envN, err := u32()
	if err != nil {
		return nil, err
	}
	if int(envN) != rec.N {
		return nil, fmt.Errorf("envelope length %d != series length %d", envN, rec.N)
	}
	rec.Envelope.Radius = int(int32(radius))
	if rec.Envelope.Upper, err = f64s(rec.N); err != nil {
		return nil, err
	}
	if rec.Envelope.Lower, err = f64s(rec.N); err != nil {
		return nil, err
	}
	off, err := u64()
	if err != nil {
		return nil, err
	}
	rec.off = int64(off)
	if len(p) != 0 {
		return nil, errors.New("trailing bytes in record payload")
	}
	return rec, nil
}

// Append persists rec (which must carry Values, a Sketch at the store's
// width, and its Envelope) to the active segment: the value block first,
// then the hot record pointing at it. The active segment seals once it
// reaches the configured record count. An Append is durable only after
// the next Sync (or seal/compact); see the package durability contract.
func (st *Store) Append(rec Record) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	return st.appendLocked(rec)
}

// appendLocked is Append's body; Compact re-appends live records
// through it under its own critical section.
func (st *Store) appendLocked(rec Record) error {
	if len(rec.Values) == 0 || rec.N != len(rec.Values) {
		return fmt.Errorf("store: record %q needs Values (N=%d, len=%d)", rec.ID, rec.N, len(rec.Values))
	}
	if rec.Sketch.Width() != st.man.SketchWidth {
		return fmt.Errorf("store: record %q has sketch width %d, store uses %d", rec.ID, rec.Sketch.Width(), st.man.SketchWidth)
	}
	if len(rec.Envelope.Upper) != rec.N {
		return fmt.Errorf("store: record %q has envelope length %d for %d values", rec.ID, len(rec.Envelope.Upper), rec.N)
	}
	w := st.active

	vbuf := make([]byte, 0, 4+8*rec.N+4)
	vbuf = binary.LittleEndian.AppendUint32(vbuf, uint32(rec.N))
	for _, v := range rec.Values {
		vbuf = binary.LittleEndian.AppendUint64(vbuf, math.Float64bits(v))
	}
	vbuf = binary.LittleEndian.AppendUint32(vbuf, crc32.ChecksumIEEE(vbuf[4:4+8*rec.N]))
	if _, err := w.val.Write(vbuf); err != nil {
		return fmt.Errorf("store: appending values of %q: %w", rec.ID, err)
	}
	valOff := w.valOff
	w.valOff += int64(len(vbuf))

	payload := encodeRecord(&rec, valOff)
	hbuf := make([]byte, 0, 4+len(payload)+4)
	hbuf = binary.LittleEndian.AppendUint32(hbuf, uint32(len(payload)))
	hbuf = append(hbuf, payload...)
	hbuf = binary.LittleEndian.AppendUint32(hbuf, crc32.ChecksumIEEE(payload))
	if _, err := w.hot.Write(hbuf); err != nil {
		return fmt.Errorf("store: appending record %q: %w", rec.ID, err)
	}
	w.hotCRC = crc32.Update(w.hotCRC, crc32.IEEETable, hbuf)
	w.records++

	stored := rec
	stored.Values = nil
	stored.src = st.sources[w.seg]
	stored.off = valOff
	st.records = append(st.records, &stored)

	if w.records >= st.man.SegmentRecords {
		return st.sealLocked()
	}
	return nil
}

// sealLocked turns the active segment immutable and opens a fresh one,
// committing both through the manifest (unless a running compact has
// deferred the commit to its own single final one).
func (st *Store) sealLocked() error {
	w := st.active
	if err := w.hot.Sync(); err != nil {
		return fmt.Errorf("store: sealing segment %d: %w", w.seg, err)
	}
	if err := w.val.Sync(); err != nil {
		return fmt.Errorf("store: sealing segment %d: %w", w.seg, err)
	}
	w.closeFiles()
	seg := st.man.NextSegment
	st.man.NextSegment++
	st.man.Sealed = append(st.man.Sealed, sealedSegment{Seg: w.seg, Records: w.records, HotCRC: w.hotCRC})
	st.man.Active = seg
	next, err := st.newSegment(seg)
	if err != nil {
		return err
	}
	st.active = next
	if st.deferManifest {
		return nil
	}
	return st.writeManifest()
}

// Sync makes every append so far durable: the acknowledgement barrier
// of the durability contract. Tombstones need no Sync (each append
// syncs itself); the manifest is committed durably by seal and compact.
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if err := st.active.hot.Sync(); err != nil {
		return fmt.Errorf("store: syncing active segment: %w", err)
	}
	if err := st.active.val.Sync(); err != nil {
		return fmt.Errorf("store: syncing active segment: %w", err)
	}
	return nil
}

// Tombstone marks the record with the given insertion sequence dead (by
// appending to the tombstone log and syncing it — a returned Tombstone
// is durable). The ID is recorded for auditability; liveness keys on
// Seq alone, so re-adding an ID later is safe.
func (st *Store) Tombstone(id string, seq uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	line, err := json.Marshal(tombstone{ID: id, Seq: seq})
	if err != nil {
		return fmt.Errorf("store: encoding tombstone: %w", err)
	}
	if _, err := st.tomb.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: appending tombstone for %q: %w", id, err)
	}
	if err := st.tomb.Sync(); err != nil {
		return fmt.Errorf("store: syncing tombstone for %q: %w", id, err)
	}
	st.dead[seq] = true
	return nil
}

// Live returns the live (non-tombstoned) records in ascending insertion
// sequence order. The returned slice is fresh; the records are shared.
func (st *Store) Live() []*Record {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.liveLocked()
}

func (st *Store) liveLocked() []*Record {
	out := make([]*Record, 0, len(st.records))
	for _, rec := range st.records {
		if !st.dead[rec.Seq] {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Compact rewrites the live records into fresh segments, truncates the
// tombstone log, and unlinks the old segment files. Records loaded
// before the compaction keep reading through their original handles.
// The manifest is committed exactly once, after the rewritten data is
// synced, so a crash at any point leaves either the old store or the
// new one (plus orphans the next Open sweeps). A store holding
// quarantined segments refuses to compact (ErrQuarantined): rewriting
// would discard the sidelined records for good.
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if len(st.man.Quarantined) > 0 {
		return fmt.Errorf("store: compact would discard %d quarantined segments: %w", len(st.man.Quarantined), ErrQuarantined)
	}
	live := st.liveLocked()
	// Old sources must be open before their files are unlinked, or a
	// copy-on-write reader materialising later would find nothing.
	for _, src := range st.sources {
		if _, err := src.file(); err != nil {
			return fmt.Errorf("store: compact: pinning old segment: %w", err)
		}
	}
	oldSegs := make([]int, 0, len(st.man.Sealed)+1)
	for _, s := range st.man.Sealed {
		oldSegs = append(oldSegs, s.Seg)
	}
	oldSegs = append(oldSegs, st.active.seg)
	oldSources := st.sources

	st.active.closeFiles()
	st.sources = make(map[int]*valSource)
	st.man.Sealed = nil
	st.records = nil
	st.dead = make(map[uint64]bool)
	seg := st.man.NextSegment
	st.man.NextSegment++
	st.man.Active = seg
	w, err := st.newSegment(seg)
	if err != nil {
		return err
	}
	st.active = w
	st.deferManifest = true
	defer func() { st.deferManifest = false }()
	for _, rec := range live {
		vals, err := rec.LoadValues()
		if err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		nr := *rec
		nr.Values = vals
		nr.src, nr.off = nil, 0
		if err := st.appendLocked(nr); err != nil {
			return err
		}
	}
	// Every re-appended record must be durable before the manifest
	// stops referencing the segments it came from.
	if err := st.active.hot.Sync(); err != nil {
		return fmt.Errorf("store: compact: syncing active segment: %w", err)
	}
	if err := st.active.val.Sync(); err != nil {
		return fmt.Errorf("store: compact: syncing active segment: %w", err)
	}
	if err := st.writeManifest(); err != nil {
		return err
	}
	// Stale tombstones name seqs the commit above excluded from the
	// rewrite, so a crash before this truncate is harmless.
	if err := st.fs.Truncate(filepath.Join(st.dir, tombstonesName), 0); err != nil {
		return fmt.Errorf("store: truncating tombstone log: %w", err)
	}
	if err := st.tomb.Sync(); err != nil {
		return fmt.Errorf("store: truncating tombstone log: %w", err)
	}
	for _, old := range oldSegs {
		// Best effort: a leftover file is an orphan the next Open
		// sweeps.
		_ = st.fs.Remove(st.segPath(old, "hot"))
		_ = st.fs.Remove(st.segPath(old, "val"))
	}
	_ = st.fs.SyncDir(st.dir)
	for _, src := range oldSources {
		st.retired = append(st.retired, src)
	}
	return nil
}

// NextSeq returns one past the highest insertion sequence the store has
// seen (0 for an empty store), so a reopened index resumes its counter.
func (st *Store) NextSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var next uint64
	for _, rec := range st.records {
		if rec.Seq+1 > next {
			next = rec.Seq + 1
		}
	}
	return next
}

// Fingerprint returns the configuration fingerprint the store was
// created under.
func (st *Store) Fingerprint() string { return st.man.Fingerprint }

// SketchWidth returns the stage-0 sketch width every record carries.
func (st *Store) SketchWidth() int { return st.man.SketchWidth }

// Meta returns the caller-owned manifest metadata (shared map; treat as
// read-only).
func (st *Store) Meta() map[string]string { return st.man.Meta }

// Health reports what the opening of this store recovered, swept or
// quarantined.
func (st *Store) Health() Health {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.health
}

// Stats summarises the store for observability surfaces.
type Stats struct {
	// Segments counts sealed segments plus the active one.
	Segments int
	// LiveRecords and Tombstones partition the stored records.
	LiveRecords, Tombstones int
	// SketchWidth is the stage-0 sketch coefficient count.
	SketchWidth int
}

// Stats returns the store's current counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	dead := 0
	for _, rec := range st.records {
		if st.dead[rec.Seq] {
			dead++
		}
	}
	return Stats{
		Segments:    len(st.man.Sealed) + 1,
		LiveRecords: len(st.records) - dead,
		Tombstones:  dead,
		SketchWidth: st.man.SketchWidth,
	}
}

// Close releases every file handle, including the retired handles kept
// alive for pre-compaction readers. Records loaded from this store must
// not LoadValues afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if st.active != nil {
		st.active.closeFiles()
	}
	if st.tomb != nil {
		st.tomb.Close()
	}
	for _, src := range st.sources {
		src.close()
	}
	for _, src := range st.retired {
		src.close()
	}
	return nil
}
