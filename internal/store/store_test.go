package store

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"sdtw/internal/lower"
	"sdtw/internal/sketch"
)

// makeRecord builds a complete record (values, envelope, sketch) for a
// deterministic pseudo-random series.
func makeRecord(t *testing.T, id string, seq uint64, n, w int) Record {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seq) + 1))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 2
	}
	env := lower.NewEnvelope(vals, 3)
	sk, err := sketch.FromEnvelope(env, w)
	if err != nil {
		t.Fatal(err)
	}
	return Record{
		ID:       id,
		Label:    int(seq % 5),
		Seq:      seq,
		N:        n,
		First:    vals[0],
		Last:     vals[n-1],
		Sketch:   sk,
		Envelope: env,
		Values:   vals,
	}
}

func mustCreate(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	st, err := Create(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// checkRecord asserts a loaded record round-trips the original exactly,
// including lazily loaded values.
func checkRecord(t *testing.T, got *Record, want Record) {
	t.Helper()
	if got.ID != want.ID || got.Label != want.Label || got.Seq != want.Seq || got.N != want.N {
		t.Fatalf("record header mismatch: got %q/%d/%d/%d want %q/%d/%d/%d",
			got.ID, got.Label, got.Seq, got.N, want.ID, want.Label, want.Seq, want.N)
	}
	if math.Float64bits(got.First) != math.Float64bits(want.First) ||
		math.Float64bits(got.Last) != math.Float64bits(want.Last) {
		t.Fatalf("record %q endpoints differ", want.ID)
	}
	if got.Envelope.Radius != want.Envelope.Radius {
		t.Fatalf("record %q radius %d want %d", want.ID, got.Envelope.Radius, want.Envelope.Radius)
	}
	checkF64s(t, want.ID+" sketch upper", got.Sketch.Upper, want.Sketch.Upper)
	checkF64s(t, want.ID+" sketch lower", got.Sketch.Lower, want.Sketch.Lower)
	checkF64s(t, want.ID+" env upper", got.Envelope.Upper, want.Envelope.Upper)
	checkF64s(t, want.ID+" env lower", got.Envelope.Lower, want.Envelope.Lower)
	vals, err := got.LoadValues()
	if err != nil {
		t.Fatalf("record %q: %v", want.ID, err)
	}
	checkF64s(t, want.ID+" values", vals, want.Values)
}

func checkF64s(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: position %d differs (%v vs %v)", what, i, got[i], want[i])
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp-a", SketchWidth: 8, SegmentRecords: 4,
		Meta: map[string]string{"kind": "engine"}})
	want := make([]Record, 11) // crosses two seal boundaries
	for i := range want {
		want[i] = makeRecord(t, "s"+strconv.Itoa(i), uint64(i), 20+i, 8)
		if err := st.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st = mustOpen(t, dir)
	defer st.Close()
	if got := st.Fingerprint(); got != "fp-a" {
		t.Fatalf("fingerprint %q", got)
	}
	if got := st.SketchWidth(); got != 8 {
		t.Fatalf("sketch width %d", got)
	}
	if got := st.Meta()["kind"]; got != "engine" {
		t.Fatalf("meta kind %q", got)
	}
	if got := st.NextSeq(); got != 11 {
		t.Fatalf("NextSeq %d want 11", got)
	}
	live := st.Live()
	if len(live) != len(want) {
		t.Fatalf("%d live records, want %d", len(live), len(want))
	}
	for i, rec := range live {
		checkRecord(t, rec, want[i])
	}
	stats := st.Stats()
	if stats.Segments != 3 || stats.LiveRecords != 11 || stats.Tombstones != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestStoreAppendAfterReopen pins that a reopened store keeps appending
// to its active segment and seals correctly.
func TestStoreAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4, SegmentRecords: 3})
	var want []Record
	for i := 0; i < 2; i++ {
		r := makeRecord(t, "a"+strconv.Itoa(i), uint64(i), 16, 4)
		want = append(want, r)
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st = mustOpen(t, dir)
	for i := 2; i < 7; i++ { // crosses the seal boundary of the reopened active segment
		r := makeRecord(t, "a"+strconv.Itoa(i), uint64(i), 16, 4)
		want = append(want, r)
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st = mustOpen(t, dir)
	defer st.Close()
	live := st.Live()
	if len(live) != len(want) {
		t.Fatalf("%d live records, want %d", len(live), len(want))
	}
	for i, rec := range live {
		checkRecord(t, rec, want[i])
	}
}

// TestStoreTombstones pins seq-keyed liveness: tombstoning an old seq
// must not kill a re-added record with the same ID.
func TestStoreTombstones(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4})
	r0 := makeRecord(t, "dup", 0, 12, 4)
	r1 := makeRecord(t, "solo", 1, 12, 4)
	for _, r := range []Record{r0, r1} {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Tombstone("dup", 0); err != nil {
		t.Fatal(err)
	}
	r2 := makeRecord(t, "dup", 2, 14, 4) // same ID, new seq
	if err := st.Append(r2); err != nil {
		t.Fatal(err)
	}
	check := func(st *Store) {
		t.Helper()
		live := st.Live()
		if len(live) != 2 {
			t.Fatalf("%d live records, want 2", len(live))
		}
		checkRecord(t, live[0], r1)
		checkRecord(t, live[1], r2)
	}
	check(st)
	st.Close()
	st = mustOpen(t, dir) // tombstone survives reopen
	defer st.Close()
	check(st)
	if stats := st.Stats(); stats.Tombstones != 1 {
		t.Fatalf("stats %+v, want 1 tombstone", stats)
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4, SegmentRecords: 3})
	var want []Record
	for i := 0; i < 10; i++ {
		r := makeRecord(t, "c"+strconv.Itoa(i), uint64(i), 16, 4)
		want = append(want, r)
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, seq := range []uint64{1, 4, 9} {
		if err := st.Tombstone(want[seq].ID, seq); err != nil {
			t.Fatal(err)
		}
	}
	// Hold a record loaded before the compaction: it must keep reading
	// through its (about to be unlinked) original segment.
	preCompact := st.Live()[0]

	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if stats := st.Stats(); stats.LiveRecords != 7 || stats.Tombstones != 0 {
		t.Fatalf("stats after compact: %+v", stats)
	}
	vals, err := preCompact.LoadValues()
	if err != nil {
		t.Fatalf("pre-compaction record no longer readable: %v", err)
	}
	checkF64s(t, "pre-compaction values", vals, want[0].Values)

	// The tombstone log must be empty and the old segment files gone.
	if data, err := os.ReadFile(filepath.Join(dir, tombstonesName)); err != nil || len(data) != 0 {
		t.Fatalf("tombstone log not truncated (err=%v len=%d)", err, len(data))
	}
	for _, old := range []int{1, 2, 3, 4} {
		if _, err := os.Stat(filepath.Join(dir, segName(old, "hot"))); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("old segment %d still on disk", old)
		}
	}

	// A fresh open sees exactly the live set, in seq order, values intact.
	st.Close()
	st = mustOpen(t, dir)
	defer st.Close()
	live := st.Live()
	if len(live) != 7 {
		t.Fatalf("%d live records after reopen, want 7", len(live))
	}
	dead := map[uint64]bool{1: true, 4: true, 9: true}
	i := 0
	for _, w := range want {
		if dead[w.Seq] {
			continue
		}
		checkRecord(t, live[i], w)
		i++
	}
	if got := st.NextSeq(); got != 9 { // highest surviving seq is 8
		t.Fatalf("NextSeq %d want 9", got)
	}
}

func TestStoreCreateValidates(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, Config{Fingerprint: "fp", SketchWidth: 0}); err == nil {
		t.Fatal("sketch width 0 accepted")
	}
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4})
	st.Close()
	if _, err := Create(dir, Config{Fingerprint: "fp", SketchWidth: 4}); !errors.Is(err, ErrStoreExists) {
		t.Fatalf("second Create: %v, want ErrStoreExists", err)
	}
}

func TestStoreAppendValidates(t *testing.T) {
	st := mustCreate(t, t.TempDir(), Config{Fingerprint: "fp", SketchWidth: 4})
	defer st.Close()
	r := makeRecord(t, "x", 0, 12, 4)
	bad := r
	bad.Values = nil
	if err := st.Append(bad); err == nil {
		t.Fatal("record without values accepted")
	}
	bad = makeRecord(t, "y", 1, 12, 8) // wrong sketch width
	if err := st.Append(bad); err == nil {
		t.Fatal("wrong sketch width accepted")
	}
	bad = r
	bad.Envelope.Upper = bad.Envelope.Upper[:3]
	if err := st.Append(bad); err == nil {
		t.Fatal("short envelope accepted")
	}
}

func TestStoreOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("open of missing dir: %v, want ErrCorruptManifest", err)
	}
}

// corruptingOpen creates a small store, applies corrupt, and returns
// Open's error.
func corruptingOpen(t *testing.T, corrupt func(dir string)) error {
	t.Helper()
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4, SegmentRecords: 2})
	for i := 0; i < 4; i++ { // two sealed segments + empty active
		if err := st.Append(makeRecord(t, "s"+strconv.Itoa(i), uint64(i), 16, 4)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	corrupt(dir)
	got, err := Open(dir)
	if err == nil {
		got.Close()
	}
	return err
}

func TestStoreOpenCorruption(t *testing.T) {
	flip := func(path string, off int64) func(string) {
		return func(dir string) {
			p := filepath.Join(dir, path)
			data, err := os.ReadFile(p)
			if err != nil {
				panic(err)
			}
			if off < 0 {
				off += int64(len(data))
			}
			data[off] ^= 0xff
			if err := os.WriteFile(p, data, 0o644); err != nil {
				panic(err)
			}
		}
	}
	cases := []struct {
		name    string
		corrupt func(dir string)
		want    error
	}{
		{"manifest json", flip(manifestName, 2), ErrCorruptManifest},
		{"manifest missing", func(dir string) { os.Remove(filepath.Join(dir, manifestName)) }, ErrCorruptManifest},
		{"sealed hot bitflip", flip(segName(1, "hot"), -20), ErrCorruptSegment},
		{"sealed hot missing", func(dir string) { os.Remove(filepath.Join(dir, segName(1, "hot"))) }, ErrCorruptSegment},
		{"sealed hot truncated", func(dir string) {
			p := filepath.Join(dir, segName(2, "hot"))
			fi, err := os.Stat(p)
			if err != nil {
				panic(err)
			}
			if err := os.Truncate(p, fi.Size()-7); err != nil {
				panic(err)
			}
		}, ErrCorruptSegment},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := corruptingOpen(t, tc.corrupt)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestStoreActiveTornTailRecovery pins the recovery semantics for the
// active segment: damage in its uncommitted tail (here a bit flip in
// the last record) is truncated away at Open — the survivors keep
// serving, Health reports the recovery, and a reopen finds nothing
// left to repair.
func TestStoreActiveTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4, SegmentRecords: 100})
	want := make([]Record, 3)
	for i := range want {
		want[i] = makeRecord(t, "s"+strconv.Itoa(i), uint64(i), 16, 4)
		if err := st.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Flip a byte inside the last record's payload: per-record CRCs
	// localise the damage, so recovery keeps the first two.
	p := filepath.Join(dir, segName(1, "hot"))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st = mustOpen(t, dir)
	live := st.Live()
	if len(live) != 2 {
		t.Fatalf("survivors = %d, want 2", len(live))
	}
	for i, rec := range live {
		checkRecord(t, rec, want[i])
	}
	h := st.Health()
	if h.RecoveredRecords != 2 || h.TruncatedBytes == 0 {
		t.Fatalf("health after recovery = %+v", h)
	}
	// The store stays writable after recovery.
	extra := makeRecord(t, "extra", 9, 16, 4)
	if err := st.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st = mustOpen(t, dir)
	defer st.Close()
	if h := st.Health(); h.RecoveredRecords != 0 || h.TruncatedBytes != 0 {
		t.Fatalf("reopen found more to repair: %+v", h)
	}
	live = st.Live()
	if len(live) != 3 {
		t.Fatalf("records after recovery+append = %d, want 3", len(live))
	}
	checkRecord(t, live[2], extra)
}

// TestStoreValueCorruption pins that a bit flip in a sealed segment's
// cold value block is caught at LoadValues time, not silently returned.
// (Sealed value blocks are not verified at Open — that is the lazy-load
// bargain — so the checksum at read time is the only guard.)
func TestStoreValueCorruption(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4, SegmentRecords: 1})
	if err := st.Append(makeRecord(t, "v", 0, 16, 4)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	p := filepath.Join(dir, segName(1, "val"))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(valMagic)+4+8] ^= 0x01 // second byte of the first value
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st = mustOpen(t, dir) // hot sections are fine; open succeeds
	defer st.Close()
	if _, err := st.Live()[0].LoadValues(); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("LoadValues on corrupt block: %v, want ErrCorruptSegment", err)
	}
}

// TestStoreFingerprintHeaderMismatch pins the per-segment config header:
// a segment written under one fingerprint refuses to load under a
// manifest claiming another (e.g. a file copied between stores).
func TestStoreFingerprintHeaderMismatch(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a := mustCreate(t, dirA, Config{Fingerprint: "fp-a", SketchWidth: 4, SegmentRecords: 2})
	b := mustCreate(t, dirB, Config{Fingerprint: "fp-b", SketchWidth: 4, SegmentRecords: 2})
	for i := 0; i < 2; i++ {
		if err := a.Append(makeRecord(t, "a"+strconv.Itoa(i), uint64(i), 16, 4)); err != nil {
			t.Fatal(err)
		}
		if err := b.Append(makeRecord(t, "b"+strconv.Itoa(i), uint64(i), 16, 4)); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	b.Close()
	// Splice B's sealed segment into A (manifest CRC will match the
	// foreign file's own bytes, so only the config header catches it).
	data, err := os.ReadFile(filepath.Join(dirB, segName(1, "hot")))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirA, segName(1, "hot")), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dirA); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("open with foreign segment: %v, want ErrCorruptSegment", err)
	}
}

func TestStoreClosed(t *testing.T) {
	st := mustCreate(t, t.TempDir(), Config{Fingerprint: "fp", SketchWidth: 4})
	st.Close()
	if err := st.Append(makeRecord(t, "x", 0, 8, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v", err)
	}
	if err := st.Tombstone("x", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Tombstone after close: %v", err)
	}
	if err := st.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
