// Verify and Repair: the offline integrity surface behind `sdtw fsck`.
// Verify walks a store directory read-only and reports every problem it
// can find; Repair applies the same recovery an Open performs (torn-tail
// truncation, orphan sweep, quarantine) and reports what changed.

package store

import (
	"encoding/json"
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"strings"

	"sdtw/internal/vfs"
)

// Issue is one problem Verify found. Err wraps the matching sentinel
// (ErrCorruptManifest, ErrCorruptSegment, ErrTornTail, ErrQuarantined),
// so callers branch with errors.Is.
type Issue struct {
	// Path is the offending file, relative to the store directory.
	Path string
	// Repairable reports whether Repair (or a plain Open) would fix
	// this without losing acknowledged data.
	Repairable bool
	Err        error
}

// Report is the outcome of a Verify pass.
type Report struct {
	// Records counts intact hot records across loadable segments.
	Records int
	// Segments counts segments checked (sealed + active).
	Segments int
	Issues   []Issue
}

// Clean reports a store with nothing wrong.
func (r *Report) Clean() bool { return len(r.Issues) == 0 }

// Repairable reports whether every issue found is fixable by Repair
// without losing acknowledged data (quarantine counts: the data is
// already unreadable).
func (r *Report) Repairable() bool {
	for _, is := range r.Issues {
		if !is.Repairable {
			return false
		}
	}
	return true
}

// Verify checks the store in dir without modifying anything: manifest
// shape, sealed segment checksums and record counts, every value block
// (sealed ones included — a full fsck reads what lazy loading would),
// the active segment's crash state, the tombstone log, and leftover
// orphan files. A nil fsys means the real filesystem.
func Verify(dir string, fsys vfs.FS) (*Report, error) {
	if fsys == nil {
		fsys = vfs.OS()
	}
	rep := &Report{}
	found := func(path string, repairable bool, err error) {
		rep.Issues = append(rep.Issues, Issue{Path: path, Repairable: repairable, Err: err})
	}
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		found(manifestName, false, fmt.Errorf("reading manifest: %v: %w", err, ErrCorruptManifest))
		return rep, nil
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		found(manifestName, false, fmt.Errorf("parsing manifest: %v: %w", err, ErrCorruptManifest))
		return rep, nil
	}
	if man.Version != formatVersion || man.SketchWidth < 1 || man.Active < 1 || man.SegmentRecords < 1 {
		found(manifestName, false, fmt.Errorf("manifest fields out of range: %w", ErrCorruptManifest))
		return rep, nil
	}
	// Scratch store: reuses the loading code without opening anything
	// for writing.
	st := &Store{dir: dir, fs: fsys, man: man, dead: make(map[uint64]bool), sources: make(map[int]*valSource)}
	defer func() {
		for _, src := range st.sources {
			src.close()
		}
	}()

	for _, q := range man.Quarantined {
		found(segName(q.Seg, "hot")+quarantineExt, true,
			fmt.Errorf("segment %d quarantined (%d records): %s: %w", q.Seg, q.Records, q.Reason, ErrQuarantined))
	}

	for _, sealed := range man.Sealed {
		rep.Segments++
		mark := len(st.records)
		if err := st.loadSealed(sealed); err != nil {
			st.records = st.records[:mark]
			found(segName(sealed.Seg, "hot"), true, err)
			continue
		}
		// Sealed value blocks are lazy at serve time; fsck reads them
		// all.
		// Not repairable: the open path never reads sealed value blocks,
		// so Repair would not quarantine this — the operator chooses
		// (restore the segment, or quarantine it by hand).
		badBlocks := verifyValBlocks(fsys, st.segPath(sealed.Seg, "val"), st.records[mark:])
		if badBlocks > 0 {
			found(segName(sealed.Seg, "val"), false,
				fmt.Errorf("segment %d: %d value blocks fail their checksums: %w", sealed.Seg, badBlocks, ErrCorruptSegment))
		}
		rep.Records += len(st.records) - mark
	}

	rep.Segments++
	scan, err := st.scanActive(man.Active)
	switch {
	case err != nil:
		found(segName(man.Active, "hot"), false, err)
	case scan.headerTorn:
		found(segName(man.Active, "hot"), true,
			fmt.Errorf("segment %d: torn or missing header (%d bytes survive): %w", man.Active, scan.tornBytes, ErrTornTail))
	case !scan.intact():
		dropped := len(scan.recs) - scan.keep
		found(segName(man.Active, "hot"), true,
			fmt.Errorf("segment %d: torn tail (%d records intact, %d lost, %d hot + %d val bytes to truncate): %w",
				man.Active, scan.keep, dropped, scan.hotSize-scan.hotEnd, scan.valSize-scan.valEnd, ErrTornTail))
		rep.Records += scan.keep
	default:
		rep.Records += scan.keep
	}

	if err := verifyTombstones(fsys, dir, found); err != nil {
		return nil, err
	}
	if err := verifyOrphans(fsys, dir, &man, found); err != nil {
		return nil, err
	}
	return rep, nil
}

// verifyValBlocks counts records whose value blocks fail verification.
func verifyValBlocks(fsys vfs.FS, valPath string, recs []*Record) int {
	f, err := fsys.Open(valPath)
	if err != nil {
		return len(recs)
	}
	defer f.Close()
	var magic [len(valMagic)]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil || string(magic[:]) != valMagic {
		return len(recs)
	}
	bad := 0
	for _, rec := range recs {
		if !valBlockOK(f, rec) {
			bad++
		}
	}
	return bad
}

// verifyTombstones checks the tombstone log the way loadTombstones
// would, reporting a torn final entry as repairable and anything
// earlier as corruption.
func verifyTombstones(fsys vfs.FS, dir string, found func(string, bool, error)) error {
	data, err := fsys.ReadFile(filepath.Join(dir, tombstonesName))
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: reading tombstone log: %w", err)
	}
	off := 0
	for off < len(data) {
		nl := indexByte(data[off:], '\n')
		if nl < 0 {
			found(tombstonesName, true,
				fmt.Errorf("torn final tombstone entry (%d bytes): %w", len(data)-off, ErrTornTail))
			return nil
		}
		var tb tombstone
		if err := json.Unmarshal(data[off:off+nl], &tb); err != nil {
			if off+nl+1 == len(data) {
				found(tombstonesName, true,
					fmt.Errorf("torn final tombstone entry (%d bytes): %w", len(data)-off, ErrTornTail))
				return nil
			}
			found(tombstonesName, false, fmt.Errorf("tombstone log: %v: %w", err, ErrCorruptManifest))
			return nil
		}
		off += nl + 1
	}
	return nil
}

// verifyOrphans reports segment files no manifest entry references.
func verifyOrphans(fsys vfs.FS, dir string, man *manifest, found func(string, bool, error)) error {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: listing %s: %w", dir, err)
	}
	keep := map[string]bool{manifestName: true, tombstonesName: true}
	mark := func(seg int) {
		keep[segName(seg, "hot")] = true
		keep[segName(seg, "val")] = true
	}
	for _, s := range man.Sealed {
		mark(s.Seg)
	}
	mark(man.Active)
	for _, q := range man.Quarantined {
		keep[segName(q.Seg, "hot")+quarantineExt] = true
		keep[segName(q.Seg, "val")+quarantineExt] = true
	}
	for _, name := range names {
		if keep[name] {
			continue
		}
		segFile := strings.HasPrefix(name, "seg-") &&
			(strings.HasSuffix(name, ".hot") || strings.HasSuffix(name, ".val"))
		if segFile || name == manifestName+".tmp" {
			found(name, true, fmt.Errorf("unreferenced file (crashed compact or commit residue)"))
		}
	}
	return nil
}

// Repair opens the store with quarantine allowed — performing the
// orphan sweep, torn-tail truncation and sealed-segment quarantine an
// Open performs — commits the result, and reports what changed. Data
// that was acknowledged durable is never touched; what Repair discards
// was either never acknowledged or already unreadable. A nil fsys means
// the real filesystem.
func Repair(dir string, fsys vfs.FS) (Health, error) {
	st, err := OpenWith(dir, OpenOptions{FS: fsys, AllowQuarantine: true})
	if err != nil {
		return Health{}, err
	}
	h := st.Health()
	if err := st.Close(); err != nil {
		return h, err
	}
	return h, nil
}
