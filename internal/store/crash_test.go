package store

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sdtw/internal/vfs"
)

// buildFaultStore creates a small store on fs with two tombstones'
// worth of history: 6 appended records (sealing at 2), seq 1
// tombstoned, everything synced. Returns the surviving seqs.
func buildFaultStore(t *testing.T, fs vfs.FS, dir string) map[uint64]bool {
	t.Helper()
	st, err := Create(dir, Config{Fingerprint: "fp", SketchWidth: 4, SegmentRecords: 2, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := st.Append(makeRecord(t, "s"+strconv.Itoa(i), uint64(i), 16, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Tombstone("s1", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return map[uint64]bool{0: true, 2: true, 3: true, 4: true, 5: true}
}

func checkLiveSeqs(t *testing.T, st *Store, want map[uint64]bool, context string) {
	t.Helper()
	live := st.Live()
	if len(live) != len(want) {
		t.Fatalf("%s: %d live records, want %d", context, len(live), len(want))
	}
	for _, rec := range live {
		if !want[rec.Seq] {
			t.Fatalf("%s: unexpected live seq %d", context, rec.Seq)
		}
		orig := makeRecord(t, rec.ID, rec.Seq, 16, 4)
		vals, err := rec.LoadValues()
		if err != nil {
			t.Fatalf("%s: loading seq %d: %v", context, rec.Seq, err)
		}
		checkF64s(t, context+" values", vals, orig.Values)
	}
}

// TestStoreCrashMidCompactSweepsOrphans is the regression test for the
// compact crash window: a power cut at EVERY filesystem operation
// inside Compact must leave a store that reopens with exactly the
// acknowledged records, and a directory with no leaked segment files
// (the old Compact leaked seg-* files forever when it crashed between
// its manifest commit and its remove loop).
func TestStoreCrashMidCompactSweepsOrphans(t *testing.T) {
	for n := 1; n < 200; n++ {
		fs := vfs.NewFaultFS(int64(1000 + n))
		dir := "store"
		want := buildFaultStore(t, fs, dir)
		st, err := OpenWith(dir, OpenOptions{FS: fs})
		if err != nil {
			t.Fatalf("crash %d: pre-compact open: %v", n, err)
		}
		fs.CrashAt(n)
		err = st.Compact()
		st.Close()
		if !fs.Crashed() {
			// The whole compact ran with fewer than n mutations: the
			// sweep is complete.
			if err != nil {
				t.Fatalf("crash %d: compact failed without a crash: %v", n, err)
			}
			fs.CrashAt(0)
			verifyCleanAfterCrash(t, fs, dir, want, n)
			return
		}
		// The crash may land in a best-effort cleanup op, in which case
		// Compact itself reports success; either way the reopen must
		// hold exactly the acknowledged records.
		if err != nil && !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("crash %d: compact failed with %v, want ErrCrashed", n, err)
		}
		fs.Recover()
		verifyCleanAfterCrash(t, fs, dir, want, n)
	}
	t.Fatal("compact never completed within 200 mutating operations")
}

func verifyCleanAfterCrash(t *testing.T, fs *vfs.FaultFS, dir string, want map[uint64]bool, n int) {
	t.Helper()
	st, err := OpenWith(dir, OpenOptions{FS: fs})
	if err != nil {
		t.Fatalf("crash %d: reopen: %v", n, err)
	}
	checkLiveSeqs(t, st, want, "crash "+strconv.Itoa(n))
	if err := st.Close(); err != nil {
		t.Fatalf("crash %d: close: %v", n, err)
	}
	// The repairing open must leave nothing behind: no orphans, no torn
	// tails, nothing quarantined.
	rep, err := Verify(dir, fs)
	if err != nil {
		t.Fatalf("crash %d: verify: %v", n, err)
	}
	if !rep.Clean() {
		t.Fatalf("crash %d: store not clean after reopen: %+v", n, rep.Issues)
	}
}

// TestStoreTornTombstoneTail: a crash mid-Tombstone leaves a torn final
// JSON line; Open must keep every complete entry and truncate the torn
// one instead of failing the whole open.
func TestStoreTornTombstoneTail(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4})
	for i := 0; i < 3; i++ {
		if err := st.Append(makeRecord(t, "s"+strconv.Itoa(i), uint64(i), 16, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Tombstone("s0", 0); err != nil {
		t.Fatal(err)
	}
	st.Close()

	p := filepath.Join(dir, tombstonesName)
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"s2","se`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st = mustOpen(t, dir)
	checkLiveSeqs(t, st, map[uint64]bool{1: true, 2: true}, "torn tombstone")
	if h := st.Health(); h.TruncatedBytes == 0 {
		t.Fatalf("health did not count the torn entry: %+v", h)
	}
	st.Close()

	// The truncation is durable: the log holds exactly the complete
	// entry again.
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 1 || strings.Contains(string(data), "s2") {
		t.Fatalf("log after recovery: %q", data)
	}

	// Garbage before the final line is real corruption, not a tear.
	if err := os.WriteFile(p, []byte("not json\n{\"id\":\"s1\",\"seq\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("mid-log garbage: %v, want ErrCorruptManifest", err)
	}
}

// TestStoreQuarantineLifecycle pins the quarantine semantics end to
// end: a corrupt sealed segment fails a plain Open, is sidelined under
// AllowQuarantine (files renamed, manifest updated, survivors served,
// health reported), makes later plain Opens fail with ErrQuarantined,
// and blocks Compact.
func TestStoreQuarantineLifecycle(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4, SegmentRecords: 2})
	for i := 0; i < 6; i++ {
		if err := st.Append(makeRecord(t, "s"+strconv.Itoa(i), uint64(i), 16, 4)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Flip a payload byte in sealed segment 2 (records s2, s3).
	p := filepath.Join(dir, segName(2, "hot"))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("plain open of corrupt store: %v, want ErrCorruptSegment", err)
	}

	st, err = OpenWith(dir, OpenOptions{AllowQuarantine: true})
	if err != nil {
		t.Fatalf("quarantining open: %v", err)
	}
	checkLiveSeqs(t, st, map[uint64]bool{0: true, 1: true, 4: true, 5: true}, "post-quarantine")
	h := st.Health()
	if h.Quarantined != 1 || h.QuarantinedRecords != 2 || !h.Degraded() {
		t.Fatalf("health after quarantine: %+v", h)
	}
	for _, ext := range []string{"hot", "val"} {
		q := filepath.Join(dir, segName(2, ext)+quarantineExt)
		if _, err := os.Stat(q); err != nil {
			t.Fatalf("quarantine file %s: %v", q, err)
		}
	}
	if err := st.Compact(); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("compact on quarantined store: %v, want ErrQuarantined", err)
	}
	// The store stays writable in degraded mode.
	if err := st.Append(makeRecord(t, "s6", 6, 16, 4)); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Quarantine is sticky: a plain Open refuses until the operator
	// opts in again.
	if _, err := Open(dir); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("plain reopen of quarantined store: %v, want ErrQuarantined", err)
	}
	st, err = OpenWith(dir, OpenOptions{AllowQuarantine: true})
	if err != nil {
		t.Fatalf("degraded reopen: %v", err)
	}
	defer st.Close()
	checkLiveSeqs(t, st, map[uint64]bool{0: true, 1: true, 4: true, 5: true, 6: true}, "degraded reopen")
	if h := st.Health(); h.Quarantined != 1 || h.QuarantinedRecords != 2 {
		t.Fatalf("health after degraded reopen: %+v", h)
	}
}

// TestStoreFailAtInjection: an injected I/O error surfaces from the
// failing operation, and the store remains consistent — the failed
// append is absent, later appends land.
func TestStoreFailAtInjection(t *testing.T) {
	fs := vfs.NewFaultFS(7)
	dir := "store"
	st, err := Create(dir, Config{Fingerprint: "fp", SketchWidth: 4, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	fs.FailAt(1, boom)
	if err := st.Append(makeRecord(t, "a", 0, 16, 4)); !errors.Is(err, boom) {
		t.Fatalf("append under injection: %v, want the injected error", err)
	}
	if err := st.Append(makeRecord(t, "b", 1, 16, 4)); err != nil {
		t.Fatalf("append after injection: %v", err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st, err = OpenWith(dir, OpenOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	checkLiveSeqs(t, st, map[uint64]bool{1: true}, "after injection")
}

// TestVerifyRepair drives the fsck surface: Verify finds torn tails,
// orphans and corrupt sealed segments with the right sentinels, Repair
// fixes what recovery can fix, and a repaired store verifies clean (up
// to the quarantine it recorded).
func TestVerifyRepair(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4, SegmentRecords: 2})
	for i := 0; i < 5; i++ {
		if err := st.Append(makeRecord(t, "s"+strconv.Itoa(i), uint64(i), 16, 4)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	rep, err := Verify(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Records != 5 || rep.Segments != 3 {
		t.Fatalf("verify of intact store: %+v", rep)
	}

	// Damage: torn active tail, a torn tombstone entry, an orphan
	// segment file, and a corrupt sealed segment.
	appendBytes := func(name string, b []byte) {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	appendBytes(segName(3, "hot"), []byte{9, 9, 9}) // torn tail on active
	appendBytes(tombstonesName, []byte(`{"id":"s0",`))
	appendBytes(segName(99, "hot"), []byte("stray"))
	flip := filepath.Join(dir, segName(1, "hot"))
	data, err := os.ReadFile(flip)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff
	if err := os.WriteFile(flip, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = Verify(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantIssue := func(sentinel error, path string) {
		t.Helper()
		for _, is := range rep.Issues {
			if is.Path == path && (sentinel == nil || errors.Is(is.Err, sentinel)) {
				return
			}
		}
		t.Fatalf("no issue %v on %s in %+v", sentinel, path, rep.Issues)
	}
	wantIssue(ErrTornTail, segName(3, "hot"))
	wantIssue(ErrTornTail, tombstonesName)
	wantIssue(nil, segName(99, "hot"))
	wantIssue(ErrCorruptSegment, segName(1, "hot"))
	if !rep.Repairable() {
		t.Fatalf("damage should be repairable: %+v", rep.Issues)
	}

	h, err := Repair(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Quarantined != 1 || h.TruncatedBytes == 0 || h.OrphansSwept != 1 {
		t.Fatalf("repair health: %+v", h)
	}

	rep, err = Verify(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The only remaining finding is the quarantine the repair recorded.
	if len(rep.Issues) != 1 || !errors.Is(rep.Issues[0].Err, ErrQuarantined) {
		t.Fatalf("verify after repair: %+v", rep.Issues)
	}
	if rep.Records != 3 {
		t.Fatalf("records after repair = %d, want 3", rep.Records)
	}
}

// TestVerifySealedValCorruption: a bit flip in a sealed value block is
// invisible to Open (lazy loading) but a full Verify reads every block.
func TestVerifySealedValCorruption(t *testing.T) {
	dir := t.TempDir()
	st := mustCreate(t, dir, Config{Fingerprint: "fp", SketchWidth: 4, SegmentRecords: 1})
	if err := st.Append(makeRecord(t, "v", 0, 16, 4)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	p := filepath.Join(dir, segName(1, "val"))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(valMagic)+4+8] ^= 0x01
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("verify missed the corrupt sealed value block")
	}
	found := false
	for _, is := range rep.Issues {
		if is.Path == segName(1, "val") && errors.Is(is.Err, ErrCorruptSegment) {
			found = is.Repairable == false
		}
	}
	if !found {
		t.Fatalf("sealed val issue missing or marked repairable: %+v", rep.Issues)
	}
}
