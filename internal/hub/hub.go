// Package hub multiplexes many independent streams over a shared set of
// standing subsequence queries — the fleet-scale form of the one-stream
// Monitor. Production monitoring runs thousands of sensor or audio
// streams against hundreds of patterns in one process; what that costs
// is per-stream×query SPRING state (O(|q|) each) and the O(Σ|q|) column
// advances per point. The hub attacks both: state is slab-allocated from
// per-query arenas and recycled on stream close, and the time-domain
// prefilter (dtw.SpringConfig.Prefilter) skips the column advance
// entirely for stream points provably outside every emittable match.
//
// Concurrency model:
//
//   - the registry (streams map, query list) lives in a copy-on-write
//     snapshot behind an atomic pointer: ingest reads it lock-free, so
//     Push never blocks behind AddStream/AddQuery/CloseStream admin;
//   - each stream is a tiny actor: PushBatch appends points into the
//     stream's bounded pending buffer (full buffer → ErrHubBackpressure,
//     explicitly, never a hidden stall) and schedules the stream on the
//     hub's ready queue exactly once; Run's workers dequeue a stream,
//     steal its pending buffer, and advance its query states with no
//     lock held — ordering and exclusivity come from the scheduled bit;
//   - confirmed matches are delivered on the Matches channel; a slow
//     consumer backs the workers up, the pending buffers fill, and the
//     producers see ErrHubBackpressure — one coherent backpressure path
//     from output to input.
package hub

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sdtw/internal/dtw"
	"sdtw/internal/retrieve"
	"sdtw/internal/series"
)

// Sentinel errors of the fleet surface.
var (
	// ErrHubClosed reports an operation on a hub already shut down by
	// Flush (or abandoned after a cancelled Run).
	ErrHubClosed = errors.New("hub: closed")
	// ErrUnknownStream reports a push to (or close of) a stream ID that
	// was never added or was already closed.
	ErrUnknownStream = errors.New("hub: unknown stream")
	// ErrHubBackpressure reports a push that would overflow the stream's
	// bounded pending buffer: the hub is processing slower than the
	// producer sends (often because the Matches consumer stalled). The
	// producer decides — retry, shed, or block on its own terms.
	ErrHubBackpressure = errors.New("hub: stream buffer full")
)

// Match is one confirmed subsequence occurrence on one stream.
type Match struct {
	// Stream is the stream's ID.
	Stream string
	// Query is the matched standing query's ID.
	Query string
	// Start and End delimit the matched region, inclusive, in absolute
	// stream positions (counted from the stream's first pushed point).
	Start, End int
	// Distance is the subsequence DTW distance between query and region.
	Distance float64
}

// Query is one standing pattern the hub watches every stream for.
type Query struct {
	// ID labels emitted matches and keys RemoveQuery; required, unique.
	ID string
	// Values is the pattern; must be non-empty.
	Values []float64
	// Threshold is the emission threshold: regions at distance <=
	// Threshold are reported once confirmed. Must be finite and >= 0.
	Threshold float64
	// MinGap is the minimum number of stream points between an emitted
	// match's end and the next match's start on the same stream.
	MinGap int
}

// QueryStats is the per-query slice of Stats.
type QueryStats struct {
	// ID is the query's ID.
	ID string
	// Matches is the number of matches emitted for this query.
	Matches int64
	// Appends is the number of SPRING column advances run for this query
	// across all streams.
	Appends int64
	// Skipped is the number of column advances the time-domain prefilter
	// elided for this query across all streams.
	Skipped int64
}

// Stats is a snapshot of the hub's accounting.
type Stats struct {
	// Streams and Queries are the live registry sizes.
	Streams, Queries int
	// Points is the number of stream points accepted by Push/PushBatch.
	Points int64
	// Processed is the number of accepted points fully advanced through
	// every query state.
	Processed int64
	// Appends is the total SPRING column advances run (one per processed
	// point per query, minus Skipped).
	Appends int64
	// Skipped is the total column advances elided by the prefilter.
	Skipped int64
	// Matches is the number of matches delivered.
	Matches int64
	// Rejected is the number of points refused with ErrHubBackpressure.
	Rejected int64
	// PerQuery breaks matches, appends and skips down by query.
	PerQuery []QueryStats
}

// Config parameterises a Hub. The zero value selects the defaults.
type Config struct {
	// StreamBuffer is the per-stream pending-point capacity before
	// PushBatch reports ErrHubBackpressure. Zero means 4096.
	StreamBuffer int
	// MatchBuffer is the Matches channel capacity. Zero means 1024.
	MatchBuffer int
	// Workers is the number of processing goroutines Run starts. Zero
	// means GOMAXPROCS.
	Workers int
	// DisablePrefilter turns the time-domain prefilter off (A/B switch;
	// emissions are bit-identical either way).
	DisablePrefilter bool
	// Dist is the element cost; nil means squared difference (which also
	// enables the monomorphized kernels and the prefilter).
	Dist series.PointDistance
}

const (
	defaultStreamBuffer = 4096
	defaultMatchBuffer  = 1024
	// slabStates is how many per-stream states one arena slab holds.
	slabStates = 64
)

// query is one standing query's shared, stream-independent state.
type query struct {
	id  string
	seq int // addition order; ties in emission sorting follow it
	tpl *dtw.SpringTemplate

	// arena recycles per-stream SPRING state for this query.
	arena arena

	matches atomic.Int64
	appends atomic.Int64
	skipped atomic.Int64
}

// arena slab-allocates SPRING state: one backing array per slab instead
// of two small allocations per stream×query, with a free list recycling
// state from closed streams.
type arena struct {
	mu   sync.Mutex
	free []*dtw.Spring
}

// get hands out a freshly initialised state, growing by one slab when
// the free list is empty.
func (q *query) get() *dtw.Spring {
	q.arena.mu.Lock()
	if len(q.arena.free) == 0 {
		n := q.tpl.StateLen()
		d := make([]float64, n*slabStates)
		s := make([]int, n*slabStates)
		springs := make([]dtw.Spring, slabStates)
		for i := range springs {
			q.tpl.Init(&springs[i], d[i*n:(i+1)*n], s[i*n:(i+1)*n])
			q.arena.free = append(q.arena.free, &springs[i])
		}
	}
	sp := q.arena.free[len(q.arena.free)-1]
	q.arena.free = q.arena.free[:len(q.arena.free)-1]
	q.arena.mu.Unlock()
	sp.Reset()
	return sp
}

// put recycles a state back onto the free list.
func (q *query) put(sp *dtw.Spring) {
	q.arena.mu.Lock()
	q.arena.free = append(q.arena.free, sp)
	q.arena.mu.Unlock()
}

// qslot binds one stream to one query's state.
type qslot struct {
	q  *query
	sp *dtw.Spring
	// base is the stream position the state was attached at: a query
	// added mid-stream matches from its addition point, and emitted
	// Start/End are offset back to absolute stream positions.
	base int
}

// stream is one ingest actor.
type stream struct {
	id string

	mu        sync.Mutex // guards buf, scheduled, closing, finalized
	buf       []float64  // pending points, capacity = Config.StreamBuffer
	proc      []float64  // worker-side buffer, swapped with buf on steal
	scheduled bool
	closing   bool
	finalized bool

	// Owner-only state: touched by the scheduled worker (or by admin
	// paths holding the hub closed), never concurrently.
	version uint64
	states  []qslot
	emit    []Match
	pos     int // absolute stream position = points fully processed

	processed atomic.Int64
}

// state is the COW registry snapshot.
type state struct {
	version uint64
	streams map[string]*stream
	queries []*query
}

// Hub is the multi-stream engine. See the package comment for the
// concurrency model.
type Hub struct {
	cfg Config

	state atomic.Pointer[state]

	// admin serialises registry mutation (AddStream, CloseStream,
	// AddQuery, RemoveQuery, Flush). Ingest and processing never take it.
	admin   sync.Mutex
	qseq    int
	closed  atomic.Bool
	flushed bool

	readyMu sync.Mutex
	ready   []*stream
	head    int
	wake    chan struct{}

	out chan Match

	running atomic.Bool
	// runExit is closed to stop Run's workers (by Flush once drained, or
	// by Run itself on cancellation).
	runExit chan struct{}
	runEnd  sync.Once

	// live counts added-but-not-finalized streams; when it reaches zero
	// on a flushed hub, drained is closed and Flush completes.
	live        atomic.Int64
	drained     chan struct{}
	drainedOnce sync.Once

	points    atomic.Int64
	processed atomic.Int64
	matches   atomic.Int64
	rejected  atomic.Int64
}

// New builds an empty hub.
func New(cfg Config) *Hub {
	if cfg.StreamBuffer <= 0 {
		cfg.StreamBuffer = defaultStreamBuffer
	}
	if cfg.MatchBuffer <= 0 {
		cfg.MatchBuffer = defaultMatchBuffer
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	h := &Hub{
		cfg:     cfg,
		wake:    make(chan struct{}, 1),
		out:     make(chan Match, cfg.MatchBuffer),
		runExit: make(chan struct{}),
		drained: make(chan struct{}),
	}
	h.state.Store(&state{streams: map[string]*stream{}})
	return h
}

// Matches is the delivery channel: every confirmed match is sent here.
// Consume it promptly — when it fills, processing stalls and producers
// see ErrHubBackpressure. The channel is closed by Flush after the last
// match of the last stream.
func (h *Hub) Matches() <-chan Match { return h.out }

// AddQuery registers a standing query. Existing streams pick it up at
// their next processed point; its matches carry absolute stream
// positions but regions never start before the addition point.
func (h *Hub) AddQuery(q Query) error {
	if q.ID == "" {
		return fmt.Errorf("hub: AddQuery: empty query ID: %w", retrieve.ErrUnknownID)
	}
	if math.IsNaN(q.Threshold) || math.IsInf(q.Threshold, 0) || q.Threshold < 0 {
		return fmt.Errorf("hub: AddQuery %q: threshold must be finite and non-negative, got %v", q.ID, q.Threshold)
	}
	tpl, err := dtw.NewSpringTemplate(q.Values, dtw.SpringConfig{
		Dist:      h.cfg.Dist,
		Threshold: q.Threshold,
		MinGap:    q.MinGap,
		Prefilter: !h.cfg.DisablePrefilter,
	})
	if err != nil {
		return fmt.Errorf("hub: AddQuery %q: %w", q.ID, err)
	}
	h.admin.Lock()
	defer h.admin.Unlock()
	if h.flushed {
		return fmt.Errorf("hub: AddQuery %q: %w", q.ID, ErrHubClosed)
	}
	old := h.state.Load()
	for _, prev := range old.queries {
		if prev.id == q.ID {
			return fmt.Errorf("hub: AddQuery: query %q already registered: %w", q.ID, retrieve.ErrDuplicateID)
		}
	}
	h.qseq++
	next := &state{
		version: old.version + 1,
		streams: old.streams,
		queries: append(append(make([]*query, 0, len(old.queries)+1), old.queries...),
			&query{id: q.ID, seq: h.qseq, tpl: tpl}),
	}
	h.state.Store(next)
	return nil
}

// RemoveQuery unregisters a standing query. In-flight matches already
// confirmed may still be delivered; per-stream state is recycled as each
// stream observes the new snapshot.
func (h *Hub) RemoveQuery(id string) error {
	h.admin.Lock()
	defer h.admin.Unlock()
	if h.flushed {
		return fmt.Errorf("hub: RemoveQuery %q: %w", id, ErrHubClosed)
	}
	old := h.state.Load()
	at := -1
	for i, q := range old.queries {
		if q.id == id {
			at = i
			break
		}
	}
	if at < 0 {
		return fmt.Errorf("hub: RemoveQuery: no query %q: %w", id, retrieve.ErrUnknownID)
	}
	queries := make([]*query, 0, len(old.queries)-1)
	queries = append(queries, old.queries[:at]...)
	queries = append(queries, old.queries[at+1:]...)
	h.state.Store(&state{version: old.version + 1, streams: old.streams, queries: queries})
	return nil
}

// AddStream registers a stream and pre-warms its per-query state from
// the arenas, so the first pushed point allocates nothing.
func (h *Hub) AddStream(id string) error {
	if id == "" {
		return fmt.Errorf("hub: AddStream: empty stream ID: %w", retrieve.ErrDuplicateID)
	}
	h.admin.Lock()
	defer h.admin.Unlock()
	if h.flushed {
		return fmt.Errorf("hub: AddStream %q: %w", id, ErrHubClosed)
	}
	old := h.state.Load()
	if _, dup := old.streams[id]; dup {
		return fmt.Errorf("hub: AddStream: stream %q already registered: %w", id, retrieve.ErrDuplicateID)
	}
	st := &stream{
		id:   id,
		buf:  make([]float64, 0, h.cfg.StreamBuffer),
		proc: make([]float64, 0, h.cfg.StreamBuffer),
	}
	st.attach(old)
	streams := make(map[string]*stream, len(old.streams)+1)
	for k, v := range old.streams {
		streams[k] = v
	}
	streams[id] = st
	h.state.Store(&state{version: old.version, streams: streams, queries: old.queries})
	h.live.Add(1)
	return nil
}

// attach aligns st's query states to snapshot snap, acquiring state for
// new queries and recycling state of removed ones. Owner-only.
func (st *stream) attach(snap *state) {
	var old []qslot
	if st.version != snap.version || st.states == nil {
		old = st.states
		st.states = make([]qslot, 0, len(snap.queries))
		for _, q := range snap.queries {
			reused := false
			for i := range old {
				if old[i].q == q {
					st.states = append(st.states, old[i])
					old[i].q = nil
					reused = true
					break
				}
			}
			if !reused {
				st.states = append(st.states, qslot{q: q, sp: q.get(), base: st.pos})
			}
		}
		for i := range old {
			if old[i].q != nil {
				old[i].q.put(old[i].sp)
			}
		}
		st.version = snap.version
	}
}

// CloseStream unregisters a stream. Its buffered points are still
// processed, its pending matches are confirmed (the end-of-stream flush,
// delivered on Matches), and its per-query state is recycled into the
// arenas. With Run active the drain is asynchronous; without it the
// stream is drained inline.
func (h *Hub) CloseStream(id string) error {
	h.admin.Lock()
	if h.flushed {
		h.admin.Unlock()
		return fmt.Errorf("hub: CloseStream %q: %w", id, ErrHubClosed)
	}
	old := h.state.Load()
	st, ok := old.streams[id]
	if !ok {
		h.admin.Unlock()
		return fmt.Errorf("hub: CloseStream: no stream %q: %w", id, ErrUnknownStream)
	}
	streams := make(map[string]*stream, len(old.streams)-1)
	for k, v := range old.streams {
		if k != id {
			streams[k] = v
		}
	}
	h.state.Store(&state{version: old.version, streams: streams, queries: old.queries})
	running := h.running.Load()
	h.admin.Unlock()

	st.mu.Lock()
	st.closing = true
	enqueue := !st.scheduled
	if enqueue {
		st.scheduled = true
	}
	st.mu.Unlock()
	if enqueue {
		h.enqueue(st)
	}
	if !running {
		// No workers: drain the ready queue on the caller. This services
		// the closed stream (finalizing it and recycling its state) plus
		// whatever else was pending — ownership still comes from dequeue,
		// so a concurrently starting Run stays safe.
		for next := h.dequeue(); next != nil; next = h.dequeue() {
			h.service(nil, next)
		}
	}
	return nil
}

// Push ingests one point on one stream; see PushBatch.
//
//sdtw:hotpath
func (h *Hub) Push(streamID string, v float64) error {
	var one [1]float64
	one[0] = v
	return h.PushBatch(streamID, one[:])
}

// PushBatch ingests a batch of points on one stream. It never blocks on
// processing: points land in the stream's bounded pending buffer and the
// stream is scheduled onto the hub's worker pool. A full buffer reports
// ErrHubBackpressure and consumes nothing — the producer chooses how to
// cope. Points are processed strictly in push order per stream.
//
//sdtw:hotpath
func (h *Hub) PushBatch(streamID string, values []float64) error {
	if len(values) == 0 {
		return nil
	}
	if h.closed.Load() {
		return h.errClosed()
	}
	st := h.state.Load().streams[streamID]
	if st == nil {
		return h.errUnknown(streamID)
	}
	st.mu.Lock()
	if st.closing {
		st.mu.Unlock()
		return h.errUnknown(streamID)
	}
	if len(st.buf)+len(values) > cap(st.buf) {
		pending := len(st.buf)
		st.mu.Unlock()
		h.rejected.Add(int64(len(values)))
		return h.errBackpressure(streamID, pending, len(values))
	}
	st.buf = append(st.buf, values...)
	enqueue := !st.scheduled
	if enqueue {
		st.scheduled = true
	}
	// Count accepted points before they become visible to a worker, so
	// Stats never observes Processed > Points.
	h.points.Add(int64(len(values)))
	st.mu.Unlock()
	if enqueue {
		h.enqueue(st)
	}
	return nil
}

// Cold error constructors, kept out of the push hot path.
func (h *Hub) errClosed() error { return fmt.Errorf("hub: push: %w", ErrHubClosed) }

func (h *Hub) errUnknown(id string) error {
	return fmt.Errorf("hub: push to %q: %w", id, ErrUnknownStream)
}

func (h *Hub) errBackpressure(id string, pending, batch int) error {
	return fmt.Errorf("hub: push of %d points to %q with %d pending: %w", batch, id, pending, ErrHubBackpressure)
}

// enqueue schedules a stream on the ready queue. Callers hold the
// stream's scheduled bit.
//
//sdtw:hotpath
func (h *Hub) enqueue(st *stream) {
	h.readyMu.Lock()
	h.ready = append(h.ready, st)
	h.readyMu.Unlock()
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// dequeue pops the next ready stream, compacting the backing in place so
// steady-state scheduling allocates nothing.
func (h *Hub) dequeue() *stream {
	h.readyMu.Lock()
	if h.head == len(h.ready) {
		h.readyMu.Unlock()
		return nil
	}
	st := h.ready[h.head]
	h.ready[h.head] = nil
	h.head++
	if h.head == len(h.ready) {
		h.ready = h.ready[:0]
		h.head = 0
	} else if h.head > 64 && h.head*2 >= len(h.ready) {
		n := copy(h.ready, h.ready[h.head:])
		h.ready = h.ready[:n]
		h.head = 0
	}
	more := h.head < len(h.ready)
	h.readyMu.Unlock()
	if more {
		// Other items remain: re-signal so a second idle worker engages.
		select {
		case h.wake <- struct{}{}:
		default:
		}
	}
	return st
}

// Run processes scheduled streams on cfg.Workers goroutines until ctx is
// cancelled (returning ctx.Err()) or Flush shuts the hub down (returning
// nil). A nil ctx never cancels. Run may be called once.
func (h *Hub) Run(ctx context.Context) error {
	if !h.running.CompareAndSwap(false, true) {
		return fmt.Errorf("hub: Run: already started or %w", ErrHubClosed)
	}
	defer h.runEnd.Do(func() { close(h.runExit) })
	var wg sync.WaitGroup
	done := ctxDone(ctx)
	for i := 0; i < h.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				st := h.dequeue()
				if st == nil {
					select {
					case <-done:
						return
					case <-h.runExit:
						return
					case <-h.wake:
						continue
					}
				}
				h.service(ctx, st)
			}
		}()
	}
	// Wait for cancellation or Flush; then stop the workers.
	select {
	case <-done:
		h.closed.Store(true)
		h.runEnd.Do(func() { close(h.runExit) })
		wg.Wait()
		return ctxErr(ctx)
	case <-h.runExit:
		wg.Wait()
		return nil
	}
}

// ctxDone is ctx.Done() tolerating a nil context (a nil channel never
// delivers), mirroring the nil-tolerant context contract of the
// retrieval and streaming surfaces.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// ctxErr is ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// service owns st while its scheduled bit is set: it drains the pending
// buffer in stolen chunks, processing each with no lock held, and
// finalizes the stream once it is closing and empty.
func (h *Hub) service(ctx context.Context, st *stream) {
	for {
		st.mu.Lock()
		if len(st.buf) > 0 {
			st.buf, st.proc = st.proc[:0], st.buf
			st.mu.Unlock()
			h.process(ctx, st, st.proc)
			continue
		}
		if st.closing && !st.finalized {
			st.finalized = true
			st.scheduled = false
			st.mu.Unlock()
			h.finalize(ctx, st)
			return
		}
		st.scheduled = false
		st.mu.Unlock()
		return
	}
}

// process advances every query state of st over one stolen chunk and
// delivers the confirmed matches. Owner-only (see service).
//
//sdtw:hotpath
func (h *Hub) process(ctx context.Context, st *stream, chunk []float64) {
	snap := h.state.Load()
	if st.version != snap.version {
		st.attach(snap)
	}
	st.emit = st.emit[:0]
	for si := range st.states {
		slot := &st.states[si]
		sp := slot.sp
		appends0 := sp.Points() - int(sp.Skipped())
		skipped0 := sp.Skipped()
		emitted0 := len(st.emit)
		for _, v := range chunk {
			if m, ok := sp.AppendFiltered(v); ok {
				st.emit = append(st.emit, Match{
					Stream: st.id, Query: slot.q.id,
					Start: m.Start + slot.base, End: m.End + slot.base,
					Distance: m.Distance,
				})
			}
		}
		skipDelta := sp.Skipped() - skipped0
		slot.q.appends.Add(int64(sp.Points()-int(sp.Skipped())) - int64(appends0))
		slot.q.skipped.Add(skipDelta)
		if n := len(st.emit) - emitted0; n > 0 {
			slot.q.matches.Add(int64(n))
		}
	}
	st.pos += len(chunk)
	st.processed.Add(int64(len(chunk)))
	h.processed.Add(int64(len(chunk)))
	h.deliver(ctx, st)
}

// deliver sends the stream's buffered emissions in Monitor order (end
// position, then query addition order, then start). A cancelled ctx
// drops the remainder — the hub is shutting down.
func (h *Hub) deliver(ctx context.Context, st *stream) {
	if len(st.emit) == 0 {
		return
	}
	ms := st.emit
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		if ms[i].Query != ms[j].Query {
			return queryLess(st, ms[i].Query, ms[j].Query)
		}
		return ms[i].Start < ms[j].Start
	})
	done := ctxDone(ctx)
	for _, m := range ms {
		select {
		case h.out <- m:
			h.matches.Add(1)
		case <-done:
			return
		}
	}
}

// queryLess orders two query IDs by their addition sequence.
func queryLess(st *stream, a, b string) bool {
	sa, sb := 0, 0
	for i := range st.states {
		if st.states[i].q.id == a {
			sa = st.states[i].q.seq
		}
		if st.states[i].q.id == b {
			sb = st.states[i].q.seq
		}
	}
	return sa < sb
}

// finalize confirms st's pending matches (the end-of-stream flush),
// delivers them, and recycles its per-query state into the arenas.
func (h *Hub) finalize(ctx context.Context, st *stream) {
	st.emit = st.emit[:0]
	for si := range st.states {
		slot := &st.states[si]
		if m, ok := slot.sp.Flush(); ok {
			st.emit = append(st.emit, Match{
				Stream: st.id, Query: slot.q.id,
				Start: m.Start + slot.base, End: m.End + slot.base,
				Distance: m.Distance,
			})
			slot.q.matches.Add(1)
		}
	}
	h.deliver(ctx, st)
	for si := range st.states {
		st.states[si].q.put(st.states[si].sp)
	}
	st.states = nil
	h.live.Add(-1)
	h.maybeDrained()
}

// maybeDrained closes the drained channel once the hub is closed and the
// last stream has finalized.
func (h *Hub) maybeDrained() {
	if h.closed.Load() && h.live.Load() == 0 {
		h.drainedOnce.Do(func() { close(h.drained) })
	}
}

// Flush shuts the hub down: no further pushes or admin calls are
// accepted, every stream's buffered points are processed, every pending
// match is confirmed and delivered, stream state is recycled, the
// Matches channel is closed and an active Run returns nil. A cancelled
// ctx abandons the drain and returns ctx.Err(): undelivered matches are
// dropped, the Matches channel stays open, and the hub stays closed. A
// nil ctx never cancels. Flushing twice reports ErrHubClosed.
func (h *Hub) Flush(ctx context.Context) error {
	h.admin.Lock()
	if h.flushed {
		h.admin.Unlock()
		return fmt.Errorf("hub: Flush: %w", ErrHubClosed)
	}
	h.flushed = true
	h.closed.Store(true)
	snap := h.state.Load()
	h.state.Store(&state{version: snap.version, streams: map[string]*stream{}, queries: snap.queries})
	h.admin.Unlock()

	// Mark every stream closing and schedule any that are idle.
	for _, st := range snap.streams {
		st.mu.Lock()
		st.closing = true
		enqueue := !st.scheduled
		if enqueue {
			st.scheduled = true
		}
		st.mu.Unlock()
		if enqueue {
			h.enqueue(st)
		}
	}
	h.maybeDrained() // a hub with no live streams is drained already

	// Drain cooperatively: ownership of a scheduled stream comes from
	// dequeue, so Flush can service streams alongside Run's workers — and
	// with no Run active (never started, or its workers exited on
	// cancellation) this loop is the only consumer and drains everything,
	// including streams scheduled before Flush was called.
	done := ctxDone(ctx)
	for {
		for st := h.dequeue(); st != nil; st = h.dequeue() {
			h.service(ctx, st)
		}
		// A fired ctx wins over a completed drain: cancellation makes
		// deliver drop matches, so a drain that "finished" under a
		// cancelled ctx is lossy and must report ctx.Err(), not success.
		if done != nil {
			select {
			case <-done:
				return ctxErr(ctx)
			default:
			}
		}
		select {
		case <-h.drained:
			h.runEnd.Do(func() { close(h.runExit) })
			close(h.out)
			return nil
		case <-done:
			return ctxErr(ctx)
		case <-h.wake:
		}
	}
}

// Stats returns a snapshot of the hub's accounting. Safe to call
// concurrently with everything.
func (h *Hub) Stats() Stats {
	snap := h.state.Load()
	// Load processed before points: a point is counted in points before
	// any worker can process it, so this order keeps the snapshot's
	// Processed <= Points even while both advance concurrently.
	processed := h.processed.Load()
	points := h.points.Load()
	st := Stats{
		Streams:   len(snap.streams),
		Queries:   len(snap.queries),
		Points:    points,
		Processed: processed,
		Matches:   h.matches.Load(),
		Rejected:  h.rejected.Load(),
		PerQuery:  make([]QueryStats, len(snap.queries)),
	}
	for i, q := range snap.queries {
		qs := QueryStats{
			ID:      q.id,
			Matches: q.matches.Load(),
			Appends: q.appends.Load(),
			Skipped: q.skipped.Load(),
		}
		st.PerQuery[i] = qs
		st.Appends += qs.Appends
		st.Skipped += qs.Skipped
	}
	return st
}
