package hub

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"sdtw/internal/dtw"
	"sdtw/internal/retrieve"
)

// drainAll collects every match until the Matches channel closes.
func drainAll(t *testing.T, h *Hub) []Match {
	t.Helper()
	var out []Match
	for m := range h.Matches() {
		out = append(out, m)
	}
	return out
}

// springMatches runs a plain SPRING over stream and returns the emitted
// matches (including the flush) offset by base — the hub's ground truth
// for one stream×query pair.
func springMatches(t *testing.T, q Query, streamID string, stream []float64, base int) []Match {
	t.Helper()
	sp, err := dtw.NewSpring(q.Values, dtw.SpringConfig{Threshold: q.Threshold, MinGap: q.MinGap})
	if err != nil {
		t.Fatal(err)
	}
	var out []Match
	for _, v := range stream {
		if m, ok := sp.Append(v); ok {
			out = append(out, Match{Stream: streamID, Query: q.ID, Start: m.Start + base, End: m.End + base, Distance: m.Distance})
		}
	}
	if m, ok := sp.Flush(); ok {
		out = append(out, Match{Stream: streamID, Query: q.ID, Start: m.Start + base, End: m.End + base, Distance: m.Distance})
	}
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.Stream != b.Stream {
			return a.Stream < b.Stream
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.End < b.End
	})
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Stream != b[i].Stream || a[i].Query != b[i].Query ||
			a[i].Start != b[i].Start || a[i].End != b[i].End ||
			math.Float64bits(a[i].Distance) != math.Float64bits(b[i].Distance) {
			return false
		}
	}
	return true
}

// TestHubSynchronousDrain: without Run, pushes buffer and Flush drains
// everything inline — the simplest correctness path.
func TestHubSynchronousDrain(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "prefilter"
		if disable {
			name = "no-prefilter"
		}
		t.Run(name, func(t *testing.T) {
			h := New(Config{MatchBuffer: 1 << 14, DisablePrefilter: disable})
			q := Query{ID: "q", Values: []float64{0, 1, 0}, Threshold: 0.5}
			if err := h.AddQuery(q); err != nil {
				t.Fatal(err)
			}
			if err := h.AddStream("s"); err != nil {
				t.Fatal(err)
			}
			stream := []float64{9, 0, 1, 0, 9, 9, 0, 1, 0}
			if err := h.PushBatch("s", stream); err != nil {
				t.Fatal(err)
			}
			if err := h.Flush(nil); err != nil {
				t.Fatal(err)
			}
			got := drainAll(t, h)
			want := springMatches(t, q, "s", stream, 0)
			sortMatches(got)
			sortMatches(want)
			if !matchesEqual(got, want) {
				t.Fatalf("got %+v, want %+v", got, want)
			}
		})
	}
}

// TestHubRunMultiStream: many streams × queries under Run with random
// data must reproduce per-pair SPRING output exactly.
func TestHubRunMultiStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := New(Config{Workers: 4, MatchBuffer: 1 << 16})
	queries := []Query{
		{ID: "a", Values: []float64{0, 1, 0}, Threshold: 0.4},
		{ID: "b", Values: []float64{2, 2, 2, 2}, Threshold: 1.0, MinGap: 2},
		{ID: "c", Values: []float64{-1, 1}, Threshold: 0.2},
	}
	for _, q := range queries {
		if err := h.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	streams := map[string][]float64{}
	for i := 0; i < 20; i++ {
		id := string(rune('A' + i))
		vals := make([]float64, 500+rng.Intn(500))
		for j := range vals {
			vals[j] = rng.NormFloat64() * 2
		}
		streams[id] = vals
		if err := h.AddStream(id); err != nil {
			t.Fatal(err)
		}
	}

	runErr := make(chan error, 1)
	go func() { runErr <- h.Run(context.Background()) }()

	var collected []Match
	var collectWG sync.WaitGroup
	collectWG.Add(1)
	go func() {
		defer collectWG.Done()
		for m := range h.Matches() {
			collected = append(collected, m)
		}
	}()

	var pushWG sync.WaitGroup
	for id, vals := range streams {
		pushWG.Add(1)
		go func(id string, vals []float64) {
			defer pushWG.Done()
			for off := 0; off < len(vals); {
				n := 1 + rand.Intn(64)
				if off+n > len(vals) {
					n = len(vals) - off
				}
				for {
					err := h.PushBatch(id, vals[off:off+n])
					if err == nil {
						break
					}
					if !errors.Is(err, ErrHubBackpressure) {
						panic(err)
					}
					time.Sleep(time.Millisecond)
				}
				off += n
			}
		}(id, vals)
	}
	pushWG.Wait()
	if err := h.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	collectWG.Wait()
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}

	var want []Match
	for id, vals := range streams {
		for _, q := range queries {
			want = append(want, springMatches(t, q, id, vals, 0)...)
		}
	}
	sortMatches(collected)
	sortMatches(want)
	if !matchesEqual(collected, want) {
		t.Fatalf("hub emitted %d matches, spring ground truth %d", len(collected), len(want))
	}

	st := h.Stats()
	var points int64
	for _, vals := range streams {
		points += int64(len(vals))
	}
	if st.Points != points || st.Processed != points {
		t.Fatalf("points=%d processed=%d, want both %d", st.Points, st.Processed, points)
	}
	if st.Appends+st.Skipped != points*int64(len(queries)) {
		t.Fatalf("appends %d + skipped %d != points×queries %d", st.Appends, st.Skipped, points*int64(len(queries)))
	}
	if st.Matches != int64(len(collected)) {
		t.Fatalf("stats matches %d, delivered %d", st.Matches, len(collected))
	}
}

// TestHubPerStreamOrder: matches for one stream must arrive in Monitor
// order (end position, then query addition order) even when pushed in
// many small batches.
func TestHubPerStreamOrder(t *testing.T) {
	h := New(Config{Workers: 2, MatchBuffer: 1 << 12})
	// Two queries matching at the same end positions.
	if err := h.AddQuery(Query{ID: "later", Values: []float64{0, 1, 0}, Threshold: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveQuery("later"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddQuery(Query{ID: "first", Values: []float64{0, 1, 0}, Threshold: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddQuery(Query{ID: "second", Values: []float64{0.1, 1, 0.1}, Threshold: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddStream("s"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = h.Run(nil) }()
	for i := 0; i < 50; i++ {
		for _, v := range []float64{9, 0, 1, 0} {
			for {
				err := h.Push("s", v)
				if err == nil {
					break
				}
				if !errors.Is(err, ErrHubBackpressure) {
					t.Errorf("push: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	if err := h.Flush(nil); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, h)
	if len(got) != 100 {
		t.Fatalf("got %d matches, want 100", len(got))
	}
	for i := 0; i < len(got); i += 2 {
		if got[i].End != got[i+1].End {
			t.Fatalf("pair %d ends %d/%d, want equal", i/2, got[i].End, got[i+1].End)
		}
		if i > 0 && got[i].End <= got[i-1].End {
			t.Fatalf("ends not increasing at pair %d", i/2)
		}
		if got[i].Query != "first" || got[i+1].Query != "second" {
			t.Fatalf("pair %d order %q,%q; want first,second (query addition order)", i/2, got[i].Query, got[i+1].Query)
		}
	}
}

// TestHubMidStreamAddQuery: a query added mid-stream starts matching at
// its addition point and emits absolute stream positions.
func TestHubMidStreamAddQuery(t *testing.T) {
	h := New(Config{MatchBuffer: 1 << 10})
	if err := h.AddStream("s"); err != nil {
		t.Fatal(err)
	}
	prefix := []float64{0, 1, 0, 9, 9} // would match q, but q isn't registered yet
	if err := h.PushBatch("s", prefix); err != nil {
		t.Fatal(err)
	}
	// Drain the prefix inline (no Run): CloseStream would finalize, so
	// instead force processing by flushing later; the hub processes
	// buffered points before attaching the new query only if they were
	// serviced first. Use Run briefly to drain.
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- h.Run(ctx) }()
	waitProcessed(t, h, 5)
	q := Query{ID: "q", Values: []float64{0, 1, 0}, Threshold: 0.25}
	if err := h.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	suffix := []float64{9, 0, 1, 0, 9}
	if err := h.PushBatch("s", suffix); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, h)
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := springMatches(t, q, "s", suffix, len(prefix))
	sortMatches(got)
	sortMatches(want)
	if !matchesEqual(got, want) {
		t.Fatalf("got %+v, want %+v (absolute positions, matching from addition point)", got, want)
	}
}

func waitProcessed(t *testing.T, h *Hub, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.Stats().Processed < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d processed points (have %d)", n, h.Stats().Processed)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHubBackpressure: a full pending buffer reports ErrHubBackpressure
// without consuming anything, and accounts the rejection.
func TestHubBackpressure(t *testing.T) {
	h := New(Config{StreamBuffer: 8})
	if err := h.AddStream("s"); err != nil {
		t.Fatal(err)
	}
	if err := h.PushBatch("s", make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	err := h.Push("s", 1)
	if !errors.Is(err, ErrHubBackpressure) {
		t.Fatalf("push to full buffer: %v, want ErrHubBackpressure", err)
	}
	if err := h.PushBatch("s", nil); err != nil {
		t.Fatalf("empty batch must always succeed: %v", err)
	}
	st := h.Stats()
	if st.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", st.Rejected)
	}
	if st.Points != 8 {
		t.Fatalf("points %d, want 8 (rejected batch must consume nothing)", st.Points)
	}
}

// TestHubErrors pins every sentinel path of the admin and push surface.
func TestHubErrors(t *testing.T) {
	h := New(Config{MatchBuffer: 64})
	if err := h.AddQuery(Query{ID: "", Values: []float64{1}, Threshold: 1}); err == nil {
		t.Fatal("empty query ID accepted")
	}
	if err := h.AddQuery(Query{ID: "q", Values: nil, Threshold: 1}); err == nil {
		t.Fatal("empty query values accepted")
	}
	if err := h.AddQuery(Query{ID: "q", Values: []float64{1}, Threshold: math.Inf(1)}); err == nil {
		t.Fatal("infinite threshold accepted")
	}
	if err := h.AddQuery(Query{ID: "q", Values: []float64{1}, Threshold: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddQuery(Query{ID: "q", Values: []float64{1}, Threshold: 1}); !errors.Is(err, retrieve.ErrDuplicateID) {
		t.Fatalf("duplicate query: %v, want ErrDuplicateID", err)
	}
	if err := h.RemoveQuery("nope"); !errors.Is(err, retrieve.ErrUnknownID) {
		t.Fatalf("remove unknown query: %v, want ErrUnknownID", err)
	}
	if err := h.AddStream("s"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddStream("s"); !errors.Is(err, retrieve.ErrDuplicateID) {
		t.Fatalf("duplicate stream: %v, want ErrDuplicateID", err)
	}
	if err := h.Push("ghost", 1); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("push to unknown stream: %v, want ErrUnknownStream", err)
	}
	if err := h.CloseStream("ghost"); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("close unknown stream: %v, want ErrUnknownStream", err)
	}
	if err := h.CloseStream("s"); err != nil {
		t.Fatal(err)
	}
	if err := h.Push("s", 1); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("push to closed stream: %v, want ErrUnknownStream", err)
	}
	if err := h.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(nil); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("double Flush: %v, want ErrHubClosed", err)
	}
	if err := h.Push("s", 1); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("push after Flush: %v, want ErrHubClosed", err)
	}
	if err := h.AddStream("t"); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("AddStream after Flush: %v, want ErrHubClosed", err)
	}
	if err := h.AddQuery(Query{ID: "r", Values: []float64{1}, Threshold: 1}); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("AddQuery after Flush: %v, want ErrHubClosed", err)
	}
	if err := h.RemoveQuery("q"); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("RemoveQuery after Flush: %v, want ErrHubClosed", err)
	}
	if err := h.CloseStream("s"); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("CloseStream after Flush: %v, want ErrHubClosed", err)
	}
}

// TestHubCloseStreamRecyclesState: closing a stream returns its SPRING
// state to the arenas; the next stream reuses it (free-list length is
// observable through the arena).
func TestHubCloseStreamRecyclesState(t *testing.T) {
	h := New(Config{MatchBuffer: 256})
	if err := h.AddQuery(Query{ID: "q", Values: []float64{0, 1}, Threshold: 0.5}); err != nil {
		t.Fatal(err)
	}
	snap := h.state.Load()
	q := snap.queries[0]
	if err := h.AddStream("s1"); err != nil {
		t.Fatal(err)
	}
	q.arena.mu.Lock()
	freeAfterAdd := len(q.arena.free)
	q.arena.mu.Unlock()
	if freeAfterAdd != slabStates-1 {
		t.Fatalf("free after first AddStream: %d, want %d (one slab minus one state)", freeAfterAdd, slabStates-1)
	}
	if err := h.PushBatch("s1", []float64{0, 1, 5}); err != nil {
		t.Fatal(err)
	}
	if err := h.CloseStream("s1"); err != nil {
		t.Fatal(err)
	}
	q.arena.mu.Lock()
	freeAfterClose := len(q.arena.free)
	q.arena.mu.Unlock()
	if freeAfterClose != slabStates {
		t.Fatalf("free after CloseStream: %d, want %d (state recycled)", freeAfterClose, slabStates)
	}
	// The close drained the buffered points and flushed the pending match.
	if err := h.Flush(nil); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, h)
	if len(got) != 1 || got[0].Start != 0 || got[0].End != 1 {
		t.Fatalf("close-stream drain: got %+v, want the single {0 1} match", got)
	}
	// 64 streams exhaust exactly one slab, stream 65 grows a second.
	h2 := New(Config{})
	if err := h2.AddQuery(Query{ID: "q", Values: []float64{0, 1}, Threshold: 0.5}); err != nil {
		t.Fatal(err)
	}
	q2 := h2.state.Load().queries[0]
	for i := 0; i < slabStates; i++ {
		if err := h2.AddStream(string(rune('a'+i%26)) + string(rune('a'+i/26))); err != nil {
			t.Fatal(err)
		}
	}
	q2.arena.mu.Lock()
	free2 := len(q2.arena.free)
	q2.arena.mu.Unlock()
	if free2 != 0 {
		t.Fatalf("after %d streams one slab should be exhausted; free=%d", slabStates, free2)
	}
}

// TestHubRunCancellation: cancelling Run's context returns ctx.Err(),
// closes the hub to new pushes, and a later Flush still drains leftovers
// inline without leaking goroutines.
func TestHubRunCancellation(t *testing.T) {
	h := New(Config{Workers: 2, MatchBuffer: 1 << 12})
	if err := h.AddQuery(Query{ID: "q", Values: []float64{0, 1, 0}, Threshold: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddStream("s"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- h.Run(ctx) }()
	if err := h.PushBatch("s", []float64{9, 0, 1, 0, 9}); err != nil {
		t.Fatal(err)
	}
	waitProcessed(t, h, 5)
	cancel()
	select {
	case err := <-runErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if err := h.Push("s", 1); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("push after cancelled Run: %v, want ErrHubClosed", err)
	}
	// Flush still drains (inline — the workers are gone).
	if err := h.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, h)
	if len(got) != 1 {
		t.Fatalf("got %d matches, want the 1 processed before cancellation", len(got))
	}
}

// TestHubFlushCancellation: a cancelled Flush returns ctx.Err() and
// leaves the hub closed.
func TestHubFlushCancellation(t *testing.T) {
	h := New(Config{MatchBuffer: 1}) // tiny: deliver blocks with no consumer
	if err := h.AddQuery(Query{ID: "q", Values: []float64{0}, Threshold: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddStream("s"); err != nil {
		t.Fatal(err)
	}
	// Every point matches; with MatchBuffer 1 and no consumer, the inline
	// drain blocks on delivery until ctx cancels.
	if err := h.PushBatch("s", make([]float64, 64)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := h.Flush(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Flush: %v, want DeadlineExceeded", err)
	}
	if err := h.Push("s", 1); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("push after failed Flush: %v, want ErrHubClosed", err)
	}
}

// TestHubPushBeforeRun: points pushed before Run starts are processed
// once it does — and are drained by Flush even if Run never starts.
func TestHubPushBeforeRun(t *testing.T) {
	h := New(Config{MatchBuffer: 256})
	if err := h.AddQuery(Query{ID: "q", Values: []float64{0, 1, 0}, Threshold: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddStream("s"); err != nil {
		t.Fatal(err)
	}
	if err := h.PushBatch("s", []float64{9, 0, 1, 0, 9}); err != nil {
		t.Fatal(err)
	}
	// No Run at all: Flush alone must drain the scheduled-but-unserviced
	// stream.
	if err := h.Flush(nil); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, h)
	if len(got) != 1 || got[0].Start != 1 || got[0].End != 3 {
		t.Fatalf("got %+v, want the single {1 3} match", got)
	}
}
