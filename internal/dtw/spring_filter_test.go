package dtw

import (
	"math"
	"math/rand"
	"testing"
)

// filterRandomStream draws a stream that alternates between in-band
// wandering and far excursions, so the time-domain prefilter sees both
// live and dead stretches (and the boundary between them) on most draws.
func filterRandomStream(rng *rand.Rand, n float64Range, points int) []float64 {
	v := make([]float64, points)
	offset := 0.0
	for i := range v {
		if rng.Intn(24) == 0 {
			// Jump regime: inside the band, near its edge, or far outside.
			switch rng.Intn(3) {
			case 0:
				offset = 0
			case 1:
				offset = (rng.Float64()*2 - 1) * n.span()
			default:
				offset = (rng.Float64()*2 - 1) * 50 * (n.span() + 1)
			}
		}
		v[i] = n.lo + rng.Float64()*(n.hi-n.lo) + offset
	}
	return v
}

type float64Range struct{ lo, hi float64 }

func (r float64Range) span() float64 { return r.hi - r.lo }

func queryRange(q []float64) float64Range {
	r := float64Range{q[0], q[0]}
	for _, x := range q[1:] {
		r.lo = math.Min(r.lo, x)
		r.hi = math.Max(r.hi, x)
	}
	return r
}

// checkFilterDifferential feeds the same stream to a prefiltered and an
// unfiltered spring and requires bit-identical emissions, point by point,
// plus flush agreement. Returns the filtered spring's skip count.
func checkFilterDifferential(t *testing.T, q, stream []float64, threshold float64, minGap int) int64 {
	t.Helper()
	spF, err := NewSpring(q, SpringConfig{Threshold: threshold, MinGap: minGap, Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	spP, err := NewSpring(q, SpringConfig{Threshold: threshold, MinGap: minGap})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range stream {
		mF, okF := spF.AppendFiltered(v)
		mP, okP := spP.Append(v)
		if okF != okP || mF != mP {
			t.Fatalf("point %d (v=%v): emission divergence: filtered (%+v, %v) vs plain (%+v, %v)",
				i, v, mF, okF, mP, okP)
		}
	}
	fF, okF := spF.Flush()
	fP, okP := spP.Flush()
	if okF != okP || math.Float64bits(fF.Distance) != math.Float64bits(fP.Distance) ||
		fF.Start != fP.Start || fF.End != fP.End {
		t.Fatalf("flush divergence: filtered (%+v, %v) vs plain (%+v, %v)", fF, okF, fP, okP)
	}
	if spF.Points() != spP.Points() {
		t.Fatalf("points diverge: %d vs %d", spF.Points(), spP.Points())
	}
	return spF.Skipped()
}

// TestSpringFilterBitIdentity is the prefilter admissibility property:
// over random queries, thresholds, gaps and regime-switching streams,
// AppendFiltered emissions are bit-identical to Append's.
func TestSpringFilterBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var skippedTotal, pointsTotal int64
	for trial := 0; trial < 300; trial++ {
		q := kernelRandomSeries(rng, rng.Intn(16)+1)
		stream := filterRandomStream(rng, queryRange(q), rng.Intn(400)+1)
		// Thresholds from tight (mass skipping) to loose (rare skipping),
		// including exact zero.
		var threshold float64
		switch rng.Intn(4) {
		case 0:
			threshold = 0
		case 1:
			threshold = rng.Float64() * 0.01
		case 2:
			threshold = rng.Float64() * float64(len(q))
		default:
			threshold = rng.Float64() * 100 * float64(len(q))
		}
		skippedTotal += checkFilterDifferential(t, q, stream, threshold, rng.Intn(4))
		pointsTotal += int64(len(stream))
	}
	// The property is vacuous if the generator never exercises the skip
	// path; require that a meaningful share of points was prefiltered.
	if skippedTotal < pointsTotal/20 {
		t.Fatalf("prefilter skipped only %d of %d points: generator no longer exercises the dead path",
			skippedTotal, pointsTotal)
	}
}

// FuzzSpringFilterDifferential lets the fuzzer drive the prefilter
// bit-identity property of TestSpringFilterBitIdentity.
func FuzzSpringFilterDifferential(f *testing.F) {
	f.Add(int64(7), uint8(8), uint8(64), uint8(1))
	f.Add(int64(3), uint8(1), uint8(1), uint8(0))
	f.Add(int64(11), uint8(15), uint8(200), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, q8, s8, tsel uint8) {
		rng := rand.New(rand.NewSource(seed))
		q := kernelRandomSeries(rng, int(q8)%16+1)
		stream := filterRandomStream(rng, queryRange(q), int(s8)%200+1)
		var threshold float64
		switch tsel % 4 {
		case 0:
			threshold = 0
		case 1:
			threshold = rng.Float64() * 0.01
		case 2:
			threshold = rng.Float64() * float64(len(q))
		default:
			threshold = rng.Float64() * 100 * float64(len(q))
		}
		checkFilterDifferential(t, q, stream, threshold, rng.Intn(4))
	})
}

// TestSpringFilterSkipsDeadStretch pins the prefilter mechanics on an
// engineered stream: a match, then a long far-from-query stretch, then a
// second match. The dead stretch must be consumed without cell fills,
// the first match must be confirmed by the first dead point, and the
// second match must survive the dormant restart bit-identically.
func TestSpringFilterSkipsDeadStretch(t *testing.T) {
	q := []float64{0, 1, 0}
	var stream []float64
	stream = append(stream, 5, 0, 1, 0, 5) // match bracketed by spikes
	for i := 0; i < 100; i++ {
		stream = append(stream, 1000) // dead: (1000-1)² >> threshold
	}
	stream = append(stream, 0, 1, 0, 5)

	sp, err := NewSpring(q, SpringConfig{Threshold: 0.5, Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []SubsequenceMatch
	for _, v := range stream {
		if m, ok := sp.AppendFiltered(v); ok {
			got = append(got, m)
		}
	}
	if m, ok := sp.Flush(); ok {
		got = append(got, m)
	}
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2: %+v", len(got), got)
	}
	if got[0].Start != 1 || got[0].End != 3 || got[0].Distance != 0 {
		t.Fatalf("first match %+v, want {1 3 0}", got[0])
	}
	if got[1].Start != 105 || got[1].End != 107 || got[1].Distance != 0 {
		t.Fatalf("second match %+v, want {105 107 0}", got[1])
	}
	if skipped := sp.Skipped(); skipped < 100 {
		t.Fatalf("skipped %d points, want the whole 100-point dead stretch (and the spikes)", skipped)
	}
	wantCells := int64(len(q)) * (int64(len(stream)) - sp.Skipped())
	if sp.Cells() != wantCells {
		t.Fatalf("cells %d, want %d (|q|·appended points)", sp.Cells(), wantCells)
	}
}

// TestSpringFilterDisarmed: a generic cost, an infinite threshold or a
// NaN query element must disarm the filter, making AppendFiltered run
// the plain recurrence — including Best tracking, which the armed filter
// does not preserve across skips.
func TestSpringFilterDisarmed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := kernelRandomSeries(rng, 8)
	stream := filterRandomStream(rng, queryRange(q), 200)
	abs := func(a, b float64) float64 { return math.Abs(a - b) }
	cases := []struct {
		name string
		q    []float64
		cfg  SpringConfig
	}{
		{"generic cost", q, SpringConfig{Dist: abs, Threshold: 1, Prefilter: true}},
		{"infinite threshold", q, SpringConfig{Threshold: math.Inf(1), Prefilter: true}},
		{"NaN query", append(append([]float64{}, q...), math.NaN()), SpringConfig{Threshold: 1, Prefilter: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spF, err := NewSpring(tc.q, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			plain := tc.cfg
			plain.Prefilter = false
			spP, err := NewSpring(tc.q, plain)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range stream {
				mF, okF := spF.AppendFiltered(v)
				mP, okP := spP.Append(v)
				if okF != okP || mF != mP {
					t.Fatalf("point %d: disarmed filter diverged: (%+v, %v) vs (%+v, %v)", i, mF, okF, mP, okP)
				}
			}
			if spF.Skipped() != 0 {
				t.Fatalf("disarmed filter skipped %d points", spF.Skipped())
			}
			bF, okF := spF.Best()
			bP, okP := spP.Best()
			if okF != okP || math.Float64bits(bF.Distance) != math.Float64bits(bP.Distance) ||
				bF.Start != bP.Start || bF.End != bP.End {
				t.Fatalf("disarmed Best diverged: (%+v, %v) vs (%+v, %v)", bF, okF, bP, okP)
			}
		})
	}
}

// TestSpringTemplateRecycle pins the pooling seam: a Spring initialised
// over slab backing, run, recycled with Reset and re-run must reproduce
// a fresh spring's emissions exactly — the contract the hub's arenas
// rely on when a closed stream's state is handed to a new stream.
func TestSpringTemplateRecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q := kernelRandomSeries(rng, 9)
	tpl, err := NewSpringTemplate(q, SpringConfig{Threshold: 2, MinGap: 1, Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if tpl.StateLen() != len(q) {
		t.Fatalf("StateLen %d, want %d", tpl.StateLen(), len(q))
	}
	// One slab backs two springs, like an arena chunk.
	n := tpl.StateLen()
	dSlab := make([]float64, 2*n)
	sSlab := make([]int, 2*n)
	var pooled, fresh Spring
	tpl.Init(&pooled, dSlab[:n], sSlab[:n])
	tpl.Init(&fresh, dSlab[n:], sSlab[n:])

	run := func(sp *Spring, stream []float64) []SubsequenceMatch {
		var out []SubsequenceMatch
		for _, v := range stream {
			if m, ok := sp.AppendFiltered(v); ok {
				out = append(out, m)
			}
		}
		if m, ok := sp.Flush(); ok {
			out = append(out, m)
		}
		return out
	}

	// Dirty the pooled spring on one stream, then recycle it.
	run(&pooled, filterRandomStream(rng, queryRange(q), 300))
	pooled.Reset()
	if pooled.Points() != 0 || pooled.Cells() != 0 || pooled.Skipped() != 0 {
		t.Fatalf("Reset left counters: points=%d cells=%d skipped=%d", pooled.Points(), pooled.Cells(), pooled.Skipped())
	}

	stream := filterRandomStream(rng, queryRange(q), 400)
	gotPooled := run(&pooled, stream)
	gotFresh := run(&fresh, stream)
	if len(gotPooled) != len(gotFresh) {
		t.Fatalf("recycled spring emitted %d matches, fresh %d", len(gotPooled), len(gotFresh))
	}
	for i := range gotPooled {
		if gotPooled[i] != gotFresh[i] {
			t.Fatalf("match %d diverged after recycling: %+v vs %+v", i, gotPooled[i], gotFresh[i])
		}
	}
}
