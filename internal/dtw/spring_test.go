package dtw

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sdtw/internal/series"
)

// TestSpringMatchesOfflineSubsequence is the incremental-equivalence
// property at the kernel level: after every prefix of a random stream,
// Spring.Best must be bit-identical (==, not within-epsilon) to the
// offline Subsequence DP over that prefix.
func TestSpringMatchesOfflineSubsequence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		m := n + rng.Intn(60)
		q := make([]float64, n)
		s := make([]float64, m)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		sp, err := NewSpring(q, SpringConfig{Threshold: math.Inf(1)})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < m; j++ {
			if _, emitted := sp.Append(s[j]); emitted {
				t.Fatalf("trial %d: best-only Spring emitted a match", trial)
			}
			got, ok := sp.Best()
			if !ok {
				t.Fatalf("trial %d: no best after %d points", trial, j+1)
			}
			want, err := Subsequence(q, s[:j+1], nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d after %d points: Spring %+v, offline %+v", trial, j+1, got, want)
			}
		}
		if sp.Points() != m || sp.Cells() != int64(n*m) {
			t.Fatalf("trial %d: accounting points=%d cells=%d, want %d and %d",
				trial, sp.Points(), sp.Cells(), m, n*m)
		}
	}
}

// TestSpringCustomDistanceEquivalence repeats the equivalence under a
// non-default point cost.
func TestSpringCustomDistanceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := []float64{0, 1, 2, 1, 0}
	s := make([]float64, 40)
	for j := range s {
		s[j] = rng.NormFloat64() * 2
	}
	sp, err := NewSpring(q, SpringConfig{Dist: series.AbsDistance, Threshold: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		sp.Append(v)
	}
	got, _ := sp.Best()
	want, err := Subsequence(q, s, series.AbsDistance)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Spring %+v, offline %+v", got, want)
	}
}

// TestSpringEmission plants two exact occurrences of the query in a
// hostile stream and checks that thresholded emission reports both,
// non-overlapping, with the right bounds and zero distance.
func TestSpringEmission(t *testing.T) {
	q := []float64{0, 2, 0}
	stream := []float64{9, 9, 0, 2, 0, 9, 9, 9, 0, 2, 0, 9, 9}
	sp, err := NewSpring(q, SpringConfig{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var got []SubsequenceMatch
	for _, v := range stream {
		if m, ok := sp.Append(v); ok {
			got = append(got, m)
		}
	}
	if m, ok := sp.Flush(); ok {
		got = append(got, m)
	}
	want := []SubsequenceMatch{{Start: 2, End: 4, Distance: 0}, {Start: 8, End: 10, Distance: 0}}
	if len(got) != len(want) {
		t.Fatalf("emitted %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// Emitted matches never overlap and arrive in stream order.
	for i := 1; i < len(got); i++ {
		if got[i].Start <= got[i-1].End {
			t.Fatalf("overlapping matches: %+v then %+v", got[i-1], got[i])
		}
	}
}

// TestSpringMinGap: with a gap larger than the spacing between two
// plants, the second occurrence must be suppressed.
func TestSpringMinGap(t *testing.T) {
	q := []float64{0, 2, 0}
	// Occurrences at [2,4] and [7,9]: 2 points apart.
	stream := []float64{9, 9, 0, 2, 0, 9, 9, 0, 2, 0, 9, 9, 9, 9}
	count := func(gap int) int {
		sp, err := NewSpring(q, SpringConfig{Threshold: 0.5, MinGap: gap})
		if err != nil {
			t.Fatal(err)
		}
		matches := 0
		for _, v := range stream {
			if _, ok := sp.Append(v); ok {
				matches++
			}
		}
		if _, ok := sp.Flush(); ok {
			matches++
		}
		return matches
	}
	if got := count(0); got != 2 {
		t.Fatalf("gap 0 emitted %d matches, want 2", got)
	}
	if got := count(5); got != 1 {
		t.Fatalf("gap 5 emitted %d matches, want 1 (second plant inside the gap)", got)
	}
}

// TestSpringFlushPending: a region that crosses the threshold but is
// never confirmed mid-stream (nothing after it to close it) must be
// reported by Flush.
func TestSpringFlushPending(t *testing.T) {
	q := []float64{0, 2, 0}
	stream := []float64{9, 9, 0, 2, 0} // plant ends at the last point
	sp, err := NewSpring(q, SpringConfig{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range stream {
		if _, ok := sp.Append(v); ok {
			t.Fatal("match confirmed before end of stream")
		}
	}
	m, ok := sp.Flush()
	if !ok || m.Start != 2 || m.End != 4 || m.Distance != 0 {
		t.Fatalf("Flush = %+v (%v), want [2,4] at 0", m, ok)
	}
	if _, ok := sp.Flush(); ok {
		t.Fatal("second Flush re-reported the match")
	}
}

// TestSpringValidation pins the constructor's sentinel errors.
func TestSpringValidation(t *testing.T) {
	if _, err := NewSpring(nil, SpringConfig{}); !errors.Is(err, series.ErrEmptySeries) {
		t.Fatalf("empty query: got %v, want ErrEmptySeries", err)
	}
	if _, err := NewSpring([]float64{1}, SpringConfig{MinGap: -1}); err == nil {
		t.Fatal("negative MinGap accepted")
	}
}

// TestSubsequenceSentinel pins the offline DP's sentinel wrapping.
func TestSubsequenceSentinel(t *testing.T) {
	if _, err := Subsequence(nil, []float64{1}, nil); !errors.Is(err, series.ErrEmptySeries) {
		t.Fatalf("empty query: got %v, want ErrEmptySeries", err)
	}
	if _, err := Subsequence([]float64{1}, nil, nil); !errors.Is(err, series.ErrEmptySeries) {
		t.Fatalf("empty stream: got %v, want ErrEmptySeries", err)
	}
}

// TestSubsequenceWSReuse: the workspace variant returns identical results
// across reuses and mixed sizes.
func TestSubsequenceWSReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ws Workspace
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		m := n + rng.Intn(30)
		q := make([]float64, n)
		s := make([]float64, m)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		got, err := SubsequenceWS(q, s, nil, &ws)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Subsequence(q, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: workspace %+v, fresh %+v", trial, got, want)
		}
	}
}
