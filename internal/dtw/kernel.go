package dtw

// Monomorphized, branch-free dynamic-programming kernels for the default
// squared point cost.
//
// Every hot loop in this package is generic over a series.PointDistance
// function pointer, which costs one indirect call per grid cell plus
// per-cell band-interval membership checks. For the default cost (a-b)²
// that overhead dominates the O(band) dynamic programs the locally
// relevant constraints buy (§2.1.1, §3.4). The kernels below run the same
// recurrences with the cost inlined and each band row split into
// pre-overlap / overlap / post-overlap segments against the previous
// row's interval, so the core segment runs branch-free over re-sliced
// buffers (letting the compiler drop the bounds checks) and the tail is a
// pure horizontal accumulation.
//
// Bit-identity contract: every kernel performs the same floating-point
// operations in the same order as its generic counterpart. Squared costs
// round through an explicit float64 conversion so the compiler cannot
// fuse the multiply into the following add across what used to be a
// function-call boundary. Differential tests in kernel_test.go pin
// distance, cell count, abandoned flag and path equality against the
// generic path on random series, bands and budgets.

import (
	"context"
	"math"

	"sdtw/internal/series"
)

// useSquaredKernel reports whether dist selects the default squared cost,
// in which case the dispatch sites may run the monomorphized kernels. The
// decision (and the repository-wide series.SetKernelDispatch A/B switch
// it honours) lives in internal/series, shared with the lower-bound
// kernels so the two packages cannot flip out of lockstep.
func useSquaredKernel(dist series.PointDistance) bool {
	return series.UseSquaredKernel(dist)
}

// sq is the inlined default cost (a-b)². The explicit float64 conversion
// forces the multiply to round before the caller's add, exactly like the
// result of a series.PointDistance call does, so fused multiply-add
// cannot break bit-identity with the generic path.
func sq(a, b float64) float64 {
	d := a - b
	return float64(d * d)
}

// fillRow0Squared fills the first band row, where cell (0,0) is the free
// origin and the only other predecessor is the horizontal one — a running
// accumulation carried in a register.
//
//sdtw:hotpath
func fillRow0Squared(x0 float64, y []float64, lo, hi int, curr []float64) float64 {
	inf := math.Inf(1)
	rowMin := inf
	h := inf
	for j := lo; j <= hi; j++ {
		best := h
		if j == 0 {
			best = 0
		}
		v := best + sq(x0, y[j])
		curr[j-lo] = v
		h = v
		if v < rowMin {
			rowMin = v
		}
	}
	return rowMin
}

// fillRowSquared fills one band row of the squared-cost dynamic program:
// curr[0..hi-lo] receives the accumulated costs of cells (i, lo..hi)
// given the previous row's interval [prevLo, prevHi] stored in prev. It
// returns the row minimum.
//
// The row is split against the previous row's interval into
//
//	head:  per-cell membership checks (cells before the full overlap);
//	core:  diagonal, vertical and horizontal predecessors all exist —
//	       branch-free over buffers re-sliced to the segment width;
//	tail:  past the previous interval's reach — only the horizontal
//	       predecessor remains, a pure running accumulation;
//
// with at most one boundary cell between core and tail where the diagonal
// still reaches. The comparison order inside every segment (diagonal,
// then vertical on strict <, then horizontal on strict <) is exactly the
// generic loop's.
//
//sdtw:hotpath
func fillRowSquared(xi float64, y []float64, lo, hi int, prev []float64, prevLo, prevHi int, curr []float64) float64 {
	inf := math.Inf(1)
	rowMin := inf
	// All three predecessors exist exactly for j in
	// [max(prevLo, lo)+1, min(prevHi, hi)]; from max(prevHi+2, lo+1) on,
	// only the horizontal predecessor remains.
	coreStart := prevLo + 1
	if lo+1 > coreStart {
		coreStart = lo + 1
	}
	coreEnd := prevHi
	if hi < coreEnd {
		coreEnd = hi
	}
	tailStart := prevHi + 2
	if lo+1 > tailStart {
		tailStart = lo + 1
	}

	j := lo
	// Head: cells before the full overlap, with per-cell checks.
	for ; j <= hi && j < coreStart; j++ {
		best := inf
		if j-1 >= prevLo && j-1 <= prevHi { // diagonal (i-1, j-1)
			best = prev[j-1-prevLo]
		}
		if j >= prevLo && j <= prevHi { // vertical (i-1, j)
			if v := prev[j-prevLo]; v < best {
				best = v
			}
		}
		if j-1 >= lo { // horizontal (i, j-1)
			if v := curr[j-1-lo]; v < best {
				best = v
			}
		}
		v := best + sq(xi, y[j])
		curr[j-lo] = v
		if v < rowMin {
			rowMin = v
		}
	}
	// Core: branch-free. The horizontal dependency rides in h; the
	// re-sliced views are all exactly w long, so the compiler proves the
	// indexing in range once.
	if j <= coreEnd {
		w := coreEnd - j + 1
		yd := y[j : j+w : j+w]
		pd := prev[j-1-prevLo:]
		pd = pd[:w]
		pv := prev[j-prevLo:]
		pv = pv[:w]
		cw := curr[j-lo:]
		cw = cw[:w]
		h := curr[j-1-lo]
		for k := range yd {
			best := pd[k]
			if v := pv[k]; v < best {
				best = v
			}
			if h < best {
				best = h
			}
			d := xi - yd[k]
			v := best + float64(d*d)
			cw[k] = v
			h = v
			if v < rowMin {
				rowMin = v
			}
		}
		j += w
	}
	// Boundary: between core and tail the diagonal may still reach
	// (j == prevHi+1); at most one such cell.
	for ; j <= hi && j < tailStart; j++ {
		best := inf
		if j-1 >= prevLo && j-1 <= prevHi {
			best = prev[j-1-prevLo]
		}
		if j >= prevLo && j <= prevHi {
			if v := prev[j-prevLo]; v < best {
				best = v
			}
		}
		if j-1 >= lo {
			if v := curr[j-1-lo]; v < best {
				best = v
			}
		}
		v := best + sq(xi, y[j])
		curr[j-lo] = v
		if v < rowMin {
			rowMin = v
		}
	}
	// Tail: only the horizontal predecessor remains. An infinite h stays
	// infinite through the accumulation, exactly like the generic cells.
	if j <= hi {
		h := curr[j-1-lo]
		yd := y[j : hi+1 : hi+1]
		cw := curr[j-lo:]
		cw = cw[:len(yd)]
		for k := range yd {
			d := xi - yd[k]
			v := h + float64(d*d)
			cw[k] = v
			h = v
			if v < rowMin {
				rowMin = v
			}
		}
	}
	return rowMin
}

// fillRow0SquaredNoMin is fillRow0Squared without row-minimum tracking,
// for callers that can never abandon (budget +Inf) and so never read it.
//
//sdtw:hotpath
func fillRow0SquaredNoMin(x0 float64, y []float64, lo, hi int, curr []float64) {
	h := math.Inf(1)
	for j := lo; j <= hi; j++ {
		best := h
		if j == 0 {
			best = 0
		}
		v := best + sq(x0, y[j])
		curr[j-lo] = v
		h = v
	}
}

// fillRowSquaredNoMin is fillRowSquared without row-minimum tracking: the
// min update is one data-dependent float branch per cell, a measurable
// fraction of the branch-free core, and callers that cannot abandon
// (budget +Inf — every BandedWS/BandedWithPath computation) never read
// it. Segments and comparison order are identical to fillRowSquared.
//
//sdtw:hotpath
func fillRowSquaredNoMin(xi float64, y []float64, lo, hi int, prev []float64, prevLo, prevHi int, curr []float64) {
	inf := math.Inf(1)
	coreStart := prevLo + 1
	if lo+1 > coreStart {
		coreStart = lo + 1
	}
	coreEnd := prevHi
	if hi < coreEnd {
		coreEnd = hi
	}
	tailStart := prevHi + 2
	if lo+1 > tailStart {
		tailStart = lo + 1
	}

	j := lo
	for ; j <= hi && j < coreStart; j++ {
		best := inf
		if j-1 >= prevLo && j-1 <= prevHi { // diagonal (i-1, j-1)
			best = prev[j-1-prevLo]
		}
		if j >= prevLo && j <= prevHi { // vertical (i-1, j)
			if v := prev[j-prevLo]; v < best {
				best = v
			}
		}
		if j-1 >= lo { // horizontal (i, j-1)
			if v := curr[j-1-lo]; v < best {
				best = v
			}
		}
		curr[j-lo] = best + sq(xi, y[j])
	}
	if j <= coreEnd {
		w := coreEnd - j + 1
		yd := y[j : j+w : j+w]
		pd := prev[j-1-prevLo:]
		pd = pd[:w]
		pv := prev[j-prevLo:]
		pv = pv[:w]
		cw := curr[j-lo:]
		cw = cw[:w]
		h := curr[j-1-lo]
		for k := range yd {
			best := pd[k]
			if v := pv[k]; v < best {
				best = v
			}
			if h < best {
				best = h
			}
			d := xi - yd[k]
			v := best + float64(d*d)
			cw[k] = v
			h = v
		}
		j += w
	}
	for ; j <= hi && j < tailStart; j++ {
		best := inf
		if j-1 >= prevLo && j-1 <= prevHi {
			best = prev[j-1-prevLo]
		}
		if j >= prevLo && j <= prevHi {
			if v := prev[j-prevLo]; v < best {
				best = v
			}
		}
		if j-1 >= lo {
			if v := curr[j-1-lo]; v < best {
				best = v
			}
		}
		curr[j-lo] = best + sq(xi, y[j])
	}
	if j <= hi {
		h := curr[j-1-lo]
		yd := y[j : hi+1 : hi+1]
		cw := curr[j-lo:]
		cw = cw[:len(yd)]
		for k := range yd {
			d := xi - yd[k]
			v := h + float64(d*d)
			cw[k] = v
			h = v
		}
	}
}

// bandedAbandonSquared is BandedAbandonCtx monomorphized for the default
// squared cost: same row order, same cancellation and abandonment points,
// same comparison order — with the cost inlined and rows filled by the
// segmented kernel. A budget of +Inf (or NaN) can never abandon, so that
// path runs the min-free row fillers: tracking the row minimum costs one
// data-dependent float branch per cell, a real fraction of the branch-
// free core. Inputs were validated by the caller.
func bandedAbandonSquared(ctx context.Context, x, y []float64, b Band, budget float64, ws *Workspace) (float64, int, bool, error) {
	n, m := len(x), len(y)
	maxWidth := 0
	for i := 0; i < n; i++ {
		if w := b.Hi[i] - b.Lo[i] + 1; w > maxWidth {
			maxWidth = w
		}
	}
	if ws == nil {
		ws = &Workspace{}
	}
	prev, curr := ws.rows(maxWidth)
	prevLo, prevHi := 0, -1
	cells := 0
	abandonable := !math.IsInf(budget, 1) && !math.IsNaN(budget)
	for i := 0; i < n; i++ {
		if ctx != nil && i%cancelCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return 0, cells, false, err
			}
		}
		lo, hi := b.Lo[i], b.Hi[i]
		if abandonable {
			var rowMin float64
			if i == 0 {
				rowMin = fillRow0Squared(x[0], y, lo, hi, curr)
			} else {
				rowMin = fillRowSquared(x[i], y, lo, hi, prev, prevLo, prevHi, curr)
			}
			cells += hi - lo + 1
			prev, curr = curr, prev
			prevLo, prevHi = lo, hi
			if i < n-1 && rowMin > budget {
				return rowMin, cells, true, nil
			}
			continue
		}
		if i == 0 {
			fillRow0SquaredNoMin(x[0], y, lo, hi, curr)
		} else {
			fillRowSquaredNoMin(x[i], y, lo, hi, prev, prevLo, prevHi, curr)
		}
		cells += hi - lo + 1
		prev, curr = curr, prev
		prevLo, prevHi = lo, hi
	}
	if m-1 < prevLo || m-1 > prevHi {
		return 0, cells, false, errNoWarpPath()
	}
	d := prev[m-1-prevLo]
	if math.IsInf(d, 1) {
		return 0, cells, false, errNoWarpPath()
	}
	return d, cells, false, nil
}

// distanceSquared is the full-grid Distance loop monomorphized for the
// default squared cost, using the same two rolling (m+1)-rows and the
// same comparison order as the generic loop.
func distanceSquared(x, y []float64) float64 {
	m := len(y)
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	inf := math.Inf(1)
	for j := 1; j <= m; j++ {
		prev[j] = inf
	}
	for i := 1; i <= len(x); i++ {
		curr[0] = inf
		xi := x[i-1]
		pd := prev[:m] // prev[j-1] for j = 1..m
		pv := prev[1:]
		pv = pv[:m]
		cw := curr[1:]
		cw = cw[:m]
		yd := y[:m]
		h := inf // curr[0]
		for k := range yd {
			best := pd[k] // diagonal
			if v := pv[k]; v < best {
				best = v // vertical
			}
			if h < best {
				best = h // horizontal
			}
			d := xi - yd[k]
			v := best + float64(d*d)
			cw[k] = v
			h = v
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

// subsequenceSquared is the open-begin/open-end subsequence DP
// monomorphized for the default squared cost; same recurrence, comparison
// order and start-pointer tie-breaking as the generic SubsequenceWS loop.
//
//sdtw:hotpath
func subsequenceSquared(q, s []float64, ws *Workspace) SubsequenceMatch {
	n, m := len(q), len(s)
	inf := math.Inf(1)
	prev, curr := ws.rows(m)
	prevStart, currStart := ws.startRows(m)

	q0 := q[0]
	sd := s[:m]
	p0 := prev[:m]
	ps0 := prevStart[:m]
	for j := range sd {
		p0[j] = sq(q0, sd[j])
		ps0[j] = j
	}
	for i := 1; i < n; i++ {
		qi := q[i]
		pd := prev[:m]
		ps := prevStart[:m]
		cd := curr[:m]
		cs := currStart[:m]
		// Column 0 has no diagonal or horizontal predecessor.
		best := pd[0]
		from := ps[0]
		if math.IsInf(best, 1) {
			cd[0], cs[0] = inf, 0
		} else {
			cd[0], cs[0] = best+sq(qi, sd[0]), from
		}
		for j := 1; j < m; j++ {
			best = pd[j] // vertical: advance q only
			from = ps[j]
			if pd[j-1] < best { // diagonal
				best = pd[j-1]
				from = ps[j-1]
			}
			if cd[j-1] < best { // horizontal: advance s only
				best = cd[j-1]
				from = cs[j-1]
			}
			if math.IsInf(best, 1) {
				cd[j] = inf
				cs[j] = j
				continue
			}
			d := qi - sd[j]
			cd[j] = best + float64(d*d)
			cs[j] = from
		}
		prev, curr = curr, prev
		prevStart, currStart = currStart, prevStart
	}
	bestJ := 0
	for j := 1; j < m; j++ {
		if prev[j] < prev[bestJ] {
			bestJ = j
		}
	}
	return SubsequenceMatch{Start: prevStart[bestJ], End: bestJ, Distance: prev[bestJ]}
}
