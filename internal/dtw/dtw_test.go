package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdtw/internal/series"
)

func randomSeries(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDistanceKnownValues(t *testing.T) {
	tests := []struct {
		name string
		x, y []float64
		want float64
	}{
		{"identical", []float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{"single points", []float64{2}, []float64{5}, 9},
		{"shifted step", []float64{0, 0, 1, 1}, []float64{0, 1, 1, 1}, 0},
		{"constant offset", []float64{0, 0, 0}, []float64{1, 1, 1}, 3},
		{"stretch absorbed", []float64{0, 1, 2}, []float64{0, 0, 1, 1, 2, 2}, 0},
		{"reversal costs", []float64{0, 1}, []float64{1, 0}, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Distance(tc.x, tc.y, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Distance = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDistanceAbsCost(t *testing.T) {
	got, err := Distance([]float64{0, 0}, []float64{3, 3}, series.AbsDistance)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("L1 DTW = %v, want 6", got)
	}
}

func TestDistanceEmptyInput(t *testing.T) {
	if _, err := Distance(nil, []float64{1}, nil); err == nil {
		t.Fatal("empty x not rejected")
	}
	if _, err := Distance([]float64{1}, nil, nil); err == nil {
		t.Fatal("empty y not rejected")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		x := randomSeries(rng, 5+rng.Intn(40))
		y := randomSeries(rng, 5+rng.Intn(40))
		dxy, err := Distance(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		dyx, err := Distance(y, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dxy-dyx) > 1e-9 {
			t.Fatalf("DTW not symmetric: %v vs %v", dxy, dyx)
		}
	}
}

func TestDistanceSelfIsZero(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Mod(x, 1e3)
		}
		d, err := Distance(v, v, nil)
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceBoundedByDiagonalAlignment(t *testing.T) {
	// The diagonal is a valid warp path, so DTW <= pointwise cost.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		x := randomSeries(rng, n)
		y := randomSeries(rng, n)
		d, err := Distance(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		diag, err := series.EuclideanAligned(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d > diag+1e-9 {
			t.Fatalf("DTW %v exceeds diagonal alignment cost %v", d, diag)
		}
	}
}

func TestDistanceWithPathMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		x := randomSeries(rng, 2+rng.Intn(50))
		y := randomSeries(rng, 2+rng.Intn(50))
		d, err := Distance(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := DistanceWithPath(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-pr.Distance) > 1e-9 {
			t.Fatalf("path distance %v != rolling distance %v", pr.Distance, d)
		}
		if err := pr.Path.Validate(len(x), len(y)); err != nil {
			t.Fatalf("invalid path: %v", err)
		}
		if c := pr.Path.Cost(x, y, nil); math.Abs(c-d) > 1e-9 {
			t.Fatalf("path cost %v != distance %v", c, d)
		}
	}
}

func TestPathValidate(t *testing.T) {
	tests := []struct {
		name    string
		path    Path
		n, m    int
		wantErr bool
	}{
		{"ok diagonal", Path{{0, 0}, {1, 1}}, 2, 2, false},
		{"ok mixed", Path{{0, 0}, {1, 0}, {1, 1}, {2, 2}}, 3, 3, false},
		{"empty", nil, 2, 2, true},
		{"bad start", Path{{1, 0}, {1, 1}}, 2, 2, true},
		{"bad end", Path{{0, 0}, {1, 0}}, 2, 2, true},
		{"backward step", Path{{0, 0}, {1, 1}, {0, 1}, {1, 1}}, 2, 2, true},
		{"jump", Path{{0, 0}, {2, 2}}, 3, 3, true},
		{"stall", Path{{0, 0}, {0, 0}, {1, 1}}, 2, 2, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.path.Validate(tc.n, tc.m)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() error = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestBandedFullBandEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		x := randomSeries(rng, 2+rng.Intn(40))
		y := randomSeries(rng, 2+rng.Intn(40))
		full, err := Distance(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		banded, cells, err := Banded(x, y, FullBand(len(x), len(y)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(full-banded) > 1e-9 {
			t.Fatalf("full-band banded %v != full %v", banded, full)
		}
		if cells != len(x)*len(y) {
			t.Fatalf("full band filled %d cells, want %d", cells, len(x)*len(y))
		}
	}
}

func TestBandedNeverUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		n, m := 2+rng.Intn(30), 2+rng.Intn(30)
		x := randomSeries(rng, n)
		y := randomSeries(rng, m)
		b := randomBand(rng, n, m).Normalize()
		full, err := Distance(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		banded, _, err := Banded(x, y, b, nil)
		if err != nil {
			t.Fatalf("normalized band failed: %v", err)
		}
		if banded < full-1e-9 {
			t.Fatalf("banded %v under full %v", banded, full)
		}
	}
}

func randomBand(rng *rand.Rand, n, m int) Band {
	b := Band{Lo: make([]int, n), Hi: make([]int, n), M: m}
	for i := 0; i < n; i++ {
		a := rng.Intn(m)
		c := rng.Intn(m)
		if a > c {
			a, c = c, a
		}
		b.Lo[i], b.Hi[i] = a, c
	}
	return b
}

func TestBandedWithPathStaysInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n, m := 2+rng.Intn(25), 2+rng.Intn(25)
		x := randomSeries(rng, n)
		y := randomSeries(rng, m)
		b := randomBand(rng, n, m).Normalize()
		pr, err := BandedWithPath(x, y, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.Path.Validate(n, m); err != nil {
			t.Fatalf("invalid banded path: %v", err)
		}
		for _, s := range pr.Path {
			if !b.Contains(s.I, s.J) {
				t.Fatalf("path leaves band at (%d,%d)", s.I, s.J)
			}
		}
		if c := pr.Path.Cost(x, y, nil); math.Abs(c-pr.Distance) > 1e-9 {
			t.Fatalf("banded path cost %v != distance %v", c, pr.Distance)
		}
	}
}

func TestBandedAgreesWithBandedWithPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n, m := 2+rng.Intn(30), 2+rng.Intn(30)
		x := randomSeries(rng, n)
		y := randomSeries(rng, m)
		b := randomBand(rng, n, m).Normalize()
		d1, cells1, err := Banded(x, y, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := BandedWithPath(x, y, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d1-pr.Distance) > 1e-9 {
			t.Fatalf("Banded %v != BandedWithPath %v", d1, pr.Distance)
		}
		if cells1 != pr.Cells {
			t.Fatalf("cell counts differ: %d vs %d", cells1, pr.Cells)
		}
	}
}

func TestBandedRejectsDisconnectedBand(t *testing.T) {
	// A band with an unbridged gap admits no path; Banded must report it
	// rather than return a bogus distance.
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 2, 3, 4}
	b := Band{Lo: []int{0, 0, 3, 3}, Hi: []int{0, 0, 3, 3}, M: 4}
	if _, _, err := Banded(x, y, b, nil); err == nil {
		t.Fatal("disconnected band not rejected")
	}
}

func TestBandedInputValidation(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{1, 2, 3}
	good := FullBand(2, 3)
	if _, _, err := Banded(nil, y, good, nil); err == nil {
		t.Error("empty x accepted")
	}
	if _, _, err := Banded(x, y, FullBand(3, 3), nil); err == nil {
		t.Error("row-count mismatch accepted")
	}
	if _, _, err := Banded(x, y, FullBand(2, 2), nil); err == nil {
		t.Error("column-count mismatch accepted")
	}
	bad := Band{Lo: []int{0, 5}, Hi: []int{0, 6}, M: 3}
	if _, _, err := Banded(x, y, bad, nil); err == nil {
		t.Error("out-of-range band accepted")
	}
}

func TestBandedWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var ws Workspace
	for trial := 0; trial < 20; trial++ {
		n, m := 2+rng.Intn(30), 2+rng.Intn(30)
		x := randomSeries(rng, n)
		y := randomSeries(rng, m)
		b := randomBand(rng, n, m).Normalize()
		want, _, err := Banded(x, y, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := BandedWS(x, y, b, nil, &ws)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(want-got) > 1e-12 {
			t.Fatalf("workspace reuse changed result: %v vs %v", got, want)
		}
	}
}

func TestBandedPropertyDominatesFull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(20), 2+rng.Intn(20)
		x := randomSeries(rng, n)
		y := randomSeries(rng, m)
		b := randomBand(rng, n, m).Normalize()
		full, err1 := Distance(x, y, nil)
		banded, _, err2 := Banded(x, y, b, nil)
		return err1 == nil && err2 == nil && banded >= full-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWiderBandNeverWorse(t *testing.T) {
	// Monotonicity: adding cells to a band can only improve the estimate.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n, m := 3+rng.Intn(25), 3+rng.Intn(25)
		x := randomSeries(rng, n)
		y := randomSeries(rng, m)
		narrow := SakoeChiba(n, m, 0.1)
		wide := SakoeChiba(n, m, 0.4)
		dn, _, err := Banded(x, y, narrow, nil)
		if err != nil {
			t.Fatal(err)
		}
		dw, _, err := Banded(x, y, wide, nil)
		if err != nil {
			t.Fatal(err)
		}
		if dw > dn+1e-9 {
			t.Fatalf("wider band worse: %v > %v", dw, dn)
		}
	}
}

// TestPathValidateLengthBoundary pins both ends of the length bound: a
// monotone unit-step path holds at most n+m-1 cells (the pure staircase),
// so n+m-1 must validate and n+m must be rejected.
func TestPathValidateLengthBoundary(t *testing.T) {
	n, m := 3, 4
	// Staircase: across row 0, then down the last column — n+m-1 cells.
	staircase := Path{}
	for j := 0; j < m; j++ {
		staircase = append(staircase, Step{0, j})
	}
	for i := 1; i < n; i++ {
		staircase = append(staircase, Step{i, m - 1})
	}
	tests := []struct {
		name    string
		path    Path
		wantErr bool
	}{
		{"staircase n+m-1", staircase, false},
		{"diagonal max(n,m)", Path{{0, 0}, {0, 1}, {1, 2}, {2, 3}}, false},
		{"overlong n+m", append(append(Path{}, staircase...), Step{n - 1, m - 1}), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if len(tc.path) > 0 {
				if want := n + m - 1; !tc.wantErr && tc.name == "staircase n+m-1" && len(tc.path) != want {
					t.Fatalf("staircase has %d cells, want %d", len(tc.path), want)
				}
			}
			err := tc.path.Validate(n, m)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() error = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

// TestBandedAbandonProperties is the contract the retrieval cascade's
// exactness rests on: with budget +Inf the abandoning variant is
// bit-identical to BandedWS; with a finite budget an abandoned run's
// partial cost is strictly above the budget yet never above the true
// banded distance (a valid lower bound), and a budget at or above the
// true distance never abandons (the budget is exclusive).
func TestBandedAbandonProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 80; trial++ {
		n, m := 3+rng.Intn(30), 3+rng.Intn(30)
		x := randomSeries(rng, n)
		y := randomSeries(rng, m)
		var b Band
		if trial%2 == 0 {
			b = FullBand(n, m)
		} else {
			b = SakoeChiba(n, m, 0.2)
		}
		d, cells, err := BandedWS(x, y, b, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		di, ci, abandoned, err := BandedAbandonWS(x, y, b, nil, math.Inf(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		if abandoned || di != d || ci != cells {
			t.Fatalf("budget=+Inf diverges: (%v,%d,%v) vs (%v,%d)", di, ci, abandoned, d, cells)
		}
		// Budget exactly at the true distance: exclusive, must not abandon.
		dt, ct, abandoned, err := BandedAbandonWS(x, y, b, nil, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if abandoned || dt != d || ct != cells {
			t.Fatalf("budget=d abandoned or diverged: (%v,%d,%v) vs (%v,%d)", dt, ct, abandoned, d, cells)
		}
		// Tight budget: if the run abandons, the partial cost must be a
		// lower bound on d sitting strictly above the budget, with fewer
		// cells filled.
		budget := d * 0.25
		dp, cp, abandoned, err := BandedAbandonWS(x, y, b, nil, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if abandoned {
			if dp <= budget {
				t.Fatalf("abandoned at %v with budget %v (must be strictly above)", dp, budget)
			}
			if dp > d+1e-9*(1+math.Abs(d)) {
				t.Fatalf("partial cost %v exceeds true banded distance %v", dp, d)
			}
			if cp >= cells {
				t.Fatalf("abandoned run filled %d cells, full run %d", cp, cells)
			}
		} else if dp != d || cp != cells {
			t.Fatalf("non-abandoned run diverged: (%v,%d) vs (%v,%d)", dp, cp, d, cells)
		}
	}
}

// TestSakoeChibaRadiusGeometry checks the explicit-radius constructor
// keeps every square-grid band cell within |i-j| <= radius — the exact
// window LB_Keogh envelopes at the same radius lower-bound — while the
// widthFrac constructor's ceil rounding can exceed it.
func TestSakoeChibaRadiusGeometry(t *testing.T) {
	for _, n := range []int{2, 9, 50, 137} {
		for _, r := range []int{0, 1, 5, n - 1} {
			b := SakoeChibaRadius(n, n, r)
			if err := b.Validate(); err != nil {
				t.Fatalf("n=%d r=%d: %v", n, r, err)
			}
			for i := 0; i < n; i++ {
				for _, j := range []int{b.Lo[i], b.Hi[i]} {
					if j < i-r || j > i+r {
						t.Fatalf("n=%d r=%d: cell (%d,%d) outside the radius window", n, r, i, j)
					}
				}
				// The full window (clamped to the grid) must be present:
				// narrower would make the windowed distance stricter than
				// the envelopes assume.
				wantLo, wantHi := i-r, i+r
				if wantLo < 0 {
					wantLo = 0
				}
				if wantHi > n-1 {
					wantHi = n - 1
				}
				if b.Lo[i] > wantLo || b.Hi[i] < wantHi {
					t.Fatalf("n=%d r=%d row %d: band [%d,%d] narrower than window [%d,%d]",
						n, r, i, b.Lo[i], b.Hi[i], wantLo, wantHi)
				}
			}
		}
	}
	// The off-by-one this constructor exists to avoid: deriving radius 1
	// via widthFrac gives ceil(3/L * L/2) = 2.
	wide := SakoeChiba(9, 9, 3.0/9.0)
	if wide.Hi[0] <= 1 {
		t.Fatalf("widthFrac-derived band no longer over-widens (Hi[0]=%d); keep constructors in sync", wide.Hi[0])
	}
	if exact := SakoeChibaRadius(9, 9, 1); exact.Hi[0] != 1 {
		t.Fatalf("radius-1 band Hi[0] = %d, want 1", exact.Hi[0])
	}
}
