package dtw

import (
	"fmt"
	"math"

	"sdtw/internal/series"
)

// SubsequenceMatch locates the best-matching contiguous region of a long
// series for a query under DTW.
type SubsequenceMatch struct {
	// Start and End delimit the matched region of the long series,
	// inclusive.
	Start, End int
	// Distance is the DTW distance between the query and the region.
	Distance float64
}

// Subsequence finds the subsequence of s whose DTW distance to the query
// q is minimal (open-begin, open-end alignment): the warp path must
// consume all of q but may start and end anywhere on s. This is the
// classical subsequence DTW used for query-by-content over long streams —
// the retrieval setting the paper's introduction motivates.
//
// The dynamic program runs in O(|q|·|s|) time and O(|s|) space, tracking
// for every cell the position on s where its path entered row 0 so the
// match's start point is recovered without storing the full grid. For the
// incremental, point-at-a-time formulation of the same recurrence see
// Spring.
func Subsequence(q, s []float64, dist series.PointDistance) (SubsequenceMatch, error) {
	return SubsequenceWS(q, s, dist, nil)
}

// SubsequenceWS is Subsequence with an optional caller-provided workspace
// for allocation-free repeated computation.
func SubsequenceWS(q, s []float64, dist series.PointDistance, ws *Workspace) (SubsequenceMatch, error) {
	if len(q) == 0 || len(s) == 0 {
		return SubsequenceMatch{}, fmt.Errorf("dtw: empty input (len(q)=%d len(s)=%d): %w", len(q), len(s), series.ErrEmptySeries)
	}
	if ws == nil {
		ws = &Workspace{}
	}
	if useSquaredKernel(dist) {
		return subsequenceSquared(q, s, ws), nil
	}
	if dist == nil {
		dist = series.SquaredDistance
	}
	n, m := len(q), len(s)
	inf := math.Inf(1)
	prev, curr := ws.rows(m)
	prevStart, currStart := ws.startRows(m)

	// Row 0: the path may begin at any column of s for free.
	for j := 0; j < m; j++ {
		prev[j] = dist(q[0], s[j])
		prevStart[j] = j
	}
	for i := 1; i < n; i++ {
		qi := q[i]
		for j := 0; j < m; j++ {
			best := prev[j] // vertical: advance q only
			from := prevStart[j]
			if j > 0 {
				if prev[j-1] < best { // diagonal
					best = prev[j-1]
					from = prevStart[j-1]
				}
				if curr[j-1] < best { // horizontal: advance s only
					best = curr[j-1]
					from = currStart[j-1]
				}
			}
			if math.IsInf(best, 1) {
				curr[j] = inf
				currStart[j] = j
				continue
			}
			curr[j] = best + dist(qi, s[j])
			currStart[j] = from
		}
		prev, curr = curr, prev
		prevStart, currStart = currStart, prevStart
	}
	bestJ := 0
	for j := 1; j < m; j++ {
		if prev[j] < prev[bestJ] {
			bestJ = j
		}
	}
	return SubsequenceMatch{Start: prevStart[bestJ], End: bestJ, Distance: prev[bestJ]}, nil
}
