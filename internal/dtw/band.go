// Package dtw implements dynamic time warping: the full O(NM) dynamic
// program, warp-path recovery, and band-constrained variants where the
// feasible region of the DTW grid is restricted to arbitrary per-row column
// intervals. The classical Sakoe-Chiba band and Itakura parallelogram are
// provided as constructors of such bands; the sDTW locally relevant
// constraints (package band) produce bands consumed by the same engine.
package dtw

import (
	"fmt"
	"math"
)

// Band restricts the DTW grid: row i (aligned with x[i]) may only visit
// columns j (aligned with y[j]) with Lo[i] <= j <= Hi[i], both inclusive.
// len(Lo) == len(Hi) == N; columns range over [0, M).
//
// A Band is only meaningful for a specific (N, M) grid size. Use Normalize
// before handing a hand-built band to the DP: it guarantees the band
// contains a monotone warp path from (0,0) to (N-1,M-1) so the constrained
// DP always produces a finite distance.
type Band struct {
	Lo, Hi []int
	// M is the number of columns of the grid the band constrains.
	M int
}

// NewBand allocates an empty band for an n-by-m grid with all rows set to
// the degenerate interval [0,-1]; callers fill Lo/Hi and then Normalize.
func NewBand(n, m int) Band {
	b := Band{Lo: make([]int, n), Hi: make([]int, n), M: m}
	for i := range b.Lo {
		b.Lo[i] = 0
		b.Hi[i] = -1
	}
	return b
}

// FullBand returns the unconstrained band covering the entire n-by-m grid.
func FullBand(n, m int) Band {
	b := Band{Lo: make([]int, n), Hi: make([]int, n), M: m}
	for i := range b.Hi {
		b.Hi[i] = m - 1
	}
	return b
}

// N returns the number of rows the band constrains.
func (b Band) N() int { return len(b.Lo) }

// Contains reports whether grid cell (i,j) is inside the band.
func (b Band) Contains(i, j int) bool {
	return i >= 0 && i < len(b.Lo) && j >= b.Lo[i] && j <= b.Hi[i]
}

// Cells returns the number of grid cells inside the band, the work the
// constrained DP performs. Experiments report 1 - Cells/(N*M) as the
// machine-independent pruning gain.
func (b Band) Cells() int {
	total := 0
	for i := range b.Lo {
		if b.Hi[i] >= b.Lo[i] {
			total += b.Hi[i] - b.Lo[i] + 1
		}
	}
	return total
}

// Clone returns a deep copy of the band.
func (b Band) Clone() Band {
	lo := make([]int, len(b.Lo))
	hi := make([]int, len(b.Hi))
	copy(lo, b.Lo)
	copy(hi, b.Hi)
	return Band{Lo: lo, Hi: hi, M: b.M}
}

// Validate reports an error when the band's shape is inconsistent with an
// n-by-m grid or when some row interval is out of range. It does not check
// connectivity; Normalize establishes that.
func (b Band) Validate() error {
	if len(b.Lo) != len(b.Hi) {
		return fmt.Errorf("dtw: band Lo/Hi length mismatch: %d vs %d", len(b.Lo), len(b.Hi))
	}
	if len(b.Lo) == 0 {
		return fmt.Errorf("dtw: empty band")
	}
	if b.M <= 0 {
		return fmt.Errorf("dtw: band M=%d must be positive", b.M)
	}
	for i := range b.Lo {
		if b.Lo[i] < 0 || b.Hi[i] >= b.M || b.Lo[i] > b.Hi[i] {
			return fmt.Errorf("dtw: band row %d has invalid interval [%d,%d] for M=%d", i, b.Lo[i], b.Hi[i], b.M)
		}
	}
	return nil
}

// Normalize repairs the band in place so that the constrained DP is
// guaranteed to find a warp path:
//
//  1. every row interval is clamped to [0, M-1] and made non-empty;
//  2. row 0 contains column 0 and row N-1 contains column M-1;
//  3. gaps between consecutive rows are bridged (Lo[i] <= Hi[i-1]+1), the
//     paper's "fill in the missing grid positions" step (§3.3.2);
//  4. every row reaches the running maximum of the lower bounds
//     (Hi[i] >= max(Lo[0..i])), so the band never steps back down below a
//     column the path was already forced to climb past.
//
// Together (3) and (4) are sufficient for completeness: let J_i =
// max(J_{i-1}, Lo[i]) with J_0 = 0. By (4), J_i <= Hi[i]; by (3) the path
// can climb inside row i-1 up to Lo[i]-1 and step diagonally into row i;
// hence a monotone path from (0,0) through every (i, J_i) to (N-1,M-1)
// exists within the band. It returns the band for chaining.
func (b Band) Normalize() Band {
	n := len(b.Lo)
	if n == 0 || b.M <= 0 {
		return b
	}
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= b.M {
			return b.M - 1
		}
		return v
	}
	for i := 0; i < n; i++ {
		b.Lo[i] = clamp(b.Lo[i])
		b.Hi[i] = clamp(b.Hi[i])
		if b.Lo[i] > b.Hi[i] {
			b.Lo[i], b.Hi[i] = b.Hi[i], b.Lo[i]
		}
	}
	// Endpoints.
	b.Lo[0] = 0
	if b.Hi[0] < 0 {
		b.Hi[0] = 0
	}
	b.Hi[n-1] = b.M - 1
	if b.Lo[n-1] > b.Hi[n-1] {
		b.Lo[n-1] = b.Hi[n-1]
	}
	// Forward pass: bridge upward gaps so row i is enterable from row i-1.
	for i := 1; i < n; i++ {
		if b.Lo[i] > b.Hi[i-1]+1 {
			b.Lo[i] = b.Hi[i-1] + 1
			if b.Lo[i] > b.Hi[i] {
				b.Hi[i] = b.Lo[i]
			}
		}
	}
	// Reach pass: once the lower bounds have forced the path up to some
	// column, later rows must still contain that column, or the (only)
	// surviving cells would be unreachable.
	runMax := 0
	for i := 0; i < n; i++ {
		if b.Lo[i] > runMax {
			runMax = b.Lo[i]
		}
		if b.Hi[i] < runMax {
			b.Hi[i] = runMax
		}
	}
	return b
}

// Union widens the band in place to include every cell of other, which must
// constrain a grid of the same shape. Used to build the symmetric band of
// §3.3.3. It returns the band for chaining.
func (b Band) Union(other Band) Band {
	if len(b.Lo) != len(other.Lo) || b.M != other.M {
		panic(fmt.Sprintf("dtw: Union of incompatible bands: %dx%d vs %dx%d",
			len(b.Lo), b.M, len(other.Lo), other.M))
	}
	for i := range b.Lo {
		if other.Lo[i] < b.Lo[i] {
			b.Lo[i] = other.Lo[i]
		}
		if other.Hi[i] > b.Hi[i] {
			b.Hi[i] = other.Hi[i]
		}
	}
	return b
}

// Transpose returns the band of the transposed grid: cell (j,i) of the
// result is inside iff (i,j) is inside b. The result constrains an m-by-n
// grid. Needed to combine X-driven and Y-driven bands symmetrically.
func (b Band) Transpose() Band {
	n := len(b.Lo)
	m := b.M
	t := Band{Lo: make([]int, m), Hi: make([]int, m), M: n}
	for j := 0; j < m; j++ {
		t.Lo[j] = n // sentinel: empty
		t.Hi[j] = -1
	}
	for i := 0; i < n; i++ {
		for j := b.Lo[i]; j <= b.Hi[i]; j++ {
			if j < 0 || j >= m {
				continue
			}
			if i < t.Lo[j] {
				t.Lo[j] = i
			}
			if i > t.Hi[j] {
				t.Hi[j] = i
			}
		}
	}
	// Rows of the transpose never touched by b become degenerate; repair
	// them so the struct remains valid, then let Normalize bridge.
	for j := 0; j < m; j++ {
		if t.Hi[j] < t.Lo[j] {
			t.Lo[j], t.Hi[j] = 0, 0
		}
	}
	return t
}

// SakoeChiba returns the classical fixed-core, fixed-width band for an
// n-by-m grid. widthFrac is the fraction (0,1] of the second series each
// point of the first may be compared against, the paper's "w%": the window
// holds ceil(widthFrac*m) columns centred on the scaled diagonal. The
// result is normalized.
func SakoeChiba(n, m int, widthFrac float64) Band {
	if n <= 0 || m <= 0 {
		panic("dtw: SakoeChiba needs positive grid dimensions")
	}
	if widthFrac <= 0 {
		widthFrac = 1.0 / float64(m)
	}
	if widthFrac > 1 {
		widthFrac = 1
	}
	radius := int(math.Ceil(widthFrac * float64(m) / 2))
	if radius < 1 {
		radius = 1
	}
	b := Band{Lo: make([]int, n), Hi: make([]int, n), M: m}
	for i := 0; i < n; i++ {
		center := diagonalColumn(i, n, m)
		b.Lo[i] = center - radius
		b.Hi[i] = center + radius
	}
	return b.Normalize()
}

// SakoeChibaRadius returns the Sakoe-Chiba band for an n-by-m grid with
// an explicit window radius in samples: row i may visit the columns
// within radius of the scaled diagonal. For square grids this is exactly
// the set |i-j| <= radius, the window LB_Keogh envelopes at the same
// radius lower-bound — retrieval indexes must build their band through
// this constructor (not the widthFrac one, whose ceil rounding can widen
// the radius by one and void the bound's admissibility). radius <= 0
// degenerates to the diagonal; the result is normalized.
func SakoeChibaRadius(n, m, radius int) Band {
	if n <= 0 || m <= 0 {
		panic("dtw: SakoeChibaRadius needs positive grid dimensions")
	}
	if radius < 0 {
		radius = 0
	}
	b := Band{Lo: make([]int, n), Hi: make([]int, n), M: m}
	for i := 0; i < n; i++ {
		center := diagonalColumn(i, n, m)
		b.Lo[i] = center - radius
		b.Hi[i] = center + radius
	}
	return b.Normalize()
}

// Itakura returns the Itakura parallelogram band for an n-by-m grid with
// maximum local slope maxSlope (> 1, classically 2): the warp path is
// confined to the intersection of two cones with slopes maxSlope and
// 1/maxSlope anchored at the two corners. The result is normalized.
func Itakura(n, m int, maxSlope float64) Band {
	if n <= 0 || m <= 0 {
		panic("dtw: Itakura needs positive grid dimensions")
	}
	if maxSlope <= 1 {
		maxSlope = 2
	}
	b := Band{Lo: make([]int, n), Hi: make([]int, n), M: m}
	nf, mf := float64(n-1), float64(m-1)
	if nf == 0 {
		nf = 1
	}
	for i := 0; i < n; i++ {
		t := float64(i)
		// Lines from (0,0): slope maxSlope (upper) and 1/maxSlope (lower).
		upFromStart := t * maxSlope
		loFromStart := t / maxSlope
		// Lines into (n-1, m-1), mirrored cone.
		upIntoEnd := mf - (nf-t)/maxSlope
		loIntoEnd := mf - float64((nf-t)*maxSlope)
		lo := math.Max(loFromStart, loIntoEnd)
		hi := math.Min(upFromStart, upIntoEnd)
		b.Lo[i] = int(math.Floor(lo))
		b.Hi[i] = int(math.Ceil(hi))
	}
	return b.Normalize()
}

// diagonalColumn maps row i of an n-by-m grid to the column of the scaled
// diagonal, the fixed core of §3.3.1.
func diagonalColumn(i, n, m int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Round(float64(i) * float64(m-1) / float64(n-1)))
}

// DiagonalColumn exposes the scaled-diagonal mapping for band builders.
func DiagonalColumn(i, n, m int) int { return diagonalColumn(i, n, m) }
