package dtw

import (
	"math"
	"math/rand"
	"testing"

	"sdtw/internal/series"
)

// sqGeneric is the squared cost as a distinct function value: the same
// arithmetic as series.SquaredDistance but a different code pointer, so
// useSquaredKernel cannot recognise it and every call runs the generic
// per-cell indirect-call path. Differential tests compare the
// monomorphized kernels against it; bit-identity must hold because the
// two bodies perform identical operations.
func sqGeneric(a, b float64) float64 { d := a - b; return d * d }

func TestUseSquaredKernelDispatch(t *testing.T) {
	if !useSquaredKernel(nil) {
		t.Error("nil dist must select the squared kernel")
	}
	if !useSquaredKernel(series.SquaredDistance) {
		t.Error("series.SquaredDistance must select the squared kernel")
	}
	if useSquaredKernel(sqGeneric) {
		t.Error("a wrapper with the same body must NOT select the squared kernel")
	}
	if useSquaredKernel(series.AbsDistance) {
		t.Error("a custom cost must not select the squared kernel")
	}
	series.SetKernelDispatch(false)
	if useSquaredKernel(nil) {
		t.Error("series.SetKernelDispatch(false) must disable the squared kernel")
	}
	series.SetKernelDispatch(true)
	if !useSquaredKernel(nil) {
		t.Error("series.SetKernelDispatch(true) must re-enable the squared kernel")
	}
}

// kernelRandomSeries draws n values from a mix of scales so sums exercise many
// exponents (rounding differences would surface as bit mismatches).
func kernelRandomSeries(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	scale := math.Pow(10, float64(rng.Intn(5)-2))
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * scale
	}
	return v
}

// kernelRandomBand builds a random normalized band for an n-by-m grid: random
// per-row intervals (occasionally degenerate or disjoint before
// normalization) repaired by Normalize, exactly how band builders
// produce them.
func kernelRandomBand(rng *rand.Rand, n, m int) Band {
	b := Band{Lo: make([]int, n), Hi: make([]int, n), M: m}
	for i := 0; i < n; i++ {
		a := rng.Intn(m)
		c := rng.Intn(m)
		if a > c {
			a, c = c, a
		}
		if rng.Intn(4) == 0 {
			c = a // degenerate single-cell row
		}
		b.Lo[i], b.Hi[i] = a, c
	}
	return b.Normalize()
}

// randomBudget mixes the abandonment regimes: mostly +Inf (never
// abandons), sometimes a budget near the true distance, sometimes 0
// (abandons almost immediately).
func randomBudget(rng *rand.Rand, exact float64) float64 {
	switch rng.Intn(4) {
	case 0:
		return math.Inf(1)
	case 1:
		return 0
	default:
		return exact * (0.1 + 1.4*rng.Float64())
	}
}

// TestKernelDifferentialBandedAbandon is the tentpole's differential
// property test: on random series, random normalized bands and random
// thresholds, the monomorphized banded kernel must return bit-identical
// distance, cell count and abandoned flag to the generic path.
func TestKernelDifferentialBandedAbandon(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var wsSpec, wsGen Workspace
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(60)
		m := 1 + rng.Intn(60)
		x := kernelRandomSeries(rng, n)
		y := kernelRandomSeries(rng, m)
		b := kernelRandomBand(rng, n, m)

		exact, _, err := BandedWS(x, y, b, sqGeneric, &wsGen)
		if err != nil {
			t.Fatalf("trial %d: generic banded: %v", trial, err)
		}
		budget := randomBudget(rng, exact)

		gd, gc, ga, gerr := BandedAbandonWS(x, y, b, sqGeneric, budget, &wsGen)
		sd, sc, sa, serr := BandedAbandonWS(x, y, b, nil, budget, &wsSpec)
		if (gerr == nil) != (serr == nil) {
			t.Fatalf("trial %d: error mismatch: generic %v, specialized %v", trial, gerr, serr)
		}
		if gerr != nil {
			continue
		}
		if math.Float64bits(gd) != math.Float64bits(sd) {
			t.Fatalf("trial %d (n=%d m=%d budget=%v): distance bits differ: generic %v specialized %v",
				trial, n, m, budget, gd, sd)
		}
		if gc != sc || ga != sa {
			t.Fatalf("trial %d: cells/abandoned differ: generic (%d,%v) specialized (%d,%v)",
				trial, gc, ga, sc, sa)
		}
	}
}

// TestKernelDifferentialBandedPath pins the flat-backed, kernel-filled
// BandedWithPath against the generic fill: bit-identical distance, equal
// cell counts and step-for-step equal optimal paths.
func TestKernelDifferentialBandedPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		m := 1 + rng.Intn(40)
		x := kernelRandomSeries(rng, n)
		y := kernelRandomSeries(rng, m)
		b := kernelRandomBand(rng, n, m)

		g, gerr := BandedWithPath(x, y, b, sqGeneric)
		s, serr := BandedWithPath(x, y, b, nil)
		if (gerr == nil) != (serr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, gerr, serr)
		}
		if gerr != nil {
			continue
		}
		if math.Float64bits(g.Distance) != math.Float64bits(s.Distance) {
			t.Fatalf("trial %d: distance bits differ: %v vs %v", trial, g.Distance, s.Distance)
		}
		if g.Cells != s.Cells {
			t.Fatalf("trial %d: cells differ: %d vs %d", trial, g.Cells, s.Cells)
		}
		if len(g.Path) != len(s.Path) {
			t.Fatalf("trial %d: path lengths differ: %d vs %d", trial, len(g.Path), len(s.Path))
		}
		for k := range g.Path {
			if g.Path[k] != s.Path[k] {
				t.Fatalf("trial %d: path step %d differs: %v vs %v", trial, k, g.Path[k], s.Path[k])
			}
		}
	}
}

// TestKernelDifferentialFullDistance pins the monomorphized full-grid
// Distance loop against the generic one.
func TestKernelDifferentialFullDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		x := kernelRandomSeries(rng, 1+rng.Intn(80))
		y := kernelRandomSeries(rng, 1+rng.Intn(80))
		g, err := Distance(x, y, sqGeneric)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Distance(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(g) != math.Float64bits(s) {
			t.Fatalf("trial %d: distance bits differ: %v vs %v", trial, g, s)
		}
	}
}

// TestKernelDifferentialSubsequence pins the monomorphized subsequence DP
// — values, start pointer and end — against the generic loop.
func TestKernelDifferentialSubsequence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var ws Workspace
	for trial := 0; trial < 150; trial++ {
		q := kernelRandomSeries(rng, 1+rng.Intn(30))
		s := kernelRandomSeries(rng, 1+rng.Intn(120))
		g, err := SubsequenceWS(q, s, sqGeneric, &ws)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := SubsequenceWS(q, s, nil, &ws)
		if err != nil {
			t.Fatal(err)
		}
		if g.Start != sp.Start || g.End != sp.End ||
			math.Float64bits(g.Distance) != math.Float64bits(sp.Distance) {
			t.Fatalf("trial %d: matches differ: generic %+v specialized %+v", trial, g, sp)
		}
	}
}

// TestKernelDifferentialSpring runs two springs — generic cost wrapper vs
// default cost — over the same random stream with random thresholds and
// gaps, comparing every emission, the running best and the final flush.
func TestKernelDifferentialSpring(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		q := kernelRandomSeries(rng, 1+rng.Intn(20))
		stream := kernelRandomSeries(rng, 50+rng.Intn(400))
		threshold := math.Inf(1)
		if rng.Intn(2) == 0 {
			threshold = float64(len(q)) * 0.2 * rng.Float64()
		}
		minGap := rng.Intn(3)

		gen, err := NewSpring(q, SpringConfig{Dist: sqGeneric, Threshold: threshold, MinGap: minGap})
		if err != nil {
			t.Fatal(err)
		}
		spec, err := NewSpring(q, SpringConfig{Threshold: threshold, MinGap: minGap})
		if err != nil {
			t.Fatal(err)
		}
		if spec.squared != true || gen.squared != false {
			t.Fatalf("trial %d: dispatch flags wrong: generic %v specialized %v", trial, gen.squared, spec.squared)
		}
		for ti, v := range stream {
			gm, gok := gen.Append(v)
			sm, sok := spec.Append(v)
			if gok != sok || gm != sm {
				t.Fatalf("trial %d point %d: emissions differ: generic (%+v,%v) specialized (%+v,%v)",
					trial, ti, gm, gok, sm, sok)
			}
		}
		gb, gok := gen.Best()
		sb, sok := spec.Best()
		if gok != sok || gb.Start != sb.Start || gb.End != sb.End ||
			math.Float64bits(gb.Distance) != math.Float64bits(sb.Distance) {
			t.Fatalf("trial %d: best differs: generic (%+v,%v) specialized (%+v,%v)", trial, gb, gok, sb, sok)
		}
		gf, gok := gen.Flush()
		sf, sok := spec.Flush()
		if gok != sok || gf != sf {
			t.Fatalf("trial %d: flush differs: generic (%+v,%v) specialized (%+v,%v)", trial, gf, gok, sf, sok)
		}
	}
}

// TestKernelDispatchToggleEquivalence drives the public entry points with
// dispatch disabled and re-enabled, pinning that the toggle changes
// nothing observable — the guarantee the sdtwbench kernel experiment's
// A/B measurement rests on.
func TestKernelDispatchToggleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := kernelRandomSeries(rng, 50)
	y := kernelRandomSeries(rng, 60)
	b := kernelRandomBand(rng, 50, 60)

	on, cellsOn, err := Banded(x, y, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	series.SetKernelDispatch(false)
	off, cellsOff, err := Banded(x, y, b, nil)
	series.SetKernelDispatch(true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(on) != math.Float64bits(off) || cellsOn != cellsOff {
		t.Fatalf("toggle changed results: on (%v,%d) off (%v,%d)", on, cellsOn, off, cellsOff)
	}
}

// TestBandedWithPathAllocs pins the flat-backing satellite: allocations
// must not grow with the row count (the per-row make slices used to cost
// n allocations).
func TestBandedWithPathAllocs(t *testing.T) {
	measure := func(n, m int) float64 {
		rng := rand.New(rand.NewSource(int64(n)))
		x := kernelRandomSeries(rng, n)
		y := kernelRandomSeries(rng, m)
		b := SakoeChiba(n, m, 0.2)
		return testing.AllocsPerRun(20, func() {
			if _, err := BandedWithPath(x, y, b, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(40, 40)
	large := measure(400, 400)
	if small != large {
		t.Errorf("BandedWithPath allocations grow with size: %v at n=40, %v at n=400", small, large)
	}
	// Flat DP backing, row offsets, path, and at most a couple of
	// incidental headers — anything near the row count means the flat
	// backing regressed.
	if large > 6 {
		t.Errorf("BandedWithPath allocates %v times per call, want <= 6", large)
	}
}

func BenchmarkBandedKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	x := kernelRandomSeries(rng, 275)
	y := kernelRandomSeries(rng, 275)
	bd := SakoeChiba(275, 275, 0.10)
	var ws Workspace
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := BandedWS(x, y, bd, sqGeneric, &ws); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("specialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := BandedWS(x, y, bd, nil, &ws); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSpringAppendKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	q := kernelRandomSeries(rng, 150)
	stream := kernelRandomSeries(rng, 4096)
	for _, mode := range []string{"generic", "specialized"} {
		b.Run(mode, func(b *testing.B) {
			cfg := SpringConfig{}
			if mode == "generic" {
				cfg.Dist = sqGeneric
			}
			sp, err := NewSpring(q, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sp.Append(stream[i%len(stream)])
			}
		})
	}
}
