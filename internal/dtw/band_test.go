package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullBandCoversGrid(t *testing.T) {
	b := FullBand(4, 6)
	if b.Cells() != 24 {
		t.Fatalf("full band cells = %d, want 24", b.Cells())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			if !b.Contains(i, j) {
				t.Fatalf("full band missing (%d,%d)", i, j)
			}
		}
	}
	if b.Contains(-1, 0) || b.Contains(4, 0) || b.Contains(0, -1) || b.Contains(0, 6) {
		t.Fatal("Contains accepts out-of-grid cells")
	}
}

func TestNewBandStartsEmpty(t *testing.T) {
	b := NewBand(3, 5)
	if b.Cells() != 0 {
		t.Fatalf("new band cells = %d, want 0", b.Cells())
	}
}

func TestBandClone(t *testing.T) {
	b := FullBand(3, 3)
	c := b.Clone()
	c.Lo[0] = 2
	c.Hi[0] = 2
	if b.Lo[0] != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		b    Band
	}{
		{"mismatched lengths", Band{Lo: []int{0}, Hi: []int{0, 1}, M: 2}},
		{"empty", Band{M: 2}},
		{"non-positive M", Band{Lo: []int{0}, Hi: []int{0}, M: 0}},
		{"negative lo", Band{Lo: []int{-1}, Hi: []int{0}, M: 2}},
		{"hi out of range", Band{Lo: []int{0}, Hi: []int{2}, M: 2}},
		{"inverted interval", Band{Lo: []int{1}, Hi: []int{0}, M: 2}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.b.Validate(); err == nil {
				t.Fatal("invalid band accepted")
			}
		})
	}
}

func TestNormalizeEstablishesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		n, m := 1+rng.Intn(30), 1+rng.Intn(30)
		b := Band{Lo: make([]int, n), Hi: make([]int, n), M: m}
		for i := 0; i < n; i++ {
			// Deliberately invalid raw values, including out-of-range.
			b.Lo[i] = rng.Intn(3*m) - m
			b.Hi[i] = rng.Intn(3*m) - m
		}
		b.Normalize()
		if err := b.Validate(); err != nil {
			t.Fatalf("normalize left invalid band: %v", err)
		}
		if !b.Contains(0, 0) {
			t.Fatal("normalized band misses origin")
		}
		if !b.Contains(n-1, m-1) {
			t.Fatal("normalized band misses terminal cell")
		}
		for i := 1; i < n; i++ {
			if b.Lo[i] > b.Hi[i-1]+1 {
				t.Fatalf("gap between rows %d and %d: lo=%d prevHi=%d", i-1, i, b.Lo[i], b.Hi[i-1])
			}
			if b.Hi[i-1] < b.Lo[i]-1 {
				t.Fatalf("downward gap between rows %d and %d", i-1, i)
			}
		}
	}
}

func TestNormalizedBandAlwaysAdmitsPath(t *testing.T) {
	// The load-bearing guarantee: any normalized band yields a finite
	// constrained DTW distance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(25), 1+rng.Intn(25)
		x := randomSeries(rng, n)
		y := randomSeries(rng, m)
		b := Band{Lo: make([]int, n), Hi: make([]int, n), M: m}
		for i := 0; i < n; i++ {
			b.Lo[i] = rng.Intn(2*m) - m/2
			b.Hi[i] = rng.Intn(2*m) - m/2
		}
		b.Normalize()
		d, _, err := Banded(x, y, b, nil)
		return err == nil && !math.IsInf(d, 1) && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionWidensInPlace(t *testing.T) {
	a := SakoeChiba(10, 10, 0.1)
	c := a.Clone()
	wide := SakoeChiba(10, 10, 0.5)
	c.Union(wide)
	for i := range c.Lo {
		if c.Lo[i] > a.Lo[i] || c.Hi[i] < a.Hi[i] {
			t.Fatal("union shrank the receiver")
		}
		if c.Lo[i] > wide.Lo[i] || c.Hi[i] < wide.Hi[i] {
			t.Fatal("union misses cells of the argument")
		}
	}
}

func TestUnionIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("incompatible union did not panic")
		}
	}()
	a := FullBand(3, 3)
	a.Union(FullBand(4, 3))
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n, m := 2+rng.Intn(15), 2+rng.Intn(15)
		b := randomBand(rng, n, m).Normalize()
		tr := b.Transpose()
		if tr.N() != m || tr.M != n {
			t.Fatalf("transpose shape (%d,%d), want (%d,%d)", tr.N(), tr.M, m, n)
		}
		// Every cell of b appears transposed.
		for i := 0; i < n; i++ {
			for j := b.Lo[i]; j <= b.Hi[i]; j++ {
				if !tr.Contains(j, i) {
					t.Fatalf("transpose misses (%d,%d)", j, i)
				}
			}
		}
	}
}

func TestSakoeChibaShape(t *testing.T) {
	b := SakoeChiba(100, 100, 0.10)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Radius = ceil(0.10*100/2) = 5; interior rows span ~11 columns.
	mid := 50
	width := b.Hi[mid] - b.Lo[mid] + 1
	if width < 11 || width > 13 {
		t.Fatalf("mid-row width = %d, want ~11", width)
	}
	// The diagonal is inside everywhere.
	for i := 0; i < 100; i++ {
		if !b.Contains(i, i) {
			t.Fatalf("diagonal escapes Sakoe-Chiba band at %d", i)
		}
	}
}

func TestSakoeChibaRectangularGrid(t *testing.T) {
	b := SakoeChiba(50, 200, 0.10)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// The scaled diagonal stays inside.
	for i := 0; i < 50; i++ {
		j := DiagonalColumn(i, 50, 200)
		if !b.Contains(i, j) {
			t.Fatalf("scaled diagonal escapes band at row %d (j=%d, [%d,%d])", i, j, b.Lo[i], b.Hi[i])
		}
	}
}

func TestSakoeChibaWidthMonotone(t *testing.T) {
	narrow := SakoeChiba(80, 80, 0.05)
	wide := SakoeChiba(80, 80, 0.25)
	if narrow.Cells() >= wide.Cells() {
		t.Fatalf("narrow band (%d cells) not smaller than wide (%d)", narrow.Cells(), wide.Cells())
	}
}

func TestSakoeChibaFullWidthSpansInteriorRows(t *testing.T) {
	// At widthFrac=1 the radius is m/2, so every interior row spans at
	// least half the columns and the centre row spans all of them. The
	// corners stay clipped because the window is centred on the diagonal.
	b := SakoeChiba(20, 20, 1.0)
	mid := 10
	if b.Lo[mid] != 0 || b.Hi[mid] != 19 {
		t.Fatalf("centre row spans [%d,%d], want [0,19]", b.Lo[mid], b.Hi[mid])
	}
	for i := 0; i < 20; i++ {
		if w := b.Hi[i] - b.Lo[i] + 1; w < 10 {
			t.Fatalf("row %d spans %d columns, want >= 10", i, w)
		}
	}
}

func TestSakoeChibaDegenerateInputs(t *testing.T) {
	b := SakoeChiba(1, 1, 0.1)
	if !b.Contains(0, 0) {
		t.Fatal("1x1 band misses origin")
	}
	b = SakoeChiba(5, 5, 0) // zero width defaults to minimal
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive grid not rejected")
		}
	}()
	SakoeChiba(0, 5, 0.1)
}

func TestItakuraShape(t *testing.T) {
	b := Itakura(100, 100, 2)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if !b.Contains(0, 0) || !b.Contains(99, 99) {
		t.Fatal("Itakura misses corners")
	}
	// Mid rows are widest; the first and last rows are narrow.
	widthAt := func(i int) int { return b.Hi[i] - b.Lo[i] + 1 }
	if widthAt(50) <= widthAt(2) {
		t.Fatalf("parallelogram not widest at centre: %d vs %d", widthAt(50), widthAt(2))
	}
	// Slope constraint from the origin: j <= 2i (+rounding).
	for i := 1; i < 100; i++ {
		if b.Hi[i] > 2*i+2 {
			t.Fatalf("row %d violates slope bound: hi=%d", i, b.Hi[i])
		}
	}
}

func TestItakuraDefaultSlope(t *testing.T) {
	b := Itakura(50, 50, 0) // <=1 defaults to 2
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	d, _, err := Banded(randomSeries(rand.New(rand.NewSource(12)), 50),
		randomSeries(rand.New(rand.NewSource(13)), 50), b, nil)
	if err != nil || math.IsInf(d, 1) {
		t.Fatalf("Itakura band unusable: %v %v", d, err)
	}
}

func TestDiagonalColumnEndpoints(t *testing.T) {
	if DiagonalColumn(0, 10, 20) != 0 {
		t.Fatal("diagonal start not at column 0")
	}
	if DiagonalColumn(9, 10, 20) != 19 {
		t.Fatal("diagonal end not at last column")
	}
	if DiagonalColumn(0, 1, 5) != 0 {
		t.Fatal("single-row grid should map to 0")
	}
}

func TestCellsCountsIntervals(t *testing.T) {
	b := Band{Lo: []int{0, 1, 2}, Hi: []int{1, 1, 4}, M: 5}
	if got := b.Cells(); got != 2+1+3 {
		t.Fatalf("Cells = %d, want 6", got)
	}
}
