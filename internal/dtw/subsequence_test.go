package dtw

import (
	"math"
	"math/rand"
	"testing"

	"sdtw/internal/series"
)

func TestSubsequenceExactPlant(t *testing.T) {
	// Plant the query verbatim inside a distinctive stream: the match
	// must align exactly with zero distance.
	q := []float64{0, 1, 2, 1, 0}
	s := []float64{5, 5, 5, 0, 1, 2, 1, 0, 5, 5}
	m, err := Subsequence(q, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distance > 1e-12 {
		t.Fatalf("planted query distance = %v", m.Distance)
	}
	if m.Start != 3 || m.End != 7 {
		t.Fatalf("match at [%d,%d], want [3,7]", m.Start, m.End)
	}
}

func TestSubsequenceWarpedPlant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Query: a distinctive double bump.
	q := make([]float64, 60)
	for i := range q {
		x := float64(i)
		q[i] = series.GaussianBump(x, 18, 5, 1) + series.GaussianBump(x, 42, 5, -0.8)
	}
	// Stream: noise, then a time-warped copy of q, then noise.
	warped := series.ApplyWarp(q, series.RandomWarp(rng, 3, 0.3), 75)
	var s []float64
	for i := 0; i < 100; i++ {
		s = append(s, 0.05*rng.NormFloat64())
	}
	plantStart := len(s)
	s = append(s, warped...)
	plantEnd := len(s) - 1
	for i := 0; i < 100; i++ {
		s = append(s, 0.05*rng.NormFloat64())
	}
	m, err := Subsequence(q, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The located region must overlap the plant substantially.
	overlapLo := max(m.Start, plantStart)
	overlapHi := plantEnd
	if m.End < overlapHi {
		overlapHi = m.End
	}
	overlap := overlapHi - overlapLo + 1
	if overlap < 50 {
		t.Fatalf("match [%d,%d] misses plant [%d,%d]", m.Start, m.End, plantStart, plantEnd)
	}
	if m.Distance > 0.5 {
		t.Fatalf("warped plant distance = %v", m.Distance)
	}
}

func TestSubsequenceWholeSeries(t *testing.T) {
	// When s == q, the best subsequence is essentially the whole series
	// and the distance matches full DTW (0).
	q := []float64{1, 3, 2, 4}
	m, err := Subsequence(q, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distance != 0 {
		t.Fatalf("self match distance = %v", m.Distance)
	}
	if m.Start != 0 || m.End != len(q)-1 {
		t.Fatalf("self match region [%d,%d]", m.Start, m.End)
	}
}

func TestSubsequenceBoundsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		q := randomSeries(rng, 2+rng.Intn(20))
		s := randomSeries(rng, 2+rng.Intn(120))
		m, err := Subsequence(q, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.Start < 0 || m.End >= len(s) || m.Start > m.End {
			t.Fatalf("invalid region [%d,%d] for |s|=%d", m.Start, m.End, len(s))
		}
		if math.IsNaN(m.Distance) || math.IsInf(m.Distance, 0) || m.Distance < 0 {
			t.Fatalf("invalid distance %v", m.Distance)
		}
		// The open alignment can never cost more than aligning against
		// the full series (which is one admissible subsequence).
		full, err := Distance(q, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.Distance > full+1e-9 {
			t.Fatalf("subsequence %v worse than whole-series DTW %v", m.Distance, full)
		}
	}
}

func TestSubsequenceAgainstBruteForce(t *testing.T) {
	// The optimal subsequence distance equals the minimum of DTW(q,
	// s[a..b]) over all regions — check on small inputs.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		q := randomSeries(rng, 2+rng.Intn(5))
		s := randomSeries(rng, 3+rng.Intn(8))
		m, err := Subsequence(q, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for a := 0; a < len(s); a++ {
			for b := a; b < len(s); b++ {
				d, err := Distance(q, s[a:b+1], nil)
				if err != nil {
					t.Fatal(err)
				}
				if d < best {
					best = d
				}
			}
		}
		if math.Abs(m.Distance-best) > 1e-9 {
			t.Fatalf("trial %d: subsequence %v != brute force %v", trial, m.Distance, best)
		}
	}
}

func TestSubsequenceEmptyInput(t *testing.T) {
	if _, err := Subsequence(nil, []float64{1}, nil); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := Subsequence([]float64{1}, nil, nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}
