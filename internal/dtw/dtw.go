package dtw

import (
	"context"
	"fmt"
	"math"

	"sdtw/internal/series"
)

// Step is one move of a warp path on the DTW grid, expressed as the
// coordinates (I, J) of the visited cell (0-based: cell (i,j) aligns x[i]
// with y[j]).
type Step struct {
	I, J int
}

// Path is a warp path: a sequence of grid cells from (0,0) to (N-1,M-1)
// advancing by (1,0), (0,1) or (1,1) at each step.
type Path []Step

// Validate reports an error if the path violates the warp-path definition
// of §2.1.1 for an n-by-m grid: boundary conditions, monotonicity, and
// unit-step continuity.
func (p Path) Validate(n, m int) error {
	if len(p) == 0 {
		return fmt.Errorf("dtw: empty path")
	}
	if p[0].I != 0 || p[0].J != 0 {
		return fmt.Errorf("dtw: path starts at (%d,%d), want (0,0)", p[0].I, p[0].J)
	}
	last := p[len(p)-1]
	if last.I != n-1 || last.J != m-1 {
		return fmt.Errorf("dtw: path ends at (%d,%d), want (%d,%d)", last.I, last.J, n-1, m-1)
	}
	// A monotone unit-step path from (0,0) to (n-1,m-1) takes at most
	// (n-1)+(m-1) steps after the origin cell, so n+m-1 cells total.
	if len(p) < max(n, m) || len(p) > n+m-1 {
		return fmt.Errorf("dtw: path length %d outside [max(N,M)=%d, N+M-1=%d]", len(p), max(n, m), n+m-1)
	}
	for k := 1; k < len(p); k++ {
		di := p[k].I - p[k-1].I
		dj := p[k].J - p[k-1].J
		if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
			return fmt.Errorf("dtw: illegal step (%d,%d)->(%d,%d) at position %d",
				p[k-1].I, p[k-1].J, p[k].I, p[k].J, k)
		}
	}
	return nil
}

// Cost accumulates the path's total alignment cost over x and y using dist.
func (p Path) Cost(x, y []float64, dist series.PointDistance) float64 {
	if dist == nil {
		dist = series.SquaredDistance
	}
	total := 0.0
	for _, s := range p {
		total += dist(x[s.I], y[s.J])
	}
	return total
}

// Distance computes the exact DTW distance between x and y with the full
// O(NM) grid using two rolling rows (O(M) memory). dist nil defaults to
// squared point distance, dispatching to the monomorphized kernel (see
// kernel.go).
func Distance(x, y []float64, dist series.PointDistance) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, fmt.Errorf("dtw: empty input (len(x)=%d len(y)=%d): %w", len(x), len(y), series.ErrEmptySeries)
	}
	if useSquaredKernel(dist) {
		return distanceSquared(x, y), nil
	}
	if dist == nil {
		dist = series.SquaredDistance
	}
	m := len(y)
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= len(x); i++ {
		curr[0] = math.Inf(1)
		xi := x[i-1]
		for j := 1; j <= m; j++ {
			best := prev[j-1] // diagonal
			if prev[j] < best {
				best = prev[j] // vertical (advance x only)
			}
			if curr[j-1] < best {
				best = curr[j-1] // horizontal (advance y only)
			}
			curr[j] = best + dist(xi, y[j-1])
		}
		prev, curr = curr, prev
	}
	return prev[m], nil
}

// PathResult bundles a DTW distance with the optimal warp path that
// realises it and the number of grid cells evaluated.
type PathResult struct {
	Distance float64
	Path     Path
	Cells    int
}

// DistanceWithPath computes the exact DTW distance and recovers the optimal
// warp path by backtracking over the full grid (O(NM) memory).
func DistanceWithPath(x, y []float64, dist series.PointDistance) (PathResult, error) {
	if len(x) == 0 || len(y) == 0 {
		return PathResult{}, fmt.Errorf("dtw: empty input (len(x)=%d len(y)=%d): %w", len(x), len(y), series.ErrEmptySeries)
	}
	return BandedWithPath(x, y, FullBand(len(x), len(y)), dist)
}

// Workspace holds reusable row buffers for repeated banded and
// subsequence computations, letting hot loops avoid per-call allocation.
// The zero value is ready to use; a Workspace must not be shared between
// concurrent computations.
type Workspace struct {
	prev, curr           []float64
	prevStart, currStart []int
}

func (w *Workspace) rows(width int) (prev, curr []float64) {
	if cap(w.prev) < width {
		w.prev = make([]float64, width)
		w.curr = make([]float64, width)
	}
	return w.prev[:width], w.curr[:width]
}

// startRows returns the start-pointer companions to rows, used by the
// subsequence DP to recover where each path entered row 0.
func (w *Workspace) startRows(width int) (prev, curr []int) {
	if cap(w.prevStart) < width {
		w.prevStart = make([]int, width)
		w.currStart = make([]int, width)
	}
	return w.prevStart[:width], w.currStart[:width]
}

// Banded computes the DTW distance constrained to band using rolling rows.
// Cells outside the band are treated as +Inf. The band must be normalized
// (or otherwise known to contain a monotone path); Banded returns an error
// if the constrained grid admits no path, which cannot happen for
// normalized bands.
func Banded(x, y []float64, b Band, dist series.PointDistance) (float64, int, error) {
	return BandedWS(x, y, b, dist, nil)
}

// BandedWS is Banded with an optional caller-provided workspace for
// allocation-free repeated computation.
func BandedWS(x, y []float64, b Band, dist series.PointDistance, ws *Workspace) (float64, int, error) {
	d, cells, _, err := BandedAbandonWS(x, y, b, dist, math.Inf(1), ws)
	return d, cells, err
}

// BandedAbandonWS is BandedWS with early abandonment against a pruning
// budget: after each row it checks the running row minimum, and the
// moment every cell of the current row already exceeds budget it stops
// filling the grid and returns abandoned=true. Every warp path must pass
// through some in-band cell of every row and point costs are
// non-negative, so the returned partial cost (the abandoned row's
// minimum) is itself a valid lower bound on the banded distance. The
// budget is exclusive: abandonment requires the row minimum to be
// strictly greater than budget, so a candidate whose true distance ties
// the budget is always evaluated fully. A budget of +Inf (or NaN) never
// abandons and makes the call identical to BandedWS, including its
// distance and cell count bit for bit.
//
// Admissibility of the partial cost requires a non-negative point
// distance (the default squared cost is); callers with signed custom
// costs must pass budget = +Inf.
func BandedAbandonWS(x, y []float64, b Band, dist series.PointDistance, budget float64, ws *Workspace) (float64, int, bool, error) {
	return BandedAbandonCtx(nil, x, y, b, dist, budget, ws)
}

// cancelCheckRows is how often (in grid rows) BandedAbandonCtx polls the
// context. A row is O(band width) work, so a handful of rows bounds the
// cancellation latency to microseconds while keeping the poll off the
// inner loop.
const cancelCheckRows = 8

// BandedAbandonCtx is BandedAbandonWS threaded with a context: every few
// rows the dynamic program polls ctx and, once the context is cancelled,
// stops mid-band and returns ctx.Err() (so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) hold). A nil ctx disables
// the polling and behaves exactly like BandedAbandonWS.
func BandedAbandonCtx(ctx context.Context, x, y []float64, b Band, dist series.PointDistance, budget float64, ws *Workspace) (float64, int, bool, error) {
	if err := checkInputs(x, y, b); err != nil {
		return 0, 0, false, err
	}
	if useSquaredKernel(dist) {
		return bandedAbandonSquared(ctx, x, y, b, budget, ws)
	}
	if dist == nil {
		dist = series.SquaredDistance
	}
	n, m := len(x), len(y)
	inf := math.Inf(1)
	// Band-compact rolling rows: row buffers hold only the band interval,
	// so the DP costs O(band cells), not O(NM). Reads into the previous
	// row are bounds-checked against its interval instead of padding the
	// arrays with infinities.
	maxWidth := 0
	for i := 0; i < n; i++ {
		if w := b.Hi[i] - b.Lo[i] + 1; w > maxWidth {
			maxWidth = w
		}
	}
	if ws == nil {
		ws = &Workspace{}
	}
	prev, curr := ws.rows(maxWidth)
	prevLo, prevHi := 0, -1 // previous row's interval; empty before row 0
	cells := 0
	for i := 0; i < n; i++ {
		if ctx != nil && i%cancelCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return 0, cells, false, err
			}
		}
		lo, hi := b.Lo[i], b.Hi[i]
		xi := x[i]
		rowMin := inf
		for j := lo; j <= hi; j++ {
			var best float64
			if i == 0 && j == 0 {
				best = 0
			} else {
				best = inf
				if j-1 >= prevLo && j-1 <= prevHi { // diagonal (i-1, j-1)
					best = prev[j-1-prevLo]
				}
				if j >= prevLo && j <= prevHi { // vertical (i-1, j)
					if v := prev[j-prevLo]; v < best {
						best = v
					}
				}
				if j-1 >= lo { // horizontal (i, j-1)
					if v := curr[j-1-lo]; v < best {
						best = v
					}
				}
			}
			v := best + dist(xi, y[j])
			curr[j-lo] = v
			if v < rowMin {
				rowMin = v
			}
			cells++
		}
		prev, curr = curr, prev
		prevLo, prevHi = lo, hi
		// Abandoning on the final row would save nothing, and skipping the
		// check there keeps the non-abandoned result identical to BandedWS.
		if i < n-1 && rowMin > budget {
			return rowMin, cells, true, nil
		}
	}
	if m-1 < prevLo || m-1 > prevHi {
		return 0, cells, false, errNoWarpPath()
	}
	d := prev[m-1-prevLo]
	if math.IsInf(d, 1) {
		return 0, cells, false, errNoWarpPath()
	}
	return d, cells, false, nil
}

// errNoWarpPath is the shared constrained-grid infeasibility error of the
// generic and monomorphized dynamic programs.
func errNoWarpPath() error {
	return fmt.Errorf("dtw: band admits no warp path (band not normalized?)")
}

// BandedWithPath computes the band-constrained DTW distance and recovers
// the optimal warp path within the band. Memory is proportional to the
// band's cell count, not N*M: all rows live in one flat backing array
// (one allocation, not one per row — pinned by a regression test).
func BandedWithPath(x, y []float64, b Band, dist series.PointDistance) (PathResult, error) {
	if err := checkInputs(x, y, b); err != nil {
		return PathResult{}, err
	}
	n, m := len(x), len(y)
	inf := math.Inf(1)
	// Band-compact storage: row i occupies flat[off[i]:off[i+1]], holding
	// cells Lo[i]..Hi[i].
	off := make([]int, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + b.Hi[i] - b.Lo[i] + 1
	}
	flat := make([]float64, off[n])
	cells := off[n]
	at := func(i, j int) float64 {
		if i < 0 || j < 0 || i >= n {
			if i == -1 && j == -1 {
				return 0 // virtual origin D(0,0) of the padded matrix
			}
			return inf
		}
		if j < b.Lo[i] || j > b.Hi[i] {
			return inf
		}
		return flat[off[i]+j-b.Lo[i]]
	}
	if useSquaredKernel(dist) {
		for i := 0; i < n; i++ {
			row := flat[off[i]:off[i+1]]
			if i == 0 {
				fillRow0SquaredNoMin(x[0], y, b.Lo[0], b.Hi[0], row)
			} else {
				fillRowSquaredNoMin(x[i], y, b.Lo[i], b.Hi[i], flat[off[i-1]:off[i]], b.Lo[i-1], b.Hi[i-1], row)
			}
		}
	} else {
		if dist == nil {
			dist = series.SquaredDistance
		}
		for i := 0; i < n; i++ {
			lo, hi := b.Lo[i], b.Hi[i]
			xi := x[i]
			for j := lo; j <= hi; j++ {
				var best float64
				if i == 0 && j == 0 {
					best = 0
				} else {
					best = at(i-1, j-1)
					if v := at(i-1, j); v < best {
						best = v
					}
					if v := at(i, j-1); v < best {
						best = v
					}
				}
				flat[off[i]+j-lo] = best + dist(xi, y[j])
			}
		}
	}
	d := at(n-1, m-1)
	if math.IsInf(d, 1) {
		return PathResult{Cells: cells}, errNoWarpPath()
	}
	// Backtrack: at each cell pick the predecessor with the minimal
	// accumulated cost, preferring the diagonal on ties (shortest path).
	path := make(Path, 0, n+m)
	i, j := n-1, m-1
	for {
		path = append(path, Step{i, j})
		if i == 0 && j == 0 {
			break
		}
		diag, vert, horz := at(i-1, j-1), at(i-1, j), at(i, j-1)
		switch {
		case diag <= vert && diag <= horz:
			i, j = i-1, j-1
		case vert <= horz:
			i--
		default:
			j--
		}
	}
	// Reverse in place.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return PathResult{Distance: d, Path: path, Cells: cells}, nil
}

func checkInputs(x, y []float64, b Band) error {
	if len(x) == 0 || len(y) == 0 {
		return fmt.Errorf("dtw: empty input (len(x)=%d len(y)=%d): %w", len(x), len(y), series.ErrEmptySeries)
	}
	if len(b.Lo) != len(x) {
		return fmt.Errorf("dtw: band has %d rows, series has %d points: %w", len(b.Lo), len(x), series.ErrLengthMismatch)
	}
	if b.M != len(y) {
		return fmt.Errorf("dtw: band constrains %d columns, series has %d points: %w", b.M, len(y), series.ErrLengthMismatch)
	}
	return b.Validate()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
