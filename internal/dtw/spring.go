package dtw

import (
	"fmt"
	"math"

	"sdtw/internal/series"
)

// Spring is the incremental, streaming formulation of the open-begin /
// open-end subsequence DTW that Subsequence computes offline — the SPRING
// algorithm of Sakurai, Faloutsos and Yamamuro (ICDE 2007), adapted to
// this package's conventions. It holds O(|q|) state per query (one DP
// column plus its star-padding start pointers), consumes one stream point
// per Append in O(|q|) time, and never looks at past stream values again:
// the stream may be unbounded.
//
// Two reporting modes coexist:
//
//   - the running global best (Best), which — as long as no thresholded
//     match has been emitted — after t points is bit-identical to
//     Subsequence(q, stream[:t]): same Start, End and Distance, same
//     tie-breaking, because both run the very same recurrence with the
//     same comparison order;
//   - thresholded emission (Append's return), the SPRING semantics: once a
//     region's distance drops to Threshold or below, the match is reported
//     as soon as no still-open warp path could improve or overlap it, and
//     overlapping state is invalidated so reported matches never overlap.
//     MinGap additionally keeps the next match's start at least MinGap+1
//     points past the previous match's end.
//
// A Spring is not safe for concurrent use.
type Spring struct {
	q         []float64
	dist      series.PointDistance
	threshold float64
	minGap    int
	// squared marks the default cost, routing Append through the
	// monomorphized per-point update (see kernel.go); captured once at
	// construction so the per-point hot path pays no dispatch check.
	squared bool
	// filter arms the time-domain prefilter for AppendFiltered: only set
	// for the squared cost with a finite threshold and a NaN-free query
	// (see SpringConfig.Prefilter). qmin/qmax are the query's value range
	// — its radius-∞ envelope — so the cheapest possible alignment cost
	// of an out-of-range stream point v is (v-qmax)² or (qmin-v)².
	filter     bool
	qmin, qmax float64
	// dormant marks the DP column as logically +Inf after a dead point:
	// every cell is provably above the threshold, so the stored values
	// are stale and must be re-initialised before the next real advance.
	dormant bool

	// d[i] is the cost of the cheapest warp path consuming q[0..i] and
	// ending at the newest stream point; s[i] is the stream position where
	// that path entered row 0 (the "star padding" start pointer).
	d []float64
	s []int
	t int // stream points consumed so far

	best    SubsequenceMatch
	hasBest bool

	// Captured-but-unconfirmed thresholded match (SPRING's d_min, t_s, t_e).
	dmin   float64
	ts, te int
	// nextStart is the earliest stream position a path may begin at after
	// an emitted match (non-overlap plus the MinGap separation).
	nextStart int

	cells   int64
	skipped int64
}

// SpringConfig parameterises a Spring.
type SpringConfig struct {
	// Dist is the element cost; nil means squared difference. Emission
	// and the lower-bound reasoning assume a non-negative cost.
	Dist series.PointDistance
	// Threshold enables SPRING match emission: a region whose subsequence
	// DTW distance is <= Threshold is reported once confirmed. +Inf (or
	// NaN) disables emission; Best still tracks the global optimum.
	Threshold float64
	// MinGap is the minimum number of stream points between an emitted
	// match's end and the next match's start.
	MinGap int
	// Prefilter arms the time-domain prefilter consumed through
	// AppendFiltered: stream points whose cheapest possible alignment
	// cost against any query element already exceeds Threshold skip the
	// O(|q|) column advance entirely. The skip is admissible — emitted
	// matches are bit-identical to plain Append — and only engages for
	// the default squared cost with a finite Threshold and a NaN-free
	// query; otherwise AppendFiltered degrades to Append. Best is not
	// maintained across skipped points (only supra-threshold optima are
	// affected), so arm it only when thresholded emission is the output.
	Prefilter bool
}

// SpringTemplate is the stream-independent part of a Spring: the query,
// its validated configuration, and the prefilter constants. One template
// per standing query initialises (and re-initialises, via Init over
// recycled backing) any number of per-stream Spring states — the pooling
// seam fleet hubs slab-allocate O(|q|) state through.
type SpringTemplate struct {
	q          []float64
	dist       series.PointDistance
	squared    bool
	threshold  float64
	minGap     int
	filter     bool
	qmin, qmax float64
}

// NewSpringTemplate validates one query's streaming configuration.
func NewSpringTemplate(q []float64, cfg SpringConfig) (*SpringTemplate, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("dtw: empty query: %w", series.ErrEmptySeries)
	}
	if cfg.MinGap < 0 {
		return nil, fmt.Errorf("dtw: negative match gap %d", cfg.MinGap)
	}
	dist := cfg.Dist
	squared := useSquaredKernel(dist)
	if dist == nil {
		dist = series.SquaredDistance
	}
	threshold := cfg.Threshold
	if math.IsNaN(threshold) {
		threshold = math.Inf(1)
	}
	t := &SpringTemplate{
		q:         q,
		dist:      dist,
		squared:   squared,
		threshold: threshold,
		minGap:    cfg.MinGap,
	}
	if cfg.Prefilter && squared && !math.IsInf(threshold, 1) {
		qmin, qmax := q[0], q[0]
		hasNaN := false
		for _, x := range q {
			if math.IsNaN(x) {
				hasNaN = true
				break
			}
			if x < qmin {
				qmin = x
			}
			if x > qmax {
				qmax = x
			}
		}
		// A NaN query element voids the range bound (its alignment cost
		// is NaN, below no threshold); leave the filter disarmed.
		if !hasNaN {
			t.filter, t.qmin, t.qmax = true, qmin, qmax
		}
	}
	return t, nil
}

// StateLen is the per-stream state size in elements: Init needs backing
// slices of at least this length (one float64 and one int per element).
func (t *SpringTemplate) StateLen() int { return len(t.q) }

// Init initialises sp in place over caller-owned backing — d and s must
// each hold at least StateLen elements and must not be shared between
// live springs. Re-initialising a recycled Spring through Init (or
// Reset) restores the exact state of a freshly constructed one.
func (t *SpringTemplate) Init(sp *Spring, d []float64, s []int) {
	n := len(t.q)
	inf := math.Inf(1)
	*sp = Spring{
		q:         t.q,
		dist:      t.dist,
		squared:   t.squared,
		threshold: t.threshold,
		minGap:    t.minGap,
		filter:    t.filter,
		qmin:      t.qmin,
		qmax:      t.qmax,
		d:         d[:n:n],
		s:         s[:n:n],
		best:      SubsequenceMatch{Distance: inf},
		dmin:      inf,
	}
	for i := range sp.d {
		sp.d[i] = inf
	}
}

// NewSpring builds the streaming state for one query with its own
// backing. Fleets sharing one query across many streams should build one
// SpringTemplate and Init states over slab-allocated backing instead.
func NewSpring(q []float64, cfg SpringConfig) (*Spring, error) {
	t, err := NewSpringTemplate(q, cfg)
	if err != nil {
		return nil, err
	}
	sp := new(Spring)
	t.Init(sp, make([]float64, len(q)), make([]int, len(q)))
	return sp, nil
}

// Reset returns a Spring to its just-initialised state, reusing its
// backing: the recycling path of pooled per-stream state. The query,
// cost, threshold and prefilter configuration are retained.
func (sp *Spring) Reset() {
	inf := math.Inf(1)
	sp.t = 0
	sp.cells, sp.skipped = 0, 0
	sp.best, sp.hasBest = SubsequenceMatch{Distance: inf}, false
	sp.dmin, sp.ts, sp.te = inf, 0, 0
	sp.nextStart = 0
	sp.dormant = false
	for i := range sp.d {
		sp.d[i] = inf
	}
}

// Append consumes the next stream point, advancing every DP cell once
// (O(|q|) work, no allocation). In thresholded mode it returns a match
// and true when the SPRING report condition confirms one; matches are
// emitted in stream order and never overlap.
//
//sdtw:hotpath
func (sp *Spring) Append(v float64) (SubsequenceMatch, bool) {
	t := sp.t
	if sp.squared {
		sp.advanceSquared(v)
	} else {
		sp.advanceGeneric(v)
	}
	sp.cells += int64(len(sp.q))
	sp.t = t + 1
	return sp.confirm(t)
}

// AppendFiltered is Append behind the time-domain prefilter. A stream
// point outside the query's value range by more than √threshold is dead:
// every warp path must align it with some query element at cost at least
// (v−qmax)² (or (qmin−v)²), so after consuming it every DP cell would
// exceed the threshold — no region containing the point can ever be
// emitted, and cells above the threshold can never re-enter emission
// (costs only accumulate). Dead points therefore skip the O(|q|) column
// advance entirely: the column is marked dormant (logically all +Inf),
// the pending match — which the supra-threshold column would confirm —
// is reported, and the state resumes from scratch at the next live
// point. Emitted matches are bit-identical to plain Append's; only Best
// diverges (it stops tracking supra-threshold optima across skips).
//
// With the filter disarmed (generic cost, infinite threshold, NaN query
// — see SpringConfig.Prefilter) this is exactly Append.
//
//sdtw:hotpath
func (sp *Spring) AppendFiltered(v float64) (SubsequenceMatch, bool) {
	if sp.filter {
		if v > sp.qmax {
			if dd := v - sp.qmax; dd*dd > sp.threshold {
				return sp.skip()
			}
		} else if v < sp.qmin {
			if dd := sp.qmin - v; dd*dd > sp.threshold {
				return sp.skip()
			}
		}
		if sp.dormant {
			// First live point after a dead stretch: the stored column is
			// stale. Re-initialise it to the dormant truth (+Inf) so the
			// ordinary advance restarts from fresh paths only.
			inf := math.Inf(1)
			for i := range sp.d {
				sp.d[i] = inf
			}
			sp.dormant = false
		}
	}
	return sp.Append(v)
}

// skip consumes a dead stream point in O(1): no column advance, no cell
// fills. The pending thresholded match, if any, is confirmed here — at
// this point the advanced column would hold no cell below its distance —
// exactly when plain Append would have reported it.
//
//sdtw:hotpath
func (sp *Spring) skip() (SubsequenceMatch, bool) {
	sp.t++
	sp.skipped++
	sp.dormant = true
	if !math.IsInf(sp.dmin, 1) {
		out := SubsequenceMatch{Start: sp.ts, End: sp.te, Distance: sp.dmin}
		sp.emitReset()
		return out, true
	}
	return SubsequenceMatch{}, false
}

// confirm runs the post-advance reporting logic for the column computed
// at stream position t: global-best tracking, the SPRING report
// condition, and pending-match capture.
//
//sdtw:hotpath
func (sp *Spring) confirm(t int) (SubsequenceMatch, bool) {
	n := len(sp.q)
	d, s := sp.d, sp.s

	// Global best, the offline-equivalent answer: strict < keeps the
	// earliest end on ties, exactly like Subsequence's final argmin scan.
	if d[n-1] < sp.best.Distance {
		sp.best = SubsequenceMatch{Start: s[n-1], End: t, Distance: d[n-1]}
		sp.hasBest = true
	}

	if math.IsInf(sp.threshold, 1) {
		return SubsequenceMatch{}, false
	}

	// SPRING report condition: the captured optimum is final once every
	// still-open path either cannot beat it or starts after its end.
	var out SubsequenceMatch
	emitted := false
	if !math.IsInf(sp.dmin, 1) {
		report := true
		for i := 0; i < n; i++ {
			if d[i] < sp.dmin && s[i] <= sp.te {
				report = false
				break
			}
		}
		if report {
			out = SubsequenceMatch{Start: sp.ts, End: sp.te, Distance: sp.dmin}
			emitted = true
			sp.emitReset()
		}
	}
	// Capture (or improve) the pending match from the current column.
	if last := d[n-1]; last <= sp.threshold && last < sp.dmin {
		sp.dmin, sp.ts, sp.te = last, s[n-1], t
	}
	return out, emitted
}

// advanceGeneric advances every DP cell by one stream point through the
// configured point-distance function.
//
// Row 0: the path may begin at the current point for free — unless the
// point falls inside the non-overlap / MinGap window of an emitted match,
// in which case no new path may start here. Rows 1..n-1 mirror the
// offline DP cell for cell: the comparison order (vertical, then
// diagonal, then horizontal, each on strict <) matches Subsequence
// exactly, so values AND start-pointer tie-breaks are bit-identical to
// the offline grid.
//
//sdtw:hotpath
func (sp *Spring) advanceGeneric(v float64) {
	n := len(sp.q)
	d, s, dist := sp.d, sp.s, sp.dist
	t := sp.t
	inf := math.Inf(1)

	diagD, diagS := d[0], s[0]
	if t < sp.nextStart {
		d[0], s[0] = inf, t
	} else {
		d[0], s[0] = dist(sp.q[0], v), t
	}
	for i := 1; i < n; i++ {
		best, from := d[i-1], s[i-1] // vertical: advance q only (this column)
		if diagD < best {            // diagonal (previous column)
			best, from = diagD, diagS
		}
		if d[i] < best { // horizontal: advance stream only (previous column)
			best, from = d[i], s[i]
		}
		diagD, diagS = d[i], s[i]
		if math.IsInf(best, 1) {
			d[i], s[i] = inf, t
			continue
		}
		d[i], s[i] = best+dist(sp.q[i], v), from
	}
}

// advanceSquared is advanceGeneric monomorphized for the default squared
// cost: identical recurrence and comparison order, with the cost inlined,
// the state slices re-sliced to the query length so the compiler drops
// the per-cell bounds checks, and the just-written cell below (the
// vertical predecessor) carried in registers instead of re-loaded.
// Differential tests pin bit-identity.
//
//sdtw:hotpath
func (sp *Spring) advanceSquared(v float64) {
	q := sp.q
	n := len(q)
	d := sp.d[:n]
	s := sp.s[:n]
	t := sp.t
	inf := math.Inf(1)

	diagD, diagS := d[0], s[0]
	var belowD float64
	var belowS int
	if t < sp.nextStart {
		belowD, belowS = inf, t
	} else {
		belowD, belowS = sq(q[0], v), t
	}
	d[0], s[0] = belowD, belowS
	for i := 1; i < n; i++ {
		best, from := belowD, belowS // vertical
		if diagD < best {            // diagonal
			best, from = diagD, diagS
		}
		if d[i] < best { // horizontal
			best, from = d[i], s[i]
		}
		diagD, diagS = d[i], s[i]
		if math.IsInf(best, 1) {
			best, from = inf, t
			d[i], s[i] = inf, t
			belowD, belowS = best, from
			continue
		}
		dd := q[i] - v
		best = best + float64(dd*dd)
		d[i], s[i] = best, from
		belowD, belowS = best, from
	}
}

// emitReset clears the captured match and invalidates every open path
// that overlaps it (or starts inside the MinGap window), enforcing
// non-overlapping emission.
//
//sdtw:hotpath
func (sp *Spring) emitReset() {
	sp.nextStart = sp.te + 1 + sp.minGap
	sp.dmin = math.Inf(1)
	inf := math.Inf(1)
	for i, start := range sp.s {
		if start < sp.nextStart {
			sp.d[i] = inf
		}
	}
}

// Flush confirms the pending thresholded match, if any — at end-of-stream
// nothing can improve or extend it. It returns false in best-only mode or
// when no region ever dropped to the threshold since the last emission.
func (sp *Spring) Flush() (SubsequenceMatch, bool) {
	if math.IsInf(sp.dmin, 1) {
		return SubsequenceMatch{}, false
	}
	out := SubsequenceMatch{Start: sp.ts, End: sp.te, Distance: sp.dmin}
	sp.emitReset()
	return out, true
}

// Best returns the global best match over everything consumed so far,
// and false if no point has been consumed. With emission disabled
// (Threshold = +Inf) it is bit-identical to the offline Subsequence over
// the same points; with emission enabled, invalidation after each report
// restricts the optimum to paths that do not overlap emitted matches.
func (sp *Spring) Best() (SubsequenceMatch, bool) { return sp.best, sp.hasBest }

// Points returns the number of stream points consumed.
func (sp *Spring) Points() int { return sp.t }

// Cells returns the total DP cells filled (|q| per Append).
func (sp *Spring) Cells() int64 { return sp.cells }

// Skipped returns the stream points AppendFiltered consumed without
// advancing the column — the time-domain prefilter's O(|q|)→O(1) wins.
func (sp *Spring) Skipped() int64 { return sp.skipped }
