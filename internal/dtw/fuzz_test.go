package dtw

import (
	"math"
	"math/rand"
	"testing"
)

// Differential fuzz targets: the monomorphized squared-cost kernels must
// stay bit-identical to the generic per-cell-callback path on any input.
// These wrap the same properties as the TestKernelDifferential* suites
// but let the fuzzer drive the shape parameters; CI runs each for a
// bounded ~30s in the fuzz-smoke lane.

// FuzzBandedKernelDifferential compares the specialized and generic
// early-abandoning banded DP on fuzzer-chosen shapes, bands and budgets.
func FuzzBandedKernelDifferential(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(8), uint8(0))
	f.Add(int64(42), uint8(32), uint8(17), uint8(1))
	f.Add(int64(7), uint8(48), uint8(3), uint8(2))
	f.Add(int64(99), uint8(1), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n8, m8, bsel uint8) {
		n := int(n8)%48 + 1
		m := int(m8)%48 + 1
		rng := rand.New(rand.NewSource(seed))
		x := kernelRandomSeries(rng, n)
		y := kernelRandomSeries(rng, m)
		b := kernelRandomBand(rng, n, m)
		budget := math.Inf(1)
		switch bsel % 4 {
		case 1:
			budget = 0
		case 2:
			budget = rng.Float64() * float64(n)
		case 3:
			budget = rng.Float64() * 10
		}
		var wsS, wsG Workspace
		gotD, gotC, gotA, err := BandedAbandonWS(x, y, b, nil, budget, &wsS)
		if err != nil {
			t.Fatal(err)
		}
		wantD, wantC, wantA, err := BandedAbandonWS(x, y, b, sqGeneric, budget, &wsG)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(gotD) != math.Float64bits(wantD) || gotC != wantC || gotA != wantA {
			t.Fatalf("kernel divergence (n=%d m=%d budget=%v): specialized (%v, %d, %v) vs generic (%v, %d, %v)",
				n, m, budget, gotD, gotC, gotA, wantD, wantC, wantA)
		}
	})
}

// FuzzSpringDifferential compares the specialized and generic SPRING
// streaming DP: every emitted match and the final global best must agree
// bit for bit.
func FuzzSpringDifferential(f *testing.F) {
	f.Add(int64(7), uint8(8), uint8(64), false)
	f.Add(int64(3), uint8(1), uint8(1), true)
	f.Add(int64(11), uint8(15), uint8(200), true)
	f.Fuzz(func(t *testing.T, seed int64, q8, s8 uint8, thresholded bool) {
		qn := int(q8)%16 + 1
		sn := int(s8)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		q := kernelRandomSeries(rng, qn)
		stream := kernelRandomSeries(rng, sn)
		threshold := math.Inf(1)
		if thresholded {
			threshold = rng.Float64() * float64(qn)
		}
		cfg := SpringConfig{Threshold: threshold, MinGap: rng.Intn(3)}
		spS, err := NewSpring(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Dist = sqGeneric
		spG, err := NewSpring(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range stream {
			mS, okS := spS.Append(v)
			mG, okG := spG.Append(v)
			if okS != okG || mS != mG {
				t.Fatalf("point %d: emission divergence: specialized (%+v, %v) vs generic (%+v, %v)", i, mS, okS, mG, okG)
			}
		}
		fS, okS := spS.Flush()
		fG, okG := spG.Flush()
		if okS != okG || math.Float64bits(fS.Distance) != math.Float64bits(fG.Distance) ||
			fS.Start != fG.Start || fS.End != fG.End {
			t.Fatalf("flush divergence: specialized (%+v, %v) vs generic (%+v, %v)", fS, okS, fG, okG)
		}
	})
}
