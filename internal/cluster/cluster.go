// Package cluster implements distance-matrix based clustering of time
// series — k-medoids (PAM-style) with deterministic seeding and the
// silhouette quality measure. Clustering of sequences is one of the core
// operations the paper's introduction motivates; the algorithms here
// consume the pairwise DTW/sDTW matrices produced by package eval, so any
// constraint strategy can drive them.
package cluster

import (
	"fmt"
	"math"
)

// Result describes a clustering of n objects into k clusters.
type Result struct {
	// Medoids holds the object index serving as each cluster's centre.
	Medoids []int
	// Assign maps every object to its cluster (index into Medoids).
	Assign []int
	// Cost is the sum of distances from every object to its medoid.
	Cost float64
	// Iterations is the number of improvement sweeps performed.
	Iterations int
}

// Sizes returns the number of objects per cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, len(r.Medoids))
	for _, c := range r.Assign {
		sizes[c]++
	}
	return sizes
}

// KMedoids clusters the n objects behind the n×n distance matrix d into k
// clusters. The matrix may carry NaN on its diagonal (treated as zero).
// Seeding is deterministic: the first medoid minimises the total distance
// to all objects and each further medoid maximises its distance to the
// chosen set (maxmin/k-centre seeding), so identical inputs always
// cluster identically. maxIter bounds the improvement sweeps (<= 0 means
// 50).
func KMedoids(d [][]float64, k, maxIter int) (*Result, error) {
	n := len(d)
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty distance matrix")
	}
	for i, row := range d {
		if len(row) != n {
			return nil, fmt.Errorf("cluster: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: k=%d outside [1,%d]", k, n)
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	at := func(i, j int) float64 {
		if i == j {
			return 0
		}
		v := d[i][j]
		if math.IsNaN(v) {
			return 0
		}
		return v
	}

	medoids := seed(at, n, k)
	assign := make([]int, n)
	res := &Result{Medoids: medoids, Assign: assign}
	res.Cost = assignAll(at, medoids, assign)

	for iter := 0; iter < maxIter; iter++ {
		improved := false
		// PAM-style sweep: try swapping each medoid with each non-medoid
		// and keep the best improving swap per medoid.
		for mi := range medoids {
			bestCost := res.Cost
			bestObj := -1
			for obj := 0; obj < n; obj++ {
				if isMedoid(medoids, obj) {
					continue
				}
				trial := make([]int, len(medoids))
				copy(trial, medoids)
				trial[mi] = obj
				cost := assignCost(at, trial, n)
				if cost < bestCost-1e-12 {
					bestCost, bestObj = cost, obj
				}
			}
			if bestObj >= 0 {
				medoids[mi] = bestObj
				res.Cost = bestCost
				improved = true
			}
		}
		res.Iterations = iter + 1
		if !improved {
			break
		}
	}
	res.Cost = assignAll(at, medoids, assign)
	return res, nil
}

// seed picks k deterministic initial medoids: the 1-medoid optimum first,
// then maxmin.
func seed(at func(int, int) float64, n, k int) []int {
	best, bestSum := 0, math.Inf(1)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += at(i, j)
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	medoids := []int{best}
	for len(medoids) < k {
		next, nextDist := -1, -1.0
		for i := 0; i < n; i++ {
			if isMedoid(medoids, i) {
				continue
			}
			dmin := math.Inf(1)
			for _, m := range medoids {
				if v := at(i, m); v < dmin {
					dmin = v
				}
			}
			if dmin > nextDist {
				next, nextDist = i, dmin
			}
		}
		medoids = append(medoids, next)
	}
	return medoids
}

func isMedoid(medoids []int, obj int) bool {
	for _, m := range medoids {
		if m == obj {
			return true
		}
	}
	return false
}

// assignAll assigns every object to its nearest medoid and returns the
// total cost.
func assignAll(at func(int, int) float64, medoids []int, assign []int) float64 {
	total := 0.0
	for i := range assign {
		bestC, bestD := 0, math.Inf(1)
		for c, m := range medoids {
			if v := at(i, m); v < bestD {
				bestC, bestD = c, v
			}
		}
		assign[i] = bestC
		total += bestD
	}
	return total
}

// assignCost is assignAll without materialising assignments.
func assignCost(at func(int, int) float64, medoids []int, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		for _, m := range medoids {
			if v := at(i, m); v < best {
				best = v
			}
		}
		total += best
	}
	return total
}

// Silhouette returns the mean silhouette coefficient of a clustering over
// the distance matrix: for each object, (b−a)/max(a,b) where a is its
// mean distance within its own cluster and b the smallest mean distance
// to another cluster. Values near 1 indicate tight, well-separated
// clusters; singletons score 0 by convention.
func Silhouette(d [][]float64, assign []int, k int) (float64, error) {
	n := len(d)
	if n == 0 || len(assign) != n {
		return 0, fmt.Errorf("cluster: assignment length %d does not match matrix size %d", len(assign), n)
	}
	at := func(i, j int) float64 {
		if i == j {
			return 0
		}
		v := d[i][j]
		if math.IsNaN(v) {
			return 0
		}
		return v
	}
	sizes := make([]int, k)
	for _, c := range assign {
		if c < 0 || c >= k {
			return 0, fmt.Errorf("cluster: assignment %d outside [0,%d)", c, k)
		}
		sizes[c]++
	}
	total := 0.0
	for i := 0; i < n; i++ {
		sums := make([]float64, k)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[assign[j]] += at(i, j)
		}
		own := assign[i]
		if sizes[own] <= 1 {
			continue // singleton: contributes 0
		}
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if v := sums[c] / float64(sizes[c]); v < b {
				b = v
			}
		}
		if math.IsInf(b, 1) {
			continue // single non-empty cluster
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n), nil
}

// Purity measures agreement between a clustering and ground-truth labels:
// the fraction of objects belonging to their cluster's majority label.
func Purity(assign, labels []int, k int) (float64, error) {
	if len(assign) != len(labels) {
		return 0, fmt.Errorf("cluster: %d assignments vs %d labels", len(assign), len(labels))
	}
	if len(assign) == 0 {
		return 0, fmt.Errorf("cluster: empty clustering")
	}
	counts := make([]map[int]int, k)
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for i, c := range assign {
		if c < 0 || c >= k {
			return 0, fmt.Errorf("cluster: assignment %d outside [0,%d)", c, k)
		}
		counts[c][labels[i]]++
	}
	agree := 0
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		agree += best
	}
	return float64(agree) / float64(len(assign)), nil
}
