package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdtw/internal/datasets"
	"sdtw/internal/eval"
)

// blockMatrix builds a distance matrix with two well-separated groups:
// objects [0,split) and [split,n) are near their own group and far from
// the other.
func blockMatrix(n, split int) [][]float64 {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = math.NaN() // eval matrices carry NaN diagonals
			case (i < split) == (j < split):
				d[i][j] = 1
			default:
				d[i][j] = 10
			}
		}
	}
	return d
}

func TestKMedoidsRecoverBlocks(t *testing.T) {
	d := blockMatrix(12, 5)
	res, err := KMedoids(d, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 2 {
		t.Fatalf("got %d medoids", len(res.Medoids))
	}
	// All of the first group share a cluster, all of the second the other.
	first := res.Assign[0]
	for i := 1; i < 5; i++ {
		if res.Assign[i] != first {
			t.Fatalf("first block split: %v", res.Assign)
		}
	}
	second := res.Assign[5]
	if second == first {
		t.Fatalf("blocks merged: %v", res.Assign)
	}
	for i := 6; i < 12; i++ {
		if res.Assign[i] != second {
			t.Fatalf("second block split: %v", res.Assign)
		}
	}
	sizes := res.Sizes()
	if sizes[first] != 5 || sizes[second] != 7 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestKMedoidsValidation(t *testing.T) {
	if _, err := KMedoids(nil, 1, 0); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := KMedoids([][]float64{{0, 1}}, 1, 0); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	d := blockMatrix(4, 2)
	if _, err := KMedoids(d, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMedoids(d, 5, 0); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestKMedoidsSingleCluster(t *testing.T) {
	d := blockMatrix(6, 3)
	res, err := KMedoids(d, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Assign {
		if c != 0 {
			t.Fatalf("single-cluster assignment = %v", res.Assign)
		}
	}
}

func TestKMedoidsKEqualsN(t *testing.T) {
	d := blockMatrix(5, 2)
	res, err := KMedoids(d, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("k=n cost = %v, want 0", res.Cost)
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64() * 10
			d[i][j], d[j][i] = v, v
		}
	}
	a, err := KMedoids(d, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMedoids(d, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("clustering not deterministic")
		}
	}
}

func TestKMedoidsCostNeverIncreases(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(15)
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64()
				d[i][j], d[j][i] = v, v
			}
		}
		k := 1 + rng.Intn(n)
		one, err := KMedoids(d, k, 1)
		if err != nil {
			return false
		}
		many, err := KMedoids(d, k, 25)
		if err != nil {
			return false
		}
		return many.Cost <= one.Cost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouetteSeparatedBlocks(t *testing.T) {
	d := blockMatrix(10, 5)
	res, err := KMedoids(d, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Silhouette(d, res.Assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.8 {
		t.Fatalf("well-separated blocks silhouette = %v", s)
	}
	// A deliberately bad clustering scores lower.
	bad := make([]int, 10)
	for i := range bad {
		bad[i] = i % 2
	}
	sBad, err := Silhouette(d, bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sBad >= s {
		t.Fatalf("bad clustering silhouette %v >= good %v", sBad, s)
	}
}

func TestSilhouetteValidation(t *testing.T) {
	if _, err := Silhouette(nil, nil, 2); err == nil {
		t.Fatal("empty input accepted")
	}
	d := blockMatrix(4, 2)
	if _, err := Silhouette(d, []int{0, 0, 9, 0}, 2); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
}

func TestPurity(t *testing.T) {
	assign := []int{0, 0, 0, 1, 1, 1}
	labels := []int{5, 5, 7, 9, 9, 9}
	p, err := Purity(assign, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-5.0/6) > 1e-12 {
		t.Fatalf("purity = %v, want 5/6", p)
	}
	if _, err := Purity([]int{0}, []int{0, 1}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Purity(nil, nil, 1); err == nil {
		t.Fatal("empty clustering accepted")
	}
}

func TestClusteringRealWorkload(t *testing.T) {
	// End-to-end: cluster the Gun workload by full DTW distances and
	// check the two classes mostly separate.
	d := datasets.Gun(datasets.Config{Seed: 23, SeriesPerClass: 8})
	m, err := eval.FullDTWMatrix(d.Series, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMedoids(m.D, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Purity(res.Assign, d.Labels(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.8 {
		t.Fatalf("DTW clustering purity = %v on a 2-class workload", p)
	}
}
