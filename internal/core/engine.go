// Package core orchestrates the full sDTW pipeline of the paper: salient
// feature extraction (package sift), feature matching with inconsistency
// pruning (package match), locally relevant constraint construction
// (package band), and band-constrained dynamic programming (package dtw).
//
// The Engine memoises per-series feature extraction — the paper's §3.4
// observes extraction is a one-time, indexable cost — and reports per-stage
// timings and grid-cell counts so the evaluation harness can reproduce the
// paper's time-gain and cost-breakdown figures.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"sdtw/internal/band"
	"sdtw/internal/dtw"
	"sdtw/internal/match"
	"sdtw/internal/series"
	"sdtw/internal/sift"
)

// Options configures an Engine. The zero value selects the paper's
// defaults: (ac,aw) constraints, 64-bin descriptors, ε = 0.0096,
// squared point distance.
type Options struct {
	// Band selects and parameterises the constraint strategy.
	Band band.Config
	// Features configures salient feature detection and description.
	Features sift.Config
	// Matcher configures dominant-pair selection and pruning.
	Matcher match.Config
	// MinPairs is the minimum number of consistent salient pairs required
	// before adaptive constraints trust the alignment; below it the band
	// falls back to the conservative default (diagonal core, full-width
	// adaptive intervals). A single surviving pair is too easily a
	// spurious match and would anchor the whole core. Zero means 2;
	// negative disables the floor.
	MinPairs int
	// PointDistance is the element cost; nil means squared distance.
	//
	// The default cost is the fast path throughout the pipeline: a nil
	// value (or series.SquaredDistance itself) dispatches every dynamic
	// program to monomorphized, branch-free kernels with the cost
	// inlined (internal/dtw/kernel.go), bit-identical to the generic
	// path. Any other function — including a closure wrapping the
	// squared cost — runs the generic per-cell indirect-call path.
	PointDistance series.PointDistance
	// ComputePath, when true, makes Distance also recover the warp path
	// (costs O(band cells) extra memory).
	ComputePath bool
	// KeepBand, when true, copies the constraint band into Result.Band.
	// Off by default: the band is scratch storage reused across calls,
	// and retaining it would force an allocation per comparison.
	KeepBand bool
	// CacheFeatures enables the per-series feature cache. Series are
	// keyed by Series.ID; unkeyed ([]float64) inputs are never cached.
	CacheFeatures bool
}

// DefaultOptions returns the configuration used by the paper's headline
// algorithm, adaptive core & adaptive width.
func DefaultOptions() Options {
	return Options{
		Band:          band.Config{Strategy: band.AdaptiveCoreAdaptiveWidth},
		Features:      sift.DefaultConfig(),
		Matcher:       match.DefaultConfig(),
		CacheFeatures: true,
	}
}

// Result carries the outcome of one constrained distance computation along
// with the accounting the experiments need.
type Result struct {
	// Distance is the (estimated) DTW distance under the constraints.
	Distance float64
	// Path is the optimal in-band warp path; nil unless ComputePath.
	Path dtw.Path
	// Band is the constraint actually used; zero unless Options.KeepBand.
	Band dtw.Band
	// CellsFilled is the number of DTW grid cells evaluated.
	CellsFilled int
	// BandCells is the total cell count of the constraint band; it equals
	// CellsFilled unless the computation abandoned early, in which case
	// BandCells − CellsFilled is the work abandonment skipped.
	BandCells int
	// GridCells is N·M, for computing pruning gains.
	GridCells int
	// Abandoned reports that DistanceUnder stopped early because every
	// continuation already exceeded the caller's budget. Distance is then
	// a valid lower bound on the banded distance, not the distance itself.
	Abandoned bool
	// Pairs is the number of consistent salient pairs that informed the
	// band (0 for fixed-core/fixed-width strategies).
	Pairs int
	// MatchTime is the time spent matching features and pruning
	// inconsistencies (paper task b); zero for non-adaptive strategies.
	MatchTime time.Duration
	// DPTime is the time spent filling the constrained grid and, when
	// requested, recovering the path (paper task c).
	DPTime time.Duration
	// ExtractTime is time spent extracting features *during this call*;
	// zero on cache hits or for non-adaptive strategies. The paper
	// excludes this one-time cost from per-pair comparisons.
	ExtractTime time.Duration
}

// CellsGain returns the fraction of the full grid pruned away,
// 1 − CellsFilled/GridCells — the machine-independent time-gain proxy.
func (r Result) CellsGain() float64 {
	if r.GridCells == 0 {
		return 0
	}
	return 1 - float64(r.CellsFilled)/float64(r.GridCells)
}

// Engine computes sDTW distances. It is safe for concurrent use.
type Engine struct {
	opts Options

	mu    sync.RWMutex
	cache map[string][]sift.Feature

	// scratch pools per-goroutine workspaces (band builder buffers and DP
	// row buffers) so concurrent distance computations allocate nothing
	// in steady state.
	scratch sync.Pool
}

// workspace bundles the reusable per-computation buffers.
type workspace struct {
	builder band.Builder
	dp      dtw.Workspace
}

// NewEngine returns an engine with the given options.
func NewEngine(opts Options) *Engine {
	e := &Engine{opts: opts, cache: make(map[string][]sift.Feature)}
	e.scratch.New = func() any { return new(workspace) }
	return e
}

// Options returns a copy of the engine's options.
func (e *Engine) Options() Options { return e.opts }

// Features extracts (or recalls) the salient features of s.
func (e *Engine) Features(s series.Series) ([]sift.Feature, error) {
	if e.opts.CacheFeatures && s.ID != "" {
		e.mu.RLock()
		f, ok := e.cache[s.ID]
		e.mu.RUnlock()
		if ok {
			return f, nil
		}
	}
	f, err := sift.Extract(s.Values, e.opts.Features)
	if err != nil {
		return nil, err
	}
	if e.opts.CacheFeatures && s.ID != "" {
		e.mu.Lock()
		e.cache[s.ID] = f
		e.mu.Unlock()
	}
	return f, nil
}

// Warm pre-extracts and caches the features of every series, the paper's
// offline indexing step. It returns the total extraction time.
func (e *Engine) Warm(data []series.Series) (time.Duration, error) {
	start := time.Now()
	for _, s := range data {
		if _, err := e.Features(s); err != nil {
			return time.Since(start), fmt.Errorf("core: warming %q: %w", s.ID, err)
		}
	}
	return time.Since(start), nil
}

// CacheSize reports the number of cached feature sets.
func (e *Engine) CacheSize() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.cache)
}

// Evict drops the cached features of one series ID, if present. Mutable
// indexes call it when a series leaves the collection so the cache does
// not grow monotonically under churn.
func (e *Engine) Evict(id string) {
	if id == "" {
		return
	}
	e.mu.Lock()
	delete(e.cache, id)
	e.mu.Unlock()
}

// CacheSnapshot returns a copy of the feature cache keyed by series ID,
// for whole-index persistence. The feature slices are shared, not deep
// copied: features are immutable once extracted.
func (e *Engine) CacheSnapshot() map[string][]sift.Feature {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string][]sift.Feature, len(e.cache))
	for id, feats := range e.cache {
		out[id] = feats
	}
	return out
}

// RestoreCache merges a snapshot produced by CacheSnapshot into the
// cache, overwriting existing entries. Only meaningful for engines
// configured with the same feature options as the snapshot's source.
func (e *Engine) RestoreCache(m map[string][]sift.Feature) {
	e.mu.Lock()
	for id, feats := range m {
		e.cache[id] = feats
	}
	e.mu.Unlock()
}

// ClearCache drops all cached features.
func (e *Engine) ClearCache() {
	e.mu.Lock()
	e.cache = make(map[string][]sift.Feature)
	e.mu.Unlock()
}

// Distance computes the constrained DTW distance between x and y.
//
// When the band is Symmetric (§3.3.3), the inputs are first put into a
// canonical orientation so that Distance(x, y) and Distance(y, x) run the
// identical computation: feature matching is X-driven and therefore
// direction-dependent, and the canonicalisation is what turns the
// symmetric band union into an exactly symmetric distance.
func (e *Engine) Distance(x, y series.Series) (Result, error) {
	return e.DistanceUnder(x, y, math.Inf(1))
}

// DistanceUnder is Distance with threshold-aware early abandonment: the
// dynamic program stops the moment every continuation already exceeds
// budget (exclusive), returning Result.Abandoned=true and a partial
// Distance that is itself a valid lower bound on the banded distance.
// Retrieval cascades pass their best-so-far k-th distance as the budget,
// so hopeless candidates stop after a few rows instead of filling the
// whole band. A budget of +Inf makes the call identical to Distance.
//
// Abandonment assumes a non-negative point cost; when Options.ComputePath
// is set (the path needs the full band) the budget is ignored.
func (e *Engine) DistanceUnder(x, y series.Series, budget float64) (Result, error) {
	return e.DistanceUnderCtx(nil, x, y, budget)
}

// DistanceUnderCtx is DistanceUnder threaded with a context: the banded
// dynamic program polls ctx every few rows and a cancelled context stops
// the computation mid-band with ctx.Err(). A nil ctx disables the polling
// (retrieval hot loops pass nil from their non-cancellable entry points so
// the DP inner loop stays identical). Like the budget, the ctx is not
// consulted inside the path-recovering DP when Options.ComputePath is
// set: that branch runs its band to completion, so cancellation is only
// observed between computations.
func (e *Engine) DistanceUnderCtx(ctx context.Context, x, y series.Series, budget float64) (Result, error) {
	if e.opts.Band.Symmetric && canonicalLess(y, x) {
		res, err := e.distance(ctx, y, x, budget)
		if err != nil {
			return res, err
		}
		for k := range res.Path {
			res.Path[k].I, res.Path[k].J = res.Path[k].J, res.Path[k].I
		}
		if e.opts.KeepBand && res.Band.N() > 0 {
			res.Band = res.Band.Transpose().Normalize()
		}
		return res, nil
	}
	return e.distance(ctx, x, y, budget)
}

// canonicalLess is a deterministic total preorder on series used to pick
// the orientation of symmetric computations: shorter first, then by ID,
// then by values.
func canonicalLess(a, b series.Series) bool {
	if a.Len() != b.Len() {
		return a.Len() < b.Len()
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return a.Values[i] < b.Values[i]
		}
	}
	return false
}

func (e *Engine) distance(ctx context.Context, x, y series.Series, budget float64) (Result, error) {
	nx, ny := x.Len(), y.Len()
	if nx == 0 || ny == 0 {
		return Result{}, fmt.Errorf("core: empty series (len(x)=%d len(y)=%d)", nx, ny)
	}
	res := Result{GridCells: nx * ny}
	needsAlignment := e.opts.Band.Strategy.AdaptiveCore() || e.opts.Band.Strategy.AdaptiveWidth()

	var al *match.Alignment
	if needsAlignment {
		extractStart := time.Now()
		fx, err := e.Features(x)
		if err != nil {
			return res, fmt.Errorf("core: extracting features of x: %w", err)
		}
		fy, err := e.Features(y)
		if err != nil {
			return res, fmt.Errorf("core: extracting features of y: %w", err)
		}
		res.ExtractTime = time.Since(extractStart)

		matchStart := time.Now()
		al, err = match.Match(fx, fy, nx, ny, e.opts.Matcher)
		if err != nil {
			return res, fmt.Errorf("core: matching: %w", err)
		}
		res.MatchTime = time.Since(matchStart)
		res.Pairs = len(al.Pairs)
		minPairs := e.opts.MinPairs
		if minPairs == 0 {
			minPairs = 2
		}
		if minPairs > 0 && len(al.Pairs) < minPairs {
			// Too little evidence to trust the alignment: fall back to an
			// unpartitioned alignment (diagonal core; adaptive widths
			// degrade to the full interval, i.e. a conservative band).
			al = &match.Alignment{NX: nx, NY: ny}
			res.Pairs = 0
		}
	} else {
		al = &match.Alignment{NX: nx, NY: ny}
	}

	ws := e.scratch.Get().(*workspace)
	defer e.scratch.Put(ws)
	b, err := ws.builder.Build(al, e.opts.Band)
	if err != nil {
		return res, fmt.Errorf("core: building band: %w", err)
	}
	if e.opts.KeepBand {
		res.Band = b.Clone()
	}
	res.BandCells = b.Cells()

	dpStart := time.Now()
	if e.opts.ComputePath {
		pr, err := dtw.BandedWithPath(x.Values, y.Values, b, e.opts.PointDistance)
		if err != nil {
			return res, fmt.Errorf("core: constrained DTW: %w", err)
		}
		res.Distance, res.Path, res.CellsFilled = pr.Distance, pr.Path, pr.Cells
	} else {
		d, cells, abandoned, err := dtw.BandedAbandonCtx(ctx, x.Values, y.Values, b, e.opts.PointDistance, budget, &ws.dp)
		if err != nil {
			return res, fmt.Errorf("core: constrained DTW: %w", err)
		}
		res.Distance, res.CellsFilled, res.Abandoned = d, cells, abandoned
	}
	res.DPTime = time.Since(dpStart)
	return res, nil
}

// Subsequence finds the contiguous region of stream whose DTW distance
// to query is minimal (open-begin, open-end alignment), using the
// engine's configured point distance and its pooled DP workspaces so
// repeated calls allocate nothing in steady state. The subsequence DP
// runs the full O(|query|·|stream|) recurrence — the locally relevant
// constraint band does not apply to open-begin alignments.
func (e *Engine) Subsequence(query, stream []float64) (dtw.SubsequenceMatch, error) {
	ws := e.scratch.Get().(*workspace)
	defer e.scratch.Put(ws)
	m, err := dtw.SubsequenceWS(query, stream, e.opts.PointDistance, &ws.dp)
	if err != nil {
		return m, fmt.Errorf("core: subsequence: %w", err)
	}
	return m, nil
}

// Align exposes the feature alignment between x and y (the matched pairs
// and interval partition) without running the dynamic program, for
// visualisation and diagnostics.
func (e *Engine) Align(x, y series.Series) (*match.Alignment, error) {
	fx, err := e.Features(x)
	if err != nil {
		return nil, err
	}
	fy, err := e.Features(y)
	if err != nil {
		return nil, err
	}
	return match.Match(fx, fy, x.Len(), y.Len(), e.opts.Matcher)
}
