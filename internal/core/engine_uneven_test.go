package core

import (
	"math"
	"testing"

	"sdtw/internal/band"
	"sdtw/internal/dtw"
	"sdtw/internal/series"
)

// TestEngineUnequalLengths exercises every strategy on N != M pairs: the
// paper's grid is N×M throughout, and the band machinery must handle
// rectangular grids (interval interpolation, diagonal scaling, width
// fractions of M).
func TestEngineUnequalLengths(t *testing.T) {
	x, _ := makePair(200, 180, 0.35)
	_, y := makePair(201, 260, 0.35)
	full, err := dtw.Distance(x.Values, y.Values, nil)
	if err != nil {
		t.Fatal(err)
	}
	strategies := []band.Strategy{
		band.FullGrid, band.FixedCoreFixedWidth, band.FixedCoreAdaptiveWidth,
		band.AdaptiveCoreFixedWidth, band.AdaptiveCoreAdaptiveWidth,
		band.AdaptiveCoreAdaptiveWidthAvg, band.ItakuraBand,
	}
	for _, s := range strategies {
		eng := NewEngine(optsFor(s))
		res, err := eng.Distance(x, y)
		if err != nil {
			t.Fatalf("%v on 180x260: %v", s, err)
		}
		if res.Distance < full-1e-9 {
			t.Fatalf("%v underestimates on rectangular grid", s)
		}
		if res.GridCells != 180*260 {
			t.Fatalf("%v grid cells = %d", s, res.GridCells)
		}
		// And the transposed direction.
		res2, err := eng.Distance(y, x)
		if err != nil {
			t.Fatalf("%v on 260x180: %v", s, err)
		}
		if res2.Distance < full-1e-9 {
			t.Fatalf("%v underestimates transposed", s)
		}
	}
}

// TestEngineCustomPointDistance verifies the point cost reaches the
// constrained DP for every strategy.
func TestEngineCustomPointDistance(t *testing.T) {
	x, y := makePair(77, 150, 0.3)
	for _, s := range []band.Strategy{band.FullGrid, band.FixedCoreFixedWidth, band.AdaptiveCoreAdaptiveWidth} {
		opts := optsFor(s)
		opts.PointDistance = series.AbsDistance
		eng := NewEngine(opts)
		res, err := eng.Distance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		fullL1, err := dtw.Distance(x.Values, y.Values, series.AbsDistance)
		if err != nil {
			t.Fatal(err)
		}
		if res.Distance < fullL1-1e-9 {
			t.Fatalf("%v with L1 underestimates: %v < %v", s, res.Distance, fullL1)
		}
		// The L1 distance differs from the default squared distance, so a
		// matching value would indicate the option was dropped.
		sqEng := NewEngine(optsFor(s))
		sqRes, err := sqEng.Distance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Distance-sqRes.Distance) < 1e-12 && fullL1 != 0 {
			t.Fatalf("%v: L1 and squared distances coincide (%v) — option ignored?", s, res.Distance)
		}
	}
}

// TestEngineShortSeries exercises the minimum lengths the scale space
// accepts and verifies the adaptive fallback below it.
func TestEngineShortSeries(t *testing.T) {
	eng := NewEngine(DefaultOptions())
	x := series.New("short-x", 0, []float64{1, 2, 3, 2, 1, 0, 1, 2})
	y := series.New("short-y", 0, []float64{1, 2, 3, 3, 2, 1, 0, 1})
	res, err := eng.Distance(x, y)
	if err != nil {
		t.Fatalf("length-8 series rejected: %v", err)
	}
	full, err := dtw.Distance(x.Values, y.Values, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < full-1e-9 {
		t.Fatal("short-series estimate underestimates")
	}
	// Below the scale-space minimum, extraction fails and the engine
	// must surface the error rather than crash.
	tiny := series.New("tiny", 0, []float64{1, 2})
	if _, err := eng.Distance(tiny, y); err == nil {
		t.Fatal("sub-minimum series accepted by adaptive strategy")
	}
	// The full grid has no feature dependency and must still work.
	exact := NewEngine(optsFor(band.FullGrid))
	if _, err := exact.Distance(tiny, y); err != nil {
		t.Fatalf("full grid rejected tiny series: %v", err)
	}
}
