package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"sdtw/internal/band"
	"sdtw/internal/dtw"
	"sdtw/internal/match"
	"sdtw/internal/series"
	"sdtw/internal/sift"
)

// makePair builds a structured series and a warped copy of it.
func makePair(seed int64, n int, warpStrength float64) (series.Series, series.Series) {
	rng := rand.New(rand.NewSource(seed))
	base := make([]float64, n)
	for i := range base {
		x := float64(i)
		base[i] = series.GaussianBump(x, float64(n)*0.25, float64(n)*0.04, 1) +
			series.GaussianBump(x, float64(n)*0.55, float64(n)*0.06, -0.7) +
			series.GaussianBump(x, float64(n)*0.8, float64(n)*0.03, 0.9)
	}
	warped := series.ApplyWarp(base, series.RandomWarp(rng, 4, warpStrength), n)
	warped = series.AddNoise(rng, warped, 0.01)
	// IDs key the engine's feature cache, so they must be unique per
	// generated pair even when one engine serves many pairs.
	return series.New(fmt.Sprintf("x-%d-%d", seed, n), 0, base),
		series.New(fmt.Sprintf("y-%d-%d", seed, n), 0, warped)
}

func optsFor(s band.Strategy) Options {
	return Options{
		Band:          band.Config{Strategy: s, WidthFrac: 0.10},
		Features:      sift.DefaultConfig(),
		Matcher:       match.DefaultConfig(),
		CacheFeatures: true,
	}
}

func TestEngineDistanceMatchesFullDTWOnFullGrid(t *testing.T) {
	x, y := makePair(1, 180, 0.3)
	eng := NewEngine(optsFor(band.FullGrid))
	res, err := eng.Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	full, err := dtw.Distance(x.Values, y.Values, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Distance-full) > 1e-9 {
		t.Fatalf("full-grid engine %v != DTW %v", res.Distance, full)
	}
	if res.CellsFilled != 180*180 {
		t.Fatalf("full grid cells = %d", res.CellsFilled)
	}
	if res.CellsGain() != 0 {
		t.Fatalf("full grid gain = %v, want 0", res.CellsGain())
	}
}

func TestEngineNeverUnderestimates(t *testing.T) {
	strategies := []band.Strategy{
		band.FixedCoreFixedWidth, band.FixedCoreAdaptiveWidth,
		band.AdaptiveCoreFixedWidth, band.AdaptiveCoreAdaptiveWidth,
		band.AdaptiveCoreAdaptiveWidthAvg, band.ItakuraBand,
	}
	for seed := int64(0); seed < 8; seed++ {
		x, y := makePair(seed, 150, 0.4)
		full, err := dtw.Distance(x.Values, y.Values, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strategies {
			eng := NewEngine(optsFor(s))
			res, err := eng.Distance(x, y)
			if err != nil {
				t.Fatalf("%v: %v", s, err)
			}
			if res.Distance < full-1e-9 {
				t.Fatalf("%v underestimates: %v < %v", s, res.Distance, full)
			}
		}
	}
}

func TestEngineAdaptiveTracksWarp(t *testing.T) {
	// The paper's headline claim, in miniature: on warped copies with
	// clear features, (ac,aw) estimates the DTW distance better than the
	// fixed Sakoe-Chiba band at 10% width, while still pruning a healthy
	// share of the grid. Absolute relative errors are unstable here
	// because the reference distances are noise-level, so the adaptive
	// and fixed estimates are compared on the same pairs.
	adaptiveSum, fixedSum, gainSum := 0.0, 0.0, 0.0
	const trials = 10
	adaptive := NewEngine(optsFor(band.AdaptiveCoreAdaptiveWidth))
	fixed := NewEngine(optsFor(band.FixedCoreFixedWidth))
	for seed := int64(0); seed < trials; seed++ {
		x, y := makePair(seed+100, 200, 0.35)
		resA, err := adaptive.Distance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		resF, err := fixed.Distance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		adaptiveSum += resA.Distance
		fixedSum += resF.Distance
		gainSum += resA.CellsGain()
	}
	if adaptiveSum >= fixedSum {
		t.Fatalf("(ac,aw) no better than (fc,fw): %v vs %v", adaptiveSum, fixedSum)
	}
	if avg := gainSum / trials; avg < 0.3 {
		t.Fatalf("mean (ac,aw) cells gain %v too low", avg)
	}
}

func TestEngineSelfDistanceZero(t *testing.T) {
	x, _ := makePair(3, 160, 0.3)
	for _, s := range []band.Strategy{band.FixedCoreFixedWidth, band.AdaptiveCoreAdaptiveWidth} {
		eng := NewEngine(optsFor(s))
		res, err := eng.Distance(x, x)
		if err != nil {
			t.Fatal(err)
		}
		if res.Distance > 1e-9 {
			t.Fatalf("%v: self distance = %v", s, res.Distance)
		}
	}
}

func TestEngineEmptyInputRejected(t *testing.T) {
	eng := NewEngine(DefaultOptions())
	if _, err := eng.Distance(series.Series{}, series.Series{Values: []float64{1}}); err == nil {
		t.Fatal("empty x accepted")
	}
}

func TestEngineCaching(t *testing.T) {
	x, y := makePair(5, 150, 0.3)
	eng := NewEngine(DefaultOptions())
	if eng.CacheSize() != 0 {
		t.Fatal("cache not empty initially")
	}
	if _, err := eng.Distance(x, y); err != nil {
		t.Fatal(err)
	}
	if eng.CacheSize() != 2 {
		t.Fatalf("cache size = %d, want 2", eng.CacheSize())
	}
	// Second call hits the cache: ExtractTime must be ~0.
	res, err := eng.Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtractTime > res.DPTime*100 && res.ExtractTime.Microseconds() > 500 {
		t.Fatalf("cache miss on second call: extract=%v", res.ExtractTime)
	}
	eng.ClearCache()
	if eng.CacheSize() != 0 {
		t.Fatal("ClearCache left entries")
	}
}

func TestEngineUncachedWithoutIDs(t *testing.T) {
	x, y := makePair(6, 150, 0.3)
	x.ID, y.ID = "", ""
	eng := NewEngine(DefaultOptions())
	if _, err := eng.Distance(x, y); err != nil {
		t.Fatal(err)
	}
	if eng.CacheSize() != 0 {
		t.Fatalf("unkeyed series cached: %d entries", eng.CacheSize())
	}
}

func TestEngineCacheDisabled(t *testing.T) {
	x, y := makePair(7, 150, 0.3)
	opts := DefaultOptions()
	opts.CacheFeatures = false
	eng := NewEngine(opts)
	if _, err := eng.Distance(x, y); err != nil {
		t.Fatal(err)
	}
	if eng.CacheSize() != 0 {
		t.Fatal("cache filled although disabled")
	}
}

func TestEngineWarm(t *testing.T) {
	x, y := makePair(8, 150, 0.3)
	eng := NewEngine(DefaultOptions())
	d, err := eng.Warm([]series.Series{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("warm reported zero duration")
	}
	if eng.CacheSize() != 2 {
		t.Fatalf("warm cached %d series, want 2", eng.CacheSize())
	}
	res, err := eng.Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtractTime.Milliseconds() > 50 {
		t.Fatalf("warmed engine still extracting: %v", res.ExtractTime)
	}
}

func TestEngineComputePath(t *testing.T) {
	x, y := makePair(9, 150, 0.3)
	opts := optsFor(band.AdaptiveCoreAdaptiveWidth)
	opts.ComputePath = true
	eng := NewEngine(opts)
	res, err := eng.Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path == nil {
		t.Fatal("no path computed")
	}
	if err := res.Path.Validate(x.Len(), y.Len()); err != nil {
		t.Fatal(err)
	}
	if c := res.Path.Cost(x.Values, y.Values, nil); math.Abs(c-res.Distance) > 1e-9 {
		t.Fatalf("path cost %v != distance %v", c, res.Distance)
	}
}

func TestEngineKeepBand(t *testing.T) {
	x, y := makePair(10, 150, 0.3)
	opts := optsFor(band.AdaptiveCoreAdaptiveWidth)
	opts.KeepBand = true
	eng := NewEngine(opts)
	res, err := eng.Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Band.N() != x.Len() || res.Band.M != y.Len() {
		t.Fatalf("kept band shape (%d,%d)", res.Band.N(), res.Band.M)
	}
	if res.Band.Cells() != res.CellsFilled {
		t.Fatalf("band cells %d != filled %d", res.Band.Cells(), res.CellsFilled)
	}
	// Without KeepBand the band must be zero (not retained).
	opts.KeepBand = false
	res2, err := NewEngine(opts).Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Band.N() != 0 {
		t.Fatal("band retained although KeepBand=false")
	}
}

func TestEngineMinPairsFallback(t *testing.T) {
	// Pure noise series yield no reliable matches; the engine must fall
	// back (Pairs=0 reported) and still return a valid distance.
	rng := rand.New(rand.NewSource(11))
	x := series.New("nx", 0, make([]float64, 120))
	y := series.New("ny", 0, make([]float64, 120))
	for i := range x.Values {
		x.Values[i] = rng.NormFloat64()
		y.Values[i] = rng.NormFloat64()
	}
	opts := optsFor(band.AdaptiveCoreAdaptiveWidth)
	opts.MinPairs = 1000000 // force the fallback
	eng := NewEngine(opts)
	res, err := eng.Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 0 {
		t.Fatalf("fallback did not reset pairs: %d", res.Pairs)
	}
	full, err := dtw.Distance(x.Values, y.Values, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < full-1e-9 {
		t.Fatal("fallback underestimates")
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	x, y := makePair(12, 180, 0.3)
	eng := NewEngine(DefaultOptions())
	want, err := eng.Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				res, err := eng.Distance(x, y)
				if err != nil {
					errs <- err
					return
				}
				if math.Abs(res.Distance-want.Distance) > 1e-9 {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEngineAlign(t *testing.T) {
	x, y := makePair(13, 200, 0.3)
	eng := NewEngine(DefaultOptions())
	al, err := eng.Align(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if al.NX != 200 || al.NY != 200 {
		t.Fatalf("alignment lengths (%d,%d)", al.NX, al.NY)
	}
	if len(al.Pairs) == 0 {
		t.Fatal("no pairs between series and its warped copy")
	}
}

func TestEngineTimingFieldsPopulated(t *testing.T) {
	x, y := makePair(14, 200, 0.3)
	eng := NewEngine(optsFor(band.AdaptiveCoreAdaptiveWidth))
	res, err := eng.Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.DPTime <= 0 {
		t.Fatal("DPTime not measured")
	}
	if res.MatchTime <= 0 {
		t.Fatal("MatchTime not measured")
	}
	if res.GridCells != 200*200 {
		t.Fatalf("GridCells = %d", res.GridCells)
	}
	// Non-adaptive strategies must not pay matching costs.
	res2, err := NewEngine(optsFor(band.FixedCoreFixedWidth)).Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MatchTime != 0 || res2.ExtractTime != 0 {
		t.Fatalf("fixed strategy measured match/extract time: %v %v", res2.MatchTime, res2.ExtractTime)
	}
}

func TestEnginePropertyEstimateAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		size := int(seed % 7)
		if size < 0 {
			size = -size
		}
		x, y := makePair(seed, 80+size*20, 0.5)
		eng := NewEngine(optsFor(band.AdaptiveCoreAdaptiveWidthAvg))
		res, err := eng.Distance(x, y)
		if err != nil {
			return false
		}
		return !math.IsNaN(res.Distance) && !math.IsInf(res.Distance, 0) && res.Distance >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultOptions(t *testing.T) {
	opts := DefaultOptions()
	if opts.Band.Strategy != band.AdaptiveCoreAdaptiveWidth {
		t.Fatalf("default strategy = %v", opts.Band.Strategy)
	}
	if !opts.CacheFeatures {
		t.Fatal("default caching off")
	}
	eng := NewEngine(opts)
	if eng.Options().Band.Strategy != band.AdaptiveCoreAdaptiveWidth {
		t.Fatal("Options() does not round-trip")
	}
}

// TestEngineDistanceUnder pins the threshold-aware entry point: an
// infinite budget is bit-identical to Distance, a tight budget abandons
// with a partial distance that lower-bounds the true one while skipping
// band cells, and a budget at the true distance (exclusive) never
// abandons. Exercised across strategies so every band builder feeds the
// abandoning DP.
func TestEngineDistanceUnder(t *testing.T) {
	strategies := []band.Strategy{
		band.FullGrid, band.FixedCoreFixedWidth, band.AdaptiveCoreAdaptiveWidth,
	}
	for _, s := range strategies {
		t.Run(s.String(), func(t *testing.T) {
			x, y := makePair(7, 160, 0.3)
			eng := NewEngine(optsFor(s))
			full, err := eng.Distance(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if full.Abandoned {
				t.Fatal("Distance reported an abandoned computation")
			}
			if full.BandCells != full.CellsFilled {
				t.Fatalf("full run filled %d cells of a %d-cell band", full.CellsFilled, full.BandCells)
			}
			inf, err := eng.DistanceUnder(x, y, math.Inf(1))
			if err != nil {
				t.Fatal(err)
			}
			if inf.Abandoned || inf.Distance != full.Distance || inf.CellsFilled != full.CellsFilled {
				t.Fatalf("budget=+Inf diverges from Distance: %+v vs %+v", inf, full)
			}
			at, err := eng.DistanceUnder(x, y, full.Distance)
			if err != nil {
				t.Fatal(err)
			}
			if at.Abandoned || at.Distance != full.Distance {
				t.Fatalf("budget at the true distance abandoned: %+v", at)
			}
			tight, err := eng.DistanceUnder(x, y, full.Distance*0.05)
			if err != nil {
				t.Fatal(err)
			}
			if !tight.Abandoned {
				t.Fatalf("budget %v did not abandon (distance %v)", full.Distance*0.05, full.Distance)
			}
			if tight.Distance <= full.Distance*0.05 {
				t.Fatalf("partial %v not above budget %v", tight.Distance, full.Distance*0.05)
			}
			if tight.Distance > full.Distance+1e-9*(1+math.Abs(full.Distance)) {
				t.Fatalf("partial %v exceeds true distance %v", tight.Distance, full.Distance)
			}
			if tight.CellsFilled >= tight.BandCells {
				t.Fatalf("abandoned run filled the whole band: %d of %d", tight.CellsFilled, tight.BandCells)
			}
		})
	}
}

// TestEngineDistanceUnderSymmetric checks the symmetric canonicalisation
// also governs the threshold-aware path: both orientations run the
// identical computation, abandoned or not.
func TestEngineDistanceUnderSymmetric(t *testing.T) {
	x, y := makePair(9, 140, 0.3)
	opts := optsFor(band.AdaptiveCoreAdaptiveWidth)
	opts.Band.Symmetric = true
	eng := NewEngine(opts)
	full, err := eng.Distance(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []float64{math.Inf(1), full.Distance * 0.1} {
		a, err := eng.DistanceUnder(x, y, budget)
		if err != nil {
			t.Fatal(err)
		}
		b, err := eng.DistanceUnder(y, x, budget)
		if err != nil {
			t.Fatal(err)
		}
		if a.Distance != b.Distance || a.Abandoned != b.Abandoned || a.CellsFilled != b.CellsFilled {
			t.Fatalf("budget %v: orientations diverge: %+v vs %+v", budget, a, b)
		}
	}
}

// TestEngineDistanceUnderComputePath: path recovery needs the full band,
// so the budget is ignored rather than producing a pathless partial.
func TestEngineDistanceUnderComputePath(t *testing.T) {
	x, y := makePair(11, 120, 0.3)
	opts := optsFor(band.FixedCoreFixedWidth)
	opts.ComputePath = true
	eng := NewEngine(opts)
	res, err := eng.DistanceUnder(x, y, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandoned {
		t.Fatal("ComputePath run abandoned")
	}
	if len(res.Path) == 0 {
		t.Fatal("no path recovered")
	}
	if err := res.Path.Validate(x.Len(), y.Len()); err != nil {
		t.Fatal(err)
	}
}
