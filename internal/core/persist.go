package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"sdtw/internal/sift"
)

// cacheSnapshot is the on-wire form of the feature cache.
type cacheSnapshot struct {
	// Version guards against decoding snapshots written by incompatible
	// layouts of sift.Feature.
	Version  int
	Features map[string][]sift.Feature
}

const cacheVersion = 1

// SaveFeatures serialises the engine's feature cache. The paper's §3.4
// observes that salient features are a one-time cost that "can be stored
// and indexed along with the time series and re-used repeatedly"; this is
// that storage path. The snapshot is only meaningful for engines sharing
// the same feature configuration.
func (e *Engine) SaveFeatures(w io.Writer) error {
	e.mu.RLock()
	snap := cacheSnapshot{Version: cacheVersion, Features: make(map[string][]sift.Feature, len(e.cache))}
	for id, feats := range e.cache {
		snap.Features[id] = feats
	}
	e.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encoding feature cache: %w", err)
	}
	return nil
}

// LoadFeatures restores a feature cache written by SaveFeatures, merging
// it into the current cache (existing entries are overwritten).
func (e *Engine) LoadFeatures(r io.Reader) error {
	var snap cacheSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: decoding feature cache: %w", err)
	}
	if snap.Version != cacheVersion {
		return fmt.Errorf("core: feature cache version %d, want %d", snap.Version, cacheVersion)
	}
	e.mu.Lock()
	for id, feats := range snap.Features {
		e.cache[id] = feats
	}
	e.mu.Unlock()
	return nil
}
