package analyzers

import (
	"go/ast"
	"go/types"
)

// dpEntryPoints lists the DP/kernel entry points that must never run
// while an exclusive mutex is held: they are O(n·m) per call, so holding
// a lock across them serializes every reader behind the slowest DP. The
// sanctioned patterns (internal/shard) are copy-on-write snapshots or an
// RLock: searches share the lock, only mutation excludes.
var dpEntryPoints = map[string]map[string]bool{
	"sdtw/internal/dtw": {
		"Distance":         true,
		"DistanceWithPath": true,
		"Banded":           true,
		"BandedWS":         true,
		"BandedAbandonWS":  true,
		"BandedAbandonCtx": true,
		"BandedWithPath":   true,
		"Subsequence":      true,
	},
	"sdtw/internal/lower": {
		"Kim":         true,
		"Keogh":       true,
		"KeoghUnder":  true,
		"KeoghPair":   true,
		"Cascade":     true,
		"NewEnvelope": true,
	},
	"sdtw/internal/core": {
		"Distance":         true,
		"DistanceUnder":    true,
		"DistanceUnderCtx": true,
	},
	"sdtw/internal/retrieve": {
		"Search":      true,
		"SearchBatch": true,
	},
}

// Lockheld flags calls into DP/kernel entry points made while a
// sync.Mutex or the write half of a sync.RWMutex is held. RLock regions
// are exempt: concurrent readers may run the DP (the retrieve.Core
// pattern); exclusive regions must not (the internal/shard COW
// discipline).
var Lockheld = &Analyzer{
	Name: "lockheld",
	Doc: "flag calls into DP/kernel functions while a sync.Mutex/RWMutex is " +
		"exclusively locked (searches belong under COW snapshots or RLock)",
	Run: runLockheld,
}

func runLockheld(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			pass.checkLockRegions(block)
			return true
		})
	}
	return nil
}

// checkLockRegions scans one statement list for mu.Lock() calls and
// flags DP calls between the Lock and the matching same-level
// mu.Unlock(); with `defer mu.Unlock()` (or no explicit unlock) the
// region extends to the end of the block.
func (p *Pass) checkLockRegions(block *ast.BlockStmt) {
	for i, stmt := range block.List {
		key, ok := p.syncMethodCall(stmt, "Lock")
		if !ok {
			continue
		}
		end := len(block.List)
		for j := i + 1; j < len(block.List); j++ {
			if ukey, ok := p.syncMethodCall(block.List[j], "Unlock"); ok && ukey == key {
				end = j
				break
			}
		}
		for _, held := range block.List[i+1 : end] {
			if _, isDefer := held.(*ast.DeferStmt); isDefer {
				continue
			}
			p.checkDPCalls(held, key)
		}
	}
}

// syncMethodCall reports whether stmt is an expression statement calling
// sync.(*Mutex).name or sync.(*RWMutex).name, returning the printed
// receiver expression as the region key.
func (p *Pass) syncMethodCall(stmt ast.Stmt, name string) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return "", false
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	named := namedOf(recv.Type())
	if named == nil || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", false
	}
	return exprString(sel.X), true
}

// checkDPCalls flags every DP entry-point call in the subtree of stmt.
func (p *Pass) checkDPCalls(stmt ast.Stmt, lockKey string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // deferred/spawned closures run outside the region
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := p.calleeObj(call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if set, ok := dpEntryPoints[basePath(fn.Pkg().Path())]; ok && set[fn.Name()] {
			p.Reportf(call.Pos(),
				"%s.%s (O(n·m) DP/kernel work) called while %q is exclusively locked; run it under a COW snapshot or RLock, or release the lock first",
				fn.Pkg().Name(), fn.Name(), lockKey)
		}
		return true
	})
}
