package analyzers

import "testing"

func TestErrlint(t *testing.T) {
	runGolden(t, Errlint, "a")
}

func TestErrlintStoreSentinels(t *testing.T) {
	runGolden(t, Errlint, "storeuser")
}

func TestErrlintHubSentinels(t *testing.T) {
	runGolden(t, Errlint, "hubuser")
}
