package analyzers

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// ListedPackage is the subset of `go list -json` output the driver and
// test harness need.
type ListedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path      string
		GoVersion string
	}
}

// GoList shells out to `go list -deps -export -json <patterns>` and
// returns every package in the dependency graph. It works fully offline:
// -export compiles (or reuses from the build cache) export data for each
// dependency.
func GoList(dir string, patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p ListedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportMap builds an import-path → export-data-file map from go list
// output, for use with the gc importer's lookup function.
func ExportMap(pkgs []*ListedPackage) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// NewInfo returns a types.Info with all the maps the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// ParseFiles parses the named Go files (resolved relative to dir when
// not absolute) with comments retained.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckFiles type-checks parsed files as package path, resolving imports
// through imp.
func CheckFiles(fset *token.FileSet, path, goVersion string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// GCImporter returns a types.Importer that reads gc export data through
// the given import-path → file map. importMap optionally rewrites import
// paths (vet.cfg ImportMap semantics) before the file lookup.
func GCImporter(fset *token.FileSet, importMap, packageFile map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// RunAnalyzers applies every analyzer to one checked package and returns
// the diagnostics sorted by position.
func RunAnalyzers(as []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, []error) {
	var (
		diags []Diagnostic
		errs  []error
	)
	for _, a := range as {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				d.Category = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			errs = append(errs, fmt.Errorf("%s: %v", a.Name, err))
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, errs
}
