package analyzers

import "testing"

func TestFmaroundFlagsKernelPackages(t *testing.T) {
	runGolden(t, Fmaround, "sdtw/internal/dtw")
}

func TestFmaroundSilentOutsideKernelPackages(t *testing.T) {
	runGolden(t, Fmaround, "other")
}
