package analyzers

import (
	"go/ast"
	"go/token"
)

// fmaKernelPackages are the packages whose float64 arithmetic must stay
// bit-identical between the generic and monomorphized kernels. On FMA
// architectures (arm64, ppc64) the Go compiler may contract a*b + c into
// a fused multiply-add, changing the rounding; an explicit float64(...)
// conversion around the product forces the intermediate rounding and
// keeps all platforms bit-identical (the PR 5 discipline).
var fmaKernelPackages = map[string]bool{
	"sdtw/internal/dtw":    true,
	"sdtw/internal/lower":  true,
	"sdtw/internal/series": true,
}

// Fmaround flags float64 multiply-add shapes (a + b*c, a - b*c, a += b*c)
// in kernel packages whose product is not rounded through an explicit
// float64(...) conversion.
var Fmaround = &Analyzer{
	Name: "fmaround",
	Doc: "flag float64 multiply-add expressions in kernel packages that are not " +
		"rounded through an explicit float64(...) conversion (FMA-contraction " +
		"bit-identity guard)",
	Run: runFmaround,
}

func runFmaround(pass *Pass) error {
	if !fmaKernelPackages[basePath(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.inTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.ADD || n.Op == token.SUB {
					pass.checkFMAOperand(n.X)
					pass.checkFMAOperand(n.Y)
				}
			case *ast.AssignStmt:
				if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN) && len(n.Rhs) == 1 {
					pass.checkFMAOperand(n.Rhs[0])
				}
			}
			return true
		})
	}
	return nil
}

// checkFMAOperand reports e if it is a non-constant float64 product that
// an enclosing add/sub could contract into an FMA.
func (p *Pass) checkFMAOperand(e ast.Expr) {
	mul, ok := unparen(e).(*ast.BinaryExpr)
	if !ok || mul.Op != token.MUL {
		return
	}
	if !p.isFloat64(mul) || p.isConstExpr(mul) {
		return
	}
	p.Reportf(mul.Pos(),
		"float64 multiply-add %q may be contracted into an FMA on arm64/ppc64; wrap the product in an explicit float64(...) conversion to pin the intermediate rounding",
		exprString(mul))
}
