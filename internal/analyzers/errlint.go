package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Errlint enforces the sentinel-error discipline: sentinels must be
// wrapped with %w (so errors.Is keeps matching through wrapping) and
// matched with errors.Is rather than ==/!= or a value switch.
var Errlint = &Analyzer{
	Name: "errlint",
	Doc: "flag fmt.Errorf of a sentinel error without %w, and sentinel comparisons " +
		"using ==/!= or switch instead of errors.Is",
	Run: runErrlint,
}

func runErrlint(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				pass.checkSentinelCompare(n)
			case *ast.SwitchStmt:
				pass.checkSentinelSwitch(n)
			case *ast.CallExpr:
				pass.checkErrorfWrap(n)
			}
			return true
		})
	}
	return nil
}

// isSentinel reports whether e resolves to a package-level sentinel
// error variable: an Err*-named error var, or one of the well-known
// std sentinels (context.Canceled/DeadlineExceeded, io.EOF).
func (p *Pass) isSentinel(e ast.Expr) (types.Object, bool) {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, false
	}
	obj, ok := p.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil, false
	}
	switch obj.Pkg().Path() {
	case "context":
		if obj.Name() == "Canceled" || obj.Name() == "DeadlineExceeded" {
			return obj, true
		}
	case "io":
		if obj.Name() == "EOF" {
			return obj, true
		}
	}
	if !strings.HasPrefix(obj.Name(), "Err") {
		return nil, false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return obj, types.Implements(obj.Type(), errType) || types.Identical(obj.Type(), errType.Underlying()) ||
		types.AssignableTo(obj.Type(), types.Universe.Lookup("error").Type())
}

func (p *Pass) checkSentinelCompare(be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := p.TypesInfo.Types[e]
		return ok && tv.IsNil()
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		other := be.Y
		if side == be.Y {
			other = be.X
		}
		if obj, ok := p.isSentinel(side); ok && !isNil(other) {
			p.Reportf(be.Pos(),
				"sentinel %s compared with %s; use errors.Is so wrapped errors still match",
				obj.Name(), be.Op)
			return
		}
	}
}

func (p *Pass) checkSentinelSwitch(sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if t := p.TypesInfo.TypeOf(sw.Tag); t == nil || !types.AssignableTo(t, types.Universe.Lookup("error").Type()) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if obj, ok := p.isSentinel(e); ok {
				p.Reportf(e.Pos(),
					"sentinel %s matched in a value switch; use errors.Is so wrapped errors still match",
					obj.Name())
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls where a sentinel argument's
// format verb is not %w.
func (p *Pass) checkErrorfWrap(call *ast.CallExpr) {
	if !isPkgFunc(p.calleeObj(call), "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := p.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		obj, ok := p.isSentinel(arg)
		if !ok {
			continue
		}
		verb := byte(0)
		if i < len(verbs) {
			verb = verbs[i]
		}
		if verb != 'w' {
			p.Reportf(arg.Pos(),
				"sentinel %s formatted with %%%c in fmt.Errorf; use %%w so errors.Is can unwrap it",
				obj.Name(), printableVerb(verb))
		}
	}
}

// formatVerbs returns, per operand position, the verb letter consuming
// it. A '*' width/precision consumes an operand of its own (recorded as
// '*').
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision — '*' consumes an argument.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("#+- 0123456789.[]", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			if format[i] != '%' { // %% consumes nothing
				verbs = append(verbs, format[i])
			}
		}
	}
	return verbs
}

func printableVerb(v byte) byte {
	if v == 0 {
		return '?'
	}
	return v
}
