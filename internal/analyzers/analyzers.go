// Package analyzers hosts the sdtwlint analyzer suite: small,
// dependency-free static analyses that mechanically enforce the repo's
// hand-maintained invariants (kernel bit-identity, nil-safe contexts,
// config-struct construction, sentinel-error discipline, hot-path
// allocation hygiene, and the no-DP-under-lock rule).
//
// The framework below is a deliberately minimal re-implementation of the
// go/analysis Analyzer/Pass shape on top of the standard library only, so
// the module stays free of external dependencies. cmd/sdtwlint drives the
// same analyzers both standalone and through the `go vet -vettool`
// protocol.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static analysis: a name, a doc string shown in
// -flags/-help output, and a Run function applied once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is a single finding at a position. Category is filled in by
// the driver with the reporting analyzer's name.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full sdtwlint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Fmaround,
		Nilctx,
		Paramlit,
		Errlint,
		Hotalloc,
		Lockheld,
	}
}

// ---- shared helpers ----

// basePath strips the " [pkg.test]" suffix the go command appends to the
// import path of in-package test variants, so path comparisons treat the
// test variant as the package it shadows.
func basePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// unparen removes any enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// inTestFile reports whether pos falls in a _test.go file.
func (p *Pass) inTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// isFloat64 reports whether e's type is (an alias of) float64.
func (p *Pass) isFloat64(e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// isConstExpr reports whether e folds to a compile-time constant.
func (p *Pass) isConstExpr(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// calleeObj resolves the object a call expression invokes, looking
// through parentheses. Returns nil for type conversions, builtins bound
// to non-idents, and anything else that doesn't resolve to an object.
func (p *Pass) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return p.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return basePath(f.Pkg().Path()) == pkgPath && f.Name() == name
}

// hasDirective reports whether doc contains the given //-style directive
// (e.g. "sdtw:hotpath") as its own comment line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if strings.TrimSpace(text) == directive {
			return true
		}
	}
	return false
}

// namedOf returns the *types.Named behind t (looking through one level
// of pointer), or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// exprString renders a (small) expression for use as a map key or in a
// diagnostic message. It is positional-information-free, so two
// syntactically identical expressions compare equal.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprString(a)
		}
		return exprString(e.Fun) + "(" + strings.Join(args, ", ") + ")"
	case *ast.BasicLit:
		return e.Value
	case *ast.BinaryExpr:
		return exprString(e.X) + " " + e.Op.String() + " " + exprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.SliceExpr:
		s := exprString(e.X) + "["
		if e.Low != nil {
			s += exprString(e.Low)
		}
		s += ":"
		if e.High != nil {
			s += exprString(e.High)
		}
		return s + "]"
	default:
		return fmt.Sprintf("%T", e)
	}
}
