package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc audits functions annotated with the //sdtw:hotpath directive
// for allocation-forcing constructs. It complements (not replaces) the
// testing.AllocsPerRun pins: the pins prove steady-state behaviour, the
// analyzer points at the exact expression when a pin regresses and
// catches new hot code before it ever gets a pin.
//
// Sanctioned idioms that stay silent:
//   - x = append(x, ...): amortized reuse of a caller-owned buffer;
//   - fmt.Errorf/errors.New directly inside a return statement: error
//     construction on the cold exit path;
//   - defer outside loops (open-coded by the compiler since Go 1.14);
//   - plain struct literals (stack-allocated values).
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-forcing constructs (make/new, non-reuse append, fmt calls, " +
		"interface boxing, closures, &composite literals, go statements, defer in " +
		"loops) inside functions annotated //sdtw:hotpath",
	Run: runHotalloc,
}

func runHotalloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "sdtw:hotpath") {
				continue
			}
			w := &hotWalker{pass: pass, fn: fd.Name.Name}
			w.stmts(fd.Body.List, false)
		}
	}
	return nil
}

type hotWalker struct {
	pass *Pass
	fn   string
}

// stmts walks a statement list; inLoop tracks whether the statements
// execute inside a for/range body (where defer is disallowed).
func (w *hotWalker) stmts(list []ast.Stmt, inLoop bool) {
	for _, s := range list {
		w.stmt(s, inLoop)
	}
}

func (w *hotWalker) stmt(s ast.Stmt, inLoop bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List, inLoop)
	case *ast.ForStmt:
		w.stmt(s.Init, inLoop)
		w.expr(s.Cond)
		w.stmt(s.Post, true)
		w.stmts(s.Body.List, true)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmts(s.Body.List, true)
	case *ast.IfStmt:
		w.stmt(s.Init, inLoop)
		w.expr(s.Cond)
		w.stmts(s.Body.List, inLoop)
		w.stmt(s.Else, inLoop)
	case *ast.SwitchStmt:
		w.stmt(s.Init, inLoop)
		w.expr(s.Tag)
		w.stmts(s.Body.List, inLoop)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, inLoop)
		w.stmt(s.Assign, inLoop)
		w.stmts(s.Body.List, inLoop)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.stmts(s.Body, inLoop)
	case *ast.SelectStmt:
		w.stmts(s.Body.List, inLoop)
	case *ast.CommClause:
		w.stmt(s.Comm, inLoop)
		w.stmts(s.Body, inLoop)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if call, ok := unparen(r).(*ast.CallExpr); ok && w.isErrorCtor(call) {
				continue // error construction on the cold exit path
			}
			w.expr(r)
		}
	case *ast.DeferStmt:
		if inLoop {
			w.pass.Reportf(s.Pos(), "defer inside a loop in hot path %s allocates a defer record per iteration", w.fn)
		}
		w.expr(s.Call.Fun)
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.GoStmt:
		w.pass.Reportf(s.Pos(), "go statement in hot path %s allocates a goroutine per call", w.fn)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, inLoop)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e)
				return false
			}
			return true
		})
	}
}

// assign handles the sanctioned self-append idiom x = append(x, ...).
func (w *hotWalker) assign(s *ast.AssignStmt) {
	for i, rhs := range s.Rhs {
		if call, ok := unparen(rhs).(*ast.CallExpr); ok && w.isBuiltin(call, "append") &&
			s.Tok == token.ASSIGN && i < len(s.Lhs) && len(call.Args) > 0 &&
			exprString(s.Lhs[i]) == exprString(call.Args[0]) {
			for _, a := range call.Args[1:] {
				w.expr(a)
			}
			continue
		}
		w.expr(rhs)
	}
	for _, lhs := range s.Lhs {
		w.expr(lhs)
	}
}

func (w *hotWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := unparen(e).(type) {
	case *ast.FuncLit:
		w.pass.Reportf(e.Pos(), "closure in hot path %s may escape and allocate", w.fn)
		// don't descend: the closure body runs under its own budget
	case *ast.CompositeLit:
		w.compositeLit(e, false)
	case *ast.UnaryExpr:
		if lit, ok := unparen(e.X).(*ast.CompositeLit); ok && e.Op == token.AND {
			w.compositeLit(lit, true)
			return
		}
		w.expr(e.X)
	case *ast.CallExpr:
		w.call(e)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	}
}

func (w *hotWalker) compositeLit(lit *ast.CompositeLit, addressed bool) {
	t := w.pass.TypesInfo.TypeOf(lit)
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			w.pass.Reportf(lit.Pos(), "slice/map literal in hot path %s allocates; hoist it to a package var or workspace field", w.fn)
		default:
			if addressed {
				w.pass.Reportf(lit.Pos(), "&composite literal in hot path %s escapes to the heap; reuse a workspace value instead", w.fn)
			}
		}
	}
	for _, el := range lit.Elts {
		w.expr(el)
	}
}

func (w *hotWalker) call(call *ast.CallExpr) {
	// Type conversions: flag conversion to an interface type.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			w.pass.Reportf(call.Pos(), "conversion to interface type in hot path %s boxes its operand on the heap", w.fn)
		}
		for _, a := range call.Args {
			w.expr(a)
		}
		return
	}

	if w.isBuiltin(call, "make") || w.isBuiltin(call, "new") {
		name := "make"
		if w.isBuiltin(call, "new") {
			name = "new"
		}
		w.pass.Reportf(call.Pos(), "%s in hot path %s allocates; take a caller-provided buffer or workspace instead", name, w.fn)
	} else if w.isBuiltin(call, "append") {
		// append whose result is not self-assigned (handled in assign)
		// grows a fresh backing array the caller never sees again.
		w.pass.Reportf(call.Pos(), "append without self-assignment in hot path %s allocates a new backing array", w.fn)
	} else if callee := w.pass.calleeObj(call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		w.pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates (boxing + formatting); keep fmt off the hot path", callee.Name(), w.fn)
	} else {
		w.boxedArgs(call)
	}

	w.expr(call.Fun)
	for _, a := range call.Args {
		w.expr(a)
	}
}

// boxedArgs flags concrete-typed arguments passed to interface-typed
// parameters — an implicit conversion that heap-boxes the value.
func (w *hotWalker) boxedArgs(call *ast.CallExpr) {
	callee, ok := w.pass.calleeObj(call).(*types.Func)
	if !ok {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := w.pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if tv, ok := w.pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		w.pass.Reportf(arg.Pos(),
			"argument %q boxed into interface parameter of %s in hot path %s; this conversion allocates",
			exprString(arg), callee.Name(), w.fn)
	}
}

// isErrorCtor reports whether call constructs an error via
// fmt.Errorf or errors.New (sanctioned inside return statements).
func (w *hotWalker) isErrorCtor(call *ast.CallExpr) bool {
	obj := w.pass.calleeObj(call)
	return isPkgFunc(obj, "fmt", "Errorf") || isPkgFunc(obj, "errors", "New")
}

func (w *hotWalker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
