package analyzers

import "testing"

func TestParamlitFlagsExternalLiterals(t *testing.T) {
	runGolden(t, Paramlit, "a")
}

func TestParamlitSilentInDefiningPackage(t *testing.T) {
	runGolden(t, Paramlit, "sdtw/internal/retrieve")
}
