package analyzers

import "testing"

func TestLockheld(t *testing.T) {
	runGolden(t, Lockheld, "a")
}
