package analyzers

import (
	"go/ast"
)

// paramStructs maps trap-prone config struct types (qualified by package
// path) to the constructor that fixes their zero-value traps. A plain
// composite literal of one of these types outside its defining package
// silently inherits trap zero values (retrieve.Params: Exclude 0 means
// "exclude nothing adjacent", Threshold 0 prunes everything), so all
// external construction must start from the constructor.
var paramStructs = map[string]string{
	"sdtw/internal/retrieve.Params": "DefaultParams()",
}

// Paramlit flags composite literals of trap-prone config structs outside
// their defining package; callers must start from the constructor and
// override fields.
var Paramlit = &Analyzer{
	Name: "paramlit",
	Doc: "flag composite literals of config structs with meaningful zero values " +
		"(retrieve.Params et al.) outside their defining package; construct via " +
		"their DefaultParams-style constructor instead",
	Run: runParamlit,
}

func runParamlit(pass *Pass) error {
	selfPath := basePath(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			named := namedOf(pass.TypesInfo.TypeOf(lit))
			if named == nil || named.Obj().Pkg() == nil {
				return true
			}
			defPath := basePath(named.Obj().Pkg().Path())
			key := defPath + "." + named.Obj().Name()
			ctor, trap := paramStructs[key]
			if !trap || defPath == selfPath {
				return true
			}
			pass.Reportf(lit.Pos(),
				"composite literal of %s bypasses its zero-value defaults (zero Exclude/Threshold are traps); start from %s.%s and override fields",
				key, named.Obj().Pkg().Name(), ctor)
			return true
		})
	}
	return nil
}
