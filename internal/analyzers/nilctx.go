package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilctx enforces the repo's nil-tolerant context contract: public entry
// points accept a nil context.Context meaning "no cancellation".
//
// Rule 1: an exported function or method that takes a context.Context and
// calls ctx.Err() or ctx.Done() directly must guard the context against
// nil (ctx != nil / ctx == nil) somewhere in its body, or route through
// the nil-safe helpers (ctxErr / streamCtxErr), which it trivially
// satisfies by not touching ctx.Err/Done at all.
//
// Rule 2: an exported function without a context parameter must not bury
// context.Background() / context.TODO() in calls to non-context-package
// functions — that hides cancellation from the caller. Accept a ctx (nil
// is fine for the nil-safe callees) instead.
var Nilctx = &Analyzer{
	Name: "nilctx",
	Doc: "flag exported entry points that dereference a possibly-nil context.Context " +
		"without a nil guard, or that hide cancellation behind context.Background()/TODO()",
	Run: runNilctx,
}

func runNilctx(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ctxParams := pass.contextParams(fd)
			if len(ctxParams) > 0 {
				pass.checkCtxDeref(fd, ctxParams)
			} else {
				pass.checkHiddenBackground(fd)
			}
		}
	}
	return nil
}

// contextParams returns the objects of fd's parameters whose type is
// context.Context.
func (p *Pass) contextParams(fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		named := namedOf(p.TypesInfo.TypeOf(field.Type))
		if named == nil || named.Obj().Pkg() == nil {
			continue
		}
		if named.Obj().Pkg().Path() != "context" || named.Obj().Name() != "Context" {
			continue
		}
		for _, name := range field.Names {
			if obj := p.TypesInfo.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkCtxDeref flags ctx.Err()/ctx.Done() calls in fd when no nil guard
// on that context appears anywhere in the body.
func (p *Pass) checkCtxDeref(fd *ast.FuncDecl, ctxParams []types.Object) {
	params := make(map[types.Object]bool, len(ctxParams))
	for _, o := range ctxParams {
		params[o] = true
	}
	guarded := make(map[types.Object]bool)
	type deref struct {
		pos  token.Pos
		obj  types.Object
		name string
	}
	var derefs []deref

	isParamIdent := func(e ast.Expr) types.Object {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := p.TypesInfo.Uses[id]; obj != nil && params[obj] {
			return obj
		}
		return nil
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := p.TypesInfo.Types[e]
		return ok && tv.IsNil()
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if obj := isParamIdent(n.X); obj != nil && isNil(n.Y) {
					guarded[obj] = true
				}
				if obj := isParamIdent(n.Y); obj != nil && isNil(n.X) {
					guarded[obj] = true
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name != "Err" && n.Sel.Name != "Done" {
				return true
			}
			if obj := isParamIdent(n.X); obj != nil {
				derefs = append(derefs, deref{n.Pos(), obj, n.Sel.Name})
			}
		}
		return true
	})

	for _, d := range derefs {
		if guarded[d.obj] {
			continue
		}
		p.Reportf(d.pos,
			"%s.%s() in exported %s dereferences a possibly-nil context; guard with %s != nil or route through the nil-safe helpers (ctxErr/streamCtxErr)",
			d.obj.Name(), d.name, fd.Name.Name, d.obj.Name())
	}
}

// checkHiddenBackground flags context.Background()/TODO() passed to
// module functions from an exported entry point with no ctx parameter.
func (p *Pass) checkHiddenBackground(fd *ast.FuncDecl) {
	if p.Pkg.Name() == "main" || p.inTestFile(fd.Pos()) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.calleeObj(call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() == "context" {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			obj := p.calleeObj(inner)
			if isPkgFunc(obj, "context", "Background") || isPkgFunc(obj, "context", "TODO") {
				p.Reportf(arg.Pos(),
					"exported %s has no context parameter but passes context.%s() to %s, hiding cancellation from callers; accept a context.Context (nil-safe callees accept nil)",
					fd.Name.Name, obj.Name(), callee.Name())
			}
		}
		return true
	})
}
