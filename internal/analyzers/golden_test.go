package analyzers

// analysistest-style golden harness: each analyzer has a testdata tree
// testdata/<analyzer>/src/<importpath>/ containing ordinary Go files
// annotated with `// want "regexp"` comments on the lines where a
// diagnostic must fire. Lines without a want comment must stay silent.
//
// Imports inside a testdata tree resolve first against the tree itself
// (so tests can fake module packages like sdtw/internal/retrieve at
// their real import paths), then against the standard library via gc
// export data obtained from one `go list -deps -export -json` call.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// stdExportPatterns covers every std package testdata files may import
// (transitive deps come along via -deps).
var stdExportPatterns = []string{"context", "errors", "fmt", "io", "math", "strings", "sync", "time"}

var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

func stdExportMap(t *testing.T) map[string]string {
	t.Helper()
	stdOnce.Do(func() {
		pkgs, err := GoList(".", stdExportPatterns...)
		if err != nil {
			stdErr = err
			return
		}
		stdExports = ExportMap(pkgs)
	})
	if stdErr != nil {
		t.Fatalf("loading std export data: %v", stdErr)
	}
	return stdExports
}

// testdataImporter resolves import paths against a testdata tree first,
// then the standard library.
type testdataImporter struct {
	t      *testing.T
	fset   *token.FileSet
	root   string // testdata/<analyzer>
	std    types.Importer
	loaded map[string]*loadedTestPkg
}

type loadedTestPkg struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
}

func (imp *testdataImporter) Import(path string) (*types.Package, error) {
	lp, err := imp.load(path)
	if err != nil {
		return nil, err
	}
	return lp.pkg, nil
}

func (imp *testdataImporter) load(path string) (*loadedTestPkg, error) {
	if lp, ok := imp.loaded[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(imp.root, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		pkg, err := imp.std.Import(path)
		if err != nil {
			return nil, fmt.Errorf("import %q: not in testdata tree and not resolvable from std: %v", path, err)
		}
		lp := &loadedTestPkg{pkg: pkg}
		imp.loaded[path] = lp
		return lp, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	files, err := ParseFiles(imp.fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg, info, err := CheckFiles(imp.fset, path, "go"+strings.TrimPrefix(runtime.Version(), "go"), files, imp)
	if err != nil {
		return nil, fmt.Errorf("type-checking testdata package %q: %v", path, err)
	}
	lp := &loadedTestPkg{pkg: pkg, info: info, files: files}
	imp.loaded[path] = lp
	return lp, nil
}

// runGolden loads testdata/<a.Name>/src/<target>, runs the analyzer, and
// matches its diagnostics against the `// want` expectations.
func runGolden(t *testing.T, a *Analyzer, target string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &testdataImporter{
		t:      t,
		fset:   fset,
		root:   filepath.Join("testdata", a.Name),
		std:    GCImporter(fset, nil, stdExportMap(t)),
		loaded: make(map[string]*loadedTestPkg),
	}
	lp, err := imp.load(target)
	if err != nil {
		t.Fatal(err)
	}

	diags, errs := RunAnalyzers([]*Analyzer{a}, fset, lp.files, lp.pkg, lp.info)
	for _, err := range errs {
		t.Errorf("analyzer error: %v", err)
	}

	wants := collectWants(t, fset, lp.files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for i, w := range wants[key] {
			if w == nil {
				continue
			}
			if w.MatchString(d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w)
			}
		}
	}
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants extracts `// want "re" ...` expectations keyed by
// file:line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					pat := arg[1]
					if pat == "" && arg[2] != "" {
						unq, err := strconv.Unquote(`"` + arg[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, arg[2], err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}
