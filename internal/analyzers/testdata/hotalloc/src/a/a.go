package a

import (
	"fmt"
	"sync"
)

// Sink consumes an interface; used to exercise boxing detection.
func Sink(v interface{}) { _ = v }

// Hot exercises the allocation-forcing constructs hotalloc must flag and
// the sanctioned idioms it must leave alone.
//
//sdtw:hotpath
func Hot(dst, src []float64, mu *sync.Mutex) ([]float64, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("empty input: %d values", len(src)) // silent: error ctor on exit
	}
	buf := make([]float64, len(src)) // want `make`
	copy(buf, src)
	dst = append(dst, buf...) // silent: self-append reuse idiom
	grown := append(src, 1)   // want `append`
	fmt.Println(len(grown))   // want `fmt`
	f := func() { _ = dst }   // want `closure`
	f()
	Sink(src[0]) // want `boxed`
	for i := range src {
		mu.Lock()
		defer mu.Unlock() // want `defer`
		_ = i
	}
	return dst, nil
}

// Convert boxes through an explicit interface conversion.
//
//sdtw:hotpath
func Convert(v int) interface{} {
	return interface{}(v) // want `interface type`
}

type ws struct{ buf []float64 }

// Escape heap-allocates a workspace per call.
//
//sdtw:hotpath
func Escape() *ws {
	return &ws{} // want `escapes`
}

// Spawn launches a goroutine per call.
//
//sdtw:hotpath
func Spawn(fn func()) {
	go fn() // want `go statement`
}

// Lit allocates a fresh slice literal per call.
//
//sdtw:hotpath
func Lit() float64 {
	xs := []float64{1, 2, 3} // want `slice/map literal`
	return xs[0]
}

// Cold is unannotated: allocations here are not hot-path business.
func Cold(n int) []float64 {
	out := make([]float64, n)
	return out
}
