// Package hub mirrors the fleet-streaming sentinels of
// sdtw/internal/hub so the errlint golden tests can pin the %w wrapping
// discipline on the real import path.
package hub

import "errors"

// ErrHubClosed reports an operation on a hub already shut down.
var ErrHubClosed = errors.New("hub: closed")

// ErrUnknownStream reports a push to a stream that was never added.
var ErrUnknownStream = errors.New("hub: unknown stream")

// ErrHubBackpressure reports a push overflowing a stream's buffer.
var ErrHubBackpressure = errors.New("hub: stream buffer full")
