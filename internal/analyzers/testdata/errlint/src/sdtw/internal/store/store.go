// Package store mirrors the segment-store sentinels of
// sdtw/internal/store so the errlint golden tests can pin the %w
// wrapping discipline on the real import path.
package store

import "errors"

// ErrCorruptManifest reports a manifest that fails validation.
var ErrCorruptManifest = errors.New("store: corrupt manifest")

// ErrCorruptSegment reports a segment whose checksum does not match.
var ErrCorruptSegment = errors.New("store: corrupt segment")

// ErrStoreExists reports Create on a directory already holding a store.
var ErrStoreExists = errors.New("store: store already exists")

// ErrTornTail reports a torn write at the tail of the active segment.
var ErrTornTail = errors.New("store: torn tail")

// ErrQuarantined reports a store with quarantined segments opened
// without AllowQuarantine.
var ErrQuarantined = errors.New("store: segments quarantined")
