// Package storeuser exercises the errlint discipline against the
// segment-store sentinels: call sites must wrap them with %w (so
// errors.Is keeps seeing them through the public re-exports) and match
// them with errors.Is, never by value.
package storeuser

import (
	"errors"
	"fmt"

	"sdtw/internal/store"
)

// OpenShard wraps the sentinel with %w: sanctioned.
func OpenShard(i int) error {
	return fmt.Errorf("opening shard %d: %w", i, store.ErrCorruptManifest)
}

// BadOpenShard severs the chain with %v, so the caller's
// errors.Is(err, sdtw.ErrCorruptManifest) stops matching.
func BadOpenShard(i int) error {
	return fmt.Errorf("opening shard %d: %v", i, store.ErrCorruptManifest) // want `%w`
}

// BadVerify formats the segment sentinel with %s: same severed chain.
func BadVerify(seg int) error {
	return fmt.Errorf("segment %d: %s", seg, store.ErrCorruptSegment) // want `%w`
}

// BadExists matches a sentinel by value.
func BadExists(err error) bool {
	return err == store.ErrStoreExists // want `errors.Is`
}

// GoodExists matches through the chain: sanctioned.
func GoodExists(err error) bool {
	return errors.Is(err, store.ErrStoreExists)
}

// BadRecover formats the crash-recovery sentinel with %v, so fsck
// callers branching on sdtw.ErrTornTail stop matching.
func BadRecover(seg int) error {
	return fmt.Errorf("segment %d: %v", seg, store.ErrTornTail) // want `%w`
}

// GoodRecover wraps the crash-recovery sentinel with %w: sanctioned.
func GoodRecover(seg int) error {
	return fmt.Errorf("segment %d: %w", seg, store.ErrTornTail)
}

// BadQuarantine matches the quarantine sentinel by value, missing the
// wrapped errors every Open path returns.
func BadQuarantine(err error) bool {
	return err == store.ErrQuarantined // want `errors.Is`
}

// GoodQuarantine matches through the chain: sanctioned.
func GoodQuarantine(err error) bool {
	return errors.Is(err, store.ErrQuarantined)
}
