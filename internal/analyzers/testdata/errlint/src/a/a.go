package a

import (
	"errors"
	"fmt"
	"io"
)

// ErrNotFound is a package sentinel.
var ErrNotFound = errors.New("not found")

// Wrap preserves the chain with %w: sanctioned.
func Wrap(id string) error {
	return fmt.Errorf("lookup %s: %w", id, ErrNotFound)
}

// BadWrap formats the sentinel with %v, severing the chain.
func BadWrap(id string) error {
	return fmt.Errorf("lookup %s: %v", id, ErrNotFound) // want `%w`
}

// BadCmp compares a sentinel with ==.
func BadCmp(err error) bool {
	return err == ErrNotFound // want `errors.Is`
}

// BadNeq compares a std sentinel with !=.
func BadNeq(err error) bool {
	return err != io.EOF // want `errors.Is`
}

// GoodCmp uses errors.Is: sanctioned.
func GoodCmp(err error) bool {
	return errors.Is(err, ErrNotFound)
}

// NilCmp compares against nil, which is fine.
func NilCmp(err error) bool {
	return err == nil
}

// BadSwitch matches sentinels by value in a switch.
func BadSwitch(err error) int {
	switch err {
	case ErrNotFound: // want `errors.Is`
		return 1
	case nil:
		return 0
	}
	return 2
}
