// Package hubuser exercises the errlint discipline against the fleet
// hub sentinels: ingest and shutdown paths must wrap ErrHubClosed,
// ErrUnknownStream and ErrHubBackpressure with %w (so errors.Is keeps
// seeing them through the public sdtw re-exports) and match them with
// errors.Is, never by value.
package hubuser

import (
	"errors"
	"fmt"

	"sdtw/internal/hub"
)

// RejectPush wraps the backpressure sentinel with %w: sanctioned.
func RejectPush(stream string, pending int) error {
	return fmt.Errorf("push to %q with %d pending: %w", stream, pending, hub.ErrHubBackpressure)
}

// BadRejectPush severs the chain with %v, so a producer's
// errors.Is(err, sdtw.ErrHubBackpressure) retry loop stops matching.
func BadRejectPush(stream string) error {
	return fmt.Errorf("push to %q: %v", stream, hub.ErrHubBackpressure) // want `%w`
}

// BadClose formats the closed sentinel with %s: same severed chain.
func BadClose(op string) error {
	return fmt.Errorf("%s on flushed hub: %s", op, hub.ErrHubClosed) // want `%w`
}

// BadUnknown matches a sentinel by value — a recompiled hub package
// would still match, but a wrapped error never does.
func BadUnknown(err error) bool {
	return err == hub.ErrUnknownStream // want `errors.Is`
}

// ShouldShed matches through the chain: sanctioned.
func ShouldShed(err error) bool {
	return errors.Is(err, hub.ErrHubBackpressure)
}

// IsClosed matches the shutdown sentinel through the chain: sanctioned.
func IsClosed(err error) bool {
	return errors.Is(err, hub.ErrHubClosed)
}
