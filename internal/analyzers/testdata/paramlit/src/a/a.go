package a

import "sdtw/internal/retrieve"

// Bad builds Params from scratch, silently inheriting the zero-value
// traps (Exclude 0, Threshold 0).
func Bad() retrieve.Params {
	return retrieve.Params{K: 5} // want `DefaultParams`
}

// BadPtr is flagged through the address-of form as well.
func BadPtr() *retrieve.Params {
	return &retrieve.Params{K: 5} // want `DefaultParams`
}

// Good starts from the constructor and overrides fields: sanctioned.
func Good() retrieve.Params {
	p := retrieve.DefaultParams()
	p.K = 5
	return p
}
