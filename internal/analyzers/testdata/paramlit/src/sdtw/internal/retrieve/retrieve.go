package retrieve

import "math"

// Params mirrors the real config struct: zero Exclude and zero Threshold
// are traps that DefaultParams fixes.
type Params struct {
	K         int
	Exclude   int
	Threshold float64
}

// DefaultParams is the sanctioned constructor. Its own composite literal
// is inside the defining package and must not be flagged.
func DefaultParams() Params {
	return Params{K: 1, Exclude: -1, Threshold: math.Inf(1)}
}
