package a

import "context"

// Search dereferences ctx without a nil guard: nil is a legal "no
// cancellation" value at exported entry points.
func Search(ctx context.Context, q []float64) error {
	if err := ctx.Err(); err != nil { // want `possibly-nil context`
		return err
	}
	_ = q
	return nil
}

// Wait selects on Done without a guard.
func Wait(ctx context.Context) {
	<-ctx.Done() // want `possibly-nil context`
}

// Guarded checks ctx against nil before dereferencing: sanctioned.
func Guarded(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// helper is unexported: internal plumbing may assume a non-nil ctx.
func helper(ctx context.Context) error { return ctx.Err() }

// Forward passes ctx along without dereferencing it: sanctioned.
func Forward(ctx context.Context, q []float64) error { return run(ctx, q) }

// Blocking hides cancellation behind context.Background().
func Blocking(q []float64) error {
	return run(context.Background(), q) // want `hiding cancellation`
}

// NilCall passes nil explicitly: the sanctioned "no cancellation" idiom.
func NilCall(q []float64) error { return run(nil, q) }

// Derive uses Background only with the context package itself, which is
// how a base context is legitimately minted.
func Derive() context.CancelFunc {
	_, cancel := context.WithCancel(context.Background())
	return cancel
}

func run(ctx context.Context, q []float64) error {
	_ = q
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

var _ = helper
