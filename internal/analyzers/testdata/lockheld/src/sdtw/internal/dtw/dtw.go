package dtw

// Distance stands in for the real O(n·m) DP entry point.
func Distance(x, y []float64) float64 {
	_ = x
	_ = y
	return 0
}
