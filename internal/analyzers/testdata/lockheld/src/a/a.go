package a

import (
	"sync"

	"sdtw/internal/dtw"
)

type index struct {
	mu   sync.RWMutex
	data [][]float64
}

// BadSearch runs the DP while holding the write lock, serializing every
// reader behind the slowest DP.
func (ix *index) BadSearch(q []float64) float64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return dtw.Distance(q, ix.data[0]) // want `exclusively locked`
}

// ReadSearch runs the DP under RLock: readers share, sanctioned.
func (ix *index) ReadSearch(q []float64) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return dtw.Distance(q, ix.data[0])
}

// CopySearch snapshots under the lock and runs the DP after releasing
// it: the COW discipline from internal/shard.
func (ix *index) CopySearch(q []float64) float64 {
	ix.mu.Lock()
	snap := ix.data[0]
	ix.mu.Unlock()
	return dtw.Distance(q, snap)
}

// Mutate holds the lock only for the mutation; the DP call after the
// explicit Unlock is outside the region.
func (ix *index) Mutate(q []float64, extra []float64) {
	ix.mu.Lock()
	ix.data = append(ix.data, extra)
	ix.mu.Unlock()
	_ = dtw.Distance(q, extra)
}
