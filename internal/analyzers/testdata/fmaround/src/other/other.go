package other

// notKernel lives outside the kernel packages: multiply-add here is not
// subject to the bit-identity discipline and must stay silent.
func notKernel(a, b, c float64) float64 {
	return a + b*c
}
