package dtw

// fill exercises the multiply-add shapes fmaround must flag and the
// sanctioned forms it must leave alone.
func fill(acc, a, b float64, xs []float64) float64 {
	acc += a * b       // want `float64 multiply-add`
	s := acc + a*b     // want `float64 multiply-add`
	d := acc - (a * b) // want `float64 multiply-add`
	acc -= xs[0] * b   // want `float64 multiply-add`

	rounded := acc + float64(a*b) // silent: explicitly rounded product
	n := len(xs)
	size := 2*n + 2    // silent: integer arithmetic cannot contract
	c := 1.5*2.0 + 3.0 // silent: constant-folded at compile time
	prod := a * b      // silent: bare product, no enclosing add/sub

	return s + d + rounded + float64(size) + c + prod
}
