package analyzers

import "testing"

func TestHotalloc(t *testing.T) {
	runGolden(t, Hotalloc, "a")
}
