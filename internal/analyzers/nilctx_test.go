package analyzers

import "testing"

func TestNilctx(t *testing.T) {
	runGolden(t, Nilctx, "a")
}
