package sift

import (
	"testing"

	"sdtw/internal/scalespace"
)

// TestExtractFromPyramidMatchesExtract verifies the shared-pyramid entry
// point produces the same features as the one-shot Extract.
func TestExtractFromPyramidMatchesExtract(t *testing.T) {
	v := bumpSeries(300, []int{70, 160, 230}, 7, 1)
	cfg := DefaultConfig()
	direct, err := Extract(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pyr, err := scalespace.Build(v, cfg.ScaleSpace)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := ExtractFromPyramid(v, pyr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) != len(direct) {
		t.Fatalf("shared pyramid yielded %d features, direct %d", len(shared), len(direct))
	}
	for i := range direct {
		if direct[i].X != shared[i].X || direct[i].Sigma != shared[i].Sigma {
			t.Fatalf("feature %d differs: %+v vs %+v", i, direct[i], shared[i])
		}
		if d := DescriptorDistance(direct[i].Descriptor, shared[i].Descriptor); d != 0 {
			t.Fatalf("feature %d descriptor differs by %v", i, d)
		}
	}
}

// TestExtractFromPyramidInvalidConfig propagates configuration errors.
func TestExtractFromPyramidInvalidConfig(t *testing.T) {
	v := bumpSeries(100, []int{50}, 5, 1)
	pyr, err := scalespace.Build(v, scalespace.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DescriptorBins = 3 // odd: invalid
	if _, err := ExtractFromPyramid(v, pyr, cfg); err == nil {
		t.Fatal("invalid descriptor config accepted")
	}
}
