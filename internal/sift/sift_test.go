package sift

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdtw/internal/series"
)

// bumpSeries builds a smooth series with Gaussian bumps at the given
// centres (sd controls feature size).
func bumpSeries(n int, centres []int, sd, amp float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		for _, c := range centres {
			v[i] += series.GaussianBump(float64(i), float64(c), sd, amp)
		}
	}
	return v
}

func TestExtractFindsBumpLocations(t *testing.T) {
	v := bumpSeries(200, []int{50, 140}, 6, 1)
	feats, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) == 0 {
		t.Fatal("no features on bump series")
	}
	for _, c := range []int{50, 140} {
		found := false
		for _, f := range feats {
			if math.Abs(float64(f.X-c)) <= 8 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no feature near bump at %d; features: %+v", c, positions(feats))
		}
	}
}

func positions(feats []Feature) []int {
	out := make([]int, len(feats))
	for i, f := range feats {
		out[i] = f.X
	}
	return out
}

func TestExtractDetectsDips(t *testing.T) {
	// A dip must be detected, and its DoG response must have the
	// opposite sign of a peak's (smoothing pulls peaks down and dips up).
	strongestNear := func(v []float64, c int) (Feature, bool) {
		feats, err := Extract(v, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var best Feature
		found := false
		for _, f := range feats {
			if math.Abs(float64(f.X-c)) <= 10 && (!found || math.Abs(f.Response) > math.Abs(best.Response)) {
				best, found = f, true
			}
		}
		return best, found
	}
	peak, okP := strongestNear(bumpSeries(200, []int{100}, 8, 1), 100)
	dip, okD := strongestNear(bumpSeries(200, []int{100}, 8, -1), 100)
	if !okP || !okD {
		t.Fatalf("peak found=%v dip found=%v", okP, okD)
	}
	if peak.Response*dip.Response >= 0 {
		t.Fatalf("peak and dip responses share a sign: %v vs %v", peak.Response, dip.Response)
	}
}

func TestExtractScaleGrowsWithFeatureSize(t *testing.T) {
	meanSigma := func(sd float64) float64 {
		v := bumpSeries(400, []int{200}, sd, 1)
		feats, err := Extract(v, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		best, bestResp := 0.0, 0.0
		for _, f := range feats {
			if math.Abs(float64(f.X-200)) < 3*sd && math.Abs(f.Response) > bestResp {
				best, bestResp = f.Sigma, math.Abs(f.Response)
			}
		}
		if bestResp == 0 {
			t.Fatalf("no feature near centre for sd=%v", sd)
		}
		return best
	}
	if narrow, wide := meanSigma(4), meanSigma(30); wide <= narrow {
		t.Fatalf("feature scale did not grow with bump width: %v vs %v", wide, narrow)
	}
}

func TestExtractShiftInvariantPositions(t *testing.T) {
	// Shifting the series in time shifts features, approximately.
	v1 := bumpSeries(300, []int{100}, 8, 1)
	v2 := bumpSeries(300, []int{130}, 8, 1)
	f1, err := Extract(v1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Extract(v2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	strongest := func(fs []Feature) Feature {
		best := fs[0]
		for _, f := range fs {
			if math.Abs(f.Response) > math.Abs(best.Response) {
				best = f
			}
		}
		return best
	}
	s1, s2 := strongest(f1), strongest(f2)
	if math.Abs(float64(s2.X-s1.X-30)) > 8 {
		t.Fatalf("shift not tracked: %d -> %d", s1.X, s2.X)
	}
}

func TestExtractValueOffsetInvariance(t *testing.T) {
	// Adding a constant must not change detections or descriptors:
	// gradients see only differences.
	v := bumpSeries(250, []int{60, 180}, 7, 1)
	shifted := make([]float64, len(v))
	for i := range v {
		shifted[i] = v[i] + 42
	}
	f1, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Extract(shifted, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != len(f2) {
		t.Fatalf("offset changed feature count: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].X != f2[i].X || f1[i].Octave != f2[i].Octave {
			t.Fatalf("offset moved feature %d", i)
		}
		if d := DescriptorDistance(f1[i].Descriptor, f2[i].Descriptor); d > 1e-9 {
			t.Fatalf("offset changed descriptor %d by %v", i, d)
		}
	}
}

func TestExtractAmplitudeInvarianceToggle(t *testing.T) {
	v := bumpSeries(250, []int{60, 180}, 7, 1)
	doubled := make([]float64, len(v))
	for i := range v {
		doubled[i] = 2 * v[i]
	}
	cfg := DefaultConfig()
	cfg.MaxFeatures = -1
	f1, err := Extract(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Extract(doubled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With amplitude invariance, matching descriptors of corresponding
	// features should be (nearly) identical.
	for i := range f1 {
		if i >= len(f2) {
			break
		}
		if f1[i].X == f2[i].X && f1[i].Octave == f2[i].Octave {
			if d := DescriptorDistance(f1[i].Descriptor, f2[i].Descriptor); d > 1e-6 {
				t.Fatalf("amplitude-invariant descriptor changed by %v", d)
			}
		}
	}
	// Without it, descriptors scale with amplitude.
	cfg.AmplitudeInvariant = false
	g1, err := Extract(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Extract(doubled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range g1 {
		if i >= len(g2) {
			break
		}
		if g1[i].X == g2[i].X && g1[i].Octave == g2[i].Octave {
			if DescriptorDistance(g1[i].Descriptor, g2[i].Descriptor) > 1e-6 {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("non-invariant descriptors did not react to amplitude scaling")
	}
}

func TestDescriptorLengthConfig(t *testing.T) {
	v := bumpSeries(300, []int{80, 150, 220}, 6, 1)
	for _, bins := range []int{4, 8, 16, 32, 64, 128} {
		cfg := DefaultConfig()
		cfg.DescriptorBins = bins
		feats, err := Extract(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range feats {
			if len(f.Descriptor) != bins {
				t.Fatalf("bins=%d: descriptor length %d", bins, len(f.Descriptor))
			}
		}
	}
}

func TestDescriptorInvalidConfigRejected(t *testing.T) {
	v := bumpSeries(100, []int{50}, 5, 1)
	cfg := DefaultConfig()
	cfg.DescriptorBins = 7 // odd
	if _, err := Extract(v, cfg); err == nil {
		t.Fatal("odd descriptor length accepted")
	}
	cfg.DescriptorBins = 0 // defaults to 64: fine
	if _, err := Extract(v, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorUnitNorm(t *testing.T) {
	v := bumpSeries(300, []int{80, 150, 220}, 6, 1)
	feats, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range feats {
		ss := 0.0
		for _, x := range f.Descriptor {
			ss += x * x
		}
		if ss > 0 && math.Abs(math.Sqrt(ss)-1) > 1e-9 {
			t.Fatalf("descriptor norm = %v, want 1", math.Sqrt(ss))
		}
		for _, x := range f.Descriptor {
			if x < 0 {
				t.Fatalf("descriptor has negative bin %v", x)
			}
		}
	}
}

func TestScopeIs3Sigma(t *testing.T) {
	v := bumpSeries(300, []int{150}, 10, 1)
	feats, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range feats {
		if math.Abs(f.Scope-3*f.Sigma) > 1e-9 {
			t.Fatalf("scope %v != 3σ (σ=%v)", f.Scope, f.Sigma)
		}
		if s, e := f.Start(300), f.End(300); s < 0 || e > 299 || s > e {
			t.Fatalf("scope bounds [%d,%d] invalid", s, e)
		}
	}
}

func TestStartEndClamping(t *testing.T) {
	f := Feature{X: 2, Scope: 10}
	if s := f.Start(100); s != 0 {
		t.Fatalf("Start near boundary = %d, want 0", s)
	}
	f = Feature{X: 98, Scope: 10}
	if e := f.End(100); e != 99 {
		t.Fatalf("End near boundary = %d, want 99", e)
	}
}

func TestScaleClass(t *testing.T) {
	tests := []struct {
		octave int
		want   ScaleClass
	}{{0, Fine}, {1, Medium}, {2, Rough}, {5, Rough}}
	for _, tc := range tests {
		f := Feature{Octave: tc.octave}
		if got := f.Class(); got != tc.want {
			t.Errorf("octave %d class = %v, want %v", tc.octave, got, tc.want)
		}
	}
	if Fine.String() != "fine" || Medium.String() != "medium" || Rough.String() != "rough" {
		t.Error("ScaleClass strings wrong")
	}
}

func TestCountByClass(t *testing.T) {
	feats := []Feature{{Octave: 0}, {Octave: 0}, {Octave: 1}, {Octave: 3}}
	c := CountByClass(feats)
	if c[Fine] != 2 || c[Medium] != 1 || c[Rough] != 1 {
		t.Fatalf("CountByClass = %v", c)
	}
}

func TestMaxFeaturesCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make([]float64, 400)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	cfg := DefaultConfig()
	cfg.MaxFeatures = -1
	all, err := Extract(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxFeatures = 10
	capped, err := Extract(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= 10 {
		t.Skip("noise series produced too few features to exercise the cap")
	}
	// Proportional quotas may slightly exceed the cap through per-octave
	// minimums, but never the uncapped count.
	if len(capped) > 10+3 || len(capped) >= len(all) {
		t.Fatalf("cap kept %d of %d features", len(capped), len(all))
	}
	// Capped features are the strong ones: the max response must survive.
	maxResp := 0.0
	for _, f := range all {
		if math.Abs(f.Response) > maxResp {
			maxResp = math.Abs(f.Response)
		}
	}
	found := false
	for _, f := range capped {
		if math.Abs(f.Response) == maxResp {
			found = true
		}
	}
	if !found {
		t.Fatal("cap discarded the strongest feature")
	}
}

func TestFeaturesSortedByPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := make([]float64, 300)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	feats, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(feats); i++ {
		if feats[i].X < feats[i-1].X {
			t.Fatal("features not sorted by position")
		}
	}
}

func TestAmplitudeIsScopeMean(t *testing.T) {
	// A feature on a constant-offset region should carry that offset as
	// its amplitude.
	v := make([]float64, 200)
	for i := range v {
		v[i] = 3 + series.GaussianBump(float64(i), 100, 8, 1)
	}
	feats, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range feats {
		if f.Amplitude < 3-0.1 || f.Amplitude > 4+0.1 {
			t.Fatalf("amplitude %v outside plausible [3,4] range", f.Amplitude)
		}
	}
}

func TestExtractTooShortSeries(t *testing.T) {
	if _, err := Extract([]float64{1, 2}, DefaultConfig()); err == nil {
		t.Fatal("2-sample series accepted")
	}
}

func TestDescriptorDistance(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 1, 0}
	if d := DescriptorDistance(a, b); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("distance = %v, want √2", d)
	}
	if d := DescriptorDistance(a, a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	if d := DescriptorDistance(a, []float64{1, 0}); !math.IsInf(d, 1) {
		t.Fatalf("length mismatch distance = %v, want +Inf", d)
	}
}

func TestDescriptorDistanceSqAbandon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(130)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		exact := DescriptorDistance(a, b)
		// Generous cutoff: must compute exactly.
		got := DescriptorDistanceSqAbandon(a, b, math.Inf(1))
		if math.Abs(math.Sqrt(got)-exact) > 1e-9 {
			t.Fatalf("squared distance %v != exact %v", math.Sqrt(got), exact)
		}
		// Cutoff below the true value: must abandon.
		if exact > 0 {
			got = DescriptorDistanceSqAbandon(a, b, exact*exact/4)
			if !math.IsInf(got, 1) {
				t.Fatalf("no abandon below cutoff: %v", got)
			}
		}
	}
}

func TestEarlyAbandonMatchesExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		exact := DescriptorDistance(a, b)
		cutoff := exact * (1 + rng.Float64())
		got := DescriptorDistanceEarlyAbandon(a, b, cutoff+1e-9)
		return math.Abs(got-exact) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractDeterministic(t *testing.T) {
	v := bumpSeries(300, []int{70, 180, 240}, 6, 1)
	f1, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != len(f2) {
		t.Fatal("extraction not deterministic")
	}
	for i := range f1 {
		if f1[i].X != f2[i].X || f1[i].Sigma != f2[i].Sigma {
			t.Fatal("extraction not deterministic")
		}
	}
}
