// Package sift detects salient features on 1-D time series and extracts
// their descriptors, implementing the SIFT adaptation of paper §3.1.2.
//
// Detection searches the difference-of-Gaussians scale space (package
// scalespace) for points that are — up to the paper's (1−ε) relaxation —
// extrema with respect to their two temporal neighbours at the same scale
// and their three neighbours in the scales directly above and below.
// Each surviving keypoint carries its temporal position, its scale σ, a
// scope of radius 3σ, and a gradient-histogram descriptor of configurable
// length (2·cells bins: positive and negative gradient energy per cell,
// paper Fig 5b).
package sift

import (
	"fmt"
	"math"
	"sort"

	"sdtw/internal/scalespace"
)

// ScaleClass buckets features by temporal scale for reporting (paper
// Table 2 reports per-data-set counts at fine/medium/rough scales).
type ScaleClass int

const (
	// Fine features live in the first octave (original resolution).
	Fine ScaleClass = iota
	// Medium features live in the second octave.
	Medium
	// Rough features live in the third and coarser octaves.
	Rough
)

// String implements fmt.Stringer.
func (c ScaleClass) String() string {
	switch c {
	case Fine:
		return "fine"
	case Medium:
		return "medium"
	case Rough:
		return "rough"
	default:
		return fmt.Sprintf("ScaleClass(%d)", int(c))
	}
}

// Feature is one salient point detected on a series.
type Feature struct {
	// X is the temporal position in original-series samples.
	X int
	// Sigma is the detection scale in original-series samples.
	Sigma float64
	// Octave and Level locate the feature in the pyramid (DoG level).
	Octave, Level int
	// Response is the DoG value at the feature; its sign distinguishes
	// peak-like (positive) from dip-like (negative) features.
	Response float64
	// Scope is the temporal radius 3σ covered by the feature (§3.1.2).
	Scope float64
	// Amplitude is the mean series value within the feature's scope, used
	// by the matcher's τa threshold and ∆amp similarity term (§3.2).
	Amplitude float64
	// Descriptor is the normalised gradient histogram (len = 2·cells).
	Descriptor []float64
}

// Start returns the first sample covered by the feature's scope, clamped
// to the series.
func (f Feature) Start(n int) int {
	s := f.X - int(math.Round(f.Scope))
	if s < 0 {
		s = 0
	}
	if s >= n {
		s = n - 1
	}
	return s
}

// End returns the last sample covered by the feature's scope, clamped to
// the series.
func (f Feature) End(n int) int {
	e := f.X + int(math.Round(f.Scope))
	if e >= n {
		e = n - 1
	}
	if e < 0 {
		e = 0
	}
	return e
}

// Class returns the scale bucket of the feature.
func (f Feature) Class() ScaleClass {
	switch {
	case f.Octave == 0:
		return Fine
	case f.Octave == 1:
		return Medium
	default:
		return Rough
	}
}

// Config controls detection and description. The zero value selects the
// paper's defaults.
type Config struct {
	// Scale space construction; see scalespace.Config.
	ScaleSpace scalespace.Config
	// Epsilon is the relaxation of the extremum test: a point survives if
	// it is at least (1−ε)× every neighbour (§3.1.2). Zero means 0.10;
	// negative disables relaxation (strict extrema).
	//
	// Calibration note: the paper reports ε as "0.96%". Read literally
	// (0.0096) the relaxed test is nearly strict and detects an order of
	// magnitude fewer features than the paper's Table 2; read as 0.96 it
	// accepts nearly every grid position, reproducing Table 2's absolute
	// counts but making matching quadratically expensive, contradicting
	// §3.4's |S_X| ≪ N assumption. The default 0.10 lands feature
	// populations in the tens per series, preserving both Table 2's
	// fine/medium/rough profile and the complexity argument. Both paper
	// readings remain available through this field.
	Epsilon float64
	// ContrastThreshold discards keypoints whose |DoG| response is below
	// this fraction of the largest response in the series, mirroring
	// SIFT's low-contrast filtering (§3.1.1 step 2). Zero means 0.01.
	// Negative disables the filter.
	ContrastThreshold float64
	// DescriptorBins is the descriptor length (2·cells). The paper sweeps
	// 4..128 and defaults to 64. Zero means 64. Must be even and >= 2.
	DescriptorBins int
	// CellWidth is the number of octave-resolution samples per descriptor
	// cell (SIFT uses 4 pixels per cell). Zero means 4.
	CellWidth int
	// AmplitudeInvariant, when true (the default via DefaultConfig),
	// normalises descriptors to unit length so that uniform amplitude
	// scaling of the series leaves descriptors unchanged. §3.1.2 notes
	// each invariance can be toggled independently.
	AmplitudeInvariant bool
	// MaxFeatures caps the number of features kept per series. When the
	// detector finds more, the strongest by |DoG response| survive, with
	// each octave retaining a proportional share so coarse evidence is
	// never starved by fine-scale noise. Keeping |S_X| ≪ N preserves the
	// paper's §3.4 complexity argument (matching far cheaper than the
	// grid fill). Zero means 48; negative disables the cap.
	MaxFeatures int
}

// DefaultConfig returns the repository's default configuration: auto
// octave count, s=2 levels, ε=0.10 (see the Epsilon calibration note),
// 64-bin descriptors as in the paper's experiments.
func DefaultConfig() Config {
	return Config{
		Epsilon:            0.10,
		ContrastThreshold:  0.01,
		DescriptorBins:     64,
		CellWidth:          4,
		AmplitudeInvariant: true,
	}
}

func (c Config) withDefaults() (Config, error) {
	if c.Epsilon == 0 {
		c.Epsilon = 0.10
	}
	if c.Epsilon < 0 {
		c.Epsilon = 0
	}
	if c.ContrastThreshold == 0 {
		c.ContrastThreshold = 0.01
	}
	if c.DescriptorBins == 0 {
		c.DescriptorBins = 64
	}
	if c.DescriptorBins < 2 || c.DescriptorBins%2 != 0 {
		return c, fmt.Errorf("sift: DescriptorBins must be even and >= 2, got %d", c.DescriptorBins)
	}
	if c.CellWidth <= 0 {
		c.CellWidth = 4
	}
	if c.MaxFeatures == 0 {
		c.MaxFeatures = 48
	}
	return c, nil
}

// Extract detects salient features on v and computes their descriptors.
// Features are returned sorted by temporal position.
func Extract(v []float64, cfg Config) ([]Feature, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pyr, err := scalespace.Build(v, cfg.ScaleSpace)
	if err != nil {
		return nil, err
	}
	return ExtractFromPyramid(v, pyr, cfg)
}

// ExtractFromPyramid runs detection and description over an existing
// pyramid, allowing callers that need the pyramid for other purposes to
// avoid rebuilding it.
func ExtractFromPyramid(v []float64, pyr *scalespace.Pyramid, cfg Config) ([]Feature, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	maxResp := maxAbsDoG(pyr)
	minResp := cfg.ContrastThreshold * maxResp
	var feats []Feature
	for _, oct := range pyr.Octaves {
		// Interior DoG levels have scale neighbours on both sides.
		for l := 1; l+1 < len(oct.DoG); l++ {
			d := oct.DoG[l].Values
			below := oct.DoG[l-1].Values
			above := oct.DoG[l+1].Values
			for i := 1; i+1 < len(d); i++ {
				val := d[i]
				if cfg.ContrastThreshold >= 0 && math.Abs(val) < minResp {
					continue
				}
				if !isRelaxedExtremum(val, i, d, below, above, cfg.Epsilon) {
					continue
				}
				f := Feature{
					X:        i * oct.Stride,
					Sigma:    oct.DoG[l].Sigma,
					Octave:   oct.Index,
					Level:    l,
					Response: val,
				}
				f.Scope = 3 * f.Sigma
				f.Descriptor = describe(oct.Gauss[l].Values, i, cfg)
				f.Amplitude = scopeAmplitude(v, f)
				feats = append(feats, f)
			}
		}
	}
	feats = capFeatures(feats, cfg.MaxFeatures)
	sort.Slice(feats, func(a, b int) bool {
		if feats[a].X != feats[b].X {
			return feats[a].X < feats[b].X
		}
		return feats[a].Sigma < feats[b].Sigma
	})
	return feats, nil
}

// capFeatures keeps at most limit features, allocating each octave a share
// proportional to its detected population (at least one per non-empty
// octave) and keeping the strongest |Response| within each octave.
func capFeatures(feats []Feature, limit int) []Feature {
	if limit <= 0 || len(feats) <= limit {
		return feats
	}
	byOct := make(map[int][]Feature)
	maxOct := 0
	for _, f := range feats {
		byOct[f.Octave] = append(byOct[f.Octave], f)
		if f.Octave > maxOct {
			maxOct = f.Octave
		}
	}
	total := len(feats)
	kept := feats[:0]
	for oct := 0; oct <= maxOct; oct++ {
		group := byOct[oct]
		if len(group) == 0 {
			continue
		}
		quota := limit * len(group) / total
		if quota < 1 {
			quota = 1
		}
		if quota > len(group) {
			quota = len(group)
		}
		sort.Slice(group, func(a, b int) bool {
			return math.Abs(group[a].Response) > math.Abs(group[b].Response)
		})
		kept = append(kept, group[:quota]...)
	}
	return kept
}

// isRelaxedExtremum applies the paper's relaxed extremum test at position i
// of DoG level d with scale neighbours below/above: the point is accepted
// when it is a maximum (or, symmetrically, a minimum) relative to all eight
// neighbours up to the (1−ε) slack.
func isRelaxedExtremum(val float64, i int, d, below, above []float64, eps float64) bool {
	slack := 1 - eps
	isMax, isMin := true, true
	check := func(nb float64) {
		// Maximum test with slack: val must be >= slack·nb for positive
		// neighbours, and simply >= nb when the neighbour is negative
		// (slack would make the test easier in the wrong direction).
		if nb > 0 {
			if val < slack*nb {
				isMax = false
			}
		} else if val < nb {
			isMax = false
		}
		// Minimum test, mirrored.
		if nb < 0 {
			if val > slack*nb {
				isMin = false
			}
		} else if val > nb {
			isMin = false
		}
	}
	for off := -1; off <= 1; off++ {
		j := i + off
		if off != 0 {
			check(d[j])
		}
		if j >= 0 && j < len(below) {
			check(below[j])
		}
		if j >= 0 && j < len(above) {
			check(above[j])
		}
	}
	if val > 0 {
		return isMax
	}
	if val < 0 {
		return isMin
	}
	return false
}

// describe builds the gradient-histogram descriptor around sample i of the
// octave-resolution smoothed series g (paper §3.1.2 step 2, Fig 5b).
// The window spans cells·CellWidth samples centred at i; each cell
// accumulates Gaussian-weighted positive gradient magnitude into its first
// bin and negative magnitude into its second.
func describe(g []float64, i int, cfg Config) []float64 {
	cells := cfg.DescriptorBins / 2
	window := cells * cfg.CellWidth
	half := window / 2
	desc := make([]float64, cfg.DescriptorBins)
	if len(g) < 3 {
		return desc
	}
	// Gaussian weighting with σ = half the window, as in SIFT.
	wSigma := float64(window) / 2
	for t := -half; t < window-half; t++ {
		pos := i + t
		grad := gradientAt(g, pos)
		w := math.Exp(-0.5 * float64(t*t) / (wSigma * wSigma))
		cell := (t + half) / cfg.CellWidth
		if cell < 0 {
			cell = 0
		}
		if cell >= cells {
			cell = cells - 1
		}
		if grad >= 0 {
			desc[2*cell] += w * grad
		} else {
			desc[2*cell+1] += w * (-grad)
		}
	}
	if cfg.AmplitudeInvariant {
		normalize(desc)
	}
	return desc
}

// gradientAt returns the central-difference gradient of g at pos with
// clamp-to-edge behaviour. Positions outside the series clamp to the
// nearest edge, where the gradient degenerates to a one-sided difference
// or zero; descriptor windows near boundaries therefore fade out rather
// than wrap or panic.
func gradientAt(g []float64, pos int) float64 {
	n := len(g)
	if pos < 0 {
		pos = 0
	} else if pos >= n {
		pos = n - 1
	}
	lo, hi := pos-1, pos+1
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	if hi == lo {
		return 0
	}
	return (g[hi] - g[lo]) / float64(hi-lo)
}

func normalize(v []float64) {
	ss := 0.0
	for _, x := range v {
		ss += x * x
	}
	if ss == 0 {
		return
	}
	inv := 1 / math.Sqrt(ss)
	for i := range v {
		v[i] *= inv
	}
}

// scopeAmplitude computes the mean of the original series over the
// feature's scope.
func scopeAmplitude(v []float64, f Feature) float64 {
	s, e := f.Start(len(v)), f.End(len(v))
	sum := 0.0
	for i := s; i <= e; i++ {
		sum += v[i]
	}
	return sum / float64(e-s+1)
}

func maxAbsDoG(pyr *scalespace.Pyramid) float64 {
	maxAbs := 0.0
	for _, oct := range pyr.Octaves {
		for _, lvl := range oct.DoG {
			for _, x := range lvl.Values {
				if a := math.Abs(x); a > maxAbs {
					maxAbs = a
				}
			}
		}
	}
	return maxAbs
}

// DescriptorDistance returns the Euclidean distance between descriptors a
// and b. Descriptors of different lengths are incomparable and yield +Inf.
func DescriptorDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	ss := 0.0
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}

// DescriptorDistanceEarlyAbandon is DescriptorDistance with an early exit:
// once the partial distance provably exceeds cutoff the function returns
// +Inf. Matching performs |S_X|·|S_Y| nearest-neighbour scans where most
// candidates lose quickly, so abandoning keeps the §3.4 matching cost far
// below the DTW grid fill.
func DescriptorDistanceEarlyAbandon(a, b []float64, cutoff float64) float64 {
	d := DescriptorDistanceSqAbandon(a, b, cutoff*cutoff)
	if math.IsInf(d, 1) {
		return d
	}
	return math.Sqrt(d)
}

// DescriptorDistanceSqAbandon returns the squared Euclidean descriptor
// distance, abandoning with +Inf once the partial sum exceeds cutoffSq.
// Working in squared space lets nearest-neighbour scans avoid sqrt
// entirely.
func DescriptorDistanceSqAbandon(a, b []float64, cutoffSq float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	ss := 0.0
	// Process in chunks of 8 between abandonment checks: the comparison
	// itself costs as much as the arithmetic on short descriptors.
	i := 0
	for ; i+8 <= len(a); i += 8 {
		for k := i; k < i+8; k++ {
			d := a[k] - b[k]
			ss += d * d
		}
		if ss > cutoffSq {
			return math.Inf(1)
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		ss += d * d
	}
	if ss > cutoffSq {
		return math.Inf(1)
	}
	return ss
}

// CountByClass tallies features per scale class, the statistic of Table 2.
func CountByClass(feats []Feature) map[ScaleClass]int {
	counts := make(map[ScaleClass]int, 3)
	for _, f := range feats {
		counts[f.Class()]++
	}
	return counts
}
