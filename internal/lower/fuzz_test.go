package lower

import (
	"math"
	"math/rand"
	"testing"

	"sdtw/internal/dtw"
)

// FuzzCascadeAdmissible fuzzes the bound chain's two standing contracts:
//
//  1. bit-identity: the monomorphized Kim/Keogh kernels must match the
//     generic path exactly;
//  2. admissibility: LB_Kim and LB_Keogh(r) must never exceed the
//     Sakoe-Chiba(r) DTW distance their envelopes assume.
//
// CI runs this for a bounded ~30s in the fuzz-smoke lane.
func FuzzCascadeAdmissible(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(2))
	f.Add(int64(9), uint8(1), uint8(0))
	f.Add(int64(23), uint8(60), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, n8, r8 uint8) {
		n := int(n8)%64 + 1
		r := int(r8) % 8
		rng := rand.New(rand.NewSource(seed))
		q := randomValues(rng, n)
		c := randomValues(rng, n)

		kimG, err := Kim(q, c, sqGeneric)
		if err != nil {
			t.Fatal(err)
		}
		kimS, err := Kim(q, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(kimG) != math.Float64bits(kimS) {
			t.Fatalf("LB_Kim bits differ: %v vs %v", kimG, kimS)
		}

		env := NewEnvelope(c, r)
		keoghG, err := Keogh(q, env, sqGeneric)
		if err != nil {
			t.Fatal(err)
		}
		keoghS, err := Keogh(q, env, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(keoghG) != math.Float64bits(keoghS) {
			t.Fatalf("LB_Keogh bits differ: %v vs %v", keoghG, keoghS)
		}

		band := dtw.SakoeChibaRadius(n, n, r)
		exact, _, err := dtw.Banded(q, c, band, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateBound(kimS, exact); err != nil {
			t.Errorf("LB_Kim not admissible (n=%d r=%d): %v", n, r, err)
		}
		if err := ValidateBound(keoghS, exact); err != nil {
			t.Errorf("LB_Keogh not admissible (n=%d r=%d): %v", n, r, err)
		}
	})
}
