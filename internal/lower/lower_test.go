package lower

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdtw/internal/dtw"
	"sdtw/internal/series"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestKimKnownValue(t *testing.T) {
	got, err := Kim([]float64{1, 5, 2}, []float64{2, 9, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (1-2)^2 + (2-4)^2 = 1 + 4.
	if got != 5 {
		t.Fatalf("Kim = %v, want 5", got)
	}
}

func TestKimSinglePointPair(t *testing.T) {
	// A 1x1 grid has one cell, which is both the first and last aligned
	// pair: the bound must pay it once, or it exceeds the exact DTW
	// distance and mis-prunes.
	got, err := Kim([]float64{0}, []float64{0.12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := dtw.Distance([]float64{0}, []float64{0.12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != exact {
		t.Fatalf("Kim on 1-point pair = %v, want the exact single-cell cost %v", got, exact)
	}
}

func TestKimEmpty(t *testing.T) {
	if _, err := Kim(nil, []float64{1}, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestKimIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		x := randSeries(rng, 5+rng.Intn(50))
		y := randSeries(rng, 5+rng.Intn(50))
		kim, err := Kim(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := dtw.Distance(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateBound(kim, exact); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEnvelopeBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(80)
		r := rng.Intn(12)
		v := randSeries(rng, n)
		env := NewEnvelope(v, r)
		for i := 0; i < n; i++ {
			lo, hi := i-r, i+r
			if lo < 0 {
				lo = 0
			}
			if hi >= n {
				hi = n - 1
			}
			wantMax, wantMin := v[lo], v[lo]
			for j := lo + 1; j <= hi; j++ {
				wantMax = math.Max(wantMax, v[j])
				wantMin = math.Min(wantMin, v[j])
			}
			if env.Upper[i] != wantMax || env.Lower[i] != wantMin {
				t.Fatalf("trial %d: envelope at %d = [%v,%v], want [%v,%v]",
					trial, i, env.Lower[i], env.Upper[i], wantMin, wantMax)
			}
		}
	}
}

func TestEnvelopeZeroRadius(t *testing.T) {
	v := []float64{3, 1, 4}
	env := NewEnvelope(v, 0)
	for i := range v {
		if env.Upper[i] != v[i] || env.Lower[i] != v[i] {
			t.Fatalf("zero-radius envelope differs from series")
		}
	}
}

func TestEnvelopeEmpty(t *testing.T) {
	env := NewEnvelope(nil, 3)
	if len(env.Upper) != 0 || len(env.Lower) != 0 {
		t.Fatal("empty envelope not empty")
	}
}

func TestKeoghInsideEnvelopeIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randSeries(rng, 60)
	env := NewEnvelope(v, 5)
	// The series is inside its own envelope.
	got, err := Keogh(v, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("self LB_Keogh = %v, want 0", got)
	}
}

func TestKeoghLengthMismatch(t *testing.T) {
	env := NewEnvelope(make([]float64, 10), 2)
	if _, err := Keogh(make([]float64, 9), env, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestKeoghIsLowerBoundWithinRadius(t *testing.T) {
	// LB_Keogh with radius r lower-bounds DTW constrained to a
	// Sakoe-Chiba corridor of radius r, and hence also full DTW only
	// when r covers the full grid; the classical guarantee is against
	// the constrained distance. Check both: bound <= banded(r) always,
	// and bound <= full DTW when r is large.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		n := 20 + rng.Intn(60)
		q := randSeries(rng, n)
		c := randSeries(rng, n)
		r := 2 + rng.Intn(10)
		bound, err := KeoghPair(q, c, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		b := dtw.SakoeChiba(n, n, float64(2*r+1)/float64(n))
		banded, _, err := dtw.Banded(q, c, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateBound(bound, banded); err != nil {
			t.Fatalf("trial %d (r=%d): %v", trial, r, err)
		}
		// Full-radius envelope bounds unconstrained DTW.
		full, err := KeoghPair(q, c, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := dtw.Distance(q, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateBound(full, exact); err != nil {
			t.Fatalf("trial %d full radius: %v", trial, err)
		}
	}
}

func TestKeoghTightensWithSmallerRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := randSeries(rng, 100)
	c := randSeries(rng, 100)
	tight, err := KeoghPair(q, c, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := KeoghPair(q, c, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tight < loose {
		t.Fatalf("smaller radius gave smaller bound: %v < %v", tight, loose)
	}
}

func TestCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := randSeries(rng, 50)
	c := randSeries(rng, 50)
	env := NewEnvelope(c, 5)
	// Threshold below any bound: must skip.
	bound, skip, err := Cascade(q, c, env, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !skip || bound <= 0 {
		t.Fatalf("cascade did not skip with zero threshold: bound=%v skip=%v", bound, skip)
	}
	// Negative threshold disables pruning.
	_, skip, err = Cascade(q, c, env, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if skip {
		t.Fatal("cascade skipped with pruning disabled")
	}
	// Huge threshold: never skip.
	_, skip, err = Cascade(q, c, env, 1e12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if skip {
		t.Fatal("cascade skipped below threshold")
	}
}

func TestCascadeBoundStillValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		q := randSeries(rng, n)
		c := randSeries(rng, n)
		env := NewEnvelope(c, n) // full radius: valid against full DTW
		bound, _, err := Cascade(q, c, env, -1, nil)
		if err != nil {
			return false
		}
		exact, err := dtw.Distance(q, c, nil)
		if err != nil {
			return false
		}
		return ValidateBound(bound, exact) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeCustomDistance(t *testing.T) {
	q := []float64{0, 0}
	c := []float64{3, 4}
	bound, _, err := Cascade(q, c, NewEnvelope(c, 2), -1, series.AbsDistance)
	if err != nil {
		t.Fatal(err)
	}
	// Kim with L1: |0-3| + |0-4| = 7.
	if bound < 7-1e-12 {
		t.Fatalf("cascade bound %v below Kim L1 value 7", bound)
	}
}

func TestValidateBound(t *testing.T) {
	if err := ValidateBound(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBound(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBound(3, 2); err == nil {
		t.Fatal("violation not detected")
	}
}
