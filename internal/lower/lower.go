// Package lower implements lower bounds on the DTW distance — LB_Kim and
// the LB_Keogh envelope bound of "Exact indexing of dynamic time warping"
// (Keogh, VLDB 2002), the paper's reference [7]. Lower bounds let a
// retrieval engine discard most candidates without touching the DTW grid:
// if the bound already exceeds the best distance found so far, the
// candidate cannot enter the result set.
//
// The bounds here are valid for band-constrained DTW as well: every band
// in this repository contains the Sakoe-Chiba corridor its envelope
// assumes or is itself an over-estimate of full DTW, and constrained DTW
// never underestimates the unconstrained distance, so
// LB(x,y) <= DTW(x,y) <= sDTW(x,y) holds throughout.
//
// The public Index builds its k-NN query cascade on these bounds: LB_Kim
// orders and pre-filters candidates, and per-series envelopes (at a
// radius the index derives from the engine's band options so the chain
// above holds) power the LB_Keogh stage. BoundedIndex runs the same
// Kim-first cascade for exact windowed-DTW retrieval. Both finish with
// early-abandoning DTW: the partial row minimum of an abandoned dynamic
// program is one more lower bound in the same chain.
package lower

import (
	"fmt"
	"math"

	"sdtw/internal/series"
)

// Kim returns the LB_Kim lower bound (the simplified 4-point variant in
// common use): the sum of the point costs of the first and last
// elements, which every warp path must align. It is the cheapest bound
// in the cascade.
//
//sdtw:hotpath
func Kim(x, y []float64, dist series.PointDistance) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, fmt.Errorf("lower: empty input (len(x)=%d len(y)=%d)", len(x), len(y))
	}
	if useSquaredKernel(dist) {
		if len(x) == 1 && len(y) == 1 {
			return sq(x[0], y[0]), nil
		}
		return sq(x[0], y[0]) + sq(x[len(x)-1], y[len(y)-1]), nil
	}
	if dist == nil {
		dist = series.SquaredDistance
	}
	if len(x) == 1 && len(y) == 1 {
		// First and last are the same grid cell; summing both would
		// double-count it and overshoot the single-cell DTW distance.
		return dist(x[0], y[0]), nil
	}
	return dist(x[0], y[0]) + dist(x[len(x)-1], y[len(y)-1]), nil
}

// Envelope is the precomputable upper/lower envelope of a series under a
// warping window of the given radius: Upper[i] = max(v[i-r..i+r]),
// Lower[i] = min(v[i-r..i+r]). Envelopes are computed once per indexed
// series and reused for every query (the same one-time trade the paper
// makes for salient features, §3.4).
type Envelope struct {
	Upper, Lower []float64
	Radius       int
}

// NewEnvelope computes the envelope of v for a warping radius r (>= 0)
// using Lemire's streaming min/max (two monotonic deques, O(n)).
//
// A build allocates exactly twice regardless of n and r: one flat backing
// for both output arrays and one for both index deques. The deques are
// rings addressed by head/tail counters — pops move an index instead of
// re-slicing, so the backing never re-grows mid-stream (the window
// [i-r, i+r] bounds the live indices by min(2r+2, n)).
func NewEnvelope(v []float64, r int) Envelope {
	n := len(v)
	if r < 0 {
		r = 0
	}
	env := Envelope{Radius: r}
	out := make([]float64, 2*n)
	env.Upper, env.Lower = out[:n:n], out[n:]
	if n == 0 {
		return env
	}
	// Ring capacity: the deques hold at most min(2r+2, n) live indices
	// (2r+1 in a full window, plus the element being pushed before the
	// lazy head pop). Power-of-two capacity so the wrap is a mask.
	size := 2*r + 2
	if size > n {
		size = n
	}
	ringCap := 1
	for ringCap < size {
		ringCap <<= 1
	}
	mask := ringCap - 1
	dq := make([]int, 2*ringCap)
	maxQ, minQ := dq[:ringCap:ringCap], dq[ringCap:]
	var maxH, maxT, minH, minT int // deques occupy [head, tail)

	emit := 0 // next position whose window is complete
	for j := 0; j < n; j++ {
		// Push j: drop dominated indices from the tails, then append.
		for maxT > maxH && v[maxQ[(maxT-1)&mask]] <= v[j] {
			maxT--
		}
		maxQ[maxT&mask] = j
		maxT++
		for minT > minH && v[minQ[(minT-1)&mask]] >= v[j] {
			minT--
		}
		minQ[minT&mask] = j
		minT++
		if j < r {
			continue // window [i-r, i+r] for i = j-r not complete yet
		}
		i := j - r
		lo := i - r
		for maxQ[maxH&mask] < lo {
			maxH++
		}
		for minQ[minH&mask] < lo {
			minH++
		}
		env.Upper[i] = v[maxQ[maxH&mask]]
		env.Lower[i] = v[minQ[minH&mask]]
		emit = i + 1
	}
	// Trailing positions whose window is truncated by the end of v.
	for i := emit; i < n; i++ {
		lo := i - r
		for maxQ[maxH&mask] < lo {
			maxH++
		}
		for minQ[minH&mask] < lo {
			minH++
		}
		env.Upper[i] = v[maxQ[maxH&mask]]
		env.Lower[i] = v[minQ[minH&mask]]
	}
	return env
}

// Keogh returns the LB_Keogh lower bound of the DTW distance between the
// query q and the series whose envelope is env. Both must have the same
// length (resample first for unequal lengths; the bound then holds for
// the resampled problem). With squared point costs the bound is
// Σ (q_i − U_i)² for q_i above the upper envelope plus (q_i − L_i)² below
// the lower envelope.
func Keogh(q []float64, env Envelope, dist series.PointDistance) (float64, error) {
	sum, _, err := KeoghUnder(q, env, math.Inf(1), dist)
	return sum, err
}

// KeoghUnder is Keogh with early abandonment against a pruning threshold:
// every partial sum of envelope deviations is itself a valid (and
// non-decreasing) lower bound, so summation stops the moment the partial
// sum exceeds threshold (exclusive) and the partial sum is returned with
// abandoned=true — it already proves the candidate prunable at that
// threshold. A threshold of +Inf (or NaN) never abandons and returns the
// exact LB_Keogh value, bit for bit the same as Keogh. Retrieval cascades
// pass their best-so-far k-th distance, so hopeless candidates stop after
// a few elements instead of summing the whole series.
//
// Abandonment is only meaningful for non-negative point costs (the
// default squared cost is); signed custom costs must pass +Inf.
//
//sdtw:hotpath
func KeoghUnder(q []float64, env Envelope, threshold float64, dist series.PointDistance) (float64, bool, error) {
	if len(q) != len(env.Upper) {
		return 0, false, fmt.Errorf("lower: query length %d != envelope length %d", len(q), len(env.Upper))
	}
	if math.IsNaN(threshold) {
		threshold = math.Inf(1)
	}
	if useSquaredKernel(dist) {
		sum, abandoned := keoghSquaredUnder(q, env.Upper, env.Lower, threshold)
		return sum, abandoned, nil
	}
	if dist == nil {
		dist = series.SquaredDistance
	}
	sum, abandoned := keoghGenericUnder(q, env, threshold, dist)
	return sum, abandoned, nil
}

// KeoghPair computes LB_Keogh directly from two equal-length series and a
// warping radius, building the envelope on the fly. Convenience for
// one-shot checks; indexes should precompute envelopes.
func KeoghPair(q, c []float64, r int, dist series.PointDistance) (float64, error) {
	if len(q) != len(c) {
		return 0, fmt.Errorf("lower: LB_Keogh needs equal lengths, got %d and %d", len(q), len(c))
	}
	return Keogh(q, NewEnvelope(c, r), dist)
}

// Cascade evaluates the bound cascade (Kim, then Keogh) against a pruning
// threshold and reports whether the candidate can be skipped. A negative
// threshold disables pruning (Skip always false). The returned bound is
// the tightest one computed; when the Keogh stage abandons early, that is
// the partial Keogh sum — already above the threshold, so the skip
// decision is identical to the full evaluation's.
func Cascade(q []float64, c []float64, env Envelope, threshold float64, dist series.PointDistance) (bound float64, skip bool, err error) {
	kim, err := Kim(q, c, dist)
	if err != nil {
		return 0, false, err
	}
	if threshold >= 0 && kim > threshold {
		return kim, true, nil
	}
	if len(q) == len(env.Upper) {
		budget := math.Inf(1)
		if threshold >= 0 {
			budget = threshold
		}
		keogh, abandoned, err := KeoghUnder(q, env, budget, dist)
		if err != nil {
			return kim, false, err
		}
		if keogh > kim {
			kim = keogh
		}
		if abandoned || (threshold >= 0 && kim > threshold) {
			return kim, true, nil
		}
	}
	return kim, false, nil
}

// ValidateBound is a test helper contract: a lower bound must never
// exceed the exact DTW distance. It returns an error describing the
// violation, or nil.
func ValidateBound(bound, exact float64) error {
	if bound > exact+float64(1e-9*(1+math.Abs(exact))) {
		return fmt.Errorf("lower: bound %v exceeds exact DTW %v", bound, exact)
	}
	return nil
}
