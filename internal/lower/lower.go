// Package lower implements lower bounds on the DTW distance — LB_Kim and
// the LB_Keogh envelope bound of "Exact indexing of dynamic time warping"
// (Keogh, VLDB 2002), the paper's reference [7]. Lower bounds let a
// retrieval engine discard most candidates without touching the DTW grid:
// if the bound already exceeds the best distance found so far, the
// candidate cannot enter the result set.
//
// The bounds here are valid for band-constrained DTW as well: every band
// in this repository contains the Sakoe-Chiba corridor its envelope
// assumes or is itself an over-estimate of full DTW, and constrained DTW
// never underestimates the unconstrained distance, so
// LB(x,y) <= DTW(x,y) <= sDTW(x,y) holds throughout.
//
// The public Index builds its k-NN query cascade on these bounds: LB_Kim
// orders and pre-filters candidates, and per-series envelopes (at a
// radius the index derives from the engine's band options so the chain
// above holds) power the LB_Keogh stage. BoundedIndex runs the same
// Kim-first cascade for exact windowed-DTW retrieval. Both finish with
// early-abandoning DTW: the partial row minimum of an abandoned dynamic
// program is one more lower bound in the same chain.
package lower

import (
	"fmt"
	"math"

	"sdtw/internal/series"
)

// Kim returns the LB_Kim lower bound (the simplified 4-point variant in
// common use): the sum of the point costs of the first and last
// elements, which every warp path must align. It is the cheapest bound
// in the cascade.
func Kim(x, y []float64, dist series.PointDistance) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, fmt.Errorf("lower: empty input (len(x)=%d len(y)=%d)", len(x), len(y))
	}
	if dist == nil {
		dist = series.SquaredDistance
	}
	if len(x) == 1 && len(y) == 1 {
		// First and last are the same grid cell; summing both would
		// double-count it and overshoot the single-cell DTW distance.
		return dist(x[0], y[0]), nil
	}
	return dist(x[0], y[0]) + dist(x[len(x)-1], y[len(y)-1]), nil
}

// Envelope is the precomputable upper/lower envelope of a series under a
// warping window of the given radius: Upper[i] = max(v[i-r..i+r]),
// Lower[i] = min(v[i-r..i+r]). Envelopes are computed once per indexed
// series and reused for every query (the same one-time trade the paper
// makes for salient features, §3.4).
type Envelope struct {
	Upper, Lower []float64
	Radius       int
}

// NewEnvelope computes the envelope of v for a warping radius r (>= 0)
// using Lemire's streaming min/max (two monotonic deques, O(n)).
func NewEnvelope(v []float64, r int) Envelope {
	n := len(v)
	if r < 0 {
		r = 0
	}
	env := Envelope{Upper: make([]float64, n), Lower: make([]float64, n), Radius: r}
	if n == 0 {
		return env
	}
	// Window for position i is [i-r, i+r]. Maintain index deques whose
	// front always holds the max (resp. min) of the current window.
	maxDq := make([]int, 0, 2*r+2)
	minDq := make([]int, 0, 2*r+2)
	push := func(j int) {
		for len(maxDq) > 0 && v[maxDq[len(maxDq)-1]] <= v[j] {
			maxDq = maxDq[:len(maxDq)-1]
		}
		maxDq = append(maxDq, j)
		for len(minDq) > 0 && v[minDq[len(minDq)-1]] >= v[j] {
			minDq = minDq[:len(minDq)-1]
		}
		minDq = append(minDq, j)
	}
	// Prime the first window [0, r].
	for j := 0; j <= r && j < n; j++ {
		push(j)
	}
	for i := 0; i < n; i++ {
		if i+r < n && i > 0 {
			push(i + r)
		}
		lo := i - r
		for len(maxDq) > 0 && maxDq[0] < lo {
			maxDq = maxDq[1:]
		}
		for len(minDq) > 0 && minDq[0] < lo {
			minDq = minDq[1:]
		}
		env.Upper[i] = v[maxDq[0]]
		env.Lower[i] = v[minDq[0]]
	}
	return env
}

// Keogh returns the LB_Keogh lower bound of the DTW distance between the
// query q and the series whose envelope is env. Both must have the same
// length (resample first for unequal lengths; the bound then holds for
// the resampled problem). With squared point costs the bound is
// Σ (q_i − U_i)² for q_i above the upper envelope plus (q_i − L_i)² below
// the lower envelope.
func Keogh(q []float64, env Envelope, dist series.PointDistance) (float64, error) {
	if len(q) != len(env.Upper) {
		return 0, fmt.Errorf("lower: query length %d != envelope length %d", len(q), len(env.Upper))
	}
	if dist == nil {
		dist = series.SquaredDistance
	}
	sum := 0.0
	for i, v := range q {
		switch {
		case v > env.Upper[i]:
			sum += dist(v, env.Upper[i])
		case v < env.Lower[i]:
			sum += dist(v, env.Lower[i])
		}
	}
	return sum, nil
}

// KeoghPair computes LB_Keogh directly from two equal-length series and a
// warping radius, building the envelope on the fly. Convenience for
// one-shot checks; indexes should precompute envelopes.
func KeoghPair(q, c []float64, r int, dist series.PointDistance) (float64, error) {
	if len(q) != len(c) {
		return 0, fmt.Errorf("lower: LB_Keogh needs equal lengths, got %d and %d", len(q), len(c))
	}
	return Keogh(q, NewEnvelope(c, r), dist)
}

// Cascade evaluates the bound cascade (Kim, then Keogh) against a pruning
// threshold and reports whether the candidate can be skipped. A negative
// threshold disables pruning (Skip always false). The returned bound is
// the tightest one computed.
func Cascade(q []float64, c []float64, env Envelope, threshold float64, dist series.PointDistance) (bound float64, skip bool, err error) {
	kim, err := Kim(q, c, dist)
	if err != nil {
		return 0, false, err
	}
	if threshold >= 0 && kim > threshold {
		return kim, true, nil
	}
	if len(q) == len(env.Upper) {
		keogh, err := Keogh(q, env, dist)
		if err != nil {
			return kim, false, err
		}
		if keogh > kim {
			kim = keogh
		}
		if threshold >= 0 && kim > threshold {
			return kim, true, nil
		}
	}
	return kim, false, nil
}

// ValidateBound is a test helper contract: a lower bound must never
// exceed the exact DTW distance. It returns an error describing the
// violation, or nil.
func ValidateBound(bound, exact float64) error {
	if bound > exact+1e-9*(1+math.Abs(exact)) {
		return fmt.Errorf("lower: bound %v exceeds exact DTW %v", bound, exact)
	}
	return nil
}
