package lower

// Monomorphized lower-bound kernels for the default squared point cost,
// the sibling of internal/dtw/kernel.go: LB_Kim and LB_Keogh otherwise
// pay one indirect series.PointDistance call per contributing element,
// which dominates their runtime in the retrieval cascade. The same
// bit-identity contract applies — identical floating-point operations in
// identical order, with squared costs rounded through an explicit float64
// conversion so fused multiply-add cannot diverge from the generic path.

import (
	"sdtw/internal/series"
)

// useSquaredKernel reports whether dist selects the default squared cost
// (nil or series.SquaredDistance itself), enabling the monomorphized
// kernels. The decision and the repository-wide series.SetKernelDispatch
// A/B switch live in internal/series, shared with the dynamic-program
// kernels so the two packages cannot flip out of lockstep.
func useSquaredKernel(dist series.PointDistance) bool {
	return series.UseSquaredKernel(dist)
}

// sq is the inlined default cost (a-b)², rounded through an explicit
// conversion exactly like a series.PointDistance call result.
func sq(a, b float64) float64 {
	d := a - b
	return float64(d * d)
}

// keoghSquaredUnder sums the squared envelope deviations of q, stopping
// as soon as the partial sum exceeds threshold (exclusive) — the partial
// sum is itself a non-decreasing lower bound, so an abandoned sum already
// proves the candidate prunable. The envelopes are re-sliced to len(q) so
// the hot loop carries no bounds checks. threshold = +Inf never abandons
// and yields the exact LB_Keogh sum, bit-identical to the generic loop.
//
//sdtw:hotpath
func keoghSquaredUnder(q, upper, lowerEnv []float64, threshold float64) (float64, bool) {
	up := upper[:len(q)]
	lo := lowerEnv[:len(q)]
	sum := 0.0
	for i, v := range q {
		var d float64
		if u := up[i]; v > u {
			d = v - u
		} else if l := lo[i]; v < l {
			d = v - l
		} else {
			continue
		}
		sum += float64(d * d)
		if sum > threshold {
			return sum, true
		}
	}
	return sum, false
}

// keoghGenericUnder is keoghSquaredUnder through an arbitrary point cost,
// with the same accumulation order and abandonment points as the
// specialized kernel and the same per-element order as the original
// non-abandoning Keogh loop.
//
//sdtw:hotpath
func keoghGenericUnder(q []float64, env Envelope, threshold float64, dist series.PointDistance) (float64, bool) {
	sum := 0.0
	for i, v := range q {
		switch {
		case v > env.Upper[i]:
			sum += dist(v, env.Upper[i])
		case v < env.Lower[i]:
			sum += dist(v, env.Lower[i])
		default:
			continue
		}
		if sum > threshold {
			return sum, true
		}
	}
	return sum, false
}
