package lower

import (
	"math"
	"math/rand"
	"testing"

	"sdtw/internal/series"
)

// sqGeneric mirrors series.SquaredDistance with a distinct code pointer,
// forcing the generic indirect-call path (see the dtw kernel tests).
func sqGeneric(a, b float64) float64 { d := a - b; return d * d }

func randomValues(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	scale := math.Pow(10, float64(rng.Intn(5)-2))
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * scale
	}
	return v
}

func TestKernelDispatchLower(t *testing.T) {
	if !useSquaredKernel(nil) || !useSquaredKernel(series.SquaredDistance) {
		t.Error("default costs must select the squared kernel")
	}
	if useSquaredKernel(sqGeneric) || useSquaredKernel(series.AbsDistance) {
		t.Error("custom costs must not select the squared kernel")
	}
	series.SetKernelDispatch(false)
	if useSquaredKernel(nil) {
		t.Error("series.SetKernelDispatch(false) must disable the squared kernel")
	}
	series.SetKernelDispatch(true)
	if !useSquaredKernel(nil) {
		t.Error("series.SetKernelDispatch(true) must re-enable the squared kernel")
	}
}

// TestKimDifferential pins the monomorphized LB_Kim against the generic
// path, bit for bit, including the single-point special case.
func TestKimDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		m := 1 + rng.Intn(40)
		if trial == 0 {
			n, m = 1, 1
		}
		x := randomValues(rng, n)
		y := randomValues(rng, m)
		g, err := Kim(x, y, sqGeneric)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Kim(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(g) != math.Float64bits(s) {
			t.Fatalf("trial %d: LB_Kim bits differ: %v vs %v", trial, g, s)
		}
	}
}

// TestKeoghDifferential pins the monomorphized LB_Keogh against the
// generic path on random queries and envelopes.
func TestKeoghDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		q := randomValues(rng, n)
		c := randomValues(rng, n)
		env := NewEnvelope(c, rng.Intn(n+3))
		g, err := Keogh(q, env, sqGeneric)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Keogh(q, env, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(g) != math.Float64bits(s) {
			t.Fatalf("trial %d: LB_Keogh bits differ: %v vs %v", trial, g, s)
		}
	}
}

// TestKeoghUnderProperties checks the early-abandoning Keogh contract on
// random thresholds, for both dispatch paths:
//
//   - threshold +Inf never abandons and equals Keogh bit for bit;
//   - an abandoned sum strictly exceeds the threshold (it proves the
//     candidate prunable) and never exceeds the full sum;
//   - a non-abandoned sum equals the full sum bit for bit;
//   - the prune decision (bound > threshold) matches the full
//     evaluation's in every case.
func TestKeoghUnderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := []series.PointDistance{nil, sqGeneric}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(120)
		q := randomValues(rng, n)
		c := randomValues(rng, n)
		env := NewEnvelope(c, rng.Intn(n+2))
		dist := dists[trial%2]

		full, err := Keogh(q, env, dist)
		if err != nil {
			t.Fatal(err)
		}
		inf, abandoned, err := KeoghUnder(q, env, math.Inf(1), dist)
		if err != nil {
			t.Fatal(err)
		}
		if abandoned || math.Float64bits(inf) != math.Float64bits(full) {
			t.Fatalf("trial %d: +Inf threshold must return the exact bound: (%v,%v) vs %v",
				trial, inf, abandoned, full)
		}

		threshold := full * rng.Float64() * 1.5
		if trial%5 == 0 {
			threshold = 0
		}
		got, abandoned, err := KeoghUnder(q, env, threshold, dist)
		if err != nil {
			t.Fatal(err)
		}
		if abandoned {
			if got <= threshold {
				t.Fatalf("trial %d: abandoned sum %v must exceed threshold %v", trial, got, threshold)
			}
			if got > full {
				t.Fatalf("trial %d: partial sum %v exceeds full bound %v", trial, got, full)
			}
		} else if math.Float64bits(got) != math.Float64bits(full) {
			t.Fatalf("trial %d: non-abandoned sum %v != full bound %v", trial, got, full)
		}
		if (got > threshold) != (full > threshold) {
			t.Fatalf("trial %d: prune decision differs: partial %v, full %v, threshold %v",
				trial, got, full, threshold)
		}
	}
}

// TestCascadeAbandonedKeoghConsistent pins that threading the threshold
// into the Keogh stage never changes Cascade's skip decision.
func TestCascadeAbandonedKeoghConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(60)
		q := randomValues(rng, n)
		c := randomValues(rng, n)
		env := NewEnvelope(c, 1+rng.Intn(8))

		full, err := Keogh(q, env, nil)
		if err != nil {
			t.Fatal(err)
		}
		kim, err := Kim(q, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		tight := full
		if kim > tight {
			tight = kim
		}
		for _, threshold := range []float64{-1, 0, tight * 0.5, tight, tight * 2} {
			bound, skip, err := Cascade(q, c, env, threshold, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantSkip := threshold >= 0 && tight > threshold
			if skip != wantSkip {
				t.Fatalf("trial %d threshold %v: skip=%v want %v (bound %v, tight %v)",
					trial, threshold, skip, wantSkip, bound, tight)
			}
			if !skip && bound != tight {
				t.Fatalf("trial %d threshold %v: surviving bound %v != tightest %v",
					trial, threshold, bound, tight)
			}
		}
	}
}

// TestEnvelopeRingBruteForce re-verifies the ring-deque envelope against
// a brute-force sliding window across awkward shapes: tiny series, radii
// past the length, long plateaus (equal values stress the tie dropping),
// and monotone ramps (worst-case one-sided deques).
func TestEnvelopeRingBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []func(n int) []float64{
		func(n int) []float64 { return randomValues(rng, n) },
		func(n int) []float64 { // plateaus
			v := make([]float64, n)
			level := 0.0
			for i := range v {
				if rng.Intn(4) == 0 {
					level = rng.Float64()
				}
				v[i] = level
			}
			return v
		},
		func(n int) []float64 { // monotone ramp
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(i)
			}
			return v
		},
	}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(80)
		v := shapes[trial%len(shapes)](n)
		r := rng.Intn(n + 5)
		env := NewEnvelope(v, r)
		if len(env.Upper) != n || len(env.Lower) != n {
			t.Fatalf("trial %d: envelope lengths %d/%d, want %d", trial, len(env.Upper), len(env.Lower), n)
		}
		for i := 0; i < n; i++ {
			lo, hi := i-r, i+r
			if lo < 0 {
				lo = 0
			}
			if hi > n-1 {
				hi = n - 1
			}
			up, dn := v[lo], v[lo]
			for j := lo + 1; j <= hi; j++ {
				if v[j] > up {
					up = v[j]
				}
				if v[j] < dn {
					dn = v[j]
				}
			}
			if env.Upper[i] != up || env.Lower[i] != dn {
				t.Fatalf("trial %d (n=%d r=%d) pos %d: envelope (%v,%v), want (%v,%v)",
					trial, n, r, i, env.Upper[i], env.Lower[i], up, dn)
			}
		}
	}
}

// TestEnvelopeAllocs pins the satellite: an envelope build allocates
// exactly twice — one backing for both outputs, one for both ring deques
// — at every size and radius.
func TestEnvelopeAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tc := range []struct{ n, r int }{
		{10, 0}, {10, 3}, {10, 100}, {500, 5}, {500, 80}, {1000, 1000},
	} {
		v := randomValues(rng, tc.n)
		allocs := testing.AllocsPerRun(20, func() {
			NewEnvelope(v, tc.r)
		})
		if allocs != 2 {
			t.Errorf("NewEnvelope(n=%d, r=%d) allocates %v times per build, want exactly 2", tc.n, tc.r, allocs)
		}
	}
}

func BenchmarkKeoghKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	q := randomValues(rng, 1024)
	c := randomValues(rng, 1024)
	env := NewEnvelope(c, 64)
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Keogh(q, env, sqGeneric); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("specialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Keogh(q, env, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkNewEnvelope(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	v := randomValues(rng, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewEnvelope(v, 64)
	}
}

// TestBoundAllocs pins the hot bound entry points at zero allocations
// per call (the //sdtw:hotpath contract; NewEnvelope has its own
// exactly-2 pin above).
func TestBoundAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q := randomValues(rng, 256)
	c := randomValues(rng, 256)
	env := NewEnvelope(c, 8)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"Kim/specialized", func() { _, _ = Kim(q, c, nil) }},
		{"Kim/generic", func() { _, _ = Kim(q, c, sqGeneric) }},
		{"KeoghUnder/specialized", func() { _, _, _ = KeoghUnder(q, env, math.Inf(1), nil) }},
		{"KeoghUnder/generic", func() { _, _, _ = KeoghUnder(q, env, math.Inf(1), sqGeneric) }},
	} {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %v times per call, want 0", tc.name, allocs)
		}
	}
}
