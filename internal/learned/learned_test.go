package learned

import (
	"testing"

	"sdtw/internal/datasets"
	"sdtw/internal/dtw"
)

func TestLearnOnGun(t *testing.T) {
	d := datasets.Gun(datasets.Config{Seed: 71, SeriesPerClass: 6})
	b, err := Learn(d.Series, Config{Segments: 6, MaxIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.HalfWidths) != 6 {
		t.Fatalf("got %d segments", len(b.HalfWidths))
	}
	if b.TrainAccuracy < 0.7 {
		t.Fatalf("training accuracy %v too low on a 2-class workload", b.TrainAccuracy)
	}
	if b.Iterations < 1 {
		t.Fatal("no hill-climbing iterations recorded")
	}
	for seg, hw := range b.HalfWidths {
		if hw < 1 || hw > d.Length {
			t.Fatalf("segment %d half-width %d out of range", seg, hw)
		}
	}
}

func TestMaterializeValidBand(t *testing.T) {
	b := &Band{HalfWidths: []int{3, 8, 3}, Length: 60}
	band := b.Materialize(60, 60)
	if err := band.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mid-series rows (segment 1) must be wider than early rows
	// (segment 0), up to boundary clamping.
	wMid := band.Hi[30] - band.Lo[30] + 1
	wEarly := band.Hi[10] - band.Lo[10] + 1
	if wMid <= wEarly {
		t.Fatalf("segment widths not materialised: mid %d vs early %d", wMid, wEarly)
	}
	// Rectangular target grids rescale widths.
	rect := b.Materialize(60, 120)
	if err := rect.Validate(); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 60)
	y := make([]float64, 120)
	if _, _, err := dtw.Banded(x, y, rect, nil); err != nil {
		t.Fatalf("rectangular learned band unusable: %v", err)
	}
}

func TestLearnValidation(t *testing.T) {
	if _, err := Learn(nil, Config{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	d := datasets.Gun(datasets.Config{Seed: 1, SeriesPerClass: 1})
	short := d.Series
	short[1].Values = short[1].Values[:50]
	if _, err := Learn(short, Config{}); err == nil {
		t.Fatal("unequal lengths accepted")
	}
}

func TestClassify1NN(t *testing.T) {
	d := datasets.Gun(datasets.Config{Seed: 73, SeriesPerClass: 6})
	train := d.Series[:10]
	b, err := Learn(train, Config{Segments: 4, MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	holdout := d.Series[10:]
	for _, q := range holdout {
		label, err := Classify1NN(b, train, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if label == q.Label {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(holdout)); frac < 0.6 {
		t.Fatalf("holdout accuracy %v too low", frac)
	}
	if _, err := Classify1NN(b, nil, d.Series[0], nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}

// TestLearnedNeedsTraining contrasts the two constraint philosophies: the
// learned band's accuracy depends on the training sample, while sDTW's
// structural constraints need none — the positioning argument of the
// paper's §1.
func TestLearnedNeedsTraining(t *testing.T) {
	d := datasets.Gun(datasets.Config{Seed: 79, SeriesPerClass: 8})
	tiny := d.Series[:2] // degenerate training set: one series per class at best
	b, err := Learn(tiny, Config{Segments: 4, MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With two training series, leave-one-out 1NN accuracy is forced: the
	// only candidate neighbour has the other label when classes differ.
	if tiny[0].Label != tiny[1].Label && b.TrainAccuracy != 0 {
		t.Fatalf("degenerate training accuracy = %v, want 0", b.TrainAccuracy)
	}
}
