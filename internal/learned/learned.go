// Package learned implements a simplified Ratanamahatana–Keogh style
// learned band ("Making time-series classification more accurate using
// learned constraints", SDM 2004) — the alternative constraint-selection
// approach the paper contrasts sDTW against in §1: instead of reading
// structure from the two series being compared, it *learns* per-region
// band widths from labeled training data by hill-climbing on
// leave-one-out nearest-neighbour accuracy.
//
// The implementation models the band as S contiguous segments along the
// diagonal, each with its own half-width. Search starts from a uniform
// width and greedily grows or shrinks one segment at a time while
// classification accuracy does not degrade, preferring smaller bands on
// ties (the R-K heuristic). It exists here as the trainable baseline the
// paper's introduction positions sDTW against: sDTW needs no training
// data; this does.
package learned

import (
	"fmt"
	"math"

	"sdtw/internal/dtw"
	"sdtw/internal/series"
)

// Config controls band learning.
type Config struct {
	// Segments is S, the number of independently-sized band segments.
	// Zero means 8.
	Segments int
	// InitWidthFrac is the starting half-width as a fraction of the
	// series length. Zero means 0.10.
	InitWidthFrac float64
	// MaxIters bounds hill-climbing sweeps. Zero means 20.
	MaxIters int
	// StepFrac is the width increment per move as a fraction of length.
	// Zero means 0.02.
	StepFrac float64
	// PointDistance is the element cost; nil means squared.
	PointDistance series.PointDistance
}

func (c Config) withDefaults() Config {
	if c.Segments <= 0 {
		c.Segments = 8
	}
	if c.InitWidthFrac <= 0 {
		c.InitWidthFrac = 0.10
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 20
	}
	if c.StepFrac <= 0 {
		c.StepFrac = 0.02
	}
	return c
}

// Band is a learned constraint: per-segment half-widths around the
// diagonal for equal-length series of the given length.
type Band struct {
	// HalfWidths holds one half-width (in samples) per segment.
	HalfWidths []int
	// Length is the series length the band was trained for.
	Length int
	// TrainAccuracy is the leave-one-out 1NN accuracy on the training
	// set under this band.
	TrainAccuracy float64
	// Iterations is the number of hill-climbing sweeps performed.
	Iterations int
}

// Materialize converts the learned half-widths into a dtw.Band for an
// n-by-m grid, interpolating segment widths along the scaled diagonal.
func (b *Band) Materialize(n, m int) dtw.Band {
	out := dtw.Band{Lo: make([]int, n), Hi: make([]int, n), M: m}
	segs := len(b.HalfWidths)
	for i := 0; i < n; i++ {
		seg := i * segs / n
		if seg >= segs {
			seg = segs - 1
		}
		c := dtw.DiagonalColumn(i, n, m)
		// Scale the learned half-width onto the target column count.
		hw := b.HalfWidths[seg]
		if b.Length > 0 && m != b.Length {
			hw = int(math.Round(float64(hw) * float64(m) / float64(b.Length)))
		}
		if hw < 1 {
			hw = 1
		}
		out.Lo[i] = c - hw
		out.Hi[i] = c + hw
	}
	return out.Normalize()
}

// Learn trains a band on the labeled, equal-length training series.
func Learn(train []series.Series, cfg Config) (*Band, error) {
	cfg = cfg.withDefaults()
	if len(train) < 2 {
		return nil, fmt.Errorf("learned: need at least 2 training series, got %d", len(train))
	}
	length := train[0].Len()
	if length == 0 {
		return nil, fmt.Errorf("learned: empty training series")
	}
	for i, s := range train {
		if s.Len() != length {
			return nil, fmt.Errorf("learned: series %d has length %d, want %d (learned bands need equal lengths)", i, s.Len(), length)
		}
	}
	step := int(math.Round(cfg.StepFrac * float64(length)))
	if step < 1 {
		step = 1
	}
	init := int(math.Round(cfg.InitWidthFrac * float64(length)))
	if init < 1 {
		init = 1
	}
	b := &Band{HalfWidths: make([]int, cfg.Segments), Length: length}
	for i := range b.HalfWidths {
		b.HalfWidths[i] = init
	}
	best := looAccuracy(train, b, cfg)
	b.TrainAccuracy = best

	for iter := 0; iter < cfg.MaxIters; iter++ {
		improved := false
		for seg := 0; seg < cfg.Segments; seg++ {
			for _, delta := range []int{step, -step} {
				old := b.HalfWidths[seg]
				next := old + delta
				if next < 1 || next > length {
					continue
				}
				b.HalfWidths[seg] = next
				acc := looAccuracy(train, b, cfg)
				// Accept strictly better accuracy, or equal accuracy
				// with a smaller band (the R-K preference for tight
				// constraints).
				if acc > best || (acc == best && delta < 0) {
					best = acc
					improved = true
				} else {
					b.HalfWidths[seg] = old
				}
			}
		}
		b.Iterations = iter + 1
		if !improved {
			break
		}
	}
	b.TrainAccuracy = best
	return b, nil
}

// looAccuracy is leave-one-out 1NN accuracy of the training set under the
// candidate band.
func looAccuracy(train []series.Series, b *Band, cfg Config) float64 {
	n := len(train)
	band := b.Materialize(b.Length, b.Length)
	correct := 0
	var ws dtw.Workspace
	for q := 0; q < n; q++ {
		bestD := math.Inf(1)
		bestLabel := -1
		for c := 0; c < n; c++ {
			if c == q {
				continue
			}
			d, _, err := dtw.BandedWS(train[q].Values, train[c].Values, band, cfg.PointDistance, &ws)
			if err != nil {
				continue
			}
			if d < bestD {
				bestD, bestLabel = d, train[c].Label
			}
		}
		if bestLabel == train[q].Label {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// Classify1NN labels a query by its nearest training series under the
// learned band.
func Classify1NN(b *Band, train []series.Series, query series.Series, dist series.PointDistance) (int, error) {
	if len(train) == 0 {
		return 0, fmt.Errorf("learned: empty training set")
	}
	band := b.Materialize(query.Len(), b.Length)
	bestD := math.Inf(1)
	bestLabel := -1
	var ws dtw.Workspace
	for _, c := range train {
		d, _, err := dtw.BandedWS(query.Values, c.Values, band, dist, &ws)
		if err != nil {
			return 0, err
		}
		if d < bestD {
			bestD, bestLabel = d, c.Label
		}
	}
	return bestLabel, nil
}
