// Package scalespace builds the 1-D Gaussian scale space and
// difference-of-Gaussians (DoG) stack that the salient-feature detector of
// package sift searches (paper §3.1.2, step 1).
//
// The series is organised into octaves: within an octave the smoothing
// scale grows geometrically by κ = 2^{1/s} per level; after s levels the
// scale has doubled and the series is downsampled by two to seed the next
// octave. Adjacent smoothed levels are subtracted to produce the DoG
// series D(i,σ) = L(i,κσ) − L(i,σ) whose scale-space extrema mark salient
// temporal features.
package scalespace

import (
	"fmt"
	"math"
)

// DefaultBaseSigma is the smoothing scale assigned to level 0 of octave 0,
// the SIFT convention.
const DefaultBaseSigma = 1.6

// Config controls pyramid construction.
type Config struct {
	// Octaves is the number of octaves. Zero means auto; see AutoOctaves.
	Octaves int
	// Levels is s, the number of scale sub-divisions per octave (κ^s = 2).
	// Zero means the paper default s = 2.
	Levels int
	// BaseSigma is the scale of the first level. Zero means 1.6.
	BaseSigma float64
}

func (c Config) withDefaults(n int) Config {
	if c.Levels <= 0 {
		c.Levels = 2
	}
	if c.BaseSigma <= 0 {
		c.BaseSigma = DefaultBaseSigma
	}
	if c.Octaves <= 0 {
		c.Octaves = AutoOctaves(n)
	}
	return c
}

// AutoOctaves returns the default octave count for a series of length n:
// ⌊log2 n⌋ − 4, at least 3, and never so many that an octave would shrink
// below 8 samples.
//
// The paper's §4.3 states o = ⌊log2 N⌋ − 6, which yields a single octave
// for the paper's own series lengths (150–275) — yet its Table 2 reports
// substantial feature populations at three distinct scale classes, which
// requires at least three octaves. We therefore treat the paper's formula
// as shifted and default to ⌊log2 N⌋ − 4 (3 octaves at N=150, 4 at
// N=270), which reproduces Table 2's fine/medium/rough structure. The
// paper's literal value remains available through Config.Octaves.
func AutoOctaves(n int) int {
	if n < 2 {
		return 1
	}
	o := int(math.Floor(math.Log2(float64(n)))) - 4
	if o < 3 {
		o = 3
	}
	// Cap: octave k has ~n/2^k samples; keep at least 8.
	maxO := 1
	for length := n; length >= 16; length /= 2 {
		maxO++
	}
	if o > maxO {
		o = maxO
	}
	return o
}

// Level is one smoothed version of the input within an octave.
type Level struct {
	// Values is the smoothed series at this octave's resolution.
	Values []float64
	// Sigma is the absolute smoothing scale in original-series samples.
	Sigma float64
}

// Octave groups the Gaussian levels and DoG levels sharing one resolution.
type Octave struct {
	// Index is the octave number (0 = original resolution).
	Index int
	// Stride is 2^Index: one sample here spans Stride original samples.
	Stride int
	// Gauss holds Levels+3 progressively smoothed series.
	Gauss []Level
	// DoG holds Levels+2 difference series; DoG[l] = Gauss[l+1] − Gauss[l].
	// DoG[l].Sigma records the lower of the two scales (the paper's σ in
	// D(i,σ) = L(i,κσ) − L(i,σ)).
	DoG []Level
}

// Pyramid is the full multi-octave scale-space representation of a series.
type Pyramid struct {
	Octaves []Octave
	Cfg     Config
	// N is the original series length.
	N int
}

// Kernel returns a normalised 1-D Gaussian kernel for scale sigma,
// truncated at ±3σ (≥99.7% of the mass, the paper's scope convention).
func Kernel(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	k := make([]float64, 2*radius+1)
	sum := 0.0
	inv := 1 / (2 * sigma * sigma)
	for i := -radius; i <= radius; i++ {
		v := math.Exp(-float64(i*i) * inv)
		k[i+radius] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// Convolve filters v with kernel k using replicate (clamp-to-edge) border
// handling, the standard choice for time-series smoothing since it avoids
// inventing zero-valued samples at the boundaries.
func Convolve(v, k []float64) []float64 {
	n := len(v)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	radius := len(k) / 2
	for i := 0; i < n; i++ {
		acc := 0.0
		for t := -radius; t <= radius; t++ {
			j := i + t
			if j < 0 {
				j = 0
			} else if j >= n {
				j = n - 1
			}
			acc += v[j] * k[t+radius]
		}
		out[i] = acc
	}
	return out
}

// Smooth convolves v with a Gaussian of scale sigma.
func Smooth(v []float64, sigma float64) []float64 {
	if sigma <= 0 {
		out := make([]float64, len(v))
		copy(out, v)
		return out
	}
	return Convolve(v, Kernel(sigma))
}

// Downsample keeps every second sample of v ("picking every second pixel",
// §3.1.2), halving the temporal resolution.
func Downsample(v []float64) []float64 {
	out := make([]float64, (len(v)+1)/2)
	for i := range out {
		out[i] = v[2*i]
	}
	return out
}

// Build constructs the Gaussian pyramid and DoG stack for v.
func Build(v []float64, cfg Config) (*Pyramid, error) {
	if len(v) < 4 {
		return nil, fmt.Errorf("scalespace: series too short (%d samples, need >= 4)", len(v))
	}
	cfg = cfg.withDefaults(len(v))
	s := cfg.Levels
	kappa := math.Pow(2, 1/float64(s))
	p := &Pyramid{Cfg: cfg, N: len(v)}

	base := v
	stride := 1
	for o := 0; o < cfg.Octaves; o++ {
		if len(base) < 4 {
			break
		}
		oct := Octave{Index: o, Stride: stride}
		// Gaussian levels: s+3 so that s+2 DoGs exist and extrema can be
		// sought with one neighbour level on each side for s interior DoGs.
		numGauss := s + 3
		oct.Gauss = make([]Level, numGauss)
		for l := 0; l < numGauss; l++ {
			// Scale of this level relative to the octave's base resolution.
			relSigma := cfg.BaseSigma * math.Pow(kappa, float64(l))
			oct.Gauss[l] = Level{
				Values: Smooth(base, relSigma),
				Sigma:  relSigma * float64(stride),
			}
		}
		oct.DoG = make([]Level, numGauss-1)
		for l := 0; l+1 < numGauss; l++ {
			a, b := oct.Gauss[l], oct.Gauss[l+1]
			diff := make([]float64, len(a.Values))
			for i := range diff {
				diff[i] = b.Values[i] - a.Values[i]
			}
			oct.DoG[l] = Level{Values: diff, Sigma: a.Sigma}
		}
		p.Octaves = append(p.Octaves, oct)
		// Seed the next octave from the level whose scale doubled the base
		// (level s), downsampled by two.
		base = Downsample(oct.Gauss[s].Values)
		stride *= 2
	}
	if len(p.Octaves) == 0 {
		return nil, fmt.Errorf("scalespace: could not build any octave for length %d", len(v))
	}
	return p, nil
}

// Kappa returns the per-level scale multiplier κ = 2^{1/s} for the pyramid.
func (p *Pyramid) Kappa() float64 {
	return math.Pow(2, 1/float64(p.Cfg.Levels))
}
