package scalespace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKernelNormalised(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 1.6, 3.2, 10} {
		k := Kernel(sigma)
		sum := 0.0
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("kernel(σ=%v) sums to %v", sigma, sum)
		}
		if len(k)%2 != 1 {
			t.Fatalf("kernel(σ=%v) has even length %d", sigma, len(k))
		}
	}
}

func TestKernelSymmetric(t *testing.T) {
	k := Kernel(2.5)
	for i, j := 0, len(k)-1; i < j; i, j = i+1, j-1 {
		if math.Abs(k[i]-k[j]) > 1e-12 {
			t.Fatalf("kernel asymmetric at %d/%d: %v vs %v", i, j, k[i], k[j])
		}
	}
	// Peak at the centre.
	mid := len(k) / 2
	for i := range k {
		if k[i] > k[mid] {
			t.Fatalf("kernel peak not central")
		}
	}
}

func TestKernelDegenerateSigma(t *testing.T) {
	k := Kernel(0)
	if len(k) != 1 || k[0] != 1 {
		t.Fatalf("zero-σ kernel = %v, want identity", k)
	}
	k = Kernel(-1)
	if len(k) != 1 || k[0] != 1 {
		t.Fatalf("negative-σ kernel = %v, want identity", k)
	}
}

func TestKernelRadiusIs3Sigma(t *testing.T) {
	k := Kernel(4)
	wantRadius := int(math.Ceil(3 * 4.0))
	if len(k) != 2*wantRadius+1 {
		t.Fatalf("kernel length %d, want %d", len(k), 2*wantRadius+1)
	}
}

func TestConvolvePreservesConstant(t *testing.T) {
	v := make([]float64, 40)
	for i := range v {
		v[i] = 7.5
	}
	out := Convolve(v, Kernel(2))
	for i, x := range out {
		if math.Abs(x-7.5) > 1e-9 {
			t.Fatalf("constant series changed at %d: %v", i, x)
		}
	}
}

func TestConvolveEmptyInput(t *testing.T) {
	if out := Convolve(nil, Kernel(1)); len(out) != 0 {
		t.Fatalf("convolving empty input gave %v", out)
	}
}

func TestSmoothReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 200)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	variance := func(u []float64) float64 {
		m := 0.0
		for _, x := range u {
			m += x
		}
		m /= float64(len(u))
		ss := 0.0
		for _, x := range u {
			ss += (x - m) * (x - m)
		}
		return ss / float64(len(u))
	}
	s := Smooth(v, 3)
	if variance(s) >= variance(v) {
		t.Fatalf("smoothing did not reduce variance: %v vs %v", variance(s), variance(v))
	}
}

func TestSmoothZeroSigmaCopies(t *testing.T) {
	v := []float64{1, 2, 3}
	s := Smooth(v, 0)
	for i := range v {
		if s[i] != v[i] {
			t.Fatalf("zero-σ smooth altered input")
		}
	}
	s[0] = 99
	if v[0] == 99 {
		t.Fatalf("zero-σ smooth aliases input")
	}
}

func TestSmoothPreservesMeanApproximately(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, 64)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		s := Smooth(v, 2)
		var mv, ms float64
		for i := range v {
			mv += v[i]
			ms += s[i]
		}
		// Replicate-border smoothing distorts the mean slightly; it must
		// stay in the same ballpark.
		return math.Abs(mv-ms)/64 < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDownsample(t *testing.T) {
	v := []float64{0, 1, 2, 3, 4, 5, 6}
	d := Downsample(v)
	want := []float64{0, 2, 4, 6}
	if len(d) != len(want) {
		t.Fatalf("Downsample length = %d, want %d", len(d), len(want))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Downsample = %v, want %v", d, want)
		}
	}
	if len(Downsample([]float64{9})) != 1 {
		t.Fatal("single-sample downsample wrong")
	}
}

func TestAutoOctaves(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{150, 3}, // Gun: ⌊log2 150⌋−4 = 3
		{275, 4}, // Trace: ⌊log2 275⌋−4 = 4
		{270, 4}, // 50Words
		{1024, 6},
		{16, 2}, // capped: octave 2 would have only 4 samples
		{8, 1},  // capped by minimum viable octave length
		{1, 1},
	}
	for _, tc := range tests {
		if got := AutoOctaves(tc.n); got != tc.want {
			t.Errorf("AutoOctaves(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestBuildStructure(t *testing.T) {
	v := make([]float64, 256)
	for i := range v {
		v[i] = math.Sin(float64(i) / 8)
	}
	p, err := Build(v, Config{Octaves: 3, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Octaves) != 3 {
		t.Fatalf("built %d octaves, want 3", len(p.Octaves))
	}
	for o, oct := range p.Octaves {
		if oct.Index != o {
			t.Errorf("octave %d has index %d", o, oct.Index)
		}
		if oct.Stride != 1<<o {
			t.Errorf("octave %d stride = %d, want %d", o, oct.Stride, 1<<o)
		}
		if len(oct.Gauss) != 2+3 {
			t.Errorf("octave %d has %d gauss levels, want 5", o, len(oct.Gauss))
		}
		if len(oct.DoG) != 2+2 {
			t.Errorf("octave %d has %d DoG levels, want 4", o, len(oct.DoG))
		}
		wantLen := 256 >> o
		if len(oct.Gauss[0].Values) != wantLen {
			t.Errorf("octave %d length = %d, want %d", o, len(oct.Gauss[0].Values), wantLen)
		}
		// Scales grow monotonically within the octave.
		for l := 1; l < len(oct.Gauss); l++ {
			if oct.Gauss[l].Sigma <= oct.Gauss[l-1].Sigma {
				t.Errorf("octave %d scales not increasing at level %d", o, l)
			}
		}
	}
	// Octave o+1 starts at double the scale of octave o.
	s0 := p.Octaves[0].Gauss[0].Sigma
	s1 := p.Octaves[1].Gauss[0].Sigma
	if math.Abs(s1-2*s0) > 1e-9 {
		t.Errorf("octave scale doubling: %v vs 2·%v", s1, s0)
	}
}

func TestBuildDoGIsDifference(t *testing.T) {
	v := make([]float64, 64)
	for i := range v {
		v[i] = float64(i % 7)
	}
	p, err := Build(v, Config{Octaves: 1, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	oct := p.Octaves[0]
	for l := 0; l < len(oct.DoG); l++ {
		for i := range oct.DoG[l].Values {
			want := oct.Gauss[l+1].Values[i] - oct.Gauss[l].Values[i]
			if math.Abs(oct.DoG[l].Values[i]-want) > 1e-12 {
				t.Fatalf("DoG[%d][%d] = %v, want %v", l, i, oct.DoG[l].Values[i], want)
			}
		}
	}
}

func TestBuildRejectsTinySeries(t *testing.T) {
	if _, err := Build([]float64{1, 2, 3}, Config{}); err == nil {
		t.Fatal("3-sample series accepted")
	}
}

func TestBuildStopsWhenOctaveTooSmall(t *testing.T) {
	v := make([]float64, 20)
	p, err := Build(v, Config{Octaves: 10, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 20 → 10 → 5 → 2(too small): at most 3 octaves.
	if len(p.Octaves) > 3 {
		t.Fatalf("built %d octaves from 20 samples", len(p.Octaves))
	}
}

func TestKappa(t *testing.T) {
	v := make([]float64, 64)
	p, err := Build(v, Config{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Kappa()-math.Sqrt2) > 1e-12 {
		t.Fatalf("κ = %v, want √2", p.Kappa())
	}
}

func TestGaussianBlurDetectsScale(t *testing.T) {
	// A bump of width w produces its strongest DoG response at a scale
	// comparable to w: check the argmax response grows with bump width.
	buildBump := func(sd float64) []float64 {
		v := make([]float64, 256)
		for i := range v {
			d := (float64(i) - 128) / sd
			v[i] = math.Exp(-0.5 * d * d)
		}
		return v
	}
	peakSigma := func(v []float64) float64 {
		p, err := Build(v, Config{Octaves: 4, Levels: 2})
		if err != nil {
			t.Fatal(err)
		}
		bestResp, bestSigma := 0.0, 0.0
		for _, oct := range p.Octaves {
			for _, dog := range oct.DoG {
				for _, x := range dog.Values {
					if a := math.Abs(x); a > bestResp {
						bestResp, bestSigma = a, dog.Sigma
					}
				}
			}
		}
		return bestSigma
	}
	narrow := peakSigma(buildBump(3))
	wide := peakSigma(buildBump(24))
	if wide <= narrow {
		t.Fatalf("wider bump did not peak at coarser scale: %v vs %v", wide, narrow)
	}
}
