package match

import "sort"

// boundaryList is an ordered multiset of committed boundary time points on
// one series. Insertion ranks are computed against the committed points;
// two candidate points of the same pair are ranked jointly.
type boundaryList struct {
	points []int // sorted ascending
}

// ranks returns the insertion ranks of st and end (st <= end) against the
// committed points: rank(p) is the number of committed points strictly
// smaller than p, except that committed points equal to p do not increase
// the rank (the paper's tie exception: equal time values share rank).
// rankEnd additionally counts st itself when st < end, because both points
// of a pair are inserted together.
func (bl *boundaryList) ranks(st, end int) (rankSt, rankEnd int) {
	rankSt = sort.Search(len(bl.points), func(i int) bool { return bl.points[i] >= st })
	rankEnd = sort.Search(len(bl.points), func(i int) bool { return bl.points[i] >= end })
	if st < end {
		rankEnd++ // st precedes end in the combined ordering
	}
	return rankSt, rankEnd
}

// insert commits st and end into the list.
func (bl *boundaryList) insert(st, end int) {
	bl.points = append(bl.points, st, end)
	sort.Ints(bl.points)
}

// pruneInconsistent walks pairs in the given order (the caller sorts by
// descending µcomb) and keeps a pair only when (a) inserting its scope
// boundaries preserves identical boundary ordering in both series
// (§3.2.2 step 2) and (b) the local time stretch the boundaries imply
// against their committed neighbours stays within cfg.MaxBoundarySlope.
// The kept pairs are returned sorted by X position.
func pruneInconsistent(pairs []Pair, nx, ny int, cfg Config) []Pair {
	var blX, blY boundaryList
	// committed holds the corresponding boundary points of both series,
	// kept sorted by X position, with the two virtual grid corners.
	committed := []bpoint{{0, 0}, {nx - 1, ny - 1}}
	scratch := make([]bpoint, 0, 2*len(pairs)+4)
	var kept []Pair
	for _, p := range pairs {
		st1, end1 := p.FI.Start(nx), p.FI.End(nx)
		st2, end2 := p.FJ.Start(ny), p.FJ.End(ny)
		if st1 > end1 || st2 > end2 {
			continue // degenerate scope; cannot happen for valid features
		}
		rs1, re1 := blX.ranks(st1, end1)
		rs2, re2 := blY.ranks(st2, end2)
		if rs1 != rs2 || re1 != re2 {
			continue // would reorder scope boundaries across the series
		}
		if cfg.MaxBoundarySlope >= 1 &&
			!slopesOK(committed, bpoint{st1, st2}, bpoint{end1, end2}, cfg.MaxBoundarySlope, scratch) {
			continue // implies an implausible local stretch
		}
		blX.insert(st1, end1)
		blY.insert(st2, end2)
		committed = insertBPoint(committed, bpoint{st1, st2})
		committed = insertBPoint(committed, bpoint{end1, end2})
		kept = append(kept, p)
	}
	sort.Slice(kept, func(a, b int) bool { return kept[a].FI.X < kept[b].FI.X })
	return kept
}

// bpoint is a pair of corresponding boundary positions (x in X, y in Y).
type bpoint struct{ x, y int }

// insertBPoint inserts p into the x-sorted committed list.
func insertBPoint(committed []bpoint, p bpoint) []bpoint {
	i := sort.Search(len(committed), func(k int) bool { return committed[k].x >= p.x })
	committed = append(committed, bpoint{})
	copy(committed[i+1:], committed[i:])
	committed[i] = p
	return committed
}

// slopesOK checks that adding the candidate boundary points keeps every
// implied segment stretch within maxSlope. Segment stretch is measured on
// +1-smoothed deltas so coincident boundaries (empty intervals, which
// §3.3.2 explicitly tolerates) do not divide by zero. scratch provides
// reusable storage for the trial insertion.
func slopesOK(committed []bpoint, st, end bpoint, maxSlope float64, scratch []bpoint) bool {
	pts := insertBPoint(append(scratch[:0], committed...), st)
	pts = insertBPoint(pts, end)
	for k := 1; k < len(pts); k++ {
		dx := float64(pts[k].x-pts[k-1].x) + 1
		dy := float64(pts[k].y-pts[k-1].y) + 1
		if dy < 0 {
			return false // crossing in Y; the rank test usually catches this first
		}
		slope := dy / dx
		if slope > maxSlope || slope < 1/maxSlope {
			return false
		}
	}
	return true
}

// commitBoundaries flattens the kept pairs' scope boundaries into the two
// corresponding, strictly sorted boundary lists that partition the series
// into intervals (paper Fig 9). Boundary k of X corresponds to boundary k
// of Y by construction of the rank-consistency test. Duplicate positions
// (coincident boundaries) are collapsed pairwise so both lists stay equal
// length; boundaries at the extreme endpoints are dropped since the
// implicit first/last intervals already start/end there.
func commitBoundaries(kept []Pair, nx, ny int) (bx, by []int) {
	type bpt struct{ x, y int }
	var pts []bpt
	for _, p := range kept {
		pts = append(pts, bpt{p.FI.Start(nx), p.FJ.Start(ny)})
		pts = append(pts, bpt{p.FI.End(nx), p.FJ.End(ny)})
	}
	// The rank-consistency invariant makes sorting by x equivalent to
	// sorting by y (no crossings), so a single sort yields corresponding
	// orders. Ties broken by y to keep the sort deterministic.
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].x != pts[b].x {
			return pts[a].x < pts[b].x
		}
		return pts[a].y < pts[b].y
	})
	for _, p := range pts {
		if p.x <= 0 || p.x >= nx-1 || p.y <= 0 || p.y >= ny-1 {
			continue
		}
		if len(bx) > 0 && bx[len(bx)-1] == p.x && by[len(by)-1] == p.y {
			continue // exact duplicate boundary
		}
		// Enforce strict monotonicity in both coordinates; coincident
		// positions in one series with distinct partners would create
		// zero-length intervals inconsistent between the series, so the
		// later (lower-priority) boundary is skipped.
		if len(bx) > 0 && (p.x <= bx[len(bx)-1] || p.y <= by[len(by)-1]) {
			continue
		}
		bx = append(bx, p.x)
		by = append(by, p.y)
	}
	return bx, by
}
