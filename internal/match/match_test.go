package match

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdtw/internal/series"
	"sdtw/internal/sift"
)

// feat builds a synthetic feature with a simple descriptor for matcher
// unit tests. The descriptor encodes "kind" so that equal kinds match
// perfectly and different kinds are far apart.
func feat(x int, sigma float64, amp float64, kind int) sift.Feature {
	desc := make([]float64, 8)
	desc[kind%8] = 1
	return sift.Feature{
		X:          x,
		Sigma:      sigma,
		Scope:      3 * sigma,
		Amplitude:  amp,
		Response:   0.5,
		Descriptor: desc,
	}
}

func TestDominantPairsBasicMatch(t *testing.T) {
	fx := []sift.Feature{feat(30, 3, 1, 0), feat(90, 3, 1, 1)}
	fy := []sift.Feature{feat(35, 3, 1, 0), feat(95, 3, 1, 1)}
	pairs := DominantPairs(fx, fy, DefaultConfig())
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2: %+v", len(pairs), pairs)
	}
	if pairs[0].J != 0 || pairs[1].J != 1 {
		t.Fatalf("wrong partners: %+v", pairs)
	}
}

func TestDominantPairsAmplitudeThreshold(t *testing.T) {
	fx := []sift.Feature{feat(30, 3, 0.0, 0)}
	fy := []sift.Feature{feat(35, 3, 2.0, 0)} // same descriptor, far amplitude
	cfg := DefaultConfig()
	cfg.MaxAmplitudeDiff = 0.5
	if pairs := DominantPairs(fx, fy, cfg); len(pairs) != 0 {
		t.Fatalf("amplitude threshold ignored: %+v", pairs)
	}
	cfg.MaxAmplitudeDiff = -1 // disabled
	if pairs := DominantPairs(fx, fy, cfg); len(pairs) != 1 {
		t.Fatalf("disabled amplitude threshold still filters: %+v", pairs)
	}
}

func TestDominantPairsScaleRatioThreshold(t *testing.T) {
	fx := []sift.Feature{feat(30, 2, 1, 0)}
	fy := []sift.Feature{feat(35, 20, 1, 0)} // 10x scale apart
	cfg := DefaultConfig()
	if pairs := DominantPairs(fx, fy, cfg); len(pairs) != 0 {
		t.Fatalf("scale threshold ignored: %+v", pairs)
	}
	cfg.MaxScaleRatio = 0.5 // disabled (<1)
	if pairs := DominantPairs(fx, fy, cfg); len(pairs) != 1 {
		t.Fatalf("disabled scale threshold still filters: %+v", pairs)
	}
}

func TestDominantPairsDominanceTest(t *testing.T) {
	// Two distant Y features with identical descriptors: ambiguous, the
	// ratio test must reject the match.
	fx := []sift.Feature{feat(50, 3, 1, 0)}
	fy := []sift.Feature{feat(30, 3, 1, 0), feat(120, 3, 1, 0)}
	cfg := DefaultConfig()
	if pairs := DominantPairs(fx, fy, cfg); len(pairs) != 0 {
		t.Fatalf("ambiguous match survived the ratio test: %+v", pairs)
	}
	// Disabling the test lets the (arbitrary) nearest win.
	cfg.DominanceRatio = 0.5
	if pairs := DominantPairs(fx, fy, cfg); len(pairs) != 1 {
		t.Fatalf("disabled ratio test still filters")
	}
}

func TestDominantPairsDuplicateClusterNotCompetitor(t *testing.T) {
	// Two near-identical Y features at adjacent positions (a duplicate
	// cluster, as relaxed detection produces) must NOT trigger the
	// ambiguity rejection.
	fx := []sift.Feature{feat(50, 3, 1, 0)}
	fy := []sift.Feature{feat(48, 3, 1, 0), feat(52, 3, 1, 0)}
	pairs := DominantPairs(fx, fy, DefaultConfig())
	if len(pairs) != 1 {
		t.Fatalf("duplicate cluster treated as competitor: %+v", pairs)
	}
}

func TestDominantPairsMutualBest(t *testing.T) {
	// Y's best partner for fy[0] is fx[1] (identical descriptor), so the
	// weaker претендент fx[0] must not claim fy[0].
	near := feat(30, 3, 1, 0)
	near.Descriptor = []float64{0.9, 0.1, 0, 0, 0, 0, 0, 0}
	exact := feat(90, 3, 1, 0)
	fx := []sift.Feature{near, exact}
	fy := []sift.Feature{feat(88, 3, 1, 0)}
	cfg := DefaultConfig()
	cfg.DominanceRatio = 0.5 // isolate the mutual-best behaviour
	pairs := DominantPairs(fx, fy, cfg)
	if len(pairs) != 1 || pairs[0].I != 1 {
		t.Fatalf("mutual best violated: %+v", pairs)
	}
	cfg.DisableMutualBest = true
	pairs = DominantPairs(fx, fy, cfg)
	if len(pairs) != 2 {
		t.Fatalf("disabling mutual best should allow both claims, got %+v", pairs)
	}
}

func TestMatchEmptyFeatures(t *testing.T) {
	al, err := Match(nil, nil, 100, 100, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Pairs) != 0 || len(al.BoundsX) != 0 {
		t.Fatalf("empty inputs produced pairs: %+v", al)
	}
	if al.NX != 100 || al.NY != 100 {
		t.Fatalf("lengths not recorded: %+v", al)
	}
}

func TestMatchRejectsBadLengths(t *testing.T) {
	if _, err := Match(nil, nil, 0, 10, DefaultConfig()); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := Match(nil, nil, 10, -1, DefaultConfig()); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestMatchPrunesCrossing(t *testing.T) {
	// fx[0] matches fy[1] (kind 0) and fx[1] matches fy[0] (kind 1):
	// a temporal crossing. At most one can survive.
	fx := []sift.Feature{feat(30, 3, 1, 0), feat(120, 3, 1, 1)}
	fy := []sift.Feature{feat(120, 3, 1, 1), feat(30, 3, 1, 0)}
	// Positions in Y: kind-1 at 120 is fy[0]... build explicitly:
	fy = []sift.Feature{feat(30, 3, 1, 1), feat(120, 3, 1, 0)}
	al, err := Match(fx, fy, 160, 160, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Pairs) > 1 {
		t.Fatalf("crossing pairs survived: %+v", al.Pairs)
	}
}

func TestMatchKeepsConsistentOrder(t *testing.T) {
	fx := []sift.Feature{feat(20, 2, 1, 0), feat(80, 2, 1, 1), feat(140, 2, 1, 2)}
	fy := []sift.Feature{feat(25, 2, 1, 0), feat(85, 2, 1, 1), feat(150, 2, 1, 2)}
	al, err := Match(fx, fy, 200, 200, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Pairs) != 3 {
		t.Fatalf("consistent pairs pruned: got %d, want 3", len(al.Pairs))
	}
	// Boundary lists must be strictly increasing and corresponding.
	if len(al.BoundsX) != len(al.BoundsY) {
		t.Fatalf("boundary lists differ in length")
	}
	for k := 1; k < len(al.BoundsX); k++ {
		if al.BoundsX[k] <= al.BoundsX[k-1] || al.BoundsY[k] <= al.BoundsY[k-1] {
			t.Fatalf("boundaries not strictly increasing: %v %v", al.BoundsX, al.BoundsY)
		}
	}
}

func TestMatchSlopeBound(t *testing.T) {
	// A single pair implying a 10x stretch between the start corner and
	// the match must be pruned under the default slope bound of 4.
	fx := []sift.Feature{feat(10, 2, 1, 0)}
	fy := []sift.Feature{feat(140, 2, 1, 0)}
	al, err := Match(fx, fy, 160, 160, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Pairs) != 0 {
		t.Fatalf("implausible stretch survived: %+v", al.Pairs)
	}
	// With the bound disabled it survives.
	cfg := DefaultConfig()
	cfg.MaxBoundarySlope = 0.5
	al, err = Match(fx, fy, 160, 160, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Pairs) != 1 {
		t.Fatalf("disabled slope bound still prunes")
	}
}

func TestSwapRoundTrip(t *testing.T) {
	fx := []sift.Feature{feat(20, 2, 1, 0), feat(80, 2, 1, 1)}
	fy := []sift.Feature{feat(30, 2, 1, 0), feat(95, 2, 1, 1)}
	al, err := Match(fx, fy, 120, 140, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sw := al.Swap()
	if sw.NX != al.NY || sw.NY != al.NX {
		t.Fatalf("swap lengths wrong: %+v", sw)
	}
	if len(sw.BoundsX) != len(al.BoundsY) {
		t.Fatalf("swap boundary lengths wrong")
	}
	for k := range sw.BoundsX {
		if sw.BoundsX[k] != al.BoundsY[k] || sw.BoundsY[k] != al.BoundsX[k] {
			t.Fatalf("swap boundaries not mirrored")
		}
	}
	back := sw.Swap()
	for k := range back.BoundsX {
		if back.BoundsX[k] != al.BoundsX[k] {
			t.Fatalf("double swap not identity")
		}
	}
	// Swap must be deep: mutating the swap's bounds leaves the original.
	if len(sw.BoundsX) > 0 {
		sw.BoundsX[0] = -1
		if al.BoundsY[0] == -1 {
			t.Fatalf("Swap aliases boundary storage")
		}
	}
}

func TestIntervalsPartition(t *testing.T) {
	al := &Alignment{NX: 100, NY: 120, BoundsX: []int{30, 60}, BoundsY: []int{40, 80}}
	xs, xe, ys, ye := al.Intervals()
	if len(xs) != 3 {
		t.Fatalf("got %d intervals, want 3", len(xs))
	}
	// First interval starts at 0; last ends at N-1.
	if xs[0] != 0 || ys[0] != 0 {
		t.Fatalf("first interval starts at (%d,%d)", xs[0], ys[0])
	}
	if xe[2] != 99 || ye[2] != 119 {
		t.Fatalf("last interval ends at (%d,%d)", xe[2], ye[2])
	}
	// Intervals chain: each starts where the previous ended.
	for t2 := 1; t2 < 3; t2++ {
		if xs[t2] != xe[t2-1] || ys[t2] != ye[t2-1] {
			t.Fatalf("intervals do not chain at %d", t2)
		}
	}
}

func TestIntervalsNoBoundaries(t *testing.T) {
	al := &Alignment{NX: 50, NY: 60}
	xs, xe, ys, ye := al.Intervals()
	if len(xs) != 1 || xs[0] != 0 || xe[0] != 49 || ys[0] != 0 || ye[0] != 59 {
		t.Fatalf("trivial partition wrong: %v %v %v %v", xs, xe, ys, ye)
	}
}

func TestScoringPrefersLargeCloseFeatures(t *testing.T) {
	big := Pair{FI: feat(50, 10, 1, 0), FJ: feat(52, 10, 1, 0), DescDist: 0.1}
	smallFar := Pair{FI: feat(20, 2, 1, 0), FJ: feat(120, 2, 1, 0), DescDist: 0.1}
	pairs := []Pair{big, smallFar}
	scorePairs(pairs)
	if pairs[0].Align <= pairs[1].Align {
		t.Fatalf("µalign did not prefer the large close pair: %v vs %v", pairs[0].Align, pairs[1].Align)
	}
	if pairs[0].Combined <= pairs[1].Combined {
		t.Fatalf("µcomb did not prefer the large close pair")
	}
}

func TestScoringSimPrefersSimilarAmplitudes(t *testing.T) {
	same := Pair{FI: feat(50, 5, 1.0, 0), FJ: feat(55, 5, 1.0, 0), DescDist: 0.2}
	diff := Pair{FI: feat(150, 5, 1.0, 0), FJ: feat(155, 5, 0.2, 0), DescDist: 0.2}
	pairs := []Pair{same, diff}
	scorePairs(pairs)
	if pairs[0].Sim <= pairs[1].Sim {
		t.Fatalf("µsim did not prefer matching amplitudes: %v vs %v", pairs[0].Sim, pairs[1].Sim)
	}
}

func TestScoreCombinedIsFMeasure(t *testing.T) {
	pairs := []Pair{
		{FI: feat(10, 5, 1, 0), FJ: feat(12, 5, 1, 0), DescDist: 0.1},
		{FI: feat(60, 3, 1, 0), FJ: feat(70, 3, 0.8, 0), DescDist: 0.4},
	}
	scorePairs(pairs)
	for _, p := range pairs {
		na := p.Align / pairs[0].Align // pairs[0] has max align here
		_ = na
		if p.Combined < 0 || p.Combined > 1+1e-9 {
			t.Fatalf("combined score out of range: %v", p.Combined)
		}
	}
	// The best pair on both axes gets a combined score of exactly 1.
	if math.Abs(pairs[0].Combined-1) > 1e-9 {
		t.Fatalf("dominant pair combined = %v, want 1", pairs[0].Combined)
	}
}

func TestBoundaryListRanks(t *testing.T) {
	var bl boundaryList
	bl.insert(10, 50)
	rs, re := bl.ranks(5, 60)
	if rs != 0 || re != 3 {
		t.Fatalf("ranks(5,60) = (%d,%d), want (0,3)", rs, re)
	}
	rs, re = bl.ranks(20, 30)
	if rs != 1 || re != 2 {
		t.Fatalf("ranks(20,30) = (%d,%d), want (1,2)", rs, re)
	}
	// A point equal to a committed point ranks before it ("strictly
	// smaller" counting), so ties rank consistently on both series.
	rs, _ = bl.ranks(10, 40)
	if rs != 0 {
		t.Fatalf("rank of tied start = %d, want 0", rs)
	}
}

func TestPruneRandomisedNoCrossings(t *testing.T) {
	// Property: after pruning, committed boundary points never cross —
	// sorting by X equals sorting by Y.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200
		var fx, fy []sift.Feature
		numPairs := 2 + rng.Intn(12)
		for k := 0; k < numPairs; k++ {
			kind := rng.Intn(8)
			fx = append(fx, feat(rng.Intn(n), 2+rng.Float64()*8, rng.Float64(), kind))
			fy = append(fy, feat(rng.Intn(n), 2+rng.Float64()*8, rng.Float64(), kind))
		}
		al, err := Match(fx, fy, n, n, DefaultConfig())
		if err != nil {
			return false
		}
		for k := 1; k < len(al.BoundsX); k++ {
			if al.BoundsX[k] <= al.BoundsX[k-1] || al.BoundsY[k] <= al.BoundsY[k-1] {
				return false
			}
		}
		return len(al.BoundsX) == len(al.BoundsY)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchOnRealExtraction(t *testing.T) {
	// End-to-end: a series and its warped copy must produce consistent
	// pairs linking corresponding regions.
	rng := rand.New(rand.NewSource(99))
	base := make([]float64, 256)
	for i := range base {
		x := float64(i)
		base[i] = series.GaussianBump(x, 60, 8, 1) + series.GaussianBump(x, 150, 12, -0.8) + series.GaussianBump(x, 220, 6, 0.9)
	}
	warped := series.ApplyWarp(base, series.RandomWarp(rng, 4, 0.3), 256)
	fb, err := sift.Extract(base, sift.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fw, err := sift.Extract(warped, sift.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	al, err := Match(fb, fw, 256, 256, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Pairs) == 0 {
		t.Fatal("no consistent pairs between a series and its warped copy")
	}
	// Matched features should link approximately corresponding positions:
	// the warp is bounded, so |x−y| stays well below the series length.
	for _, p := range al.Pairs {
		if math.Abs(float64(p.FI.X-p.FJ.X)) > 100 {
			t.Fatalf("pair links distant positions: %d vs %d", p.FI.X, p.FJ.X)
		}
	}
}
