// Package match pairs salient features across two time series and prunes
// temporally inconsistent pairs, implementing paper §3.2.
//
// Matching proceeds in two stages. Dominant-pair identification (§3.2.1)
// finds, for each feature of X, the closest feature of Y by descriptor
// distance subject to amplitude (τa), scale-ratio (τs) and dominance (τd)
// thresholds. Inconsistency pruning (§3.2.2) then scores every pair by the
// harmonic combination of an alignment score and a similarity score, walks
// pairs in descending combined score, and keeps a pair only if its scope
// boundaries insert rank-consistently into the committed boundary lists of
// both series — guaranteeing the surviving feature scopes are identically
// ordered in the two series.
package match

import (
	"fmt"
	"math"
	"sort"

	"sdtw/internal/sift"
)

// Config holds the matcher thresholds. The zero value selects permissive
// defaults suitable for the paper's workloads.
type Config struct {
	// MaxAmplitudeDiff is τa: the maximum absolute difference between the
	// mean amplitudes of two matched features. Zero means 0.5 on
	// normalised series; negative disables the test (the paper notes each
	// invariance bound can be turned off).
	MaxAmplitudeDiff float64
	// MaxScaleRatio is τs: the maximum ratio between the scales of two
	// matched features (always >= 1). Zero means 2.5; values < 1 disable
	// the test.
	MaxScaleRatio float64
	// DominanceRatio is τd (> 1): the best descriptor distance must be at
	// least τd times smaller than the runner-up's for the pair to be kept
	// (Lowe-style ratio test written as distance·τd <= secondDistance).
	// The runner-up search excludes features within the best match's
	// temporal scope: the relaxed extremum detection of §3.1.2 emits
	// clusters of near-duplicate features at adjacent positions and
	// scales, and a duplicate of the best match must not masquerade as a
	// competing alternative. Zero means 1.25; values <= 1 disable.
	DominanceRatio float64
	// DisableMutualBest turns off the cross-check requiring the matched
	// features to be each other's nearest descriptors. Mutual-best
	// matching suppresses the many-to-one garbage pairs that otherwise
	// survive when a series region has no true counterpart.
	DisableMutualBest bool
	// MaxBoundarySlope bounds the local time stretch any committed pair
	// of scope boundaries may imply relative to its committed neighbours
	// (an Itakura-style slope sanity check on the alignment itself).
	// Candidate pairs implying steeper stretch are pruned as
	// inconsistent. Zero means 4; values < 1 disable the check.
	MaxBoundarySlope float64
}

// DefaultConfig returns the thresholds used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		MaxAmplitudeDiff: 0.5,
		MaxScaleRatio:    2.5,
		DominanceRatio:   1.25,
		MaxBoundarySlope: 4,
	}
}

func (c Config) withDefaults() Config {
	if c.MaxAmplitudeDiff == 0 {
		c.MaxAmplitudeDiff = 0.5
	}
	if c.MaxScaleRatio == 0 {
		c.MaxScaleRatio = 2.5
	}
	if c.DominanceRatio == 0 {
		c.DominanceRatio = 1.25
	}
	if c.MaxBoundarySlope == 0 {
		c.MaxBoundarySlope = 4
	}
	return c
}

// Pair is a matched pair of salient features, fi from X and fj from Y.
type Pair struct {
	I, J     int // indices into the feature slices of X and Y
	FI, FJ   sift.Feature
	DescDist float64 // Euclidean descriptor distance
	// Scores filled by scorePairs (§3.2.2):
	Align, Sim, Combined float64
}

// Alignment is the outcome of matching: the consistent pairs and the
// interval partitions their scope boundaries induce on both series
// (paper §3.3, Fig 9).
type Alignment struct {
	// Pairs are the surviving, temporally consistent matched pairs,
	// sorted by position in X.
	Pairs []Pair
	// BoundsX and BoundsY are the committed scope boundary positions in
	// the two series, strictly in corresponding order: BoundsX[k] in X
	// corresponds to BoundsY[k] in Y. Both are sorted ascending.
	BoundsX, BoundsY []int
	// NX, NY are the series lengths the alignment refers to.
	NX, NY int
}

// Swap returns the alignment with the roles of X and Y exchanged, used to
// build the symmetric band of §3.3.3. Pairs and boundary lists are shared
// structurally where safe and copied where mutation could leak.
func (a *Alignment) Swap() *Alignment {
	sw := &Alignment{NX: a.NY, NY: a.NX}
	sw.BoundsX = append([]int(nil), a.BoundsY...)
	sw.BoundsY = append([]int(nil), a.BoundsX...)
	sw.Pairs = make([]Pair, len(a.Pairs))
	for k, p := range a.Pairs {
		sw.Pairs[k] = Pair{
			I: p.J, J: p.I,
			FI: p.FJ, FJ: p.FI,
			DescDist: p.DescDist,
			Align:    p.Align, Sim: p.Sim, Combined: p.Combined,
		}
	}
	return sw
}

// Intervals returns the consecutive corresponding intervals the committed
// boundaries induce: interval t spans [XStarts[t], XEnds[t]] on X and
// [YStarts[t], YEnds[t]] on Y (inclusive, possibly empty when two
// boundaries coincide). There are len(BoundsX)+1 intervals.
func (a *Alignment) Intervals() (xs, xe, ys, ye []int) {
	k := len(a.BoundsX)
	xs = make([]int, k+1)
	xe = make([]int, k+1)
	ys = make([]int, k+1)
	ye = make([]int, k+1)
	prevX, prevY := 0, 0
	for t := 0; t < k; t++ {
		xs[t], xe[t] = prevX, a.BoundsX[t]
		ys[t], ye[t] = prevY, a.BoundsY[t]
		prevX, prevY = a.BoundsX[t], a.BoundsY[t]
	}
	xs[k], xe[k] = prevX, a.NX-1
	ys[k], ye[k] = prevY, a.NY-1
	return xs, xe, ys, ye
}

// Match runs both stages over the feature sets of X (length nx) and Y
// (length ny) and returns the consistent alignment. An alignment with no
// pairs (empty boundary lists) is valid and signals the caller to fall
// back to diagonal constraints.
func Match(fx, fy []sift.Feature, nx, ny int, cfg Config) (*Alignment, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("match: series lengths must be positive, got %d and %d", nx, ny)
	}
	cfg = cfg.withDefaults()
	pairs := DominantPairs(fx, fy, cfg)
	scorePairs(pairs)
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].Combined > pairs[b].Combined })
	kept := pruneInconsistent(pairs, nx, ny, cfg)
	al := &Alignment{NX: nx, NY: ny, Pairs: kept}
	al.BoundsX, al.BoundsY = commitBoundaries(kept, nx, ny)
	return al, nil
}

// DominantPairs implements §3.2.1: for every feature of X, the nearest
// feature of Y by descriptor distance is returned as a pair when it passes
// the τa/τs thresholds, dominates the runner-up by τd (runner-ups inside
// the best match's temporal scope are duplicates, not competitors, and are
// skipped), and — unless disabled — is the mutual nearest match. All
// nearest-neighbour scans work on squared distances with early
// abandonment; the Y→X back-check is memoised so each Y feature is scanned
// at most once.
func DominantPairs(fx, fy []sift.Feature, cfg Config) []Pair {
	cfg = cfg.withDefaults()
	var pairs []Pair
	// backBest memoises the nearest X feature of each Y feature; -2 marks
	// "not yet computed".
	var backBest []int
	if !cfg.DisableMutualBest {
		backBest = make([]int, len(fy))
		for j := range backBest {
			backBest[j] = -2
		}
	}
	tdSq := cfg.DominanceRatio * cfg.DominanceRatio
	for i := range fx {
		bestJ, bestSq, secondSq := nearestTwoSq(&fx[i], fy, cfg)
		if bestJ < 0 {
			continue
		}
		if cfg.DominanceRatio > 1 && !math.IsInf(secondSq, 1) {
			if bestSq*tdSq > secondSq {
				continue // ambiguous match: a distinct alternative is too close
			}
			if secondSq == bestSq {
				// Exact tie (including two perfect zero-distance matches):
				// maximally ambiguous regardless of the ratio.
				continue
			}
		}
		if !cfg.DisableMutualBest {
			if backBest[bestJ] == -2 {
				bi, _, _ := nearestTwoSq(&fy[bestJ], fx, cfg)
				backBest[bestJ] = bi
			}
			backI := backBest[bestJ]
			if backI < 0 || !sameNeighborhood(&fx[i], &fx[backI]) {
				continue // not mutually nearest (up to duplicate clusters)
			}
		}
		pairs = append(pairs, Pair{I: i, J: bestJ, FI: fx[i], FJ: fy[bestJ], DescDist: math.Sqrt(bestSq)})
	}
	return pairs
}

// nearestTwoSq returns, in one scan over pool, the index and squared
// descriptor distance of the threshold-passing feature closest to f, plus
// the squared distance of the best alternative *outside* the winner's
// duplicate cluster (the τd runner-up). Returns (-1, +Inf, +Inf) when no
// candidate passes the thresholds.
func nearestTwoSq(f *sift.Feature, pool []sift.Feature, cfg Config) (int, float64, float64) {
	bestJ, best, second := -1, math.Inf(1), math.Inf(1)
	for j := range pool {
		if !passesThresholds(f, &pool[j], cfg) {
			continue
		}
		d := sift.DescriptorDistanceSqAbandon(f.Descriptor, pool[j].Descriptor, second)
		if d >= second {
			continue
		}
		switch {
		case bestJ < 0:
			best, bestJ = d, j
		case sameNeighborhood(&pool[bestJ], &pool[j]):
			// Same duplicate cluster as the current best: improves the
			// best but never competes as a runner-up.
			if d < best {
				best, bestJ = d, j
			}
		case d < best:
			// New cluster takes the lead; the old best becomes the
			// distinct alternative.
			second = best
			best, bestJ = d, j
		default:
			second = d
		}
	}
	return bestJ, best, second
}

// sameNeighborhood reports whether two features of one series belong to
// the same duplicate cluster: their positions are within the larger scope
// (relaxed detection emits the same physical feature at several adjacent
// positions and scales).
func sameNeighborhood(a, b *sift.Feature) bool {
	r := a.Scope
	if b.Scope > r {
		r = b.Scope
	}
	if r < 4 {
		r = 4
	}
	d := float64(a.X - b.X)
	if d < 0 {
		d = -d
	}
	return d <= r
}

func passesThresholds(a, b *sift.Feature, cfg Config) bool {
	if cfg.MaxAmplitudeDiff >= 0 && math.Abs(a.Amplitude-b.Amplitude) > cfg.MaxAmplitudeDiff {
		return false
	}
	if cfg.MaxScaleRatio >= 1 {
		r := a.Sigma / b.Sigma
		if r < 1 {
			r = 1 / r
		}
		if r > cfg.MaxScaleRatio {
			return false
		}
	}
	return true
}

// scorePairs fills Align, Sim and Combined per §3.2.2:
//
//	µalign = ((scope_i + scope_j)/2) / (1 + |center_i − center_j|)
//	µsim   = (µdesc / µdesc_min) · (1 − ∆amp)
//	µcomb  = F-measure of the max-normalised scores.
//
// µdesc is a similarity; we use 1/(1+DescDist) so that µdesc_min (the
// weakest accepted match) normalises the ratio to >= 1 as the paper
// intends.
func scorePairs(pairs []Pair) {
	if len(pairs) == 0 {
		return
	}
	minDescSim := math.Inf(1)
	for _, p := range pairs {
		if s := 1 / (1 + p.DescDist); s < minDescSim {
			minDescSim = s
		}
	}
	if minDescSim <= 0 || math.IsInf(minDescSim, 1) {
		minDescSim = 1
	}
	maxAlign, maxSim := 0.0, 0.0
	for k := range pairs {
		p := &pairs[k]
		scopeAvg := (p.FI.Scope + p.FJ.Scope) / 2
		p.Align = scopeAvg / (1 + math.Abs(float64(p.FI.X-p.FJ.X)))
		descSim := 1 / (1 + p.DescDist)
		p.Sim = (descSim / minDescSim) * (1 - ampDiff(p.FI, p.FJ))
		if p.Align > maxAlign {
			maxAlign = p.Align
		}
		if p.Sim > maxSim {
			maxSim = p.Sim
		}
	}
	for k := range pairs {
		p := &pairs[k]
		na, ns := 0.0, 0.0
		if maxAlign > 0 {
			na = p.Align / maxAlign
		}
		if maxSim > 0 {
			ns = p.Sim / maxSim
		}
		if na+ns > 0 {
			p.Combined = 2 * na * ns / (na + ns)
		}
	}
}

// ampDiff is ∆amp: the percentage difference between the features' mean
// amplitudes within their scopes, clamped to [0,1].
func ampDiff(a, b sift.Feature) float64 {
	den := math.Max(math.Abs(a.Amplitude), math.Abs(b.Amplitude))
	if den == 0 {
		return 0
	}
	d := math.Abs(a.Amplitude-b.Amplitude) / den
	if d > 1 {
		return 1
	}
	return d
}
