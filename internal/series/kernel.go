package series

import (
	"reflect"
	"sync/atomic"
)

// kernelOff disables dispatch to the monomorphized squared-cost kernels
// (internal/dtw/kernel.go, internal/lower/kernel.go) when set, forcing
// every entry point through the generic PointDistance path. One shared
// switch serves both kernel packages so A/B measurement cannot flip them
// out of lockstep.
var kernelOff atomic.Bool

// SetKernelDispatch enables (the default) or disables dispatch to the
// monomorphized squared-cost kernels across the repository. Disabling it
// never changes results — the kernels are bit-identical to the generic
// path — only speed. It is a benchmarking and testing hook; toggling it
// concurrently with running computations is safe but leaves unspecified
// which path each one takes. Dispatch is consulted at each computation's
// entry point, except that a Spring (and hence a Monitor) captures the
// decision at construction: toggle before building the monitor whose
// path should change.
func SetKernelDispatch(enabled bool) { kernelOff.Store(!enabled) }

// squaredPtr is the code pointer of SquaredDistance, what
// UseSquaredKernel compares a non-nil cost against.
var squaredPtr = reflect.ValueOf(PointDistance(SquaredDistance)).Pointer()

// UseSquaredKernel reports whether dist selects the default squared
// cost, in which case the dynamic-program and lower-bound dispatch sites
// may run their monomorphized kernels. A nil dist (the common case)
// costs one comparison; a non-nil dist is recognised by its code
// pointer, so passing SquaredDistance explicitly also takes the fast
// path. Any other cost — including closures wrapping the squared cost —
// runs the generic path.
func UseSquaredKernel(dist PointDistance) bool {
	if kernelOff.Load() {
		return false
	}
	if dist == nil {
		return true
	}
	return reflect.ValueOf(dist).Pointer() == squaredPtr
}
