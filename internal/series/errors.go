package series

import "errors"

// Sentinel errors shared by every layer that validates series inputs.
// They live in this package — the bottom of the dependency graph — so the
// dynamic-programming kernels (internal/dtw), the retrieval surface
// (internal/retrieve) and the public sdtw package can all wrap the same
// identities and callers can branch with errors.Is at any level.
var (
	// ErrEmptySeries reports a series, query or stream with no
	// observations.
	ErrEmptySeries = errors.New("empty series")
	// ErrLengthMismatch reports a series whose length violates an
	// equal-length requirement (a windowed backend's collection, or a
	// constraint band built for a different length).
	ErrLengthMismatch = errors.New("series length mismatch")
)
