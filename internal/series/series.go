// Package series provides the time-series substrate used throughout the
// sDTW library: the Series value type, element-level distance functions,
// normalisation, resampling, and synthetic time-warping utilities.
//
// All algorithms in this repository operate on plain []float64 values; the
// Series type adds the identity and label metadata needed by the retrieval
// and classification harnesses.
package series

import (
	"fmt"
	"math"
)

// Series is a univariate time series with optional identity metadata.
// The zero value is an empty, unlabeled series.
type Series struct {
	// ID identifies the series within a data set. It is used as a cache
	// key by the sDTW engine when non-empty.
	ID string
	// Label is the class label used by classification experiments.
	// Negative means unlabeled.
	Label int
	// Values holds the observations in temporal order.
	Values []float64
}

// New returns a labeled series wrapping values. The slice is not copied.
func New(id string, label int, values []float64) Series {
	return Series{ID: id, Label: label, Values: values}
}

// Len returns the number of observations.
func (s Series) Len() int { return len(s.Values) }

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return Series{ID: s.ID, Label: s.Label, Values: v}
}

// String implements fmt.Stringer with a compact summary.
func (s Series) String() string {
	return fmt.Sprintf("Series(id=%q label=%d len=%d)", s.ID, s.Label, len(s.Values))
}

// Validate reports an error if the series contains NaN or Inf values or is
// empty. DTW over non-finite values produces meaningless distances, so
// ingestion points should validate first.
func (s Series) Validate() error {
	if len(s.Values) == 0 {
		return fmt.Errorf("series: %w", ErrEmptySeries)
	}
	for i, v := range s.Values {
		if math.IsNaN(v) {
			return fmt.Errorf("series: NaN at index %d", i)
		}
		if math.IsInf(v, 0) {
			return fmt.Errorf("series: Inf at index %d", i)
		}
	}
	return nil
}

// PointDistance measures the cost of aligning two scalar observations.
// DTW accumulates these costs along the warp path.
type PointDistance func(a, b float64) float64

// SquaredDistance is the conventional UCR point cost (a-b)^2.
func SquaredDistance(a, b float64) float64 { d := a - b; return d * d }

// AbsDistance is the L1 point cost |a-b|.
func AbsDistance(a, b float64) float64 { return math.Abs(a - b) }

// Mean returns the arithmetic mean of v. It returns 0 for empty input.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	ss := 0.0
	for _, x := range v {
		d := x - m
		ss += float64(d * d)
	}
	return math.Sqrt(ss / float64(len(v)))
}

// MinMax returns the minimum and maximum of v. It returns (0,0) for empty
// input.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 0
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// ZNormalize returns a copy of v shifted to zero mean and scaled to unit
// standard deviation. Constant series are returned as all zeros.
func ZNormalize(v []float64) []float64 {
	out := make([]float64, len(v))
	m, s := Mean(v), Std(v)
	if s == 0 {
		return out
	}
	for i, x := range v {
		out[i] = (x - m) / s
	}
	return out
}

// Normalize01 returns a copy of v linearly rescaled into [0,1]. Constant
// series map to all zeros.
func Normalize01(v []float64) []float64 {
	out := make([]float64, len(v))
	lo, hi := MinMax(v)
	if hi == lo {
		return out
	}
	for i, x := range v {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

// Resample linearly interpolates v to exactly n samples. It panics if n < 1
// or v is empty, as both indicate programmer error.
func Resample(v []float64, n int) []float64 {
	if n < 1 {
		panic("series: Resample target length < 1")
	}
	if len(v) == 0 {
		panic("series: Resample of empty series")
	}
	if n == len(v) {
		out := make([]float64, n)
		copy(out, v)
		return out
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = v[0]
		return out
	}
	scale := float64(len(v)-1) / float64(n-1)
	for i := range out {
		pos := float64(i) * scale
		j := int(pos)
		if j >= len(v)-1 {
			out[i] = v[len(v)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = float64(v[j]*(1-frac)) + float64(v[j+1]*frac)
	}
	// Guarantee exact endpoint preservation despite floating-point
	// rounding in the position arithmetic.
	out[n-1] = v[len(v)-1]
	return out
}

// EuclideanAligned returns the pointwise accumulated cost of the diagonal
// alignment of two equal-length series. DTW distance is bounded above by
// this value (the diagonal is itself a warp path), which several tests and
// the evaluation harness exploit.
func EuclideanAligned(a, b []float64, dist PointDistance) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("series: aligned distance needs equal lengths, got %d and %d", len(a), len(b))
	}
	if dist == nil {
		dist = SquaredDistance
	}
	sum := 0.0
	for i := range a {
		sum += dist(a[i], b[i])
	}
	return sum, nil
}
