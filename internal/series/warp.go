package series

import (
	"math"
	"math/rand"
)

// WarpFunc maps normalised source time t in [0,1] to normalised target time
// in [0,1]. Warp functions produced by this package are monotone
// non-decreasing with w(0)=0 and w(1)=1, modelling the temporal stretches
// and shifts DTW is designed to absorb.
type WarpFunc func(t float64) float64

// IdentityWarp is the no-op warp.
func IdentityWarp(t float64) float64 { return t }

// RandomWarp builds a random monotone warp from knots+2 control points whose
// vertical spacing is jittered by strength in [0,1). strength 0 yields the
// identity; values near 1 produce severe local stretches. The result is a
// piecewise-linear monotone bijection of [0,1].
func RandomWarp(rng *rand.Rand, knots int, strength float64) WarpFunc {
	if knots < 1 {
		knots = 1
	}
	if strength < 0 {
		strength = 0
	}
	if strength > 0.95 {
		strength = 0.95
	}
	// Control ordinates: cumulative sums of jittered positive gaps.
	gaps := make([]float64, knots+1)
	total := 0.0
	for i := range gaps {
		gaps[i] = 1 + float64(strength*(float64(2*rng.Float64())-1))
		if gaps[i] < 0.05 {
			gaps[i] = 0.05
		}
		total += gaps[i]
	}
	ys := make([]float64, knots+2)
	acc := 0.0
	for i := 1; i < len(ys); i++ {
		acc += gaps[i-1]
		ys[i] = acc / total
	}
	ys[len(ys)-1] = 1
	xs := make([]float64, knots+2)
	for i := range xs {
		xs[i] = float64(i) / float64(knots+1)
	}
	return func(t float64) float64 {
		switch {
		case t <= 0:
			return 0
		case t >= 1:
			return 1
		}
		// Locate the segment; xs is uniform so direct indexing works.
		seg := int(t * float64(knots+1))
		if seg >= knots+1 {
			seg = knots
		}
		frac := (t - xs[seg]) / (xs[seg+1] - xs[seg])
		return float64(ys[seg]*(1-frac)) + float64(ys[seg+1]*frac)
	}
}

// ApplyWarp resamples v through warp w: output sample i takes the value of v
// at source position w(i/(n-1))·(len(v)-1), linearly interpolated. The
// output has n samples.
func ApplyWarp(v []float64, w WarpFunc, n int) []float64 {
	if n < 1 {
		panic("series: ApplyWarp target length < 1")
	}
	if len(v) == 0 {
		panic("series: ApplyWarp of empty series")
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = v[0]
		return out
	}
	last := float64(len(v) - 1)
	for i := range out {
		t := float64(i) / float64(n-1)
		pos := w(t) * last
		j := int(pos)
		if j >= len(v)-1 {
			out[i] = v[len(v)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = float64(v[j]*(1-frac)) + float64(v[j+1]*frac)
	}
	return out
}

// AddNoise returns a copy of v with iid Gaussian noise of standard
// deviation sigma added to every sample.
func AddNoise(rng *rand.Rand, v []float64, sigma float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x + float64(rng.NormFloat64()*sigma)
	}
	return out
}

// Shift returns a copy of v circularly shifted right by k samples
// (k may be negative for a left shift).
func Shift(v []float64, k int) []float64 {
	n := len(v)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	k = ((k % n) + n) % n
	for i := range v {
		out[(i+k)%n] = v[i]
	}
	return out
}

// Sigmoid is a smooth step from 0 to 1 centred at c with slope controlled
// by width (samples over which most of the transition happens). It is used
// by the synthetic data-set generators to build plateau-style features.
func Sigmoid(x, c, width float64) float64 {
	if width <= 0 {
		width = 1
	}
	return 1 / (1 + math.Exp(-(x-c)/(width/4)))
}

// GaussianBump evaluates a Gaussian bump of amplitude amp, centre c and
// standard deviation sd at position x.
func GaussianBump(x, c, sd, amp float64) float64 {
	if sd <= 0 {
		return 0
	}
	d := (x - c) / sd
	return amp * math.Exp(-0.5*d*d)
}
