package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	s := New("id-1", 3, []float64{1, 2, 3})
	if s.ID != "id-1" || s.Label != 3 || s.Len() != 3 {
		t.Fatalf("unexpected series: %v", s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New("a", 0, []float64{1, 2, 3})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatalf("Clone shares storage with original")
	}
}

func TestStringMentionsIdentity(t *testing.T) {
	s := New("abc", 7, make([]float64, 5))
	got := s.String()
	want := `Series(id="abc" label=7 len=5)`
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		values  []float64
		wantErr bool
	}{
		{"ok", []float64{1, 2, 3}, false},
		{"empty", nil, true},
		{"nan", []float64{1, math.NaN(), 3}, true},
		{"posinf", []float64{1, math.Inf(1)}, true},
		{"neginf", []float64{math.Inf(-1), 1}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := Series{Values: tc.values}.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestPointDistances(t *testing.T) {
	if got := SquaredDistance(3, 1); got != 4 {
		t.Errorf("SquaredDistance(3,1) = %v, want 4", got)
	}
	if got := SquaredDistance(1, 3); got != 4 {
		t.Errorf("SquaredDistance(1,3) = %v, want 4", got)
	}
	if got := AbsDistance(3, 1); got != 2 {
		t.Errorf("AbsDistance(3,1) = %v, want 2", got)
	}
	if got := AbsDistance(-1, 1); got != 2 {
		t.Errorf("AbsDistance(-1,1) = %v, want 2", got)
	}
}

func TestMeanStdMinMax(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if m := Mean(v); m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
	if s := Std(v); math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("Std = %v, want %v", s, math.Sqrt(1.25))
	}
	lo, hi := MinMax(v)
	if lo != 1 || hi != 4 {
		t.Errorf("MinMax = (%v,%v), want (1,4)", lo, hi)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Errorf("empty-input stats should be zero")
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("MinMax(nil) = (%v,%v), want (0,0)", lo, hi)
	}
}

func TestZNormalize(t *testing.T) {
	v := []float64{2, 4, 6, 8}
	z := ZNormalize(v)
	if math.Abs(Mean(z)) > 1e-12 {
		t.Errorf("z-normalized mean = %v, want 0", Mean(z))
	}
	if math.Abs(Std(z)-1) > 1e-12 {
		t.Errorf("z-normalized std = %v, want 1", Std(z))
	}
	// Constant series: all zeros, not NaN.
	z = ZNormalize([]float64{5, 5, 5})
	for _, x := range z {
		if x != 0 {
			t.Fatalf("constant series z-norm = %v, want zeros", z)
		}
	}
}

func TestNormalize01(t *testing.T) {
	v := Normalize01([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalize01 = %v, want %v", v, want)
		}
	}
	v = Normalize01([]float64{7, 7})
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("constant Normalize01 = %v, want zeros", v)
	}
}

func TestResampleEndpointsPreserved(t *testing.T) {
	v := []float64{1, 5, 2, 8, 3}
	for _, n := range []int{1, 2, 5, 9, 50} {
		r := Resample(v, n)
		if len(r) != n {
			t.Fatalf("Resample length = %d, want %d", len(r), n)
		}
		if r[0] != v[0] {
			t.Errorf("n=%d: first sample %v, want %v", n, r[0], v[0])
		}
		if n > 1 && r[n-1] != v[len(v)-1] {
			t.Errorf("n=%d: last sample %v, want %v", n, r[n-1], v[len(v)-1])
		}
	}
}

func TestResampleIdentity(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5}
	r := Resample(v, 5)
	for i := range v {
		if r[i] != v[i] {
			t.Fatalf("identity resample changed values: %v", r)
		}
	}
	// And it must be a copy.
	r[0] = 42
	if v[0] == 42 {
		t.Fatalf("identity resample aliases input")
	}
}

func TestResamplePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Resample(v, 0) did not panic")
		}
	}()
	Resample([]float64{1}, 0)
}

func TestEuclideanAligned(t *testing.T) {
	d, err := EuclideanAligned([]float64{1, 2}, []float64{1, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 {
		t.Fatalf("EuclideanAligned = %v, want 4", d)
	}
	if _, err := EuclideanAligned([]float64{1}, []float64{1, 2}, nil); err == nil {
		t.Fatalf("length mismatch not reported")
	}
}

func TestEuclideanAlignedCustomDistance(t *testing.T) {
	d, err := EuclideanAligned([]float64{0, 0}, []float64{3, -4}, AbsDistance)
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 {
		t.Fatalf("aligned L1 = %v, want 7", d)
	}
}

func TestZNormalizePropertyInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			// Bound the values so means stay finite.
			v[i] = math.Mod(x, 1e6)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
		z := ZNormalize(v)
		return math.Abs(Mean(z)) < 1e-6 && (Std(v) == 0 || math.Abs(Std(z)-1) < 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxProperty(t *testing.T) {
	f := func(v []float64) bool {
		for i := range v {
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
		lo, hi := MinMax(v)
		if len(v) == 0 {
			return lo == 0 && hi == 0
		}
		for _, x := range v {
			if x < lo || x > hi {
				return false
			}
		}
		return lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResampleConstantStaysConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		c := rng.Float64()*100 - 50
		v := make([]float64, 3+rng.Intn(40))
		for i := range v {
			v[i] = c
		}
		r := Resample(v, 1+rng.Intn(80))
		for _, x := range r {
			if math.Abs(x-c) > 1e-9 {
				t.Fatalf("constant series resampled to %v, want %v", x, c)
			}
		}
	}
}

// TestResampleBitIdenticalToReference pins the FMA-rounding fix: the
// interpolation in Resample rounds each product through an explicit
// float64 conversion, so its output must be bit-identical to this
// straight-line reference on every platform, including FMA-contracting
// ones (arm64/ppc64).
func TestResampleBitIdenticalToReference(t *testing.T) {
	reference := func(v []float64, n int) []float64 {
		out := make([]float64, n)
		if n == 1 {
			out[0] = v[0]
			return out
		}
		scale := float64(len(v)-1) / float64(n-1)
		for i := range out {
			pos := float64(i) * scale
			j := int(pos)
			if j >= len(v)-1 {
				out[i] = v[len(v)-1]
				continue
			}
			frac := pos - float64(j)
			left := v[j] * (1 - frac) // product rounded by assignment
			right := v[j+1] * frac    // product rounded by assignment
			out[i] = left + right
		}
		out[n-1] = v[len(v)-1]
		return out
	}
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		ln := 1 + rng.Intn(300)
		n := 1 + rng.Intn(300)
		v := make([]float64, ln)
		for i := range v {
			v[i] = (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(5)-2))
		}
		got := Resample(v, n)
		want := reference(v, n)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d (len=%d n=%d) sample %d: %v != reference %v", trial, ln, n, i, got[i], want[i])
			}
		}
	}
}
