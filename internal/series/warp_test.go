package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityWarp(t *testing.T) {
	for _, x := range []float64{0, 0.25, 0.5, 1} {
		if IdentityWarp(x) != x {
			t.Fatalf("IdentityWarp(%v) = %v", x, IdentityWarp(x))
		}
	}
}

func TestRandomWarpEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		w := RandomWarp(rng, 1+rng.Intn(8), rng.Float64())
		if got := w(0); got != 0 {
			t.Fatalf("w(0) = %v, want 0", got)
		}
		if got := w(1); got != 1 {
			t.Fatalf("w(1) = %v, want 1", got)
		}
		if got := w(-0.5); got != 0 {
			t.Fatalf("w(-0.5) = %v, want clamp to 0", got)
		}
		if got := w(1.5); got != 1 {
			t.Fatalf("w(1.5) = %v, want clamp to 1", got)
		}
	}
}

func TestRandomWarpMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		w := RandomWarp(rng, 1+rng.Intn(10), rng.Float64())
		prev := -1.0
		for i := 0; i <= 1000; i++ {
			v := w(float64(i) / 1000)
			if v < prev-1e-12 {
				t.Fatalf("trial %d: warp not monotone at t=%v: %v < %v", trial, float64(i)/1000, v, prev)
			}
			prev = v
		}
	}
}

func TestRandomWarpZeroStrengthIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := RandomWarp(rng, 5, 0)
	for i := 0; i <= 100; i++ {
		x := float64(i) / 100
		if math.Abs(w(x)-x) > 1e-9 {
			t.Fatalf("zero-strength warp deviates at %v: %v", x, w(x))
		}
	}
}

func TestRandomWarpPropertyBounds(t *testing.T) {
	f := func(seed int64, knots uint8, strength float64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := RandomWarp(rng, int(knots%16), math.Mod(math.Abs(strength), 1))
		for i := 0; i <= 64; i++ {
			v := w(float64(i) / 64)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyWarpIdentityMatchesResample(t *testing.T) {
	v := []float64{0, 1, 4, 9, 16, 25}
	w := ApplyWarp(v, IdentityWarp, 11)
	r := Resample(v, 11)
	for i := range w {
		if math.Abs(w[i]-r[i]) > 1e-12 {
			t.Fatalf("identity warp != resample at %d: %v vs %v", i, w[i], r[i])
		}
	}
}

func TestApplyWarpPreservesEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := []float64{3, 7, 1, 9, 4, 6, 2}
	for trial := 0; trial < 20; trial++ {
		w := RandomWarp(rng, 4, 0.7)
		out := ApplyWarp(v, w, 13)
		if out[0] != v[0] || out[len(out)-1] != v[len(v)-1] {
			t.Fatalf("warp moved endpoints: %v", out)
		}
	}
}

func TestApplyWarpSingleSample(t *testing.T) {
	out := ApplyWarp([]float64{42, 3}, IdentityWarp, 1)
	if len(out) != 1 || out[0] != 42 {
		t.Fatalf("single-sample warp = %v", out)
	}
}

func TestApplyWarpValueRangePreserved(t *testing.T) {
	// Linear interpolation cannot exceed the input's range.
	rng := rand.New(rand.NewSource(9))
	v := make([]float64, 50)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	lo, hi := MinMax(v)
	for trial := 0; trial < 10; trial++ {
		out := ApplyWarp(v, RandomWarp(rng, 6, 0.8), 80)
		olo, ohi := MinMax(out)
		if olo < lo-1e-9 || ohi > hi+1e-9 {
			t.Fatalf("warp escaped value range: [%v,%v] vs [%v,%v]", olo, ohi, lo, hi)
		}
	}
}

func TestAddNoiseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 10000)
	out := AddNoise(rng, v, 0.5)
	if math.Abs(Mean(out)) > 0.05 {
		t.Errorf("noise mean = %v, want ~0", Mean(out))
	}
	if math.Abs(Std(out)-0.5) > 0.05 {
		t.Errorf("noise std = %v, want ~0.5", Std(out))
	}
}

func TestAddNoiseZeroSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := []float64{1, 2, 3}
	out := AddNoise(rng, v, 0)
	for i := range v {
		if out[i] != v[i] {
			t.Fatalf("zero-sigma noise changed values: %v", out)
		}
	}
}

func TestShift(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		k    int
		want []float64
	}{
		{0, []float64{1, 2, 3, 4, 5}},
		{1, []float64{5, 1, 2, 3, 4}},
		{2, []float64{4, 5, 1, 2, 3}},
		{-1, []float64{2, 3, 4, 5, 1}},
		{5, []float64{1, 2, 3, 4, 5}},
		{7, []float64{4, 5, 1, 2, 3}},
		{-6, []float64{2, 3, 4, 5, 1}},
	}
	for _, tc := range tests {
		got := Shift(v, tc.k)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("Shift(%d) = %v, want %v", tc.k, got, tc.want)
			}
		}
	}
}

func TestShiftEmpty(t *testing.T) {
	if out := Shift(nil, 3); len(out) != 0 {
		t.Fatalf("Shift(nil) = %v", out)
	}
}

func TestSigmoidShape(t *testing.T) {
	// Rises from ~0 to ~1 around the centre.
	if v := Sigmoid(0, 50, 10); v > 0.01 {
		t.Errorf("Sigmoid far left = %v, want ~0", v)
	}
	if v := Sigmoid(100, 50, 10); v < 0.99 {
		t.Errorf("Sigmoid far right = %v, want ~1", v)
	}
	if v := Sigmoid(50, 50, 10); math.Abs(v-0.5) > 1e-9 {
		t.Errorf("Sigmoid at centre = %v, want 0.5", v)
	}
	// Monotone.
	prev := -1.0
	for x := 0.0; x <= 100; x++ {
		v := Sigmoid(x, 50, 10)
		if v < prev {
			t.Fatalf("Sigmoid not monotone at %v", x)
		}
		prev = v
	}
	// Degenerate width defaults rather than dividing by zero.
	if v := Sigmoid(51, 50, 0); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("Sigmoid with zero width = %v", v)
	}
}

func TestGaussianBump(t *testing.T) {
	if v := GaussianBump(10, 10, 3, 2); v != 2 {
		t.Errorf("bump peak = %v, want 2", v)
	}
	if v := GaussianBump(100, 10, 3, 2); v > 1e-9 {
		t.Errorf("bump tail = %v, want ~0", v)
	}
	if v := GaussianBump(5, 10, 0, 2); v != 0 {
		t.Errorf("bump with zero sd = %v, want 0", v)
	}
	// Symmetry.
	if l, r := GaussianBump(8, 10, 3, 2), GaussianBump(12, 10, 3, 2); math.Abs(l-r) > 1e-12 {
		t.Errorf("bump asymmetric: %v vs %v", l, r)
	}
}
