package band

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCoreColumnsMonotone verifies the DESIGN.md invariant that the
// adaptive candidate mapping is monotone non-decreasing: interval
// interpolation can stretch or squeeze time but never reverse it.
func TestCoreColumnsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 20+rng.Intn(150), 20+rng.Intn(150)
		var bx, by []int
		px, py := 0, 0
		for {
			px += 1 + rng.Intn(12)
			py += 1 + rng.Intn(12)
			if px >= nx-1 || py >= ny-1 {
				break
			}
			bx = append(bx, px)
			by = append(by, py)
		}
		al := alignmentWith(nx, ny, bx, by)
		var bu Builder
		core := bu.coreColumns(al, true)
		for i := 1; i < len(core); i++ {
			if core[i] < core[i-1] {
				return false
			}
		}
		// Endpooints anchor the grid corners.
		return core[0] == 0 || len(bx) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCoreColumnsEndpoints checks corner anchoring for adaptive cores.
func TestCoreColumnsEndpoints(t *testing.T) {
	al := alignmentWith(100, 140, []int{40, 70}, []int{50, 100})
	var bu Builder
	core := bu.coreColumns(al, true)
	if core[0] != 0 {
		t.Fatalf("core starts at %d, want 0", core[0])
	}
	if core[99] != 139 {
		t.Fatalf("core ends at %d, want 139", core[99])
	}
	// Boundary positions map exactly.
	if core[40] != 50 {
		t.Fatalf("core[40] = %d, want 50", core[40])
	}
	if core[70] != 100 {
		t.Fatalf("core[70] = %d, want 100", core[70])
	}
}

// TestCoreColumnsDiagonalWithoutBoundaries: no alignment evidence means
// the scaled diagonal.
func TestCoreColumnsDiagonalWithoutBoundaries(t *testing.T) {
	al := alignmentWith(50, 100, nil, nil)
	var bu Builder
	core := bu.coreColumns(al, true)
	if core[0] != 0 || core[49] != 99 {
		t.Fatalf("diagonal endpoints (%d,%d)", core[0], core[49])
	}
	mid := core[25]
	if mid < 45 || mid > 56 {
		t.Fatalf("diagonal midpoint %d", mid)
	}
}
