// Package band computes the locally relevant DTW constraints of paper
// §3.3 from a consistent salient-feature alignment: the five band
// strategies (fc,fw), (fc,aw), (ac,fw), (ac,aw) and (ac2,aw), the
// empty-interval handling, width bounds, and the symmetric band union of
// §3.3.3. Bands are emitted in the representation consumed by the
// constrained dynamic program of package dtw.
package band

import (
	"fmt"
	"math"

	"sdtw/internal/dtw"
	"sdtw/internal/match"
)

// Strategy selects how the band core and width are derived.
type Strategy int

const (
	// FullGrid disables pruning: the band covers the whole grid.
	FullGrid Strategy = iota
	// FixedCoreFixedWidth is the Sakoe-Chiba band (paper Fig 10a).
	FixedCoreFixedWidth
	// FixedCoreAdaptiveWidth keeps the diagonal core but adapts the width
	// to the local interval sizes (Fig 10c).
	FixedCoreAdaptiveWidth
	// AdaptiveCoreFixedWidth follows the structural alignment with a
	// fixed width (Fig 10b).
	AdaptiveCoreFixedWidth
	// AdaptiveCoreAdaptiveWidth adapts both (Fig 10d).
	AdaptiveCoreAdaptiveWidth
	// AdaptiveCoreAdaptiveWidthAvg is the paper's second adaptive-width
	// variant (ac2,aw): the width averages the sizes of the previous,
	// current and next intervals, useful on noisy series (§3.3.1).
	AdaptiveCoreAdaptiveWidthAvg
	// ItakuraBand is the slope-constrained parallelogram (§2.1.4),
	// included for completeness; it ignores alignments.
	ItakuraBand
)

// String implements fmt.Stringer using the paper's labels.
func (s Strategy) String() string {
	switch s {
	case FullGrid:
		return "dtw"
	case FixedCoreFixedWidth:
		return "fc,fw"
	case FixedCoreAdaptiveWidth:
		return "fc,aw"
	case AdaptiveCoreFixedWidth:
		return "ac,fw"
	case AdaptiveCoreAdaptiveWidth:
		return "ac,aw"
	case AdaptiveCoreAdaptiveWidthAvg:
		return "ac2,aw"
	case ItakuraBand:
		return "itakura"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// AdaptiveCore reports whether the strategy derives its core from salient
// feature alignments (and therefore needs feature matching).
func (s Strategy) AdaptiveCore() bool {
	switch s {
	case AdaptiveCoreFixedWidth, AdaptiveCoreAdaptiveWidth, AdaptiveCoreAdaptiveWidthAvg:
		return true
	}
	return false
}

// AdaptiveWidth reports whether the strategy derives its width from the
// interval partition.
func (s Strategy) AdaptiveWidth() bool {
	switch s {
	case FixedCoreAdaptiveWidth, AdaptiveCoreAdaptiveWidth, AdaptiveCoreAdaptiveWidthAvg:
		return true
	}
	return false
}

// Config parameterises band construction.
type Config struct {
	// Strategy selects the band type.
	Strategy Strategy
	// WidthFrac is w for fixed-width strategies: each point of X is
	// compared against WidthFrac·M points of Y (the paper sweeps 6%, 10%,
	// 20%). Zero means 0.10.
	WidthFrac float64
	// MinWidthFrac lower-bounds adaptive widths as a fraction of M. The
	// paper's (fc,aw) runs used a 20% lower bound; adaptive-core runs
	// used none. Negative means none; zero means none for adaptive-core
	// strategies and 0.20 for FixedCoreAdaptiveWidth, matching §4.3.
	MinWidthFrac float64
	// MaxWidthFrac upper-bounds adaptive widths as a fraction of M.
	// Zero or >= 1 means no upper bound.
	MaxWidthFrac float64
	// NeighborRadius is r for AdaptiveCoreAdaptiveWidthAvg: the width
	// averages the sizes of the r intervals on each side of the current
	// one. Zero means 1 (previous, current, next — the paper's ac2,aw).
	NeighborRadius int
	// Slope is the Itakura slope bound; values <= 1 (including zero) mean
	// 2, matching dtw.Itakura's own normalisation.
	Slope float64
	// Symmetric, when true, unions this band with the transposed band
	// built with the roles of X and Y switched (§3.3.3), making the
	// resulting distance symmetric.
	Symmetric bool
}

func (c Config) withDefaults() Config {
	if c.WidthFrac <= 0 {
		c.WidthFrac = 0.10
	}
	if c.WidthFrac > 1 {
		c.WidthFrac = 1
	}
	if c.MinWidthFrac == 0 && c.Strategy == FixedCoreAdaptiveWidth {
		c.MinWidthFrac = 0.20
	}
	if c.NeighborRadius <= 0 {
		c.NeighborRadius = 1
	}
	// dtw.Itakura itself resets any slope <= 1 to 2; normalise identically
	// here so EnvelopeRadius reasons about the band actually built.
	if c.Slope <= 1 {
		c.Slope = 2
	}
	return c
}

// Builder constructs bands, reusing internal scratch buffers across calls.
// The zero value is ready to use. A Builder must not be used concurrently;
// use one per goroutine (they are cheap).
//
// The bands a Builder returns alias its scratch storage: each is valid
// only until the next call on the same Builder. Callers that retain a band
// must Clone it.
type Builder struct {
	lo, hi, core, widths, ivalOf []int
}

func (bu *Builder) ints(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// Build computes the band for an alignment of X (rows, length al.NX) and Y
// (columns, length al.NY). Strategies with fixed cores and widths ignore
// the alignment (which may be nil for them). The returned band is
// normalized and therefore always admits a warp path. This convenience
// wrapper allocates; hot loops should hold a Builder.
func Build(al *match.Alignment, cfg Config) (dtw.Band, error) {
	var bu Builder
	b, err := bu.Build(al, cfg)
	if err != nil {
		return dtw.Band{}, err
	}
	return b.Clone(), nil
}

// Build computes the band for an alignment; see the package-level Build.
// The result aliases the Builder's scratch buffers.
func (bu *Builder) Build(al *match.Alignment, cfg Config) (dtw.Band, error) {
	cfg = cfg.withDefaults()
	if al == nil && (cfg.Strategy.AdaptiveCore() || cfg.Strategy.AdaptiveWidth()) {
		return dtw.Band{}, fmt.Errorf("band: strategy %v requires an alignment", cfg.Strategy)
	}
	var n, m int
	if al != nil {
		n, m = al.NX, al.NY
	}
	if n <= 0 || m <= 0 {
		return dtw.Band{}, fmt.Errorf("band: grid dimensions %dx%d must be positive (nil or empty alignment?)", n, m)
	}
	switch cfg.Strategy {
	case FullGrid:
		return dtw.FullBand(n, m), nil
	case FixedCoreFixedWidth:
		return dtw.SakoeChiba(n, m, cfg.WidthFrac), nil
	case ItakuraBand:
		return dtw.Itakura(n, m, cfg.Slope), nil
	}
	b, err := bu.buildAdaptive(al, cfg)
	if err != nil {
		return dtw.Band{}, err
	}
	if cfg.Symmetric {
		// The symmetric union needs two live bands, so the reverse band
		// is built with independent storage.
		var rev dtw.Band
		var revBu Builder
		rev, err = revBu.buildAdaptive(al.Swap(), cfg)
		if err != nil {
			return dtw.Band{}, err
		}
		b.Union(rev.Transpose().Normalize())
		b.Normalize()
	}
	return b, nil
}

// buildAdaptive constructs the band for the strategies that use the
// interval partition: candidate core per §3.3.2, width per §3.3.1.
func (bu *Builder) buildAdaptive(al *match.Alignment, cfg Config) (dtw.Band, error) {
	n, m := al.NX, al.NY
	if n <= 0 || m <= 0 {
		return dtw.Band{}, fmt.Errorf("band: alignment has empty series (%d, %d)", n, m)
	}
	core := bu.coreColumns(al, cfg.Strategy.AdaptiveCore())
	widths := bu.rowWidths(al, cfg)
	b := dtw.Band{Lo: bu.ints(&bu.lo, n), Hi: bu.ints(&bu.hi, n), M: m}
	for i := 0; i < n; i++ {
		half := widths[i] / 2
		if half < 1 {
			half = 1
		}
		b.Lo[i] = core[i] - half
		b.Hi[i] = core[i] + half
	}
	return b.Normalize(), nil
}

// coreColumns returns, for every row i (point x_i), the candidate column
// j (point y_j). Adaptive cores interpolate linearly inside each matched
// interval pair per the proportionality equation of §3.3.2; fixed cores
// use the scaled diagonal.
func (bu *Builder) coreColumns(al *match.Alignment, adaptive bool) []int {
	n, m := al.NX, al.NY
	core := bu.ints(&bu.core, n)
	if !adaptive || len(al.BoundsX) == 0 {
		for i := range core {
			core[i] = dtw.DiagonalColumn(i, n, m)
		}
		return core
	}
	xs, xe, ys, ye := al.Intervals()
	for t := range xs {
		sx, ex := xs[t], xe[t]
		sy, ey := ys[t], ye[t]
		if ex < sx {
			continue
		}
		if ex == sx {
			// Empty X interval: §3.3.2 notes this may leave a gap in the
			// band; Normalize bridges it. Map the single point midway.
			core[sx] = (sy + ey) / 2
			continue
		}
		if ey == sy {
			// Empty Y interval: st(Y,E) is the candidate for every point
			// of the X interval.
			for i := sx; i <= ex; i++ {
				core[i] = sy
			}
			continue
		}
		scale := float64(ey-sy) / float64(ex-sx)
		for i := sx; i <= ex; i++ {
			core[i] = sy + int(math.Round(float64(i-sx)*scale))
		}
	}
	return core
}

// rowWidths returns the band width (in columns) for every row.
func (bu *Builder) rowWidths(al *match.Alignment, cfg Config) []int {
	n, m := al.NX, al.NY
	widths := bu.ints(&bu.widths, n)
	if !cfg.Strategy.AdaptiveWidth() {
		w := int(math.Ceil(cfg.WidthFrac * float64(m)))
		if w < 2 {
			w = 2
		}
		for i := range widths {
			widths[i] = w
		}
		return widths
	}
	// Adaptive width: w is the length of the Y interval containing the
	// candidate point of x_i — equivalently, the Y interval corresponding
	// to the X interval containing i (§3.3.1).
	xs, xe, ys, ye := al.Intervals()
	ivalOf := bu.ints(&bu.ivalOf, n)
	for i := range ivalOf {
		ivalOf[i] = 0
	}
	for t := range xs {
		for i := xs[t]; i <= xe[t] && i < n; i++ {
			ivalOf[i] = t
		}
	}
	ylen := func(t int) int {
		if t < 0 || t >= len(ys) {
			return 0
		}
		l := ye[t] - ys[t] + 1
		if l < 0 {
			return 0
		}
		return l
	}
	minW, maxW := widthBounds(cfg, m)
	avg := cfg.Strategy == AdaptiveCoreAdaptiveWidthAvg
	for i := 0; i < n; i++ {
		t := ivalOf[i]
		var w int
		if avg {
			sum, cnt := 0, 0
			for dt := -cfg.NeighborRadius; dt <= cfg.NeighborRadius; dt++ {
				if t+dt < 0 || t+dt >= len(ys) {
					continue
				}
				sum += ylen(t + dt)
				cnt++
			}
			if cnt > 0 {
				w = int(math.Round(float64(sum) / float64(cnt)))
			}
		} else {
			w = ylen(t)
		}
		if w < minW {
			w = minW
		}
		if maxW > 0 && w > maxW {
			w = maxW
		}
		if w < 2 {
			w = 2
		}
		widths[i] = w
	}
	return widths
}

func widthBounds(cfg Config, m int) (minW, maxW int) {
	if cfg.MinWidthFrac > 0 {
		minW = int(math.Ceil(cfg.MinWidthFrac * float64(m)))
	}
	if cfg.MaxWidthFrac > 0 && cfg.MaxWidthFrac < 1 {
		maxW = int(math.Ceil(cfg.MaxWidthFrac * float64(m)))
	}
	return minW, maxW
}

// EnvelopeRadius returns a warping radius (in samples) such that every
// cell (i,j) of any band this package can build for an m-by-m grid under
// cfg satisfies |i-j| <= radius. Retrieval indexes use it to size the
// LB_Keogh envelopes of their lower-bound cascade: LB_Keogh at this
// radius lower-bounds the radius-windowed DTW distance, which any band
// within the window can only overestimate, keeping the cascade exact.
// It lives next to the builders so the geometry constants cannot drift
// apart silently; envelope_test.go cross-checks it against built bands.
//
// Adaptive-core strategies follow the salient alignment anywhere in the
// grid, so their only admissible radius is m: the full-width envelope,
// whose LB_Keogh degenerates to a global min/max range test that
// lower-bounds even unconstrained DTW.
func EnvelopeRadius(cfg Config, m int) int {
	cfg = cfg.withDefaults()
	switch cfg.Strategy {
	case FixedCoreFixedWidth:
		// dtw.SakoeChiba places ceil(w*m/2) columns on each side of the
		// scaled diagonal.
		return int(math.Ceil(cfg.WidthFrac*float64(m)/2)) + 1
	case FixedCoreAdaptiveWidth:
		// Diagonal core; rowWidths clamps adaptive widths to maxW last,
		// so with a max bound the half-width never exceeds maxW/2.
		if _, maxW := widthBounds(cfg, m); maxW > 0 {
			return maxW/2 + 2
		}
		return m
	case ItakuraBand:
		// The parallelogram's maximum deviation from the diagonal is
		// (s-1)(m-1)/(s+1), attained one (s+1)-th of the way in.
		return int(math.Ceil((cfg.Slope-1)*float64(m-1)/(cfg.Slope+1))) + 1
	default:
		// FullGrid and the adaptive-core strategies.
		return m
	}
}
